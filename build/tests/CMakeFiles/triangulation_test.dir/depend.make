# Empty dependencies file for triangulation_test.
# This may be replaced when dependencies are built.
