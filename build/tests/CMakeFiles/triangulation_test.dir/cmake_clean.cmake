file(REMOVE_RECURSE
  "CMakeFiles/triangulation_test.dir/delaunay/triangulation_test.cpp.o"
  "CMakeFiles/triangulation_test.dir/delaunay/triangulation_test.cpp.o.d"
  "triangulation_test"
  "triangulation_test.pdb"
  "triangulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triangulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
