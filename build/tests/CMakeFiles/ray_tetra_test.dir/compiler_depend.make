# Empty compiler generated dependencies file for ray_tetra_test.
# This may be replaced when dependencies are built.
