file(REMOVE_RECURSE
  "CMakeFiles/ray_tetra_test.dir/geometry/ray_tetra_test.cpp.o"
  "CMakeFiles/ray_tetra_test.dir/geometry/ray_tetra_test.cpp.o.d"
  "ray_tetra_test"
  "ray_tetra_test.pdb"
  "ray_tetra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ray_tetra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
