# Empty dependencies file for nbody_test.
# This may be replaced when dependencies are built.
