# Empty compiler generated dependencies file for lensing_test.
# This may be replaced when dependencies are built.
