file(REMOVE_RECURSE
  "CMakeFiles/lensing_test.dir/dtfe/lensing_test.cpp.o"
  "CMakeFiles/lensing_test.dir/dtfe/lensing_test.cpp.o.d"
  "lensing_test"
  "lensing_test.pdb"
  "lensing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lensing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
