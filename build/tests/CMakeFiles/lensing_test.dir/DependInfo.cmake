
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dtfe/lensing_test.cpp" "tests/CMakeFiles/lensing_test.dir/dtfe/lensing_test.cpp.o" "gcc" "tests/CMakeFiles/lensing_test.dir/dtfe/lensing_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/pdtfe_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pdtfe_util.dir/DependInfo.cmake"
  "/root/repo/build/src/delaunay/CMakeFiles/pdtfe_delaunay.dir/DependInfo.cmake"
  "/root/repo/build/src/dtfe/CMakeFiles/pdtfe_dtfe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
