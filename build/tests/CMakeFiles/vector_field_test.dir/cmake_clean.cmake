file(REMOVE_RECURSE
  "CMakeFiles/vector_field_test.dir/dtfe/vector_field_test.cpp.o"
  "CMakeFiles/vector_field_test.dir/dtfe/vector_field_test.cpp.o.d"
  "vector_field_test"
  "vector_field_test.pdb"
  "vector_field_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_field_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
