# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/expansion_test[1]_include.cmake")
include("/root/repo/build/tests/predicates_test[1]_include.cmake")
include("/root/repo/build/tests/ray_tetra_test[1]_include.cmake")
include("/root/repo/build/tests/triangulation_test[1]_include.cmake")
include("/root/repo/build/tests/density_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/nbody_test[1]_include.cmake")
include("/root/repo/build/tests/comm_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_test[1]_include.cmake")
include("/root/repo/build/tests/framework_test[1]_include.cmake")
include("/root/repo/build/tests/voronoi_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/fastpath_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/lensing_test[1]_include.cmake")
include("/root/repo/build/tests/vector_field_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
