# Empty dependencies file for pdtfe.
# This may be replaced when dependencies are built.
