file(REMOVE_RECURSE
  "CMakeFiles/pdtfe.dir/pdtfe_main.cpp.o"
  "CMakeFiles/pdtfe.dir/pdtfe_main.cpp.o.d"
  "pdtfe"
  "pdtfe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdtfe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
