file(REMOVE_RECURSE
  "CMakeFiles/multiplane_lensing.dir/multiplane_lensing.cpp.o"
  "CMakeFiles/multiplane_lensing.dir/multiplane_lensing.cpp.o.d"
  "multiplane_lensing"
  "multiplane_lensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiplane_lensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
