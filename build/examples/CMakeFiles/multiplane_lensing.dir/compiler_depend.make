# Empty compiler generated dependencies file for multiplane_lensing.
# This may be replaced when dependencies are built.
