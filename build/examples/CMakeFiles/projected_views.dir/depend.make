# Empty dependencies file for projected_views.
# This may be replaced when dependencies are built.
