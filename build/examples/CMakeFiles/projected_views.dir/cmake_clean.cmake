file(REMOVE_RECURSE
  "CMakeFiles/projected_views.dir/projected_views.cpp.o"
  "CMakeFiles/projected_views.dir/projected_views.cpp.o.d"
  "projected_views"
  "projected_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projected_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
