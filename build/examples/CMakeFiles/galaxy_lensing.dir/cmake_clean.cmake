file(REMOVE_RECURSE
  "CMakeFiles/galaxy_lensing.dir/galaxy_lensing.cpp.o"
  "CMakeFiles/galaxy_lensing.dir/galaxy_lensing.cpp.o.d"
  "galaxy_lensing"
  "galaxy_lensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galaxy_lensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
