# Empty compiler generated dependencies file for galaxy_lensing.
# This may be replaced when dependencies are built.
