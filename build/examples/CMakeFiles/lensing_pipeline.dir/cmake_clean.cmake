file(REMOVE_RECURSE
  "CMakeFiles/lensing_pipeline.dir/lensing_pipeline.cpp.o"
  "CMakeFiles/lensing_pipeline.dir/lensing_pipeline.cpp.o.d"
  "lensing_pipeline"
  "lensing_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lensing_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
