# Empty dependencies file for lensing_pipeline.
# This may be replaced when dependencies are built.
