file(REMOVE_RECURSE
  "CMakeFiles/fig01_example_field.dir/fig01_example_field.cpp.o"
  "CMakeFiles/fig01_example_field.dir/fig01_example_field.cpp.o.d"
  "fig01_example_field"
  "fig01_example_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_example_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
