# Empty dependencies file for fig01_example_field.
# This may be replaced when dependencies are built.
