# Empty compiler generated dependencies file for fig06_kernel_comparison.
# This may be replaced when dependencies are built.
