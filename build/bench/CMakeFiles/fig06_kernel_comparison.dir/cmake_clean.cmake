file(REMOVE_RECURSE
  "CMakeFiles/fig06_kernel_comparison.dir/fig06_kernel_comparison.cpp.o"
  "CMakeFiles/fig06_kernel_comparison.dir/fig06_kernel_comparison.cpp.o.d"
  "fig06_kernel_comparison"
  "fig06_kernel_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_kernel_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
