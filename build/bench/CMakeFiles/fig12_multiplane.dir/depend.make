# Empty dependencies file for fig12_multiplane.
# This may be replaced when dependencies are built.
