file(REMOVE_RECURSE
  "CMakeFiles/fig12_multiplane.dir/fig12_multiplane.cpp.o"
  "CMakeFiles/fig12_multiplane.dir/fig12_multiplane.cpp.o.d"
  "fig12_multiplane"
  "fig12_multiplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_multiplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
