file(REMOVE_RECURSE
  "CMakeFiles/fig07_distributed_comparison.dir/fig07_distributed_comparison.cpp.o"
  "CMakeFiles/fig07_distributed_comparison.dir/fig07_distributed_comparison.cpp.o.d"
  "fig07_distributed_comparison"
  "fig07_distributed_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_distributed_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
