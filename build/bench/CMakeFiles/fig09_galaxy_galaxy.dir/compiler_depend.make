# Empty compiler generated dependencies file for fig09_galaxy_galaxy.
# This may be replaced when dependencies are built.
