file(REMOVE_RECURSE
  "CMakeFiles/fig09_galaxy_galaxy.dir/fig09_galaxy_galaxy.cpp.o"
  "CMakeFiles/fig09_galaxy_galaxy.dir/fig09_galaxy_galaxy.cpp.o.d"
  "fig09_galaxy_galaxy"
  "fig09_galaxy_galaxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_galaxy_galaxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
