# Empty dependencies file for fig11_model_error.
# This may be replaced when dependencies are built.
