
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_model_error.cpp" "bench/CMakeFiles/fig11_model_error.dir/fig11_model_error.cpp.o" "gcc" "bench/CMakeFiles/fig11_model_error.dir/fig11_model_error.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pdtfe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/framework/CMakeFiles/pdtfe_framework.dir/DependInfo.cmake"
  "/root/repo/build/src/dtfe/CMakeFiles/pdtfe_dtfe.dir/DependInfo.cmake"
  "/root/repo/build/src/delaunay/CMakeFiles/pdtfe_delaunay.dir/DependInfo.cmake"
  "/root/repo/build/src/nbody/CMakeFiles/pdtfe_nbody.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/pdtfe_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pdtfe_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/pdtfe_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
