# Empty dependencies file for micro_delaunay.
# This may be replaced when dependencies are built.
