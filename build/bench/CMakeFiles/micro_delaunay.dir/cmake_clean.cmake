file(REMOVE_RECURSE
  "CMakeFiles/micro_delaunay.dir/micro_delaunay.cpp.o"
  "CMakeFiles/micro_delaunay.dir/micro_delaunay.cpp.o.d"
  "micro_delaunay"
  "micro_delaunay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_delaunay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
