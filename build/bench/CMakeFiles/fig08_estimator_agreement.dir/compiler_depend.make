# Empty compiler generated dependencies file for fig08_estimator_agreement.
# This may be replaced when dependencies are built.
