file(REMOVE_RECURSE
  "CMakeFiles/fig08_estimator_agreement.dir/fig08_estimator_agreement.cpp.o"
  "CMakeFiles/fig08_estimator_agreement.dir/fig08_estimator_agreement.cpp.o.d"
  "fig08_estimator_agreement"
  "fig08_estimator_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_estimator_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
