file(REMOVE_RECURSE
  "CMakeFiles/pdtfe_framework.dir/decomposition.cpp.o"
  "CMakeFiles/pdtfe_framework.dir/decomposition.cpp.o.d"
  "CMakeFiles/pdtfe_framework.dir/des.cpp.o"
  "CMakeFiles/pdtfe_framework.dir/des.cpp.o.d"
  "CMakeFiles/pdtfe_framework.dir/pipeline.cpp.o"
  "CMakeFiles/pdtfe_framework.dir/pipeline.cpp.o.d"
  "CMakeFiles/pdtfe_framework.dir/schedule.cpp.o"
  "CMakeFiles/pdtfe_framework.dir/schedule.cpp.o.d"
  "CMakeFiles/pdtfe_framework.dir/workload_model.cpp.o"
  "CMakeFiles/pdtfe_framework.dir/workload_model.cpp.o.d"
  "libpdtfe_framework.a"
  "libpdtfe_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdtfe_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
