# Empty compiler generated dependencies file for pdtfe_framework.
# This may be replaced when dependencies are built.
