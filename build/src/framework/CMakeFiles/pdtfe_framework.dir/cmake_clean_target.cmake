file(REMOVE_RECURSE
  "libpdtfe_framework.a"
)
