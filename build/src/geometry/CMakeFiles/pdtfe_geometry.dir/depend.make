# Empty dependencies file for pdtfe_geometry.
# This may be replaced when dependencies are built.
