file(REMOVE_RECURSE
  "CMakeFiles/pdtfe_geometry.dir/expansion.cpp.o"
  "CMakeFiles/pdtfe_geometry.dir/expansion.cpp.o.d"
  "CMakeFiles/pdtfe_geometry.dir/predicates.cpp.o"
  "CMakeFiles/pdtfe_geometry.dir/predicates.cpp.o.d"
  "CMakeFiles/pdtfe_geometry.dir/ray_tetra.cpp.o"
  "CMakeFiles/pdtfe_geometry.dir/ray_tetra.cpp.o.d"
  "CMakeFiles/pdtfe_geometry.dir/tetra_math.cpp.o"
  "CMakeFiles/pdtfe_geometry.dir/tetra_math.cpp.o.d"
  "libpdtfe_geometry.a"
  "libpdtfe_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdtfe_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
