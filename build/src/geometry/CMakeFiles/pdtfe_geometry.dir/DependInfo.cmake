
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/expansion.cpp" "src/geometry/CMakeFiles/pdtfe_geometry.dir/expansion.cpp.o" "gcc" "src/geometry/CMakeFiles/pdtfe_geometry.dir/expansion.cpp.o.d"
  "/root/repo/src/geometry/predicates.cpp" "src/geometry/CMakeFiles/pdtfe_geometry.dir/predicates.cpp.o" "gcc" "src/geometry/CMakeFiles/pdtfe_geometry.dir/predicates.cpp.o.d"
  "/root/repo/src/geometry/ray_tetra.cpp" "src/geometry/CMakeFiles/pdtfe_geometry.dir/ray_tetra.cpp.o" "gcc" "src/geometry/CMakeFiles/pdtfe_geometry.dir/ray_tetra.cpp.o.d"
  "/root/repo/src/geometry/tetra_math.cpp" "src/geometry/CMakeFiles/pdtfe_geometry.dir/tetra_math.cpp.o" "gcc" "src/geometry/CMakeFiles/pdtfe_geometry.dir/tetra_math.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
