file(REMOVE_RECURSE
  "libpdtfe_geometry.a"
)
