file(REMOVE_RECURSE
  "CMakeFiles/pdtfe_util.dir/binpack.cpp.o"
  "CMakeFiles/pdtfe_util.dir/binpack.cpp.o.d"
  "CMakeFiles/pdtfe_util.dir/fft.cpp.o"
  "CMakeFiles/pdtfe_util.dir/fft.cpp.o.d"
  "CMakeFiles/pdtfe_util.dir/fit.cpp.o"
  "CMakeFiles/pdtfe_util.dir/fit.cpp.o.d"
  "CMakeFiles/pdtfe_util.dir/grid_index.cpp.o"
  "CMakeFiles/pdtfe_util.dir/grid_index.cpp.o.d"
  "CMakeFiles/pdtfe_util.dir/image.cpp.o"
  "CMakeFiles/pdtfe_util.dir/image.cpp.o.d"
  "CMakeFiles/pdtfe_util.dir/stats.cpp.o"
  "CMakeFiles/pdtfe_util.dir/stats.cpp.o.d"
  "libpdtfe_util.a"
  "libpdtfe_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdtfe_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
