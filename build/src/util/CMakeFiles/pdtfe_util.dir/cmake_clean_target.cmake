file(REMOVE_RECURSE
  "libpdtfe_util.a"
)
