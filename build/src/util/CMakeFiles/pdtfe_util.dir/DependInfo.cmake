
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/binpack.cpp" "src/util/CMakeFiles/pdtfe_util.dir/binpack.cpp.o" "gcc" "src/util/CMakeFiles/pdtfe_util.dir/binpack.cpp.o.d"
  "/root/repo/src/util/fft.cpp" "src/util/CMakeFiles/pdtfe_util.dir/fft.cpp.o" "gcc" "src/util/CMakeFiles/pdtfe_util.dir/fft.cpp.o.d"
  "/root/repo/src/util/fit.cpp" "src/util/CMakeFiles/pdtfe_util.dir/fit.cpp.o" "gcc" "src/util/CMakeFiles/pdtfe_util.dir/fit.cpp.o.d"
  "/root/repo/src/util/grid_index.cpp" "src/util/CMakeFiles/pdtfe_util.dir/grid_index.cpp.o" "gcc" "src/util/CMakeFiles/pdtfe_util.dir/grid_index.cpp.o.d"
  "/root/repo/src/util/image.cpp" "src/util/CMakeFiles/pdtfe_util.dir/image.cpp.o" "gcc" "src/util/CMakeFiles/pdtfe_util.dir/image.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/pdtfe_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/pdtfe_util.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/pdtfe_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
