# Empty dependencies file for pdtfe_util.
# This may be replaced when dependencies are built.
