file(REMOVE_RECURSE
  "CMakeFiles/pdtfe_delaunay.dir/hull_projection.cpp.o"
  "CMakeFiles/pdtfe_delaunay.dir/hull_projection.cpp.o.d"
  "CMakeFiles/pdtfe_delaunay.dir/triangulation.cpp.o"
  "CMakeFiles/pdtfe_delaunay.dir/triangulation.cpp.o.d"
  "CMakeFiles/pdtfe_delaunay.dir/voronoi.cpp.o"
  "CMakeFiles/pdtfe_delaunay.dir/voronoi.cpp.o.d"
  "libpdtfe_delaunay.a"
  "libpdtfe_delaunay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdtfe_delaunay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
