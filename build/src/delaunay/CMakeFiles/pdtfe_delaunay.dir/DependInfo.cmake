
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/delaunay/hull_projection.cpp" "src/delaunay/CMakeFiles/pdtfe_delaunay.dir/hull_projection.cpp.o" "gcc" "src/delaunay/CMakeFiles/pdtfe_delaunay.dir/hull_projection.cpp.o.d"
  "/root/repo/src/delaunay/triangulation.cpp" "src/delaunay/CMakeFiles/pdtfe_delaunay.dir/triangulation.cpp.o" "gcc" "src/delaunay/CMakeFiles/pdtfe_delaunay.dir/triangulation.cpp.o.d"
  "/root/repo/src/delaunay/voronoi.cpp" "src/delaunay/CMakeFiles/pdtfe_delaunay.dir/voronoi.cpp.o" "gcc" "src/delaunay/CMakeFiles/pdtfe_delaunay.dir/voronoi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/pdtfe_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pdtfe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
