# Empty dependencies file for pdtfe_delaunay.
# This may be replaced when dependencies are built.
