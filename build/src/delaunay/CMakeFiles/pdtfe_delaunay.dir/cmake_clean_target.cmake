file(REMOVE_RECURSE
  "libpdtfe_delaunay.a"
)
