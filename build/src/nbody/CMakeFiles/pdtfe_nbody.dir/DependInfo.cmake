
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nbody/field_statistics.cpp" "src/nbody/CMakeFiles/pdtfe_nbody.dir/field_statistics.cpp.o" "gcc" "src/nbody/CMakeFiles/pdtfe_nbody.dir/field_statistics.cpp.o.d"
  "/root/repo/src/nbody/fof.cpp" "src/nbody/CMakeFiles/pdtfe_nbody.dir/fof.cpp.o" "gcc" "src/nbody/CMakeFiles/pdtfe_nbody.dir/fof.cpp.o.d"
  "/root/repo/src/nbody/generators.cpp" "src/nbody/CMakeFiles/pdtfe_nbody.dir/generators.cpp.o" "gcc" "src/nbody/CMakeFiles/pdtfe_nbody.dir/generators.cpp.o.d"
  "/root/repo/src/nbody/grid_assign.cpp" "src/nbody/CMakeFiles/pdtfe_nbody.dir/grid_assign.cpp.o" "gcc" "src/nbody/CMakeFiles/pdtfe_nbody.dir/grid_assign.cpp.o.d"
  "/root/repo/src/nbody/particles.cpp" "src/nbody/CMakeFiles/pdtfe_nbody.dir/particles.cpp.o" "gcc" "src/nbody/CMakeFiles/pdtfe_nbody.dir/particles.cpp.o.d"
  "/root/repo/src/nbody/snapshot_io.cpp" "src/nbody/CMakeFiles/pdtfe_nbody.dir/snapshot_io.cpp.o" "gcc" "src/nbody/CMakeFiles/pdtfe_nbody.dir/snapshot_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/pdtfe_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pdtfe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
