file(REMOVE_RECURSE
  "CMakeFiles/pdtfe_nbody.dir/field_statistics.cpp.o"
  "CMakeFiles/pdtfe_nbody.dir/field_statistics.cpp.o.d"
  "CMakeFiles/pdtfe_nbody.dir/fof.cpp.o"
  "CMakeFiles/pdtfe_nbody.dir/fof.cpp.o.d"
  "CMakeFiles/pdtfe_nbody.dir/generators.cpp.o"
  "CMakeFiles/pdtfe_nbody.dir/generators.cpp.o.d"
  "CMakeFiles/pdtfe_nbody.dir/grid_assign.cpp.o"
  "CMakeFiles/pdtfe_nbody.dir/grid_assign.cpp.o.d"
  "CMakeFiles/pdtfe_nbody.dir/particles.cpp.o"
  "CMakeFiles/pdtfe_nbody.dir/particles.cpp.o.d"
  "CMakeFiles/pdtfe_nbody.dir/snapshot_io.cpp.o"
  "CMakeFiles/pdtfe_nbody.dir/snapshot_io.cpp.o.d"
  "libpdtfe_nbody.a"
  "libpdtfe_nbody.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdtfe_nbody.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
