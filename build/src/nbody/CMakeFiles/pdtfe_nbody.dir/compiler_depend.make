# Empty compiler generated dependencies file for pdtfe_nbody.
# This may be replaced when dependencies are built.
