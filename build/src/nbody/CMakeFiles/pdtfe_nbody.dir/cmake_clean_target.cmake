file(REMOVE_RECURSE
  "libpdtfe_nbody.a"
)
