file(REMOVE_RECURSE
  "libpdtfe_dtfe.a"
)
