
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtfe/density.cpp" "src/dtfe/CMakeFiles/pdtfe_dtfe.dir/density.cpp.o" "gcc" "src/dtfe/CMakeFiles/pdtfe_dtfe.dir/density.cpp.o.d"
  "/root/repo/src/dtfe/lensing.cpp" "src/dtfe/CMakeFiles/pdtfe_dtfe.dir/lensing.cpp.o" "gcc" "src/dtfe/CMakeFiles/pdtfe_dtfe.dir/lensing.cpp.o.d"
  "/root/repo/src/dtfe/marching_kernel.cpp" "src/dtfe/CMakeFiles/pdtfe_dtfe.dir/marching_kernel.cpp.o" "gcc" "src/dtfe/CMakeFiles/pdtfe_dtfe.dir/marching_kernel.cpp.o.d"
  "/root/repo/src/dtfe/tess_kernel.cpp" "src/dtfe/CMakeFiles/pdtfe_dtfe.dir/tess_kernel.cpp.o" "gcc" "src/dtfe/CMakeFiles/pdtfe_dtfe.dir/tess_kernel.cpp.o.d"
  "/root/repo/src/dtfe/vector_field.cpp" "src/dtfe/CMakeFiles/pdtfe_dtfe.dir/vector_field.cpp.o" "gcc" "src/dtfe/CMakeFiles/pdtfe_dtfe.dir/vector_field.cpp.o.d"
  "/root/repo/src/dtfe/walking_kernel.cpp" "src/dtfe/CMakeFiles/pdtfe_dtfe.dir/walking_kernel.cpp.o" "gcc" "src/dtfe/CMakeFiles/pdtfe_dtfe.dir/walking_kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/delaunay/CMakeFiles/pdtfe_delaunay.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/pdtfe_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pdtfe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
