file(REMOVE_RECURSE
  "CMakeFiles/pdtfe_dtfe.dir/density.cpp.o"
  "CMakeFiles/pdtfe_dtfe.dir/density.cpp.o.d"
  "CMakeFiles/pdtfe_dtfe.dir/lensing.cpp.o"
  "CMakeFiles/pdtfe_dtfe.dir/lensing.cpp.o.d"
  "CMakeFiles/pdtfe_dtfe.dir/marching_kernel.cpp.o"
  "CMakeFiles/pdtfe_dtfe.dir/marching_kernel.cpp.o.d"
  "CMakeFiles/pdtfe_dtfe.dir/tess_kernel.cpp.o"
  "CMakeFiles/pdtfe_dtfe.dir/tess_kernel.cpp.o.d"
  "CMakeFiles/pdtfe_dtfe.dir/vector_field.cpp.o"
  "CMakeFiles/pdtfe_dtfe.dir/vector_field.cpp.o.d"
  "CMakeFiles/pdtfe_dtfe.dir/walking_kernel.cpp.o"
  "CMakeFiles/pdtfe_dtfe.dir/walking_kernel.cpp.o.d"
  "libpdtfe_dtfe.a"
  "libpdtfe_dtfe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdtfe_dtfe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
