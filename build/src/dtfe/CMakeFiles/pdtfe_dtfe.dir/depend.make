# Empty dependencies file for pdtfe_dtfe.
# This may be replaced when dependencies are built.
