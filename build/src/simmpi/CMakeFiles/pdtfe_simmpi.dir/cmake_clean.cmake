file(REMOVE_RECURSE
  "CMakeFiles/pdtfe_simmpi.dir/comm.cpp.o"
  "CMakeFiles/pdtfe_simmpi.dir/comm.cpp.o.d"
  "libpdtfe_simmpi.a"
  "libpdtfe_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdtfe_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
