file(REMOVE_RECURSE
  "libpdtfe_simmpi.a"
)
