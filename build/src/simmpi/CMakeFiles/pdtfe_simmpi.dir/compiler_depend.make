# Empty compiler generated dependencies file for pdtfe_simmpi.
# This may be replaced when dependencies are built.
