file(REMOVE_RECURSE
  "CMakeFiles/pdtfe_core.dir/reconstructor.cpp.o"
  "CMakeFiles/pdtfe_core.dir/reconstructor.cpp.o.d"
  "libpdtfe_core.a"
  "libpdtfe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdtfe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
