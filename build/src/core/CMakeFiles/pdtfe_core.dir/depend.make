# Empty dependencies file for pdtfe_core.
# This may be replaced when dependencies are built.
