file(REMOVE_RECURSE
  "libpdtfe_core.a"
)
