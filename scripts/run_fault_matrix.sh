#!/usr/bin/env bash
# Fault-injection matrix: sweep fault plans × rank counts through
# `pdtfe pipeline` and assert that every faulty run
#   (a) exits 0,
#   (b) completes ALL fields (containment/retry/fallback/recovery did their
#       job), and
#   (c) reproduces the fault-free total grid checksum (relative 1e-6).
#
# A resume column then re-runs the kill scenario with --checkpoint-dir,
# deletes one journal to simulate crash data loss, and asserts that the
# `--resume` run replays the surviving commits and reproduces the baseline
# checksum EXACTLY (checkpoint restarts are bitwise deterministic).
#
# A transport column re-runs the fault-free baseline and the kill scenario
# with --transport=socket (one worker PROCESS per rank; the kill becomes a
# real SIGKILL) and asserts the checksum matches the thread baseline
# EXACTLY — transport equivalence is bitwise, faults included.
#
# usage: run_fault_matrix.sh [pdtfe-binary] [--sanitize thread|address]
#
# With --sanitize the script configures and builds build-<san>/ with
# -DDTFE_SANITIZE=<san> and sweeps that binary instead, so the same matrix
# doubles as the ThreadSanitizer gate for the fault paths:
#   scripts/run_fault_matrix.sh --sanitize thread
# Default binary: build/apps/pdtfe (or pass a path).
set -euo pipefail

cd "$(dirname "$0")/.."

PDTFE="build/apps/pdtfe"
SANITIZE=""
while [ $# -gt 0 ]; do
  case "$1" in
    --sanitize)
      SANITIZE="$2"
      shift 2
      ;;
    *)
      PDTFE="$1"
      shift
      ;;
  esac
done

if [ -n "$SANITIZE" ]; then
  BUILD="build-$SANITIZE"
  echo "== configuring $BUILD with DTFE_SANITIZE=$SANITIZE"
  cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DDTFE_SANITIZE="$SANITIZE" >/dev/null
  cmake --build "$BUILD" --target pdtfe -j"$(nproc)" >/dev/null
  PDTFE="$BUILD/apps/pdtfe"
fi

[ -x "$PDTFE" ] || { echo "pdtfe binary not found at $PDTFE" >&2; exit 1; }

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
SNAP="$TMP/snap.bin"
"$PDTFE" generate --out "$SNAP" --kind halo --n 60000 --box 64 --blocks 4 \
    --seed 3 >/dev/null

# Plans name concrete (src, dst) pairs / victim ranks; pairs that never
# communicate at a given rank count are harmless no-ops — the invariant
# (all fields completed, checksum unchanged) is asserted either way. The
# last plan is the acceptance scenario: a receiver dies mid-execution AND a
# work package is dropped in the same run.
PLANS=(
  "drop:src=4,dst=5,nth=1,tag=200"
  "drop:src=7,dst=1,nth=1,tag=200"
  "trunc:src=4,dst=5,nth=1,tag=200"
  "flip:src=4,dst=5,nth=1,tag=200"
  "delay:src=4,dst=5,nth=1,tag=200,ms=300"
  "kill:rank=1,tag=200,at=1"
  "kill:rank=5,tag=200,at=1;drop:src=7,dst=1,nth=1,tag=200"
)

run_pipeline() { # $1 ranks, $2 fault plan ("" = none), rest extra args
  local ranks="$1" plan="$2"
  shift 2
  local -a extra=()
  [ -n "$plan" ] && extra=(--fault-plan "$plan")
  "$PDTFE" pipeline --in "$SNAP" --ranks "$ranks" --fields 24 --length 5 \
      --grid 48 --comm-timeout-ms 500 --max-retries 3 "${extra[@]}" "$@"
}

completed_of() { # parses "fields completed: X/Y ..." -> "X Y"
  printf '%s\n' "$1" | sed -n 's|^fields completed: \([0-9]*\)/\([0-9]*\).*|\1 \2|p'
}

channels_of() { # collects every "field checksum <name>: C" line
  printf '%s\n' "$1" | sed -n 's|^field checksum .*|&|p'
}

checksum_of() { # parses "grid checksum total: C" -> "C"
  printf '%s\n' "$1" | sed -n 's|^grid checksum total: \(.*\)|\1|p'
}

failures=0
for ranks in 4 8; do
  echo "== $ranks ranks: fault-free baseline"
  base_out="$(run_pipeline "$ranks" "")"
  read -r base_completed base_total <<<"$(completed_of "$base_out")"
  base_checksum="$(checksum_of "$base_out")"
  if [ -z "$base_checksum" ] || [ "$base_completed" != "$base_total" ]; then
    echo "FAIL baseline at $ranks ranks: $base_completed/$base_total fields"
    failures=$((failures + 1))
    continue
  fi
  echo "   baseline: $base_completed/$base_total fields, checksum $base_checksum"

  for plan in "${PLANS[@]}"; do
    if ! out="$(run_pipeline "$ranks" "$plan")"; then
      echo "FAIL [$ranks ranks] '$plan': nonzero exit"
      failures=$((failures + 1))
      continue
    fi
    read -r completed total <<<"$(completed_of "$out")"
    checksum="$(checksum_of "$out")"
    if [ "$completed" != "$total" ] || [ "$total" != "$base_total" ]; then
      echo "FAIL [$ranks ranks] '$plan': $completed/$total fields completed"
      failures=$((failures + 1))
      continue
    fi
    if ! awk -v a="$base_checksum" -v b="$checksum" 'BEGIN {
          d = a - b; if (d < 0) d = -d;
          m = (a < 0 ? -a : a); if (m < 1) m = 1;
          exit !(d / m < 1e-6) }'; then
      echo "FAIL [$ranks ranks] '$plan': checksum $checksum != $base_checksum"
      failures=$((failures + 1))
      continue
    fi
    echo "   ok [$ranks ranks] '$plan'"
  done

  # Transport column: the same pipeline over worker processes must land on
  # the thread baseline checksum exactly, with and without a worker SIGKILL.
  for plan in "" "kill:rank=1,tag=200,at=1"; do
    label="socket${plan:+ + '$plan'}"
    if ! out="$(run_pipeline "$ranks" "$plan" --transport socket)"; then
      echo "FAIL [$ranks ranks] $label: nonzero exit"
      failures=$((failures + 1))
      continue
    fi
    read -r completed total <<<"$(completed_of "$out")"
    checksum="$(checksum_of "$out")"
    if [ "$completed" != "$total" ] || [ "$total" != "$base_total" ]; then
      echo "FAIL [$ranks ranks] $label: $completed/$total fields completed"
      failures=$((failures + 1))
    elif [ "$checksum" != "$base_checksum" ]; then
      # Exact string equality: the socket transport is bitwise equivalent.
      echo "FAIL [$ranks ranks] $label: checksum $checksum != $base_checksum"
      failures=$((failures + 1))
    else
      echo "   ok [$ranks ranks] $label (checksum exact)"
    fi
  done

  # Field column (DESIGN.md §10): the multi-channel estimators ride the same
  # fault machinery. For velocity and vdiv: a fault-free thread baseline,
  # the receiver-kill plan (checksum within relative 1e-6 of the field's own
  # baseline, like the plan sweep), and a socket run whose total AND
  # per-channel checksums must match the thread baseline EXACTLY.
  for field in velocity vdiv; do
    if ! fbase_out="$(run_pipeline "$ranks" "" --field "$field")"; then
      echo "FAIL [$ranks ranks] field=$field: baseline exited nonzero"
      failures=$((failures + 1))
      continue
    fi
    read -r fcompleted ftotal <<<"$(completed_of "$fbase_out")"
    fbase_checksum="$(checksum_of "$fbase_out")"
    if [ -z "$fbase_checksum" ] || [ "$fcompleted" != "$ftotal" ]; then
      echo "FAIL [$ranks ranks] field=$field: $fcompleted/$ftotal fields"
      failures=$((failures + 1))
      continue
    fi
    if ! out="$(run_pipeline "$ranks" "kill:rank=1,tag=200,at=1" \
                    --field "$field")"; then
      echo "FAIL [$ranks ranks] field=$field kill: nonzero exit"
      failures=$((failures + 1))
      continue
    fi
    read -r completed total <<<"$(completed_of "$out")"
    checksum="$(checksum_of "$out")"
    if [ "$completed" != "$total" ] || [ "$total" != "$ftotal" ]; then
      echo "FAIL [$ranks ranks] field=$field kill: $completed/$total fields"
      failures=$((failures + 1))
      continue
    fi
    if ! awk -v a="$fbase_checksum" -v b="$checksum" 'BEGIN {
          d = a - b; if (d < 0) d = -d;
          m = (a < 0 ? -a : a); if (m < 1) m = 1;
          exit !(d / m < 1e-6) }'; then
      echo "FAIL [$ranks ranks] field=$field kill: checksum $checksum != $fbase_checksum"
      failures=$((failures + 1))
      continue
    fi
    if ! out="$(run_pipeline "$ranks" "" --field "$field" --transport socket)"; then
      echo "FAIL [$ranks ranks] field=$field socket: nonzero exit"
      failures=$((failures + 1))
      continue
    fi
    read -r completed total <<<"$(completed_of "$out")"
    checksum="$(checksum_of "$out")"
    if [ "$completed" != "$total" ] || [ "$checksum" != "$fbase_checksum" ] ||
       [ "$(channels_of "$out")" != "$(channels_of "$fbase_out")" ]; then
      echo "FAIL [$ranks ranks] field=$field socket: per-channel parity broken"
      failures=$((failures + 1))
      continue
    fi
    echo "   ok [$ranks ranks] field=$field (kill contained, socket parity exact)"
  done

  # Resume column: a checkpointed run interrupted by a rank kill, one journal
  # lost to the "crash", then a --resume run that must replay the surviving
  # commits, recompute the rest, and land on the baseline checksum EXACTLY.
  CKPT="$TMP/ckpt-$ranks"
  rm -rf "$CKPT"
  if ! out="$(run_pipeline "$ranks" "kill:rank=1,tag=200,at=1" \
                  --checkpoint-dir "$CKPT" --audit cheap)"; then
    echo "FAIL [$ranks ranks] resume: checkpointed kill run exited nonzero"
    failures=$((failures + 1))
  else
    lost="$(ls "$CKPT"/journal-rank-*.ckpt 2>/dev/null | head -1)"
    [ -n "$lost" ] && rm -f "$lost"
    if ! out="$(run_pipeline "$ranks" "" \
                    --checkpoint-dir "$CKPT" --resume 1 --audit cheap)"; then
      echo "FAIL [$ranks ranks] resume: --resume run exited nonzero"
      failures=$((failures + 1))
    else
      read -r completed total <<<"$(completed_of "$out")"
      checksum="$(checksum_of "$out")"
      replayed="$(printf '%s\n' "$out" | sed -n 's|^checkpoint: \([0-9]*\) item(s) replayed.*|\1|p')"
      if [ "$completed" != "$total" ] || [ "$total" != "$base_total" ]; then
        echo "FAIL [$ranks ranks] resume: $completed/$total fields completed"
        failures=$((failures + 1))
      elif [ "${replayed:-0}" -eq 0 ]; then
        echo "FAIL [$ranks ranks] resume: no items replayed from checkpoints"
        failures=$((failures + 1))
      elif [ "$checksum" != "$base_checksum" ]; then
        # Exact string equality: resumed runs are bitwise deterministic.
        echo "FAIL [$ranks ranks] resume: checksum $checksum != $base_checksum"
        failures=$((failures + 1))
      else
        echo "   ok [$ranks ranks] resume ($replayed replayed, checksum exact)"
      fi
    fi
  fi
done

if [ "$failures" -gt 0 ]; then
  echo "fault matrix: $failures case(s) FAILED"
  exit 1
fi
echo "fault matrix: all cases passed"
