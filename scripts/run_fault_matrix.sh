#!/usr/bin/env bash
# Fault-injection matrix: sweep fault plans × rank counts through
# `pdtfe pipeline` and assert that every faulty run
#   (a) exits 0,
#   (b) completes ALL fields (containment/retry/fallback/recovery did their
#       job), and
#   (c) reproduces the fault-free total grid checksum (relative 1e-6).
#
# usage: run_fault_matrix.sh [pdtfe-binary] [--sanitize thread|address]
#
# With --sanitize the script configures and builds build-<san>/ with
# -DDTFE_SANITIZE=<san> and sweeps that binary instead, so the same matrix
# doubles as the ThreadSanitizer gate for the fault paths:
#   scripts/run_fault_matrix.sh --sanitize thread
# Default binary: build/apps/pdtfe (or pass a path).
set -euo pipefail

cd "$(dirname "$0")/.."

PDTFE="build/apps/pdtfe"
SANITIZE=""
while [ $# -gt 0 ]; do
  case "$1" in
    --sanitize)
      SANITIZE="$2"
      shift 2
      ;;
    *)
      PDTFE="$1"
      shift
      ;;
  esac
done

if [ -n "$SANITIZE" ]; then
  BUILD="build-$SANITIZE"
  echo "== configuring $BUILD with DTFE_SANITIZE=$SANITIZE"
  cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DDTFE_SANITIZE="$SANITIZE" >/dev/null
  cmake --build "$BUILD" --target pdtfe -j"$(nproc)" >/dev/null
  PDTFE="$BUILD/apps/pdtfe"
fi

[ -x "$PDTFE" ] || { echo "pdtfe binary not found at $PDTFE" >&2; exit 1; }

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
SNAP="$TMP/snap.bin"
"$PDTFE" generate --out "$SNAP" --kind halo --n 60000 --box 64 --blocks 4 \
    --seed 3 >/dev/null

# Plans name concrete (src, dst) pairs / victim ranks; pairs that never
# communicate at a given rank count are harmless no-ops — the invariant
# (all fields completed, checksum unchanged) is asserted either way. The
# last plan is the acceptance scenario: a receiver dies mid-execution AND a
# work package is dropped in the same run.
PLANS=(
  "drop:src=4,dst=5,nth=1,tag=200"
  "drop:src=7,dst=1,nth=1,tag=200"
  "trunc:src=4,dst=5,nth=1,tag=200"
  "flip:src=4,dst=5,nth=1,tag=200"
  "delay:src=4,dst=5,nth=1,tag=200,ms=300"
  "kill:rank=1,tag=200,at=1"
  "kill:rank=5,tag=200,at=1;drop:src=7,dst=1,nth=1,tag=200"
)

run_pipeline() { # $1 ranks, $2 fault plan ("" = none) -> stdout of pdtfe
  local ranks="$1" plan="$2"
  local -a extra=()
  [ -n "$plan" ] && extra=(--fault-plan "$plan")
  "$PDTFE" pipeline --in "$SNAP" --ranks "$ranks" --fields 24 --length 5 \
      --grid 48 --comm-timeout-ms 500 --max-retries 3 "${extra[@]}"
}

completed_of() { # parses "fields completed: X/Y ..." -> "X Y"
  printf '%s\n' "$1" | sed -n 's|^fields completed: \([0-9]*\)/\([0-9]*\).*|\1 \2|p'
}

checksum_of() { # parses "grid checksum total: C" -> "C"
  printf '%s\n' "$1" | sed -n 's|^grid checksum total: \(.*\)|\1|p'
}

failures=0
for ranks in 4 8; do
  echo "== $ranks ranks: fault-free baseline"
  base_out="$(run_pipeline "$ranks" "")"
  read -r base_completed base_total <<<"$(completed_of "$base_out")"
  base_checksum="$(checksum_of "$base_out")"
  if [ -z "$base_checksum" ] || [ "$base_completed" != "$base_total" ]; then
    echo "FAIL baseline at $ranks ranks: $base_completed/$base_total fields"
    failures=$((failures + 1))
    continue
  fi
  echo "   baseline: $base_completed/$base_total fields, checksum $base_checksum"

  for plan in "${PLANS[@]}"; do
    if ! out="$(run_pipeline "$ranks" "$plan")"; then
      echo "FAIL [$ranks ranks] '$plan': nonzero exit"
      failures=$((failures + 1))
      continue
    fi
    read -r completed total <<<"$(completed_of "$out")"
    checksum="$(checksum_of "$out")"
    if [ "$completed" != "$total" ] || [ "$total" != "$base_total" ]; then
      echo "FAIL [$ranks ranks] '$plan': $completed/$total fields completed"
      failures=$((failures + 1))
      continue
    fi
    if ! awk -v a="$base_checksum" -v b="$checksum" 'BEGIN {
          d = a - b; if (d < 0) d = -d;
          m = (a < 0 ? -a : a); if (m < 1) m = 1;
          exit !(d / m < 1e-6) }'; then
      echo "FAIL [$ranks ranks] '$plan': checksum $checksum != $base_checksum"
      failures=$((failures + 1))
      continue
    fi
    echo "   ok [$ranks ranks] '$plan'"
  done
done

if [ "$failures" -gt 0 ]; then
  echo "fault matrix: $failures case(s) FAILED"
  exit 1
fi
echo "fault matrix: all cases passed"
