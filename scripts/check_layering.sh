#!/usr/bin/env bash
# Layering lint: keep the dependency arrows pointing one way
# (util/obs → geometry → delaunay → dtfe → framework → engine → apps).
#
#   * src/dtfe/ is pure numerics — it must not reach up into the
#     orchestration layers (framework/, engine/, simmpi/).
#   * apps/ talks to the pipeline only through the engine facade — no direct
#     framework/ or simmpi/ includes (engine/engine.h re-exports what a
#     subcommand legitimately needs).
#
# Greps #include lines only, so the rules stay cheap and editor-friendly.
# Run from anywhere; exits non-zero listing every violating include.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

check() {
  local dir="$1" pattern="$2" rule="$3"
  local hits
  hits="$(grep -rnE "^[[:space:]]*#include[[:space:]]+\"(${pattern})/" \
          "$dir" --include='*.h' --include='*.cpp' || true)"
  if [ -n "$hits" ]; then
    echo "layering violation: $rule" >&2
    echo "$hits" >&2
    fail=1
  fi
}

check src/dtfe  'framework|engine|simmpi' \
      'src/dtfe/ must not include framework/, engine/, or simmpi/'
check apps      'framework|simmpi' \
      'apps/ must go through engine/ (no direct framework/ or simmpi/ includes)'

if [ "$fail" -ne 0 ]; then
  echo "check_layering: FAILED" >&2
  exit 1
fi
echo "check_layering: ok"
