#!/usr/bin/env bash
# Regenerate every paper figure and the micro/ablation suite.
#
#   scripts/run_experiments.sh [build-dir]
#
# Writes console output to experiments_<date>.log in the current directory
# and leaves the figures' image artifacts (*.pgm/*.ppm) beside it.
set -u
BUILD="${1:-build}"
LOG="experiments_$(date +%Y%m%d_%H%M%S).log"

{
  echo "== pdtfe experiment sweep ($(date)) =="
  for b in "$BUILD"/bench/fig*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    case "$b" in (*.pgm|*.ppm) continue ;; esac
    echo; echo "### $(basename "$b")"
    "$b" || echo "FAILED: $b"
  done
  for b in "$BUILD"/bench/micro_*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    echo; echo "### $(basename "$b")"
    "$b" --benchmark_min_time=0.2s || echo "FAILED: $b"
  done
} 2>&1 | tee "$LOG"

echo "wrote $LOG"
