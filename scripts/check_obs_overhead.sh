#!/usr/bin/env bash
# Guard the observability layer's disabled-mode overhead budget.
#
#   scripts/check_obs_overhead.sh [build-dir] [max-overhead-pct]
#
# Runs bench/micro_obs and compares BM_WorkloadPlain against
# BM_WorkloadInstrumentedDisabled: a synthetic kernel inner loop with and
# without one guarded metrics call per item. Fails (exit 1) if the
# instrumented-but-disabled variant is more than MAX_PCT slower (default 1%).
# Each variant runs several repetitions and the minimum time is used, so a
# single noisy interval doesn't fail the check.
set -eu
BUILD="${1:-build}"
MAX_PCT="${2:-1.0}"
BIN="$BUILD/bench/micro_obs"

if [ ! -x "$BIN" ]; then
  echo "check_obs_overhead: $BIN not found; build first (cmake --build $BUILD)" >&2
  exit 2
fi

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT
"$BIN" --benchmark_filter='BM_Workload(Plain|InstrumentedDisabled)$' \
       --benchmark_repetitions=5 --benchmark_min_time=0.2 \
       --benchmark_format=json >"$OUT"

python3 - "$OUT" "$MAX_PCT" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    data = json.load(f)
max_pct = float(sys.argv[2])

times = {"BM_WorkloadPlain": [], "BM_WorkloadInstrumentedDisabled": []}
for b in data["benchmarks"]:
    if b.get("run_type") != "iteration":
        continue
    name = b["name"].split("/")[0]
    if name in times:
        times[name].append(b["real_time"])

for name, ts in times.items():
    if not ts:
        sys.exit(f"check_obs_overhead: no samples for {name}")

plain = min(times["BM_WorkloadPlain"])
instr = min(times["BM_WorkloadInstrumentedDisabled"])
pct = (instr / plain - 1.0) * 100.0
print(f"plain {plain:.3f} ns/item, instrumented(disabled) {instr:.3f} ns/item, "
      f"overhead {pct:+.2f}% (budget {max_pct:.1f}%)")
if pct > max_pct:
    sys.exit(f"check_obs_overhead: FAIL — overhead {pct:.2f}% > {max_pct:.1f}%")
print("check_obs_overhead: OK")
EOF
