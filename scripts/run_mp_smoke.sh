#!/usr/bin/env bash
# Multi-process smoke: the socket transport's CI gate (README "Multi-process
# execution", DESIGN.md §9).
#
#   1. thread-transport baseline run;
#   2. socket run (one worker process per rank) — checksum must equal the
#      baseline EXACTLY (transport equivalence is bitwise);
#   3. socket run with a kill plan: one worker is SIGKILLed mid-item, the
#      heartbeat/EOF detector must contain it, the survivors must recover
#      its items, and the checksum must STILL equal the baseline.
#
# usage: run_mp_smoke.sh [pdtfe-binary] [ranks]
set -euo pipefail

cd "$(dirname "$0")/.."

PDTFE="${1:-build/apps/pdtfe}"
RANKS="${2:-3}"
[ -x "$PDTFE" ] || { echo "pdtfe binary not found at $PDTFE" >&2; exit 1; }

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
SNAP="$TMP/snap.bin"
"$PDTFE" generate --out "$SNAP" --kind halo --n 40000 --box 64 --blocks 4 \
    --seed 3 >/dev/null

run_pipeline() { # $1 transport, rest extra args
  local transport="$1"
  shift
  "$PDTFE" pipeline --in "$SNAP" --ranks "$RANKS" --fields 12 --length 5 \
      --grid 48 --comm-timeout-ms 1000 --transport "$transport" "$@"
}

checksum_of() { printf '%s\n' "$1" | sed -n 's|^grid checksum total: \(.*\)|\1|p'; }
completed_of() { printf '%s\n' "$1" | sed -n 's|^fields completed: \([0-9]*/[0-9]*\).*|\1|p'; }

echo "== mp-smoke: thread baseline ($RANKS ranks)"
base_out="$(run_pipeline thread)"
base_checksum="$(checksum_of "$base_out")"
base_completed="$(completed_of "$base_out")"
[ -n "$base_checksum" ] || { echo "FAIL: no baseline checksum"; exit 1; }
echo "   baseline: $base_completed fields, checksum $base_checksum"

echo "== mp-smoke: socket transport ($RANKS worker processes)"
sock_out="$(run_pipeline socket)"
sock_checksum="$(checksum_of "$sock_out")"
sock_completed="$(completed_of "$sock_out")"
if [ "$sock_checksum" != "$base_checksum" ] || \
   [ "$sock_completed" != "$base_completed" ]; then
  echo "FAIL: socket run diverged (checksum '$sock_checksum' vs"
  echo "      '$base_checksum', fields '$sock_completed' vs '$base_completed')"
  printf '%s\n' "$sock_out"
  exit 1
fi
echo "   ok: checksum identical to thread baseline"

echo "== mp-smoke: socket transport with a SIGKILLed worker"
kill_out="$(run_pipeline socket --fault-plan 'kill:rank=1,tag=200,at=1')"
kill_checksum="$(checksum_of "$kill_out")"
kill_completed="$(completed_of "$kill_out")"
if [ "$kill_checksum" != "$base_checksum" ] || \
   [ "$kill_completed" != "$base_completed" ]; then
  echo "FAIL: kill run diverged (checksum '$kill_checksum' vs"
  echo "      '$base_checksum', fields '$kill_completed' vs '$base_completed')"
  printf '%s\n' "$kill_out"
  exit 1
fi
if ! printf '%s\n' "$kill_out" | grep -q '^ranks failed: 1$'; then
  echo "FAIL: killed worker was not reported as a failed rank"
  printf '%s\n' "$kill_out"
  exit 1
fi
echo "   ok: worker death detected, items recovered, checksum identical"

echo "mp-smoke: all cases passed"
