#!/usr/bin/env bash
# Persistent benchmark trajectory: one command that measures the perf-critical
# paths and writes a schema-stable BENCH_kernel.json at the repo root, so the
# numbers ride along with the code and regressions show up in review diffs.
#
# Three measurements:
#   (1) micro_delaunay insert-scratch A/B — inserts/sec and allocations per
#       insert with and without TriangulationOptions::reuse_insert_scratch;
#   (2) micro_kernels render throughput (marching + walking);
#   (3) end-to-end `pdtfe pipeline` on a generated snapshot, serial
#       (--compute-ahead=0) vs overlapped (--compute-ahead=4, all cores),
#       asserting the grid checksums are EXACTLY equal and recording the
#       wall-time speedup plus the machine-independent op counters
#       (dtfe.delaunay.walk_steps, dtfe.kernel.tetra_crossings) that CI pins.
#
# usage: run_bench.sh [--smoke] [--out FILE]
#   --smoke   small fixture + short benchmark reps (the CI perf-smoke job)
#   --out     output path (default: BENCH_kernel.json at the repo root)
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=0
OUT="BENCH_kernel.json"
while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) SMOKE=1; shift ;;
    --out) OUT="$2"; shift 2 ;;
    *) echo "unknown flag $1" >&2; exit 2 ;;
  esac
done

BUILD=build
[ -f "$BUILD/CMakeCache.txt" ] || cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" --target pdtfe micro_delaunay micro_kernels \
      -j"$(nproc)" >/dev/null
PDTFE="$BUILD/apps/pdtfe"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

if [ "$SMOKE" = 1 ]; then
  MODE=smoke N=40000 FIELDS=6 GRID=24 RANKS=2 MIN_TIME=0.05
else
  MODE=full N=120000 FIELDS=16 GRID=32 RANKS=2 MIN_TIME=0.2
fi
THREADS="$(nproc)"

echo "== micro_delaunay (insert-scratch A/B)"
"$BUILD/bench/micro_delaunay" \
    --benchmark_filter='BM_DelaunayInsertScratch' \
    --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
    > "$TMP/delaunay.json" 2>/dev/null

echo "== micro_kernels (render throughput + crossing-test A/B)"
"$BUILD/bench/micro_kernels" \
    --benchmark_filter='BM_MarchingRender|BM_WalkingRender|BM_VerticalCrossing' \
    --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
    > "$TMP/kernels.json" 2>/dev/null

echo "== end-to-end pipeline: serial vs overlapped ($THREADS cores)"
SNAP="$TMP/snap.bin"
"$PDTFE" generate --out "$SNAP" --n "$N" --box 16 --seed 3 >/dev/null
"$PDTFE" pipeline --in "$SNAP" --ranks "$RANKS" --fields "$FIELDS" \
    --grid "$GRID" --length 3 --compute-ahead 0 \
    --report "$TMP/serial" --metrics-out "$TMP/serial_metrics.json" >/dev/null
"$PDTFE" pipeline --in "$SNAP" --ranks "$RANKS" --fields "$FIELDS" \
    --grid "$GRID" --length 3 --compute-ahead 4 --threads "$THREADS" \
    --report "$TMP/overlap" --metrics-out "$TMP/overlap_metrics.json" >/dev/null

python3 - "$TMP" "$OUT" "$MODE" "$N" "$FIELDS" "$RANKS" "$THREADS" <<'PY'
import json, os, sys

tmp, out, mode = sys.argv[1], sys.argv[2], sys.argv[3]
n, fields, ranks, threads = (int(v) for v in sys.argv[4:8])

def load(name):
    with open(os.path.join(tmp, name)) as f:
        return json.load(f)

dl = {b["name"]: b for b in load("delaunay.json")["benchmarks"]}
reuse = dl["BM_DelaunayInsertScratch/20000/1"]
noreuse = dl["BM_DelaunayInsertScratch/20000/0"]

kjson = load("kernels.json")
# The custom micro_kernels main records the compiled SIMD ISA in the
# benchmark context ("sse2" / "neon" / "scalar").
simd_isa = kjson.get("context", {}).get("simd_isa", "unknown")

kernels = {}
crossing = {}
for b in kjson["benchmarks"]:
    row = {
        "real_time_ms": round(b["real_time"], 3)
        if b["time_unit"] == "ms" else round(b["real_time"] / 1e6, 3),
        "items_per_second": b.get("items_per_second"),
    }
    if b["name"].startswith("BM_VerticalCrossing"):
        crossing[b["name"]] = b["items_per_second"]
    else:
        kernels[b["name"]] = row

# Crossing-test A/B: the SoA+SIMD route vs the pre-table AoS scalar test
# (both classify identical crossings; see bench/micro_kernels.cpp). The
# committed speedup is the tentpole's acceptance number.
aos = crossing["BM_VerticalCrossingAos"]
simd_vs_scalar = {
    "crossings_per_sec_aos_scalar": round(aos),
    "crossings_per_sec_coef_scalar": round(crossing["BM_VerticalCrossingCoef"]),
    "crossings_per_sec_simd": round(crossing["BM_VerticalCrossingSimd"]),
    "crossings_per_sec_batch": round(crossing["BM_VerticalCrossingBatch"]),
    "speedup_coef_vs_aos": round(crossing["BM_VerticalCrossingCoef"] / aos, 3),
    "speedup_simd_vs_aos": round(crossing["BM_VerticalCrossingSimd"] / aos, 3),
}

serial = load("serial.json")["summary"]
overlap = load("overlap.json")["summary"]
sm = load("serial_metrics.json")
om = load("overlap_metrics.json")

checksums_equal = serial["grid_checksum_total"] == overlap["grid_checksum_total"]
if not checksums_equal:
    print("FATAL: overlapped checksum differs from serial", file=sys.stderr)

cores = os.cpu_count()
# On a single core the overlapped pipeline cannot beat serial (overlap buys
# nothing and pays coordination); tag the report so consumers don't read the
# ~1.0x (or slightly below) speedup as a regression.
overlap_expected_win = cores is not None and cores > 1

doc = {
    "schema": "pdtfe-bench-v1",
    "mode": mode,
    "host": {"cores": cores, "platform": os.uname().sysname,
             "simd_isa": simd_isa},
    "micro_delaunay": {
        "inserts_per_sec_reuse": round(reuse["items_per_second"]),
        "inserts_per_sec_noreuse": round(noreuse["items_per_second"]),
        "allocs_per_insert_reuse": round(reuse["allocs_per_insert"], 6),
        "allocs_per_insert_noreuse": round(noreuse["allocs_per_insert"], 6),
    },
    "micro_kernels": kernels,
    "simd_vs_scalar": simd_vs_scalar,
    "pipeline": {
        "particles": n,
        "fields": fields,
        "ranks": ranks,
        "threads": threads,
        "compute_ahead": 4,
        "serial_wall_s": round(serial["wall_s"], 4),
        "overlap_wall_s": round(overlap["wall_s"], 4),
        "speedup": round(serial["wall_s"] / overlap["wall_s"], 3),
        "overlap_expected_win": overlap_expected_win,
        "checksum_serial": serial["grid_checksum_total"],
        "checksum_overlap": overlap["grid_checksum_total"],
        "checksums_equal": checksums_equal,
        "overlap_ratio": om["gauges"].get("dtfe.executor.overlap_ratio"),
        "stall_seconds": om["counters"].get("dtfe.executor.stall_seconds"),
        "op_counters": {
            "dtfe.delaunay.walk_steps":
                sm["counters"]["dtfe.delaunay.walk_steps"],
            "dtfe.kernel.tetra_crossings":
                sm["counters"]["dtfe.kernel.tetra_crossings"],
        },
        # Derived throughput: tetra crossings processed per wall-second.
        # The crossing count is machine-independent, so this is the kernel
        # work rate — comparable across runs with the same fixture and a
        # direct read on whether overlap converts stalls into crossings.
        "crossings_per_sec_serial": round(
            sm["counters"]["dtfe.kernel.tetra_crossings"]
            / serial["wall_s"]),
        "crossings_per_sec_overlap": round(
            om["counters"]["dtfe.kernel.tetra_crossings"]
            / overlap["wall_s"]),
    },
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out}: speedup {doc['pipeline']['speedup']}x on "
      f"{threads} core(s), checksums_equal={checksums_equal}")
sys.exit(0 if checksums_equal else 1)
PY
