#!/usr/bin/env bash
# Offline CI entry point — everything the GitHub workflow runs, runnable
# locally with no network access:
#
#   1. configure + build the default tree and run the full tier-1 ctest suite;
#   2. rebuild under ThreadSanitizer (DTFE_SANITIZE=thread) and run the
#      concurrency-sensitive suites — the fault-injection and durable-execution
#      labels — against that build.
#
# usage: ci.sh [--skip-tsan] [--jobs N]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc)"
SKIP_TSAN=0
while [ $# -gt 0 ]; do
  case "$1" in
    --skip-tsan) SKIP_TSAN=1; shift ;;
    --jobs) JOBS="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

echo "== lint: layering rules"
bash scripts/check_layering.sh

echo "== tier-1: configure + build (build/, $JOBS jobs)"
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"

echo "== tier-1: full ctest suite"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== engine: kernel/stage/batch contract suite"
ctest --test-dir build --output-on-failure -L engine

if [ "$SKIP_TSAN" -eq 1 ]; then
  echo "== tsan: skipped (--skip-tsan)"
  exit 0
fi

echo "== tsan: configure + build (build-thread/, DTFE_SANITIZE=thread)"
cmake -B build-thread -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DDTFE_SANITIZE=thread >/dev/null
cmake --build build-thread -j"$JOBS"

echo "== tsan: fault + durable labels"
# TSAN_OPTIONS: fail the job on any report; second_deadlock_stack aids triage.
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ctest --test-dir build-thread --output-on-failure -L 'fault|durable'

echo "== ci: all green"
