#!/usr/bin/env bash
# Offline CI entry point — everything the GitHub workflow runs, runnable
# locally with no network access:
#
#   1. configure + build the default tree and run the full tier-1 ctest suite;
#   2. perf-smoke: run scripts/run_bench.sh --smoke, validate the
#      BENCH_kernel.json schema, and pin the machine-independent op counters
#      (dtfe.delaunay.walk_steps, dtfe.kernel.tetra_crossings) against
#      bench/perf_reference.json — a perf change that alters the WORK done
#      must update the reference intentionally;
#   3. rebuild under ThreadSanitizer (DTFE_SANITIZE=thread) and run the
#      concurrency-sensitive suites — the fault-injection, durable-execution,
#      and overlapped-executor labels — against that build.
#
# usage: ci.sh [--skip-tsan] [--skip-perf] [--jobs N]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc)"
SKIP_TSAN=0
SKIP_PERF=0
while [ $# -gt 0 ]; do
  case "$1" in
    --skip-tsan) SKIP_TSAN=1; shift ;;
    --skip-perf) SKIP_PERF=1; shift ;;
    --jobs) JOBS="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

echo "== lint: layering rules"
bash scripts/check_layering.sh

echo "== tier-1: configure + build (build/, $JOBS jobs)"
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"

echo "== tier-1: full ctest suite"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== engine: kernel/stage/batch contract suite"
ctest --test-dir build --output-on-failure -L engine

echo "== mp-smoke: socket transport (3 worker processes, one SIGKILLed)"
bash scripts/run_mp_smoke.sh build/apps/pdtfe 3

if [ "$SKIP_PERF" -eq 1 ]; then
  echo "== perf-smoke: skipped (--skip-perf)"
else
  echo "== perf-smoke: benchmark trajectory + pinned op counters"
  bash scripts/run_bench.sh --smoke --out build/BENCH_smoke.json
  python3 - <<'PY'
import json, sys

with open("build/BENCH_smoke.json") as f:
    doc = json.load(f)
with open("bench/perf_reference.json") as f:
    ref = json.load(f)

# Schema gate: a bench-script change must not silently break consumers.
for key in ("schema", "mode", "host", "micro_delaunay", "micro_kernels",
            "pipeline"):
    assert key in doc, f"BENCH_kernel.json missing top-level key {key!r}"
assert doc["schema"] == "pdtfe-bench-v1", doc["schema"]
for key in ("inserts_per_sec_reuse", "inserts_per_sec_noreuse",
            "allocs_per_insert_reuse", "allocs_per_insert_noreuse"):
    assert key in doc["micro_delaunay"], f"micro_delaunay missing {key!r}"
for key in ("serial_wall_s", "overlap_wall_s", "speedup", "checksums_equal",
            "op_counters", "crossings_per_sec_serial",
            "crossings_per_sec_overlap"):
    assert key in doc["pipeline"], f"pipeline missing {key!r}"
assert doc["pipeline"]["checksums_equal"] is True, \
    "overlapped pipeline checksum differs from serial"

# Scratch reuse must actually reduce allocation churn.
md = doc["micro_delaunay"]
assert md["allocs_per_insert_reuse"] < md["allocs_per_insert_noreuse"], \
    f"scratch reuse did not reduce allocations: {md}"

# Pinned work counts: same fixture, same walk, same crossings — exactly.
got = doc["pipeline"]["op_counters"]
want = ref["op_counters"]
for name, expect in want.items():
    assert got.get(name) == expect, (
        f"{name}: got {got.get(name)}, reference {expect} — the amount of "
        "work changed; if intentional, regenerate bench/perf_reference.json")
print("perf-smoke: schema valid, op counters match the reference")
PY
fi

if [ "$SKIP_TSAN" -eq 1 ]; then
  echo "== tsan: skipped (--skip-tsan)"
  exit 0
fi

echo "== tsan: configure + build (build-thread/, DTFE_SANITIZE=thread)"
cmake -B build-thread -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DDTFE_SANITIZE=thread >/dev/null
cmake --build build-thread -j"$JOBS"

echo "== tsan: fault + durable + engine labels"
# TSAN_OPTIONS: fail the job on any report; second_deadlock_stack aids triage.
# The engine label carries the overlapped-executor determinism tests, so this
# is also the data-race gate for the --compute-ahead pipeline. libgomp's
# uninstrumented barriers need scripts/tsan.supp (see its header).
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 suppressions=$PWD/scripts/tsan.supp" \
    ctest --test-dir build-thread --output-on-failure -L 'fault|durable|engine'

echo "== ci: all green"
