#!/usr/bin/env bash
# Offline CI entry point — everything the GitHub workflow runs, runnable
# locally with no network access:
#
#   1. configure + build the default tree and run the full tier-1 ctest suite;
#   2. perf-smoke: run scripts/run_bench.sh --smoke, validate the
#      BENCH_kernel.json schema (including the simd_vs_scalar crossing A/B
#      and its >=1.3x floor), pin the machine-independent op counters
#      (dtfe.delaunay.walk_steps, dtfe.kernel.tetra_crossings) against
#      bench/perf_reference.json — a perf change that alters the WORK done
#      must update the reference intentionally — and run the pipeline with
#      --use-simd on AND off, pinning identical tetra_crossings and grid
#      checksums across the two;
#   3. rebuild under ThreadSanitizer (DTFE_SANITIZE=thread) and run the
#      concurrency-sensitive suites — the fault-injection, durable-execution,
#      and overlapped-executor labels — against that build;
#   4. rebuild under UBSan (DTFE_SANITIZE=undefined) and run the geometry,
#      kernel-parity, and engine suites against that build.
#
# usage: ci.sh [--skip-tsan] [--skip-perf] [--jobs N]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc)"
SKIP_TSAN=0
SKIP_PERF=0
while [ $# -gt 0 ]; do
  case "$1" in
    --skip-tsan) SKIP_TSAN=1; shift ;;
    --skip-perf) SKIP_PERF=1; shift ;;
    --jobs) JOBS="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

echo "== lint: layering rules"
bash scripts/check_layering.sh

echo "== tier-1: configure + build (build/, $JOBS jobs)"
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"

echo "== tier-1: full ctest suite"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== engine: kernel/stage/batch contract suite"
ctest --test-dir build --output-on-failure -L engine

echo "== mp-smoke: socket transport (3 worker processes, one SIGKILLed)"
bash scripts/run_mp_smoke.sh build/apps/pdtfe 3

if [ "$SKIP_PERF" -eq 1 ]; then
  echo "== perf-smoke: skipped (--skip-perf)"
else
  echo "== perf-smoke: benchmark trajectory + pinned op counters"
  bash scripts/run_bench.sh --smoke --out build/BENCH_smoke.json
  python3 - <<'PY'
import json, sys

with open("build/BENCH_smoke.json") as f:
    doc = json.load(f)
with open("bench/perf_reference.json") as f:
    ref = json.load(f)

# Schema gate: a bench-script change must not silently break consumers.
for key in ("schema", "mode", "host", "micro_delaunay", "micro_kernels",
            "simd_vs_scalar", "pipeline"):
    assert key in doc, f"BENCH_kernel.json missing top-level key {key!r}"
assert doc["schema"] == "pdtfe-bench-v1", doc["schema"]
assert "simd_isa" in doc["host"], "host missing simd_isa"
for key in ("inserts_per_sec_reuse", "inserts_per_sec_noreuse",
            "allocs_per_insert_reuse", "allocs_per_insert_noreuse"):
    assert key in doc["micro_delaunay"], f"micro_delaunay missing {key!r}"
for key in ("crossings_per_sec_aos_scalar", "crossings_per_sec_simd",
            "speedup_coef_vs_aos", "speedup_simd_vs_aos"):
    assert key in doc["simd_vs_scalar"], f"simd_vs_scalar missing {key!r}"
for key in ("serial_wall_s", "overlap_wall_s", "speedup",
            "overlap_expected_win", "checksums_equal",
            "op_counters", "crossings_per_sec_serial",
            "crossings_per_sec_overlap"):
    assert key in doc["pipeline"], f"pipeline missing {key!r}"
assert doc["pipeline"]["checksums_equal"] is True, \
    "overlapped pipeline checksum differs from serial"
# The e2e overlap speedup is only a meaningful assertion with real
# parallelism; on a single core the tag documents the expected ~1.0x.
if doc["pipeline"]["overlap_expected_win"]:
    assert doc["pipeline"]["speedup"] > 0.9, \
        f"overlap regressed serial on a multi-core host: {doc['pipeline']}"

# The SoA crossing test must beat the pre-table AoS path outright (the
# tentpole's acceptance floor).
assert doc["simd_vs_scalar"]["speedup_simd_vs_aos"] >= 1.3, \
    f"SIMD crossing speedup below 1.3x: {doc['simd_vs_scalar']}"

# Scratch reuse must actually reduce allocation churn.
md = doc["micro_delaunay"]
assert md["allocs_per_insert_reuse"] < md["allocs_per_insert_noreuse"], \
    f"scratch reuse did not reduce allocations: {md}"

# Pinned work counts: same fixture, same walk, same crossings — exactly.
got = doc["pipeline"]["op_counters"]
want = ref["op_counters"]
for name, expect in want.items():
    assert got.get(name) == expect, (
        f"{name}: got {got.get(name)}, reference {expect} — the amount of "
        "work changed; if intentional, regenerate bench/perf_reference.json")
print("perf-smoke: schema valid, op counters match the reference")
PY

  echo "== perf-smoke: SIMD on/off A/B (pinned crossings + checksum equality)"
  # The SoA/SIMD batch route must classify EXACTLY the same tetra crossings
  # and produce bitwise-identical grids as the scalar route — the tentpole's
  # determinism contract, asserted here end-to-end through the CLI.
  SIMD_TMP="$(mktemp -d)"
  trap 'rm -rf "$SIMD_TMP"' EXIT
  build/apps/pdtfe generate --out "$SIMD_TMP/snap.bin" \
      --n 40000 --box 16 --seed 3 >/dev/null
  for mode in on off; do
    build/apps/pdtfe pipeline --in "$SIMD_TMP/snap.bin" --ranks 2 --fields 6 \
        --grid 24 --length 3 --use-simd "$mode" \
        --report "$SIMD_TMP/$mode" \
        --metrics-out "$SIMD_TMP/${mode}_metrics.json" >/dev/null
  done
  python3 - "$SIMD_TMP" <<'PY'
import json, sys

tmp = sys.argv[1]
def load(name):
    with open(f"{tmp}/{name}") as f:
        return json.load(f)

on, off = load("on.json")["summary"], load("off.json")["summary"]
mon, moff = load("on_metrics.json"), load("off_metrics.json")

assert on["grid_checksum_total"] == off["grid_checksum_total"], (
    f"simd on/off grids differ: {on['grid_checksum_total']} vs "
    f"{off['grid_checksum_total']}")
key = "dtfe.kernel.tetra_crossings"
con, coff = mon["counters"][key], moff["counters"][key]
assert con == coff, f"tetra_crossings differ across simd on/off: {con} vs {coff}"
lanes = mon["counters"].get("dtfe.kernel.simd_batch_lanes", 0)
assert lanes > 0, "simd on run recorded no batched lanes — batch path inactive"
assert moff["counters"].get("dtfe.kernel.simd_batch_lanes", 0) == 0, \
    "simd off run recorded batched lanes"
print(f"simd on/off: checksums equal, {con} crossings each, "
      f"{lanes} batched lanes on the simd path")
PY
fi

if [ "$SKIP_TSAN" -eq 1 ]; then
  echo "== sanitizers (tsan + ubsan): skipped (--skip-tsan)"
  exit 0
fi

echo "== tsan: configure + build (build-thread/, DTFE_SANITIZE=thread)"
cmake -B build-thread -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DDTFE_SANITIZE=thread >/dev/null
cmake --build build-thread -j"$JOBS"

echo "== tsan: fault + durable + engine labels"
# TSAN_OPTIONS: fail the job on any report; second_deadlock_stack aids triage.
# The engine label carries the overlapped-executor determinism tests, so this
# is also the data-race gate for the --compute-ahead pipeline. libgomp's
# uninstrumented barriers need scripts/tsan.supp (see its header).
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 suppressions=$PWD/scripts/tsan.supp" \
    ctest --test-dir build-thread --output-on-failure -L 'fault|durable|engine'

echo "== ubsan: configure + build (build-ubsan/, DTFE_SANITIZE=undefined)"
cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DDTFE_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j"$JOBS"

echo "== ubsan: geometry/kernel/engine suites"
# UBSan is built with -fno-sanitize-recover=all, so any undefined operation
# (misaligned SIMD load, signed overflow in the walk counters, bad enum cast
# in the codec) aborts the test. The simd parity suite is the main target:
# it drives the packed load/store routes over degenerate geometry. The
# targeted binaries run directly (ctest registers per-CASE names, not
# binary names); the engine label covers engine_test + executor_test.
for t in simd_parity_test ray_tetra_test kernels_test predicates_test; do
  "build-ubsan/tests/$t"
done
ctest --test-dir build-ubsan --output-on-failure -L engine

echo "== ci: all green"
