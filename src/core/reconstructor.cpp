#include "core/reconstructor.h"

namespace dtfe {

Reconstructor::Reconstructor(std::vector<Vec3> points, double particle_mass)
    : points_(std::move(points)),
      masses_(points_.size(), particle_mass) {
  tri_ = std::make_unique<Triangulation>(points_);
  density_ = std::make_unique<DensityField>(*tri_, masses_);
  hull_ = std::make_unique<HullProjection>(*tri_);
}

Reconstructor::Reconstructor(std::vector<Vec3> points,
                             std::span<const double> masses)
    : points_(std::move(points)), masses_(masses.begin(), masses.end()) {
  tri_ = std::make_unique<Triangulation>(points_);
  density_ = std::make_unique<DensityField>(*tri_, masses_);
  hull_ = std::make_unique<HullProjection>(*tri_);
}

Reconstructor Reconstructor::rotated_for_direction(const Vec3& direction) const {
  const Rotation frame = Rotation::frame_for_direction(direction);
  std::vector<Vec3> rotated;
  rotated.reserve(points_.size());
  for (const Vec3& p : points_) rotated.push_back(frame.apply(p));
  return Reconstructor(std::move(rotated), masses_);
}

Grid2D Reconstructor::surface_density(const FieldSpec& spec,
                                      const MarchingOptions& opt) const {
  return MarchingKernel(*density_, *hull_, opt).render(spec);
}

Grid2D Reconstructor::surface_density_walking(const FieldSpec& spec,
                                              const WalkingOptions& opt) const {
  return WalkingKernel(*density_, opt).render(spec);
}

Grid2D Reconstructor::surface_density_zero_order(const FieldSpec& spec,
                                                 const TessOptions& opt) const {
  return TessKernel(*density_, opt).render(spec);
}

Grid3D Reconstructor::density_grid(const FieldSpec& spec,
                                   const WalkingOptions& opt) const {
  return WalkingKernel(*density_, opt).render_3d(spec);
}

double Reconstructor::density_at(const Vec3& p) const {
  const auto loc = tri_->locate(p);
  if (loc.status == Triangulation::LocateStatus::kOutsideHull) return 0.0;
  return density_->interpolate_in_cell(loc.cell, p);
}

double Reconstructor::integrate_los(double x, double y, double zmin,
                                    double zmax) const {
  return MarchingKernel(*density_, *hull_).integrate_line({x, y}, zmin, zmax);
}

}  // namespace dtfe
