// High-level single-volume API: the "just give me a surface density map"
// entry point wrapping triangulation + DTFE densities + hull projection +
// the rendering kernels.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "delaunay/hull_projection.h"
#include "delaunay/triangulation.h"
#include "dtfe/density.h"
#include "dtfe/field.h"
#include "geometry/rotation.h"
#include "dtfe/marching_kernel.h"
#include "dtfe/tess_kernel.h"
#include "dtfe/walking_kernel.h"

namespace dtfe {

/// Owns the full DTFE stack for one particle volume. Build once, render any
/// number of fields; all render calls are OpenMP-parallel and thread-safe
/// with respect to each other.
class Reconstructor {
 public:
  /// Equal-mass particles. Throws dtfe::Error for degenerate inputs
  /// (fewer than 4 non-coplanar points).
  Reconstructor(std::vector<Vec3> points, double particle_mass = 1.0);
  /// Per-particle masses.
  Reconstructor(std::vector<Vec3> points, std::span<const double> masses);

  /// Surface density by the paper's marching kernel (exact per-tetra
  /// line-of-sight integration; no 3D grid).
  Grid2D surface_density(const FieldSpec& spec,
                         const MarchingOptions& opt = {}) const;

  /// Surface density by the walking / 3D-grid baseline (DTFE public
  /// software's approach).
  Grid2D surface_density_walking(const FieldSpec& spec,
                                 const WalkingOptions& opt = {}) const;

  /// Surface density by the zero-order Voronoi baseline (TESS/DENSE).
  Grid2D surface_density_zero_order(const FieldSpec& spec,
                                    const TessOptions& opt = {}) const;

  /// Full 3D density grid (the intermediate product the paper's kernel
  /// avoids — exposed for analysis and visualization).
  Grid3D density_grid(const FieldSpec& spec,
                      const WalkingOptions& opt = {}) const;

  /// Point estimate of the DTFE density (0 outside the convex hull).
  double density_at(const Vec3& p) const;

  /// Exact line-of-sight integral through (x, y) over [zmin, zmax].
  double integrate_los(double x, double y, double zmin, double zmax) const;

  /// A reconstructor whose +z axis is the given direction in THIS frame:
  /// the paper's "any arbitrary direction can be chosen by a simple rotation
  /// of the triangulation". Fields rendered from the result are projections
  /// along `direction`; their (x, y) plane is Rotation::frame_for_direction's
  /// in-plane basis. Rebuilds the triangulation on rotated copies of the
  /// points.
  Reconstructor rotated_for_direction(const Vec3& direction) const;

  const Triangulation& triangulation() const { return *tri_; }
  const DensityField& density() const { return *density_; }
  const HullProjection& hull() const { return *hull_; }

 private:
  std::vector<Vec3> points_;
  std::vector<double> masses_;
  std::unique_ptr<Triangulation> tri_;
  std::unique_ptr<DensityField> density_;
  std::unique_ptr<HullProjection> hull_;
};

}  // namespace dtfe
