// Umbrella header: the public API of the parallel DTFE surface density
// library. Include this to get everything.
//
//   Single volume:   dtfe::Reconstructor
//   Many fields:     dtfe::engine::Engine::run_batch (or the thinner
//                    dtfe::run_pipeline) over dtfe::simmpi ranks
//   Data:            dtfe::generate_* / snapshot I/O / FOF halos
//
// See README.md for a quickstart and DESIGN.md for the architecture map.
#pragma once

#include "core/reconstructor.h"
#include "delaunay/hull_projection.h"
#include "delaunay/voronoi.h"
#include "delaunay/triangulation.h"
#include "dtfe/density.h"
#include "dtfe/field.h"
#include "dtfe/lensing.h"
#include "dtfe/marching_kernel.h"
#include "dtfe/tess_kernel.h"
#include "dtfe/vector_field.h"
#include "dtfe/walking_kernel.h"
#include "engine/config.h"
#include "engine/engine.h"
#include "engine/field_kernel.h"
#include "framework/decomposition.h"
#include "framework/des.h"
#include "framework/pipeline.h"
#include "framework/schedule.h"
#include "framework/workload_model.h"
#include "geometry/rotation.h"
#include "nbody/field_statistics.h"
#include "nbody/fof.h"
#include "nbody/grid_assign.h"
#include "nbody/generators.h"
#include "nbody/particles.h"
#include "nbody/snapshot_io.h"
#include "simmpi/comm.h"
