#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <set>

namespace dtfe::obs {

namespace {
thread_local int t_rank = 0;

int next_tid() {
  static std::atomic<int> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

int my_tid() {
  thread_local int tid = next_tid();
  return tid;
}

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         1e-9 * static_cast<double>(ts.tv_nsec);
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  out += buf;
}
}  // namespace

TraceRecorder::TraceRecorder() : epoch_(steady_seconds()) {}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* instance = new TraceRecorder();  // leaked on purpose
  return *instance;
}

void TraceRecorder::set_thread_rank(int rank) { t_rank = rank; }
int TraceRecorder::thread_rank() { return t_rank; }

double TraceRecorder::now_us() const {
  return (steady_seconds() - epoch_) * 1e6;
}

void TraceRecorder::emit_complete(
    std::string name, std::string cat, double ts_us, double dur_us,
    std::vector<std::pair<std::string, double>> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = std::move(cat);
  ev.phase = 'X';
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.pid = t_rank;
  ev.tid = my_tid();
  ev.args = std::move(args);
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(ev));
}

void TraceRecorder::emit_duration_ending_now(
    std::string name, std::string cat, double dur_seconds,
    std::vector<std::pair<std::string, double>> args) {
  const double dur_us = std::max(0.0, dur_seconds * 1e6);
  emit_complete(std::move(name), std::move(cat), now_us() - dur_us, dur_us,
                std::move(args));
}

void TraceRecorder::emit_instant(
    std::string name, std::string cat,
    std::vector<std::pair<std::string, double>> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = std::move(cat);
  ev.phase = 'i';
  ev.ts_us = now_us();
  ev.pid = t_rank;
  ev.tid = my_tid();
  ev.args = std::move(args);
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(ev));
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

std::string TraceRecorder::to_json() const {
  std::vector<TraceEvent> evs = events();
  // Stable display order: by pid, then timestamp.
  std::stable_sort(evs.begin(), evs.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.pid != b.pid ? a.pid < b.pid : a.ts_us < b.ts_us;
                   });
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };
  // Name each pid lane after its simulated rank.
  std::set<int> pids;
  for (const TraceEvent& e : evs) pids.insert(e.pid);
  for (const int pid : pids) {
    comma();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":0,\"args\":{\"name\":\"rank ";
    out += std::to_string(pid);
    out += "\"}}";
  }
  for (const TraceEvent& e : evs) {
    comma();
    out += "{\"name\":";
    append_json_string(out, e.name);
    out += ",\"cat\":";
    append_json_string(out, e.cat.empty() ? "dtfe" : e.cat);
    out += ",\"ph\":\"";
    out += e.phase;
    out += "\",\"ts\":";
    append_number(out, e.ts_us);
    if (e.phase == 'X') {
      out += ",\"dur\":";
      append_number(out, e.dur_us);
    }
    out += ",\"pid\":";
    out += std::to_string(e.pid);
    out += ",\"tid\":";
    out += std::to_string(e.tid);
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    if (!e.args.empty()) {
      out += ",\"args\":{";
      bool afirst = true;
      for (const auto& [k, v] : e.args) {
        if (!afirst) out += ',';
        afirst = false;
        append_json_string(out, k);
        out += ':';
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.9g", v);
        out += buf;
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

bool TraceRecorder::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const std::string json = to_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

TraceSpan::TraceSpan(std::string name, std::string cat,
                     TraceRecorder* recorder) {
  TraceRecorder* rec = recorder ? recorder : &TraceRecorder::global();
  if (!rec->enabled()) return;  // inert span
  recorder_ = rec;
  name_ = std::move(name);
  cat_ = std::move(cat);
  start_us_ = rec->now_us();
  cpu_start_ = thread_cpu_seconds();
}

void TraceSpan::add_arg(std::string key, double value) {
  if (recorder_) args_.emplace_back(std::move(key), value);
}

void TraceSpan::close() {
  if (!recorder_) return;
  args_.emplace_back("cpu_s", thread_cpu_seconds() - cpu_start_);
  recorder_->emit_complete(std::move(name_), std::move(cat_), start_us_,
                           recorder_->now_us() - start_us_, std::move(args_));
  recorder_ = nullptr;
}

TraceSpan::~TraceSpan() { close(); }

}  // namespace dtfe::obs
