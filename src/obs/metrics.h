// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms (the measurement substrate behind the reproduction's timing
// claims: every perf PR regresses against these instead of ad-hoc printfs).
//
// Design goals, in order:
//   1. Disabled mode is a no-op cheap enough for per-ray call sites: one
//      relaxed atomic load and a predictable branch (enforced by
//      bench/micro_obs + scripts/check_obs_overhead.sh).
//   2. Enabled-mode hot-path increments are uncontended: every thread owns a
//      private shard of slots, and a MetricId carries its slot layout (plus
//      a stable pointer to histogram bounds), so add()/observe() never read
//      the registry's containers or take the registry mutex. Only snapshot()
//      touches other threads' shards, through each shard's own mutex.
//   3. No dependencies: this library sits below delaunay/dtfe/framework/
//      simmpi in the link order so all of them can emit metrics.
//
// Naming convention: `dtfe.<layer>.<name>`, e.g. `dtfe.delaunay.walk_steps`,
// `dtfe.simmpi.bytes_sent` (documented in README "Observability").
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dtfe::obs {

enum class MetricKind : std::uint32_t { kCounter = 0, kGauge, kHistogram };

/// Handle to a registered metric; cheap to copy, valid for the registry's
/// lifetime. Obtain via MetricsRegistry::counter()/gauge()/histogram().
/// Carries everything the hot path needs so increments are registry-lock-free.
struct MetricId {
  std::uint32_t slot = UINT32_MAX;  ///< shard slot base (gauge: gauge index)
  MetricKind kind = MetricKind::kCounter;
  const std::vector<double>* bounds = nullptr;  ///< histograms only
  bool valid() const { return slot != UINT32_MAX; }
};

/// Merged view of one histogram: counts per bucket (bounds.size() + 1
/// entries, bucket b covering values <= bounds[b], the last catching
/// overflow), plus sum and count of all observations.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<double> counts;
  double sum = 0.0;
  double count = 0.0;
};

/// Point-in-time merged view across all threads (live and exited).
struct MetricsSnapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  double counter(const std::string& name) const {
    const auto it = counters.find(name);
    return it == counters.end() ? 0.0 : it->second;
  }
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry();

  /// The process-wide registry all library instrumentation reports to.
  static MetricsRegistry& global();

  /// Master switch. Disabled (the default) makes add()/observe()/set() no-ops
  /// so benchmarks are unperturbed; registration still works while disabled.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Register (or look up) a metric. Re-registering the same name with the
  /// same kind returns the existing id; a kind mismatch throws.
  MetricId counter(const std::string& name);
  MetricId gauge(const std::string& name);
  MetricId histogram(const std::string& name, std::vector<double> bounds);

  /// Add `v` to a counter. No-op when disabled or id is invalid.
  void add(MetricId id, double v = 1.0) {
    if (!enabled() || !id.valid()) return;
    slot_add(id.slot, v);
  }

  /// Record one observation into a histogram. No-op when disabled.
  void observe(MetricId id, double v);

  /// Set a gauge (last write wins, process-global). No-op when disabled.
  void set(MetricId id, double v);

  /// Fold a shipped histogram snapshot (e.g. a socket worker's) into this
  /// registry: registers `name` with the snapshot's bounds if new, then adds
  /// its bucket counts, sum, and count — so a launcher's merged snapshot
  /// matches the thread transport field-for-field. No-op when disabled.
  void merge_histogram(const std::string& name, const HistogramSnapshot& h);

  /// Merge every thread's shard into one consistent view. Safe to call
  /// concurrently with increments (per-shard locking; shards of exited
  /// threads persist until the registry dies, so their tallies stay visible).
  MetricsSnapshot snapshot() const;

  /// Zero all slots and gauges. Registered metrics survive.
  void reset();

 private:
  struct Descriptor {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::size_t slot_base = 0;   ///< first slot in a shard's slot array
    std::vector<double> bounds;  ///< histogram bucket upper bounds
    std::size_t gauge_index = 0; ///< gauges live outside the shards
  };

  struct Shard {
    mutable std::mutex mutex;
    std::vector<double> slots;
  };

  MetricId register_metric(const std::string& name, MetricKind kind,
                           std::vector<double> bounds);
  Shard& my_shard();
  void slot_add(std::size_t slot, double v);

  std::atomic<bool> enabled_{false};
  const std::uint64_t uid_;   ///< guards thread-local shard-cache reuse
  mutable std::mutex mutex_;  // guards everything below
  std::deque<Descriptor> descriptors_;  ///< deque: element refs stay stable
  std::map<std::string, std::size_t> by_name_;
  std::size_t next_slot_ = 0;
  std::deque<double> gauges_;
  std::deque<bool> gauge_set_;
  std::vector<Shard*> live_shards_;  ///< owned; freed with the registry
};

/// Convenience wrappers over the global registry, for call sites that do not
/// want to cache a registry reference.
inline MetricId counter(const std::string& name) {
  return MetricsRegistry::global().counter(name);
}
inline MetricId gauge(const std::string& name) {
  return MetricsRegistry::global().gauge(name);
}
inline MetricId histogram(const std::string& name, std::vector<double> bounds) {
  return MetricsRegistry::global().histogram(name, std::move(bounds));
}
inline void add(MetricId id, double v = 1.0) {
  MetricsRegistry::global().add(id, v);
}
inline void observe(MetricId id, double v) {
  MetricsRegistry::global().observe(id, v);
}
inline void set(MetricId id, double v) { MetricsRegistry::global().set(id, v); }
inline bool metrics_enabled() { return MetricsRegistry::global().enabled(); }

}  // namespace dtfe::obs
