// Chrome trace_event recording (chrome://tracing / Perfetto "Open trace
// file"): RAII spans tagged with the simulated MPI rank (pid lane) and a
// per-thread id (tid lane), serialized as the JSON Array Format of complete
// ("X") events.
//
// Like the metrics registry, the recorder defaults to disabled and a
// disabled span costs one relaxed atomic load at construction. Event
// emission takes a single recorder mutex — spans are emitted per phase /
// per work item, not per ray, so contention is negligible.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dtfe::obs {

/// One trace event. `args` are numeric key/values rendered into the Chrome
/// `args` object (e.g. {"cpu_s": 0.012} for a span's thread-CPU seconds).
struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'X';     ///< 'X' complete, 'i' instant
  double ts_us = 0.0;   ///< start, microseconds since recorder epoch
  double dur_us = 0.0;  ///< complete events only
  int pid = 0;          ///< simulated MPI rank
  int tid = 0;          ///< per-process thread id
  std::vector<std::pair<std::string, double>> args;
};

class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The process-wide recorder all library instrumentation reports to.
  static TraceRecorder& global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Tag subsequent events from the calling thread with this rank (pid
  /// lane). Thread-local; simmpi rank threads call it on entry.
  static void set_thread_rank(int rank);
  static int thread_rank();

  /// Microseconds since the recorder's epoch (monotonic).
  double now_us() const;

  /// Append a complete event with explicit timing (used by TraceSpan and by
  /// call sites that re-emit an externally measured duration).
  void emit_complete(std::string name, std::string cat, double ts_us,
                     double dur_us,
                     std::vector<std::pair<std::string, double>> args = {});

  /// Complete event ending now and lasting `dur_seconds` (timestamps are
  /// synthesized backward from now; used to attach externally measured
  /// durations, e.g. per-item triangulation CPU time).
  void emit_duration_ending_now(
      std::string name, std::string cat, double dur_seconds,
      std::vector<std::pair<std::string, double>> args = {});

  /// Instant event at now.
  void emit_instant(std::string name, std::string cat,
                    std::vector<std::pair<std::string, double>> args = {});

  std::size_t size() const;
  std::vector<TraceEvent> events() const;
  void clear();

  /// Serialize to the Chrome JSON Array Format, including process_name
  /// metadata per rank. Never throws; write_json returns false on IO error.
  std::string to_json() const;
  bool write_json(const std::string& path) const;

 private:
  std::atomic<bool> enabled_{false};
  double epoch_ = 0.0;  ///< steady_clock seconds at construction
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// RAII span: measures wall duration (event dur) and thread-CPU seconds
/// (emitted as args["cpu_s"]) between construction and destruction, then
/// appends a complete event. A span constructed while the recorder is
/// disabled stays inert even if recording is enabled before it closes.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, std::string cat = "dtfe",
                     TraceRecorder* recorder = nullptr);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  /// Attach a numeric argument to the event this span will emit.
  void add_arg(std::string key, double value);

  /// Emit now instead of at scope exit (idempotent).
  void close();

 private:
  TraceRecorder* recorder_ = nullptr;  ///< null when inert
  std::string name_, cat_;
  double start_us_ = 0.0;
  double cpu_start_ = 0.0;
  std::vector<std::pair<std::string, double>> args_;
};

}  // namespace dtfe::obs
