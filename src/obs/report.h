// RunReport: one-file summary of a pipeline run — per-rank phase timings
// plus a merged metrics snapshot — serialized as JSON (machine-readable,
// nested) or CSV (flat `kind,rank,name,value` rows for spreadsheet import).
//
// The report is deliberately generic (named doubles, not PhaseTimes): obs
// sits below framework in the link order, so framework adapts its structs
// into rows rather than obs depending on framework headers.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace dtfe::obs {

class RunReport {
 public:
  /// Per-rank named values (typically phase busy seconds). Ranks may be
  /// added in any order; repeated calls for one rank append values.
  void add_rank_values(int rank,
                       std::vector<std::pair<std::string, double>> values);

  /// Per-rank named strings (e.g. item failure reasons, fault descriptions).
  /// Exported as a "tags" object per rank in JSON and `tag` rows in CSV.
  void add_rank_tags(int rank,
                     std::vector<std::pair<std::string, std::string>> tags);

  /// Run-level scalars (e.g. ranks, fields, wall seconds).
  void add_summary(std::string key, double value);

  /// Attach the merged metrics snapshot to export alongside the timings.
  void set_metrics(MetricsSnapshot snapshot) { metrics_ = std::move(snapshot); }

  std::string to_json() const;
  std::string to_csv() const;
  bool write_json(const std::string& path) const;
  bool write_csv(const std::string& path) const;

 private:
  struct RankRow {
    int rank = 0;
    std::vector<std::pair<std::string, double>> values;
    std::vector<std::pair<std::string, std::string>> tags;
  };
  RankRow& row_for(int rank);

  std::vector<RankRow> ranks_;
  std::vector<std::pair<std::string, double>> summary_;
  MetricsSnapshot metrics_;
};

/// Standalone metrics serialization (the `--metrics-out` file): one JSON
/// object with "counters", "gauges", and "histograms" keys.
std::string metrics_to_json(const MetricsSnapshot& snapshot);
bool write_metrics_json(const std::string& path,
                        const MetricsSnapshot& snapshot);

}  // namespace dtfe::obs
