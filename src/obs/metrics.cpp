#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace dtfe::obs {

namespace {
std::uint64_t next_registry_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// Thread-local cache mapping a registry instance to this thread's shard.
// Keyed by (pointer, uid) so a registry address reused after destruction
// cannot resurrect a stale shard pointer. Shards are owned by the registry,
// not the thread, so nothing here needs a destructor.
struct ShardCacheEntry {
  const void* registry = nullptr;
  std::uint64_t uid = 0;
  void* shard = nullptr;
};
thread_local std::vector<ShardCacheEntry> t_shard_cache;
}  // namespace

MetricsRegistry::MetricsRegistry() : uid_(next_registry_uid()) {}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: instrumented code may run during static destruction.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

MetricsRegistry::~MetricsRegistry() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Shard* s : live_shards_) delete s;
  live_shards_.clear();
}

MetricId MetricsRegistry::register_metric(const std::string& name,
                                          MetricKind kind,
                                          std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    const Descriptor& d = descriptors_[it->second];
    if (d.kind != kind)
      throw std::logic_error("obs metric '" + name +
                             "' re-registered with a different kind");
    return {static_cast<std::uint32_t>(d.kind == MetricKind::kGauge
                                           ? d.gauge_index
                                           : d.slot_base),
            d.kind, d.kind == MetricKind::kHistogram ? &d.bounds : nullptr};
  }
  Descriptor d;
  d.name = name;
  d.kind = kind;
  if (kind == MetricKind::kGauge) {
    d.gauge_index = gauges_.size();
    gauges_.push_back(0.0);
    gauge_set_.push_back(false);
  } else {
    std::sort(bounds.begin(), bounds.end());
    d.bounds = std::move(bounds);
    d.slot_base = next_slot_;
    // Counter: 1 slot. Histogram: bounds+1 bucket counts, then sum, count.
    next_slot_ += kind == MetricKind::kCounter ? 1 : d.bounds.size() + 3;
  }
  descriptors_.push_back(std::move(d));
  const Descriptor& stored = descriptors_.back();
  by_name_.emplace(name, descriptors_.size() - 1);
  return {static_cast<std::uint32_t>(kind == MetricKind::kGauge
                                         ? stored.gauge_index
                                         : stored.slot_base),
          kind,
          kind == MetricKind::kHistogram ? &stored.bounds : nullptr};
}

MetricId MetricsRegistry::counter(const std::string& name) {
  return register_metric(name, MetricKind::kCounter, {});
}

MetricId MetricsRegistry::gauge(const std::string& name) {
  return register_metric(name, MetricKind::kGauge, {});
}

MetricId MetricsRegistry::histogram(const std::string& name,
                                    std::vector<double> bounds) {
  return register_metric(name, MetricKind::kHistogram, std::move(bounds));
}

MetricsRegistry::Shard& MetricsRegistry::my_shard() {
  for (const ShardCacheEntry& e : t_shard_cache)
    if (e.registry == this && e.uid == uid_)
      return *static_cast<Shard*>(e.shard);
  auto* shard = new Shard();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live_shards_.push_back(shard);
  }
  t_shard_cache.push_back({this, uid_, shard});
  return *shard;
}

void MetricsRegistry::slot_add(std::size_t slot, double v) {
  Shard& s = my_shard();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (slot >= s.slots.size()) s.slots.resize(slot + 1, 0.0);
  s.slots[slot] += v;
}

void MetricsRegistry::observe(MetricId id, double v) {
  if (!enabled() || !id.valid() || id.kind != MetricKind::kHistogram) return;
  const std::vector<double>& bounds = *id.bounds;
  const std::size_t nb = bounds.size();
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
  Shard& s = my_shard();
  std::lock_guard<std::mutex> lock(s.mutex);
  const std::size_t top = id.slot + nb + 2;
  if (top >= s.slots.size()) s.slots.resize(top + 1, 0.0);
  s.slots[id.slot + bucket] += 1.0;
  s.slots[id.slot + nb + 1] += v;    // sum
  s.slots[id.slot + nb + 2] += 1.0;  // count
}

void MetricsRegistry::merge_histogram(const std::string& name,
                                      const HistogramSnapshot& h) {
  if (!enabled()) return;
  const MetricId id = histogram(name, h.bounds);
  const std::size_t nb = id.bounds != nullptr ? id.bounds->size() : 0;
  Shard& s = my_shard();
  std::lock_guard<std::mutex> lock(s.mutex);
  const std::size_t top = id.slot + nb + 2;
  if (top >= s.slots.size()) s.slots.resize(top + 1, 0.0);
  // Bucket layouts agree whenever the worker registered the same bounds;
  // min() guards a malformed payload instead of walking off the slot array.
  const std::size_t n = std::min(h.counts.size(), nb + 1);
  for (std::size_t b = 0; b < n; ++b) s.slots[id.slot + b] += h.counts[b];
  s.slots[id.slot + nb + 1] += h.sum;
  s.slots[id.slot + nb + 2] += h.count;
}

void MetricsRegistry::set(MetricId id, double v) {
  if (!enabled() || !id.valid() || id.kind != MetricKind::kGauge) return;
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[id.slot] = v;
  gauge_set_[id.slot] = true;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<double> totals(next_slot_, 0.0);
  for (const Shard* s : live_shards_) {
    std::lock_guard<std::mutex> slock(s->mutex);
    const std::size_t n = std::min(s->slots.size(), totals.size());
    for (std::size_t i = 0; i < n; ++i) totals[i] += s->slots[i];
  }
  for (const Descriptor& d : descriptors_) {
    switch (d.kind) {
      case MetricKind::kCounter:
        out.counters[d.name] = totals[d.slot_base];
        break;
      case MetricKind::kGauge:
        if (gauge_set_[d.gauge_index])
          out.gauges[d.name] = gauges_[d.gauge_index];
        break;
      case MetricKind::kHistogram: {
        HistogramSnapshot h;
        h.bounds = d.bounds;
        const std::size_t nb = d.bounds.size();
        h.counts.resize(nb + 1);
        for (std::size_t b = 0; b <= nb; ++b)
          h.counts[b] = totals[d.slot_base + b];
        h.sum = totals[d.slot_base + nb + 1];
        h.count = totals[d.slot_base + nb + 2];
        out.histograms[d.name] = std::move(h);
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Shard* s : live_shards_) {
    std::lock_guard<std::mutex> slock(s->mutex);
    std::fill(s->slots.begin(), s->slots.end(), 0.0);
  }
  std::fill(gauges_.begin(), gauges_.end(), 0.0);
  std::fill(gauge_set_.begin(), gauge_set_.end(), false);
}

}  // namespace dtfe::obs
