#include "obs/report.h"

#include <algorithm>
#include <cstdio>

namespace dtfe::obs {

namespace {
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  return std::fclose(f) == 0 && written == body.size();
}

void append_metrics_object(std::string& out, const MetricsSnapshot& m) {
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [k, v] : m.counters) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, k);
    out += ':';
    append_number(out, v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [k, v] : m.gauges) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, k);
    out += ':';
    append_number(out, v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : m.histograms) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out += ',';
      append_number(out, h.bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) out += ',';
      append_number(out, h.counts[i]);
    }
    out += "],\"sum\":";
    append_number(out, h.sum);
    out += ",\"count\":";
    append_number(out, h.count);
    out += '}';
  }
  out += "}}";
}
}  // namespace

RunReport::RankRow& RunReport::row_for(int rank) {
  for (RankRow& r : ranks_)
    if (r.rank == rank) return r;
  ranks_.push_back({rank, {}});
  return ranks_.back();
}

void RunReport::add_rank_values(
    int rank, std::vector<std::pair<std::string, double>> values) {
  RankRow& row = row_for(rank);
  for (auto& kv : values) row.values.push_back(std::move(kv));
}

void RunReport::add_rank_tags(
    int rank, std::vector<std::pair<std::string, std::string>> tags) {
  RankRow& row = row_for(rank);
  for (auto& kv : tags) row.tags.push_back(std::move(kv));
}

void RunReport::add_summary(std::string key, double value) {
  summary_.emplace_back(std::move(key), value);
}

std::string RunReport::to_json() const {
  std::vector<RankRow> ranks = ranks_;
  std::stable_sort(ranks.begin(), ranks.end(),
                   [](const RankRow& a, const RankRow& b) {
                     return a.rank < b.rank;
                   });
  std::string out = "{";
  out += "\"summary\":{";
  bool first = true;
  for (const auto& [k, v] : summary_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, k);
    out += ':';
    append_number(out, v);
  }
  out += "},\"ranks\":[";
  first = true;
  for (const RankRow& r : ranks) {
    if (!first) out += ',';
    first = false;
    out += "{\"rank\":";
    out += std::to_string(r.rank);
    for (const auto& [k, v] : r.values) {
      out += ',';
      append_json_string(out, k);
      out += ':';
      append_number(out, v);
    }
    if (!r.tags.empty()) {
      out += ",\"tags\":{";
      bool first_tag = true;
      for (const auto& [k, v] : r.tags) {
        if (!first_tag) out += ',';
        first_tag = false;
        append_json_string(out, k);
        out += ':';
        append_json_string(out, v);
      }
      out += '}';
    }
    out += '}';
  }
  out += "],\"metrics\":";
  append_metrics_object(out, metrics_);
  out += '}';
  return out;
}

std::string metrics_to_json(const MetricsSnapshot& snapshot) {
  std::string out;
  append_metrics_object(out, snapshot);
  return out;
}

bool write_metrics_json(const std::string& path,
                        const MetricsSnapshot& snapshot) {
  return write_file(path, metrics_to_json(snapshot));
}

std::string RunReport::to_csv() const {
  std::vector<RankRow> ranks = ranks_;
  std::stable_sort(ranks.begin(), ranks.end(),
                   [](const RankRow& a, const RankRow& b) {
                     return a.rank < b.rank;
                   });
  std::string out = "kind,rank,name,value\n";
  const auto row = [&out](const char* kind, const std::string& rank,
                          const std::string& name, double v) {
    out += kind;
    out += ',';
    out += rank;
    out += ',';
    out += name;
    out += ',';
    append_number(out, v);
    out += '\n';
  };
  for (const auto& [k, v] : summary_) row("summary", "", k, v);
  for (const RankRow& r : ranks)
    for (const auto& [k, v] : r.values)
      row("phase", std::to_string(r.rank), k, v);
  for (const RankRow& r : ranks)
    for (const auto& [k, v] : r.tags) {
      // String values are quoted (error messages can contain commas).
      out += "tag,";
      out += std::to_string(r.rank);
      out += ',';
      out += k;
      out += ",\"";
      for (const char c : v) {
        if (c == '"') out += '"';
        out += c;
      }
      out += "\"\n";
    }
  for (const auto& [k, v] : metrics_.counters) row("counter", "", k, v);
  for (const auto& [k, v] : metrics_.gauges) row("gauge", "", k, v);
  for (const auto& [name, h] : metrics_.histograms) {
    row("histogram_sum", "", name, h.sum);
    row("histogram_count", "", name, h.count);
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      const std::string label =
          name + (b < h.bounds.size()
                      ? "_le_" + std::to_string(h.bounds[b])
                      : "_overflow");
      row("histogram_bucket", "", label, h.counts[b]);
    }
  }
  return out;
}

bool RunReport::write_json(const std::string& path) const {
  return write_file(path, to_json());
}

bool RunReport::write_csv(const std::string& path) const {
  return write_file(path, to_csv());
}

}  // namespace dtfe::obs
