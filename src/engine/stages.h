// The distributed many-field pipeline (paper §IV), decomposed into named,
// individually testable stages:
//
//   ExchangeStage  (1) partitioning & redistribution + ghost exchange,
//                  request routing, durable manifest / checkpoint replay
//                  (phase span: pipeline.partition)
//   ScheduleStage  (2) workload modeling (count → time one random item →
//                  Allgather → fit) and (3) the work-sharing schedule +
//                  sender plan (spans: pipeline.model, pipeline.work_share)
//   ComputeStage   (4) execution & communication: local items, acknowledged
//                  work packages, retries, fallback
//   RecoverStage   post-run recomputation of items lost with dead ranks
//                  (span: pipeline.recover)
//   ReduceStage    final agreement: surviving-rank bookkeeping + exit barrier
//
// A StageContext carries the evolving per-rank state between stages; each
// stage is a pure function of the context, so tests can drive them one at a
// time and inspect the intermediate state. run_stages() chains all five —
// it IS the old run_pipeline_impl, behavior-preserved (identical grids,
// spans, metrics, checkpoint and resume semantics).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "engine/state.h"
#include "framework/decomposition.h"
#include "framework/durable.h"
#include "framework/pipeline.h"
#include "framework/schedule.h"
#include "simmpi/comm.h"
#include "util/cancel.h"
#include "util/grid_index.h"
#include "util/rng.h"

namespace dtfe::engine {

class ItemExecutor;

/// Everything one rank's pipeline run reads and produces, shared by the
/// stages. Inputs are set at construction; the rest is filled as stages run.
struct StageContext {
  StageContext(simmpi::Comm& comm_in, const PipelineOptions& opt_in,
               const EngineState& state_in, double box_in,
               double particle_mass_in, std::vector<Vec3> my_block_in,
               std::vector<Vec3> field_centers_in,
               const CubeFetcher& fetch_cube_in);

  // --- inputs --------------------------------------------------------------
  simmpi::Comm& comm;
  const PipelineOptions& opt;
  EngineState state;
  double box;
  double particle_mass;
  std::vector<Vec3> my_block;       ///< consumed by ExchangeStage
  std::vector<Vec3> field_centers;  ///< broadcast/filled by ExchangeStage
  const CubeFetcher& fetch_cube;

  // --- derived constants ---------------------------------------------------
  int P;
  int me;
  double cube_side;
  double ghost_radius;
  Rng rng;  ///< model-sample pick (seeded exactly as the monolith did)
  /// Prepare-pool size from configure_rank_threading (engine/executor.h);
  /// the kernel-team cap is applied to this rank thread's OpenMP ICVs at
  /// construction, so it needs no storage here.
  int prepare_workers = 0;
  /// The stage-scoped overlapped executor, when one is live (set/cleared by
  /// ItemExecutor's constructor/destructor). execute_local falls back to a
  /// private serial executor when null.
  ItemExecutor* exec = nullptr;

  // --- produced by ExchangeStage -------------------------------------------
  std::optional<Decomposition> decomp;
  std::vector<Vec3> local_particles;            ///< owned + ghosts
  std::vector<Vec3> my_requests;                ///< centers this rank owns
  std::vector<std::ptrdiff_t> my_request_ids;   ///< global request indices
  std::unique_ptr<CheckpointWriter> ckpt;
  std::vector<std::pair<std::ptrdiff_t, FieldGrid>> replay_here;

  // --- produced by ScheduleStage -------------------------------------------
  std::optional<GridIndex> index;
  std::vector<double> item_counts;
  std::ptrdiff_t test_item = -1;   ///< index into my_requests (-1 = none)
  FieldGrid test_grid;
  ItemRecord test_record;
  std::vector<double> predicted;
  double total_predicted = 0.0;
  SenderPlan plan;
  std::vector<std::size_t> remaining;  ///< indices into my_requests

  // --- accumulated result --------------------------------------------------
  PipelineResult res;

  // --- helpers shared by ComputeStage / RecoverStage -----------------------
  /// Per-item watchdog budget (see PipelineOptions::item_deadline_ms).
  Deadline make_deadline(double pred_seconds) const;
  /// Commit one computed item: phase accounting, durability, metrics,
  /// item trace spans, result bookkeeping.
  void record_item(ItemRecord rec, FieldGrid grid, double pred_tri,
                   double pred_interp, bool received);
  /// Gather the cube for my_requests[remaining[j]], compute, record.
  void execute_local(std::size_t idx_in_remaining);
};

struct ExchangeStage {
  void run(StageContext& ctx) const;
};
struct ScheduleStage {
  void run(StageContext& ctx) const;
};
struct ComputeStage {
  void run(StageContext& ctx) const;
};
struct RecoverStage {
  void run(StageContext& ctx) const;
};
struct ReduceStage {
  void run(StageContext& ctx) const;
};

/// Run all five stages in order and return the finished per-rank result.
PipelineResult run_stages(StageContext& ctx);

/// One-call convenience over a fresh context (the engine and the legacy
/// run_pipeline* entry points both come through here).
PipelineResult run_stages(simmpi::Comm& comm, const PipelineOptions& opt,
                          const EngineState& state, double box,
                          double particle_mass, std::vector<Vec3> my_block,
                          std::vector<Vec3> field_centers,
                          const CubeFetcher& fetch_cube);

/// The shared kernel invocation behind compute_field_item (which forwards
/// with EngineState::process_default()): explicit-state variant used by the
/// stages so engine-owned metrics/kernels are honored.
FieldGrid compute_item(const EngineState& state,
                       std::vector<Vec3> cube_particles, double mass,
                       const Vec3& center, const PipelineOptions& opt,
                       ItemRecord& record, const Deadline* deadline);

}  // namespace dtfe::engine
