#include "engine/config.h"

#include <cstdlib>

#include "dtfe/audit.h"
#include "engine/field_kernel.h"
#include "util/error.h"

namespace dtfe::engine {

EngineConfig EngineConfig::from_cli(const CliArgs& args) {
  EngineConfig cfg;
  const CommonFieldFlags common = parse_common_field_flags(args, 64L, 5.0);
  cfg.snapshot = common.in;
  cfg.ranks = static_cast<int>(args.get("ranks", 8L));
  cfg.n_fields = static_cast<std::size_t>(args.get("fields", 64L));

  PipelineOptions& opt = cfg.pipeline;
  opt.field_length = common.length;
  opt.field_resolution = common.grid;
  opt.load_balance = args.get("balance", 1L) != 0;
  opt.max_retries = static_cast<int>(args.get("max-retries", 3L));
  opt.comm_timeout_ms = static_cast<int>(args.get("comm-timeout-ms", 2000L));

  const std::string bad = args.get("bad-particles", std::string{"reject"});
  if (bad == "reject") {
    opt.bad_particles = BadParticlePolicy::kReject;
  } else if (bad == "drop") {
    opt.bad_particles = BadParticlePolicy::kDrop;
  } else if (bad == "clamp") {
    opt.bad_particles = BadParticlePolicy::kClamp;
  } else {
    throw Error("unknown --bad-particles " + bad);
  }

  // Durable execution (README "Durable execution & audits").
  opt.checkpoint_dir = args.get("checkpoint-dir", std::string{});
  opt.resume = args.get("resume", 0L) != 0;
  if (opt.resume && opt.checkpoint_dir.empty())
    throw Error("--resume needs --checkpoint-dir");

  const std::string deadline_arg = args.get("item-deadline-ms", std::string{});
  if (deadline_arg == "auto")
    opt.item_deadline_ms = 0.0;  // derive from the fitted cost model
  else if (!deadline_arg.empty())
    opt.item_deadline_ms = std::strtod(deadline_arg.c_str(), nullptr);

  opt.audit.level = parse_audit_level(args.get("audit", std::string{"off"}));
  opt.audit_fatal = args.get("audit-fatal", 0L) != 0;

  opt.kernel = args.get("kernel", std::string{"march"});
  if (!KernelRegistry::builtin().contains(opt.kernel))
    throw Error("unknown --kernel " + opt.kernel);
  // Perf A/B switch for the marching kernel's SIMD batch path; grids are
  // bitwise identical either way (parse_simd_mode throws on bad input).
  opt.use_simd = parse_simd_mode(args.get("use-simd", std::string{"auto"}));

  // Field channel selection (DESIGN.md §10). parse_field_kind throws the
  // user-facing message for unknown names.
  opt.field = parse_field_kind(args.get("field", std::string{"density"}));
  opt.smooth_ensemble =
      static_cast<int>(args.get("smooth-ensemble", 1L));
  if (opt.smooth_ensemble < 1)
    throw Error("--smooth-ensemble must be >= 1");
  // Fail fast instead of surfacing this as a contained per-item failure on
  // every item of the run.
  if (opt.kernel == "tess" && opt.field != FieldKind::kDensity)
    throw Error(
        "kernel 'tess' renders density only; --field=" +
        std::string(field_kind_name(opt.field)) +
        " needs the march or walk kernel");

  // Intra-rank compute pipeline (engine/executor.h).
  opt.compute_ahead = static_cast<int>(args.get("compute-ahead", 0L));
  if (opt.compute_ahead < 0) throw Error("--compute-ahead must be >= 0");
  opt.threads = static_cast<int>(args.get("threads", 0L));
  if (opt.threads < 0) throw Error("--threads must be >= 0");

  cfg.fault_plan = simmpi::FaultPlan::parse(args.get("fault-plan",
                                                     std::string{}));

  // Transport selection (DESIGN.md §9).
  const std::string transport = args.get("transport", std::string{"thread"});
  if (transport == "thread") {
    cfg.transport.kind = TransportKind::kThread;
  } else if (transport == "socket") {
    cfg.transport.kind = TransportKind::kSocket;
  } else {
    throw Error("unknown --transport " + transport +
                " (expected thread or socket)");
  }
  cfg.transport.heartbeat_interval_ms =
      static_cast<int>(args.get("heartbeat-interval-ms", 100L));
  if (cfg.transport.heartbeat_interval_ms < 1)
    throw Error("--heartbeat-interval-ms must be >= 1");
  cfg.transport.heartbeat_miss_limit =
      static_cast<int>(args.get("heartbeat-miss-limit", 20L));
  if (cfg.transport.heartbeat_miss_limit < 1)
    throw Error("--heartbeat-miss-limit must be >= 1");
  cfg.transport.worker_binary = args.get("worker-binary", std::string{});
  return cfg;
}

}  // namespace dtfe::engine
