// Legacy entry points (framework/pipeline.h) over the staged engine:
// run_pipeline / run_pipeline_from_snapshot / compute_field_item keep their
// exact pre-engine signatures and behavior, running on the process-default
// service bundle. Engine instances (engine/engine.h) reach the same stages
// with their own state.
#include "engine/stages.h"
#include "engine/state.h"
#include "framework/pipeline.h"
#include "nbody/snapshot_io.h"

namespace dtfe::engine {

const EngineState& EngineState::process_default() {
  static const PipelineMetrics metrics;
  static const EngineState state{&metrics, &CrashItemRegistry::process_default(),
                                 &KernelRegistry::builtin()};
  return state;
}

}  // namespace dtfe::engine

namespace dtfe {

FieldGrid compute_field_item(std::vector<Vec3> cube_particles, double mass,
                             const Vec3& center, const PipelineOptions& opt,
                             ItemRecord& record, const Deadline* deadline) {
  return engine::compute_item(engine::EngineState::process_default(),
                              std::move(cube_particles), mass, center, opt,
                              record, deadline);
}

PipelineResult run_pipeline(simmpi::Comm& comm, const ParticleSet& particles,
                            std::vector<Vec3> field_centers,
                            const PipelineOptions& opt) {
  // Arbitrary block assignment standing in for the MPI-IO read: rank r
  // takes the r-th contiguous slice of the file order.
  const int P = comm.size();
  const int me = comm.rank();
  const std::size_t n = particles.size();
  const std::size_t lo =
      n * static_cast<std::size_t>(me) / static_cast<std::size_t>(P);
  const std::size_t hi =
      n * static_cast<std::size_t>(me + 1) / static_cast<std::size_t>(P);
  std::vector<Vec3> block(
      particles.positions.begin() + static_cast<std::ptrdiff_t>(lo),
      particles.positions.begin() + static_cast<std::ptrdiff_t>(hi));
  // Recovery source: the full in-memory set every rank already holds.
  const CubeFetcher fetch = [&particles](const Vec3& center, double side) {
    return extract_cube(particles, center, side);
  };
  return engine::run_stages(comm, opt, engine::EngineState::process_default(),
                            particles.box_length, particles.particle_mass,
                            std::move(block), std::move(field_centers), fetch);
}

PipelineResult run_pipeline_from_snapshot(simmpi::Comm& comm,
                                          const std::string& snapshot_path,
                                          std::vector<Vec3> field_centers,
                                          const PipelineOptions& opt) {
  // Parallel read with round-robin block assignment (paper: "a parallel
  // read of the data using an arbitrary block assignment").
  const SnapshotHeader header = read_snapshot_header(snapshot_path);
  std::vector<Vec3> block;
  for (std::size_t b = static_cast<std::size_t>(comm.rank());
       b < header.blocks.size(); b += static_cast<std::size_t>(comm.size())) {
    const auto part = read_snapshot_block(snapshot_path, header, b);
    block.insert(block.end(), part.begin(), part.end());
  }
  // Recovery source: a targeted re-read of only the snapshot blocks whose
  // sub-volumes intersect the requested cube.
  const CubeFetcher fetch = [&snapshot_path, &header](const Vec3& center,
                                                      double side) {
    return read_snapshot_cube(snapshot_path, header, center, side);
  };
  return engine::run_stages(comm, opt, engine::EngineState::process_default(),
                            header.box_length, header.particle_mass,
                            std::move(block), std::move(field_centers), fetch);
}

}  // namespace dtfe
