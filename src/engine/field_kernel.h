// Unified rendering contract for the surface-density kernels.
//
// The three estimators (marching — the paper's §IV-A kernel; walking — the
// DTFE-public-software 3D-grid baseline, Cautun & van de Weygaert 2011;
// tess — the zero-order Voronoi baseline) historically had divergent ad-hoc
// signatures. FieldKernel puts them behind one
//   render(cube, request, deadline, stats)
// contract over a shared FieldCube (the triangulated particle cube), and
// KernelRegistry makes them addressable by the strings the CLI and
// EngineConfig already speak ("march" / "walk" / "tess"). New estimators
// (GPU backends, multi-resolution kernels) plug in by registering a factory;
// nothing in the stages changes.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "delaunay/hull_projection.h"
#include "delaunay/triangulation.h"
#include "dtfe/density.h"
#include "dtfe/field.h"
#include "dtfe/marching_kernel.h"
#include "dtfe/tess_kernel.h"
#include "dtfe/walking_kernel.h"
#include "util/cancel.h"

namespace dtfe::engine {

/// The triangulated particle cube every kernel renders from: one Delaunay
/// mesh plus its DTFE densities and hull silhouette, built once per work
/// item and shared by whichever kernel (or audit) needs it. Construction
/// throws dtfe::Error for degenerate inputs, exactly like the pieces it
/// bundles.
class FieldCube {
 public:
  /// `particles` should already be in canonical (deterministic) order when
  /// bitwise reproducibility matters — the cube does not reorder them.
  FieldCube(std::vector<Vec3> particles, double particle_mass,
            const TriangulationOptions& topt = {});

  const Triangulation& triangulation() const { return *tri_; }
  const DensityField& density() const { return *density_; }
  const HullProjection& hull() const { return *hull_; }
  std::size_t n_particles() const { return points_.size(); }
  /// Canonical-order particle positions (ensemble smoothing jitters copies
  /// of these; velocity channels sample the analytic model at them).
  std::span<const Vec3> points() const { return points_; }
  double particle_mass() const { return particle_mass_; }

  /// Thread-CPU seconds spent in the Delaunay build alone (the pipeline
  /// accounts triangulation and interpolation phases separately).
  double triangulate_seconds() const { return tri_seconds_; }

  /// The SoA crossing-test tables for this cube's triangulation
  /// (dtfe/march_tables.h), built once with the cube and shared by every
  /// marching kernel rendering from it — the unit path and each channel of
  /// a vector render reuse one table instead of rebuilding per kernel.
  std::shared_ptr<const TetraGeomTable> geom_table() const { return geom_; }

 private:
  std::vector<Vec3> points_;
  double particle_mass_ = 1.0;
  std::unique_ptr<Triangulation> tri_;
  std::unique_ptr<DensityField> density_;
  std::unique_ptr<HullProjection> hull_;
  double tri_seconds_ = 0.0;
  std::shared_ptr<const TetraGeomTable> geom_;
};

/// One resolved render request: where/how to evaluate the field, which
/// estimator set to reconstruct, plus the stream seed (0 = keep the
/// kernel's configured default seed).
struct RenderRequest {
  FieldSpec spec;
  std::uint64_t seed = 0;
  FieldKind field = FieldKind::kDensity;
  /// Number of jittered realizations to average (Aragon-Calvo 2020
  /// mass-conserving stochastic smoothing); 1 = the exact legacy render.
  int smooth_ensemble = 1;
  /// Run-level seed for the analytic velocity model. Must be identical on
  /// every rank that may render this item (owner, shipped, recovery), so it
  /// is the RUN seed, never the per-item seed.
  std::uint64_t model_seed = 0;
};

/// Kernel-agnostic health counters filled by render(). Kernels without a
/// given notion leave the field at its default (ray_mass stays NaN for the
/// walking/tess routes, which tells the audit layer to skip the mass check).
struct KernelStats {
  double ray_mass = std::numeric_limits<double>::quiet_NaN();
  std::uint64_t failed_cells = 0;
  std::uint64_t perturb_restarts = 0;
};

class FieldKernel {
 public:
  virtual ~FieldKernel() = default;
  virtual const char* name() const = 0;
  /// Render the request over the cube. `deadline` (may be null) is polled
  /// cooperatively where the kernel supports cancellation; expiry surfaces
  /// as a thrown dtfe::Error, like every other contained render failure.
  /// When request.smooth_ensemble > 1 this averages that many jittered
  /// realizations (rebuilding the tessellation per realization under the
  /// same deadline); with the default of 1 it is exactly one render_one
  /// call on the caller's cube, bit-identical to the scalar-era path.
  FieldGrid render(const FieldCube& cube, const RenderRequest& request,
                   const Deadline* deadline, KernelStats& stats) const;

 protected:
  /// One realization of the requested estimator set over one cube.
  virtual FieldGrid render_one(const FieldCube& cube,
                               const RenderRequest& request,
                               const Deadline* deadline,
                               KernelStats& stats) const = 0;
};

/// Per-kernel knobs a creation site may want to thread through the registry
/// without knowing which kernel it is naming. Defaults reproduce each
/// kernel's stock configuration.
struct KernelOptions {
  MarchingOptions marching;
  WalkingOptions walking;
  TessOptions tess;
};

class MarchingFieldKernel final : public FieldKernel {
 public:
  explicit MarchingFieldKernel(MarchingOptions base = {}) : base_(base) {}
  const char* name() const override { return "march"; }

 protected:
  FieldGrid render_one(const FieldCube& cube, const RenderRequest& request,
                       const Deadline* deadline,
                       KernelStats& stats) const override;

 private:
  MarchingOptions base_;
};

class WalkingFieldKernel final : public FieldKernel {
 public:
  explicit WalkingFieldKernel(WalkingOptions base = {}) : base_(base) {}
  const char* name() const override { return "walk"; }

 protected:
  FieldGrid render_one(const FieldCube& cube, const RenderRequest& request,
                       const Deadline* deadline,
                       KernelStats& stats) const override;

 private:
  WalkingOptions base_;
};

class TessFieldKernel final : public FieldKernel {
 public:
  explicit TessFieldKernel(TessOptions base = {}) : base_(base) {}
  const char* name() const override { return "tess"; }

 protected:
  /// Density only: the zero-order Voronoi estimator has no meaningful
  /// interpolant for vector channels, so non-density requests throw.
  FieldGrid render_one(const FieldCube& cube, const RenderRequest& request,
                       const Deadline* deadline,
                       KernelStats& stats) const override;

 private:
  TessOptions base_;
};

/// String-keyed kernel factory table. builtin() carries march/walk/tess;
/// custom registries (tests, plug-in backends) start empty.
class KernelRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<FieldKernel>(const KernelOptions&)>;

  KernelRegistry() = default;

  /// The immutable process-wide registry of the built-in kernels.
  static const KernelRegistry& builtin();

  /// Register (or replace) a factory under `name`.
  void add(const std::string& name, Factory factory);

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;  ///< sorted

  /// Instantiate the named kernel. Throws dtfe::Error for unknown names.
  std::unique_ptr<FieldKernel> create(const std::string& name,
                                      const KernelOptions& opt = {}) const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace dtfe::engine
