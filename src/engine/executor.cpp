#include "engine/executor.h"

#include <omp.h>

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "engine/phases.h"
#include "framework/crash.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace dtfe::engine {

ThreadBudget plan_thread_budget(const PipelineOptions& opt,
                                int ranks_in_process) {
  ThreadBudget b;
  const int total = opt.threads > 0 ? opt.threads : omp_get_max_threads();
  b.budget = std::max(1, total / std::max(1, ranks_in_process));
  if (opt.compute_ahead > 0) {
    b.workers = std::clamp(std::min(opt.compute_ahead, b.budget - 1), 1, 8);
    b.team = std::max(1, b.budget - b.workers);
  } else {
    b.workers = 0;
    b.team = b.budget;
  }
  return b;
}

ThreadBudget configure_rank_threading(const PipelineOptions& opt,
                                      int ranks_in_process) {
  const ThreadBudget b = plan_thread_budget(opt, ranks_in_process);
  // Per-thread ICVs: each SimMpi rank thread caps its own kernel team, so P
  // rank teams plus the prepare pools together stay within --threads.
  omp_set_num_threads(b.team);
  omp_set_max_active_levels(1);  // never nest teams under the pool
  return b;
}

/// One in-flight item: filled by a prepare worker, consumed (in submission
/// order) by the rank thread. `ready` flips under Impl::mu.
struct ItemExecutor::Slot {
  ItemTask task;
  PreparedItem prepared;
  Deadline deadline;  ///< armed at prepare start; render polls the same one
  std::exception_ptr error;
  bool ready = false;
};

struct ItemExecutor::Impl {
  std::mutex mu;
  std::condition_variable cv_worker;  ///< workers wait for prepare work
  std::condition_variable cv_main;    ///< rank thread waits for readiness
  std::deque<std::shared_ptr<Slot>> prepare_queue;  ///< awaiting a worker
  std::deque<std::shared_ptr<Slot>> commit_queue;   ///< submission order
  std::vector<std::thread> workers;
  bool stop = false;
  // Overlap accounting (rank thread + workers; guarded by mu).
  std::size_t queue_peak = 0;
  std::size_t committed = 0;
  double prepare_cpu_s = 0.0;
  double stall_wall_s = 0.0;
};

ItemExecutor::ItemExecutor(StageContext& ctx)
    : ctx_(ctx), window_(std::max(0, ctx.opt.compute_ahead)) {
  ctx_.exec = this;
  if (window_ == 0) return;
  impl_ = std::make_unique<Impl>();
  const int n_workers = std::max(1, ctx_.prepare_workers);
  impl_->workers.reserve(static_cast<std::size_t>(n_workers));
  for (int w = 0; w < n_workers; ++w) {
    impl_->workers.emplace_back([this] {
      obs::TraceRecorder::set_thread_rank(ctx_.me);
      for (;;) {
        std::shared_ptr<Slot> s;
        {
          std::unique_lock<std::mutex> lk(impl_->mu);
          impl_->cv_worker.wait(lk, [this] {
            return impl_->stop || !impl_->prepare_queue.empty();
          });
          if (impl_->stop) return;
          s = impl_->prepare_queue.front();
          impl_->prepare_queue.pop_front();
        }
        obs::TraceRecorder& tr = obs::TraceRecorder::global();
        const double t0_us = tr.enabled() ? tr.now_us() : 0.0;
        try {
          std::vector<Vec3> cube = s->task.gather();
          s->deadline = ctx_.make_deadline(s->task.pred_seconds);
          const ScopedCrashItem in_flight(ctx_.me, s->task.request_index,
                                          phases::kInFlightPrepare,
                                          ctx_.state.crash);
          s->prepared =
              prepare_item(ctx_.state, std::move(cube), ctx_.particle_mass,
                           s->task.center, ctx_.opt, &s->deadline);
        } catch (...) {
          s->error = std::current_exception();
        }
        if (tr.enabled())
          tr.emit_complete(phases::kExecutorPrepare, phases::kExecutorCategory,
                           t0_us, tr.now_us() - t0_us,
                           {{"cpu_s", s->prepared.prep_cpu},
                            {"n_particles", s->prepared.record.n_particles}});
        {
          std::lock_guard<std::mutex> lk(impl_->mu);
          impl_->prepare_cpu_s += s->prepared.prep_cpu;
          s->ready = true;
        }
        impl_->cv_main.notify_all();
      }
    });
  }
}

ItemExecutor::~ItemExecutor() {
  if (ctx_.exec == this) ctx_.exec = nullptr;
  if (!impl_) return;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop = true;
    // Abandon whatever was not committed: the stage is unwinding (rank kill
    // or fatal audit) and nothing may be recorded out of order.
    impl_->prepare_queue.clear();
    impl_->commit_queue.clear();
  }
  impl_->cv_worker.notify_all();
  for (std::thread& t : impl_->workers) t.join();
}

void ItemExecutor::submit(ItemTask task) {
  if (window_ == 0) {
    // Serial path: byte-for-byte the legacy stage bodies (gather, arm the
    // watchdog, flag the crash registry, compute, record).
    std::vector<Vec3> cube = task.gather();
    ItemRecord rec;
    rec.fallback = task.fallback;
    rec.recovered = task.recovered;
    const Deadline deadline = ctx_.make_deadline(task.pred_seconds);
    const ScopedCrashItem in_flight(ctx_.me, task.request_index,
                                    task.crash_phase, ctx_.state.crash);
    FieldGrid grid =
        compute_item(ctx_.state, std::move(cube), ctx_.particle_mass,
                     task.center, ctx_.opt, rec, &deadline);
    rec.request_index = task.request_index;
    ctx_.record_item(std::move(rec), std::move(grid), task.pred_tri,
                     task.pred_interp, task.received);
    return;
  }

  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    auto s = std::make_shared<Slot>();
    s->task = std::move(task);
    impl_->prepare_queue.push_back(s);
    impl_->commit_queue.push_back(std::move(s));
    impl_->queue_peak = std::max(impl_->queue_peak, impl_->commit_queue.size());
  }
  impl_->cv_worker.notify_one();
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(impl_->mu);
      if (impl_->commit_queue.size() <= static_cast<std::size_t>(window_))
        break;
    }
    commit_front();
  }
}

void ItemExecutor::commit_front() {
  std::shared_ptr<Slot> s;
  {
    std::unique_lock<std::mutex> lk(impl_->mu);
    s = impl_->commit_queue.front();
    impl_->commit_queue.pop_front();
    if (!s->ready) {
      obs::TraceRecorder& tr = obs::TraceRecorder::global();
      const double t0_us = tr.enabled() ? tr.now_us() : 0.0;
      WallTimer stall;
      impl_->cv_main.wait(lk, [&s] { return s->ready; });
      impl_->stall_wall_s += stall.seconds();
      if (tr.enabled())
        tr.emit_complete(phases::kExecutorStall, phases::kExecutorCategory,
                         t0_us, tr.now_us() - t0_us, {});
    }
    ++impl_->committed;
  }
  if (s->error) std::rethrow_exception(s->error);

  PreparedItem& p = s->prepared;
  p.record.fallback = s->task.fallback;
  p.record.recovered = s->task.recovered;
  const ScopedCrashItem in_flight(ctx_.me, s->task.request_index,
                                  s->task.crash_phase, ctx_.state.crash);
  FieldGrid grid = render_prepared(ctx_.state, p, ctx_.opt, &s->deadline);
  p.record.request_index = s->task.request_index;
  if (obs::metrics_enabled())
    obs::add(ctx_.state.metrics->executor_items);
  ctx_.record_item(std::move(p.record), std::move(grid), s->task.pred_tri,
                   s->task.pred_interp, s->task.received);
}

void ItemExecutor::drain() {
  if (!impl_) return;
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(impl_->mu);
      if (impl_->commit_queue.empty()) break;
    }
    commit_front();
  }
  if (obs::metrics_enabled() && impl_->committed > 0) {
    const PipelineMetrics& m = *ctx_.state.metrics;
    obs::add(m.executor_stall_s, impl_->stall_wall_s);
    obs::add(m.executor_prepare_s, impl_->prepare_cpu_s);
    obs::set(m.executor_queue_peak, static_cast<double>(impl_->queue_peak));
    // Fraction of look-ahead prepare CPU hidden behind renders: 1 = the rank
    // thread never waited, 0 = fully serial (stall ≥ prepare).
    const double ratio =
        impl_->prepare_cpu_s > 0.0
            ? std::max(0.0, 1.0 - impl_->stall_wall_s / impl_->prepare_cpu_s)
            : 1.0;
    obs::set(m.executor_overlap_ratio, ratio);
  }
}

}  // namespace dtfe::engine
