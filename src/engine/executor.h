// Intra-rank task-parallel compute pipeline (the "overlapped item pipeline").
//
// The paper's per-item cost splits into an inherently serial incremental
// Delaunay triangulation (c·n·log2 n) and an OpenMP-parallel interpolation
// (α·n^β). ComputeStage used to run items strictly one at a time per rank,
// so the kernel's whole thread team idled while the NEXT item's insertion
// loop ran single-threaded. ItemExecutor overlaps the two: a small pool of
// prepare workers gathers + triangulates up to `--compute-ahead` items while
// the rank thread renders earlier ones.
//
// Determinism contract (PRs 3–4): grids, checkpoint journals, metrics, report
// tags, and crash-registry entries must be bitwise identical to the serial
// path under ANY interleaving. The executor guarantees this structurally:
//   * per-item work (canonical cube sort, per-item kernel seed, render) is a
//     pure function of the submitted inputs, unchanged from compute_item;
//   * commits happen ONLY on the rank thread, strictly in submission order
//     (commit_front pops the oldest item and blocks until its prepare is
//     done), so the journal append order, the res.items order, and every
//     record_item side effect replay the serial schedule exactly.
//
// Threading model (also in DESIGN.md "Threading model"): SimMpi runs each
// rank as a std::thread, so a process hosts P rank threads. The per-rank
// budget is threads/P (--threads, default the OpenMP global default). With
// overlap on, each rank splits its budget into `workers` prepare threads and
// a kernel team of budget − workers; workers never enter OpenMP regions, so
// pool threads × OpenMP teams never multiply. configure_rank_threading()
// pins the team size via the calling thread's OpenMP ICVs and disables
// nested parallelism once per rank.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>

#include "engine/stages.h"

namespace dtfe::engine {

/// How one rank divides its thread budget (see file comment).
struct ThreadBudget {
  int budget = 1;   ///< threads available to this rank
  int team = 1;     ///< OpenMP kernel team size for renders
  int workers = 0;  ///< prepare-pool threads (0 = serial path)
};

/// Pure planning: budget = max(1, threads / ranks_in_process); with overlap,
/// workers = min(compute_ahead, budget − 1) clamped to [1, 8] and the kernel
/// team gets the rest. On a 1-thread budget the single worker rides the
/// render's idle bubbles (cooperative oversubscription by one thread).
ThreadBudget plan_thread_budget(const PipelineOptions& opt,
                                int ranks_in_process);

/// Apply the plan to the calling rank thread: cap its OpenMP team via the
/// per-thread ICV and disable nested teams. Returns the plan so callers can
/// record it (StageContext keeps the worker count for ItemExecutor).
ThreadBudget configure_rank_threading(const PipelineOptions& opt,
                                      int ranks_in_process);

/// Everything prepare_item() produced for one item, handed from a prepare
/// worker to the rank thread. When `done` is set the grid is already final
/// (contained failure or an expected-empty zero field) and render_prepared
/// only forwards it.
struct PreparedItem {
  ItemRecord record;
  std::optional<FieldCube> cube;  ///< engaged iff a render is still needed
  FieldGrid grid;                 ///< the final grid when `done`
  double prep_cpu = 0.0;          ///< thread-CPU seconds of the prepare
  bool done = false;
};

/// The serial prefix of compute_item: input hardening, canonical cube sort,
/// and the FieldCube build (triangulation + density + hull). Contained
/// failures (degenerate cube, watchdog expiry) are finalized here. Safe to
/// run on a pool thread: it touches only its arguments and the (thread-safe)
/// metrics registry.
PreparedItem prepare_item(const EngineState& state,
                          std::vector<Vec3> cube_particles, double mass,
                          const Vec3& center, const PipelineOptions& opt,
                          const Deadline* deadline);

/// The rest of compute_item: kernel render, audit, fatal-audit escalation,
/// output hardening. Must run on the rank thread (it may throw to kill the
/// rank, and its timing lands in the rank's PhaseTimes). Consumes `p`.
FieldGrid render_prepared(const EngineState& state, PreparedItem& p,
                          const PipelineOptions& opt, const Deadline* deadline);

/// One unit of work for the executor. `gather` materializes the particle
/// cube (owner-index gather, unpacked package cube, or recovery re-fetch)
/// and runs on the preparing thread, before the item's deadline is armed —
/// matching the serial paths, where gathering is never under the watchdog.
struct ItemTask {
  std::function<std::vector<Vec3>()> gather;
  Vec3 center;
  std::ptrdiff_t request_index = -1;
  double pred_seconds = 0.0;      ///< deadline budget basis
  double pred_tri = 0.0;          ///< model prediction recorded on commit
  double pred_interp = 0.0;
  const char* crash_phase = nullptr;  ///< commit-path in-flight label
  bool received = false;
  bool fallback = false;
  bool recovered = false;
};

/// Bounded-window overlapped scheduler for one stage of one rank. With
/// compute_ahead == 0 it degenerates to the exact legacy serial path (no
/// threads, compute_item inline). Not thread-safe: submit()/drain() are
/// rank-thread only. The destructor abandons uncommitted work (used when an
/// exception — audit_fatal, rank kill — unwinds the stage).
class ItemExecutor {
 public:
  explicit ItemExecutor(StageContext& ctx);
  ItemExecutor(const ItemExecutor&) = delete;
  ItemExecutor& operator=(const ItemExecutor&) = delete;
  ~ItemExecutor();

  /// Enqueue one item; commits the oldest in-flight items on this thread
  /// while more than `compute_ahead` are pending. May throw whatever
  /// render_prepared throws (fatal audits) — in submission order.
  void submit(ItemTask task);

  /// Commit everything still in flight (in order) and publish the
  /// dtfe.executor.* gauges. Must be called before the stage's results are
  /// read; returns with the queue empty.
  void drain();

 private:
  struct Slot;
  struct Impl;

  void commit_front();

  StageContext& ctx_;
  int window_ = 0;
  std::unique_ptr<Impl> impl_;  ///< pool state; null when window_ == 0
};

}  // namespace dtfe::engine
