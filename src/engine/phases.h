// Single source of truth for pipeline phase identity.
//
// Three subsystems must agree, by construction, on what a "phase" is called:
//   * PhaseTimes accumulation + the "pipeline"-category trace spans emitted
//     by the stages (tests/obs asserts their cpu_s args sum to
//     PhaseTimes::total(), so the span names are part of the contract),
//   * the per-rank run-report rows written by the pdtfe CLI, and
//   * the crash-diagnostics in-flight registry, whose phase labels must be
//     string literals with static storage (the signal handler prints the
//     pointer's target after the fault).
// Every producer takes its name from here; nothing else spells them out.
#pragma once

namespace dtfe::engine::phases {

/// Trace-span category shared by every stage span (tests sum cpu_s over it).
inline constexpr const char* kCategory = "pipeline";

// Stage-level span names (one per PhaseTimes field, plus the pack/unpack
// sub-spans that accumulate into work_share).
inline constexpr const char* kPartition = "pipeline.partition";
inline constexpr const char* kModel = "pipeline.model";
inline constexpr const char* kWorkShare = "pipeline.work_share";
inline constexpr const char* kPack = "pipeline.pack";
inline constexpr const char* kUnpack = "pipeline.unpack";
inline constexpr const char* kRecover = "pipeline.recover";

// Per-item span names (re-emitted with the exact cpu_s accumulated into
// PhaseTimes::triangulate / ::render).
inline constexpr const char* kItemTriangulate = "item.triangulate";
inline constexpr const char* kItemRender = "item.render";

// Intra-rank compute-pipeline spans (engine/executor.h). These live in their
// OWN category: the "pipeline" category's cpu_s args must keep summing to
// PhaseTimes::total() (tests/obs), and executor spans measure overlap, not
// phase time.
inline constexpr const char* kExecutorCategory = "executor";
inline constexpr const char* kExecutorPrepare = "executor.prepare";
inline constexpr const char* kExecutorStall = "executor.stall";

// Crash-registry in-flight labels: which execution path owned the item when
// a hard fault hit. Must stay string literals (see framework/crash.h).
inline constexpr const char* kInFlightModelSample = "model_sample";
inline constexpr const char* kInFlightLocal = "execute_local";
inline constexpr const char* kInFlightReceived = "received";
inline constexpr const char* kInFlightFallback = "fallback";
inline constexpr const char* kInFlightRecover = "recover";
/// A pool worker gathering/triangulating a looked-ahead item
/// (engine/executor.h); the item is re-labeled with its commit-path label
/// when the rank thread renders and records it.
inline constexpr const char* kInFlightPrepare = "prepare_ahead";

// Run-report per-rank row keys (obs::RunReport::add_rank_values).
inline constexpr const char* kReportPartition = "partition_s";
inline constexpr const char* kReportModel = "model_s";
inline constexpr const char* kReportWorkShare = "work_share_s";
inline constexpr const char* kReportTriangulate = "triangulate_s";
inline constexpr const char* kReportRender = "render_s";
inline constexpr const char* kReportRecover = "recover_s";
inline constexpr const char* kReportTotal = "total_s";

}  // namespace dtfe::engine::phases
