// Per-engine service bundle threaded through the stages.
//
// Before the engine layer existed, the pipeline reached for function-local
// statics (its metric-id pack, the crash in-flight slots) — harmless for one
// run per process, a shared-state hazard for a re-entrant library. Every
// engine::Engine now owns its instances and hands them to the stages via
// EngineState; the legacy run_pipeline entry points fall back to
// process-default instances so standalone callers keep working unchanged.
#pragma once

#include "engine/field_kernel.h"
#include "framework/crash.h"
#include "obs/metrics.h"

namespace dtfe::engine {

/// The pipeline's metric ids, resolved once against the global registry.
/// Ids are stable handles, so several instances naming the same metrics
/// coexist safely — what instances avoid is the shared function-local
/// static (and its lazy-init) inside the stage hot paths.
struct PipelineMetrics {
  obs::MetricId items_computed = obs::counter("dtfe.pipeline.items_computed");
  obs::MetricId items_received = obs::counter("dtfe.pipeline.items_received");
  obs::MetricId items_sent = obs::counter("dtfe.pipeline.items_sent");
  obs::MetricId work_packages =
      obs::counter("dtfe.pipeline.work_packages_sent");
  obs::MetricId runs = obs::counter("dtfe.pipeline.runs");
  obs::MetricId items_failed = obs::counter("dtfe.item.failed");
  obs::MetricId items_recovered =
      obs::counter("dtfe.pipeline.items_recovered");
  obs::MetricId fallback = obs::counter("dtfe.workshare.fallback");
  obs::MetricId retries = obs::counter("dtfe.workshare.retries");
  obs::MetricId packages_lost = obs::counter("dtfe.workshare.packages_lost");
  obs::MetricId bad_particles = obs::counter("dtfe.input.bad_particles");
  obs::MetricId items_replayed =
      obs::counter("dtfe.pipeline.items_replayed");
  obs::MetricId checkpoint_commits =
      obs::counter("dtfe.checkpoint.items_committed");
  obs::MetricId cancelled = obs::counter("dtfe.watchdog.items_cancelled");
  // Intra-rank compute pipeline (engine/executor.h).
  obs::MetricId executor_items =
      obs::counter("dtfe.executor.items_pipelined");
  obs::MetricId executor_stall_s =
      obs::counter("dtfe.executor.stall_seconds");
  obs::MetricId executor_prepare_s =
      obs::counter("dtfe.executor.prepare_seconds");
  obs::MetricId executor_queue_peak =
      obs::gauge("dtfe.executor.queue_peak");
  obs::MetricId executor_overlap_ratio =
      obs::gauge("dtfe.executor.overlap_ratio");
};

/// Borrowed references to the services one pipeline run uses. All pointers
/// must outlive the run; none may be null.
struct EngineState {
  const PipelineMetrics* metrics;
  CrashItemRegistry* crash;
  const KernelRegistry* kernels;

  /// Fallback bundle for the non-engine entry points (run_pipeline,
  /// compute_field_item): process-default crash registry, builtin kernels,
  /// one shared metric-id pack.
  static const EngineState& process_default();
};

}  // namespace dtfe::engine
