#include "engine/stages.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>
#include <span>
#include <string>

#include "engine/executor.h"
#include "engine/field_kernel.h"
#include "engine/phases.h"
#include "framework/crash.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/retry.h"
#include "util/timer.h"

namespace dtfe::engine {

namespace {

constexpr int kTagWork = 200;
constexpr int kTagWorkAck = 201;

/// Acknowledgement for one work package, identified by its sequence number.
struct WorkAck {
  std::int32_t code = 0;
  std::int32_t seq = 0;  ///< -1 when the receiver never saw a valid header
};
constexpr std::int32_t kAckOk = 1;      ///< package validated, items accepted
constexpr std::int32_t kAckResend = 2;  ///< package missing/corrupt, send again
constexpr std::int32_t kAckGiveUp = 3;  ///< retries exhausted, sender keeps it

/// Accumulates the scope's thread-CPU seconds into a PhaseTimes field (via
/// ScopedTimer) and emits a phases::kCategory trace span whose `cpu_s`
/// argument is EXACTLY the accumulated value: tests/obs asserts that the
/// per-rank sum of `cpu_s` over pipeline spans reproduces
/// PhaseTimes::total(), so both must come from the same timer read.
class PhaseScope {
 public:
  PhaseScope(const char* name, double& accumulator)
      : name_(name),
        timer_(accumulator),
        start_us_(obs::TraceRecorder::global().now_us()) {}
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
  ~PhaseScope() {
    const double cpu = timer_.stop();
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    if (rec.enabled())
      rec.emit_complete(name_, phases::kCategory, start_us_,
                        rec.now_us() - start_us_, {{"cpu_s", cpu}});
  }

 private:
  const char* name_;
  ScopedTimer timer_;
  double start_us_;
};

// Work package wire format, all doubles:
//   header  [kPackMagic, seq, n_payload, checksum(payload)]
//   payload [n_items, {req_idx, cx, cy, cz, count, xyz...}...]
// seq starts at 1 and increases per sender, so a receiver can reject stale
// duplicates; the checksum lets it detect corruption and request a resend.
constexpr double kPackMagic = 7119720.0;

/// FNV-1a over the payload bytes, folded to 32 bits so the value is exactly
/// representable as a double and the package stays a plain double buffer.
double payload_checksum(std::span<const double> payload) {
  std::uint64_t h = 1469598103934665603ull;
  const auto* bytes = reinterpret_cast<const unsigned char*>(payload.data());
  const std::size_t n = payload.size() * sizeof(double);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return static_cast<double>(static_cast<std::uint32_t>(h ^ (h >> 32)));
}

std::vector<double> pack_items(
    int seq, const std::vector<std::ptrdiff_t>& request_ids,
    const std::vector<Vec3>& centers,
    const std::vector<std::vector<Vec3>>& particle_sets) {
  std::vector<double> buf(4, 0.0);
  buf.push_back(static_cast<double>(centers.size()));
  for (std::size_t i = 0; i < centers.size(); ++i) {
    buf.push_back(static_cast<double>(request_ids[i]));
    buf.push_back(centers[i].x);
    buf.push_back(centers[i].y);
    buf.push_back(centers[i].z);
    buf.push_back(static_cast<double>(particle_sets[i].size()));
    for (const Vec3& p : particle_sets[i]) {
      buf.push_back(p.x);
      buf.push_back(p.y);
      buf.push_back(p.z);
    }
  }
  buf[0] = kPackMagic;
  buf[1] = static_cast<double>(seq);
  buf[2] = static_cast<double>(buf.size() - 4);
  buf[3] = payload_checksum({buf.data() + 4, buf.size() - 4});
  return buf;
}

/// Full validation of a received package: header sanity, checksum, and a
/// structural walk of the payload so unpack_items cannot run off the end.
/// Returns an empty string when the package is good, else the reason.
std::string package_problem(const std::vector<double>& buf) {
  if (buf.size() < 5) return "package shorter than its header";
  if (buf[0] != kPackMagic) return "bad package magic";
  if (buf[2] != static_cast<double>(buf.size() - 4))
    return "package length mismatch (truncated or padded)";
  if (buf[3] != payload_checksum({buf.data() + 4, buf.size() - 4}))
    return "package checksum mismatch";
  const double n_items = buf[4];
  if (!(n_items >= 0.0) || n_items != std::floor(n_items))
    return "package item count is malformed";
  std::size_t pos = 5;
  for (double i = 0.0; i < n_items; i += 1.0) {
    if (pos + 5 > buf.size()) return "package payload is malformed";
    const double count = buf[pos + 4];
    if (!(count >= 0.0) || count != std::floor(count))
      return "package particle count is malformed";
    pos += 5 + 3 * static_cast<std::size_t>(count);
  }
  if (pos != buf.size()) return "package payload is malformed";
  return {};
}

void unpack_items(const std::vector<double>& buf,
                  std::vector<std::ptrdiff_t>& request_ids,
                  std::vector<Vec3>& centers,
                  std::vector<std::vector<Vec3>>& particle_sets) {
  DTFE_CHECK(buf.size() >= 5);
  std::size_t pos = 4;
  const auto n = static_cast<std::size_t>(buf[pos++]);
  request_ids.resize(n);
  centers.resize(n);
  particle_sets.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    request_ids[i] = static_cast<std::ptrdiff_t>(buf[pos++]);
    centers[i] = {buf[pos], buf[pos + 1], buf[pos + 2]};
    pos += 3;
    const auto count = static_cast<std::size_t>(buf[pos++]);
    particle_sets[i].resize(count);
    for (std::size_t k = 0; k < count; ++k) {
      particle_sets[i][k] = {buf[pos], buf[pos + 1], buf[pos + 2]};
      pos += 3;
    }
  }
  DTFE_CHECK(pos == buf.size());
}

bool finite3(const Vec3& p) {
  return std::isfinite(p.x) && std::isfinite(p.y) && std::isfinite(p.z);
}

/// Per-item kernel seed: a pure function of the pipeline seed and the
/// field center's bit patterns. Every data path that computes this item
/// derives the same seed, so renders replay bitwise on resume.
std::uint64_t item_seed(std::uint64_t base, const Vec3& center) {
  std::uint64_t h = base ^ 0x9e3779b97f4a7c15ull;
  for (const double v : {center.x, center.y, center.z}) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    h ^= bits;
    h = detail::splitmix64(h);
  }
  return h ? h : 0x9e3779b97f4a7c15ull;
}

bool lex_less(const Vec3& a, const Vec3& b) {
  if (a.x != b.x) return a.x < b.x;
  if (a.y != b.y) return a.y < b.y;
  return a.z < b.z;
}

}  // namespace

PreparedItem prepare_item(const EngineState& state,
                          std::vector<Vec3> cube_particles, double mass,
                          const Vec3& center, const PipelineOptions& opt,
                          const Deadline* deadline) {
  PreparedItem p;
  ItemRecord& record = p.record;
  record.center = center;
  record.n_particles = static_cast<double>(cube_particles.size());
  auto contain = [&](const char* reason) {
    record.failed = true;
    record.fail_reason = reason;
    if (obs::metrics_enabled()) obs::add(state.metrics->items_failed);
    p.grid = FieldGrid(opt.field, opt.field_resolution, opt.field_resolution);
    p.done = true;
  };
  for (const Vec3& q : cube_particles)
    if (!finite3(q)) {
      contain("non-finite particle position in cube");
      return p;
    }
  if (cube_particles.size() < opt.min_particles) {
    // An (almost) empty region is an expected zero field, not a failure.
    p.grid = FieldGrid(opt.field, opt.field_resolution, opt.field_resolution);
    p.done = true;
    return p;
  }
  // Canonical input order: the owner-gathered, shipped, re-fetched, and
  // re-read cubes hold the same particle SET in different orders; sorting
  // makes the triangulation input — and hence the rendered grid — bitwise
  // identical across all of them.
  std::sort(cube_particles.begin(), cube_particles.end(), lex_less);
  ThreadCpuTimer t;
  try {
    TriangulationOptions topt;
    topt.deadline = deadline;
    p.cube.emplace(std::move(cube_particles), mass, topt);
    record.actual_tri = p.cube->triangulate_seconds();
  } catch (const Error& e) {
    // Degenerate cube (e.g. all points coplanar) or a watchdog
    // cancellation: contained as an empty field, as a production code must
    // tolerate pathological requests.
    record.actual_tri = t.seconds();
    record.failed = true;
    record.fail_reason = e.what();
    record.cancelled =
        record.fail_reason.find("deadline exceeded") != std::string::npos;
    if (obs::metrics_enabled()) obs::add(state.metrics->items_failed);
    p.grid = FieldGrid(opt.field, opt.field_resolution, opt.field_resolution);
    p.done = true;
  }
  p.prep_cpu = t.seconds();
  return p;
}

FieldGrid render_prepared(const EngineState& state, PreparedItem& p,
                          const PipelineOptions& opt,
                          const Deadline* deadline) {
  if (p.done) return std::move(p.grid);
  ItemRecord& record = p.record;
  const Vec3 center = record.center;
  auto contain = [&](const char* reason) {
    record.failed = true;
    record.fail_reason = reason;
    if (obs::metrics_enabled()) obs::add(state.metrics->items_failed);
    return FieldGrid(opt.field, opt.field_resolution, opt.field_resolution);
  };
  ThreadCpuTimer t;
  FieldGrid grid;
  AuditResult audit;
  RenderRequest request;
  try {
    request.spec =
        FieldSpec::centered(center, opt.field_length, opt.field_resolution);
    request.seed = item_seed(opt.seed, center);
    request.field = opt.field;
    request.smooth_ensemble = opt.smooth_ensemble;
    // The velocity model is a run-level field: every rank that may render
    // this item must sample the same one, so it seeds from the RUN seed.
    request.model_seed = opt.seed;
    KernelOptions kopt;
    kopt.marching.use_simd = opt.use_simd;
    const std::unique_ptr<FieldKernel> kernel =
        state.kernels->create(opt.kernel, kopt);
    KernelStats stats;
    grid = kernel->render(*p.cube, request, deadline, stats);
    // Density/hull construction rides inside the cube build, so it lands in
    // the interpolation share, exactly as the pre-engine accounting did
    // (prepare CPU minus the triangulation share, plus the render itself —
    // valid across threads because both timers are per-thread CPU clocks
    // over their own work).
    record.actual_interp = (p.prep_cpu - record.actual_tri) + t.seconds();
    record.kernel_failed_cells = static_cast<double>(stats.failed_cells);
    record.kernel_perturb_restarts =
        static_cast<double>(stats.perturb_restarts);
    if (opt.audit.level != AuditLevel::kOff) {
      AuditOptions aopt = opt.audit;
      std::uint64_t aseed = request.seed;
      aopt.seed = detail::splitmix64(aseed);  // same cells on replay
      audit = audit_field_item(grid, request.spec, stats.ray_mass,
                               &p.cube->density(), &p.cube->hull(), aopt,
                               request.model_seed);
      record.audit = audit.summary();
    }
  } catch (const Error& e) {
    // Unknown kernel or a watchdog cancellation inside the render: contained
    // exactly as the monolithic compute_item did, with the whole elapsed
    // CPU attributed to actual_tri.
    record.actual_tri = p.prep_cpu + t.seconds();
    record.failed = true;
    record.fail_reason = e.what();
    record.cancelled =
        record.fail_reason.find("deadline exceeded") != std::string::npos;
    if (obs::metrics_enabled()) obs::add(state.metrics->items_failed);
    return FieldGrid(opt.field, opt.field_resolution, opt.field_resolution);
  }
  // Fatal audits escalate OUTSIDE the containment catch: a conservation
  // violation means the run's outputs cannot be trusted, so it aborts the
  // rank instead of zeroing the item.
  if (!audit.ok() && opt.audit_fatal) {
    std::string what = "audit failed for item at center (";
    what += std::to_string(center.x) + ", " + std::to_string(center.y) + ", " +
            std::to_string(center.z) + "):";
    for (const AuditFinding& f : audit.violations)
      what += " [" + f.check + "] " + f.detail;
    throw Error(what);
  }
  for (std::size_t c = 0; c < grid.channels(); ++c)
    for (const double v : grid.plane(c).values())
      if (!std::isfinite(v))
        return contain("non-finite value in rendered grid");
  return grid;
}

FieldGrid compute_item(const EngineState& state,
                       std::vector<Vec3> cube_particles, double mass,
                       const Vec3& center, const PipelineOptions& opt,
                       ItemRecord& record, const Deadline* deadline) {
  PreparedItem p = prepare_item(state, std::move(cube_particles), mass, center,
                                opt, deadline);
  // Callers pre-set path flags (fallback/recover) on `record` before the
  // call; carry them into the prepared record the same way the executor's
  // commit path does.
  p.record.fallback = record.fallback;
  p.record.recovered = record.recovered;
  FieldGrid grid = render_prepared(state, p, opt, deadline);
  record = std::move(p.record);
  return grid;
}

StageContext::StageContext(simmpi::Comm& comm_in, const PipelineOptions& opt_in,
                           const EngineState& state_in, double box_in,
                           double particle_mass_in,
                           std::vector<Vec3> my_block_in,
                           std::vector<Vec3> field_centers_in,
                           const CubeFetcher& fetch_cube_in)
    : comm(comm_in),
      opt(opt_in),
      state(state_in),
      box(box_in),
      particle_mass(particle_mass_in),
      my_block(std::move(my_block_in)),
      field_centers(std::move(field_centers_in)),
      fetch_cube(fetch_cube_in),
      P(comm_in.size()),
      me(comm_in.rank()),
      cube_side(opt_in.cube_pad * opt_in.field_length),
      ghost_radius(0.5 * opt_in.cube_pad * opt_in.field_length),
      rng(opt_in.seed * 7919 + static_cast<std::uint64_t>(comm_in.rank())) {
  obs::TraceRecorder::set_thread_rank(me);
  obs::add(state.metrics->runs);
  // Cap this rank thread's OpenMP team (and reserve the prepare pool's
  // share) so P rank teams plus pool threads never oversubscribe; see
  // engine/executor.h "Threading model".
  prepare_workers = configure_rank_threading(opt, P).workers;
}

Deadline StageContext::make_deadline(double pred_seconds) const {
  if (opt.item_deadline_ms < 0.0) return Deadline();
  if (opt.item_deadline_ms > 0.0)
    return Deadline::after_ms(opt.item_deadline_ms);
  return Deadline::after_ms(
      std::max(opt.min_item_deadline_ms,
               1000.0 * pred_seconds * opt.watchdog_slack));
}

void StageContext::record_item(ItemRecord rec, FieldGrid grid, double pred_tri,
                               double pred_interp, bool received) {
  rec.predicted_tri = pred_tri;
  rec.predicted_interp = pred_interp;
  rec.received = received;
  rec.grid_sum = grid.sum();
  // Per-channel accounting for the vector estimator sets. Density keeps the
  // scalar-era metric set untouched (report parity with pre-refactor runs).
  if (obs::metrics_enabled() && opt.field != FieldKind::kDensity) {
    const std::vector<std::string> names = field_channel_names(grid.kind());
    for (std::size_t c = 0; c < grid.channels(); ++c)
      obs::add(obs::counter("dtfe.field." + names[c] + ".sum"),
               grid.plane_sum(c));
    obs::add(obs::counter("dtfe.field.items"));
  }
  res.phases.triangulate += rec.actual_tri;
  res.phases.render += rec.actual_interp;
  if (rec.failed) ++res.items_failed;
  if (rec.fallback) ++res.items_fallback;
  if (rec.recovered) ++res.items_recovered;
  if (rec.replayed) ++res.items_replayed;
  if (rec.cancelled) ++res.items_cancelled;
  if (!rec.audit.empty() && rec.audit != "pass") ++res.audit_violations;
  // Commit point: the item becomes durable before it counts as done. A
  // replayed item is already durable in some journal — re-journaling it
  // would only bloat the directory.
  if (ckpt && !rec.replayed && rec.request_index >= 0) {
    ckpt->append(static_cast<std::int64_t>(rec.request_index), grid);
    if (obs::metrics_enabled()) obs::add(state.metrics->checkpoint_commits);
  }
  if (obs::metrics_enabled()) {
    const PipelineMetrics& m = *state.metrics;
    obs::add(m.items_computed);
    if (received) obs::add(m.items_received);
    if (rec.fallback) obs::add(m.fallback);
    if (rec.recovered) obs::add(m.items_recovered);
    if (rec.replayed) obs::add(m.items_replayed);
    if (rec.cancelled) obs::add(m.cancelled);
  }
  obs::TraceRecorder& tr = obs::TraceRecorder::global();
  if (tr.enabled()) {
    // Re-emit the item's externally measured CPU times as back-to-back
    // spans ending now (the compute itself happened just above, or in
    // ScheduleStage for the model's test item). cpu_s repeats the exact
    // values accumulated into PhaseTimes.
    const double now = tr.now_us();
    const double tri_us = std::max(0.0, rec.actual_tri * 1e6);
    const double render_us = std::max(0.0, rec.actual_interp * 1e6);
    tr.emit_complete(phases::kItemTriangulate, phases::kCategory,
                     now - render_us - tri_us, tri_us,
                     {{"cpu_s", rec.actual_tri},
                      {"n_particles", rec.n_particles},
                      {"received", received ? 1.0 : 0.0}});
    tr.emit_complete(phases::kItemRender, phases::kCategory, now - render_us,
                     render_us,
                     {{"cpu_s", rec.actual_interp},
                      {"received", received ? 1.0 : 0.0}});
  }
  res.items.push_back(rec);
  if (opt.keep_grids) res.grids.push_back(std::move(grid));
}

void StageContext::execute_local(std::size_t idx_in_remaining) {
  const std::size_t i = remaining[idx_in_remaining];
  ItemTask task;
  // The gather runs on the preparing thread: GridIndex queries are const and
  // local_particles is frozen after ExchangeStage, so concurrent look-ahead
  // gathers are safe.
  task.gather = [this, i] {
    std::vector<std::uint32_t> ids;
    index->gather_in_cube(my_requests[i], cube_side, ids);
    std::vector<Vec3> cube;
    cube.reserve(ids.size());
    for (const auto id : ids) cube.push_back(local_particles[id]);
    return cube;
  };
  task.center = my_requests[i];
  task.request_index = my_request_ids[i];
  task.pred_seconds = res.model.predict(item_counts[i]);
  task.pred_tri = res.model.predict_tri(item_counts[i]);
  task.pred_interp = res.model.predict_interp(item_counts[i]);
  task.crash_phase = phases::kInFlightLocal;
  if (exec) {
    exec->submit(std::move(task));
  } else {
    // No stage-scoped executor (stage driven directly, e.g. from tests):
    // run the item through a private one, serial or overlapped per opt.
    ItemExecutor local(*this);
    local.submit(std::move(task));
    local.drain();
  }
}

// ---- Stage 1: partitioning & redistribution + durable setup ---------------

void ExchangeStage::run(StageContext& ctx) const {
  const PipelineOptions& opt = ctx.opt;
  PipelineResult& res = ctx.res;
  PhaseScope scope(phases::kPartition, res.phases.partition);

  // Input hardening: repair or reject bad positions before they can poison
  // the redistribution (an out-of-box particle has no owner rank; a NaN
  // position corrupts any triangulation it reaches).
  res.bad_particles =
      sanitize_positions(ctx.my_block, ctx.box, opt.bad_particles);
  if (res.bad_particles.bad() > 0 && obs::metrics_enabled())
    obs::add(ctx.state.metrics->bad_particles,
             static_cast<double>(res.bad_particles.bad()));

  ctx.decomp.emplace(ctx.P, ctx.box);
  const Decomposition& decomp = *ctx.decomp;
  {
    auto owned = decomp.redistribute(ctx.comm, std::move(ctx.my_block));
    res.owned_particles = owned.size();
    ctx.local_particles =
        decomp.exchange_ghosts(ctx.comm, owned, ctx.ghost_radius);
    res.ghost_particles = ctx.local_particles.size() - owned.size();
  }

  // Field locations: read by one process and broadcast; each rank keeps the
  // requests whose center falls in its sub-volume. Requests carry their
  // global index so completion can be tracked across ranks.
  {
    std::vector<std::byte> blob;
    if (ctx.me == 0) {
      blob.resize(ctx.field_centers.size() * sizeof(Vec3));
      std::memcpy(blob.data(), ctx.field_centers.data(), blob.size());
    }
    ctx.comm.bcast_bytes(blob, 0);
    if (ctx.me != 0) {
      ctx.field_centers.resize(blob.size() / sizeof(Vec3));
      std::memcpy(ctx.field_centers.data(), blob.data(), blob.size());
    }
  }
  for (std::size_t gi = 0; gi < ctx.field_centers.size(); ++gi) {
    const Vec3 w = wrap_periodic(ctx.field_centers[gi], ctx.box);
    if (decomp.owner_of(w) == ctx.me) {
      ctx.my_requests.push_back(w);
      ctx.my_request_ids.push_back(static_cast<std::ptrdiff_t>(gi));
    }
  }
  res.local_items = ctx.my_requests.size();

  // ---- Durable execution: manifest, resume replay, journal ----------------
  if (!opt.checkpoint_dir.empty()) {
    // Fingerprint everything that shapes the per-item grids, so a stale
    // checkpoint directory cannot silently resume a different problem.
    std::string fp = "pdtfe-ckpt-v1";
    auto fld = [&fp](double v) {
      fp += '|';
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", v);
      fp += buf;
    };
    fld(ctx.box);
    fld(ctx.particle_mass);
    fld(opt.field_length);
    fld(static_cast<double>(opt.field_resolution));
    fld(opt.cube_pad);
    fld(static_cast<double>(opt.min_particles));
    fld(static_cast<double>(opt.seed));
    fld(static_cast<double>(ctx.field_centers.size()));
    fp += '|';
    fp += std::to_string(fnv1a64(ctx.field_centers.data(),
                                 ctx.field_centers.size() * sizeof(Vec3)));
    // Channel configuration tokens are appended ONLY when non-default, so a
    // pre-multi-channel (density, no ensemble) manifest still matches and
    // old journals resume bitwise.
    if (opt.field != FieldKind::kDensity || opt.smooth_ensemble > 1) {
      fp += "|field=";
      fp += field_kind_name(opt.field);
      fp += "|ensemble=" + std::to_string(std::max(1, opt.smooth_ensemble));
    }
    fp += '\n';
    if (opt.resume) {
      const std::string prev = read_checkpoint_manifest(opt.checkpoint_dir);
      DTFE_CHECK_MSG(prev.empty() || prev == fp,
                     "checkpoint manifest in " << opt.checkpoint_dir
                     << " belongs to a different run configuration");
      std::set<std::ptrdiff_t> mine(ctx.my_request_ids.begin(),
                                    ctx.my_request_ids.end());
      for (CheckpointItem& item : load_checkpoints(opt.checkpoint_dir)) {
        if (item.grid.nx() != opt.field_resolution ||
            item.grid.ny() != opt.field_resolution ||
            item.grid.kind() != opt.field ||
            item.grid.channels() != field_channels(opt.field))
          continue;  // layout from another configuration; manifest was lost
        if (mine.count(static_cast<std::ptrdiff_t>(item.request_index)))
          ctx.replay_here.emplace_back(
              static_cast<std::ptrdiff_t>(item.request_index),
              std::move(item.grid));
      }
      // Committed items never re-enter the work list; they are recorded as
      // replayed at the start of the execution phase.
      std::set<std::ptrdiff_t> done;
      for (const auto& [id, grid] : ctx.replay_here) done.insert(id);
      std::size_t w = 0;
      for (std::size_t i = 0; i < ctx.my_requests.size(); ++i) {
        if (done.count(ctx.my_request_ids[i])) continue;
        ctx.my_requests[w] = ctx.my_requests[i];
        ctx.my_request_ids[w] = ctx.my_request_ids[i];
        ++w;
      }
      ctx.my_requests.resize(w);
      ctx.my_request_ids.resize(w);
    }
    write_checkpoint_manifest(opt.checkpoint_dir, fp);
    ctx.ckpt = std::make_unique<CheckpointWriter>(opt.checkpoint_dir, ctx.me);
  }
}

// ---- Stages 2 & 3: workload modeling + work-sharing schedule ---------------

void ScheduleStage::run(StageContext& ctx) const {
  const PipelineOptions& opt = ctx.opt;
  PipelineResult& res = ctx.res;
  const Decomposition& decomp = *ctx.decomp;
  {
    PhaseScope scope(phases::kModel, res.phases.model);
    // Spatial index over the local (owned + ghost) particles. Ghosts are
    // unwrapped, so the covering box starts at sub_lo − ghost_radius.
    const Vec3 idx_origin =
        decomp.sub_lo(ctx.me) -
        Vec3{ctx.ghost_radius, ctx.ghost_radius, ctx.ghost_radius};
    const Vec3 sub_ext = decomp.sub_hi(ctx.me) - decomp.sub_lo(ctx.me);
    const double idx_extent =
        std::max({sub_ext.x, sub_ext.y, sub_ext.z}) + 2.0 * ctx.ghost_radius;
    ctx.index.emplace(ctx.local_particles, idx_origin, idx_extent,
                      opt.count_grid_cells);

    ctx.item_counts.assign(ctx.my_requests.size(), 0.0);
    for (std::size_t i = 0; i < ctx.my_requests.size(); ++i)
      ctx.item_counts[i] = static_cast<double>(
          ctx.index->count_in_cube(ctx.my_requests[i], ctx.cube_side));

    // Time one random local work item (it is then already computed).
    std::vector<WorkSample> my_samples;
    if (!ctx.my_requests.empty()) {
      ctx.test_item = static_cast<std::ptrdiff_t>(
          ctx.rng.uniform_index(ctx.my_requests.size()));
      const auto ti = static_cast<std::size_t>(ctx.test_item);
      std::vector<std::uint32_t> ids;
      ctx.index->gather_in_cube(ctx.my_requests[ti], ctx.cube_side, ids);
      std::vector<Vec3> cube;
      cube.reserve(ids.size());
      for (const auto id : ids) cube.push_back(ctx.local_particles[id]);
      // No deadline: the cost model this item seeds is not fitted yet.
      const ScopedCrashItem in_flight(ctx.me, ctx.my_request_ids[ti],
                                      phases::kInFlightModelSample,
                                      ctx.state.crash);
      ctx.test_grid =
          compute_item(ctx.state, std::move(cube), ctx.particle_mass,
                       ctx.my_requests[ti], opt, ctx.test_record, nullptr);
      ctx.test_record.request_index = ctx.my_request_ids[ti];
      my_samples.push_back({ctx.item_counts[ti], ctx.test_record.actual_tri,
                            ctx.test_record.actual_interp});
    }
    res.model = fit_workload_model(ctx.comm, my_samples);

    // Predicted remaining local work (the test item is already done).
    ctx.predicted.assign(ctx.my_requests.size(), 0.0);
    for (std::size_t i = 0; i < ctx.my_requests.size(); ++i) {
      if (static_cast<std::ptrdiff_t>(i) == ctx.test_item) continue;
      ctx.predicted[i] = res.model.predict(ctx.item_counts[i]);
      ctx.total_predicted += ctx.predicted[i];
    }
    res.predicted_local_time = ctx.total_predicted;
  }

  PhaseScope scope(phases::kWorkShare, res.phases.work_share);
  for (std::size_t i = 0; i < ctx.my_requests.size(); ++i)
    if (static_cast<std::ptrdiff_t>(i) != ctx.test_item)
      ctx.remaining.push_back(i);

  if (opt.load_balance && ctx.P > 1) {
    const auto all_times = ctx.comm.allgather(ctx.total_predicted);
    std::vector<RankWork> work(static_cast<std::size_t>(ctx.P));
    for (int r = 0; r < ctx.P; ++r)
      work[static_cast<std::size_t>(r)] = {
          r, all_times[static_cast<std::size_t>(r)]};
    res.schedule = create_communication_list(std::move(work), ctx.me);

    std::vector<double> remaining_times;
    remaining_times.reserve(ctx.remaining.size());
    for (const std::size_t i : ctx.remaining)
      remaining_times.push_back(ctx.predicted[i]);
    ctx.plan = plan_sender(res.schedule.send_list, remaining_times);
  } else {
    ctx.plan.item_assignment.assign(ctx.remaining.size(),
                                    SenderPlan::kRunAtEnd);
  }
}

// ---- Stage 4: execution & communication ------------------------------------

void ComputeStage::run(StageContext& ctx) const {
  const PipelineOptions& opt = ctx.opt;
  PipelineResult& res = ctx.res;
  simmpi::Comm& comm = ctx.comm;

  // Items restored from checkpoints: recorded as replayed, never recomputed
  // and never re-journaled.
  for (auto& [rid, rgrid] : ctx.replay_here) {
    ItemRecord rec;
    rec.request_index = rid;
    rec.center = wrap_periodic(
        ctx.field_centers[static_cast<std::size_t>(rid)], ctx.box);
    rec.replayed = true;
    ctx.record_item(std::move(rec), std::move(rgrid), 0.0, 0.0, false);
  }
  ctx.replay_here.clear();

  // The already-computed random test item.
  if (ctx.test_item >= 0) {
    const auto ti = static_cast<std::size_t>(ctx.test_item);
    ctx.record_item(ctx.test_record, std::move(ctx.test_grid),
                    res.model.predict_tri(ctx.item_counts[ti]),
                    res.model.predict_interp(ctx.item_counts[ti]), false);
  }

  // Stage-scoped overlapped executor: every compute path below goes through
  // submit(), which commits strictly in submission order — so the journal,
  // metrics, and result bookkeeping replay the serial schedule exactly
  // (bitwise), for any --compute-ahead window.
  ItemExecutor exec(ctx);

  // A work package the sender keeps until the receiver acknowledges it; on
  // death, timeout, or give-up the sender unpacks it and computes the items
  // itself (degrading toward the paper's no-load-balance baseline).
  struct PendingSend {
    int receiver = 0;
    int seq = 0;
    std::vector<double> buf;
  };
  std::vector<PendingSend> pending;

  auto fallback_package = [&](const PendingSend& p) {
    ++res.packages_lost;
    if (obs::metrics_enabled()) obs::add(ctx.state.metrics->packages_lost);
    std::vector<std::ptrdiff_t> req_ids;
    std::vector<Vec3> centers;
    std::vector<std::vector<Vec3>> cubes;
    {
      PhaseScope unpack_scope(phases::kUnpack, res.phases.work_share);
      unpack_items(p.buf, req_ids, centers, cubes);
    }
    for (std::size_t i = 0; i < centers.size(); ++i) {
      const double n = static_cast<double>(cubes[i].size());
      ItemTask task;
      task.gather = [cube = std::make_shared<std::vector<Vec3>>(
                         std::move(cubes[i]))] { return std::move(*cube); };
      task.center = centers[i];
      task.request_index = req_ids[i];
      task.pred_seconds = res.model.predict(n);
      task.pred_tri = res.model.predict_tri(n);
      task.pred_interp = res.model.predict_interp(n);
      task.crash_phase = phases::kInFlightFallback;
      task.fallback = true;
      exec.submit(std::move(task));
    }
  };

  // Shared retry bounds (util/retry.h): the sender's resend loop and the
  // receiver's damaged-package loop below run off one policy instead of
  // ad-hoc counters, so both transports bound and pace retries identically.
  // The jitter seed mixes in the rank: deterministic per rank, decorrelated
  // across ranks.
  RetryPolicy retry_policy;
  retry_policy.max_retries = opt.max_retries;
  retry_policy.seed = 0x9e3779b97f4a7c15ull ^
                      static_cast<std::uint64_t>(comm.rank());

  // Wait for one pending package's fate: OK (receiver computes it), RESEND
  // up to max_retries times, or fallback on give-up/timeout/death. Acks from
  // one receiver arrive in FIFO order, so the next relevant ack is for the
  // oldest unresolved package to that receiver — stale acks are skipped.
  auto reconcile = [&](PendingSend& p) {
    int resends = 0;
    while (true) {
      const simmpi::RecvResult r =
          comm.recv_bytes_timeout(p.receiver, kTagWorkAck, opt.comm_timeout_ms);
      if (r.status == simmpi::RecvStatus::kRankFailed ||
          r.status == simmpi::RecvStatus::kTimeout) {
        fallback_package(p);  // receiver dead or unreachable
        return;
      }
      if (r.payload.size() != sizeof(WorkAck)) continue;
      WorkAck ack;
      std::memcpy(&ack, r.payload.data(), sizeof ack);
      if (ack.code == kAckOk) {
        if (ack.seq == p.seq) return;
        continue;  // stale ack for an already-resolved package
      }
      if (ack.code == kAckGiveUp) {
        fallback_package(p);
        return;
      }
      if (ack.code == kAckResend) {
        if (retry_policy.exhausted(++resends)) {
          fallback_package(p);
          return;
        }
        ++res.package_retries;
        if (obs::metrics_enabled()) obs::add(ctx.state.metrics->retries);
        // Pace resends on a struggling link; the receiver is blocked on
        // its own timed recv, so the backoff cannot deadlock the pair.
        retry_policy.backoff(resends);
        comm.send_vector<double>(p.receiver, kTagWork, p.buf);
        continue;
      }
    }
  };

  if (!res.schedule.send_list.empty()) {
    // SENDER: interleave gap-bin local items with sends, then leftovers.
    for (std::size_t k = 0; k < ctx.plan.ordered_sends.size(); ++k) {
      for (std::size_t j = 0; j < ctx.remaining.size(); ++j)
        if (ctx.plan.item_assignment[j] == ctx.plan.gap_slot(k))
          ctx.execute_local(j);

      PhaseScope pack_scope(phases::kPack, res.phases.work_share);
      std::vector<std::ptrdiff_t> req_ids;
      std::vector<Vec3> centers;
      std::vector<std::vector<Vec3>> cubes;
      for (std::size_t j = 0; j < ctx.remaining.size(); ++j) {
        if (ctx.plan.item_assignment[j] != static_cast<int>(k)) continue;
        const std::size_t i = ctx.remaining[j];
        req_ids.push_back(ctx.my_request_ids[i]);
        centers.push_back(ctx.my_requests[i]);
        std::vector<std::uint32_t> ids;
        ctx.index->gather_in_cube(ctx.my_requests[i], ctx.cube_side, ids);
        std::vector<Vec3> cube;
        cube.reserve(ids.size());
        for (const auto id : ids) cube.push_back(ctx.local_particles[id]);
        cubes.push_back(std::move(cube));
      }
      const int seq = static_cast<int>(k) + 1;
      auto buf = pack_items(seq, req_ids, centers, cubes);
      comm.send_vector<double>(ctx.plan.ordered_sends[k].receiver, kTagWork,
                               buf);
      res.items_sent += centers.size();
      if (obs::metrics_enabled()) {
        const PipelineMetrics& m = *ctx.state.metrics;
        obs::add(m.work_packages);
        obs::add(m.items_sent, static_cast<double>(centers.size()));
      }
      if (opt.fault_tolerant)
        pending.push_back({ctx.plan.ordered_sends[k].receiver, seq,
                           std::move(buf)});
    }
    for (std::size_t j = 0; j < ctx.remaining.size(); ++j)
      if (ctx.plan.item_assignment[j] == SenderPlan::kRunAtEnd)
        ctx.execute_local(j);
    // Ack reconciliation is deferred until after all local work so a slow
    // receiver never stalls the sender's own items.
    for (PendingSend& p : pending) reconcile(p);
  } else {
    // RECEIVER or neutral rank: drain local work...
    for (std::size_t j = 0; j < ctx.remaining.size(); ++j)
      ctx.execute_local(j);
    // ...then serve the expected work-sharing messages in order.
    std::vector<int> last_seq(static_cast<std::size_t>(ctx.P), 0);
    for (const int sender : res.schedule.recv_list) {
      auto handle_package = [&](const std::vector<double>& buf) {
        std::vector<std::ptrdiff_t> req_ids;
        std::vector<Vec3> centers;
        std::vector<std::vector<Vec3>> cubes;
        {
          PhaseScope unpack_scope(phases::kUnpack, res.phases.work_share);
          unpack_items(buf, req_ids, centers, cubes);
        }
        for (std::size_t i = 0; i < centers.size(); ++i) {
          const double n = static_cast<double>(cubes[i].size());
          ItemTask task;
          task.gather = [cube = std::make_shared<std::vector<Vec3>>(
                             std::move(cubes[i]))] { return std::move(*cube); };
          task.center = centers[i];
          task.request_index = req_ids[i];
          task.pred_seconds = res.model.predict(n);
          task.pred_tri = res.model.predict_tri(n);
          task.pred_interp = res.model.predict_interp(n);
          task.crash_phase = phases::kInFlightReceived;
          task.received = true;
          exec.submit(std::move(task));
          ++res.items_received;
        }
      };

      if (!opt.fault_tolerant) {
        const auto buf = comm.recv_vector<double>(sender, kTagWork);
        const std::string problem = package_problem(buf);
        DTFE_CHECK_MSG(problem.empty(), "work package from rank "
                                            << sender << ": " << problem);
        handle_package(buf);
        continue;
      }

      int attempts = 0;
      while (true) {
        const simmpi::RecvResult r =
            comm.recv_bytes_timeout(sender, kTagWork, opt.comm_timeout_ms);
        if (r.status == simmpi::RecvStatus::kRankFailed) {
          // The sender died; whatever it meant to ship is recomputed by the
          // survivors in the recovery phase.
          break;
        }
        std::string problem;
        std::vector<double> buf;
        if (r.status == simmpi::RecvStatus::kTimeout) {
          problem = "work package never arrived";
        } else if (r.payload.size() % sizeof(double) != 0) {
          problem = "work package is not a whole number of doubles";
        } else {
          buf.resize(r.payload.size() / sizeof(double));
          std::memcpy(buf.data(), r.payload.data(), r.payload.size());
          problem = package_problem(buf);
        }
        if (problem.empty()) {
          const int seq = static_cast<int>(buf[1]);
          if (seq <= last_seq[static_cast<std::size_t>(sender)])
            continue;  // stale duplicate of an already-accepted package
          last_seq[static_cast<std::size_t>(sender)] = seq;
          comm.send_value(sender, kTagWorkAck, WorkAck{kAckOk, seq});
          handle_package(buf);
          break;
        }
        ++attempts;
        if (retry_policy.exhausted(attempts)) {
          // The sender keeps the package and computes it itself; it also
          // owns the packages_lost tally, so no counting here.
          comm.send_value(sender, kTagWorkAck, WorkAck{kAckGiveUp, -1});
          break;
        }
        comm.send_value(sender, kTagWorkAck, WorkAck{kAckResend, -1});
      }
    }
  }

  // Flush the in-flight window before the stage ends: RecoverStage's done
  // lists and the final result must see every committed item.
  exec.drain();
}

// ---- Recovery: recompute items lost with dead ranks ------------------------

void RecoverStage::run(StageContext& ctx) const {
  const PipelineOptions& opt = ctx.opt;
  PipelineResult& res = ctx.res;
  simmpi::Comm& comm = ctx.comm;
  if (!(opt.fault_tolerant && ctx.P > 1)) return;
  comm.barrier();
  // All live ranks must agree on entering recovery — a rank can die after
  // some peers have already sampled any_rank_failed(), so the decision
  // comes from a reduction, not from local observation.
  const bool recover =
      comm.allreduce_max(comm.any_rank_failed() ? 1.0 : 0.0) > 0.0;
  if (!recover) return;
  PhaseScope recover_scope(phases::kRecover, res.phases.recover);
  std::vector<std::int64_t> done;
  done.reserve(res.items.size());
  for (const ItemRecord& it : res.items)
    if (it.request_index >= 0)
      done.push_back(static_cast<std::int64_t>(it.request_index));
  const auto all_done = comm.allgatherv<std::int64_t>(done);
  std::vector<char> have(ctx.field_centers.size(), 0);
  for (const auto& per_rank : all_done)
    for (const std::int64_t id : per_rank)
      if (id >= 0 &&
          id < static_cast<std::int64_t>(ctx.field_centers.size()))
        have[static_cast<std::size_t>(id)] = 1;
  const auto dead = comm.failed_ranks();
  std::vector<int> live;
  for (int r = 0; r < ctx.P; ++r)
    if (std::find(dead.begin(), dead.end(), r) == dead.end()) live.push_back(r);
  // Deterministic round-robin over the survivors: every rank advances
  // the slot for every missing id, so the assignment is agreed without
  // another negotiation round.
  std::size_t slot = 0;
  ItemExecutor exec(ctx);
  for (std::size_t gi = 0; gi < ctx.field_centers.size(); ++gi) {
    if (have[gi]) continue;
    const int who = live[slot++ % live.size()];
    if (who != ctx.me) continue;
    const Vec3 w = wrap_periodic(ctx.field_centers[gi], ctx.box);
    // Fetch on the rank thread (CubeFetcher implementations are not required
    // to be thread-safe); the executor still overlaps the triangulation of
    // this cube with the render of the previous recovered item.
    std::vector<Vec3> cube = ctx.fetch_cube(w, ctx.cube_side);
    const double n = static_cast<double>(cube.size());
    ItemTask task;
    task.gather = [c = std::make_shared<std::vector<Vec3>>(std::move(cube))] {
      return std::move(*c);
    };
    task.center = w;
    task.request_index = static_cast<std::ptrdiff_t>(gi);
    task.pred_seconds = res.model.predict(n);
    task.pred_tri = res.model.predict_tri(n);
    task.pred_interp = res.model.predict_interp(n);
    task.crash_phase = phases::kInFlightRecover;
    task.recovered = true;
    exec.submit(std::move(task));
  }
  exec.drain();
}

// ---- Final agreement -------------------------------------------------------

void ReduceStage::run(StageContext& ctx) const {
  ctx.res.failed_ranks = ctx.comm.failed_ranks();
  ctx.comm.barrier();
}

PipelineResult run_stages(StageContext& ctx) {
  ExchangeStage{}.run(ctx);
  ScheduleStage{}.run(ctx);
  ComputeStage{}.run(ctx);
  RecoverStage{}.run(ctx);
  ReduceStage{}.run(ctx);
  return std::move(ctx.res);
}

PipelineResult run_stages(simmpi::Comm& comm, const PipelineOptions& opt,
                          const EngineState& state, double box,
                          double particle_mass, std::vector<Vec3> my_block,
                          std::vector<Vec3> field_centers,
                          const CubeFetcher& fetch_cube) {
  StageContext ctx(comm, opt, state, box, particle_mass, std::move(my_block),
                   std::move(field_centers), fetch_cube);
  return run_stages(ctx);
}

}  // namespace dtfe::engine
