#include "engine/engine.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "engine/stages.h"
#include "nbody/snapshot_io.h"
#include "util/error.h"

namespace dtfe::engine {

Engine::Engine(EngineConfig config) : config_(std::move(config)) {
  DTFE_CHECK_MSG(!config_.snapshot.empty(),
                 "snapshot-backed Engine needs config.snapshot");
}

Engine::Engine(EngineConfig config, ParticleSet particles)
    : config_(std::move(config)), particles_(std::move(particles)) {}

void merge_rank_items(const PipelineResult& res,
                      std::vector<FieldResult>& results) {
  for (std::size_t k = 0; k < res.items.size(); ++k) {
    const ItemRecord& it = res.items[k];
    if (it.request_index < 0 ||
        it.request_index >= static_cast<std::ptrdiff_t>(results.size()))
      continue;
    FieldResult& out = results[static_cast<std::size_t>(it.request_index)];
    // First commit wins: any duplicate (fallback, recovery overlap) is a
    // bitwise-identical recomputation of the same pure function.
    if (out.completed) continue;
    out.completed = true;
    out.grid = res.grids[k];
    out.checksum = it.grid_sum;
    out.failed = it.failed;
    out.fail_reason = it.fail_reason;
  }
}

std::vector<FieldResult> Engine::run_batch(
    std::span<const FieldRequest> requests) {
  wire_stats_ = simmpi::TransportStats{};
  if (config_.transport.kind == TransportKind::kSocket)
    return run_batch_socket(requests);
  std::vector<Vec3> centers;
  centers.reserve(requests.size());
  for (const FieldRequest& r : requests) centers.push_back(r.center);

  PipelineOptions opt = config_.pipeline;
  opt.keep_grids = true;  // the results carry their grids back to the caller

  const EngineState state{&metrics_, &crash_, kernels_};
  simmpi::RunOptions run_opts;
  run_opts.fault_plan =
      config_.fault_plan.empty() ? nullptr : &config_.fault_plan;

  std::vector<FieldResult> results(requests.size());
  for (std::size_t i = 0; i < results.size(); ++i)
    results[i].request = static_cast<std::ptrdiff_t>(i);

  std::mutex mtx;
  std::vector<RankRun> runs;
  simmpi::run(config_.ranks, run_opts, [&](simmpi::Comm& comm) {
    PipelineResult res;
    if (particles_) {
      // Arbitrary block assignment standing in for the MPI-IO read: rank r
      // takes the r-th contiguous slice of the file order.
      const ParticleSet& set = *particles_;
      const auto P = static_cast<std::size_t>(comm.size());
      const auto me = static_cast<std::size_t>(comm.rank());
      const std::size_t n = set.size();
      std::vector<Vec3> block(
          set.positions.begin() + static_cast<std::ptrdiff_t>(n * me / P),
          set.positions.begin() +
              static_cast<std::ptrdiff_t>(n * (me + 1) / P));
      const CubeFetcher fetch = [&set](const Vec3& center, double side) {
        return extract_cube(set, center, side);
      };
      res = run_stages(comm, opt, state, set.box_length, set.particle_mass,
                       std::move(block), centers, fetch);
    } else {
      // Parallel snapshot read with round-robin block assignment; recovery
      // re-fetches cubes from the file.
      const SnapshotHeader header = read_snapshot_header(config_.snapshot);
      std::vector<Vec3> block;
      for (std::size_t b = static_cast<std::size_t>(comm.rank());
           b < header.blocks.size();
           b += static_cast<std::size_t>(comm.size())) {
        const auto part = read_snapshot_block(config_.snapshot, header, b);
        block.insert(block.end(), part.begin(), part.end());
      }
      const std::string& path = config_.snapshot;
      const CubeFetcher fetch = [&path, &header](const Vec3& center,
                                                 double side) {
        return read_snapshot_cube(path, header, center, side);
      };
      res = run_stages(comm, opt, state, header.box_length,
                       header.particle_mass, std::move(block), centers, fetch);
    }

    std::lock_guard<std::mutex> lock(mtx);
    merge_rank_items(res, results);
    runs.push_back({comm.rank(), std::move(res)});
  });

  std::sort(runs.begin(), runs.end(),
            [](const RankRun& a, const RankRun& b) { return a.rank < b.rank; });
  rank_runs_ = std::move(runs);
  return results;
}

}  // namespace dtfe::engine
