// The reusable DTFE engine: batched field reconstruction as a library call.
//
//   EngineConfig cfg;                 // or EngineConfig::from_cli(args)
//   cfg.ranks = 8;
//   Engine engine(cfg, particles);    // or Engine(cfg) for cfg.snapshot
//   std::vector<FieldRequest> reqs = {{center0}, {center1}, ...};
//   const std::vector<FieldResult> fields = engine.run_batch(reqs);
//
// run_batch drives the full staged pipeline (engine/stages.h) across
// cfg.ranks simulated MPI ranks and merges the per-rank outputs into one
// result per request. It is re-entrant: every Engine owns its metric ids
// and crash-diagnostics registry, so multiple engines — and multiple
// sequential batches per engine — coexist in one process with no shared
// mutable state. Grids are bitwise identical from batch to batch (per-item
// kernel seeds are pure functions of the request identity).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "engine/config.h"
#include "engine/field_kernel.h"
#include "engine/state.h"
#include "framework/crash.h"
#include "framework/pipeline.h"
#include "nbody/particles.h"
#include "simmpi/socket_transport.h"

namespace dtfe::engine {

/// One requested surface-density field, centered on a point of interest.
struct FieldRequest {
  Vec3 center;
};

/// The reconstruction of one request, merged across ranks. Duplicate
/// computations of the same request (fallback, recovery) are bitwise
/// identical by construction, so the first committed copy wins.
struct FieldResult {
  std::ptrdiff_t request = -1;  ///< index into the run_batch input span
  FieldGrid grid;               ///< one plane per channel of config.field
  double checksum = 0.0;        ///< total grid sum (the item checksum)
  bool completed = false;       ///< some rank committed this request
  bool failed = false;          ///< contained failure: grid is all zeros
  std::string fail_reason;
};

/// One rank's full pipeline outcome for the latest batch (phase times,
/// item records, fault tallies) — the raw material for run reports.
struct RankRun {
  int rank = -1;
  PipelineResult result;
};

/// First-commit-wins merge of one rank's pipeline outcome into the batched
/// results. Duplicate computations (fallback, recovery) of a request are
/// bitwise identical by construction, so whichever rank commits first is
/// authoritative. Shared by the thread and socket transports so both merge
/// identically. Requires res.grids parallel to res.items (keep_grids).
void merge_rank_items(const PipelineResult& res,
                      std::vector<FieldResult>& results);

class Engine {
 public:
  /// Snapshot-backed engine: every batch re-reads config.snapshot blocks
  /// (round-robin) and recovery re-fetches cubes from the file.
  explicit Engine(EngineConfig config);
  /// In-memory engine: ranks slice `particles` and recovery extracts cubes
  /// from the retained copy.
  Engine(EngineConfig config, ParticleSet particles);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Reconstruct every requested field. Returns one FieldResult per request,
  /// in request order; a request no surviving rank committed (only possible
  /// under injected faults with recovery disabled) has completed == false.
  std::vector<FieldResult> run_batch(std::span<const FieldRequest> requests);

  /// Per-rank pipeline outcomes of the most recent run_batch, sorted by
  /// rank. Ranks killed by a fault plan are absent.
  const std::vector<RankRun>& last_rank_runs() const { return rank_runs_; }

  /// Wire-cost measurements merged from every worker of the most recent
  /// socket-transport batch (all zeros after a thread batch). Feeds the
  /// DES calibration summaries (framework/des.h).
  const simmpi::TransportStats& last_wire_stats() const {
    return wire_stats_;
  }

  const EngineConfig& config() const { return config_; }

  /// Swap in a custom kernel registry (tests, plug-in estimators). The
  /// registry must outlive the engine; pipeline.kernel names resolve in it.
  void set_kernels(const KernelRegistry* kernels) { kernels_ = kernels; }
  const KernelRegistry& kernels() const { return *kernels_; }

 private:
  /// Multi-process path (engine/multiproc.cpp): spawn one worker process
  /// per rank, route frames between them, merge their shipped-back results.
  std::vector<FieldResult> run_batch_socket(
      std::span<const FieldRequest> requests);

  EngineConfig config_;
  std::optional<ParticleSet> particles_;
  PipelineMetrics metrics_;     ///< engine-owned: no function-local statics
  CrashItemRegistry crash_;     ///< engine-owned crash-diagnostics slots
  const KernelRegistry* kernels_ = &KernelRegistry::builtin();
  std::vector<RankRun> rank_runs_;
  simmpi::TransportStats wire_stats_{};
};

}  // namespace dtfe::engine
