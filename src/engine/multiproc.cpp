// Launcher and worker halves of the multi-process socket transport.
//
// See multiproc.h for the topology. The invariant both halves protect is
// transport equivalence: a socket run must produce bitwise the grids of the
// same thread run, fault plans included, because the stage logic, merge
// order, and fault replay are all transport-independent — only the bytes'
// carrier changes.

#include "engine/multiproc.h"

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "engine/engine.h"
#include "engine/stages.h"
#include "framework/result_codec.h"
#include "nbody/snapshot_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "simmpi/socket_transport.h"
#include "util/error.h"

namespace dtfe::engine {

namespace {

/// Path of the running executable, for re-entering it as a worker.
std::string self_exe() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return buf;
}

/// Fork + exec one worker. Returns the child pid; throws on fork failure.
pid_t spawn_worker(const std::string& binary,
                   const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  DTFE_CHECK_MSG(pid >= 0, "fork failed for worker " << binary);
  if (pid == 0) {
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args)
      argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    // exec failed: the router will see EOF on the never-connected rank and
    // declare it dead; 127 mirrors the shell's command-not-found.
    ::_exit(127);
  }
  return pid;
}

void kill_and_reap(std::vector<pid_t>& pids) {
  for (const pid_t pid : pids)
    if (pid > 0) ::kill(pid, SIGKILL);
  for (pid_t& pid : pids) {
    if (pid <= 0) continue;
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
  }
}

struct ScratchDir {
  std::string path;
  ~ScratchDir() {
    if (!path.empty()) ::rmdir(path.c_str());  // best-effort; needs empty dir
  }
};

}  // namespace

std::vector<FieldResult> Engine::run_batch_socket(
    std::span<const FieldRequest> requests) {
  DTFE_CHECK_MSG(!config_.snapshot.empty(),
                 "--transport=socket needs a snapshot-backed engine (--in): "
                 "worker processes cannot share in-memory particles");
  const int nranks = config_.ranks;

  ScratchDir scratch;
  {
    char tmpl[] = "/tmp/pdtfe-launch-XXXXXX";
    DTFE_CHECK_MSG(::mkdtemp(tmpl) != nullptr,
                   "mkdtemp failed for the launch scratch dir");
    scratch.path = tmpl;
  }

  simmpi::TransportOptions topt;
  topt.socket_path = scratch.path + "/router.sock";
  topt.ranks = nranks;
  topt.heartbeat_interval_ms = config_.transport.heartbeat_interval_ms;
  topt.heartbeat_miss_limit = config_.transport.heartbeat_miss_limit;

  // Bind before spawning so no worker can race the listener.
  simmpi::Router router(topt);
  router.listen_socket();

  const std::string binary = config_.transport.worker_binary.empty()
                                 ? self_exe()
                                 : config_.transport.worker_binary;
  DTFE_CHECK_MSG(!binary.empty(),
                 "cannot resolve the worker binary: /proc/self/exe "
                 "unreadable and --worker-binary not given");
  const std::string fault_spec = config_.fault_plan.to_spec();
  const bool metrics = obs::metrics_enabled();

  std::vector<pid_t> pids(static_cast<std::size_t>(nranks), -1);
  std::vector<simmpi::Router::Outcome> outcomes;
  try {
    for (int r = 0; r < nranks; ++r) {
      std::vector<std::string> args = {
          binary,
          "pipeline",
          "--worker-rank", std::to_string(r),
          "--ranks", std::to_string(nranks),
          "--socket-path", topt.socket_path,
          "--heartbeat-interval-ms",
          std::to_string(topt.heartbeat_interval_ms),
          "--worker-metrics", metrics ? "1" : "0",
      };
      if (!fault_spec.empty()) {
        args.push_back("--fault-plan");
        args.push_back(fault_spec);
      }
      pids[static_cast<std::size_t>(r)] = spawn_worker(binary, args);
    }

    router.accept_workers();

    LaunchConfig lc;
    lc.snapshot = config_.snapshot;
    lc.pipeline = config_.pipeline;
    lc.pipeline.keep_grids = true;  // grids travel back in the payload
    lc.field_centers.reserve(requests.size());
    for (const FieldRequest& r : requests) lc.field_centers.push_back(r.center);
    router.broadcast_config(encode_launch_config(lc));

    outcomes = router.route();
  } catch (...) {
    kill_and_reap(pids);
    throw;
  }

  // Reap every worker. SIGKILL the dead ones first as insurance: a rank the
  // heartbeat detector declared dead may only be wedged, not gone.
  for (const int r : router.dead_ranks())
    ::kill(pids[static_cast<std::size_t>(r)], SIGKILL);
  for (pid_t& pid : pids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
  }

  std::vector<FieldResult> results(requests.size());
  for (std::size_t i = 0; i < results.size(); ++i)
    results[i].request = static_cast<std::ptrdiff_t>(i);

  std::vector<RankRun> runs;
  std::string worker_error;
  for (int r = 0; r < nranks; ++r) {
    simmpi::Router::Outcome& oc = outcomes[static_cast<std::size_t>(r)];
    if (!oc.error.empty() && worker_error.empty())
      worker_error = "rank " + std::to_string(r) + ": " + oc.error;
    // A dead rank ships nothing — absent from rank_runs_, same as a rank
    // the thread transport killed mid-run.
    if (!oc.finished || oc.result.empty()) continue;
    WorkerPayload p = decode_worker_payload(oc.result);
    wire_stats_.merge(p.wire);
    if (metrics) {
      // Fold the worker's registry into the launcher's so run reports see
      // one process's worth of totals regardless of transport — counters,
      // gauges, AND histograms, so launch reports match the thread
      // transport field-for-field (per-phase duration distributions
      // included).
      for (const auto& [name, v] : p.counters)
        if (v != 0.0) obs::add(obs::counter(name), v);
      for (const auto& [name, v] : p.gauges) obs::set(obs::gauge(name), v);
      for (const auto& [name, h] : p.histograms)
        obs::MetricsRegistry::global().merge_histogram(name, h);
    }
    merge_rank_items(p.result, results);
    runs.push_back({r, std::move(p.result)});
  }
  if (!worker_error.empty())
    throw Error("worker failed: " + worker_error);

  std::sort(runs.begin(), runs.end(),
            [](const RankRun& a, const RankRun& b) { return a.rank < b.rank; });
  rank_runs_ = std::move(runs);
  return results;
}

int run_worker(const WorkerOptions& wopt) {
  DTFE_CHECK_MSG(wopt.rank >= 0 && wopt.ranks > wopt.rank,
                 "worker needs 0 <= --worker-rank < --ranks");
  DTFE_CHECK_MSG(!wopt.socket_path.empty(), "worker needs --socket-path");
  if (wopt.metrics) obs::MetricsRegistry::global().set_enabled(true);
  obs::TraceRecorder::set_thread_rank(wopt.rank);

  simmpi::TransportOptions topt;
  topt.socket_path = wopt.socket_path;
  topt.ranks = wopt.ranks;
  topt.heartbeat_interval_ms = wopt.heartbeat_interval_ms;
  topt.fault_plan = wopt.fault_plan.empty() ? nullptr : &wopt.fault_plan;

  simmpi::SocketEndpoint ep(wopt.rank, topt);
  try {
    const LaunchConfig lc = decode_launch_config(ep.config());
    PipelineOptions opt = lc.pipeline;
    opt.keep_grids = true;

    // Worker-local service bundle: this process IS one rank, so the
    // process-default instances would work, but owning them keeps the
    // worker path symmetric with Engine's thread path.
    const PipelineMetrics pmetrics;
    CrashItemRegistry crash;
    const EngineState state{&pmetrics, &crash, &KernelRegistry::builtin()};

    const SnapshotHeader header = read_snapshot_header(lc.snapshot);
    std::vector<Vec3> block;
    for (std::size_t b = static_cast<std::size_t>(wopt.rank);
         b < header.blocks.size(); b += static_cast<std::size_t>(wopt.ranks)) {
      const auto part = read_snapshot_block(lc.snapshot, header, b);
      block.insert(block.end(), part.begin(), part.end());
    }
    const std::string& path = lc.snapshot;
    const CubeFetcher fetch = [&path, &header](const Vec3& center,
                                               double side) {
      return read_snapshot_cube(path, header, center, side);
    };

    simmpi::Comm comm(&ep, wopt.rank);
    PipelineResult res =
        run_stages(comm, opt, state, header.box_length, header.particle_mass,
                   std::move(block), lc.field_centers, fetch);

    WorkerPayload payload;
    payload.rank = wopt.rank;
    payload.wire = ep.stats();
    if (wopt.metrics) {
      obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
      payload.counters = std::move(snap.counters);
      payload.gauges = std::move(snap.gauges);
      payload.histograms = std::move(snap.histograms);
    }
    payload.result = std::move(res);
    ep.send_result(encode_worker_payload(payload));
    ep.finish();
    return 0;
  } catch (const std::exception& e) {
    ep.send_error(e.what());
    ep.finish();
    return 1;
  }
}

int run_worker_from_cli(const CliArgs& args) {
  WorkerOptions wopt;
  wopt.rank = static_cast<int>(args.get("worker-rank", -1L));
  wopt.ranks = static_cast<int>(args.get("ranks", 0L));
  wopt.socket_path = args.get("socket-path", std::string{});
  wopt.heartbeat_interval_ms =
      static_cast<int>(args.get("heartbeat-interval-ms", 100L));
  wopt.fault_plan =
      simmpi::FaultPlan::parse(args.get("fault-plan", std::string{}));
  wopt.metrics = args.get("worker-metrics", 0L) != 0;
  return run_worker(wopt);
}

}  // namespace dtfe::engine
