// Typed engine configuration, parsed once at the boundary.
//
// Before the engine layer, every pdtfe subcommand re-derived PipelineOptions
// from raw flags inline, and the flag spelling was the de-facto config
// schema. EngineConfig is the schema: the CLI (or any embedding) resolves
// its inputs into this struct up front, and everything below the boundary —
// Engine, the stages, the kernels — consumes typed fields only.
#pragma once

#include <cstddef>
#include <string>

#include "framework/pipeline.h"
#include "simmpi/fault.h"
#include "util/cli.h"

namespace dtfe::engine {

/// Which CommBackend carries rank-to-rank traffic (DESIGN.md §9).
enum class TransportKind {
  kThread,  ///< in-process: one thread per rank, shared-memory mailboxes
  kSocket,  ///< multi-process: one worker process per rank, Unix sockets
};

struct TransportConfig {
  TransportKind kind = TransportKind::kThread;
  int heartbeat_interval_ms = 100;  ///< worker beacon period (socket)
  int heartbeat_miss_limit = 20;    ///< missed beacons before declared dead
  /// Worker executable ("" = re-exec this binary via /proc/self/exe).
  std::string worker_binary;
};

struct EngineConfig {
  int ranks = 8;               ///< simulated MPI ranks per batch
  std::size_t n_fields = 64;   ///< FOF-derived request cap (CLI path)
  std::string snapshot;        ///< snapshot path ("" = in-memory particles)
  PipelineOptions pipeline;    ///< including pipeline.kernel
  simmpi::FaultPlan fault_plan;
  TransportConfig transport;

  /// Parse the `pdtfe pipeline` flag set (the historical spellings,
  /// including --item-deadline-ms auto and --fault-plan grammar). Throws
  /// dtfe::Error with the same message texts the subcommand used to print
  /// for invalid values; the caller maps that to its usage exit code.
  static EngineConfig from_cli(const CliArgs& args);
};

}  // namespace dtfe::engine
