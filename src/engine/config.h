// Typed engine configuration, parsed once at the boundary.
//
// Before the engine layer, every pdtfe subcommand re-derived PipelineOptions
// from raw flags inline, and the flag spelling was the de-facto config
// schema. EngineConfig is the schema: the CLI (or any embedding) resolves
// its inputs into this struct up front, and everything below the boundary —
// Engine, the stages, the kernels — consumes typed fields only.
#pragma once

#include <cstddef>
#include <string>

#include "framework/pipeline.h"
#include "simmpi/fault.h"
#include "util/cli.h"

namespace dtfe::engine {

struct EngineConfig {
  int ranks = 8;               ///< simulated MPI ranks per batch
  std::size_t n_fields = 64;   ///< FOF-derived request cap (CLI path)
  std::string snapshot;        ///< snapshot path ("" = in-memory particles)
  PipelineOptions pipeline;    ///< including pipeline.kernel
  simmpi::FaultPlan fault_plan;

  /// Parse the `pdtfe pipeline` flag set (the historical spellings,
  /// including --item-deadline-ms auto and --fault-plan grammar). Throws
  /// dtfe::Error with the same message texts the subcommand used to print
  /// for invalid values; the caller maps that to its usage exit code.
  static EngineConfig from_cli(const CliArgs& args);
};

}  // namespace dtfe::engine
