// Multi-process execution: the launcher and worker halves of the socket
// transport (DESIGN.md §9).
//
// The launcher side lives in Engine::run_batch_socket (multiproc.cpp): it
// binds the router socket, forks one worker process per rank — the same
// binary re-entered as `pdtfe pipeline --worker-rank R` — routes frames
// until every rank finishes or dies, then merges the shipped-back
// WorkerPayloads exactly as the thread transport merges in-process results.
//
// This header declares the worker half, which the pdtfe app dispatches to
// before any of its own setup when --worker-rank is present. Everything
// beyond the rank/socket/fault-plan bootstrap arrives over the wire in the
// router's kConfig payload (framework/result_codec.h), so a worker's argv
// never has to round-trip the full flag set.
#pragma once

#include <string>

#include "simmpi/fault.h"
#include "util/cli.h"

namespace dtfe::engine {

/// Bootstrap a worker process needs before the config payload arrives.
struct WorkerOptions {
  int rank = -1;
  int ranks = 0;
  std::string socket_path;
  int heartbeat_interval_ms = 100;
  simmpi::FaultPlan fault_plan;  ///< replayed worker-locally
  bool metrics = false;          ///< launcher had metrics armed
};

/// Worker-process entry: connect to the router, receive the LaunchConfig,
/// run this rank's pipeline, ship the WorkerPayload back. Returns a process
/// exit code (0 on success; 1 after reporting an exception via kError).
int run_worker(const WorkerOptions& opt);

/// Parse the --worker-rank/--ranks/--socket-path/... bootstrap flags and
/// run the worker. The app calls this as its first act when --worker-rank
/// is present.
int run_worker_from_cli(const CliArgs& args);

}  // namespace dtfe::engine
