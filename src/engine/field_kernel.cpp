#include "engine/field_kernel.h"

#include "util/error.h"
#include "util/timer.h"

namespace dtfe::engine {

FieldCube::FieldCube(std::vector<Vec3> particles, double particle_mass,
                     const TriangulationOptions& topt)
    : points_(std::move(particles)) {
  ThreadCpuTimer t;
  tri_ = std::make_unique<Triangulation>(points_, topt);
  tri_seconds_ = t.seconds();
  density_ = std::make_unique<DensityField>(*tri_, particle_mass);
  hull_ = std::make_unique<HullProjection>(*tri_);
}

Grid2D MarchingFieldKernel::render(const FieldCube& cube,
                                   const RenderRequest& request,
                                   const Deadline* deadline,
                                   KernelStats& stats) const {
  MarchingOptions opt = base_;
  if (request.seed != 0) opt.seed = request.seed;
  if (deadline != nullptr) opt.deadline = deadline;
  const MarchingKernel kernel(cube.density(), cube.hull(), opt);
  Grid2D grid = kernel.render(request.spec);
  stats.ray_mass = kernel.stats().ray_mass;
  stats.failed_cells = kernel.stats().failed_cells;
  stats.perturb_restarts = kernel.stats().perturb_restarts;
  return grid;
}

Grid2D WalkingFieldKernel::render(const FieldCube& cube,
                                  const RenderRequest& request,
                                  const Deadline* deadline,
                                  KernelStats& stats) const {
  (void)deadline;  // the walking baseline has no cooperative poll points
  (void)stats;     // and no independent mass re-accumulation (NaN = skip)
  WalkingOptions opt = base_;
  if (request.seed != 0) opt.seed = request.seed;
  const WalkingKernel kernel(cube.density(), opt);
  return kernel.render(request.spec);
}

Grid2D TessFieldKernel::render(const FieldCube& cube,
                               const RenderRequest& request,
                               const Deadline* deadline,
                               KernelStats& stats) const {
  (void)stats;
  TessOptions opt = base_;
  if (request.seed != 0) opt.seed = request.seed;
  if (deadline != nullptr) opt.deadline = deadline;
  const TessKernel kernel(cube.density(), opt);
  return kernel.render(request.spec);
}

const KernelRegistry& KernelRegistry::builtin() {
  static const KernelRegistry reg = [] {
    KernelRegistry r;
    r.add("march", [](const KernelOptions& o) {
      return std::make_unique<MarchingFieldKernel>(o.marching);
    });
    r.add("walk", [](const KernelOptions& o) {
      return std::make_unique<WalkingFieldKernel>(o.walking);
    });
    r.add("tess", [](const KernelOptions& o) {
      return std::make_unique<TessFieldKernel>(o.tess);
    });
    return r;
  }();
  return reg;
}

void KernelRegistry::add(const std::string& name, Factory factory) {
  factories_[name] = std::move(factory);
}

bool KernelRegistry::contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> KernelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

std::unique_ptr<FieldKernel> KernelRegistry::create(
    const std::string& name, const KernelOptions& opt) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& n : names()) known += " " + n;
    throw Error("unknown field kernel '" + name + "' (registered:" + known +
                ")");
  }
  return it->second(opt);
}

}  // namespace dtfe::engine
