#include "engine/field_kernel.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "dtfe/vector_field.h"
#include "dtfe/velocity_model.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/timer.h"

namespace dtfe::engine {

namespace {

double unit01(std::uint64_t& state) {
  return static_cast<double>(detail::splitmix64(state) >> 11) * 0x1.0p-53;
}

double tetra_volume(const std::array<Vec3, 4>& p) {
  return std::abs((p[1] - p[0]).dot((p[2] - p[0]).cross(p[3] - p[0]))) / 6.0;
}

/// Mean inter-particle spacing from the points' bounding box — the length
/// scale of the ensemble jitter (Aragon-Calvo 2020 jitters within roughly
/// one sampling cell).
double mean_spacing(std::span<const Vec3> pts) {
  if (pts.empty()) return 0.0;
  Vec3 lo = pts[0], hi = pts[0];
  for (const Vec3& p : pts) {
    lo = {std::min(lo.x, p.x), std::min(lo.y, p.y), std::min(lo.z, p.z)};
    hi = {std::max(hi.x, p.x), std::max(hi.y, p.y), std::max(hi.z, p.z)};
  }
  const Vec3 ext = hi - lo;
  double vol = ext.x * ext.y * ext.z;
  if (vol <= 0.0) {
    const double e = std::max({ext.x, ext.y, ext.z});
    vol = e * e * e;
  }
  if (vol <= 0.0) return 0.0;
  return std::cbrt(vol / static_cast<double>(pts.size()));
}

/// Realization e of the jittered point set: canonical order, one splitmix
/// stream per (item seed, realization), uniform in [-a, a]^3.
std::vector<Vec3> jittered_points(std::span<const Vec3> pts,
                                  std::uint64_t seed, int realization,
                                  double amplitude) {
  std::uint64_t state =
      seed ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(realization));
  std::vector<Vec3> out;
  out.reserve(pts.size());
  for (const Vec3& p : pts) {
    const double dx = amplitude * (2.0 * unit01(state) - 1.0);
    const double dy = amplitude * (2.0 * unit01(state) - 1.0);
    const double dz = amplitude * (2.0 * unit01(state) - 1.0);
    out.push_back({p.x + dx, p.y + dy, p.z + dz});
  }
  return out;
}

/// Volume-weighted average of a per-cell quantity over each vertex's
/// incident finite cells — the DTFE estimate of a cell-constant field
/// (divergence, gradient components) at the sample points.
template <typename CellValue>
std::vector<double> vertex_cell_average(const Triangulation& tri,
                                        const std::vector<CellId>& cells,
                                        CellValue&& value_of) {
  std::vector<double> num(tri.num_vertices(), 0.0);
  std::vector<double> den(tri.num_vertices(), 0.0);
  for (const CellId c : cells) {
    const double vol = tetra_volume(tri.cell_points(c));
    const double val = value_of(c);
    const auto& t = tri.cell(c);
    for (int i = 0; i < 4; ++i) {
      const auto v = static_cast<std::size_t>(t.v[i]);
      num[v] += val * vol;
      den[v] += vol;
    }
  }
  std::vector<double> out(tri.num_vertices(), 0.0);
  for (std::size_t v = 0; v < out.size(); ++v)
    if (den[v] > 0.0) out[v] = num[v] / den[v];
  return out;
}

/// Per-channel, per-vertex sample values for the vector estimator sets.
/// Velocity channels come straight from the analytic model; vdiv and grad
/// are volume-weighted vertex averages of cell-constant derivatives.
std::vector<std::vector<double>> channel_vertex_values(
    const FieldCube& cube, const RenderRequest& request) {
  const Triangulation& tri = cube.triangulation();
  switch (request.field) {
    case FieldKind::kVelocity: {
      const VelocityModel model(request.model_seed,
                                request.spec.length > 0.0 ? request.spec.length
                                                          : 1.0);
      std::vector<std::vector<double>> out(
          3, std::vector<double>(tri.num_vertices()));
      for (std::size_t v = 0; v < tri.num_vertices(); ++v) {
        const Vec3 vel = model(tri.point(static_cast<VertexId>(v)));
        out[0][v] = vel.x;
        out[1][v] = vel.y;
        out[2][v] = vel.z;
      }
      return out;
    }
    case FieldKind::kVdiv: {
      const VelocityModel model(request.model_seed,
                                request.spec.length > 0.0 ? request.spec.length
                                                          : 1.0);
      std::vector<Vec3> vel;
      vel.reserve(tri.num_vertices());
      for (std::size_t v = 0; v < tri.num_vertices(); ++v)
        vel.push_back(model(tri.point(static_cast<VertexId>(v))));
      const VectorField vf(tri, vel);
      const std::vector<CellId> cells = tri.finite_cells();
      return {vertex_cell_average(
          tri, cells, [&vf](CellId c) { return vf.divergence(c); })};
    }
    case FieldKind::kGrad: {
      const DensityField& rho = cube.density();
      const std::vector<CellId> cells = tri.finite_cells();
      std::vector<std::vector<double>> out;
      out.reserve(3);
      for (int i = 0; i < 3; ++i)
        out.push_back(vertex_cell_average(tri, cells, [&rho, i](CellId c) {
          return rho.cell_gradient(c)[i];
        }));
      return out;
    }
    case FieldKind::kDensity:
      break;
  }
  throw Error("channel_vertex_values called for the density fast path");
}

/// integral / path per cell; 0 where the line of sight misses the hull.
Grid2D los_ratio(const Grid2D& integral, const Grid2D& path) {
  Grid2D out(integral.nx(), integral.ny());
  for (std::size_t i = 0; i < out.size(); ++i)
    out.flat(i) = path.flat(i) > 0.0 ? integral.flat(i) / path.flat(i) : 0.0;
  return out;
}

}  // namespace

FieldCube::FieldCube(std::vector<Vec3> particles, double particle_mass,
                     const TriangulationOptions& topt)
    : points_(std::move(particles)), particle_mass_(particle_mass) {
  ThreadCpuTimer t;
  tri_ = std::make_unique<Triangulation>(points_, topt);
  tri_seconds_ = t.seconds();
  density_ = std::make_unique<DensityField>(*tri_, particle_mass);
  hull_ = std::make_unique<HullProjection>(*tri_);
  geom_ = std::make_shared<const TetraGeomTable>(*tri_);
}

FieldGrid FieldKernel::render(const FieldCube& cube,
                              const RenderRequest& request,
                              const Deadline* deadline,
                              KernelStats& stats) const {
  const int n = std::max(1, request.smooth_ensemble);
  if (n == 1) return render_one(cube, request, deadline, stats);

  // Aragon-Calvo 2020 mass-conserving stochastic smoothing: average N
  // reconstructions over jittered copies of the SAME particles. Each
  // realization carries the full particle mass, so the ensemble mean
  // conserves it; averaging ray_mass alongside keeps the audit identity
  // grid.sum() ≈ ray_mass exact under the average.
  FieldGrid accum = render_one(cube, request, deadline, stats);
  double mass_sum = stats.ray_mass;  // NaN (walk/tess) propagates → skip
  const double amplitude = 0.25 * mean_spacing(cube.points());
  for (int e = 1; e < n; ++e) {
    TriangulationOptions topt;
    topt.deadline = deadline;
    const FieldCube jittered(
        jittered_points(cube.points(), request.seed, e, amplitude),
        cube.particle_mass(), topt);
    KernelStats s;
    const FieldGrid g = render_one(jittered, request, deadline, s);
    for (std::size_t c = 0; c < accum.channels(); ++c) {
      Grid2D& acc = accum.plane(c);
      const Grid2D& add = g.plane(c);
      for (std::size_t i = 0; i < acc.size(); ++i) acc.flat(i) += add.flat(i);
    }
    mass_sum += s.ray_mass;
    stats.failed_cells += s.failed_cells;
    stats.perturb_restarts += s.perturb_restarts;
  }
  const double inv = 1.0 / static_cast<double>(n);
  for (std::size_t c = 0; c < accum.channels(); ++c) {
    Grid2D& acc = accum.plane(c);
    for (std::size_t i = 0; i < acc.size(); ++i) acc.flat(i) *= inv;
  }
  stats.ray_mass = mass_sum * inv;
  return accum;
}

FieldGrid MarchingFieldKernel::render_one(const FieldCube& cube,
                                          const RenderRequest& request,
                                          const Deadline* deadline,
                                          KernelStats& stats) const {
  MarchingOptions opt = base_;
  if (request.seed != 0) opt.seed = request.seed;
  if (deadline != nullptr) opt.deadline = deadline;
  // The vertical fast path shares the cube's SoA geometry tables; the
  // ablation oracles (Möller / general Plücker) ignore the handle, so
  // skip the (possibly lazy) build for them.
  const bool fast = !opt.use_moller_trumbore && !opt.use_general_plucker;
  const std::shared_ptr<const TetraGeomTable> geom =
      fast ? cube.geom_table() : nullptr;
  if (request.field == FieldKind::kDensity) {
    const MarchingKernel kernel(cube.density(), cube.hull(), opt, geom);
    Grid2D grid = kernel.render(request.spec);
    stats.ray_mass = kernel.stats().ray_mass;
    stats.failed_cells = kernel.stats().failed_cells;
    stats.perturb_restarts = kernel.stats().perturb_restarts;
    return FieldGrid(std::move(grid));
  }

  // Vector channels: march ∫f dz and ∫dz with the same kernel options and
  // take the per-cell ratio — the volume-weighted line-of-sight mean.
  // ray_mass stays NaN (there is no mass identity for these channels).
  const Triangulation& tri = cube.triangulation();
  const auto channels = channel_vertex_values(cube, request);
  const std::vector<double> ones(tri.num_vertices(), 1.0);
  const DensityField unit = DensityField::with_vertex_values(tri, ones);
  const MarchingKernel path_kernel(unit, cube.hull(), opt, geom);
  const Grid2D path = path_kernel.render(request.spec);
  stats.failed_cells += path_kernel.stats().failed_cells;
  stats.perturb_restarts += path_kernel.stats().perturb_restarts;

  std::vector<Grid2D> planes;
  planes.reserve(channels.size());
  for (const std::vector<double>& values : channels) {
    const DensityField f = DensityField::with_vertex_values(tri, values);
    const MarchingKernel kernel(f, cube.hull(), opt, geom);
    const Grid2D integral = kernel.render(request.spec);
    stats.failed_cells += kernel.stats().failed_cells;
    stats.perturb_restarts += kernel.stats().perturb_restarts;
    planes.push_back(los_ratio(integral, path));
  }
  return FieldGrid(request.field, std::move(planes));
}

FieldGrid WalkingFieldKernel::render_one(const FieldCube& cube,
                                         const RenderRequest& request,
                                         const Deadline* deadline,
                                         KernelStats& stats) const {
  (void)deadline;  // the walking baseline has no cooperative poll points
  (void)stats;     // and no independent mass re-accumulation (NaN = skip)
  WalkingOptions opt = base_;
  if (request.seed != 0) opt.seed = request.seed;
  if (request.field == FieldKind::kDensity) {
    const WalkingKernel kernel(cube.density(), opt);
    return FieldGrid(kernel.render(request.spec));
  }

  const Triangulation& tri = cube.triangulation();
  const auto channels = channel_vertex_values(cube, request);
  const std::vector<double> ones(tri.num_vertices(), 1.0);
  const DensityField unit = DensityField::with_vertex_values(tri, ones);
  const Grid2D path = WalkingKernel(unit, opt).render(request.spec);

  std::vector<Grid2D> planes;
  planes.reserve(channels.size());
  for (const std::vector<double>& values : channels) {
    const DensityField f = DensityField::with_vertex_values(tri, values);
    const Grid2D integral = WalkingKernel(f, opt).render(request.spec);
    planes.push_back(los_ratio(integral, path));
  }
  return FieldGrid(request.field, std::move(planes));
}

FieldGrid TessFieldKernel::render_one(const FieldCube& cube,
                                      const RenderRequest& request,
                                      const Deadline* deadline,
                                      KernelStats& stats) const {
  (void)stats;
  if (request.field != FieldKind::kDensity)
    throw Error(std::string("kernel 'tess' renders density only; --field=") +
                field_kind_name(request.field) +
                " needs the march or walk kernel");
  TessOptions opt = base_;
  if (request.seed != 0) opt.seed = request.seed;
  if (deadline != nullptr) opt.deadline = deadline;
  const TessKernel kernel(cube.density(), opt);
  return FieldGrid(kernel.render(request.spec));
}

const KernelRegistry& KernelRegistry::builtin() {
  static const KernelRegistry reg = [] {
    KernelRegistry r;
    r.add("march", [](const KernelOptions& o) {
      return std::make_unique<MarchingFieldKernel>(o.marching);
    });
    r.add("walk", [](const KernelOptions& o) {
      return std::make_unique<WalkingFieldKernel>(o.walking);
    });
    r.add("tess", [](const KernelOptions& o) {
      return std::make_unique<TessFieldKernel>(o.tess);
    });
    return r;
  }();
  return reg;
}

void KernelRegistry::add(const std::string& name, Factory factory) {
  factories_[name] = std::move(factory);
}

bool KernelRegistry::contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> KernelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

std::unique_ptr<FieldKernel> KernelRegistry::create(
    const std::string& name, const KernelOptions& opt) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& n : names()) known += " " + n;
    throw Error("unknown field kernel '" + name + "' (registered:" + known +
                ")");
  }
  return it->second(opt);
}

}  // namespace dtfe::engine
