#include "util/stats.h"

#include <cstdio>

namespace dtfe {

std::string Histogram::render(int bar_width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const int len = static_cast<int>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) * bar_width);
    std::snprintf(line, sizeof line, "%+9.3f | %8zu | ", bin_center(b), counts_[b]);
    out += line;
    out.append(static_cast<std::size_t>(len), '#');
    out += '\n';
  }
  return out;
}

double mean_of(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev_of(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

}  // namespace dtfe
