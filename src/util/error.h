// Lightweight runtime checking used across the library.
//
// DTFE_CHECK is always on (it guards user-facing API contracts and cheap
// structural invariants); DTFE_DCHECK compiles away in NDEBUG builds and is
// used inside hot kernels.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dtfe {

/// Exception thrown on violated API contracts and invariants.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace dtfe

#define DTFE_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::dtfe::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define DTFE_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream os_;                                         \
      os_ << msg;                                                     \
      ::dtfe::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                   os_.str());                        \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define DTFE_DCHECK(expr) ((void)0)
#else
#define DTFE_DCHECK(expr) DTFE_CHECK(expr)
#endif

// Debug-only assertion for hot accessor paths (e.g. Grid2D::at bounds).
// Compiles to nothing in NDEBUG builds so release kernels pay zero cost;
// in debug builds a violation throws Error with the failing expression.
#ifdef NDEBUG
#define DTFE_ASSERT(expr) ((void)0)
#else
#define DTFE_ASSERT(expr) DTFE_CHECK(expr)
#endif
