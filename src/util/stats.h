// Streaming summary statistics and fixed-bin histograms.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace dtfe {

/// Welford streaming accumulator: mean / variance / extrema in one pass.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (n denominator); 0 for fewer than 2 samples.
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Merge another accumulator (parallel reduction support).
  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) { *this = o; return; }
    const double na = static_cast<double>(n_), nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    const double nt = na + nb;
    m2_ += o.m2_ + delta * delta * na * nb / nt;
    mean_ += delta * nb / nt;
    n_ += o.n_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0, m2_ = 0.0, sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Uniform-bin histogram over [lo, hi); out-of-range samples are clamped into
/// the end bins (matching how the paper's ratio histograms are displayed).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {}

  void add(double x) {
    const double t = (x - lo_) / (hi_ - lo_);
    auto b = static_cast<std::ptrdiff_t>(std::floor(t * static_cast<double>(counts_.size())));
    b = std::clamp<std::ptrdiff_t>(b, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(b)];
  }

  void add_all(std::span<const double> xs) {
    for (double x : xs) add(x);
  }

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t b) const { return counts_[b]; }
  std::size_t total() const {
    std::size_t t = 0;
    for (auto c : counts_) t += c;
    return t;
  }
  double bin_lo(std::size_t b) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(b) / static_cast<double>(counts_.size());
  }
  double bin_center(std::size_t b) const {
    return lo_ + (hi_ - lo_) * (static_cast<double>(b) + 0.5) / static_cast<double>(counts_.size());
  }
  double bin_width() const { return (hi_ - lo_) / static_cast<double>(counts_.size()); }

  /// Index of the most populated bin.
  std::size_t mode_bin() const {
    return static_cast<std::size_t>(
        std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
  }

  /// Console rendering: one line per bin with a proportional bar. Used by the
  /// benches that reproduce the paper's histogram figures.
  std::string render(int bar_width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
};

/// Mean of a span (0 for empty).
double mean_of(std::span<const double> xs);
/// Population standard deviation of a span (0 for size < 2).
double stddev_of(std::span<const double> xs);

}  // namespace dtfe
