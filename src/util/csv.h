// Minimal CSV writer for benchmark output series.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/error.h"

namespace dtfe {

/// Row-oriented CSV writer. Opens the file eagerly; throws dtfe::Error if the
/// path is unwritable.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path) : out_(path) {
    DTFE_CHECK_MSG(out_.good(), "cannot open " << path);
  }

  void header(std::initializer_list<std::string> cols) { write_row(cols); }

  template <typename... Ts>
  void row(const Ts&... vals) {
    bool first = true;
    ((out_ << (first ? "" : ","), first = false, out_ << vals), ...);
    out_ << '\n';
  }

 private:
  void write_row(std::initializer_list<std::string> cols) {
    bool first = true;
    for (const auto& c : cols) {
      if (!first) out_ << ',';
      first = false;
      out_ << c;
    }
    out_ << '\n';
  }

  std::ofstream out_;
};

}  // namespace dtfe
