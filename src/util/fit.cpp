#include "util/fit.h"

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/error.h"

namespace dtfe {

double fit_proportional(std::span<const double> x, std::span<const double> t) {
  DTFE_CHECK(x.size() == t.size());
  double xtx = 0.0, xtt = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    xtx += x[i] * x[i];
    xtt += x[i] * t[i];
  }
  return xtx > 0.0 ? xtt / xtx : 0.0;
}

double fit_nlogn(std::span<const double> n, std::span<const double> t) {
  DTFE_CHECK(n.size() == t.size());
  std::vector<double> basis, obs;
  basis.reserve(n.size());
  obs.reserve(n.size());
  for (std::size_t i = 0; i < n.size(); ++i) {
    if (n[i] >= 2.0) {
      basis.push_back(n[i] * std::log2(n[i]));
      obs.push_back(t[i]);
    }
  }
  return fit_proportional(basis, obs);
}

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  DTFE_CHECK(x.size() == y.size());
  const auto n = static_cast<double>(x.size());
  if (x.empty()) return {};
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-300) return {.intercept = sy / n, .slope = 0.0};
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  return f;
}

PowerLawFit fit_power_law(std::span<const double> n, std::span<const double> t,
                          int max_iterations, double tolerance) {
  DTFE_CHECK(n.size() == t.size());
  PowerLawFit fit;

  // Initial guess: log t = log α + β log n on the strictly positive samples.
  std::vector<double> ln, lt;
  for (std::size_t i = 0; i < n.size(); ++i) {
    if (n[i] > 0.0 && t[i] > 0.0) {
      ln.push_back(std::log(n[i]));
      lt.push_back(std::log(t[i]));
    }
  }
  if (ln.size() < 2) {
    fit.degenerate = true;
    return fit;
  }
  const LinearFit lin = fit_linear(ln, lt);
  double alpha = std::exp(lin.intercept);
  double beta = lin.slope;

  // Gauss–Newton on r_i = t_i − α·n_i^β with Jacobian columns
  // ∂/∂α = n^β, ∂/∂β = α·n^β·ln n. Normal equations are 2×2.
  for (int iter = 0; iter < max_iterations; ++iter) {
    double j11 = 0, j12 = 0, j22 = 0, g1 = 0, g2 = 0;
    for (std::size_t i = 0; i < n.size(); ++i) {
      if (n[i] <= 0.0) continue;
      const double nb = std::pow(n[i], beta);
      const double model = alpha * nb;
      const double r = t[i] - model;
      const double da = nb;
      const double db = model * std::log(n[i]);
      j11 += da * da;
      j12 += da * db;
      j22 += db * db;
      g1 += da * r;
      g2 += db * r;
    }
    const double det = j11 * j22 - j12 * j12;
    fit.iterations = iter + 1;
    if (std::abs(det) < 1e-300) break;
    const double d_alpha = (j22 * g1 - j12 * g2) / det;
    const double d_beta = (-j12 * g1 + j11 * g2) / det;
    alpha += d_alpha;
    beta += d_beta;
    if (!(std::isfinite(alpha) && std::isfinite(beta))) {
      // Diverged — fall back to the log-linear estimate.
      alpha = std::exp(lin.intercept);
      beta = lin.slope;
      break;
    }
    if (std::abs(d_alpha) <= tolerance * std::abs(alpha) + tolerance &&
        std::abs(d_beta) <= tolerance * std::abs(beta) + tolerance) {
      fit.converged = true;
      break;
    }
  }
  fit.alpha = alpha;
  fit.beta = beta;
  return fit;
}

}  // namespace dtfe
