#include "util/fft.h"

#include <cmath>

#include "util/error.h"

namespace dtfe {

void fft_1d(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  DTFE_CHECK_MSG(n > 0 && (n & (n - 1)) == 0, "FFT size must be a power of 2");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv_n;
  }
}

ComplexGrid3D::ComplexGrid3D(std::size_t n) : n_(n), data_(n * n * n) {
  DTFE_CHECK_MSG(n > 0 && (n & (n - 1)) == 0,
                 "ComplexGrid3D size must be a power of 2");
}

void ComplexGrid3D::transform(bool inverse) {
  std::vector<std::complex<double>> scratch(n_);

  // Along x: contiguous rows.
  for (std::size_t iz = 0; iz < n_; ++iz)
    for (std::size_t iy = 0; iy < n_; ++iy)
      fft_1d(std::span(&at(0, iy, iz), n_), inverse);

  // Along y: stride n_.
  for (std::size_t iz = 0; iz < n_; ++iz)
    for (std::size_t ix = 0; ix < n_; ++ix) {
      for (std::size_t iy = 0; iy < n_; ++iy) scratch[iy] = at(ix, iy, iz);
      fft_1d(scratch, inverse);
      for (std::size_t iy = 0; iy < n_; ++iy) at(ix, iy, iz) = scratch[iy];
    }

  // Along z: stride n_^2.
  for (std::size_t iy = 0; iy < n_; ++iy)
    for (std::size_t ix = 0; ix < n_; ++ix) {
      for (std::size_t iz = 0; iz < n_; ++iz) scratch[iz] = at(ix, iy, iz);
      fft_1d(scratch, inverse);
      for (std::size_t iz = 0; iz < n_; ++iz) at(ix, iy, iz) = scratch[iz];
    }
}

}  // namespace dtfe
