// PGM/PPM image output for rendered density fields (paper Figs. 1 and 8).
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace dtfe {

/// Write a grayscale binary PGM. `values` is row-major, width*height doubles,
/// linearly mapped from [vmin, vmax] to [0, 255] (clamped).
void write_pgm(const std::string& path, std::span<const double> values,
               std::size_t width, std::size_t height, double vmin, double vmax);

/// Write values through log10 with a floor, auto-ranged — the rendering the
/// paper uses for density maps ("log10" color scales in Figs. 1/8).
void write_log_pgm(const std::string& path, std::span<const double> values,
                   std::size_t width, std::size_t height,
                   double floor_value = 1e-12);

/// Diverging blue–white–red PPM for ratio maps (paper Fig. 8c):
/// value 0 → white, -range → blue, +range → red.
void write_diverging_ppm(const std::string& path,
                         std::span<const double> values, std::size_t width,
                         std::size_t height, double range);

}  // namespace dtfe
