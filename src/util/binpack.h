// Greedy first-fit approximation to the variable-sized bin packing problem
// (paper §IV-D, citing Kang & Park 2003).
//
// The work-sharing executor has to decide which local work items a *sender*
// computes between its scheduled MPI_Send calls. The gaps between sends are
// "bins" of time; local work items are the "items". Following the paper, the
// items are sorted in descending size and the bins in ascending capacity, and
// each item is placed first-fit.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dtfe {

struct BinAssignment {
  /// assignment[i] = bin index for item i, or kUnassigned if it fit nowhere.
  std::vector<std::ptrdiff_t> item_to_bin;
  /// Remaining capacity per bin after packing.
  std::vector<double> slack;
  /// Total size of items that did not fit in any bin.
  double overflow = 0.0;

  static constexpr std::ptrdiff_t kUnassigned = -1;
};

/// First-fit-decreasing over variable-capacity bins sorted ascending.
/// `item_sizes` and `bin_capacities` are in the caller's units (seconds of
/// predicted work, in the framework). Items that fit nowhere are reported in
/// `overflow` and left unassigned — the executor runs those after all sends.
BinAssignment pack_first_fit(std::span<const double> item_sizes,
                             std::span<const double> bin_capacities);

}  // namespace dtfe
