// Wall-clock and per-thread CPU timers.
//
// ThreadCpuTimer is the measurement primitive behind every scaling figure in
// this reproduction: with thread-backed "MPI ranks" oversubscribed onto one
// physical core, CLOCK_THREAD_CPUTIME_ID still measures each rank's genuine
// compute, so "parallel time" can be reported as the per-rank critical path.
#pragma once

#include <chrono>
#include <ctime>

namespace dtfe {

/// Monotonic wall-clock stopwatch (seconds).
class WallTimer {
 public:
  WallTimer() { reset(); }
  void reset() { start_ = clock::now(); }
  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// RAII accumulator over ThreadCpuTimer: adds the scope's thread-CPU
/// seconds into a caller-owned total at destruction (or at an explicit
/// stop(), which also returns the elapsed amount). Replaces the manual
/// reset()/seconds() pairs around the pipeline's phases.
class ScopedTimer;

/// Per-thread CPU-time stopwatch (seconds). Unaffected by other threads
/// sharing the core, which makes it the right metric for simulated ranks.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { reset(); }
  void reset() { start_ = now(); }
  double seconds() const { return now() - start_; }

  /// Current thread CPU time in seconds since an arbitrary epoch.
  static double now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
  }

 private:
  double start_;
};

class ScopedTimer {
 public:
  explicit ScopedTimer(double& accumulator) : acc_(&accumulator) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { stop(); }

  /// Accumulate now instead of at scope exit (idempotent). Returns the
  /// elapsed thread-CPU seconds that were added (0.0 if already stopped).
  double stop() {
    if (!acc_) return 0.0;
    const double elapsed = timer_.seconds();
    *acc_ += elapsed;
    acc_ = nullptr;
    return elapsed;
  }

 private:
  double* acc_;
  ThreadCpuTimer timer_;
};

}  // namespace dtfe
