// Portable 4-lane double SIMD wrapper for the marching kernel's batched
// vertical crossing test (DESIGN.md §11).
//
// The wrapper deliberately exposes only lane-wise add/mul/broadcast — the
// operations whose IEEE-754 results are bit-identical to the corresponding
// scalar sequence on every supported ISA. That property is what lets the
// batched kernel path promise bitwise-equal grids against the scalar path:
// a lane of addpd/mulpd (or NEON fadd/fmul) rounds exactly like addsd/mulsd.
// Fused multiply-add is never used (and the build globally disables FP
// contraction), because an FMA's single rounding would break the guarantee.
//
// ISA selection is compile-time: SSE2 (always present on x86-64), NEON on
// aarch64, and a plain-array fallback everywhere else. The fallback keeps
// every call site valid, so `MarchingOptions::use_simd = kOn` is honored
// structurally (the batch loop runs) even where it cannot win.
#pragma once

#include <string>

#include "util/error.h"

#if defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define DTFE_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__) || defined(_M_ARM64)
#define DTFE_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace dtfe {

/// Three-state batching switch for kernels with a SIMD path. `kAuto`
/// resolves to kOn when the build carries a native ISA (SSE2/NEON) and kOff
/// on the scalar fallback, where batching costs bookkeeping for no win.
enum class SimdMode { kAuto, kOff, kOn };

namespace simd {

/// Width of the batch path: four rays classified per pass.
inline constexpr int kLanes = 4;

#if defined(DTFE_SIMD_SSE2)

inline constexpr bool kNative = true;
inline const char* isa_name() { return "sse2"; }

/// Four doubles as two 128-bit halves (the portable x86-64 baseline; an
/// AVX build would fold the halves into one ymm but the lane-wise rounding
/// — the only contract callers rely on — is identical).
struct Pack4d {
  __m128d lo, hi;
};

inline Pack4d set1(double v) { return {_mm_set1_pd(v), _mm_set1_pd(v)}; }
inline Pack4d load(const double* p) {
  return {_mm_loadu_pd(p), _mm_loadu_pd(p + 2)};
}
inline void store(double* p, Pack4d a) {
  _mm_storeu_pd(p, a.lo);
  _mm_storeu_pd(p + 2, a.hi);
}
inline Pack4d add(Pack4d a, Pack4d b) {
  return {_mm_add_pd(a.lo, b.lo), _mm_add_pd(a.hi, b.hi)};
}
inline Pack4d mul(Pack4d a, Pack4d b) {
  return {_mm_mul_pd(a.lo, b.lo), _mm_mul_pd(a.hi, b.hi)};
}

#elif defined(DTFE_SIMD_NEON)

inline constexpr bool kNative = true;
inline const char* isa_name() { return "neon"; }

struct Pack4d {
  float64x2_t lo, hi;
};

inline Pack4d set1(double v) { return {vdupq_n_f64(v), vdupq_n_f64(v)}; }
inline Pack4d load(const double* p) {
  return {vld1q_f64(p), vld1q_f64(p + 2)};
}
inline void store(double* p, Pack4d a) {
  vst1q_f64(p, a.lo);
  vst1q_f64(p + 2, a.hi);
}
inline Pack4d add(Pack4d a, Pack4d b) {
  return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
}
inline Pack4d mul(Pack4d a, Pack4d b) {
  // NB: plain multiplies only — vfmaq would fuse and change the rounding.
  return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
}

#else

inline constexpr bool kNative = false;
inline const char* isa_name() { return "scalar"; }

struct Pack4d {
  double v[kLanes];
};

inline Pack4d set1(double x) { return {{x, x, x, x}}; }
inline Pack4d load(const double* p) { return {{p[0], p[1], p[2], p[3]}}; }
inline void store(double* p, Pack4d a) {
  for (int i = 0; i < kLanes; ++i) p[i] = a.v[i];
}
inline Pack4d add(Pack4d a, Pack4d b) {
  Pack4d r;
  for (int i = 0; i < kLanes; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}
inline Pack4d mul(Pack4d a, Pack4d b) {
  Pack4d r;
  for (int i = 0; i < kLanes; ++i) r.v[i] = a.v[i] * b.v[i];
  return r;
}

#endif

}  // namespace simd

/// Resolve a three-state mode against the compiled ISA.
inline bool simd_enabled(SimdMode mode) {
  switch (mode) {
    case SimdMode::kOn: return true;
    case SimdMode::kOff: return false;
    case SimdMode::kAuto: break;
  }
  return simd::kNative;
}

/// Parse "auto" / "on" / "off" (the --use-simd grammar).
inline SimdMode parse_simd_mode(const std::string& s) {
  if (s == "auto") return SimdMode::kAuto;
  if (s == "on") return SimdMode::kOn;
  if (s == "off") return SimdMode::kOff;
  throw Error("invalid SIMD mode '" + s + "' (expected auto, on, or off)");
}

inline const char* simd_mode_name(SimdMode mode) {
  switch (mode) {
    case SimdMode::kOn: return "on";
    case SimdMode::kOff: return "off";
    case SimdMode::kAuto: break;
  }
  return "auto";
}

}  // namespace dtfe
