// Deterministic, splittable random number generation.
//
// xoshiro256** seeded via splitmix64 — fast, high quality, and reproducible
// across platforms (no reliance on libstdc++ distribution internals for the
// core streams; normal variates use Box–Muller on our own uniforms).
#pragma once

#include <cmath>
#include <cstdint>

namespace dtfe {

namespace detail {
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace detail

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x2545f4914f6cdd1dull) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = detail::splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Derive an independent stream (e.g. one per rank or per work item).
  Rng split(std::uint64_t stream) const {
    Rng child(s_[0] ^ (stream * 0x9e3779b97f4a7c15ull + 0x1234567));
    return child;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal variate (Box–Muller; one value per call, cached pair).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Poisson variate (Knuth for small mean, normal approximation for large).
  std::uint64_t poisson(double mean) {
    if (mean <= 0.0) return 0;
    if (mean < 30.0) {
      const double limit = std::exp(-mean);
      double prod = uniform();
      std::uint64_t n = 0;
      while (prod > limit) {
        ++n;
        prod *= uniform();
      }
      return n;
    }
    const double v = mean + std::sqrt(mean) * normal();
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace dtfe
