// Shared retry/backoff policy: bounded exponential backoff with
// deterministic jitter.
//
// Every retry loop in the system — the work-package ack/resend exchange in
// the pipeline's ComputeStage, the socket transport's connect/send paths —
// expresses its bounds through this one struct instead of ad-hoc counters,
// so thread-backed and multi-process runs back off identically.
//
// Determinism: the jitter is a pure function of (seed, attempt) via
// splitmix64, never of wall-clock or a global RNG. Two runs with the same
// seed produce the same delay sequence, which keeps fault-plan replays
// reproducible over the real wire.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "util/rng.h"

namespace dtfe {

struct RetryPolicy {
  /// How many retries are allowed AFTER the first attempt. attempt indices
  /// passed to the helpers are 1-based retry counts: exhausted(n) is true
  /// once n > max_retries.
  int max_retries = 3;
  double base_delay_ms = 2.0;   ///< delay before the first retry
  double max_delay_ms = 500.0;  ///< backoff ceiling
  double multiplier = 2.0;      ///< exponential growth per retry
  /// Fraction of the computed delay replaced by deterministic jitter
  /// (0 = pure exponential). Jitter spreads reconnect storms without
  /// sacrificing replayability.
  double jitter_frac = 0.25;
  std::uint64_t seed = 1;       ///< jitter stream (callers mix in their rank)

  bool exhausted(int retry) const { return retry > max_retries; }

  /// Backoff delay before 1-based retry `retry`, bounded and jittered.
  double delay_ms(int retry) const {
    if (retry < 1) retry = 1;
    double d = base_delay_ms;
    for (int i = 1; i < retry && d < max_delay_ms; ++i) d *= multiplier;
    d = std::min(d, max_delay_ms);
    if (jitter_frac > 0.0) {
      std::uint64_t s = seed ^ (static_cast<std::uint64_t>(retry) << 32);
      const std::uint64_t h = detail::splitmix64(s);
      const double u =
          static_cast<double>(h >> 11) / 9007199254740992.0;  // [0,1)
      d = d * (1.0 - jitter_frac) + d * jitter_frac * u;
    }
    return d;
  }

  /// Sleep the backoff delay for 1-based retry `retry`.
  void backoff(int retry) const {
    const double ms = delay_ms(retry);
    if (ms > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
};

}  // namespace dtfe
