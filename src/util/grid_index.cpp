#include "util/grid_index.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace dtfe {

GridIndex::GridIndex(std::span<const Vec3> points, Vec3 origin, double extent,
                     std::size_t cells_per_dim, bool periodic)
    : points_(points),
      origin_(origin),
      extent_(extent),
      inv_cell_(static_cast<double>(cells_per_dim) / extent),
      cells_(cells_per_dim),
      periodic_(periodic) {
  DTFE_CHECK(extent > 0.0);
  DTFE_CHECK(cells_per_dim >= 1);
  const std::size_t ncells = cells_ * cells_ * cells_;
  std::vector<std::uint32_t> counts(ncells, 0);

  auto cell_index = [&](const Vec3& p) {
    auto coord = [&](double v, double o) -> std::size_t {
      auto c = static_cast<std::ptrdiff_t>((v - o) * inv_cell_);
      c = std::clamp<std::ptrdiff_t>(c, 0, static_cast<std::ptrdiff_t>(cells_) - 1);
      return static_cast<std::size_t>(c);
    };
    return (coord(p.z, origin_.z) * cells_ + coord(p.y, origin_.y)) * cells_ +
           coord(p.x, origin_.x);
  };

  for (const Vec3& p : points_) ++counts[cell_index(p)];

  cell_start_.resize(ncells + 1);
  cell_start_[0] = 0;
  for (std::size_t c = 0; c < ncells; ++c)
    cell_start_[c + 1] = cell_start_[c] + counts[c];

  point_of_slot_.resize(points_.size());
  std::vector<std::uint32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const std::size_t c = cell_index(points_[i]);
    point_of_slot_[cursor[c]++] = static_cast<std::uint32_t>(i);
  }
}

std::size_t GridIndex::cell_of(std::ptrdiff_t cx, std::ptrdiff_t cy,
                               std::ptrdiff_t cz) const {
  const auto n = static_cast<std::ptrdiff_t>(cells_);
  if (periodic_) {
    cx = ((cx % n) + n) % n;
    cy = ((cy % n) + n) % n;
    cz = ((cz % n) + n) % n;
  }
  return static_cast<std::size_t>((cz * n + cy) * n + cx);
}

template <typename Visit>
void GridIndex::visit_cube(Vec3 center, double side, Visit&& visit) const {
  const double h = side * 0.5;
  const Vec3 lo{center.x - h, center.y - h, center.z - h};
  const Vec3 hi{center.x + h, center.y + h, center.z + h};

  auto lo_cell = [&](double v, double o) {
    return static_cast<std::ptrdiff_t>(std::floor((v - o) * inv_cell_));
  };
  std::ptrdiff_t cx0 = lo_cell(lo.x, origin_.x), cx1 = lo_cell(hi.x, origin_.x);
  std::ptrdiff_t cy0 = lo_cell(lo.y, origin_.y), cy1 = lo_cell(hi.y, origin_.y);
  std::ptrdiff_t cz0 = lo_cell(lo.z, origin_.z), cz1 = lo_cell(hi.z, origin_.z);
  const auto n = static_cast<std::ptrdiff_t>(cells_);
  if (!periodic_) {
    cx0 = std::clamp<std::ptrdiff_t>(cx0, 0, n - 1);
    cy0 = std::clamp<std::ptrdiff_t>(cy0, 0, n - 1);
    cz0 = std::clamp<std::ptrdiff_t>(cz0, 0, n - 1);
    cx1 = std::clamp<std::ptrdiff_t>(cx1, 0, n - 1);
    cy1 = std::clamp<std::ptrdiff_t>(cy1, 0, n - 1);
    cz1 = std::clamp<std::ptrdiff_t>(cz1, 0, n - 1);
  } else {
    // Never visit a periodic image cell twice.
    cx1 = std::min(cx1, cx0 + n - 1);
    cy1 = std::min(cy1, cy0 + n - 1);
    cz1 = std::min(cz1, cz0 + n - 1);
  }

  auto inside = [&](const Vec3& p) {
    if (!periodic_) {
      return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
             p.z >= lo.z && p.z <= hi.z;
    }
    auto wrapped_near = [&](double v, double c) {
      double d = v - c;
      d -= extent_ * std::round(d / extent_);
      return std::abs(d) <= h;
    };
    return wrapped_near(p.x, center.x) && wrapped_near(p.y, center.y) &&
           wrapped_near(p.z, center.z);
  };

  for (std::ptrdiff_t cz = cz0; cz <= cz1; ++cz)
    for (std::ptrdiff_t cy = cy0; cy <= cy1; ++cy)
      for (std::ptrdiff_t cx = cx0; cx <= cx1; ++cx) {
        const std::size_t c = cell_of(cx, cy, cz);
        for (std::uint32_t s = cell_start_[c]; s < cell_start_[c + 1]; ++s) {
          const std::uint32_t idx = point_of_slot_[s];
          if (inside(points_[idx])) visit(idx);
        }
      }
}

std::size_t GridIndex::count_in_cube(Vec3 center, double side) const {
  std::size_t count = 0;
  visit_cube(center, side, [&](std::uint32_t) { ++count; });
  return count;
}

void GridIndex::gather_in_cube(Vec3 center, double side,
                               std::vector<std::uint32_t>& out) const {
  visit_cube(center, side, [&](std::uint32_t i) { out.push_back(i); });
}

}  // namespace dtfe
