// Cooperative cancellation for long-running kernels.
//
// A Deadline is a soft wall-clock budget: code that may run away (a
// triangulation of a pathological cube, a marching render caught in a
// perturbation storm) polls expired() at coarse intervals and unwinds
// cleanly — typically by throwing dtfe::Error so the pipeline's containment
// path turns the item into a failed-with-reason zero grid instead of hanging
// its rank. An unarmed Deadline (the default) never expires and its checks
// compile down to one branch on a bool, so disabled-mode overhead is nil.
#pragma once

#include <chrono>

namespace dtfe {

class Deadline {
 public:
  /// Never expires (the disabled default).
  Deadline() = default;

  /// Expires `ms` wall-clock milliseconds from now. Non-positive budgets
  /// produce an already-expired deadline (useful in tests).
  static Deadline after_ms(double ms) {
    Deadline d;
    d.armed_ = true;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  bool armed() const { return armed_; }
  bool expired() const {
    return armed_ && std::chrono::steady_clock::now() >= at_;
  }

  /// Milliseconds remaining (0 if expired, a large value if unarmed).
  double remaining_ms() const {
    if (!armed_) return 1e300;
    const auto left = at_ - std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(left).count();
    return ms > 0.0 ? ms : 0.0;
  }

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point at_{};
};

}  // namespace dtfe
