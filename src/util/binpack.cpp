#include "util/binpack.h"

#include <algorithm>
#include <numeric>

namespace dtfe {

BinAssignment pack_first_fit(std::span<const double> item_sizes,
                             std::span<const double> bin_capacities) {
  BinAssignment out;
  out.item_to_bin.assign(item_sizes.size(), BinAssignment::kUnassigned);
  out.slack.assign(bin_capacities.begin(), bin_capacities.end());

  std::vector<std::size_t> item_order(item_sizes.size());
  std::iota(item_order.begin(), item_order.end(), std::size_t{0});
  std::stable_sort(item_order.begin(), item_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return item_sizes[a] > item_sizes[b];
                   });

  std::vector<std::size_t> bin_order(bin_capacities.size());
  std::iota(bin_order.begin(), bin_order.end(), std::size_t{0});
  std::stable_sort(bin_order.begin(), bin_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return bin_capacities[a] < bin_capacities[b];
                   });

  for (std::size_t i : item_order) {
    const double size = item_sizes[i];
    bool placed = false;
    for (std::size_t b : bin_order) {
      if (out.slack[b] >= size) {
        out.slack[b] -= size;
        out.item_to_bin[i] = static_cast<std::ptrdiff_t>(b);
        placed = true;
        break;
      }
    }
    if (!placed) out.overflow += size;
  }
  return out;
}

}  // namespace dtfe
