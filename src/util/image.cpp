#include "util/image.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <vector>

#include "util/error.h"

namespace dtfe {

namespace {

std::uint8_t to_byte(double t) {
  t = std::clamp(t, 0.0, 1.0);
  return static_cast<std::uint8_t>(t * 255.0 + 0.5);
}

void write_pnm(const std::string& path, const char* magic,
               std::span<const std::uint8_t> bytes, std::size_t width,
               std::size_t height) {
  std::ofstream out(path, std::ios::binary);
  DTFE_CHECK_MSG(out.good(), "cannot open " << path);
  out << magic << '\n' << width << ' ' << height << "\n255\n";
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  DTFE_CHECK_MSG(out.good(), "short write to " << path);
}

}  // namespace

void write_pgm(const std::string& path, std::span<const double> values,
               std::size_t width, std::size_t height, double vmin,
               double vmax) {
  DTFE_CHECK(values.size() == width * height);
  const double span = vmax > vmin ? vmax - vmin : 1.0;
  std::vector<std::uint8_t> bytes(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    bytes[i] = to_byte((values[i] - vmin) / span);
  write_pnm(path, "P5", bytes, width, height);
}

void write_log_pgm(const std::string& path, std::span<const double> values,
                   std::size_t width, std::size_t height, double floor_value) {
  DTFE_CHECK(values.size() == width * height);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  std::vector<double> logs(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    logs[i] = std::log10(std::max(values[i], floor_value));
    lo = std::min(lo, logs[i]);
    hi = std::max(hi, logs[i]);
  }
  write_pgm(path, logs, width, height, lo, hi);
}

void write_diverging_ppm(const std::string& path,
                         std::span<const double> values, std::size_t width,
                         std::size_t height, double range) {
  DTFE_CHECK(values.size() == width * height);
  DTFE_CHECK(range > 0.0);
  std::vector<std::uint8_t> bytes(values.size() * 3);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double t = std::clamp(values[i] / range, -1.0, 1.0);
    double r = 1.0, g = 1.0, b = 1.0;
    if (t < 0.0) {            // toward blue
      r = 1.0 + t;
      g = 1.0 + t;
    } else if (t > 0.0) {     // toward red
      g = 1.0 - t;
      b = 1.0 - t;
    }
    bytes[3 * i + 0] = to_byte(r);
    bytes[3 * i + 1] = to_byte(g);
    bytes[3 * i + 2] = to_byte(b);
  }
  write_pnm(path, "P6", bytes, width, height);
}

}  // namespace dtfe
