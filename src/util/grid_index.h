// Uniform spatial grid over a point set.
//
// Used by the workload-modeling phase to count the particles inside the
// cube of each requested field (paper §IV-C step 1) and by the framework to
// gather the particles a work item actually needs. Supports optional periodic
// wrapping, since cosmological boxes are periodic.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "geometry/vec3.h"

namespace dtfe {

class GridIndex {
 public:
  /// Build an index of `points` over the axis-aligned box [origin,
  /// origin+extent]^3 with `cells_per_dim`^3 cells. Points outside the box are
  /// clamped into the boundary cells.
  GridIndex(std::span<const Vec3> points, Vec3 origin, double extent,
            std::size_t cells_per_dim, bool periodic = false);

  /// Number of indexed points inside the axis-aligned cube centered at
  /// `center` with side length `side`. Exact (per-point test at the borders).
  std::size_t count_in_cube(Vec3 center, double side) const;

  /// Append the indices of points inside the cube to `out`.
  void gather_in_cube(Vec3 center, double side,
                      std::vector<std::uint32_t>& out) const;

  std::size_t size() const { return point_of_slot_.size(); }
  std::size_t cells_per_dim() const { return cells_; }

 private:
  struct CellRange {
    std::uint32_t begin, end;
  };

  std::size_t cell_of(std::ptrdiff_t cx, std::ptrdiff_t cy,
                      std::ptrdiff_t cz) const;
  template <typename Visit>
  void visit_cube(Vec3 center, double side, Visit&& visit) const;

  std::span<const Vec3> points_;
  Vec3 origin_;
  double extent_;
  double inv_cell_;
  std::size_t cells_;
  bool periodic_;
  std::vector<std::uint32_t> cell_start_;    // CSR offsets, cells_^3 + 1
  std::vector<std::uint32_t> point_of_slot_; // permutation of point indices
};

}  // namespace dtfe
