// 3D Morton (Z-order) codes, used for BRIO-style spatially coherent
// insertion ordering in the Delaunay builder and for cache-friendly particle
// ordering in the generators.
#pragma once

#include <cstdint>

namespace dtfe {

namespace detail {
/// Spread the low 21 bits of x so they occupy every third bit.
constexpr std::uint64_t spread3(std::uint64_t x) {
  x &= 0x1fffffull;
  x = (x | (x << 32)) & 0x1f00000000ffffull;
  x = (x | (x << 16)) & 0x1f0000ff0000ffull;
  x = (x | (x << 8)) & 0x100f00f00f00f00full;
  x = (x | (x << 4)) & 0x10c30c30c30c30c3ull;
  x = (x | (x << 2)) & 0x1249249249249249ull;
  return x;
}
}  // namespace detail

/// Interleave three 21-bit coordinates into one 63-bit Morton key.
constexpr std::uint64_t morton_encode(std::uint32_t ix, std::uint32_t iy,
                                      std::uint32_t iz) {
  return detail::spread3(ix) | (detail::spread3(iy) << 1) |
         (detail::spread3(iz) << 2);
}

/// Morton key for a point in [lo, hi)^3 quantized to 21 bits per axis.
inline std::uint64_t morton_key(double x, double y, double z, double lo,
                                double inv_extent) {
  constexpr double scale = 2097151.0;  // 2^21 - 1
  auto q = [&](double v) -> std::uint32_t {
    double t = (v - lo) * inv_extent;
    if (t < 0.0) t = 0.0;
    if (t > 1.0) t = 1.0;
    return static_cast<std::uint32_t>(t * scale);
  };
  return morton_encode(q(x), q(y), q(z));
}

}  // namespace dtfe
