// Minimal command-line flag parsing for the pdtfe tool and examples.
//
// Supports `--key value` and `--key=value` pairs after a positional
// subcommand; typed accessors with defaults; unknown-flag detection.
#pragma once

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "util/error.h"

namespace dtfe {

class CliArgs {
 public:
  /// Parse argv after `first` (typically 2: skip program + subcommand).
  CliArgs(int argc, char** argv, int first = 2) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      DTFE_CHECK_MSG(arg.rfind("--", 0) == 0, "expected --flag, got " << arg);
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else {
        DTFE_CHECK_MSG(i + 1 < argc, "missing value for --" << arg);
        values_[arg] = argv[++i];
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double get(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }
  long get(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtol(it->second.c_str(), nullptr, 10);
  }

  /// Throws if any flag outside `known` was provided (typo guard).
  void check_known(const std::vector<std::string>& known) const {
    for (const auto& [k, v] : values_) {
      bool ok = false;
      for (const auto& name : known)
        if (k == name) ok = true;
      DTFE_CHECK_MSG(ok, "unknown flag --" << k);
    }
  }

 private:
  std::map<std::string, std::string> values_;
};

/// The flag quartet every field-producing subcommand understands. Each
/// command passes its own defaults (render: grid 512; pipeline: grid 64,
/// length 5; lensing: grid 256, length 8) and ignores the fields it has no
/// flag for — parsing stays in one place instead of three.
struct CommonFieldFlags {
  std::string in;      ///< --in: input snapshot path
  std::size_t grid;    ///< --grid: output resolution (cells per side)
  double length;       ///< --length: physical field side
  std::string method;  ///< --method: kernel name ("march", "walk", ...)
};

inline CommonFieldFlags parse_common_field_flags(
    const CliArgs& args, long default_grid, double default_length = 0.0,
    const std::string& default_method = "march") {
  CommonFieldFlags f;
  f.in = args.get("in", std::string{});
  f.grid = static_cast<std::size_t>(args.get("grid", default_grid));
  f.length = args.get("length", default_length);
  f.method = args.get("method", default_method);
  return f;
}

}  // namespace dtfe
