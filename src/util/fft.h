// Minimal power-of-two complex FFT with a 3D wrapper.
//
// The Zel'dovich initial-condition generator (src/nbody) needs an inverse 3D
// Fourier transform to turn a k-space Gaussian random field into real-space
// displacements. Nothing here is performance critical — the generator runs
// once per experiment at modest grid sizes — so a straightforward iterative
// radix-2 Cooley–Tukey implementation is used.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace dtfe {

/// In-place radix-2 FFT. `data.size()` must be a power of two.
/// `inverse` applies the conjugate transform *and* the 1/N normalization.
void fft_1d(std::span<std::complex<double>> data, bool inverse);

/// Dense 3D complex grid with FFT support. Index order: (x fastest) —
/// value(ix, iy, iz) at flat index ix + n*(iy + n*iz).
class ComplexGrid3D {
 public:
  explicit ComplexGrid3D(std::size_t n);

  std::size_t n() const { return n_; }
  std::complex<double>& at(std::size_t ix, std::size_t iy, std::size_t iz) {
    return data_[ix + n_ * (iy + n_ * iz)];
  }
  const std::complex<double>& at(std::size_t ix, std::size_t iy,
                                 std::size_t iz) const {
    return data_[ix + n_ * (iy + n_ * iz)];
  }
  std::span<std::complex<double>> flat() { return data_; }
  std::span<const std::complex<double>> flat() const { return data_; }

  /// In-place 3D FFT along all three axes.
  void transform(bool inverse);

 private:
  std::size_t n_;
  std::vector<std::complex<double>> data_;
};

}  // namespace dtfe
