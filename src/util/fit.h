// Model fitting used by the workload-modeling phase (paper §IV-C).
//
// Two models are fit at runtime from (n_i, t_i) samples gathered via
// Allgather:
//   triangulation:  f_tri(n)    = c · n · log2(n)        (OLS, Eq. 15/16)
//   interpolation:  f_interp(n) = α · n^β                (Gauss–Newton, Eq. 17)
#pragma once

#include <span>

namespace dtfe {

/// One-parameter proportional fit t ≈ c · x by ordinary least squares:
/// c = (ΣxΣt form of (XᵀX)⁻¹Xᵀt for a single column). Returns 0 for
/// degenerate input (all x == 0 or empty).
double fit_proportional(std::span<const double> x, std::span<const double> t);

/// Triangulation cost model f(n) = c · n·log2(n). Returns the fitted c.
/// Samples with n < 2 are ignored (log2 undefined / irrelevant).
double fit_nlogn(std::span<const double> n, std::span<const double> t);

/// Power-law fit t ≈ α·n^β.
struct PowerLawFit {
  double alpha = 0.0;
  double beta = 0.0;
  int iterations = 0;   ///< Gauss–Newton iterations actually performed.
  bool converged = false;
  /// True when the input had < 2 usable (n > 0, t > 0) samples and the
  /// returned coefficients are fallback constants, not a fit. Callers that
  /// schedule work off these predictions must check this — a degenerate
  /// "fit" predicts zero cost for everything.
  bool degenerate = false;
};

/// Fits α·n^β with Gauss–Newton; the initial guess comes from an OLS fit of
/// log t against log n (as the paper prescribes). Samples with n <= 0 or
/// t <= 0 are ignored for the initial guess but used by the refinement.
PowerLawFit fit_power_law(std::span<const double> n, std::span<const double> t,
                          int max_iterations = 50, double tolerance = 1e-10);

/// Simple linear regression y ≈ a + b·x; returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

}  // namespace dtfe
