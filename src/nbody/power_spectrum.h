// Linear matter power spectra for the initial-condition generator.
#pragma once

#include <cmath>

namespace dtfe {

/// CDM-like linear power spectrum: primordial tilt n_s with the BBKS
/// transfer function (Bardeen, Bond, Kaiser & Szalay 1986) — the standard
/// analytic stand-in for a full Boltzmann-code spectrum. Units are box
/// units; `shape_gamma` plays the role of Γ·(h/Mpc).
struct PowerSpectrum {
  double amplitude = 1.0;
  double tilt = 1.0;         ///< n_s
  double shape_gamma = 0.2;  ///< turnover scale parameter

  double transfer(double k) const {
    const double q = k / shape_gamma;
    if (q <= 0.0) return 1.0;
    const double t1 = std::log(1.0 + 2.34 * q) / (2.34 * q);
    const double poly = 1.0 + 3.89 * q + std::pow(16.1 * q, 2) +
                        std::pow(5.46 * q, 3) + std::pow(6.71 * q, 4);
    return t1 * std::pow(poly, -0.25);
  }

  double operator()(double k) const {
    if (k <= 0.0) return 0.0;
    const double t = transfer(k);
    return amplitude * std::pow(k, tilt) * t * t;
  }
};

}  // namespace dtfe
