#include "nbody/snapshot_io.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "util/error.h"

namespace dtfe {

namespace {

constexpr std::uint64_t kMagic = 0x44544645534e4150ull;  // "DTFESNAP"

template <typename T>
void put(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  DTFE_CHECK_MSG(in.good(), "unexpected end of snapshot file");
  return v;
}

}  // namespace

void write_snapshot(const std::string& path, const ParticleSet& set,
                    std::size_t blocks_per_dim) {
  DTFE_CHECK(blocks_per_dim >= 1);
  const std::size_t nb = blocks_per_dim * blocks_per_dim * blocks_per_dim;
  const double sub = set.box_length / static_cast<double>(blocks_per_dim);

  // Bucket particles by sub-volume (the "writing rank" layout).
  auto block_of = [&](const Vec3& p) {
    auto c = [&](double v) {
      auto i = static_cast<std::size_t>(v / sub);
      return std::min(i, blocks_per_dim - 1);
    };
    return (c(p.z) * blocks_per_dim + c(p.y)) * blocks_per_dim + c(p.x);
  };
  std::vector<std::vector<std::uint32_t>> buckets(nb);
  for (std::size_t i = 0; i < set.size(); ++i)
    buckets[block_of(set.positions[i])].push_back(
        static_cast<std::uint32_t>(i));

  std::ofstream out(path, std::ios::binary);
  DTFE_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  put(out, kMagic);
  put(out, set.box_length);
  put(out, set.particle_mass);
  put(out, static_cast<std::uint64_t>(set.size()));
  put(out, static_cast<std::uint64_t>(nb));

  std::uint64_t offset = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    const std::size_t bx = b % blocks_per_dim;
    const std::size_t by = (b / blocks_per_dim) % blocks_per_dim;
    const std::size_t bz = b / (blocks_per_dim * blocks_per_dim);
    put(out, offset);
    put(out, static_cast<std::uint64_t>(buckets[b].size()));
    put(out, Vec3{static_cast<double>(bx) * sub, static_cast<double>(by) * sub,
                  static_cast<double>(bz) * sub});
    put(out, Vec3{static_cast<double>(bx + 1) * sub,
                  static_cast<double>(by + 1) * sub,
                  static_cast<double>(bz + 1) * sub});
    offset += buckets[b].size();
  }
  for (std::size_t b = 0; b < nb; ++b)
    for (const std::uint32_t i : buckets[b]) put(out, set.positions[i]);
  DTFE_CHECK_MSG(out.good(), "short write to " << path);
}

SnapshotHeader read_snapshot_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DTFE_CHECK_MSG(in.good(), "cannot open " << path);
  DTFE_CHECK_MSG(get<std::uint64_t>(in) == kMagic,
                 path << " is not a DTFE snapshot");
  SnapshotHeader h;
  h.box_length = get<double>(in);
  h.particle_mass = get<double>(in);
  h.n_particles = get<std::uint64_t>(in);
  const auto nb = get<std::uint64_t>(in);
  h.blocks.resize(nb);
  for (auto& b : h.blocks) {
    b.offset_particles = get<std::uint64_t>(in);
    b.count = get<std::uint64_t>(in);
    b.sub_lo = get<Vec3>(in);
    b.sub_hi = get<Vec3>(in);
  }
  return h;
}

std::vector<Vec3> read_snapshot_block(const std::string& path,
                                      const SnapshotHeader& header,
                                      std::size_t block_index) {
  DTFE_CHECK(block_index < header.blocks.size());
  const SnapshotBlock& b = header.blocks[block_index];
  std::ifstream in(path, std::ios::binary);
  DTFE_CHECK_MSG(in.good(), "cannot open " << path);
  const std::streamoff header_bytes =
      static_cast<std::streamoff>(4 * sizeof(std::uint64_t) + sizeof(double) +
                                  header.blocks.size() *
                                      (2 * sizeof(std::uint64_t) + 6 * sizeof(double)));
  in.seekg(header_bytes + static_cast<std::streamoff>(b.offset_particles *
                                                      sizeof(Vec3)));
  std::vector<Vec3> out(b.count);
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(b.count * sizeof(Vec3)));
  DTFE_CHECK_MSG(in.good(), "unexpected end of snapshot file");
  return out;
}

ParticleSet read_snapshot(const std::string& path) {
  const SnapshotHeader h = read_snapshot_header(path);
  ParticleSet set;
  set.box_length = h.box_length;
  set.particle_mass = h.particle_mass;
  set.positions.reserve(h.n_particles);
  for (std::size_t b = 0; b < h.blocks.size(); ++b) {
    const auto block = read_snapshot_block(path, h, b);
    set.positions.insert(set.positions.end(), block.begin(), block.end());
  }
  return set;
}

}  // namespace dtfe
