#include "nbody/snapshot_io.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>

#include "util/error.h"

namespace dtfe {

namespace {

constexpr std::uint64_t kMagic = 0x44544645534e4150ull;  // "DTFESNAP"

template <typename T>
void put(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  DTFE_CHECK_MSG(in.good(), "unexpected end of snapshot file");
  return v;
}

}  // namespace

void write_snapshot(const std::string& path, const ParticleSet& set,
                    std::size_t blocks_per_dim) {
  DTFE_CHECK(blocks_per_dim >= 1);
  const std::size_t nb = blocks_per_dim * blocks_per_dim * blocks_per_dim;
  const double sub = set.box_length / static_cast<double>(blocks_per_dim);

  // Bucket particles by sub-volume (the "writing rank" layout).
  auto block_of = [&](const Vec3& p) {
    auto c = [&](double v) {
      auto i = static_cast<std::size_t>(v / sub);
      return std::min(i, blocks_per_dim - 1);
    };
    return (c(p.z) * blocks_per_dim + c(p.y)) * blocks_per_dim + c(p.x);
  };
  std::vector<std::vector<std::uint32_t>> buckets(nb);
  for (std::size_t i = 0; i < set.size(); ++i)
    buckets[block_of(set.positions[i])].push_back(
        static_cast<std::uint32_t>(i));

  std::ofstream out(path, std::ios::binary);
  DTFE_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  put(out, kMagic);
  put(out, set.box_length);
  put(out, set.particle_mass);
  put(out, static_cast<std::uint64_t>(set.size()));
  put(out, static_cast<std::uint64_t>(nb));

  std::uint64_t offset = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    const std::size_t bx = b % blocks_per_dim;
    const std::size_t by = (b / blocks_per_dim) % blocks_per_dim;
    const std::size_t bz = b / (blocks_per_dim * blocks_per_dim);
    put(out, offset);
    put(out, static_cast<std::uint64_t>(buckets[b].size()));
    put(out, Vec3{static_cast<double>(bx) * sub, static_cast<double>(by) * sub,
                  static_cast<double>(bz) * sub});
    put(out, Vec3{static_cast<double>(bx + 1) * sub,
                  static_cast<double>(by + 1) * sub,
                  static_cast<double>(bz + 1) * sub});
    offset += buckets[b].size();
  }
  for (std::size_t b = 0; b < nb; ++b)
    for (const std::uint32_t i : buckets[b]) put(out, set.positions[i]);
  DTFE_CHECK_MSG(out.good(), "short write to " << path);
}

namespace {

std::streamoff header_byte_size(std::size_t n_blocks) {
  return static_cast<std::streamoff>(
      4 * sizeof(std::uint64_t) + sizeof(double) +
      n_blocks * (2 * sizeof(std::uint64_t) + 6 * sizeof(double)));
}

bool finite3(const Vec3& p) {
  return std::isfinite(p.x) && std::isfinite(p.y) && std::isfinite(p.z);
}

}  // namespace

SnapshotHeader read_snapshot_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DTFE_CHECK_MSG(in.good(), "cannot open " << path);
  in.seekg(0, std::ios::end);
  const std::streamoff file_bytes = in.tellg();
  in.seekg(0, std::ios::beg);
  DTFE_CHECK_MSG(get<std::uint64_t>(in) == kMagic,
                 path << " is not a DTFE snapshot (bad magic)");
  SnapshotHeader h;
  h.box_length = get<double>(in);
  h.particle_mass = get<double>(in);
  h.n_particles = get<std::uint64_t>(in);
  const auto nb = get<std::uint64_t>(in);
  DTFE_CHECK_MSG(std::isfinite(h.box_length) && h.box_length > 0.0,
                 path << ": header box length " << h.box_length
                      << " is not usable");
  DTFE_CHECK_MSG(std::isfinite(h.particle_mass) && h.particle_mass >= 0.0,
                 path << ": header particle mass " << h.particle_mass
                      << " is not usable");
  // Implausible table sizes catch corrupt headers before resize() tries to
  // allocate by them.
  DTFE_CHECK_MSG(nb >= 1 && nb <= (1u << 24),
                 path << ": header block count " << nb << " is implausible");
  DTFE_CHECK_MSG(h.n_particles <= (1ull << 40),
                 path << ": header particle count " << h.n_particles
                      << " is implausible");
  const std::streamoff expected =
      header_byte_size(static_cast<std::size_t>(nb)) +
      static_cast<std::streamoff>(h.n_particles * sizeof(Vec3));
  DTFE_CHECK_MSG(file_bytes >= expected,
                 path << " is truncated: " << file_bytes << " bytes on disk, "
                      << expected << " required for "
                      << h.n_particles << " particles in " << nb << " blocks");
  h.blocks.resize(nb);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < h.blocks.size(); ++i) {
    SnapshotBlock& b = h.blocks[i];
    b.offset_particles = get<std::uint64_t>(in);
    b.count = get<std::uint64_t>(in);
    b.sub_lo = get<Vec3>(in);
    b.sub_hi = get<Vec3>(in);
    DTFE_CHECK_MSG(b.offset_particles == running,
                   path << ": block " << i << " offset "
                        << b.offset_particles << " breaks the contiguous "
                        << "layout (expected " << running << ")");
    DTFE_CHECK_MSG(b.count <= h.n_particles - running,
                   path << ": block " << i << " count " << b.count
                        << " overruns the " << h.n_particles
                        << " particles in the file");
    DTFE_CHECK_MSG(finite3(b.sub_lo) && finite3(b.sub_hi) &&
                       b.sub_lo.x <= b.sub_hi.x && b.sub_lo.y <= b.sub_hi.y &&
                       b.sub_lo.z <= b.sub_hi.z,
                   path << ": block " << i << " has a malformed sub-volume");
    running += b.count;
  }
  DTFE_CHECK_MSG(running == h.n_particles,
                 path << ": block counts sum to " << running << " but header "
                      << "promises " << h.n_particles << " particles");
  return h;
}

std::vector<Vec3> read_snapshot_block(const std::string& path,
                                      const SnapshotHeader& header,
                                      std::size_t block_index) {
  DTFE_CHECK_MSG(block_index < header.blocks.size(),
                 "block index " << block_index << " out of range for "
                                << header.blocks.size() << "-block snapshot "
                                << path);
  const SnapshotBlock& b = header.blocks[block_index];
  std::ifstream in(path, std::ios::binary);
  DTFE_CHECK_MSG(in.good(), "cannot open " << path);
  in.seekg(0, std::ios::end);
  const std::streamoff file_bytes = in.tellg();
  const std::streamoff begin =
      header_byte_size(header.blocks.size()) +
      static_cast<std::streamoff>(b.offset_particles * sizeof(Vec3));
  const std::streamoff need =
      begin + static_cast<std::streamoff>(b.count * sizeof(Vec3));
  DTFE_CHECK_MSG(file_bytes >= need,
                 path << " is truncated reading block " << block_index << ": "
                      << file_bytes << " bytes on disk, " << need
                      << " required for the block's " << b.count
                      << " particles");
  in.seekg(begin);
  std::vector<Vec3> out(b.count);
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(b.count * sizeof(Vec3)));
  DTFE_CHECK_MSG(in.good(), "unexpected end of snapshot file " << path
                                << " in block " << block_index);
  return out;
}

std::vector<Vec3> read_snapshot_cube(const std::string& path,
                                     const SnapshotHeader& header,
                                     const Vec3& center, double side) {
  const double box = header.box_length;
  const double h = 0.5 * side;
  // A block intersects the periodic cube iff some periodic image of its
  // sub-volume overlaps [center - h, center + h] per dimension.
  auto overlaps = [&](double lo, double hi, double c) {
    for (const double shift : {-box, 0.0, box})
      if (lo + shift < c + h && hi + shift > c - h) return true;
    return false;
  };
  std::vector<Vec3> out;
  for (std::size_t i = 0; i < header.blocks.size(); ++i) {
    const SnapshotBlock& b = header.blocks[i];
    if (b.count == 0) continue;
    if (!overlaps(b.sub_lo.x, b.sub_hi.x, center.x) ||
        !overlaps(b.sub_lo.y, b.sub_hi.y, center.y) ||
        !overlaps(b.sub_lo.z, b.sub_hi.z, center.z))
      continue;
    for (const Vec3& p : read_snapshot_block(path, header, i)) {
      const Vec3 d = min_image(p - center, box);
      if (std::abs(d.x) <= h && std::abs(d.y) <= h && std::abs(d.z) <= h)
        out.push_back(center + d);
    }
  }
  return out;
}

ParticleSet read_snapshot(const std::string& path) {
  const SnapshotHeader h = read_snapshot_header(path);
  ParticleSet set;
  set.box_length = h.box_length;
  set.particle_mass = h.particle_mass;
  set.positions.reserve(h.n_particles);
  for (std::size_t b = 0; b < h.blocks.size(); ++b) {
    const auto block = read_snapshot_block(path, h, b);
    set.positions.insert(set.positions.end(), block.begin(), block.end());
  }
  return set;
}

}  // namespace dtfe
