// Friends-of-friends halo finder (union-find over a linking-length grid).
//
// The paper's large-scale experiment centers 233k fields on "the most
// massive objects found by a density based clustering algorithm", and the
// galaxy-galaxy experiment places fields at model-assigned galaxy positions
// in the densest regions. FOF supplies both: group particles whose mutual
// distance is below b× the mean interparticle spacing, rank groups by mass.
#pragma once

#include <cstdint>
#include <vector>

#include "nbody/particles.h"

namespace dtfe {

struct FofOptions {
  /// Linking length in units of the mean interparticle spacing n^{-1/3}.
  double linking_parameter = 0.2;
  /// Groups below this size are discarded.
  std::size_t min_group_size = 8;
  bool periodic = true;
};

struct FofGroup {
  std::vector<std::uint32_t> members;  ///< particle indices
  Vec3 center;                         ///< center of mass (minimum image)
  std::size_t size() const { return members.size(); }
};

/// Returns groups sorted by descending size.
std::vector<FofGroup> find_fof_groups(const ParticleSet& set,
                                      const FofOptions& opt = {});

}  // namespace dtfe
