#include "nbody/field_statistics.h"

#include <cmath>

#include "util/error.h"
#include "util/fft.h"

namespace dtfe {

namespace {

double kmode(std::size_t i, std::size_t n, double dk) {
  auto ii = static_cast<std::ptrdiff_t>(i);
  if (ii >= static_cast<std::ptrdiff_t>(n / 2))
    ii -= static_cast<std::ptrdiff_t>(n);
  return dk * static_cast<double>(ii);
}

}  // namespace

std::vector<PowerSpectrumBin> measure_power_spectrum(const Grid3D& grid,
                                                     double box_length,
                                                     std::size_t bins) {
  const std::size_t n = grid.nx();
  DTFE_CHECK_MSG(grid.ny() == n && grid.nz() == n, "grid must be cubic");
  DTFE_CHECK_MSG((n & (n - 1)) == 0, "grid resolution must be a power of 2");
  if (bins == 0) bins = n / 2;

  // Density contrast.
  double mean = 0.0;
  for (std::size_t iz = 0; iz < n; ++iz)
    for (std::size_t iy = 0; iy < n; ++iy)
      for (std::size_t ix = 0; ix < n; ++ix) mean += grid.at(ix, iy, iz);
  mean /= static_cast<double>(n * n * n);
  DTFE_CHECK_MSG(mean > 0.0, "field must have positive mean");

  ComplexGrid3D delta(n);
  for (std::size_t iz = 0; iz < n; ++iz)
    for (std::size_t iy = 0; iy < n; ++iy)
      for (std::size_t ix = 0; ix < n; ++ix)
        delta.at(ix, iy, iz) = grid.at(ix, iy, iz) / mean - 1.0;
  delta.transform(/*inverse=*/false);

  const double dk = 2.0 * M_PI / box_length;
  const double k_ny = dk * static_cast<double>(n) / 2.0;
  // |δ_k|² · V / N_cells² is the standard volume-normalized estimator.
  const double norm = box_length * box_length * box_length /
                      std::pow(static_cast<double>(n * n * n), 2);

  std::vector<PowerSpectrumBin> out(bins);
  std::vector<double> ksum(bins, 0.0);
  for (std::size_t iz = 0; iz < n; ++iz)
    for (std::size_t iy = 0; iy < n; ++iy)
      for (std::size_t ix = 0; ix < n; ++ix) {
        if (ix == 0 && iy == 0 && iz == 0) continue;  // DC mode
        const double kx = kmode(ix, n, dk), ky = kmode(iy, n, dk),
                     kz = kmode(iz, n, dk);
        const double k = std::sqrt(kx * kx + ky * ky + kz * kz);
        if (k >= k_ny) continue;
        const auto b = static_cast<std::size_t>(k / k_ny *
                                                static_cast<double>(bins));
        if (b >= bins) continue;
        out[b].power += std::norm(delta.at(ix, iy, iz)) * norm;
        ksum[b] += k;
        ++out[b].modes;
      }
  for (std::size_t b = 0; b < bins; ++b) {
    if (out[b].modes == 0) continue;
    out[b].power /= static_cast<double>(out[b].modes);
    out[b].k = ksum[b] / static_cast<double>(out[b].modes);
  }
  return out;
}

std::vector<PowerSpectrumBin> measure_power_spectrum_2d(const Grid2D& grid,
                                                        double extent,
                                                        std::size_t bins) {
  const std::size_t n = grid.nx();
  DTFE_CHECK_MSG(grid.ny() == n, "grid must be square");
  DTFE_CHECK_MSG((n & (n - 1)) == 0, "grid resolution must be a power of 2");
  if (bins == 0) bins = n / 2;

  double mean = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) mean += grid.flat(i);
  mean /= static_cast<double>(grid.size());
  DTFE_CHECK_MSG(mean > 0.0, "field must have positive mean");

  // Row FFTs then column FFTs on a flat complex copy.
  std::vector<std::complex<double>> f(n * n);
  for (std::size_t iy = 0; iy < n; ++iy)
    for (std::size_t ix = 0; ix < n; ++ix)
      f[iy * n + ix] = grid.at(ix, iy) / mean - 1.0;
  for (std::size_t iy = 0; iy < n; ++iy)
    fft_1d(std::span(&f[iy * n], n), false);
  std::vector<std::complex<double>> col(n);
  for (std::size_t ix = 0; ix < n; ++ix) {
    for (std::size_t iy = 0; iy < n; ++iy) col[iy] = f[iy * n + ix];
    fft_1d(col, false);
    for (std::size_t iy = 0; iy < n; ++iy) f[iy * n + ix] = col[iy];
  }

  const double dk = 2.0 * M_PI / extent;
  const double k_ny = dk * static_cast<double>(n) / 2.0;
  const double norm =
      extent * extent / std::pow(static_cast<double>(n * n), 2);

  std::vector<PowerSpectrumBin> out(bins);
  std::vector<double> ksum(bins, 0.0);
  for (std::size_t iy = 0; iy < n; ++iy)
    for (std::size_t ix = 0; ix < n; ++ix) {
      if (ix == 0 && iy == 0) continue;
      const double kx = kmode(ix, n, dk), ky = kmode(iy, n, dk);
      const double k = std::sqrt(kx * kx + ky * ky);
      if (k >= k_ny) continue;
      const auto b =
          static_cast<std::size_t>(k / k_ny * static_cast<double>(bins));
      if (b >= bins) continue;
      out[b].power += std::norm(f[iy * n + ix]) * norm;
      ksum[b] += k;
      ++out[b].modes;
    }
  for (std::size_t b = 0; b < bins; ++b) {
    if (out[b].modes == 0) continue;
    out[b].power /= static_cast<double>(out[b].modes);
    out[b].k = ksum[b] / static_cast<double>(out[b].modes);
  }
  return out;
}

}  // namespace dtfe
