// Particle containers and periodic-box helpers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geometry/vec3.h"

namespace dtfe {

/// A snapshot of equal-mass tracer particles in a periodic cubic box
/// [0, box_length)^3 — the shape of the HACC/Gadget datasets the paper
/// consumes.
struct ParticleSet {
  std::vector<Vec3> positions;
  double box_length = 1.0;
  double particle_mass = 1.0;

  std::size_t size() const { return positions.size(); }
  double total_mass() const {
    return particle_mass * static_cast<double>(positions.size());
  }
};

/// Wrap x into [0, box).
inline double wrap_periodic(double x, double box) {
  x -= box * static_cast<double>(static_cast<long long>(x / box));
  if (x < 0.0) x += box;
  if (x >= box) x -= box;  // guards the x == box rounding case
  return x;
}

inline Vec3 wrap_periodic(const Vec3& p, double box) {
  return {wrap_periodic(p.x, box), wrap_periodic(p.y, box),
          wrap_periodic(p.z, box)};
}

/// Minimum-image displacement a−b in a periodic box.
inline double min_image(double d, double box) {
  if (d > 0.5 * box) d -= box;
  if (d < -0.5 * box) d += box;
  return d;
}

inline Vec3 min_image(const Vec3& d, double box) {
  return {min_image(d.x, box), min_image(d.y, box), min_image(d.z, box)};
}

/// Squared minimum-image distance.
inline double periodic_dist2(const Vec3& a, const Vec3& b, double box) {
  return min_image(a - b, box).norm2();
}

/// Collect all particles within the axis-aligned cube centered at `center`
/// with side `side`, unwrapped into the cube's frame (periodic images are
/// translated next to the center) — this is how a field sub-volume plus its
/// ghost shell is extracted from the global box.
std::vector<Vec3> extract_cube(const ParticleSet& set, const Vec3& center,
                               double side);

/// What to do with particles whose position is non-finite or outside
/// [0, box)^3 (real snapshots contain both: sensor glitches, unwrapped
/// coordinates from the writing code, flipped bits on disk).
enum class BadParticlePolicy {
  kReject,  ///< throw dtfe::Error naming the counts (default: fail loudly)
  kDrop,    ///< remove offending particles
  kClamp,   ///< wrap out-of-box positions into the box; drop non-finite ones
};

struct SanitizeCounts {
  std::size_t non_finite = 0;   ///< NaN/Inf coordinate (always unusable)
  std::size_t out_of_box = 0;   ///< finite but outside [0, box)^3
  std::size_t dropped = 0;      ///< removed from the array
  std::size_t clamped = 0;      ///< wrapped back into the box
  std::size_t bad() const { return non_finite + out_of_box; }
};

/// Validate and repair `positions` in place under `policy`. Returns the
/// tallies; throws dtfe::Error (after scanning everything, so the message
/// carries full counts) when policy is kReject and any particle is bad.
SanitizeCounts sanitize_positions(std::vector<Vec3>& positions, double box,
                                  BadParticlePolicy policy);

/// All positions plus the periodic images within `pad` outside the box on
/// every side: build a Reconstructor on this to render full-box fields
/// without convex-hull boundary artifacts (the hull then encloses the whole
/// box with correctly replicated neighbors). pad must be < box/2.
std::vector<Vec3> with_periodic_pad(const ParticleSet& set, double pad);

}  // namespace dtfe
