// Binary snapshot I/O in a HACC-like blocked layout.
//
// The paper's partition phase reads simulation output where "on disk the
// data block written by a process represents a contiguous sub-volume" and
// performs a parallel read with arbitrary block assignment. This format
// mirrors that: a header, a block table (one block per writing rank,
// spatially contiguous), then packed xyz doubles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nbody/particles.h"

namespace dtfe {

struct SnapshotBlock {
  std::uint64_t offset_particles = 0;  ///< first particle index
  std::uint64_t count = 0;
  Vec3 sub_lo, sub_hi;  ///< sub-volume this block covers
};

struct SnapshotHeader {
  double box_length = 0.0;
  double particle_mass = 0.0;
  std::uint64_t n_particles = 0;
  std::vector<SnapshotBlock> blocks;
};

/// Write `set` split into blocks^3 spatially contiguous sub-volume blocks
/// (each block holds the particles of one uniform sub-volume, like the
/// per-rank output of a volume-decomposed N-body code).
void write_snapshot(const std::string& path, const ParticleSet& set,
                    std::size_t blocks_per_dim);

/// Read only the header + block table. Rejects malformed files with a
/// descriptive dtfe::Error: bad magic, non-finite box/mass, block table
/// inconsistent with the particle count, or a file too short to hold the
/// particles the header promises (truncation).
SnapshotHeader read_snapshot_header(const std::string& path);

/// Read one block's particles (the parallel-read unit).
std::vector<Vec3> read_snapshot_block(const std::string& path,
                                      const SnapshotHeader& header,
                                      std::size_t block_index);

/// Read the whole snapshot.
ParticleSet read_snapshot(const std::string& path);

/// Read every particle within the axis-aligned cube of side `side` centered
/// on `center` (periodic), touching only the blocks whose sub-volumes
/// intersect the cube. Positions come back unwrapped into the cube's frame,
/// like extract_cube. This is the recovery path's targeted re-read: when a
/// rank dies mid-run, a survivor can refetch just the data for the lost
/// field items from durable storage instead of needing the dead rank's
/// memory.
std::vector<Vec3> read_snapshot_cube(const std::string& path,
                                     const SnapshotHeader& header,
                                     const Vec3& center, double side);

}  // namespace dtfe
