#include "nbody/grid_assign.h"

#include <cmath>

#include "util/error.h"

namespace dtfe {

namespace {

// One-dimensional assignment weights for a particle at fractional cell
// coordinate x (in units of the cell size): fills `cells[k]`/`weights[k]`
// for up to 3 cells and returns the count.
int weights_1d(AssignmentScheme scheme, double x_cells, std::ptrdiff_t n,
               std::ptrdiff_t cells[3], double weights[3]) {
  auto wrap = [n](std::ptrdiff_t c) { return ((c % n) + n) % n; };
  switch (scheme) {
    case AssignmentScheme::kNgp: {
      cells[0] = wrap(static_cast<std::ptrdiff_t>(std::floor(x_cells)));
      weights[0] = 1.0;
      return 1;
    }
    case AssignmentScheme::kCic: {
      // Cloud center relative to cell centers at k+0.5.
      const double s = x_cells - 0.5;
      const auto base = static_cast<std::ptrdiff_t>(std::floor(s));
      const double frac = s - static_cast<double>(base);
      cells[0] = wrap(base);
      cells[1] = wrap(base + 1);
      weights[0] = 1.0 - frac;
      weights[1] = frac;
      return 2;
    }
    case AssignmentScheme::kTsc: {
      const double s = x_cells - 0.5;
      const auto mid = static_cast<std::ptrdiff_t>(std::floor(s + 0.5));
      const double d = s - static_cast<double>(mid);  // in [-0.5, 0.5)
      cells[0] = wrap(mid - 1);
      cells[1] = wrap(mid);
      cells[2] = wrap(mid + 1);
      weights[0] = 0.5 * (0.5 - d) * (0.5 - d);
      weights[1] = 0.75 - d * d;
      weights[2] = 0.5 * (0.5 + d) * (0.5 + d);
      return 3;
    }
  }
  return 0;
}

}  // namespace

Grid3D assign_density_3d(const ParticleSet& set, std::size_t cells_per_dim,
                         AssignmentScheme scheme) {
  DTFE_CHECK(cells_per_dim >= 1);
  const auto n = static_cast<std::ptrdiff_t>(cells_per_dim);
  const double inv_cell =
      static_cast<double>(cells_per_dim) / set.box_length;
  Grid3D grid(cells_per_dim, cells_per_dim, cells_per_dim);

  std::ptrdiff_t cx[3], cy[3], cz[3];
  double wx[3], wy[3], wz[3];
  for (const Vec3& p : set.positions) {
    const Vec3 w = wrap_periodic(p, set.box_length);
    const int kx = weights_1d(scheme, w.x * inv_cell, n, cx, wx);
    const int ky = weights_1d(scheme, w.y * inv_cell, n, cy, wy);
    const int kz = weights_1d(scheme, w.z * inv_cell, n, cz, wz);
    for (int a = 0; a < kx; ++a)
      for (int b = 0; b < ky; ++b)
        for (int c = 0; c < kz; ++c)
          grid.at(static_cast<std::size_t>(cx[a]),
                  static_cast<std::size_t>(cy[b]),
                  static_cast<std::size_t>(cz[c])) +=
              set.particle_mass * wx[a] * wy[b] * wz[c];
  }

  const double cell = set.box_length / static_cast<double>(cells_per_dim);
  const double inv_vol = 1.0 / (cell * cell * cell);
  Grid3D out = std::move(grid);
  for (std::size_t iz = 0; iz < cells_per_dim; ++iz)
    for (std::size_t iy = 0; iy < cells_per_dim; ++iy)
      for (std::size_t ix = 0; ix < cells_per_dim; ++ix)
        out.at(ix, iy, iz) *= inv_vol;
  return out;
}

Grid2D assign_surface_density(const ParticleSet& set,
                              std::size_t cells_per_dim,
                              AssignmentScheme scheme) {
  DTFE_CHECK(cells_per_dim >= 1);
  const auto n = static_cast<std::ptrdiff_t>(cells_per_dim);
  const double inv_cell =
      static_cast<double>(cells_per_dim) / set.box_length;
  Grid2D grid(cells_per_dim, cells_per_dim);

  std::ptrdiff_t cx[3], cy[3];
  double wx[3], wy[3];
  for (const Vec3& p : set.positions) {
    const Vec3 w = wrap_periodic(p, set.box_length);
    const int kx = weights_1d(scheme, w.x * inv_cell, n, cx, wx);
    const int ky = weights_1d(scheme, w.y * inv_cell, n, cy, wy);
    for (int a = 0; a < kx; ++a)
      for (int b = 0; b < ky; ++b)
        grid.at(static_cast<std::size_t>(cx[a]),
                static_cast<std::size_t>(cy[b])) +=
            set.particle_mass * wx[a] * wy[b];
  }

  const double cell = set.box_length / static_cast<double>(cells_per_dim);
  for (double& v : grid.values()) v /= cell * cell;
  return grid;
}

}  // namespace dtfe
