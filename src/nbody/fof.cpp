#include "nbody/fof.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"

namespace dtfe {

namespace {

/// Union-find with path halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::uint32_t{0});
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

std::vector<FofGroup> find_fof_groups(const ParticleSet& set,
                                      const FofOptions& opt) {
  const std::size_t n = set.size();
  if (n == 0) return {};
  const double box = set.box_length;
  const double mean_spacing = box / std::cbrt(static_cast<double>(n));
  const double link = opt.linking_parameter * mean_spacing;
  const double link2 = link * link;

  // Hash particles into cells of the linking length; only same-cell and
  // forward-neighbor cells need pair checks.
  auto cells_per_dim = static_cast<std::size_t>(box / link);
  cells_per_dim = std::clamp<std::size_t>(cells_per_dim, 1, 512);
  const double inv_cell = static_cast<double>(cells_per_dim) / box;
  const std::size_t ncells = cells_per_dim * cells_per_dim * cells_per_dim;

  auto cell_of = [&](const Vec3& p) {
    auto c = [&](double v) {
      auto i = static_cast<std::ptrdiff_t>(v * inv_cell);
      return static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
          i, 0, static_cast<std::ptrdiff_t>(cells_per_dim) - 1));
    };
    return (c(p.z) * cells_per_dim + c(p.y)) * cells_per_dim + c(p.x);
  };

  std::vector<std::uint32_t> cell_start(ncells + 1, 0);
  std::vector<std::uint32_t> order(n);
  {
    std::vector<std::uint32_t> counts(ncells, 0);
    for (const Vec3& p : set.positions) ++counts[cell_of(p)];
    for (std::size_t c = 0; c < ncells; ++c)
      cell_start[c + 1] = cell_start[c] + counts[c];
    std::vector<std::uint32_t> cursor(cell_start.begin(), cell_start.end() - 1);
    for (std::size_t i = 0; i < n; ++i)
      order[cursor[cell_of(set.positions[i])]++] =
          static_cast<std::uint32_t>(i);
  }

  UnionFind uf(n);
  auto d2 = [&](std::uint32_t a, std::uint32_t b) {
    return opt.periodic
               ? periodic_dist2(set.positions[a], set.positions[b], box)
               : (set.positions[a] - set.positions[b]).norm2();
  };

  const auto cpd = static_cast<std::ptrdiff_t>(cells_per_dim);
  for (std::ptrdiff_t cz = 0; cz < cpd; ++cz)
    for (std::ptrdiff_t cy = 0; cy < cpd; ++cy)
      for (std::ptrdiff_t cx = 0; cx < cpd; ++cx) {
        const std::size_t c =
            (static_cast<std::size_t>(cz) * cells_per_dim +
             static_cast<std::size_t>(cy)) * cells_per_dim +
            static_cast<std::size_t>(cx);
        // Half the 26-neighborhood (plus self) to visit each pair once.
        static constexpr int off[14][3] = {
            {0, 0, 0},  {1, 0, 0},  {-1, 1, 0}, {0, 1, 0},  {1, 1, 0},
            {-1, -1, 1}, {0, -1, 1}, {1, -1, 1}, {-1, 0, 1}, {0, 0, 1},
            {1, 0, 1},  {-1, 1, 1}, {0, 1, 1},  {1, 1, 1}};
        for (const auto& o : off) {
          std::ptrdiff_t nx = cx + o[0], ny = cy + o[1], nz = cz + o[2];
          if (opt.periodic) {
            nx = (nx + cpd) % cpd;
            ny = (ny + cpd) % cpd;
            nz = (nz + cpd) % cpd;
          } else if (nx < 0 || ny < 0 || nz < 0 || nx >= cpd || ny >= cpd ||
                     nz >= cpd) {
            continue;
          }
          const std::size_t nc =
              (static_cast<std::size_t>(nz) * cells_per_dim +
               static_cast<std::size_t>(ny)) * cells_per_dim +
              static_cast<std::size_t>(nx);
          const bool same = nc == c;
          for (std::uint32_t i = cell_start[c]; i < cell_start[c + 1]; ++i)
            for (std::uint32_t j = same ? i + 1 : cell_start[nc];
                 j < cell_start[nc + 1]; ++j) {
              const std::uint32_t a = order[i], b = order[j];
              if (d2(a, b) <= link2) uf.unite(a, b);
            }
        }
      }

  // Gather groups.
  std::vector<std::vector<std::uint32_t>> members_by_root;
  std::vector<std::int32_t> root_slot(n, -1);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t r = uf.find(i);
    if (root_slot[r] < 0) {
      root_slot[r] = static_cast<std::int32_t>(members_by_root.size());
      members_by_root.emplace_back();
    }
    members_by_root[static_cast<std::size_t>(root_slot[r])].push_back(i);
  }

  std::vector<FofGroup> groups;
  for (auto& m : members_by_root) {
    if (m.size() < opt.min_group_size) continue;
    FofGroup g;
    g.members = std::move(m);
    // Center of mass with minimum-image unwrapping around the first member.
    const Vec3 ref = set.positions[g.members.front()];
    Vec3 acc{0, 0, 0};
    for (const std::uint32_t i : g.members)
      acc += opt.periodic ? min_image(set.positions[i] - ref, box)
                          : (set.positions[i] - ref);
    g.center = ref + acc / static_cast<double>(g.members.size());
    if (opt.periodic) g.center = wrap_periodic(g.center, box);
    groups.push_back(std::move(g));
  }
  std::sort(groups.begin(), groups.end(),
            [](const FofGroup& a, const FofGroup& b) {
              return a.size() > b.size();
            });
  return groups;
}

}  // namespace dtfe
