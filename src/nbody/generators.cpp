#include "nbody/generators.h"

#include <cmath>

#include "util/error.h"
#include "util/fft.h"
#include "util/rng.h"

namespace dtfe {

ParticleSet generate_uniform(std::size_t n, double box_length,
                             std::uint64_t seed) {
  Rng rng(seed);
  ParticleSet set;
  set.box_length = box_length;
  set.positions.resize(n);
  for (auto& p : set.positions)
    p = {rng.uniform(0.0, box_length), rng.uniform(0.0, box_length),
         rng.uniform(0.0, box_length)};
  return set;
}

ParticleSet generate_lattice(std::size_t per_dim, double box_length,
                             double jitter_fraction, std::uint64_t seed) {
  Rng rng(seed);
  ParticleSet set;
  set.box_length = box_length;
  const double spacing = box_length / static_cast<double>(per_dim);
  const double j = jitter_fraction * spacing;
  set.positions.reserve(per_dim * per_dim * per_dim);
  for (std::size_t z = 0; z < per_dim; ++z)
    for (std::size_t y = 0; y < per_dim; ++y)
      for (std::size_t x = 0; x < per_dim; ++x) {
        Vec3 p{(static_cast<double>(x) + 0.5) * spacing,
               (static_cast<double>(y) + 0.5) * spacing,
               (static_cast<double>(z) + 0.5) * spacing};
        if (j > 0.0)
          p += {j * (rng.uniform() - 0.5), j * (rng.uniform() - 0.5),
                j * (rng.uniform() - 0.5)};
        set.positions.push_back(wrap_periodic(p, box_length));
      }
  return set;
}

ParticleSet generate_zeldovich(const ZeldovichOptions& opt) {
  const std::size_t n = opt.grid;
  DTFE_CHECK_MSG(n >= 4 && (n & (n - 1)) == 0,
                 "Zel'dovich grid must be a power of 2 (FFT)");
  const double L = opt.box_length;
  const double dk = 2.0 * M_PI / L;

  // White noise in real space → Fourier transform → shape by sqrt(P(k)).
  // Going through real space guarantees the Hermitian symmetry that makes
  // the displacement fields real.
  ComplexGrid3D delta(n);
  {
    Rng rng(opt.seed);
    const double norm =
        std::pow(static_cast<double>(n), 1.5) / std::pow(L, 1.5);
    for (auto& c : delta.flat()) c = {rng.normal() * norm, 0.0};
  }
  delta.transform(/*inverse=*/false);

  auto k_of = [&](std::size_t i) {
    const auto half = static_cast<std::ptrdiff_t>(n / 2);
    auto ii = static_cast<std::ptrdiff_t>(i);
    if (ii >= half) ii -= static_cast<std::ptrdiff_t>(n);
    return dk * static_cast<double>(ii);
  };

  // ψ(k) = i k / k² · δ(k): three displacement component grids.
  ComplexGrid3D psi[3] = {ComplexGrid3D(n), ComplexGrid3D(n),
                          ComplexGrid3D(n)};
  for (std::size_t iz = 0; iz < n; ++iz)
    for (std::size_t iy = 0; iy < n; ++iy)
      for (std::size_t ix = 0; ix < n; ++ix) {
        const double kx = k_of(ix), ky = k_of(iy), kz = k_of(iz);
        const double k2 = kx * kx + ky * ky + kz * kz;
        if (k2 == 0.0) continue;
        const double k = std::sqrt(k2);
        const double amp = std::sqrt(opt.spectrum(k));
        const std::complex<double> d = delta.at(ix, iy, iz) * amp;
        const std::complex<double> i_over_k2(0.0, 1.0 / k2);
        psi[0].at(ix, iy, iz) = i_over_k2 * kx * d;
        psi[1].at(ix, iy, iz) = i_over_k2 * ky * d;
        psi[2].at(ix, iy, iz) = i_over_k2 * kz * d;
      }
  for (auto& g : psi) g.transform(/*inverse=*/true);

  ParticleSet set;
  set.box_length = L;
  set.positions.reserve(n * n * n);
  const double spacing = L / static_cast<double>(n);

  // Normalize: rescale the displacement field to the requested RMS (in mean
  // interparticle spacings), then apply the growth factor.
  double ms = 0.0;
  for (std::size_t i = 0; i < n * n * n; ++i) {
    const Vec3 d{psi[0].flat()[i].real(), psi[1].flat()[i].real(),
                 psi[2].flat()[i].real()};
    ms += d.norm2();
  }
  ms /= static_cast<double>(n * n * n);
  const double scale =
      ms > 0.0 ? opt.rms_displacement * spacing / std::sqrt(ms) : 0.0;
  for (std::size_t iz = 0; iz < n; ++iz)
    for (std::size_t iy = 0; iy < n; ++iy)
      for (std::size_t ix = 0; ix < n; ++ix) {
        const Vec3 q{(static_cast<double>(ix) + 0.5) * spacing,
                     (static_cast<double>(iy) + 0.5) * spacing,
                     (static_cast<double>(iz) + 0.5) * spacing};
        const Vec3 disp{psi[0].at(ix, iy, iz).real(),
                        psi[1].at(ix, iy, iz).real(),
                        psi[2].at(ix, iy, iz).real()};
        set.positions.push_back(
            wrap_periodic(q + disp * (scale * opt.growth), L));
      }
  return set;
}

namespace {

/// Inverse of the NFW cumulative mass profile m(x) = ln(1+x) − x/(1+x) by
/// bisection on x ∈ [0, c].
double nfw_inverse_cdf(double u, double c) {
  const double total = std::log(1.0 + c) - c / (1.0 + c);
  const double target = u * total;
  double lo = 0.0, hi = c;
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double m = std::log(1.0 + mid) - mid / (1.0 + mid);
    (m < target ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace

ParticleSet generate_halo_model(const HaloModelOptions& opt) {
  Rng rng(opt.seed);
  ParticleSet set;
  set.box_length = opt.box_length;
  set.positions.reserve(opt.n_particles);

  const auto n_bg = static_cast<std::size_t>(
      opt.background_fraction * static_cast<double>(opt.n_particles));
  const std::size_t n_halo_particles = opt.n_particles - n_bg;

  // Power-law halo masses (relative units): inverse-CDF sampling of
  // P(M) ∝ M^-slope on [mmin, 1].
  std::vector<double> halo_mass(opt.n_halos);
  double mass_sum = 0.0;
  for (auto& m : halo_mass) {
    const double u = rng.uniform();
    const double a = 1.0 - opt.mass_slope;
    const double mmin = opt.mass_min_fraction;
    if (std::abs(a) < 1e-12) {
      m = mmin * std::pow(1.0 / mmin, u);
    } else {
      const double lo = std::pow(mmin, a);
      m = std::pow(lo + u * (1.0 - lo), 1.0 / a);
    }
    mass_sum += m;
  }

  for (std::size_t h = 0; h < opt.n_halos; ++h) {
    const Vec3 center{rng.uniform(0.0, opt.box_length),
                      rng.uniform(0.0, opt.box_length),
                      rng.uniform(0.0, opt.box_length)};
    const double mfrac = halo_mass[h] / mass_sum;
    auto count = static_cast<std::size_t>(
        mfrac * static_cast<double>(n_halo_particles) + 0.5);
    // Virial-like radius R ∝ M^{1/3}; concentration c ∝ M^{-0.1}.
    const double radius =
        opt.radius_fraction * opt.box_length * std::cbrt(halo_mass[h]);
    const double conc = opt.concentration * std::pow(halo_mass[h], -0.1);
    const double rs = radius / conc;
    for (std::size_t i = 0; i < count && set.positions.size() < opt.n_particles;
         ++i) {
      const double x = nfw_inverse_cdf(rng.uniform(), conc);
      const double r = x * rs;
      // isotropic direction
      const double cos_t = rng.uniform(-1.0, 1.0);
      const double sin_t = std::sqrt(std::max(0.0, 1.0 - cos_t * cos_t));
      const double phi = rng.uniform(0.0, 2.0 * M_PI);
      const Vec3 dir{sin_t * std::cos(phi), sin_t * std::sin(phi), cos_t};
      set.positions.push_back(wrap_periodic(center + dir * r, opt.box_length));
    }
  }

  while (set.positions.size() < opt.n_particles)
    set.positions.push_back({rng.uniform(0.0, opt.box_length),
                             rng.uniform(0.0, opt.box_length),
                             rng.uniform(0.0, opt.box_length)});
  return set;
}

}  // namespace dtfe
