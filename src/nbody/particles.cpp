#include "nbody/particles.h"

#include <cmath>

#include "util/error.h"

namespace dtfe {

namespace {
bool finite3(const Vec3& p) {
  return std::isfinite(p.x) && std::isfinite(p.y) && std::isfinite(p.z);
}
bool in_box(const Vec3& p, double box) {
  return p.x >= 0.0 && p.x < box && p.y >= 0.0 && p.y < box && p.z >= 0.0 &&
         p.z < box;
}
}  // namespace

SanitizeCounts sanitize_positions(std::vector<Vec3>& positions, double box,
                                  BadParticlePolicy policy) {
  DTFE_CHECK_MSG(std::isfinite(box) && box > 0.0,
                 "sanitize_positions: box length " << box << " is not usable");
  SanitizeCounts counts;
  std::size_t w = 0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    Vec3 p = positions[i];
    const bool finite = finite3(p);
    const bool inside = finite && in_box(p, box);
    if (!finite) ++counts.non_finite;
    else if (!inside) ++counts.out_of_box;
    switch (policy) {
      case BadParticlePolicy::kReject:
        positions[w++] = p;  // keep scanning; throw with full counts below
        break;
      case BadParticlePolicy::kDrop:
        if (finite && inside) positions[w++] = p;
        else ++counts.dropped;
        break;
      case BadParticlePolicy::kClamp:
        if (!finite) {
          ++counts.dropped;  // nothing sane to clamp a NaN to
        } else {
          if (!inside) {
            p = wrap_periodic(p, box);
            ++counts.clamped;
          }
          positions[w++] = p;
        }
        break;
    }
  }
  positions.resize(w);
  if (policy == BadParticlePolicy::kReject && counts.bad() > 0) {
    std::ostringstream os;
    os << "input contains " << counts.non_finite
       << " non-finite and " << counts.out_of_box
       << " out-of-box particle positions (box " << box
       << "); rerun with --bad-particles=drop or clamp to continue";
    throw Error(os.str());
  }
  return counts;
}

std::vector<Vec3> extract_cube(const ParticleSet& set, const Vec3& center,
                               double side) {
  std::vector<Vec3> out;
  const double h = 0.5 * side;
  const double box = set.box_length;
  for (const Vec3& p : set.positions) {
    const Vec3 d = min_image(p - center, box);
    if (std::abs(d.x) <= h && std::abs(d.y) <= h && std::abs(d.z) <= h)
      out.push_back(center + d);
  }
  return out;
}

std::vector<Vec3> with_periodic_pad(const ParticleSet& set, double pad) {
  const double box = set.box_length;
  std::vector<Vec3> out;
  out.reserve(set.size() + set.size() / 4);
  for (const Vec3& p : set.positions)
    for (const double sx : {-box, 0.0, box})
      for (const double sy : {-box, 0.0, box})
        for (const double sz : {-box, 0.0, box}) {
          const Vec3 q{p.x + sx, p.y + sy, p.z + sz};
          if (q.x < -pad || q.x > box + pad || q.y < -pad ||
              q.y > box + pad || q.z < -pad || q.z > box + pad)
            continue;
          out.push_back(q);
        }
  return out;
}

}  // namespace dtfe
