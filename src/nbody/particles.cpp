#include "nbody/particles.h"

#include <cmath>

namespace dtfe {

std::vector<Vec3> extract_cube(const ParticleSet& set, const Vec3& center,
                               double side) {
  std::vector<Vec3> out;
  const double h = 0.5 * side;
  const double box = set.box_length;
  for (const Vec3& p : set.positions) {
    const Vec3 d = min_image(p - center, box);
    if (std::abs(d.x) <= h && std::abs(d.y) <= h && std::abs(d.z) <= h)
      out.push_back(center + d);
  }
  return out;
}

std::vector<Vec3> with_periodic_pad(const ParticleSet& set, double pad) {
  const double box = set.box_length;
  std::vector<Vec3> out;
  out.reserve(set.size() + set.size() / 4);
  for (const Vec3& p : set.positions)
    for (const double sx : {-box, 0.0, box})
      for (const double sy : {-box, 0.0, box})
        for (const double sz : {-box, 0.0, box}) {
          const Vec3 q{p.x + sx, p.y + sy, p.z + sz};
          if (q.x < -pad || q.x > box + pad || q.y < -pad ||
              q.y > box + pad || q.z < -pad || q.z > box + pad)
            continue;
          out.push_back(q);
        }
  return out;
}

}  // namespace dtfe
