// Synthetic N-body snapshot generators.
//
// The paper's experiments run on HACC simulations (Planck 1024³, MiraU
// 3200³) and a Gadget demo snapshot — none of which are available here. The
// generators below produce particle distributions with the same statistical
// features the paper's experiments depend on: large-scale Gaussian structure
// (cosmic web via the Zel'dovich approximation), strong small-scale
// clustering (NFW halos, the source of the load imbalance the paper
// addresses), and controllable particle counts.
#pragma once

#include <cstdint>
#include <vector>

#include "nbody/particles.h"
#include "nbody/power_spectrum.h"

namespace dtfe {

/// Uniform random (Poisson) particles — the homogeneous control case.
ParticleSet generate_uniform(std::size_t n, double box_length,
                             std::uint64_t seed);

/// Regular lattice with optional jitter — degenerate-input stress data.
ParticleSet generate_lattice(std::size_t per_dim, double box_length,
                             double jitter_fraction, std::uint64_t seed);

struct ZeldovichOptions {
  std::size_t grid = 64;          ///< particles per dimension (also FFT grid)
  double box_length = 100.0;
  PowerSpectrum spectrum;
  /// Displacement growth factor; larger values push past shell crossing and
  /// deepen the clustering (late-time snapshots).
  double growth = 1.0;
  /// RMS displacement in units of the mean interparticle spacing before the
  /// growth factor is applied; the generated field is rescaled to this
  /// (fixing the overall normalization the way cosmologists fix σ8). Values
  /// around 1–2 with growth 1 give a well-developed cosmic web.
  double rms_displacement = 1.0;
  std::uint64_t seed = 1;
};

/// Zel'dovich approximation: displace a particle lattice by the gradient of
/// the gravitational potential of a Gaussian random field with the given
/// power spectrum (computed with the library's own 3D FFT). First-order
/// Lagrangian perturbation theory — the standard cheap cosmic-web generator.
ParticleSet generate_zeldovich(const ZeldovichOptions& opt);

struct HaloModelOptions {
  std::size_t n_particles = 100000;
  double box_length = 100.0;
  std::size_t n_halos = 64;
  /// Halo mass function slope: P(M) ∝ M^-alpha on [mass_min_fraction, 1].
  double mass_slope = 1.9;
  double mass_min_fraction = 0.01;
  /// NFW concentration at the maximum halo mass; smaller halos are more
  /// concentrated via c ∝ M^-0.1.
  double concentration = 8.0;
  /// Halo radius as a fraction of the box for the most massive halo.
  double radius_fraction = 0.05;
  /// Fraction of particles in the smooth uniform background.
  double background_fraction = 0.2;
  std::uint64_t seed = 2;
};

/// Halo model: NFW-profile halos with a power-law mass function plus a
/// uniform background. Produces the highly clustered distributions that
/// drive the paper's load-imbalance experiments (galaxy-galaxy lensing
/// fields sit exactly on such concentrations).
ParticleSet generate_halo_model(const HaloModelOptions& opt);

}  // namespace dtfe
