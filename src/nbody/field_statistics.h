// Fourier-space statistics of gridded fields.
//
// Measuring the power spectrum of a reconstructed density grid is the
// canonical downstream use of gridded fields ("the gridded field
// representation ... is often preferred for ... applying certain
// mathematical operations, e.g., the Fourier transform" — paper §I). Also
// used to validate the Zel'dovich generator against its input spectrum.
#pragma once

#include <vector>

#include "dtfe/field.h"

namespace dtfe {

struct PowerSpectrumBin {
  double k = 0.0;       ///< mean wavenumber of the bin
  double power = 0.0;   ///< volume-normalized P(k)
  std::size_t modes = 0;
};

/// Spherically averaged power spectrum of the DENSITY CONTRAST
/// δ = ρ/⟨ρ⟩ − 1 of a 3D grid over a periodic box of physical size
/// `box_length`. The grid resolution must be a power of two (FFT).
std::vector<PowerSpectrumBin> measure_power_spectrum(const Grid3D& grid,
                                                     double box_length,
                                                     std::size_t bins = 0);

/// Azimuthally averaged 2D power spectrum of a surface density grid
/// (square, power-of-two resolution).
std::vector<PowerSpectrumBin> measure_power_spectrum_2d(const Grid2D& grid,
                                                        double extent,
                                                        std::size_t bins = 0);

}  // namespace dtfe
