// Classic grid mass-assignment schemes: NGP, CIC, TSC.
//
// These are the standard fixed-kernel density estimators the DTFE literature
// (and the DTFE public software) compares against: cheap, but with
// resolution tied to the grid spacing and shot noise the adaptive
// tessellation estimators avoid. Included both as baselines for the noise
// benchmarks and as generally useful utilities (the surface-density variant
// projects the 3D assignment along z).
#pragma once

#include "dtfe/field.h"
#include "nbody/particles.h"

namespace dtfe {

enum class AssignmentScheme {
  kNgp,  ///< nearest grid point (order 0)
  kCic,  ///< cloud in cell (order 1)
  kTsc,  ///< triangular shaped cloud (order 2)
};

/// 3D density grid over the (periodic) box: mass deposited per cell divided
/// by the cell volume.
Grid3D assign_density_3d(const ParticleSet& set, std::size_t cells_per_dim,
                         AssignmentScheme scheme);

/// Surface density on an Ng×Ng grid covering the full box cross-section:
/// the z-projection of the 3D assignment (Σ = column mass / cell area).
Grid2D assign_surface_density(const ParticleSet& set, std::size_t cells_per_dim,
                              AssignmentScheme scheme);

}  // namespace dtfe
