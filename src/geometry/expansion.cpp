#include "geometry/expansion.h"

#include <cstdlib>

namespace dtfe {

// Shewchuk's FAST_EXPANSION_SUM_ZEROELIM: merge two expansions by magnitude,
// then a running error-free accumulation.
Expansion Expansion::operator+(const Expansion& other) const {
  const auto& e = c_;
  const auto& f = other.c_;
  if (e.empty()) return other;
  if (f.empty()) return *this;

  Expansion out;
  auto& h = out.c_;
  h.reserve(e.size() + f.size());

  std::size_t eindex = 0, findex = 0;
  double enow = e[0], fnow = f[0];
  double q;
  // (fnow > enow) == (fnow > -enow) test from Shewchuk merges by magnitude.
  if ((fnow > enow) == (fnow > -enow)) {
    q = enow;
    if (++eindex < e.size()) enow = e[eindex];
  } else {
    q = fnow;
    if (++findex < f.size()) fnow = f[findex];
  }
  double qnew, hh;
  if (eindex < e.size() && findex < f.size()) {
    if ((fnow > enow) == (fnow > -enow)) {
      fast_two_sum(enow, q, qnew, hh);
      if (++eindex < e.size()) enow = e[eindex];
    } else {
      fast_two_sum(fnow, q, qnew, hh);
      if (++findex < f.size()) fnow = f[findex];
    }
    q = qnew;
    if (hh != 0.0) h.push_back(hh);
    while (eindex < e.size() && findex < f.size()) {
      if ((fnow > enow) == (fnow > -enow)) {
        two_sum(q, enow, qnew, hh);
        if (++eindex < e.size()) enow = e[eindex];
      } else {
        two_sum(q, fnow, qnew, hh);
        if (++findex < f.size()) fnow = f[findex];
      }
      q = qnew;
      if (hh != 0.0) h.push_back(hh);
    }
  }
  while (eindex < e.size()) {
    two_sum(q, enow, qnew, hh);
    if (++eindex < e.size()) enow = e[eindex];
    q = qnew;
    if (hh != 0.0) h.push_back(hh);
  }
  while (findex < f.size()) {
    two_sum(q, fnow, qnew, hh);
    if (++findex < f.size()) fnow = f[findex];
    q = qnew;
    if (hh != 0.0) h.push_back(hh);
  }
  if (q != 0.0) h.push_back(q);
  return out;
}

Expansion Expansion::operator-(const Expansion& other) const {
  return *this + (-other);
}

// Shewchuk's SCALE_EXPANSION_ZEROELIM.
Expansion Expansion::scaled(double b) const {
  Expansion out;
  if (c_.empty() || b == 0.0) return out;
  auto& h = out.c_;
  h.reserve(2 * c_.size());

  double q, hh;
  two_product(c_[0], b, q, hh);
  if (hh != 0.0) h.push_back(hh);
  for (std::size_t i = 1; i < c_.size(); ++i) {
    double product1, product0, sum;
    two_product(c_[i], b, product1, product0);
    two_sum(q, product0, sum, hh);
    if (hh != 0.0) h.push_back(hh);
    fast_two_sum(product1, sum, q, hh);
    if (hh != 0.0) h.push_back(hh);
  }
  if (q != 0.0) h.push_back(q);
  return out;
}

Expansion Expansion::operator*(const Expansion& other) const {
  // Distribute over the smaller operand to keep intermediate sizes down.
  const Expansion* big = this;
  const Expansion* small = &other;
  if (big->size() < small->size()) std::swap(big, small);
  Expansion acc;
  for (double v : small->c_) acc = acc + big->scaled(v);
  return acc;
}

}  // namespace dtfe
