// Axis-aligned bounding boxes.
#pragma once

#include <limits>
#include <span>

#include "geometry/vec3.h"

namespace dtfe {

struct Aabb {
  Vec3 lo{std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity()};
  Vec3 hi{-std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};

  void expand(const Vec3& p) {
    lo.x = p.x < lo.x ? p.x : lo.x;
    lo.y = p.y < lo.y ? p.y : lo.y;
    lo.z = p.z < lo.z ? p.z : lo.z;
    hi.x = p.x > hi.x ? p.x : hi.x;
    hi.y = p.y > hi.y ? p.y : hi.y;
    hi.z = p.z > hi.z ? p.z : hi.z;
  }

  bool valid() const { return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z; }
  Vec3 center() const { return (lo + hi) * 0.5; }
  Vec3 extent() const { return hi - lo; }
  double max_extent() const {
    const Vec3 e = extent();
    double m = e.x;
    if (e.y > m) m = e.y;
    if (e.z > m) m = e.z;
    return m;
  }
  bool contains(const Vec3& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }

  static Aabb of(std::span<const Vec3> pts) {
    Aabb box;
    for (const Vec3& p : pts) box.expand(p);
    return box;
  }
};

}  // namespace dtfe
