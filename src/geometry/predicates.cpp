// See predicates.h. Filter constants follow Shewchuk, "Adaptive Precision
// Floating-Point Arithmetic and Fast Robust Geometric Predicates" (1997),
// §4: an approximate determinant together with a bound on its absolute error
// derived from the permanent of the matrix certifies the sign whenever
// |det| > errbound; otherwise we re-evaluate with exact expansions.
#include "geometry/predicates.h"

#include <atomic>
#include <cmath>

#include "geometry/expansion.h"

namespace dtfe {

namespace {

constexpr double kEpsilon = 0x1p-53;  // half machine epsilon for double
constexpr double kCcwErrBoundA = (3.0 + 16.0 * kEpsilon) * kEpsilon;
constexpr double kO3dErrBoundA = (7.0 + 56.0 * kEpsilon) * kEpsilon;
constexpr double kIspErrBoundA = (16.0 + 224.0 * kEpsilon) * kEpsilon;
constexpr double kIccErrBoundA = (10.0 + 96.0 * kEpsilon) * kEpsilon;

// Relaxed atomics: the predicates are called concurrently from OpenMP
// regions (parallel triangulations), so plain counters would race. The
// counts are independent tallies — no ordering is needed, only atomicity.
struct AtomicPredicateStats {
  std::atomic<unsigned long long> orient3d_calls{0};
  std::atomic<unsigned long long> orient3d_exact{0};
  std::atomic<unsigned long long> insphere_calls{0};
  std::atomic<unsigned long long> insphere_exact{0};
};
AtomicPredicateStats g_stats;

inline void bump(std::atomic<unsigned long long>& c) {
  c.fetch_add(1, std::memory_order_relaxed);
}

double orient2d_exact(const Vec2& a, const Vec2& b, const Vec2& c) {
  const Expansion acx = Expansion::from_diff(a.x, c.x);
  const Expansion acy = Expansion::from_diff(a.y, c.y);
  const Expansion bcx = Expansion::from_diff(b.x, c.x);
  const Expansion bcy = Expansion::from_diff(b.y, c.y);
  const Expansion det = acx * bcy - acy * bcx;
  return static_cast<double>(det.sign());
}

double incircle2d_exact(const Vec2& a, const Vec2& b, const Vec2& c,
                        const Vec2& d) {
  const Expansion adx = Expansion::from_diff(a.x, d.x);
  const Expansion ady = Expansion::from_diff(a.y, d.y);
  const Expansion bdx = Expansion::from_diff(b.x, d.x);
  const Expansion bdy = Expansion::from_diff(b.y, d.y);
  const Expansion cdx = Expansion::from_diff(c.x, d.x);
  const Expansion cdy = Expansion::from_diff(c.y, d.y);

  const Expansion alift = adx * adx + ady * ady;
  const Expansion blift = bdx * bdx + bdy * bdy;
  const Expansion clift = cdx * cdx + cdy * cdy;

  const Expansion det = alift * (bdx * cdy - cdx * bdy) -
                        blift * (adx * cdy - cdx * ady) +
                        clift * (adx * bdy - bdx * ady);
  return static_cast<double>(det.sign());
}

// Exact det[b−a; c−a; d−a].
double orient3d_exact(const Vec3& a, const Vec3& b, const Vec3& c,
                      const Vec3& d) {
  const Expansion bax = Expansion::from_diff(b.x, a.x);
  const Expansion bay = Expansion::from_diff(b.y, a.y);
  const Expansion baz = Expansion::from_diff(b.z, a.z);
  const Expansion cax = Expansion::from_diff(c.x, a.x);
  const Expansion cay = Expansion::from_diff(c.y, a.y);
  const Expansion caz = Expansion::from_diff(c.z, a.z);
  const Expansion dax = Expansion::from_diff(d.x, a.x);
  const Expansion day = Expansion::from_diff(d.y, a.y);
  const Expansion daz = Expansion::from_diff(d.z, a.z);

  const Expansion det = bax * (cay * daz - caz * day) -
                        bay * (cax * daz - caz * dax) +
                        baz * (cax * day - cay * dax);
  return static_cast<double>(det.sign());
}

// Exact −det of the 4×4 insphere matrix with rows (p−e, |p−e|²), p∈{a,b,c,d},
// evaluated by Laplace expansion along the first two columns.
double insphere_exact(const Vec3& a, const Vec3& b, const Vec3& c,
                      const Vec3& d, const Vec3& e) {
  const Expansion ax = Expansion::from_diff(a.x, e.x);
  const Expansion ay = Expansion::from_diff(a.y, e.y);
  const Expansion az = Expansion::from_diff(a.z, e.z);
  const Expansion bx = Expansion::from_diff(b.x, e.x);
  const Expansion by = Expansion::from_diff(b.y, e.y);
  const Expansion bz = Expansion::from_diff(b.z, e.z);
  const Expansion cx = Expansion::from_diff(c.x, e.x);
  const Expansion cy = Expansion::from_diff(c.y, e.y);
  const Expansion cz = Expansion::from_diff(c.z, e.z);
  const Expansion dx = Expansion::from_diff(d.x, e.x);
  const Expansion dy = Expansion::from_diff(d.y, e.y);
  const Expansion dz = Expansion::from_diff(d.z, e.z);

  const Expansion alift = ax * ax + ay * ay + az * az;
  const Expansion blift = bx * bx + by * by + bz * bz;
  const Expansion clift = cx * cx + cy * cy + cz * cz;
  const Expansion dlift = dx * dx + dy * dy + dz * dz;

  // 2×2 minors of columns (x, y) …
  const Expansion m_ab = ax * by - bx * ay;
  const Expansion m_ac = ax * cy - cx * ay;
  const Expansion m_ad = ax * dy - dx * ay;
  const Expansion m_bc = bx * cy - cx * by;
  const Expansion m_bd = bx * dy - dx * by;
  const Expansion m_cd = cx * dy - dx * cy;
  // … and complementary minors of columns (z, lift).
  const Expansion n_cd = cz * dlift - dz * clift;
  const Expansion n_bd = bz * dlift - dz * blift;
  const Expansion n_bc = bz * clift - cz * blift;
  const Expansion n_ad = az * dlift - dz * alift;
  const Expansion n_ac = az * clift - cz * alift;
  const Expansion n_ab = az * blift - bz * alift;

  const Expansion det = m_ab * n_cd - m_ac * n_bd + m_ad * n_bc + m_bc * n_ad -
                        m_bd * n_ac + m_cd * n_ab;
  return -static_cast<double>(det.sign());
}

}  // namespace

PredicateStats predicate_stats() {
  PredicateStats s;
  s.orient3d_calls = g_stats.orient3d_calls.load(std::memory_order_relaxed);
  s.orient3d_exact = g_stats.orient3d_exact.load(std::memory_order_relaxed);
  s.insphere_calls = g_stats.insphere_calls.load(std::memory_order_relaxed);
  s.insphere_exact = g_stats.insphere_exact.load(std::memory_order_relaxed);
  return s;
}
void reset_predicate_stats() {
  g_stats.orient3d_calls.store(0, std::memory_order_relaxed);
  g_stats.orient3d_exact.store(0, std::memory_order_relaxed);
  g_stats.insphere_calls.store(0, std::memory_order_relaxed);
  g_stats.insphere_exact.store(0, std::memory_order_relaxed);
}

double orient2d(const Vec2& a, const Vec2& b, const Vec2& c) {
  const double detleft = (a.x - c.x) * (b.y - c.y);
  const double detright = (a.y - c.y) * (b.x - c.x);
  const double det = detleft - detright;

  double detsum;
  if (detleft > 0.0) {
    if (detright <= 0.0) return det;
    detsum = detleft + detright;
  } else if (detleft < 0.0) {
    if (detright >= 0.0) return det;
    detsum = -detleft - detright;
  } else {
    return det;
  }
  const double errbound = kCcwErrBoundA * detsum;
  if (det >= errbound || -det >= errbound) return det;
  return orient2d_exact(a, b, c);
}

double incircle2d(const Vec2& a, const Vec2& b, const Vec2& c, const Vec2& d) {
  const double adx = a.x - d.x, ady = a.y - d.y;
  const double bdx = b.x - d.x, bdy = b.y - d.y;
  const double cdx = c.x - d.x, cdy = c.y - d.y;

  const double bdxcdy = bdx * cdy, cdxbdy = cdx * bdy;
  const double cdxady = cdx * ady, adxcdy = adx * cdy;
  const double adxbdy = adx * bdy, bdxady = bdx * ady;
  const double alift = adx * adx + ady * ady;
  const double blift = bdx * bdx + bdy * bdy;
  const double clift = cdx * cdx + cdy * cdy;

  const double det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) +
                     clift * (adxbdy - bdxady);

  const double permanent = (std::abs(bdxcdy) + std::abs(cdxbdy)) * alift +
                           (std::abs(cdxady) + std::abs(adxcdy)) * blift +
                           (std::abs(adxbdy) + std::abs(bdxady)) * clift;
  const double errbound = kIccErrBoundA * permanent;
  if (det > errbound || -det > errbound) return det;
  return incircle2d_exact(a, b, c, d);
}

double orient3d_fast(const Vec3& a, const Vec3& b, const Vec3& c,
                     const Vec3& d) {
  const double bax = b.x - a.x, bay = b.y - a.y, baz = b.z - a.z;
  const double cax = c.x - a.x, cay = c.y - a.y, caz = c.z - a.z;
  const double dax = d.x - a.x, day = d.y - a.y, daz = d.z - a.z;
  return bax * (cay * daz - caz * day) - bay * (cax * daz - caz * dax) +
         baz * (cax * day - cay * dax);
}

double orient3d(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d) {
  bump(g_stats.orient3d_calls);
  const double bax = b.x - a.x, bay = b.y - a.y, baz = b.z - a.z;
  const double cax = c.x - a.x, cay = c.y - a.y, caz = c.z - a.z;
  const double dax = d.x - a.x, day = d.y - a.y, daz = d.z - a.z;

  const double caydaz = cay * daz, cazday = caz * day;
  const double caxdaz = cax * daz, cazdax = caz * dax;
  const double caxday = cax * day, caydax = cay * dax;

  const double det = bax * (caydaz - cazday) - bay * (caxdaz - cazdax) +
                     baz * (caxday - caydax);

  const double permanent = (std::abs(caydaz) + std::abs(cazday)) * std::abs(bax) +
                           (std::abs(caxdaz) + std::abs(cazdax)) * std::abs(bay) +
                           (std::abs(caxday) + std::abs(caydax)) * std::abs(baz);
  const double errbound = kO3dErrBoundA * permanent;
  if (det > errbound || -det > errbound) return det;
  bump(g_stats.orient3d_exact);
  return orient3d_exact(a, b, c, d);
}

double insphere_fast(const Vec3& a, const Vec3& b, const Vec3& c,
                     const Vec3& d, const Vec3& e) {
  const double aex = a.x - e.x, aey = a.y - e.y, aez = a.z - e.z;
  const double bex = b.x - e.x, bey = b.y - e.y, bez = b.z - e.z;
  const double cex = c.x - e.x, cey = c.y - e.y, cez = c.z - e.z;
  const double dex = d.x - e.x, dey = d.y - e.y, dez = d.z - e.z;

  const double ab = aex * bey - bex * aey;
  const double bc = bex * cey - cex * bey;
  const double cd = cex * dey - dex * cey;
  const double da = dex * aey - aex * dey;
  const double ac = aex * cey - cex * aey;
  const double bd = bex * dey - dex * bey;

  const double abc = aez * bc - bez * ac + cez * ab;
  const double bcd = bez * cd - cez * bd + dez * bc;
  const double cda = cez * da + dez * ac + aez * cd;
  const double dab = dez * ab + aez * bd + bez * da;

  const double alift = aex * aex + aey * aey + aez * aez;
  const double blift = bex * bex + bey * bey + bez * bez;
  const double clift = cex * cex + cey * cey + cez * cez;
  const double dlift = dex * dex + dey * dey + dez * dez;

  // The raw 4×4 determinant is NEGATIVE for an interior point when (a,b,c,d)
  // is positively oriented in our convention (hand-verified on the unit
  // tetrahedron; see tests), hence the negation.
  return -((dlift * abc - clift * dab) + (blift * cda - alift * bcd));
}

double insphere(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d,
                const Vec3& e) {
  bump(g_stats.insphere_calls);
  const double aex = a.x - e.x, aey = a.y - e.y, aez = a.z - e.z;
  const double bex = b.x - e.x, bey = b.y - e.y, bez = b.z - e.z;
  const double cex = c.x - e.x, cey = c.y - e.y, cez = c.z - e.z;
  const double dex = d.x - e.x, dey = d.y - e.y, dez = d.z - e.z;

  const double aexbey = aex * bey, bexaey = bex * aey;
  const double bexcey = bex * cey, cexbey = cex * bey;
  const double cexdey = cex * dey, dexcey = dex * cey;
  const double dexaey = dex * aey, aexdey = aex * dey;
  const double aexcey = aex * cey, cexaey = cex * aey;
  const double bexdey = bex * dey, dexbey = dex * bey;

  const double ab = aexbey - bexaey;
  const double bc = bexcey - cexbey;
  const double cd = cexdey - dexcey;
  const double da = dexaey - aexdey;
  const double ac = aexcey - cexaey;
  const double bd = bexdey - dexbey;

  const double abc = aez * bc - bez * ac + cez * ab;
  const double bcd = bez * cd - cez * bd + dez * bc;
  const double cda = cez * da + dez * ac + aez * cd;
  const double dab = dez * ab + aez * bd + bez * da;

  const double alift = aex * aex + aey * aey + aez * aez;
  const double blift = bex * bex + bey * bey + bez * bez;
  const double clift = cex * cex + cey * cey + cez * cez;
  const double dlift = dex * dex + dey * dey + dez * dez;

  const double det =
      (dlift * abc - clift * dab) + (blift * cda - alift * bcd);

  const double aezplus = std::abs(aez), bezplus = std::abs(bez);
  const double cezplus = std::abs(cez), dezplus = std::abs(dez);
  const double aexbeyplus = std::abs(aexbey), bexaeyplus = std::abs(bexaey);
  const double bexceyplus = std::abs(bexcey), cexbeyplus = std::abs(cexbey);
  const double cexdeyplus = std::abs(cexdey), dexceyplus = std::abs(dexcey);
  const double dexaeyplus = std::abs(dexaey), aexdeyplus = std::abs(aexdey);
  const double aexceyplus = std::abs(aexcey), cexaeyplus = std::abs(cexaey);
  const double bexdeyplus = std::abs(bexdey), dexbeyplus = std::abs(dexbey);

  const double permanent =
      ((cexdeyplus + dexceyplus) * bezplus +
       (dexbeyplus + bexdeyplus) * cezplus +
       (bexceyplus + cexbeyplus) * dezplus) * alift +
      ((dexaeyplus + aexdeyplus) * cezplus +
       (aexceyplus + cexaeyplus) * dezplus +
       (cexdeyplus + dexceyplus) * aezplus) * blift +
      ((aexbeyplus + bexaeyplus) * dezplus +
       (bexdeyplus + dexbeyplus) * aezplus +
       (dexaeyplus + aexdeyplus) * bezplus) * clift +
      ((bexceyplus + cexbeyplus) * aezplus +
       (cexaeyplus + aexceyplus) * bezplus +
       (aexbeyplus + bexaeyplus) * cezplus) * dlift;

  const double errbound = kIspErrBoundA * permanent;
  // det here is the raw matrix determinant; our convention negates it (see
  // insphere_fast). The filter test is symmetric, so certify then negate.
  if (det > errbound || -det > errbound) return -det;
  bump(g_stats.insphere_exact);
  return insphere_exact(a, b, c, d, e);
}

}  // namespace dtfe
