// Coefficient (SoA-friendly) form of the vertical crossing test.
//
// For the +ẑ line through ξ, the Plücker permuted inner product against the
// tetra edge a→b reduces to the 2D orientation (b−a)×(a−ξ) (see
// ray_tetra.cpp's vertical_edge_products). Expanding that cross product in ξ
// with (ex, ey) = (b.x−a.x, b.y−a.y):
//
//     s_e(ξ) = (c_e + bx_e·ξ.x) + by_e·ξ.y
//     c_e  = ex·a.y − ey·a.x,   bx_e = ey,   by_e = −ex
//
// so everything the marching hot loop needs from a tetrahedron — six
// coefficient triples plus the four vertex heights — can be computed ONCE
// per cell (dtfe/march_tables.h packs them per cell id) and each crossing
// test costs two multiplies and two adds per edge, with no vertex gathers.
//
// The same polynomial vectorizes two ways with identical per-element
// rounding (plain mul/add only, no FMA — the build forbids FP contraction):
//   * edge-parallel: one ray, edges 0–3 in one 4-lane vector (the scalar
//     march's per-step evaluation);
//   * ray-parallel: four rays against one broadcast tetra (the tile batch
//     path when rays share a walk front).
// The SIMD routes live with the per-cell tables in dtfe/march_tables.h
// (this header stays below util/, where the SIMD wrapper lives); every
// route classifies bitwise identically, which is what lets
// MarchingOptions::use_simd promise equal grids on/off.
//
// NOTE: the coefficient expansion rounds differently from the direct
// (b−a)×(a−ξ) expression, so near-zero products — hence degeneracy
// decisions — can differ from the AoS classifiers in ray_tetra.cpp by ~1
// ulp. The direct form stays available as the audit/ablation oracle; the
// perturb-retry loop absorbs any classification flip either way.
#pragma once

#include <array>
#include <cstddef>

#include "geometry/ray_tetra.h"
#include "geometry/vec3.h"

namespace dtfe {

/// Per-tetra coefficients of the six vertical edge products, plus vertex
/// heights for the exit-z interpolation. Contiguous doubles so the first
/// four of each array load straight into a SIMD register.
struct VerticalTetraCoef {
  double c[6];   ///< constant term  ex·a.y − ey·a.x
  double bx[6];  ///< ξ.x coefficient  ey
  double by[6];  ///< ξ.y coefficient  −ex
  double z[4];   ///< vertex z, for the barycentric exit height
};

inline VerticalTetraCoef make_vertical_coef(const std::array<Vec3, 4>& v) {
  VerticalTetraCoef t;
  for (int e = 0; e < 6; ++e) {
    const Vec3& a = v[static_cast<std::size_t>(kTetraEdge[e][0])];
    const Vec3& b = v[static_cast<std::size_t>(kTetraEdge[e][1])];
    const double ex = b.x - a.x;
    const double ey = b.y - a.y;
    t.c[e] = ex * a.y - ey * a.x;
    t.bx[e] = ey;
    t.by[e] = -ex;
  }
  for (int k = 0; k < 4; ++k) t.z[k] = v[static_cast<std::size_t>(k)].z;
  return t;
}

/// Scalar reference evaluation of the six edge products at ξ. Every other
/// route below must match this bitwise, edge by edge.
inline void coef_edge_products(const VerticalTetraCoef& t, const Vec2& xi,
                               double s[6]) {
  for (int e = 0; e < 6; ++e)
    s[e] = (t.c[e] + t.bx[e] * xi.x) + t.by[e] * xi.y;
}

/// Classify face f from precomputed edge products: +1 crossing (with *z set
/// to the intersection height), 0 no crossing, −1 degenerate. Branch order
/// matches ray_tetra.cpp's classify_vertical_face exactly: mixed signs
/// reject the face BEFORE the zero test, because an edge parallel to the
/// vertical line always yields a zero product that only signals a real
/// degeneracy when the remaining products agree.
inline int coef_classify_face(const VerticalTetraCoef& t, int f,
                              const double s[6], double* z) {
  const auto& row = kFaceEdgeTable[static_cast<std::size_t>(f)];
  const double w0 = row[0].sign * s[row[0].edge];
  const double w1 = row[1].sign * s[row[1].edge];
  const double w2 = row[2].sign * s[row[2].edge];
  const int pos = (w0 > 0.0) + (w1 > 0.0) + (w2 > 0.0);
  const int neg = (w0 < 0.0) + (w1 < 0.0) + (w2 < 0.0);
  if (pos > 0 && neg > 0) return 0;
  if (pos + neg < 3) return -1;  // a zero product on a candidate face
  const double inv = 1.0 / (w0 + w1 + w2);
  *z = (t.z[row[0].weight_vertex] * w0 + t.z[row[1].weight_vertex] * w1 +
        t.z[row[2].weight_vertex] * w2) *
       inv;
  return 1;
}

/// Entry/exit classification of a full tetra from precomputed products —
/// the coefficient-table counterpart of line_tetra_vertical, minus the
/// fields a vertical march never reads (hit points, line parameters).
struct VerticalSpan {
  bool intersects = false;
  bool degenerate = false;
  int enter_face = -1;
  int exit_face = -1;
  double z_enter = 0.0;
  double z_exit = 0.0;
};

inline VerticalSpan coef_vertical_span(const VerticalTetraCoef& t,
                                       const double s[6]) {
  VerticalSpan span;
  int found = 0;
  for (int f = 0; f < 4 && found < 2; ++f) {
    double z;
    const int r = coef_classify_face(t, f, s, &z);
    if (r == 0) continue;
    if (r < 0) {
      span.degenerate = true;
      return span;
    }
    if (found == 0) {
      span.enter_face = f;
      span.z_enter = z;
    } else {
      span.exit_face = f;
      span.z_exit = z;
    }
    ++found;
  }
  if (found == 2) {
    span.intersects = true;
    if (span.z_enter > span.z_exit) {
      std::swap(span.z_enter, span.z_exit);
      std::swap(span.enter_face, span.exit_face);
    }
  } else if (found == 1) {
    span.degenerate = true;  // second crossing went through an edge/vertex
  }
  return span;
}

/// Exit-only classification with the entry face known (the marching loop's
/// per-step test) — the coefficient-table counterpart of
/// line_tetra_vertical_exit.
inline VerticalExit coef_vertical_exit(const VerticalTetraCoef& t,
                                       const double s[6], int entry_face) {
  VerticalExit out;
  for (int f = 0; f < 4; ++f) {
    if (f == entry_face) continue;
    double z;
    const int r = coef_classify_face(t, f, s, &z);
    if (r == 0) continue;
    if (r < 0) {
      out.degenerate = true;
      return out;
    }
    out.found = true;
    out.exit_face = f;
    out.z_exit = z;
    return out;
  }
  out.degenerate = true;  // no exit through a face interior: edge/vertex case
  return out;
}

}  // namespace dtfe
