// Robust geometric predicates: statically filtered double evaluation with an
// exact expansion-arithmetic fallback (Shewchuk-style two-stage).
//
// Conventions (fixed by tests/geometry/predicates_test.cpp):
//   orient3d(a,b,c,d)  > 0  ⇔  det[b−a; c−a; d−a] > 0, i.e. the tetrahedron
//                              (a,b,c,d) is positively oriented (d lies on the
//                              side of plane (a,b,c) pointed to by
//                              (b−a)×(c−a)).
//   insphere(a,b,c,d,e) > 0 ⇔  e lies strictly inside the circumsphere of the
//                              POSITIVELY oriented tetrahedron (a,b,c,d).
//   orient2d(a,b,c)    > 0  ⇔  (a,b,c) is counterclockwise.
//
// All predicates return the (possibly approximate) signed value whose *sign*
// is exact; callers must only rely on the sign.
#pragma once

#include "geometry/vec3.h"

namespace dtfe {

double orient2d(const Vec2& a, const Vec2& b, const Vec2& c);
/// incircle(a,b,c,d) > 0 ⇔ d strictly inside the circle through a,b,c,
/// PROVIDED (a,b,c) is counterclockwise (flip the sign for clockwise).
double incircle2d(const Vec2& a, const Vec2& b, const Vec2& c, const Vec2& d);
double orient3d(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d);
double insphere(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d,
                const Vec3& e);

/// Non-robust plain double versions (used by ablation micro-benchmarks and
/// by callers that only need a fast approximate value, never a decision).
double orient3d_fast(const Vec3& a, const Vec3& b, const Vec3& c,
                     const Vec3& d);
double insphere_fast(const Vec3& a, const Vec3& b, const Vec3& c,
                     const Vec3& d, const Vec3& e);

/// Counters for filter effectiveness reporting. The live tallies are
/// relaxed atomics (predicates run concurrently inside OpenMP regions);
/// predicate_stats() returns a point-in-time snapshot.
struct PredicateStats {
  unsigned long long orient3d_calls = 0;
  unsigned long long orient3d_exact = 0;
  unsigned long long insphere_calls = 0;
  unsigned long long insphere_exact = 0;
};
PredicateStats predicate_stats();
void reset_predicate_stats();

}  // namespace dtfe
