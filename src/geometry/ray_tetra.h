// Line–tetrahedron intersection.
//
// Primary algorithm: Platis & Theoharis (2003), Plücker-coordinate face
// classification with shared-edge reuse (6 permuted inner products per
// tetrahedron instead of 12) — this is what the paper's marching kernel uses.
// A Möller–Trumbore per-face variant is provided for the ablation benchmark
// (the paper notes MT "usually does not perform well in practice because of
// floating point round-off error").
#pragma once

#include <array>

#include "geometry/plucker.h"
#include "geometry/vec3.h"

namespace dtfe {

/// Outward-oriented faces of a POSITIVELY oriented tetrahedron: face i is
/// opposite vertex i; kTetraFace[i] lists the other three vertices
/// counterclockwise as seen from outside.
inline constexpr int kTetraFace[4][3] = {
    {1, 2, 3}, {0, 3, 2}, {0, 1, 3}, {0, 2, 1}};

/// Vertex indices of the 6 edges of a tetrahedron (i < j order).
inline constexpr int kTetraEdge[6][2] = {
    {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}};

/// One directed boundary edge of a face, resolved against the canonical
/// edge list: `sign` is −1 when the canonical i<j edge runs opposite to the
/// face winding, and `weight_vertex` is the vertex whose barycentric weight
/// this edge's Plücker product carries (paper Eq. 9: the product for edge
/// A→B weights the OPPOSITE face vertex C).
struct FaceEdgeEntry {
  int edge;
  double sign;
  int weight_vertex;
};

namespace detail {
/// Canonical (min, max) lookup into kTetraEdge.
constexpr int tetra_edge_index(int i, int j) {
  const int a = i < j ? i : j;
  const int b = i < j ? j : i;
  if (a == 0) return b - 1;  // (0,1)->0 (0,2)->1 (0,3)->2
  if (a == 1) return b + 1;  // (1,2)->3 (1,3)->4
  return 5;                  // (2,3)
}
}  // namespace detail

/// Fully precomputed face→edge incidence so the crossing-test hot loops do
/// no index arithmetic. Shared by the direct (AoS) classifiers below and the
/// coefficient-table form in geometry/tetra_coef.h.
inline constexpr auto kFaceEdgeTable = [] {
  std::array<std::array<FaceEdgeEntry, 3>, 4> t{};
  for (int f = 0; f < 4; ++f)
    for (int k = 0; k < 3; ++k) {
      const int i = kTetraFace[f][k];
      const int j = kTetraFace[f][(k + 1) % 3];
      t[static_cast<std::size_t>(f)][static_cast<std::size_t>(k)] = {
          detail::tetra_edge_index(i, j), i < j ? 1.0 : -1.0,
          kTetraFace[f][(k + 2) % 3]};
    }
  return t;
}();

struct LineTetraHit {
  bool intersects = false;   ///< line crosses the tetra interior
  bool degenerate = false;   ///< hit a vertex/edge or is coplanar with a face
  int enter_face = -1;       ///< local face index (opposite-vertex numbering)
  int exit_face = -1;
  double t_enter = 0.0;      ///< line parameters: x = origin + t · dir
  double t_exit = 0.0;
  Vec3 enter_point;
  Vec3 exit_point;
};

/// Classify the infinite line `line` (with `origin`/`dir` matching the
/// Plücker construction) against tetra (v[0..3]), which must be positively
/// oriented. On a clean pass-through: two crossed faces, ordered by t.
LineTetraHit line_tetra_plucker(const PluckerLine& line, const Vec3& origin,
                                const Vec3& dir,
                                const std::array<Vec3, 4>& v);

/// Specialization for VERTICAL lines (direction +ẑ through (x, y)): the
/// Plücker permuted inner product of a vertical line with edge a→b reduces
/// to the 2D cross product (b−a)×(a−ξ) in the xy-plane, so the 6 per-tetra
/// edge tests cost 4 multiplies each. This is the kernel's hot path — the
/// paper integrates along z precisely "to make calculations simpler".
/// t_enter/t_exit are absolute z coordinates.
LineTetraHit line_tetra_vertical(const Vec2& xi, const std::array<Vec3, 4>& v);

/// Marching hot path: with the entry face already known (the mirror of the
/// previous tetra's exit), only the exit face and its height are needed.
struct VerticalExit {
  int exit_face = -1;
  double z_exit = 0.0;
  bool degenerate = false;
  bool found = false;
};
VerticalExit line_tetra_vertical_exit(const Vec2& xi,
                                      const std::array<Vec3, 4>& v,
                                      int entry_face);

/// Same classification via four Möller–Trumbore ray–triangle tests
/// (ablation baseline).
LineTetraHit line_tetra_moller(const Vec3& origin, const Vec3& dir,
                               const std::array<Vec3, 4>& v);

/// Möller–Trumbore line/triangle: returns true and fills (t, u, v) if the
/// infinite line origin + t·dir crosses triangle (a,b,c) strictly inside.
bool line_triangle_moller(const Vec3& origin, const Vec3& dir, const Vec3& a,
                          const Vec3& b, const Vec3& c, double& t, double& u,
                          double& w);

}  // namespace dtfe
