// 3D vector type used throughout the library.
#pragma once

#include <cmath>
#include <iosfwd>
#include <ostream>

namespace dtfe {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  Vec3& operator*=(double s) { x *= s; y *= s; z *= s; return *this; }
  constexpr bool operator==(const Vec3& o) const { return x == o.x && y == o.y && z == o.z; }

  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  constexpr double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }
  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? *this / n : Vec3{};
  }
  constexpr double operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

/// 2D point (projections of lines of sight onto the image plane).
struct Vec2 {
  double x = 0.0, y = 0.0;
  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}
  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr double dot(const Vec2& o) const { return x * o.x + y * o.y; }
  /// z-component of the 3D cross product — the 2D orientation primitive.
  constexpr double cross(const Vec2& o) const { return x * o.y - y * o.x; }
  double norm() const { return std::sqrt(x * x + y * y); }
};

}  // namespace dtfe
