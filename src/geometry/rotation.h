// 3D rotations for arbitrary projection directions.
//
// The paper's kernel integrates along z "to make calculations simpler,
// however, in principle any arbitrary direction can be chosen by a simple
// rotation of the triangulation" (§IV-A-2). Rotation provides that: build an
// orthonormal frame whose third axis is the desired line of sight, rotate
// the particle set into it, and run the vertical kernel unchanged.
#pragma once

#include <cmath>

#include "geometry/vec3.h"

namespace dtfe {

/// Row-major 3×3 rotation (orthonormal, det +1 for proper rotations built by
/// the factories below).
struct Rotation {
  Vec3 rows[3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};

  static Rotation identity() { return {}; }

  /// Rodrigues rotation about a (not necessarily unit) axis.
  static Rotation about_axis(const Vec3& axis, double angle) {
    const Vec3 k = axis.normalized();
    const double c = std::cos(angle), s = std::sin(angle), t = 1.0 - c;
    Rotation r;
    r.rows[0] = {t * k.x * k.x + c, t * k.x * k.y - s * k.z,
                 t * k.x * k.z + s * k.y};
    r.rows[1] = {t * k.x * k.y + s * k.z, t * k.y * k.y + c,
                 t * k.y * k.z - s * k.x};
    r.rows[2] = {t * k.x * k.z - s * k.y, t * k.y * k.z + s * k.x,
                 t * k.z * k.z + c};
    return r;
  }

  /// A frame whose third row is the unit `direction`: applying the rotation
  /// maps `direction` onto +ẑ, so a vertical march in the rotated frame
  /// integrates along `direction` in the original one. The in-plane axes are
  /// chosen deterministically (stable across calls).
  static Rotation frame_for_direction(const Vec3& direction) {
    const Vec3 d = direction.normalized();
    // Pick the global axis least aligned with d to seed the first in-plane
    // axis.
    Vec3 seed{1, 0, 0};
    if (std::abs(d.x) >= std::abs(d.y) && std::abs(d.x) >= std::abs(d.z))
      seed = {0, 1, 0};
    const Vec3 u = seed.cross(d).normalized();
    const Vec3 v = d.cross(u);
    Rotation r;
    r.rows[0] = u;
    r.rows[1] = v;
    r.rows[2] = d;
    return r;
  }

  Vec3 apply(const Vec3& p) const {
    return {rows[0].dot(p), rows[1].dot(p), rows[2].dot(p)};
  }
  /// Inverse (= transpose) application.
  Vec3 apply_inverse(const Vec3& p) const {
    return rows[0] * p.x + rows[1] * p.y + rows[2] * p.z;
  }

  Rotation transposed() const {
    Rotation r;
    r.rows[0] = {rows[0].x, rows[1].x, rows[2].x};
    r.rows[1] = {rows[0].y, rows[1].y, rows[2].y};
    r.rows[2] = {rows[0].z, rows[1].z, rows[2].z};
    return r;
  }

  /// this ∘ other: apply `other` first, then this.
  Rotation compose(const Rotation& other) const {
    const Rotation ot = other.transposed();
    Rotation r;
    for (int i = 0; i < 3; ++i)
      r.rows[i] = {rows[i].dot(ot.rows[0]), rows[i].dot(ot.rows[1]),
                   rows[i].dot(ot.rows[2])};
    return r;
  }
};

}  // namespace dtfe
