#include "geometry/ray_tetra.h"

#include <cmath>

namespace dtfe {

LineTetraHit line_tetra_plucker(const PluckerLine& line, const Vec3& origin,
                                const Vec3& dir,
                                const std::array<Vec3, 4>& v) {
  LineTetraHit hit;

  // Six shared-edge permuted inner products.
  double s[6];
  for (int e = 0; e < 6; ++e) {
    const PluckerLine edge =
        PluckerLine::from_segment(v[kTetraEdge[e][0]], v[kTetraEdge[e][1]]);
    s[e] = permuted_inner(line, edge);
  }

  const double dir_norm2 = dir.norm2();
  int found = 0;
  for (int f = 0; f < 4 && found < 2; ++f) {
    double w[3];
    bool any_zero = false;
    int pos = 0, neg = 0;
    for (int k = 0; k < 3; ++k) {
      const FaceEdgeEntry& fe =
          kFaceEdgeTable[static_cast<std::size_t>(f)][static_cast<std::size_t>(k)];
      w[k] = fe.sign * s[fe.edge];
      if (w[k] > 0.0) ++pos;
      else if (w[k] < 0.0) ++neg;
      else any_zero = true;
    }
    if (pos > 0 && neg > 0) continue;  // mixed signs: no crossing here
    if (any_zero) {
      // Line touches an edge or vertex of this face (or is coplanar).
      // If the nonzero products agree the line grazes this face: degenerate.
      if (pos == 0 && neg == 0) {
        hit.degenerate = true;  // coplanar with the face
        return hit;
      }
      hit.degenerate = true;
      return hit;
    }
    // All three strictly one sign: the line crosses this face's interior.
    const double wsum = w[0] + w[1] + w[2];
    Vec3 x{0, 0, 0};
    for (int k = 0; k < 3; ++k)
      x += v[kFaceEdgeTable[static_cast<std::size_t>(f)]
                           [static_cast<std::size_t>(k)].weight_vertex] *
           (w[k] / wsum);
    const double t = (x - origin).dot(dir) / dir_norm2;
    if (found == 0) {
      hit.enter_face = f;
      hit.t_enter = t;
      hit.enter_point = x;
    } else {
      hit.exit_face = f;
      hit.t_exit = t;
      hit.exit_point = x;
    }
    ++found;
  }

  if (found == 2) {
    hit.intersects = true;
    if (hit.t_enter > hit.t_exit) {
      std::swap(hit.t_enter, hit.t_exit);
      std::swap(hit.enter_face, hit.exit_face);
      std::swap(hit.enter_point, hit.exit_point);
    }
  } else if (found == 1) {
    // A line crossing one face interior must cross the boundary again; if the
    // second crossing was not a face interior it went through an edge/vertex.
    hit.degenerate = true;
  }
  return hit;
}

namespace {
inline void vertical_edge_products(const Vec2& xi, const std::array<Vec3, 4>& v,
                                   double s[6]) {
  // Edge products: for the +ẑ line through ξ, π_line ⊙ π_edge(a→b) equals
  // the 2D orientation (b−a) × (a−ξ) of the projected edge around ξ.
  for (int e = 0; e < 6; ++e) {
    const Vec3& a = v[kTetraEdge[e][0]];
    const Vec3& b = v[kTetraEdge[e][1]];
    s[e] = (b.x - a.x) * (a.y - xi.y) - (b.y - a.y) * (a.x - xi.x);
  }
}

// Classify face f against precomputed edge products; returns +1 crossing,
// 0 no crossing, -1 degenerate (a zero product on a candidate face).
// On crossing, *z receives the intersection height.
inline int classify_vertical_face(const std::array<Vec3, 4>& v, int f,
                                  const double s[6], double* z) {
  const auto& row = kFaceEdgeTable[static_cast<std::size_t>(f)];
  const double w0 = row[0].sign * s[row[0].edge];
  const double w1 = row[1].sign * s[row[1].edge];
  const double w2 = row[2].sign * s[row[2].edge];
  // Mixed signs reject the face BEFORE the zero test: an edge parallel to
  // the (vertical) line always yields a zero product, which only signals a
  // real degeneracy when the remaining products agree (matching the
  // general-direction classifier's order of checks).
  const int pos = (w0 > 0.0) + (w1 > 0.0) + (w2 > 0.0);
  const int neg = (w0 < 0.0) + (w1 < 0.0) + (w2 < 0.0);
  if (pos > 0 && neg > 0) return 0;
  if (pos + neg < 3) return -1;  // a zero product on a candidate face
  const double inv = 1.0 / (w0 + w1 + w2);
  *z = (v[row[0].weight_vertex].z * w0 + v[row[1].weight_vertex].z * w1 +
        v[row[2].weight_vertex].z * w2) * inv;
  return 1;
}
}  // namespace

LineTetraHit line_tetra_vertical(const Vec2& xi, const std::array<Vec3, 4>& v) {
  LineTetraHit hit;
  double s[6];
  vertical_edge_products(xi, v, s);

  int found = 0;
  for (int f = 0; f < 4 && found < 2; ++f) {
    double z;
    const int r = classify_vertical_face(v, f, s, &z);
    if (r == 0) continue;
    if (r < 0) {
      hit.degenerate = true;
      return hit;
    }
    if (found == 0) {
      hit.enter_face = f;
      hit.t_enter = z;
      hit.enter_point = {xi.x, xi.y, z};
    } else {
      hit.exit_face = f;
      hit.t_exit = z;
      hit.exit_point = {xi.x, xi.y, z};
    }
    ++found;
  }

  if (found == 2) {
    hit.intersects = true;
    if (hit.t_enter > hit.t_exit) {
      std::swap(hit.t_enter, hit.t_exit);
      std::swap(hit.enter_face, hit.exit_face);
      std::swap(hit.enter_point, hit.exit_point);
    }
  } else if (found == 1) {
    hit.degenerate = true;
  }
  return hit;
}

VerticalExit line_tetra_vertical_exit(const Vec2& xi,
                                      const std::array<Vec3, 4>& v,
                                      int entry_face) {
  VerticalExit out;
  double s[6];
  vertical_edge_products(xi, v, s);
  for (int f = 0; f < 4; ++f) {
    if (f == entry_face) continue;
    double z;
    const int r = classify_vertical_face(v, f, s, &z);
    if (r == 0) continue;
    if (r < 0) {
      out.degenerate = true;
      return out;
    }
    out.found = true;
    out.exit_face = f;
    out.z_exit = z;
    return out;
  }
  out.degenerate = true;  // no exit through a face interior: edge/vertex case
  return out;
}

bool line_triangle_moller(const Vec3& origin, const Vec3& dir, const Vec3& a,
                          const Vec3& b, const Vec3& c, double& t, double& u,
                          double& w) {
  const Vec3 e1 = b - a;
  const Vec3 e2 = c - a;
  const Vec3 p = dir.cross(e2);
  const double det = e1.dot(p);
  if (det == 0.0) return false;
  const double inv_det = 1.0 / det;
  const Vec3 s = origin - a;
  u = s.dot(p) * inv_det;
  if (u < 0.0 || u > 1.0) return false;
  const Vec3 q = s.cross(e1);
  w = dir.dot(q) * inv_det;
  if (w < 0.0 || u + w > 1.0) return false;
  t = e2.dot(q) * inv_det;
  return true;
}

LineTetraHit line_tetra_moller(const Vec3& origin, const Vec3& dir,
                               const std::array<Vec3, 4>& v) {
  LineTetraHit hit;
  int found = 0;
  for (int f = 0; f < 4 && found < 2; ++f) {
    double t, u, w;
    if (line_triangle_moller(origin, dir, v[kTetraFace[f][0]],
                             v[kTetraFace[f][1]], v[kTetraFace[f][2]], t, u,
                             w)) {
      const Vec3 x = origin + dir * t;
      if (found == 0) {
        hit.enter_face = f;
        hit.t_enter = t;
        hit.enter_point = x;
      } else {
        hit.exit_face = f;
        hit.t_exit = t;
        hit.exit_point = x;
      }
      ++found;
    }
  }
  if (found == 2) {
    hit.intersects = true;
    if (hit.t_enter > hit.t_exit) {
      std::swap(hit.t_enter, hit.t_exit);
      std::swap(hit.enter_face, hit.exit_face);
      std::swap(hit.enter_point, hit.exit_point);
    }
  } else if (found == 1) {
    hit.degenerate = true;
  }
  return hit;
}

}  // namespace dtfe
