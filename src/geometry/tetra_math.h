// Plain (non-exact) tetrahedron geometry: volumes, circumcenters,
// barycentric coordinates. Decisions are never made from these values alone;
// topological decisions go through predicates.h.
#pragma once

#include <array>

#include "geometry/vec3.h"

namespace dtfe {

/// Signed volume of tetra (a,b,c,d): positive when positively oriented
/// (same convention as orient3d). V = det[b−a; c−a; d−a] / 6.
inline double signed_tetra_volume(const Vec3& a, const Vec3& b, const Vec3& c,
                                  const Vec3& d) {
  return (b - a).dot((c - a).cross(d - a)) / 6.0;
}

inline double tetra_volume(const Vec3& a, const Vec3& b, const Vec3& c,
                           const Vec3& d) {
  const double v = signed_tetra_volume(a, b, c, d);
  return v < 0.0 ? -v : v;
}

/// Circumcenter of the tetrahedron; degenerate (near-flat) tetras produce
/// large/inf coordinates — callers must tolerate that.
Vec3 tetra_circumcenter(const Vec3& a, const Vec3& b, const Vec3& c,
                        const Vec3& d);

/// Barycentric coordinates of p with respect to tetra (a,b,c,d); sums to 1
/// for non-degenerate tetras.
std::array<double, 4> tetra_barycentric(const Vec3& a, const Vec3& b,
                                        const Vec3& c, const Vec3& d,
                                        const Vec3& p);

/// Area-weighted normal of triangle (a,b,c): (b−a)×(c−a) / 2.
inline Vec3 triangle_normal(const Vec3& a, const Vec3& b, const Vec3& c) {
  return (b - a).cross(c - a) * 0.5;
}

}  // namespace dtfe
