#include "geometry/tetra_math.h"

namespace dtfe {

Vec3 tetra_circumcenter(const Vec3& a, const Vec3& b, const Vec3& c,
                        const Vec3& d) {
  // Solve 2(B−A)·x = |B|²−|A|² etc. relative to a to reduce cancellation.
  const Vec3 u = b - a, v = c - a, w = d - a;
  const double uu = u.norm2() * 0.5, vv = v.norm2() * 0.5, ww = w.norm2() * 0.5;

  const Vec3 vxw = v.cross(w);
  const Vec3 wxu = w.cross(u);
  const Vec3 uxv = u.cross(v);
  const double det = u.dot(vxw);
  if (det == 0.0) {
    return {1e300, 1e300, 1e300};  // flat tetra: no finite circumcenter
  }
  const Vec3 rel = (vxw * uu + wxu * vv + uxv * ww) / det;
  return a + rel;
}

std::array<double, 4> tetra_barycentric(const Vec3& a, const Vec3& b,
                                        const Vec3& c, const Vec3& d,
                                        const Vec3& p) {
  const double vol = signed_tetra_volume(a, b, c, d);
  if (vol == 0.0) return {0.25, 0.25, 0.25, 0.25};
  const double inv = 1.0 / vol;
  return {
      signed_tetra_volume(p, b, c, d) * inv,
      signed_tetra_volume(a, p, c, d) * inv,
      signed_tetra_volume(a, b, p, d) * inv,
      signed_tetra_volume(a, b, c, p) * inv,
  };
}

}  // namespace dtfe
