// Plücker coordinates and the permuted inner product (paper §III-C-2,
// Eq. 7–8), the primitives of the Platis–Theoharis ray–tetrahedron test used
// by the marching kernel.
#pragma once

#include "geometry/vec3.h"

namespace dtfe {

/// Directed line in Plücker coordinates π = {U : V} with U the direction and
/// V = U × x for any point x on the line (paper Eq. 7).
struct PluckerLine {
  Vec3 u;  ///< direction
  Vec3 v;  ///< moment U × point

  /// Line through `point` with direction `dir`.
  static PluckerLine from_point_dir(const Vec3& point, const Vec3& dir) {
    return {dir, dir.cross(point)};
  }
  /// Line through two points p → q.
  static PluckerLine from_segment(const Vec3& p, const Vec3& q) {
    return from_point_dir(p, q - p);
  }
};

/// Permuted inner product π_r ⊙ π_s = U_r·V_s + U_s·V_r (paper Eq. 8).
/// Sign gives the relative orientation of the two directed lines; zero means
/// they are coplanar (intersecting or parallel) — a degeneracy for the
/// marching kernel.
inline double permuted_inner(const PluckerLine& r, const PluckerLine& s) {
  return r.u.dot(s.v) + s.u.dot(r.v);
}

}  // namespace dtfe
