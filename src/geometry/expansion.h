// Exact floating-point expansion arithmetic (Shewchuk 1997).
//
// An expansion represents a real number exactly as a sum of non-overlapping
// IEEE doubles stored in increasing order of magnitude. The error-free
// transforms two_sum / two_diff / two_product are the primitives; on top of
// them, expansion addition and scaling are exact, so any polynomial in the
// input coordinates — in particular the orientation and insphere
// determinants — can be evaluated with its exact sign.
//
// This is the slow path behind the statically filtered predicates in
// predicates.h; it only runs when the filter cannot certify a sign.
//
// NOTE: this translation unit must be compiled without FP contraction or
// value-unsafe FP optimizations (see src/geometry/CMakeLists.txt).
#pragma once

#include <cmath>
#include <span>
#include <vector>

namespace dtfe {

/// x + y == a + b exactly, |y| <= ulp(x)/2. No precondition on magnitudes.
inline void two_sum(double a, double b, double& x, double& y) {
  x = a + b;
  const double bvirt = x - a;
  const double avirt = x - bvirt;
  const double bround = b - bvirt;
  const double around = a - avirt;
  y = around + bround;
}

/// Requires |a| >= |b| (or a == 0).
inline void fast_two_sum(double a, double b, double& x, double& y) {
  x = a + b;
  const double bvirt = x - a;
  y = b - bvirt;
}

/// x + y == a - b exactly.
inline void two_diff(double a, double b, double& x, double& y) {
  x = a - b;
  const double bvirt = a - x;
  const double avirt = x + bvirt;
  const double bround = bvirt - b;
  const double around = a - avirt;
  y = around + bround;
}

/// x + y == a * b exactly (error term via FMA).
inline void two_product(double a, double b, double& x, double& y) {
  x = a * b;
  y = std::fma(a, b, -x);
}

/// Exact multi-component value. Components are non-overlapping, increasing in
/// magnitude; zeros are eliminated eagerly. An empty expansion is zero.
class Expansion {
 public:
  Expansion() = default;
  /// Single-component expansion (zero components are dropped).
  explicit Expansion(double v) {
    if (v != 0.0) c_.push_back(v);
  }
  /// Exact difference a − b of two doubles.
  static Expansion from_diff(double a, double b) {
    Expansion e;
    double x, y;
    two_diff(a, b, x, y);
    if (y != 0.0) e.c_.push_back(y);
    if (x != 0.0) e.c_.push_back(x);
    return e;
  }
  /// Exact product of two doubles.
  static Expansion from_product(double a, double b) {
    Expansion e;
    double x, y;
    two_product(a, b, x, y);
    if (y != 0.0) e.c_.push_back(y);
    if (x != 0.0) e.c_.push_back(x);
    return e;
  }

  bool is_zero() const { return c_.empty(); }
  std::size_t size() const { return c_.size(); }

  /// Sign of the exact value: -1, 0 or +1. The largest-magnitude component is
  /// last and dominates the sum (non-overlapping property).
  int sign() const {
    if (c_.empty()) return 0;
    return c_.back() > 0.0 ? 1 : -1;
  }

  /// Most-significant component — a good double approximation's leading term.
  double approx() const {
    double a = 0.0;
    for (double v : c_) a += v;
    return a;
  }

  /// Exact sum (fast_expansion_sum_zeroelim).
  Expansion operator+(const Expansion& other) const;
  /// Exact difference.
  Expansion operator-(const Expansion& other) const;
  /// Exact product by a double (scale_expansion_zeroelim).
  Expansion scaled(double b) const;
  /// Exact product of two expansions (distributes scaled() over components).
  Expansion operator*(const Expansion& other) const;
  Expansion operator-() const {
    Expansion e;
    e.c_.reserve(c_.size());
    for (double v : c_) e.c_.push_back(-v);
    return e;
  }

 private:
  std::vector<double> c_;
};

}  // namespace dtfe
