// Lower-hull projection locator (paper §IV-A-2).
//
// To seed the line-of-sight march, the kernel needs, for a vertical line ℓ
// through image point ξ, the first tetrahedron ℓ intersects. The paper builds
// a 2D triangulation from the 3D hull facets facing opposite the direction of
// integration (n_hull · ẑ < 0, Eq. 14) and locates ξ in it. Because the
// downward-facing facets of a convex polytope project injectively onto the
// xy-plane, the projection *is* already a triangulation of the hull's
// silhouette polygon — no extra Delaunay construction is needed, only a point
// location structure. We bucket the projected triangles in a uniform grid
// ("any point location method can be used").
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "delaunay/triangulation.h"
#include "geometry/vec3.h"

namespace dtfe {

class HullProjection {
 public:
  /// Collect the downward-facing hull facets of `tri` and index their xy
  /// projections. `grid_resolution` buckets per axis (0 = auto from facet
  /// count).
  explicit HullProjection(const Triangulation& tri,
                          std::size_t grid_resolution = 0);

  /// The finite cell whose downward hull facet's projection contains ξ —
  /// i.e. the first tetrahedron a +z line through ξ intersects. Returns
  /// kNoCell if ξ is outside the hull silhouette.
  CellId first_cell(const Vec2& xi) const;

  /// Same, also reporting which face of the returned cell is the hull facet
  /// the line enters through (the marching kernel's initial entry face).
  struct Entry {
    CellId cell = -1;
    int entry_face = -1;
  };
  Entry first_entry(const Vec2& xi) const;

  /// Alternative locator: a stochastic orientation WALK over the projected
  /// hull triangulation, using the facet adjacency induced by the 3D
  /// infinite-cell adjacency — the point-location method the paper describes
  /// verbatim ("constructing a 2D triangulation from the 3D Delaunay
  /// triangulation's convex hull ... where any point location method can be
  /// used"). `facet_hint` (index into the facet list, or -1) makes repeated
  /// nearby queries O(1); the located facet index is written back to it.
  Entry first_entry_walk(const Vec2& xi, std::ptrdiff_t& facet_hint,
                         std::uint64_t& rng_state) const;

  std::size_t num_facets() const { return facets_.size(); }

  /// Axis-aligned bounds of the projected silhouette.
  Vec2 lo() const { return lo_; }
  Vec2 hi() const { return hi_; }

 private:
  struct Facet {
    Vec2 a, b, c;    ///< projected vertices, counterclockwise
    CellId cell;     ///< finite cell incident to the hull facet
    int entry_face;  ///< face index of `cell` that IS the hull facet
    /// Neighbor facet across the edge OPPOSITE each projected vertex
    /// (a→0, b→1, c→2); -1 at the silhouette boundary.
    std::ptrdiff_t neighbor[3] = {-1, -1, -1};
  };

  bool facet_contains(const Facet& f, const Vec2& p) const;
  void build_adjacency(const Triangulation& tri);

  std::vector<Facet> facets_;
  std::vector<CellId> source_cell_;  ///< the infinite cell behind each facet
  std::vector<std::vector<std::uint32_t>> buckets_;
  std::size_t res_ = 1;
  Vec2 lo_{0, 0}, hi_{1, 1};
  double inv_cell_x_ = 1.0, inv_cell_y_ = 1.0;
};

}  // namespace dtfe
