// Incremental 3D Delaunay triangulation (Bowyer–Watson with an infinite
// vertex, in the style of CGAL's Delaunay_triangulation_3, built from
// scratch on the robust predicates of src/geometry).
//
// Structure:
//  * Vertices are indices into the input point array; duplicates map to a
//    representative via duplicate_of().
//  * Cells ("tetras") store 4 vertex ids and 4 neighbor ids; neighbor n[i]
//    is the cell across the face opposite vertex i. Face i of a positively
//    oriented cell lists its three vertices counterclockwise as seen from
//    OUTSIDE the cell (geometry/ray_tetra.h's kTetraFace table).
//  * Exactly one vertex of a hull-adjacent cell is kInfinite; the face
//    opposite it is a convex-hull facet whose stored winding points INTO the
//    hull (by the "replace infinity by a far outside point" convention every
//    cell, finite or not, is combinatorially positively oriented).
//
// Point location is a remembering stochastic walk (paper §III-C-1); insertion
// order is Morton/BRIO spatially sorted by the builder for near-linear total
// walk cost.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "geometry/ray_tetra.h"
#include "geometry/vec3.h"
#include "util/cancel.h"

namespace dtfe {

using VertexId = std::int32_t;
using CellId = std::int32_t;

struct TriangulationOptions {
  bool spatial_sort = true;  ///< Morton-order the insertion sequence
  bool verify = false;       ///< run full validation after build (tests)
  /// Reuse the insertion scratch buffers (conflict-BFS queue, visited list,
  /// boundary-facet list, cavity-edge list) across insertions. Off restores
  /// the allocate-per-insert behavior for A/B runs in bench/micro_delaunay.
  bool reuse_insert_scratch = true;
  /// Cooperative cancellation (borrowed; may be null = never cancel). The
  /// incremental insertion loop polls it and throws dtfe::Error on expiry.
  const Deadline* deadline = nullptr;
};

class Triangulation {
 public:
  static constexpr VertexId kInfinite = -1;
  static constexpr CellId kNoCell = -1;

  struct Cell {
    std::array<VertexId, 4> v;
    std::array<CellId, 4> n;
  };

  using Options = TriangulationOptions;

  /// Build the Delaunay triangulation of `points`. Requires at least 4
  /// affinely independent points; throws dtfe::Error otherwise.
  explicit Triangulation(std::span<const Vec3> points, Options opt = {});

  // --- basic accessors -----------------------------------------------------

  std::size_t num_vertices() const { return points_.size(); }
  const Vec3& point(VertexId v) const { return points_[static_cast<std::size_t>(v)]; }
  std::span<const Vec3> points() const { return points_; }

  /// Representative vertex for duplicated input points (identity otherwise).
  VertexId duplicate_of(VertexId v) const { return duplicate_of_[static_cast<std::size_t>(v)]; }
  /// True if this input index was a duplicate of an earlier point.
  bool is_duplicate(VertexId v) const { return duplicate_of_[static_cast<std::size_t>(v)] != v; }
  std::size_t num_unique_vertices() const { return num_unique_; }

  std::size_t num_cells() const { return live_cells_; }
  const Cell& cell(CellId c) const { return cells_[static_cast<std::size_t>(c)]; }
  bool cell_alive(CellId c) const { return cells_[static_cast<std::size_t>(c)].v[0] != kDead; }
  bool is_infinite(CellId c) const {
    const Cell& t = cell(c);
    return t.v[0] == kInfinite || t.v[1] == kInfinite || t.v[2] == kInfinite ||
           t.v[3] == kInfinite;
  }
  std::size_t cell_storage_size() const { return cells_.size(); }
  /// Container-growth events (capacity changes of the cell store and the
  /// insertion scratch buffers) observed while inserting points. Divided by
  /// the number of inserts this is the allocations-per-insert figure that
  /// bench/micro_delaunay reports for the scratch-reuse A/B.
  std::size_t alloc_events() const { return alloc_events_; }

  /// Slot (0..3) of vertex `v` in cell `c`; -1 if absent.
  int index_of(CellId c, VertexId v) const {
    const Cell& t = cell(c);
    for (int i = 0; i < 4; ++i)
      if (t.v[i] == v) return i;
    return -1;
  }
  /// Slot in neighbor n[f] that points back at cell c (hot in the marching
  /// kernel: kept inline).
  int mirror_index(CellId c, int f) const {
    const CellId nb = cell(c).n[f];
    const Cell& t = cell(nb);
    if (t.n[0] == c) return 0;
    if (t.n[1] == c) return 1;
    if (t.n[2] == c) return 2;
    if (t.n[3] == c) return 3;
    return -1;
  }

  /// Geometric positions of a finite cell's four vertices.
  std::array<Vec3, 4> cell_points(CellId c) const {
    const Cell& t = cell(c);
    return {point(t.v[0]), point(t.v[1]), point(t.v[2]), point(t.v[3])};
  }

  /// Any live cell incident to vertex v.
  CellId incident_cell(VertexId v) const { return incident_cell_[static_cast<std::size_t>(v)]; }

  /// All live finite cells (compact list, built on demand).
  std::vector<CellId> finite_cells() const;
  /// All live infinite cells — one per convex-hull facet.
  std::vector<CellId> infinite_cells() const;

  /// All live cells (finite and infinite) incident to vertex v, found by
  /// BFS over adjacency from incident_cell(v). Appends to `out` (cleared
  /// first). Thread-safe (caller-provided buffers).
  void incident_cells(VertexId v, std::vector<CellId>& out) const;
  /// Vertices joined to v by a Delaunay edge (excluding the infinite
  /// vertex). Appends to `out` (cleared first). Thread-safe.
  void vertex_neighbors(VertexId v, std::vector<VertexId>& out,
                        std::vector<CellId>& cell_scratch) const;

  // --- point location ------------------------------------------------------

  enum class LocateStatus {
    kInside,       ///< strictly inside a finite cell (or on its boundary)
    kOutsideHull,  ///< in the outside region of an infinite cell
    kOnVertex,     ///< coincides exactly with an existing vertex
  };
  struct LocateResult {
    CellId cell = kNoCell;
    LocateStatus status = LocateStatus::kInside;
    VertexId vertex = kInfinite;  ///< set for kOnVertex
  };

  /// Remembering stochastic walk from `hint` (or an internal default).
  /// Stateful convenience wrapper: remembers the last located cell. NOT
  /// thread-safe; concurrent callers must use locate_from().
  LocateResult locate(const Vec3& p, CellId hint = kNoCell) const;

  /// Pure walk: all state (hint + RNG for stochastic face order) is caller
  /// provided, making this safe to call concurrently from many threads.
  LocateResult locate_from(const Vec3& p, CellId hint,
                           std::uint64_t& rng_state) const;

  // --- validation (tests & debug) -------------------------------------------

  /// Exhaustively checks structural invariants: adjacency symmetry, shared
  /// facets, positive orientation of finite cells, single infinite vertex per
  /// infinite cell, hull facet orientation, and — if `check_delaunay` — the
  /// empty-circumsphere property of every finite cell against every vertex
  /// (O(cells·vertices): tests only). Throws dtfe::Error on violation.
  void validate(bool check_delaunay) const;

  /// Local Delaunay check: every finite facet is locally Delaunay (the
  /// opposite vertex of the neighbor is not strictly inside the cell's
  /// circumsphere). O(cells).
  void validate_local_delaunay() const;

 private:
  static constexpr VertexId kDead = -2;

  friend class TriangulationBuilder;

  /// Boundary facet of the conflict cavity, already reversed to face it.
  struct BoundaryFacet {
    VertexId a, b, d;  // new cell base
    CellId outside;    // surviving neighbor
    int outside_slot;  // slot in `outside` that pointed at the dead cell
  };
  /// Open cavity edge awaiting its partner during retriangulation.
  struct CavityEdge {
    std::uint64_t key;  // unordered vertex pair
    CellId cell;
    std::int32_t slot;
  };

  bool cell_in_conflict(CellId c, const Vec3& p) const;
  VertexId insert(VertexId vid, CellId hint, CellId* last_created);
  CellId new_cell();
  void free_cell(CellId c);
  void init_first_cell(VertexId a, VertexId b, VertexId c, VertexId d);

  std::vector<Vec3> points_;
  std::vector<VertexId> duplicate_of_;
  std::vector<CellId> incident_cell_;
  std::vector<Cell> cells_;
  std::vector<CellId> free_list_;
  std::size_t live_cells_ = 0;
  std::size_t cells_allocated_ = 0;  ///< new_cell() calls, incl. slot reuse
  std::size_t num_unique_ = 0;
  std::size_t alloc_events_ = 0;  ///< container growth during insertion
  bool reuse_insert_scratch_ = true;

  // scratch buffers reused across insertions
  mutable std::vector<CellId> conflict_cells_;
  mutable std::vector<std::int8_t> cell_mark_;  // 0 unknown, 1 conflict, 2 boundary-safe
  std::vector<CellId> visited_;          // every marked id, for cleanup
  std::vector<BoundaryFacet> boundary_;  // cavity surface of the current insert
  std::vector<CavityEdge> cavity_edges_;  // open edges during retriangulation
  mutable std::uint64_t walk_rng_ = 0x9e3779b97f4a7c15ull;
  mutable CellId hint_cell_ = kNoCell;
};

}  // namespace dtfe
