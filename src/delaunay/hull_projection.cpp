#include "delaunay/hull_projection.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "geometry/predicates.h"
#include "util/error.h"

namespace dtfe {

HullProjection::HullProjection(const Triangulation& tri,
                               std::size_t grid_resolution) {
  // A hull facet is the face opposite the infinite vertex of an infinite
  // cell; its stored winding points INTO the hull. The facet faces downward
  // (outward normal with n·ẑ < 0, paper Eq. 14) exactly when its stored
  // winding projects counterclockwise — an exact orient2d test rather than a
  // floating-point normal comparison.
  for (const CellId ic : tri.infinite_cells()) {
    const int inf_slot = tri.index_of(ic, Triangulation::kInfinite);
    const auto& t = tri.cell(ic);
    const Vec3& a3 = tri.point(t.v[kTetraFace[inf_slot][0]]);
    const Vec3& b3 = tri.point(t.v[kTetraFace[inf_slot][1]]);
    const Vec3& c3 = tri.point(t.v[kTetraFace[inf_slot][2]]);
    const Vec2 a{a3.x, a3.y}, b{b3.x, b3.y}, c{c3.x, c3.y};
    if (orient2d(a, b, c) <= 0.0) continue;  // upward or vertical facet
    Facet f;
    f.a = a;
    f.b = b;
    f.c = c;
    f.cell = t.n[inf_slot];  // the finite tetra behind the hull facet
    f.entry_face = tri.mirror_index(ic, inf_slot);
    facets_.push_back(f);
    source_cell_.push_back(ic);
  }
  DTFE_CHECK_MSG(!facets_.empty(), "triangulation has no downward hull facets");
  build_adjacency(tri);

  lo_ = {facets_[0].a.x, facets_[0].a.y};
  hi_ = lo_;
  for (const Facet& f : facets_) {
    for (const Vec2& p : {f.a, f.b, f.c}) {
      lo_.x = std::min(lo_.x, p.x);
      lo_.y = std::min(lo_.y, p.y);
      hi_.x = std::max(hi_.x, p.x);
      hi_.y = std::max(hi_.y, p.y);
    }
  }

  res_ = grid_resolution ? grid_resolution
                         : static_cast<std::size_t>(std::ceil(
                               std::sqrt(static_cast<double>(facets_.size()))));
  res_ = std::clamp<std::size_t>(res_, 1, 2048);
  buckets_.assign(res_ * res_, {});
  const double ex = std::max(hi_.x - lo_.x, 1e-300);
  const double ey = std::max(hi_.y - lo_.y, 1e-300);
  inv_cell_x_ = static_cast<double>(res_) / ex;
  inv_cell_y_ = static_cast<double>(res_) / ey;

  auto bucket_coord = [&](double v, double lo, double inv) {
    auto c = static_cast<std::ptrdiff_t>((v - lo) * inv);
    return static_cast<std::size_t>(
        std::clamp<std::ptrdiff_t>(c, 0, static_cast<std::ptrdiff_t>(res_) - 1));
  };

  for (std::size_t i = 0; i < facets_.size(); ++i) {
    const Facet& f = facets_[i];
    const double fxlo = std::min({f.a.x, f.b.x, f.c.x});
    const double fxhi = std::max({f.a.x, f.b.x, f.c.x});
    const double fylo = std::min({f.a.y, f.b.y, f.c.y});
    const double fyhi = std::max({f.a.y, f.b.y, f.c.y});
    const std::size_t bx0 = bucket_coord(fxlo, lo_.x, inv_cell_x_);
    const std::size_t bx1 = bucket_coord(fxhi, lo_.x, inv_cell_x_);
    const std::size_t by0 = bucket_coord(fylo, lo_.y, inv_cell_y_);
    const std::size_t by1 = bucket_coord(fyhi, lo_.y, inv_cell_y_);
    for (std::size_t by = by0; by <= by1; ++by)
      for (std::size_t bx = bx0; bx <= bx1; ++bx)
        buckets_[by * res_ + bx].push_back(static_cast<std::uint32_t>(i));
  }
}

void HullProjection::build_adjacency(const Triangulation& tri) {
  // Facet adjacency is the 3D infinite-cell adjacency projected down: the
  // neighbor across the edge opposite projected vertex k is the infinite
  // cell reached by crossing the face of the source cell opposite that
  // vertex (it keeps the other two facet vertices).
  std::unordered_map<CellId, std::ptrdiff_t> facet_of;
  for (std::size_t i = 0; i < source_cell_.size(); ++i)
    facet_of[source_cell_[i]] = static_cast<std::ptrdiff_t>(i);

  for (std::size_t i = 0; i < facets_.size(); ++i) {
    const CellId ic = source_cell_[i];
    const int inf_slot = tri.index_of(ic, Triangulation::kInfinite);
    for (int k = 0; k < 3; ++k) {
      const VertexId vk = tri.cell(ic).v[kTetraFace[inf_slot][k]];
      const CellId nb = tri.cell(ic).n[tri.index_of(ic, vk)];
      const auto it = facet_of.find(nb);
      facets_[i].neighbor[k] = it == facet_of.end() ? -1 : it->second;
    }
  }
}

HullProjection::Entry HullProjection::first_entry_walk(
    const Vec2& xi, std::ptrdiff_t& facet_hint,
    std::uint64_t& rng_state) const {
  if (rng_state == 0) rng_state = 0x9e3779b97f4a7c15ull;
  auto next_rand = [&rng_state] {
    rng_state ^= rng_state << 13;
    rng_state ^= rng_state >> 7;
    rng_state ^= rng_state << 17;
    return rng_state;
  };
  std::ptrdiff_t f = facet_hint;
  if (f < 0 || f >= static_cast<std::ptrdiff_t>(facets_.size()))
    f = static_cast<std::ptrdiff_t>(next_rand() % facets_.size());

  const std::size_t max_steps = 8 * facets_.size() + 32;
  for (std::size_t step = 0; step < max_steps; ++step) {
    const Facet& fac = facets_[static_cast<std::size_t>(f)];
    const Vec2 v[3] = {fac.a, fac.b, fac.c};
    const auto r = static_cast<int>(next_rand() % 3);
    bool moved = false;
    for (int j = 0; j < 3; ++j) {
      const int k = (j + r) % 3;  // edge opposite vertex k: (v[k+1], v[k+2])
      const Vec2& u = v[(k + 1) % 3];
      const Vec2& w = v[(k + 2) % 3];
      if (orient2d(u, w, xi) < 0.0) {
        const std::ptrdiff_t nb = fac.neighbor[k];
        if (nb < 0) {
          // Left through a silhouette-boundary edge: ξ is outside (the
          // silhouette is convex).
          facet_hint = f;
          return {Triangulation::kNoCell, -1};
        }
        f = nb;
        moved = true;
        break;
      }
    }
    if (!moved) {
      facet_hint = f;
      return {fac.cell, fac.entry_face};
    }
  }
  throw Error("hull projection walk failed to terminate");
}

bool HullProjection::facet_contains(const Facet& f, const Vec2& p) const {
  return orient2d(f.a, f.b, p) >= 0.0 && orient2d(f.b, f.c, p) >= 0.0 &&
         orient2d(f.c, f.a, p) >= 0.0;
}

CellId HullProjection::first_cell(const Vec2& xi) const {
  return first_entry(xi).cell;
}

HullProjection::Entry HullProjection::first_entry(const Vec2& xi) const {
  if (xi.x < lo_.x || xi.x > hi_.x || xi.y < lo_.y || xi.y > hi_.y)
    return {Triangulation::kNoCell, -1};
  auto coord = [&](double v, double lo, double inv) {
    auto c = static_cast<std::ptrdiff_t>((v - lo) * inv);
    return static_cast<std::size_t>(
        std::clamp<std::ptrdiff_t>(c, 0, static_cast<std::ptrdiff_t>(res_) - 1));
  };
  const std::size_t bx = coord(xi.x, lo_.x, inv_cell_x_);
  const std::size_t by = coord(xi.y, lo_.y, inv_cell_y_);
  for (const std::uint32_t i : buckets_[by * res_ + bx])
    if (facet_contains(facets_[i], xi))
      return {facets_[i].cell, facets_[i].entry_face};
  return {Triangulation::kNoCell, -1};
}

}  // namespace dtfe
