// Exact Voronoi cell volumes from the Delaunay dual.
//
// The Voronoi cell of vertex v is bounded by one convex polygonal facet per
// Delaunay edge (v,u): the polygon whose corners are the circumcenters of
// the cells around that edge, lying in the bisector plane of (v,u). The cell
// volume follows from the divergence theorem over those facets. Vertices on
// the convex hull have unbounded cells and are reported as infinity.
//
// This is the density normalization the zero-order (TESS/DENSE-style)
// estimator needs: ρ(x_i) = m_i / V_vor(x_i) integrates to the total mass
// exactly, unlike the star-volume approximation.
#pragma once

#include <vector>

#include "delaunay/triangulation.h"

namespace dtfe {

/// Per-vertex Voronoi cell volumes; hull vertices get
/// std::numeric_limits<double>::infinity(). Duplicated input points alias
/// their representative.
std::vector<double> voronoi_volumes(const Triangulation& tri);

/// The cells around the Delaunay edge (v,u), in rotation order. Returns
/// false if the ring touches an infinite cell (edge on the convex hull).
/// Exposed for tests.
bool edge_cell_ring(const Triangulation& tri, VertexId v, VertexId u,
                    std::vector<CellId>& ring);

}  // namespace dtfe
