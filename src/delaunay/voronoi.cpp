#include "delaunay/voronoi.h"

#include <cmath>
#include <limits>

#include "geometry/tetra_math.h"
#include "util/error.h"

namespace dtfe {

namespace {
// Ring walk from a known incident start cell (the hot path: callers that
// already hold v's incident-cell list avoid an O(degree²) rediscovery).
bool edge_cell_ring_from(const Triangulation& tri, VertexId v, VertexId u,
                         CellId start, std::vector<CellId>& ring) {
  ring.clear();

  // Rotate around the edge: in a cell with "other" vertices {a, b}, crossing
  // the face opposite a leaves through the shared face (v,u,b); continuing
  // the rotation then crosses the face opposite b in the next cell.
  VertexId pivot = Triangulation::kInfinite;
  {
    const auto& t = tri.cell(start);
    for (int s = 0; s < 4; ++s)
      if (t.v[s] != v && t.v[s] != u) {
        pivot = t.v[s];
        break;
      }
  }

  CellId c = start;
  for (int guard = 0; guard < 1024; ++guard) {
    ring.push_back(c);
    if (tri.is_infinite(c)) return false;  // hull edge: unbounded dual facet
    const auto& t = tri.cell(c);
    VertexId shared3 = Triangulation::kInfinite;
    for (int s = 0; s < 4; ++s)
      if (t.v[s] != v && t.v[s] != u && t.v[s] != pivot) {
        shared3 = t.v[s];
        break;
      }
    const CellId next = t.n[tri.index_of(c, pivot)];
    pivot = shared3;
    c = next;
    if (c == start) return true;
  }
  throw Error("edge_cell_ring failed to close");
}
}  // namespace

bool edge_cell_ring(const Triangulation& tri, VertexId v, VertexId u,
                    std::vector<CellId>& ring) {
  CellId start = Triangulation::kNoCell;
  {
    std::vector<CellId> incident;
    tri.incident_cells(v, incident);
    for (const CellId c : incident)
      if (tri.index_of(c, u) >= 0) {
        start = c;
        break;
      }
  }
  DTFE_CHECK_MSG(start != Triangulation::kNoCell,
                 "edge_cell_ring: (v,u) is not a Delaunay edge");
  return edge_cell_ring_from(tri, v, u, start, ring);
}

std::vector<double> voronoi_volumes(const Triangulation& tri) {
  const std::size_t nv = tri.num_vertices();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> vol(nv, 0.0);

  // Circumcenters of all finite cells, cached.
  std::vector<Vec3> center(tri.cell_storage_size());
  for (std::size_t i = 0; i < tri.cell_storage_size(); ++i) {
    const auto c = static_cast<CellId>(i);
    if (!tri.cell_alive(c) || tri.is_infinite(c)) continue;
    const auto p = tri.cell_points(c);
    center[i] = tetra_circumcenter(p[0], p[1], p[2], p[3]);
  }

  std::vector<VertexId> nbrs;
  std::vector<CellId> scratch, ring;
  for (std::size_t vi = 0; vi < nv; ++vi) {
    const auto v = static_cast<VertexId>(vi);
    if (tri.is_duplicate(v)) continue;
    const Vec3 pv = tri.point(v);
    tri.vertex_neighbors(v, nbrs, scratch);

    double volume = 0.0;
    bool bounded = true;
    for (const VertexId u : nbrs) {
      // `scratch` still holds v's incident cells from vertex_neighbors():
      // pick the ring start from it instead of re-walking v's star.
      CellId start = Triangulation::kNoCell;
      for (const CellId c : scratch)
        if (tri.index_of(c, u) >= 0) {
          start = c;
          break;
        }
      DTFE_CHECK(start != Triangulation::kNoCell);
      if (!edge_cell_ring_from(tri, v, u, start, ring)) {
        bounded = false;
        break;
      }
      // Dual facet polygon: ring circumcenters in the bisector plane of
      // (v,u). Work relative to v for conditioning.
      Vec3 area2{0, 0, 0};  // twice the vector area
      const Vec3 c0 = center[static_cast<std::size_t>(ring[0])] - pv;
      for (std::size_t k = 1; k + 1 < ring.size(); ++k) {
        const Vec3 a = center[static_cast<std::size_t>(ring[k])] - pv;
        const Vec3 b = center[static_cast<std::size_t>(ring[k + 1])] - pv;
        area2 += (a - c0).cross(b - c0);
      }
      const Vec3 d = tri.point(u) - pv;
      const double dn = d.norm();
      if (dn == 0.0) continue;
      const Vec3 n_out = d / dn;
      // Divergence theorem: V += (1/3) · Area · (n̂_out · x_plane); the
      // bisector midpoint d/2 lies on the facet plane, so n̂·x = |d|/2.
      const double area = 0.5 * std::abs(area2.dot(n_out));
      volume += (1.0 / 3.0) * area * (0.5 * dn);
    }
    vol[vi] = bounded ? volume : kInf;
  }

  for (std::size_t vi = 0; vi < nv; ++vi)
    vol[vi] = vol[static_cast<std::size_t>(tri.duplicate_of(static_cast<VertexId>(vi)))];
  return vol;
}

}  // namespace dtfe
