#include "delaunay/triangulation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "geometry/aabb.h"
#include "geometry/predicates.h"
#include "geometry/tetra_math.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/morton.h"

namespace dtfe {

namespace {

struct DelaunayMetrics {
  obs::MetricId constructions = obs::counter("dtfe.delaunay.constructions");
  obs::MetricId points_inserted = obs::counter("dtfe.delaunay.points_inserted");
  obs::MetricId duplicates = obs::counter("dtfe.delaunay.duplicate_points");
  obs::MetricId cells_created = obs::counter("dtfe.delaunay.cells_created");
  obs::MetricId conflict_cells = obs::counter("dtfe.delaunay.conflict_cells");
  obs::MetricId walk_steps = obs::counter("dtfe.delaunay.walk_steps");
  obs::MetricId locates = obs::counter("dtfe.delaunay.locates");
};

const DelaunayMetrics& delaunay_metrics() {
  static const DelaunayMetrics m;
  return m;
}

// Exact 3D collinearity: all three coordinate-plane projections collinear.
bool collinear_exact(const Vec3& a, const Vec3& b, const Vec3& c) {
  return orient2d({a.x, a.y}, {b.x, b.y}, {c.x, c.y}) == 0.0 &&
         orient2d({a.x, a.z}, {b.x, b.z}, {c.x, c.z}) == 0.0 &&
         orient2d({a.y, a.z}, {b.y, b.z}, {c.y, c.z}) == 0.0;
}

std::uint64_t next_rand(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

bool lex_less(const Vec3& a, const Vec3& b) {
  if (a.x != b.x) return a.x < b.x;
  if (a.y != b.y) return a.y < b.y;
  return a.z < b.z;
}

// Symbolically perturbed insphere conflict (Devillers–Teillaud, the scheme
// CGAL's Delaunay_triangulation_3 uses): when q is exactly on the
// circumsphere of the positively oriented cell (p0..p3), each point's lifted
// coordinate is perturbed by an infinitesimal ε whose magnitude decreases
// with the point's lexicographic (x,y,z) rank. The sign of the perturbed
// determinant is the first nonzero cofactor — an orient3d with the
// top-ranked point's row replaced by q. If the top-ranked point is q itself,
// q is pushed outside: no conflict. This makes every cavity well-defined and
// star-shaped for arbitrarily degenerate inputs.
bool insphere_conflict_perturbed(const Vec3& p0, const Vec3& p1,
                                 const Vec3& p2, const Vec3& p3,
                                 const Vec3& q) {
  const double s = insphere(p0, p1, p2, p3, q);
  if (s != 0.0) return s > 0.0;
  const Vec3* pts[5] = {&p0, &p1, &p2, &p3, &q};
  std::sort(pts, pts + 5,
            [](const Vec3* a, const Vec3* b) { return lex_less(*a, *b); });
  for (int i = 4; i >= 0; --i) {
    const Vec3* top = pts[i];
    if (top == &q) return false;
    double o;
    if (top == &p3)
      o = orient3d(p0, p1, p2, q);
    else if (top == &p2)
      o = orient3d(p0, p1, q, p3);
    else if (top == &p1)
      o = orient3d(p0, q, p2, p3);
    else
      o = orient3d(q, p1, p2, p3);
    if (o != 0.0) return o > 0.0;
  }
  return false;  // unreachable: a valid cell is not coplanar
}

// Unordered pair of vertex ids as a hashable 64-bit key (ids fit in 32 bits
// even with the -1 infinite sentinel, via a +2 bias).
std::uint64_t edge_key(VertexId u, VertexId v) {
  const auto a = static_cast<std::uint64_t>(static_cast<std::uint32_t>(std::min(u, v) + 2));
  const auto b = static_cast<std::uint64_t>(static_cast<std::uint32_t>(std::max(u, v) + 2));
  return (a << 32) | b;
}

}  // namespace

Triangulation::Triangulation(std::span<const Vec3> points, Options opt)
    : points_(points.begin(), points.end()) {
  obs::TraceSpan span("delaunay.triangulate", "delaunay");
  const std::size_t n = points_.size();
  span.add_arg("points", static_cast<double>(n));
  DTFE_CHECK_MSG(n >= 4, "Delaunay triangulation needs at least 4 points");
  duplicate_of_.resize(n);
  std::iota(duplicate_of_.begin(), duplicate_of_.end(), VertexId{0});
  incident_cell_.assign(n, kNoCell);

  // Insertion order: Morton over the bounding box (BRIO-style locality).
  // Sorting packed (key, index) pairs keeps the comparator cache-local; the
  // index tie-break makes a plain std::sort reproduce the stable order
  // bit-for-bit, so the insertion sequence is unchanged.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  if (opt.spatial_sort) {
    Aabb box = Aabb::of(points_);
    const double ext = std::max(box.max_extent(), 1e-300);
    std::vector<std::pair<std::uint64_t, std::uint32_t>> keyed(n);
    for (std::size_t i = 0; i < n; ++i)
      keyed[i] = {morton_key(points_[i].x, points_[i].y, points_[i].z,
                             std::min({box.lo.x, box.lo.y, box.lo.z}), 1.0 / ext),
                  static_cast<std::uint32_t>(i)};
    std::sort(keyed.begin(), keyed.end());
    for (std::size_t i = 0; i < n; ++i)
      order[i] = static_cast<VertexId>(keyed[i].second);
  }

  // First simplex: the first 4 affinely independent points in `order`.
  std::size_t i0 = 0;
  std::size_t i1 = i0 + 1;
  const auto P = [&](std::size_t k) -> const Vec3& {
    return points_[static_cast<std::size_t>(order[k])];
  };
  while (i1 < n && P(i1) == P(i0)) ++i1;
  DTFE_CHECK_MSG(i1 < n, "all points coincide");
  std::size_t i2 = i1 + 1;
  while (i2 < n && collinear_exact(P(i0), P(i1), P(i2))) ++i2;
  DTFE_CHECK_MSG(i2 < n, "all points are collinear");
  std::size_t i3 = i2 + 1;
  while (i3 < n && orient3d(P(i0), P(i1), P(i2), P(i3)) == 0.0) ++i3;
  DTFE_CHECK_MSG(i3 < n, "all points are coplanar");

  VertexId a = order[i0], b = order[i1], c = order[i2], d = order[i3];
  if (orient3d(points_[static_cast<std::size_t>(a)], points_[static_cast<std::size_t>(b)],
               points_[static_cast<std::size_t>(c)], points_[static_cast<std::size_t>(d)]) < 0.0)
    std::swap(c, d);

  // Size the cell store up front: a 3D Delaunay triangulation of n points has
  // ~6.7n finite cells plus hull cells, and the free list recycles transient
  // cavity churn, so 7n slots covers the whole build without reallocating the
  // (hot) cell array mid-insertion.
  reuse_insert_scratch_ = opt.reuse_insert_scratch;
  cells_.reserve(7 * n + 64);
  if (reuse_insert_scratch_) {
    conflict_cells_.reserve(64);
    visited_.reserve(128);
    boundary_.reserve(64);
    cavity_edges_.reserve(192);
  }

  init_first_cell(a, b, c, d);
  num_unique_ = 4;

  // Insert the rest in spatial order with a remembering hint.
  CellId hint = hint_cell_;
  for (std::size_t k = 0; k < n; ++k) {
    if (k == i0 || k == i1 || k == i2 || k == i3) continue;
    // Cooperative watchdog: a pathological cube can make incremental
    // insertion the runaway phase, so poll the deadline at coarse intervals.
    // Every 64 insertions keeps the clock read under ~0.1% of insertion cost
    // while bounding cancellation latency even under sanitizer slowdowns.
    if (opt.deadline && (k & 63) == 0 && opt.deadline->expired())
      throw Error("triangulation cancelled: item deadline exceeded");
    CellId created = kNoCell;
    insert(order[k], hint, &created);
    if (created != kNoCell) hint = created;
  }
  hint_cell_ = hint;

  if (obs::metrics_enabled()) {
    const DelaunayMetrics& m = delaunay_metrics();
    obs::add(m.constructions);
    obs::add(m.points_inserted, static_cast<double>(num_unique_));
    obs::add(m.duplicates, static_cast<double>(n - num_unique_));
    obs::add(m.cells_created, static_cast<double>(cells_allocated_));
  }
  span.add_arg("cells", static_cast<double>(live_cells_));

  if (opt.verify) validate(/*check_delaunay=*/num_unique_ <= 600);
}

void Triangulation::init_first_cell(VertexId a, VertexId b, VertexId c,
                                    VertexId d) {
  cells_.reserve(64);
  const CellId t0 = new_cell();
  cells_[static_cast<std::size_t>(t0)].v = {a, b, c, d};

  // One infinite cell per face: (facet in outward order) + infinity at slot 3.
  std::array<CellId, 4> inf_cells;
  for (int f = 0; f < 4; ++f) {
    const CellId ic = new_cell();
    inf_cells[static_cast<std::size_t>(f)] = ic;
    Cell& t = cells_[static_cast<std::size_t>(ic)];
    const Cell& base = cells_[static_cast<std::size_t>(t0)];
    t.v = {base.v[kTetraFace[f][0]], base.v[kTetraFace[f][1]],
           base.v[kTetraFace[f][2]], kInfinite};
    t.n[3] = t0;
    cells_[static_cast<std::size_t>(t0)].n[f] = ic;
  }

  // Wire infinite-infinite adjacency by matching shared faces (brute force is
  // fine: 4 cells).
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) {
      if (i == j) continue;
      const CellId ci = inf_cells[static_cast<std::size_t>(i)];
      const CellId cj = inf_cells[static_cast<std::size_t>(j)];
      const Cell& ti = cells_[static_cast<std::size_t>(ci)];
      const Cell& tj = cells_[static_cast<std::size_t>(cj)];
      // Face of ci whose vertex set equals tj's vertex set minus one.
      for (int f = 0; f < 4; ++f) {
        const VertexId fa = ti.v[kTetraFace[f][0]];
        const VertexId fb = ti.v[kTetraFace[f][1]];
        const VertexId fc = ti.v[kTetraFace[f][2]];
        int shared = 0;
        for (int s = 0; s < 4; ++s)
          if (tj.v[s] == fa || tj.v[s] == fb || tj.v[s] == fc) ++shared;
        if (shared == 3 && f != 3) {
          cells_[static_cast<std::size_t>(ci)].n[f] = cj;
        }
      }
    }

  for (int s = 0; s < 4; ++s) {
    const VertexId vv = cells_[static_cast<std::size_t>(t0)].v[s];
    incident_cell_[static_cast<std::size_t>(vv)] = t0;
  }
  hint_cell_ = t0;
}

CellId Triangulation::new_cell() {
  CellId c;
  if (!free_list_.empty()) {
    c = free_list_.back();
    free_list_.pop_back();
  } else {
    c = static_cast<CellId>(cells_.size());
    cells_.push_back({});
  }
  Cell& t = cells_[static_cast<std::size_t>(c)];
  t.v = {kInfinite, kInfinite, kInfinite, kInfinite};
  t.n = {kNoCell, kNoCell, kNoCell, kNoCell};
  ++live_cells_;
  ++cells_allocated_;
  return c;
}

void Triangulation::free_cell(CellId c) {
  Cell& t = cells_[static_cast<std::size_t>(c)];
  t.v = {kDead, kDead, kDead, kDead};
  t.n = {kNoCell, kNoCell, kNoCell, kNoCell};
  free_list_.push_back(c);
  --live_cells_;
}

bool Triangulation::cell_in_conflict(CellId c, const Vec3& p) const {
  const Cell& t = cell(c);
  int inf_slot = -1;
  for (int i = 0; i < 4; ++i)
    if (t.v[i] == kInfinite) {
      inf_slot = i;
      break;
    }
  if (inf_slot < 0) {
    const auto pts = cell_points(c);
    return insphere_conflict_perturbed(pts[0], pts[1], pts[2], pts[3], p);
  }
  // Infinite cell: its finite facet (face opposite infinity) winds INTO the
  // hull, so "outside the hull" is the negative side. When p lies exactly in
  // the facet plane, DELEGATE the decision to the finite neighbor across the
  // hull facet: geometrically "p inside the facet circumdisk ⇔ p inside the
  // neighbor's circumball" for coplanar p, and the neighbor's symbolically
  // perturbed insphere then also resolves the on-circle tie, keeping the two
  // sides of the facet consistent (no flat cells can be created).
  const Vec3& a = point(t.v[kTetraFace[inf_slot][0]]);
  const Vec3& b = point(t.v[kTetraFace[inf_slot][1]]);
  const Vec3& d = point(t.v[kTetraFace[inf_slot][2]]);
  const double o = orient3d(a, b, d, p);
  if (o < 0.0) return true;
  if (o > 0.0) return false;
  const CellId fin = t.n[inf_slot];
  DTFE_DCHECK(!is_infinite(fin));
  const auto np = cell_points(fin);
  return insphere_conflict_perturbed(np[0], np[1], np[2], np[3], p);
}

Triangulation::LocateResult Triangulation::locate(const Vec3& p,
                                                  CellId hint) const {
  const LocateResult r =
      locate_from(p, hint == kNoCell ? hint_cell_ : hint, walk_rng_);
  hint_cell_ = r.cell;
  return r;
}

Triangulation::LocateResult Triangulation::locate_from(
    const Vec3& p, CellId hint, std::uint64_t& rng_state) const {
  CellId c = hint;
  if (c == kNoCell || !cell_alive(c)) {
    for (std::size_t i = 0; i < cells_.size(); ++i)
      if (cells_[i].v[0] != kDead) {
        c = static_cast<CellId>(i);
        break;
      }
  }
  DTFE_CHECK_MSG(c != kNoCell, "locate on empty triangulation");
  if (rng_state == 0) rng_state = 0x9e3779b97f4a7c15ull;

  // If the hint is infinite, step to its finite neighbor to start the walk.
  if (is_infinite(c)) {
    const int inf_slot = index_of(c, kInfinite);
    c = cell(c).n[inf_slot];
  }

  // Slot of the face we entered the current cell through, or -1. Its winding
  // is the reverse of the face we just crossed (shared facet, opposite
  // orientation), so p is strictly on its negative side — no need to re-test.
  int entry_face = -1;

  // Walk-length accounting (dtfe.delaunay.walk_steps / .locates): emitted on
  // every exit path, including the failure throw, via the destructor.
  struct WalkCount {
    std::size_t steps = 0;
    ~WalkCount() {
      if (obs::metrics_enabled()) {
        const DelaunayMetrics& m = delaunay_metrics();
        obs::add(m.locates);
        obs::add(m.walk_steps, static_cast<double>(steps));
      }
    }
  } walk;

  const std::size_t max_steps = 8 * cells_.size() + 64;
  for (std::size_t step = 0; step < max_steps; ++step) {
    walk.steps = step + 1;
    if (is_infinite(c)) {
      return {c, LocateStatus::kOutsideHull, kInfinite};
    }
    const Cell& t = cell(c);
    const auto pts = cell_points(c);
    const auto r = static_cast<int>(next_rand(rng_state) & 3);
    bool moved = false;
    for (int k = 0; k < 4; ++k) {
      const int f = (k + r) & 3;
      // Skipping the entry face drops ~1/4 of the orient3d calls while
      // leaving the stochastic face order, the chosen exit face, and the
      // walk_steps metric bitwise unchanged (the skipped test could only
      // ever have answered "negative side").
      if (f == entry_face) continue;
      const double o = orient3d(pts[kTetraFace[f][0]], pts[kTetraFace[f][1]],
                                pts[kTetraFace[f][2]], p);
      if (o > 0.0) {
        entry_face = mirror_index(c, f);
        c = t.n[f];
        moved = true;
        break;
      }
    }
    if (!moved) {
      for (int i = 0; i < 4; ++i)
        if (pts[static_cast<std::size_t>(i)] == p)
          return {c, LocateStatus::kOnVertex, t.v[i]};
      return {c, LocateStatus::kInside, kInfinite};
    }
  }
  throw Error("point location walk failed to terminate");
}

VertexId Triangulation::insert(VertexId vid, CellId hint, CellId* last_created) {
  const Vec3 p = points_[static_cast<std::size_t>(vid)];
  const LocateResult loc = locate(p, hint);
  if (loc.status == LocateStatus::kOnVertex) {
    duplicate_of_[static_cast<std::size_t>(vid)] = loc.vertex;
    return loc.vertex;
  }
  ++num_unique_;

  // Scratch selection: the persistent members when reuse is on (fast path),
  // fresh locals otherwise — the allocate-per-insert behavior kept for the
  // scratch-reuse A/B in bench/micro_delaunay.
  std::vector<CellId> local_visited;
  std::vector<BoundaryFacet> local_boundary;
  std::vector<CavityEdge> local_edges;
  std::vector<CellId>& visited = reuse_insert_scratch_ ? visited_ : local_visited;
  std::vector<BoundaryFacet>& boundary =
      reuse_insert_scratch_ ? boundary_ : local_boundary;
  std::vector<CavityEdge>& edges =
      reuse_insert_scratch_ ? cavity_edges_ : local_edges;
  visited.clear();
  boundary.clear();
  edges.clear();

  // Allocation accounting for bench/micro_delaunay: capacity snapshots of
  // every container this insert can grow.
  const std::size_t cap_cells = cells_.capacity();
  const std::size_t cap_free = free_list_.capacity();
  const std::size_t cap_mark = cell_mark_.capacity();
  const std::size_t cap_conflict = conflict_cells_.capacity();
  const std::size_t cap_visited = visited.capacity();
  const std::size_t cap_boundary = boundary.capacity();
  const std::size_t cap_edges = edges.capacity();

  // --- grow the conflict region by BFS from the located cell ---------------
  if (cell_mark_.size() < cells_.size() + 8) cell_mark_.resize(cells_.size() + 8, 0);
  conflict_cells_.clear();

  DTFE_DCHECK(cell_in_conflict(loc.cell, p));
  conflict_cells_.push_back(loc.cell);
  visited.push_back(loc.cell);
  cell_mark_[static_cast<std::size_t>(loc.cell)] = 1;

  // BFS over strictly conflicting cells; `bfs_from` processes queue entries
  // from the given index onward so repair-added cells get the same treatment.
  auto bfs_from = [&](std::size_t start) {
    for (std::size_t qi = start; qi < conflict_cells_.size(); ++qi) {
      const Cell t = cell(conflict_cells_[qi]);
      for (int f = 0; f < 4; ++f) {
        const CellId nb = t.n[f];
        if (cell_mark_[static_cast<std::size_t>(nb)] != 0) continue;
        if (cell_in_conflict(nb, p)) {
          cell_mark_[static_cast<std::size_t>(nb)] = 1;
          conflict_cells_.push_back(nb);
        } else {
          cell_mark_[static_cast<std::size_t>(nb)] = 2;
        }
        visited.push_back(nb);
      }
    }
  };
  bfs_from(0);
  if (obs::metrics_enabled())
    obs::add(delaunay_metrics().conflict_cells,
             static_cast<double>(conflict_cells_.size()));

  for (std::size_t qi = 0; qi < conflict_cells_.size(); ++qi) {
    const CellId cc = conflict_cells_[qi];
    const Cell t = cell(cc);  // copy: cells_ may reallocate later, not here
    for (int f = 0; f < 4; ++f) {
      const CellId nb = t.n[f];
      if (cell_mark_[static_cast<std::size_t>(nb)] == 1) continue;
      BoundaryFacet bf;
      bf.a = t.v[kTetraFace[f][0]];
      bf.b = t.v[kTetraFace[f][1]];
      bf.d = t.v[kTetraFace[f][2]];
      bf.outside = nb;
      bf.outside_slot = mirror_index(cc, f);
      boundary.push_back(bf);
    }
  }

  // --- retriangulate the cavity --------------------------------------------
  for (const CellId cc : conflict_cells_) free_cell(cc);

  // Create all cavity cells first, collecting the open apex-face edges; each
  // cavity edge is shared by exactly two boundary facets, so sorting the list
  // and pairing adjacent equal keys wires the same adjacency the per-insert
  // hash map used to — without its node allocations.
  CellId first_new = kNoCell;
  for (const BoundaryFacet& bf : boundary) {
    const CellId nc = new_cell();
    if (first_new == kNoCell) first_new = nc;
    Cell& t = cells_[static_cast<std::size_t>(nc)];
    // Reversed facet + apex keeps the cell positively oriented (see header).
    t.v = {bf.a, bf.d, bf.b, vid};
    t.n[3] = bf.outside;
    cells_[static_cast<std::size_t>(bf.outside)].n[bf.outside_slot] = nc;

    // Faces 0..2 contain the apex and one base edge each.
    for (std::int32_t k = 0; k < 3; ++k) {
      const VertexId u = t.v[static_cast<std::size_t>((k + 1) % 3)];
      const VertexId w = t.v[static_cast<std::size_t>((k + 2) % 3)];
      edges.push_back({edge_key(u, w), nc, k});
    }
    for (int s = 0; s < 4; ++s)
      if (t.v[s] != kInfinite)
        incident_cell_[static_cast<std::size_t>(t.v[s])] = nc;
  }
  std::sort(edges.begin(), edges.end(),
            [](const CavityEdge& x, const CavityEdge& y) {
              if (x.key != y.key) return x.key < y.key;
              if (x.cell != y.cell) return x.cell < y.cell;
              return x.slot < y.slot;
            });
  DTFE_CHECK_MSG((edges.size() & 1) == 0, "cavity boundary was not watertight");
  for (std::size_t e = 0; e < edges.size(); e += 2) {
    const CavityEdge& x = edges[e];
    const CavityEdge& y = edges[e + 1];
    DTFE_CHECK_MSG(x.key == y.key, "cavity boundary was not watertight");
    cells_[static_cast<std::size_t>(x.cell)].n[x.slot] = y.cell;
    cells_[static_cast<std::size_t>(y.cell)].n[y.slot] = x.cell;
  }

  for (const CellId cid : visited) cell_mark_[static_cast<std::size_t>(cid)] = 0;
  hint_cell_ = first_new;
  if (last_created) *last_created = first_new;

  alloc_events_ +=
      static_cast<std::size_t>(cells_.capacity() != cap_cells) +
      static_cast<std::size_t>(free_list_.capacity() != cap_free) +
      static_cast<std::size_t>(cell_mark_.capacity() != cap_mark) +
      static_cast<std::size_t>(conflict_cells_.capacity() != cap_conflict) +
      static_cast<std::size_t>(visited.capacity() != cap_visited) +
      static_cast<std::size_t>(boundary.capacity() != cap_boundary) +
      static_cast<std::size_t>(edges.capacity() != cap_edges);
  return vid;
}

std::vector<CellId> Triangulation::finite_cells() const {
  std::vector<CellId> out;
  out.reserve(live_cells_);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const CellId c = static_cast<CellId>(i);
    if (cell_alive(c) && !is_infinite(c)) out.push_back(c);
  }
  return out;
}

std::vector<CellId> Triangulation::infinite_cells() const {
  std::vector<CellId> out;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const CellId c = static_cast<CellId>(i);
    if (cell_alive(c) && is_infinite(c)) out.push_back(c);
  }
  return out;
}

void Triangulation::incident_cells(VertexId v, std::vector<CellId>& out) const {
  out.clear();
  const CellId seed = incident_cell(v);
  if (seed == kNoCell) return;
  DTFE_DCHECK(index_of(seed, v) >= 0);
  out.push_back(seed);
  // BFS; membership by linear scan — vertex degrees are small (~24).
  for (std::size_t qi = 0; qi < out.size(); ++qi) {
    const Cell& t = cell(out[qi]);
    for (int f = 0; f < 4; ++f) {
      if (t.v[f] == v) continue;  // crossing face f keeps v
      const CellId nb = t.n[f];
      if (index_of(nb, v) < 0) continue;
      bool seen = false;
      for (const CellId c : out)
        if (c == nb) {
          seen = true;
          break;
        }
      if (!seen) out.push_back(nb);
    }
  }
}

void Triangulation::vertex_neighbors(VertexId v, std::vector<VertexId>& out,
                                     std::vector<CellId>& cell_scratch) const {
  out.clear();
  incident_cells(v, cell_scratch);
  for (const CellId c : cell_scratch) {
    const Cell& t = cell(c);
    for (int s = 0; s < 4; ++s) {
      const VertexId u = t.v[s];
      if (u == v || u == kInfinite) continue;
      bool seen = false;
      for (const VertexId w : out)
        if (w == u) {
          seen = true;
          break;
        }
      if (!seen) out.push_back(u);
    }
  }
}

void Triangulation::validate(bool check_delaunay) const {
  std::size_t live = 0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const CellId c = static_cast<CellId>(i);
    if (!cell_alive(c)) continue;
    ++live;
    const Cell& t = cell(c);

    int inf_count = 0;
    for (int s = 0; s < 4; ++s) {
      if (t.v[s] == kInfinite) ++inf_count;
      for (int s2 = s + 1; s2 < 4; ++s2)
        DTFE_CHECK_MSG(t.v[s] != t.v[s2], "repeated vertex in cell " << c);
    }
    DTFE_CHECK_MSG(inf_count <= 1, "cell with multiple infinite vertices");

    // Adjacency symmetry & facet agreement.
    for (int f = 0; f < 4; ++f) {
      const CellId nb = t.n[f];
      DTFE_CHECK_MSG(nb != kNoCell && cell_alive(nb), "dangling neighbor");
      const int mf = mirror_index(c, f);
      DTFE_CHECK_MSG(mf >= 0, "asymmetric adjacency at cell " << c);
      // Shared facet: vertex sets must agree.
      for (int k = 0; k < 3; ++k) {
        const VertexId fv = t.v[kTetraFace[f][k]];
        DTFE_CHECK_MSG(index_of(nb, fv) >= 0, "facet vertex mismatch");
      }
    }

    if (inf_count == 0) {
      const auto pts = cell_points(c);
      DTFE_CHECK_MSG(orient3d(pts[0], pts[1], pts[2], pts[3]) > 0.0,
                     "finite cell " << c << " not positively oriented");
    } else {
      // Hull facet must wind into the hull: the finite neighbor's apex is on
      // the positive side of the reversed facet.
      const int inf_slot = index_of(c, kInfinite);
      const CellId fin = t.n[inf_slot];
      DTFE_CHECK_MSG(!is_infinite(fin), "infinite cell not facing a finite one");
      const Vec3& a = point(t.v[kTetraFace[inf_slot][0]]);
      const Vec3& b = point(t.v[kTetraFace[inf_slot][1]]);
      const Vec3& d = point(t.v[kTetraFace[inf_slot][2]]);
      const int mf = mirror_index(c, inf_slot);
      const Vec3& apex = point(cell(fin).v[mf]);
      DTFE_CHECK_MSG(orient3d(a, b, d, apex) > 0.0,
                     "hull facet of cell " << c << " winds outward");
    }
  }
  DTFE_CHECK_MSG(live == live_cells_, "live cell count mismatch");

  validate_local_delaunay();

  if (check_delaunay) {
    // Exhaustive empty-circumsphere check.
    for (const CellId c : finite_cells()) {
      const auto pts = cell_points(c);
      for (std::size_t vi = 0; vi < points_.size(); ++vi) {
        const auto v = static_cast<VertexId>(vi);
        if (is_duplicate(v)) continue;
        if (index_of(c, v) >= 0) continue;
        DTFE_CHECK_MSG(insphere(pts[0], pts[1], pts[2], pts[3], point(v)) <= 0.0,
                       "vertex " << v << " violates circumsphere of cell " << c);
      }
    }
  }
}

void Triangulation::validate_local_delaunay() const {
  for (const CellId c : finite_cells()) {
    const auto pts = cell_points(c);
    for (int f = 0; f < 4; ++f) {
      const CellId nb = cell(c).n[f];
      if (is_infinite(nb)) continue;
      const int mf = mirror_index(c, f);
      const VertexId w = cell(nb).v[mf];
      DTFE_CHECK_MSG(insphere(pts[0], pts[1], pts[2], pts[3], point(w)) <= 0.0,
                     "facet between " << c << " and " << nb
                                      << " is not locally Delaunay");
    }
  }
}

}  // namespace dtfe
