// One rank's message queue with MPI-style matching, shared by both Comm
// backends (thread runtime and socket transport).
//
// Semantics, identical for both transports:
//   * FIFO per (source, tag) match; kAnySource matches any deliverable
//     message in queue order.
//   * A message may carry a delivery delay (the fault plan's `delay`
//     action): it is invisible to receivers until ready_at.
//   * When nothing is deliverable and nothing delayed is in flight, the
//     caller-supplied failure probe decides whether to keep waiting or
//     report a dead peer — the "failure notification instead of deadlock"
//     contract from comm.h.
#pragma once

#include <condition_variable>
#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "simmpi/comm.h"

namespace dtfe::simmpi {

class Mailbox {
 public:
  using Clock = std::chrono::steady_clock;

  /// Consulted under the mailbox lock when no message is deliverable and
  /// none is delayed-in-flight; an engaged result ends the wait (typically
  /// RecvStatus::kRankFailed for a dead peer).
  using FailureProbe = std::function<std::optional<RecvResult>()>;

  void post(int src, int tag, std::vector<std::byte> payload,
            Clock::duration delay = {}) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(
          Message{src, tag, std::move(payload), Clock::now() + delay});
    }
    cv_.notify_all();
  }

  /// Wake all waiters so they re-evaluate the failure probe (call after
  /// marking a rank dead).
  void notify() {
    std::lock_guard<std::mutex> lock(mutex_);
    cv_.notify_all();
  }

  /// Blocking/bounded receive matching (source, tag); empty deadline waits
  /// forever (until a message or the failure probe fires).
  RecvResult recv(int source, int tag,
                  std::optional<Clock::time_point> deadline,
                  const FailureProbe& failure_probe) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      const Clock::time_point now = Clock::now();
      std::optional<Clock::time_point> next_ready;
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if ((source != kAnySource && it->src != source) || it->tag != tag)
          continue;
        if (it->ready_at > now) {
          if (!next_ready || it->ready_at < *next_ready)
            next_ready = it->ready_at;
          continue;  // delayed delivery: not visible yet
        }
        RecvResult res;
        res.status = RecvStatus::kOk;
        res.source = it->src;
        res.payload = std::move(it->payload);
        queue_.erase(it);
        return res;
      }
      // Nothing deliverable now. If nothing is even in flight (delayed) and
      // the awaited peer(s) are dead, report the failure instead of hanging.
      if (!next_ready && failure_probe) {
        if (auto failed = failure_probe()) return *failed;
      }
      if (deadline && now >= *deadline)
        return RecvResult{RecvStatus::kTimeout, -1, {}};
      std::optional<Clock::time_point> wake = deadline;
      if (next_ready && (!wake || *next_ready < *wake)) wake = next_ready;
      if (wake)
        cv_.wait_until(lock, *wake);
      else
        cv_.wait(lock);
    }
  }

  bool iprobe(int source, int tag) const {
    const Clock::time_point now = Clock::now();
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Message& m : queue_)
      if ((source == kAnySource || m.src == source) && m.tag == tag &&
          m.ready_at <= now)
        return true;
    return false;
  }

 private:
  struct Message {
    int src;
    int tag;
    std::vector<std::byte> payload;
    Clock::time_point ready_at;  ///< delayed-fault delivery time
  };

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace dtfe::simmpi
