#include "simmpi/socket_transport.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dtfe::simmpi {

namespace {

// Wire-level tallies (README "Observability"). In a multi-process run each
// worker counts its own side; the launcher folds the workers' counters into
// its registry when it deserializes their results.
struct TransportMetrics {
  obs::MetricId reconnects = obs::counter("dtfe.transport.reconnects");
  obs::MetricId heartbeat_misses =
      obs::counter("dtfe.transport.heartbeat_misses");
  obs::MetricId dead_ranks = obs::counter("dtfe.transport.dead_ranks_detected");
  obs::MetricId frames_sent = obs::counter("dtfe.transport.frames_sent");
  obs::MetricId frames_received =
      obs::counter("dtfe.transport.frames_received");
  obs::MetricId frames_forwarded =
      obs::counter("dtfe.transport.frames_forwarded");
  obs::MetricId bytes_sent = obs::counter("dtfe.transport.bytes_sent");
  obs::MetricId bytes_received = obs::counter("dtfe.transport.bytes_received");
  obs::MetricId checksum_failures =
      obs::counter("dtfe.transport.frame_checksum_failures");
};

const TransportMetrics& transport_metrics() {
  static const TransportMetrics m;
  return m;
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  DTFE_CHECK_MSG(path.size() < sizeof(addr.sun_path),
                 "transport: socket path too long: " << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  return addr;
}

int connect_with_retry(const std::string& path, const RetryPolicy& rp) {
  for (int retry = 0;; ++retry) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    DTFE_CHECK_MSG(fd >= 0, "transport: socket() failed: " << errno);
    sockaddr_un addr = make_addr(path);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      return fd;
    ::close(fd);
    DTFE_CHECK_MSG(!rp.exhausted(retry + 1),
                   "transport: could not connect to router at "
                       << path << " after " << (retry + 1) << " attempts");
    if (obs::metrics_enabled()) obs::add(transport_metrics().reconnects);
    rp.backoff(retry + 1);
  }
}

}  // namespace

void TransportStats::fit(double& intercept_s, double& seconds_per_byte) const {
  intercept_s = mean_latency_s();
  seconds_per_byte = 0.0;
  if (messages < 2) return;
  const double n = static_cast<double>(messages);
  const double var = sum_bytes2 - sum_bytes * sum_bytes / n;
  if (var <= 0.0) return;  // degenerate: all messages the same size
  const double cov = sum_latency_bytes - sum_bytes * sum_latency_s / n;
  seconds_per_byte = cov / var;
  intercept_s = (sum_latency_s - seconds_per_byte * sum_bytes) / n;
  if (intercept_s < 0.0) intercept_s = 0.0;
  if (seconds_per_byte < 0.0) seconds_per_byte = 0.0;
}

// ---------------------------------------------------------------------------
// SocketEndpoint (worker side)
// ---------------------------------------------------------------------------

SocketEndpoint::SocketEndpoint(int rank, const TransportOptions& opt)
    : rank_(rank),
      nranks_(opt.ranks),
      heartbeat_interval_ms_(opt.heartbeat_interval_ms),
      arbiter_(opt.fault_plan),
      dead_(static_cast<std::size_t>(opt.ranks)) {
  DTFE_CHECK_MSG(rank >= 0 && rank < opt.ranks,
                 "transport: worker rank " << rank << " out of range");
  RetryPolicy rp = opt.connect_retry;
  rp.seed ^= static_cast<std::uint64_t>(rank) * 0x9e3779b97f4a7c15ull;
  obs::TraceSpan span("transport.connect", "transport");
  fd_ = connect_with_retry(opt.socket_path, rp);

  Frame hello;
  hello.type = FrameType::kHello;
  hello.src = rank_;
  hello.payload = encode_i32(rank_);
  DTFE_CHECK_MSG(write_frame(fd_, hello),
                 "transport: rank " << rank_ << " failed to send hello");

  // Block until the router's config broadcast; the reader thread is not
  // running yet, so read synchronously here.
  for (;;) {
    Frame f;
    const FrameReadStatus st = read_frame(fd_, f);
    if (st == FrameReadStatus::kBadCrc) {
      if (obs::metrics_enabled())
        obs::add(transport_metrics().checksum_failures);
      continue;
    }
    DTFE_CHECK_MSG(st == FrameReadStatus::kOk,
                   "transport: rank " << rank_
                                      << " lost the router before config");
    if (f.type == FrameType::kConfig) {
      config_ = std::move(f.payload);
      break;
    }
    if (f.type == FrameType::kDead) {
      std::int32_t r = -1;
      if (decode_i32(f.payload, r) && r >= 0 && r < nranks_)
        dead_[static_cast<std::size_t>(r)].store(true,
                                                 std::memory_order_release);
    }
  }

  reader_ = std::thread([this] { reader_loop(); });
  heartbeat_ = std::thread([this] { heartbeat_loop(); });
}

SocketEndpoint::~SocketEndpoint() { finish(); }

bool SocketEndpoint::write_frame_locked(const Frame& f) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  if (fd_ < 0) return false;
  return write_frame(fd_, f);
}

void SocketEndpoint::die_by_fault() {
  // The fault plan killed this rank at this comm op: make the death real.
  // SIGKILL cannot be caught — the router sees the EOF and contains us just
  // like a genuine crash.
  ::raise(SIGKILL);
  for (;;) ::pause();  // unreachable; SIGKILL never returns control
}

void SocketEndpoint::check_router() const {
  if (router_lost_.load(std::memory_order_acquire))
    throw Error("transport: connection to router lost on rank " +
                std::to_string(rank_));
}

void SocketEndpoint::send(int src, int dest, int tag,
                          std::span<const std::byte> data) {
  DTFE_CHECK_MSG(src == rank_, "transport: send from foreign rank " << src);
  DTFE_CHECK_MSG(dest >= 0 && dest < nranks_,
                 "send to invalid rank " << dest);
  if (arbiter_.on_comm_op(rank_, tag)) die_by_fault();
  std::vector<std::byte> payload(data.begin(), data.end());
  std::uint64_t delay_ms = 0;
  if (!arbiter_.apply_message_faults(rank_, dest, tag, payload, delay_ms))
    return;  // dropped on the wire
  if (is_dead(dest)) return;  // no one left to read it
  check_router();
  Frame f;
  f.type = FrameType::kData;
  f.src = rank_;
  f.dst = dest;
  f.tag = tag;
  f.delay_ms = static_cast<std::uint32_t>(delay_ms);
  f.sent_ns = steady_now_ns();
  f.payload = std::move(payload);
  if (obs::metrics_enabled()) {
    const TransportMetrics& m = transport_metrics();
    obs::add(m.frames_sent);
    obs::add(m.bytes_sent, static_cast<double>(f.payload.size()));
  }
  if (!write_frame_locked(f)) {
    router_lost_.store(true, std::memory_order_release);
    box_.notify();
    check_router();
  }
}

RecvResult SocketEndpoint::recv(
    int me, int source, int tag,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  DTFE_CHECK_MSG(me == rank_, "transport: recv for foreign rank " << me);
  if (arbiter_.on_comm_op(rank_, tag)) die_by_fault();
  return box_.recv(
      source, tag, deadline,
      [this, source]() -> std::optional<RecvResult> {
        if (router_lost_.load(std::memory_order_acquire))
          throw Error("transport: connection to router lost on rank " +
                      std::to_string(rank_));
        if (source != kAnySource && is_dead(source))
          return RecvResult{RecvStatus::kRankFailed, source, {}};
        if (source == kAnySource) {
          bool all_dead = nranks_ > 1;
          for (int r = 0; r < nranks_; ++r)
            if (r != rank_ && !is_dead(r)) {
              all_dead = false;
              break;
            }
          if (all_dead) return RecvResult{RecvStatus::kRankFailed, -1, {}};
        }
        return std::nullopt;
      });
}

bool SocketEndpoint::iprobe(int me, int source, int tag) const {
  DTFE_CHECK_MSG(me == rank_, "transport: iprobe for foreign rank " << me);
  return box_.iprobe(source, tag);
}

TransportStats SocketEndpoint::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void SocketEndpoint::send_result(std::span<const std::byte> payload) {
  Frame f;
  f.type = FrameType::kResult;
  f.src = rank_;
  f.payload.assign(payload.begin(), payload.end());
  DTFE_CHECK_MSG(write_frame_locked(f),
                 "transport: rank " << rank_
                                    << " failed to deliver its result");
}

void SocketEndpoint::send_error(const std::string& what) {
  Frame f;
  f.type = FrameType::kError;
  f.src = rank_;
  f.payload.resize(what.size());
  std::memcpy(f.payload.data(), what.data(), what.size());
  (void)write_frame_locked(f);  // best effort: the router may already be gone
}

void SocketEndpoint::finish() {
  if (stopping_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(hb_mutex_);
  }
  hb_cv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
  Frame bye;
  bye.type = FrameType::kBye;
  bye.src = rank_;
  (void)write_frame_locked(bye);
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);  // unblocks the reader
  if (reader_.joinable()) reader_.join();
  std::lock_guard<std::mutex> lock(write_mutex_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void SocketEndpoint::reader_loop() {
  for (;;) {
    Frame f;
    const FrameReadStatus st = read_frame(fd_, f);
    if (st == FrameReadStatus::kBadCrc) {
      // Real wire corruption (injected flips travel with valid CRCs): drop
      // the frame; app-level acks/timeouts recover.
      if (obs::metrics_enabled())
        obs::add(transport_metrics().checksum_failures);
      continue;
    }
    if (st != FrameReadStatus::kOk) {
      if (!stopping_.load(std::memory_order_relaxed)) {
        router_lost_.store(true, std::memory_order_release);
        box_.notify();
      }
      return;
    }
    switch (f.type) {
      case FrameType::kData: {
        const std::uint64_t now = steady_now_ns();
        const double latency_s =
            now > f.sent_ns ? static_cast<double>(now - f.sent_ns) * 1e-9
                            : 0.0;
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          stats_.note(f.payload.size(), latency_s);
        }
        if (obs::metrics_enabled()) {
          const TransportMetrics& m = transport_metrics();
          obs::add(m.frames_received);
          obs::add(m.bytes_received, static_cast<double>(f.payload.size()));
        }
        box_.post(f.src, f.tag, std::move(f.payload),
                  std::chrono::milliseconds(f.delay_ms));
        break;
      }
      case FrameType::kDead: {
        std::int32_t r = -1;
        if (decode_i32(f.payload, r) && r >= 0 && r < nranks_) {
          dead_[static_cast<std::size_t>(r)].store(true,
                                                   std::memory_order_release);
          box_.notify();
        }
        break;
      }
      default:
        break;  // config re-broadcasts etc.: ignore
    }
  }
}

void SocketEndpoint::heartbeat_loop() {
  std::unique_lock<std::mutex> lock(hb_mutex_);
  while (!stopping_.load(std::memory_order_relaxed)) {
    lock.unlock();
    Frame f;
    f.type = FrameType::kHeartbeat;
    f.src = rank_;
    (void)write_frame_locked(f);  // loss is detected by the reader
    lock.lock();
    hb_cv_.wait_for(lock, std::chrono::milliseconds(heartbeat_interval_ms_),
                    [this] {
                      return stopping_.load(std::memory_order_relaxed);
                    });
  }
}

// ---------------------------------------------------------------------------
// Router (launcher side)
// ---------------------------------------------------------------------------

Router::Router(const TransportOptions& opt)
    : opt_(opt),
      fds_(static_cast<std::size_t>(opt.ranks), -1),
      outcomes_(static_cast<std::size_t>(opt.ranks)),
      dead_(static_cast<std::size_t>(opt.ranks), false),
      last_beat_(static_cast<std::size_t>(opt.ranks)),
      misses_noted_(static_cast<std::size_t>(opt.ranks), 0) {
  DTFE_CHECK_MSG(opt.ranks >= 1, "transport: need at least one rank");
}

Router::~Router() {
  for (int r = 0; r < opt_.ranks; ++r) close_fd(r);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!opt_.socket_path.empty()) ::unlink(opt_.socket_path.c_str());
}

void Router::close_fd(int rank) {
  int& fd = fds_[static_cast<std::size_t>(rank)];
  if (fd >= 0) ::close(fd);
  fd = -1;
}

void Router::listen_socket() {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  DTFE_CHECK_MSG(listen_fd_ >= 0, "transport: socket() failed: " << errno);
  ::unlink(opt_.socket_path.c_str());
  sockaddr_un addr = make_addr(opt_.socket_path);
  DTFE_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)) == 0,
                 "transport: bind(" << opt_.socket_path
                                    << ") failed: " << errno);
  DTFE_CHECK_MSG(::listen(listen_fd_, opt_.ranks) == 0,
                 "transport: listen failed: " << errno);
}

void Router::accept_workers() {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(opt_.accept_timeout_ms);
  int connected = 0;
  while (connected < opt_.ranks) {
    const auto now = std::chrono::steady_clock::now();
    const int remaining_ms =
        now >= deadline
            ? 0
            : static_cast<int>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - now)
                      .count());
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, remaining_ms);
    if (pr < 0 && errno == EINTR) continue;
    if (pr <= 0) {
      std::ostringstream os;
      os << "transport: only " << connected << "/" << opt_.ranks
         << " workers said hello within " << opt_.accept_timeout_ms
         << "ms; missing ranks:";
      for (int r = 0; r < opt_.ranks; ++r)
        if (fds_[static_cast<std::size_t>(r)] < 0) os << " " << r;
      throw Error(os.str());
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    Frame hello;
    std::int32_t rank = -1;
    if (read_frame(fd, hello) != FrameReadStatus::kOk ||
        hello.type != FrameType::kHello ||
        !decode_i32(hello.payload, rank) || rank < 0 || rank >= opt_.ranks ||
        fds_[static_cast<std::size_t>(rank)] >= 0) {
      ::close(fd);  // imposter or duplicate hello
      continue;
    }
    fds_[static_cast<std::size_t>(rank)] = fd;
    last_beat_[static_cast<std::size_t>(rank)] =
        std::chrono::steady_clock::now();
    ++connected;
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Router::broadcast_config(std::span<const std::byte> payload) {
  Frame f;
  f.type = FrameType::kConfig;
  f.payload.assign(payload.begin(), payload.end());
  for (int r = 0; r < opt_.ranks; ++r) {
    const int fd = fds_[static_cast<std::size_t>(r)];
    if (fd >= 0 && !write_frame(fd, f)) declare_dead(r);
  }
}

void Router::declare_dead(int rank) {
  if (dead_[static_cast<std::size_t>(rank)]) return;
  dead_[static_cast<std::size_t>(rank)] = true;
  outcomes_[static_cast<std::size_t>(rank)].died = true;
  close_fd(rank);
  if (obs::metrics_enabled()) obs::add(transport_metrics().dead_ranks);
  if (obs::TraceRecorder::global().enabled())
    obs::TraceRecorder::global().emit_instant(
        "transport.rank_dead", "transport",
        {{"rank", static_cast<double>(rank)}});
  // Tell the survivors so their dead-rank containment kicks in.
  Frame f;
  f.type = FrameType::kDead;
  f.payload = encode_i32(rank);
  for (int r = 0; r < opt_.ranks; ++r) {
    const int fd = fds_[static_cast<std::size_t>(r)];
    if (fd >= 0 && !write_frame(fd, f)) declare_dead(r);
  }
}

void Router::handle_frame(int rank, Frame& f) {
  last_beat_[static_cast<std::size_t>(rank)] =
      std::chrono::steady_clock::now();
  misses_noted_[static_cast<std::size_t>(rank)] = 0;
  switch (f.type) {
    case FrameType::kHeartbeat:
      break;  // liveness already noted above
    case FrameType::kData: {
      const int dst = f.dst;
      if (dst < 0 || dst >= opt_.ranks) break;
      if (dead_[static_cast<std::size_t>(dst)]) break;  // discarded, as in
                                                        // the thread runtime
      const int fd = fds_[static_cast<std::size_t>(dst)];
      if (fd < 0) break;  // dst already finished: message unread, same as a
                          // completed thread rank's queue
      if (obs::metrics_enabled())
        obs::add(transport_metrics().frames_forwarded);
      if (!write_frame(fd, f)) declare_dead(dst);
      break;
    }
    case FrameType::kResult:
      outcomes_[static_cast<std::size_t>(rank)].result = std::move(f.payload);
      outcomes_[static_cast<std::size_t>(rank)].finished = true;
      break;
    case FrameType::kError:
      outcomes_[static_cast<std::size_t>(rank)].error.assign(
          reinterpret_cast<const char*>(f.payload.data()), f.payload.size());
      outcomes_[static_cast<std::size_t>(rank)].finished = true;
      break;
    case FrameType::kBye:
      outcomes_[static_cast<std::size_t>(rank)].finished = true;
      break;
    default:
      break;
  }
}

std::vector<Router::Outcome> Router::route() {
  obs::TraceSpan span("transport.route", "transport");
  const auto all_done = [this] {
    for (int r = 0; r < opt_.ranks; ++r)
      if (!outcomes_[static_cast<std::size_t>(r)].finished &&
          !dead_[static_cast<std::size_t>(r)])
        return false;
    return true;
  };
  while (!all_done()) {
    std::vector<pollfd> pfds;
    std::vector<int> pranks;
    for (int r = 0; r < opt_.ranks; ++r) {
      const int fd = fds_[static_cast<std::size_t>(r)];
      if (fd >= 0) {
        pfds.push_back(pollfd{fd, POLLIN, 0});
        pranks.push_back(r);
      }
    }
    if (pfds.empty()) break;  // every socket closed
    const int pr =
        ::poll(pfds.data(), pfds.size(), opt_.heartbeat_interval_ms);
    if (pr < 0 && errno != EINTR) break;
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      const int r = pranks[i];
      // Drain a bounded burst so one chatty worker cannot starve the rest.
      for (int burst = 0; burst < 64; ++burst) {
        if (fds_[static_cast<std::size_t>(r)] < 0) break;
        Frame f;
        const FrameReadStatus st =
            read_frame(fds_[static_cast<std::size_t>(r)], f);
        if (st == FrameReadStatus::kBadCrc) {
          if (obs::metrics_enabled())
            obs::add(transport_metrics().checksum_failures);
          continue;
        }
        if (st != FrameReadStatus::kOk) {
          if (outcomes_[static_cast<std::size_t>(r)].finished)
            close_fd(r);  // clean shutdown after bye/result
          else
            declare_dead(r);  // EOF without a result: the SIGKILL fast path
          break;
        }
        handle_frame(r, f);
        pollfd probe{fds_[static_cast<std::size_t>(r)], POLLIN, 0};
        if (fds_[static_cast<std::size_t>(r)] < 0 ||
            ::poll(&probe, 1, 0) <= 0)
          break;
      }
    }
    // Heartbeat staleness: the slow path for hung-but-connected workers.
    const auto now = std::chrono::steady_clock::now();
    for (int r = 0; r < opt_.ranks; ++r) {
      if (fds_[static_cast<std::size_t>(r)] < 0 ||
          outcomes_[static_cast<std::size_t>(r)].finished ||
          dead_[static_cast<std::size_t>(r)])
        continue;
      const auto elapsed = now - last_beat_[static_cast<std::size_t>(r)];
      const int misses = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
              .count() /
          std::max(1, opt_.heartbeat_interval_ms));
      if (misses > misses_noted_[static_cast<std::size_t>(r)]) {
        if (obs::metrics_enabled())
          obs::add(transport_metrics().heartbeat_misses,
                   misses - misses_noted_[static_cast<std::size_t>(r)]);
        misses_noted_[static_cast<std::size_t>(r)] = misses;
      }
      if (misses >= opt_.heartbeat_miss_limit) declare_dead(r);
    }
  }
  return outcomes_;
}

std::vector<int> Router::dead_ranks() const {
  std::vector<int> out;
  for (int r = 0; r < opt_.ranks; ++r)
    if (dead_[static_cast<std::size_t>(r)]) out.push_back(r);
  return out;
}

}  // namespace dtfe::simmpi
