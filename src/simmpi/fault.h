// Deterministic fault injection for the simulated MPI runtime.
//
// A FaultPlan is a list of rules parsed from a compact spec string (grammar
// in README "Fault tolerance") and handed to simmpi::run via RunOptions.
// The runtime then kills ranks at a chosen comm call and drops, truncates,
// bit-flips, or delays chosen messages. Every trigger is counter-based (the
// Nth matching operation of a specific rank or (src, dst) pair), never
// time-based, so a given plan replays identically run after run — the whole
// point is that a fault scenario observed at scale can be named on the
// command line and reproduced in a debugger.
//
// Grammar (whitespace-free):
//   spec    := clause (';' clause)*
//   clause  := action (':' kv (',' kv)*)? | 'seed=' uint
//   action  := 'kill' | 'drop' | 'trunc' | 'flip' | 'delay'
//   kv      := key '=' int
//
// Keys per action (1-based counts; `tag=` restricts which ops/messages
// count, -1/absent = any):
//   kill : rank (required), at=N (default 1: die at the rank's Nth
//          send/recv op matching `tag`)
//   drop : src, dst (required), nth=N (default 1), tag
//   trunc: src, dst, nth, tag, bytes=K (keep first K payload bytes;
//          default half)
//   flip : src, dst, nth, tag, byte=B, bit=b (default: seeded choice)
//   delay: src, dst, nth, tag, ms=M (required; delivery delayed M ms)
//
// Example: "kill:rank=2,tag=200,at=1;drop:src=0,dst=3,nth=1;seed=7"
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dtfe::simmpi {

enum class FaultAction { kKill, kDrop, kTruncate, kBitFlip, kDelay };

struct FaultRule {
  FaultAction action = FaultAction::kKill;
  // kill
  int rank = -1;          ///< victim rank
  std::uint64_t at = 1;   ///< 1-based index of the fatal comm op
  // message faults
  int src = -1, dst = -1;
  std::uint64_t nth = 1;  ///< 1-based index among matching messages
  int tag = -1;           ///< -1 = match any tag
  std::uint64_t bytes = 0;        ///< trunc: keep this many leading bytes
  std::int64_t byte = -1;         ///< flip: byte offset (-1 = seeded)
  int bit = -1;                   ///< flip: bit 0–7 (-1 = seeded)
  std::uint64_t delay_ms = 0;     ///< delay: delivery latency
};

struct FaultPlan {
  std::uint64_t seed = 1;  ///< drives defaulted flip byte/bit choices
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }

  /// Parse the spec grammar above. Throws dtfe::Error with the offending
  /// clause on malformed input. An empty spec parses to an empty plan.
  static FaultPlan parse(const std::string& spec);
};

}  // namespace dtfe::simmpi
