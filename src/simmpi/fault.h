// Deterministic fault injection for the simulated MPI runtime.
//
// A FaultPlan is a list of rules parsed from a compact spec string (grammar
// in README "Fault tolerance") and handed to simmpi::run via RunOptions.
// The runtime then kills ranks at a chosen comm call and drops, truncates,
// bit-flips, or delays chosen messages. Every trigger is counter-based (the
// Nth matching operation of a specific rank or (src, dst) pair), never
// time-based, so a given plan replays identically run after run — the whole
// point is that a fault scenario observed at scale can be named on the
// command line and reproduced in a debugger.
//
// Grammar (whitespace-free):
//   spec    := clause (';' clause)*
//   clause  := action (':' kv (',' kv)*)? | 'seed=' uint
//   action  := 'kill' | 'drop' | 'trunc' | 'flip' | 'delay'
//   kv      := key '=' int
//
// Keys per action (1-based counts; `tag=` restricts which ops/messages
// count, -1/absent = any):
//   kill : rank (required), at=N (default 1: die at the rank's Nth
//          send/recv op matching `tag`)
//   drop : src, dst (required), nth=N (default 1), tag
//   trunc: src, dst, nth, tag, bytes=K (keep first K payload bytes;
//          default half)
//   flip : src, dst, nth, tag, byte=B, bit=b (default: seeded choice)
//   delay: src, dst, nth, tag, ms=M (required; delivery delayed M ms)
//
// Example: "kill:rank=2,tag=200,at=1;drop:src=0,dst=3,nth=1;seed=7"
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace dtfe::simmpi {

enum class FaultAction { kKill, kDrop, kTruncate, kBitFlip, kDelay };

struct FaultRule {
  FaultAction action = FaultAction::kKill;
  // kill
  int rank = -1;          ///< victim rank
  std::uint64_t at = 1;   ///< 1-based index of the fatal comm op
  // message faults
  int src = -1, dst = -1;
  std::uint64_t nth = 1;  ///< 1-based index among matching messages
  int tag = -1;           ///< -1 = match any tag
  std::uint64_t bytes = 0;        ///< trunc: keep this many leading bytes
  std::int64_t byte = -1;         ///< flip: byte offset (-1 = seeded)
  int bit = -1;                   ///< flip: bit 0–7 (-1 = seeded)
  std::uint64_t delay_ms = 0;     ///< delay: delivery latency
};

struct FaultPlan {
  std::uint64_t seed = 1;  ///< drives defaulted flip byte/bit choices
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }

  /// Parse the spec grammar above. Throws dtfe::Error with the offending
  /// clause on malformed input. An empty spec parses to an empty plan.
  static FaultPlan parse(const std::string& spec);

  /// Inverse of parse: a spec string that round-trips this plan. Used to
  /// hand a launcher's plan to its worker processes on their command line.
  std::string to_spec() const;
};

/// Thrown into a rank's thread when the fault plan kills it (thread
/// transport; the socket transport raises SIGKILL instead). Deliberately
/// NOT derived from dtfe::Error: library catch(const Error&) containment
/// sites must not swallow an injected death mid-unwind.
struct RankKilledSignal {};

/// Executes a FaultPlan against a stream of comm operations. Shared by both
/// transports: the thread Runtime holds one arbiter for all ranks; each
/// socket worker process holds its own. Worker-local instances replay
/// identically to the shared one because message-fault rules name an
/// explicit (src, dst) pair — only the sending rank ever advances such a
/// rule — and kill rules only advance on the victim's own ops.
class FaultArbiter {
 public:
  /// `plan` may be null (no faults) and is borrowed for the arbiter's life.
  explicit FaultArbiter(const FaultPlan* plan);

  bool enabled() const { return !rules_.empty(); }

  /// Count one send/recv operation of `rank` against the kill rules.
  /// Returns true when a kill fires: the caller must then make the death
  /// real (mark the rank dead and unwind, or SIGKILL the process). Also
  /// bumps dtfe.fault.ranks_killed.
  bool on_comm_op(int rank, int tag);

  /// Apply drop/trunc/flip/delay rules to one outgoing message, mutating
  /// `payload` in place and setting `delay_ms` for delay rules. Returns
  /// false if the message must be discarded (drop).
  bool apply_message_faults(int src, int dst, int tag,
                            std::vector<std::byte>& payload,
                            std::uint64_t& delay_ms);

 private:
  /// A rule plus its match counter. Only one thread ever ADVANCES a given
  /// rule (the victim for kills, the sending rank for message faults), but
  /// every rank's scan READS all rules' state, so the mutable fields are
  /// relaxed atomics — uncontended in practice, race-free formally.
  struct LiveRule {
    explicit LiveRule(const FaultRule& rule) : r(rule) {}
    FaultRule r;
    std::atomic<std::uint64_t> count{0};
    std::atomic<bool> fired{false};
  };

  const std::uint64_t seed_;
  std::deque<LiveRule> rules_;  // deque: LiveRule holds atomics (immovable)
};

/// Bump dtfe.fault.rank_failed_notifications (no-op with metrics disabled).
/// Called by both transports when a receive surfaces a dead peer.
void count_rank_failed_notification();

}  // namespace dtfe::simmpi
