// Multi-process socket transport: the second CommBackend (DESIGN.md §9).
//
// Topology is hub-and-spoke. The launcher process is NOT a rank: it runs a
// Router bound to a Unix-domain socket, spawns N worker processes (the same
// binary re-entered with --worker-rank), and forwards addressed kData
// frames between them. Each worker wraps one SocketEndpoint — a CommBackend
// whose mailbox is fed by a dedicated reader thread — so the whole Comm
// surface (collectives included) runs unchanged over the wire.
//
// Failure detection: every worker beacons kHeartbeat frames; the router
// declares a rank dead on socket EOF (the fast path after a SIGKILL) or
// after heartbeat_miss_limit missed intervals, then broadcasts kDead to the
// survivors. Workers fold kDead into the same dead-rank flags the thread
// transport uses, so RankFailed containment and post-run recovery need no
// transport-specific code.
//
// Fault replay: each worker owns a FaultArbiter over the same FaultPlan.
// kill rules raise SIGKILL at the victim's Nth matching comm op (the exact
// op where the thread transport throws RankKilledSignal); drop/trunc/flip
// mutate the payload before framing; delay rides the frame header and is
// applied at the receiver's mailbox. Worker-local arbiters replay
// identically to the thread transport's shared one because message rules
// are advanced only by their sending rank and kill rules only by the
// victim.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "simmpi/comm.h"
#include "simmpi/fault.h"
#include "simmpi/frame.h"
#include "simmpi/mailbox.h"
#include "util/retry.h"

namespace dtfe::simmpi {

struct TransportOptions {
  std::string socket_path;  ///< Unix-domain socket the router binds
  int ranks = 0;
  int heartbeat_interval_ms = 100;
  /// Dead after this many beacon intervals without a heartbeat (EOF is
  /// detected immediately regardless).
  int heartbeat_miss_limit = 20;
  int accept_timeout_ms = 15000;  ///< router's wait for all HELLOs
  /// Worker -> router connect backoff (the router binds before spawning,
  /// so retries only happen under heavy load).
  RetryPolicy connect_retry{.max_retries = 60, .base_delay_ms = 5.0,
                            .max_delay_ms = 250.0};
  /// Borrowed; worker-side deterministic fault replay. May be null.
  const FaultPlan* fault_plan = nullptr;
};

/// Per-worker measured wire costs: OLS sufficient statistics over
/// (payload bytes, one-way latency) of every received kData frame. The
/// launcher merges all workers' stats and fits latency = a + b * bytes —
/// the measured inputs for DES calibration (framework/des.h).
struct TransportStats {
  std::uint64_t messages = 0;
  double sum_bytes = 0.0;
  double sum_bytes2 = 0.0;
  double sum_latency_s = 0.0;
  double sum_latency_bytes = 0.0;  ///< sum of latency_i * bytes_i

  void note(std::size_t bytes, double latency_s) {
    const double b = static_cast<double>(bytes);
    ++messages;
    sum_bytes += b;
    sum_bytes2 += b * b;
    sum_latency_s += latency_s;
    sum_latency_bytes += latency_s * b;
  }
  void merge(const TransportStats& o) {
    messages += o.messages;
    sum_bytes += o.sum_bytes;
    sum_bytes2 += o.sum_bytes2;
    sum_latency_s += o.sum_latency_s;
    sum_latency_bytes += o.sum_latency_bytes;
  }
  double mean_latency_s() const {
    return messages ? sum_latency_s / static_cast<double>(messages) : 0.0;
  }
  double mean_bytes() const {
    return messages ? sum_bytes / static_cast<double>(messages) : 0.0;
  }
  /// OLS fit latency = intercept + slope * bytes. Falls back to
  /// (mean latency, 0) when degenerate (all messages the same size).
  void fit(double& intercept_s, double& seconds_per_byte) const;
};
static_assert(std::is_trivially_copyable_v<TransportStats>);

/// Worker-side CommBackend: one socket to the router, a reader thread
/// feeding the mailbox, a heartbeat thread, and a local FaultArbiter.
class SocketEndpoint final : public CommBackend {
 public:
  /// Connects (with retry/backoff), sends kHello, and blocks until the
  /// router's kConfig arrives; then starts the reader and heartbeat
  /// threads. Throws dtfe::Error if the router is unreachable.
  SocketEndpoint(int rank, const TransportOptions& opt);
  ~SocketEndpoint() override;

  int size() const override { return nranks_; }
  bool is_dead(int rank) const override {
    return dead_[static_cast<std::size_t>(rank)].load(
        std::memory_order_acquire);
  }
  void send(int src, int dest, int tag,
            std::span<const std::byte> data) override;
  RecvResult recv(
      int me, int source, int tag,
      std::optional<std::chrono::steady_clock::time_point> deadline) override;
  bool iprobe(int me, int source, int tag) const override;

  int rank() const { return rank_; }
  /// The opaque config payload the router broadcast before the run.
  const std::vector<std::byte>& config() const { return config_; }
  /// Measured wire costs of everything this worker received so far.
  TransportStats stats() const;

  void send_result(std::span<const std::byte> payload);
  void send_error(const std::string& what);
  /// Clean shutdown: kBye, stop heartbeat/reader, close the socket.
  /// Idempotent; the destructor calls it.
  void finish();

 private:
  void reader_loop();
  void heartbeat_loop();
  bool write_frame_locked(const Frame& f);
  [[noreturn]] void die_by_fault();
  void check_router() const;  ///< throws if the router connection is gone

  int rank_;
  int nranks_;
  int fd_ = -1;
  int heartbeat_interval_ms_;
  FaultArbiter arbiter_;
  Mailbox box_;
  std::vector<std::atomic<bool>> dead_;
  std::atomic<bool> router_lost_{false};
  std::atomic<bool> stopping_{false};
  std::mutex write_mutex_;
  mutable std::mutex stats_mutex_;
  TransportStats stats_;
  std::vector<std::byte> config_;
  std::mutex hb_mutex_;
  std::condition_variable hb_cv_;
  std::thread reader_;
  std::thread heartbeat_;
};

/// Launcher-side hub: accepts the workers, broadcasts config, forwards
/// addressed frames, detects failures, and collects results. Single
/// threaded — call listen(), spawn the workers, then accept_workers(),
/// broadcast_config(), route().
class Router {
 public:
  struct Outcome {
    bool finished = false;  ///< worker delivered kResult/kError/kBye
    bool died = false;      ///< EOF or heartbeat loss before finishing
    std::string error;      ///< worker-reported exception text, if any
    std::vector<std::byte> result;
  };

  explicit Router(const TransportOptions& opt);
  ~Router();

  /// Bind + listen on opt.socket_path. Call BEFORE spawning workers so no
  /// worker can race the bind.
  void listen_socket();
  /// Accept until every rank has said kHello (or accept_timeout_ms runs
  /// out — then throws naming the missing ranks).
  void accept_workers();
  void broadcast_config(std::span<const std::byte> payload);
  /// Forward frames until every rank is finished or dead. Returns per-rank
  /// outcomes (results still serialized).
  std::vector<Outcome> route();

  std::vector<int> dead_ranks() const;

 private:
  void declare_dead(int rank);
  void handle_frame(int rank, Frame& f);
  void close_fd(int rank);

  TransportOptions opt_;
  int listen_fd_ = -1;
  std::vector<int> fds_;
  std::vector<Outcome> outcomes_;
  std::vector<bool> dead_;
  std::vector<std::chrono::steady_clock::time_point> last_beat_;
  std::vector<int> misses_noted_;
};

}  // namespace dtfe::simmpi
