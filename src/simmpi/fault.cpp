#include "simmpi/fault.h"

#include <cstdlib>

#include "util/error.h"

namespace dtfe::simmpi {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
}

std::int64_t parse_int(const std::string& clause, const std::string& v) {
  char* end = nullptr;
  const long long x = std::strtoll(v.c_str(), &end, 10);
  DTFE_CHECK_MSG(end && *end == '\0' && !v.empty(),
                 "fault plan: bad integer '" << v << "' in clause '" << clause
                                             << "'");
  return x;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  for (const std::string& clause : split(spec, ';')) {
    if (clause.empty()) continue;
    if (clause.rfind("seed=", 0) == 0) {
      plan.seed = static_cast<std::uint64_t>(
          parse_int(clause, clause.substr(5)));
      continue;
    }
    const std::size_t colon = clause.find(':');
    const std::string action = clause.substr(0, colon);
    FaultRule rule;
    if (action == "kill") {
      rule.action = FaultAction::kKill;
    } else if (action == "drop") {
      rule.action = FaultAction::kDrop;
    } else if (action == "trunc") {
      rule.action = FaultAction::kTruncate;
    } else if (action == "flip") {
      rule.action = FaultAction::kBitFlip;
    } else if (action == "delay") {
      rule.action = FaultAction::kDelay;
    } else {
      DTFE_CHECK_MSG(false, "fault plan: unknown action '"
                                << action << "' in clause '" << clause << "'");
    }
    if (colon != std::string::npos) {
      for (const std::string& kv : split(clause.substr(colon + 1), ',')) {
        const std::size_t eq = kv.find('=');
        DTFE_CHECK_MSG(eq != std::string::npos,
                       "fault plan: expected key=value, got '"
                           << kv << "' in clause '" << clause << "'");
        const std::string key = kv.substr(0, eq);
        const std::int64_t val = parse_int(clause, kv.substr(eq + 1));
        if (key == "rank") {
          rule.rank = static_cast<int>(val);
        } else if (key == "at") {
          rule.at = static_cast<std::uint64_t>(val);
        } else if (key == "src") {
          rule.src = static_cast<int>(val);
        } else if (key == "dst") {
          rule.dst = static_cast<int>(val);
        } else if (key == "nth") {
          rule.nth = static_cast<std::uint64_t>(val);
        } else if (key == "tag") {
          rule.tag = static_cast<int>(val);
        } else if (key == "bytes") {
          rule.bytes = static_cast<std::uint64_t>(val);
        } else if (key == "byte") {
          rule.byte = val;
        } else if (key == "bit") {
          rule.bit = static_cast<int>(val);
        } else if (key == "ms") {
          rule.delay_ms = static_cast<std::uint64_t>(val);
        } else {
          DTFE_CHECK_MSG(false, "fault plan: unknown key '"
                                    << key << "' in clause '" << clause
                                    << "'");
        }
      }
    }
    if (rule.action == FaultAction::kKill) {
      DTFE_CHECK_MSG(rule.rank >= 0, "fault plan: kill needs rank= in clause '"
                                         << clause << "'");
      DTFE_CHECK_MSG(rule.at >= 1,
                     "fault plan: kill at= is 1-based in clause '" << clause
                                                                   << "'");
    } else {
      DTFE_CHECK_MSG(rule.src >= 0 && rule.dst >= 0,
                     "fault plan: message fault needs src= and dst= in clause '"
                         << clause << "'");
      DTFE_CHECK_MSG(rule.nth >= 1,
                     "fault plan: nth= is 1-based in clause '" << clause
                                                               << "'");
      if (rule.action == FaultAction::kDelay)
        DTFE_CHECK_MSG(rule.delay_ms > 0,
                       "fault plan: delay needs ms= in clause '" << clause
                                                                 << "'");
      if (rule.action == FaultAction::kBitFlip)
        DTFE_CHECK_MSG(rule.bit < 8,
                       "fault plan: flip bit= must be 0-7 in clause '"
                           << clause << "'");
    }
    plan.rules.push_back(rule);
  }
  return plan;
}

}  // namespace dtfe::simmpi
