#include "simmpi/fault.h"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.h"
#include "util/error.h"

namespace dtfe::simmpi {

namespace {

// Injected-fault tallies (README "Fault tolerance").
struct FaultMetrics {
  obs::MetricId ranks_killed = obs::counter("dtfe.fault.ranks_killed");
  obs::MetricId dropped = obs::counter("dtfe.fault.messages_dropped");
  obs::MetricId truncated = obs::counter("dtfe.fault.messages_truncated");
  obs::MetricId bitflipped = obs::counter("dtfe.fault.messages_bitflipped");
  obs::MetricId delayed = obs::counter("dtfe.fault.messages_delayed");
  obs::MetricId rank_failed =
      obs::counter("dtfe.fault.rank_failed_notifications");
};

const FaultMetrics& fault_metrics() {
  static const FaultMetrics m;
  return m;
}

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
}

std::int64_t parse_int(const std::string& clause, const std::string& v) {
  char* end = nullptr;
  const long long x = std::strtoll(v.c_str(), &end, 10);
  DTFE_CHECK_MSG(end && *end == '\0' && !v.empty(),
                 "fault plan: bad integer '" << v << "' in clause '" << clause
                                             << "'");
  return x;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  for (const std::string& clause : split(spec, ';')) {
    if (clause.empty()) continue;
    if (clause.rfind("seed=", 0) == 0) {
      plan.seed = static_cast<std::uint64_t>(
          parse_int(clause, clause.substr(5)));
      continue;
    }
    const std::size_t colon = clause.find(':');
    const std::string action = clause.substr(0, colon);
    FaultRule rule;
    if (action == "kill") {
      rule.action = FaultAction::kKill;
    } else if (action == "drop") {
      rule.action = FaultAction::kDrop;
    } else if (action == "trunc") {
      rule.action = FaultAction::kTruncate;
    } else if (action == "flip") {
      rule.action = FaultAction::kBitFlip;
    } else if (action == "delay") {
      rule.action = FaultAction::kDelay;
    } else {
      DTFE_CHECK_MSG(false, "fault plan: unknown action '"
                                << action << "' in clause '" << clause << "'");
    }
    if (colon != std::string::npos) {
      for (const std::string& kv : split(clause.substr(colon + 1), ',')) {
        const std::size_t eq = kv.find('=');
        DTFE_CHECK_MSG(eq != std::string::npos,
                       "fault plan: expected key=value, got '"
                           << kv << "' in clause '" << clause << "'");
        const std::string key = kv.substr(0, eq);
        const std::int64_t val = parse_int(clause, kv.substr(eq + 1));
        if (key == "rank") {
          rule.rank = static_cast<int>(val);
        } else if (key == "at") {
          rule.at = static_cast<std::uint64_t>(val);
        } else if (key == "src") {
          rule.src = static_cast<int>(val);
        } else if (key == "dst") {
          rule.dst = static_cast<int>(val);
        } else if (key == "nth") {
          rule.nth = static_cast<std::uint64_t>(val);
        } else if (key == "tag") {
          rule.tag = static_cast<int>(val);
        } else if (key == "bytes") {
          rule.bytes = static_cast<std::uint64_t>(val);
        } else if (key == "byte") {
          rule.byte = val;
        } else if (key == "bit") {
          rule.bit = static_cast<int>(val);
        } else if (key == "ms") {
          rule.delay_ms = static_cast<std::uint64_t>(val);
        } else {
          DTFE_CHECK_MSG(false, "fault plan: unknown key '"
                                    << key << "' in clause '" << clause
                                    << "'");
        }
      }
    }
    if (rule.action == FaultAction::kKill) {
      DTFE_CHECK_MSG(rule.rank >= 0, "fault plan: kill needs rank= in clause '"
                                         << clause << "'");
      DTFE_CHECK_MSG(rule.at >= 1,
                     "fault plan: kill at= is 1-based in clause '" << clause
                                                                   << "'");
    } else {
      DTFE_CHECK_MSG(rule.src >= 0 && rule.dst >= 0,
                     "fault plan: message fault needs src= and dst= in clause '"
                         << clause << "'");
      DTFE_CHECK_MSG(rule.nth >= 1,
                     "fault plan: nth= is 1-based in clause '" << clause
                                                               << "'");
      if (rule.action == FaultAction::kDelay)
        DTFE_CHECK_MSG(rule.delay_ms > 0,
                       "fault plan: delay needs ms= in clause '" << clause
                                                                 << "'");
      if (rule.action == FaultAction::kBitFlip)
        DTFE_CHECK_MSG(rule.bit < 8,
                       "fault plan: flip bit= must be 0-7 in clause '"
                           << clause << "'");
    }
    plan.rules.push_back(rule);
  }
  return plan;
}

std::string FaultPlan::to_spec() const {
  std::string out;
  for (const FaultRule& r : rules) {
    if (!out.empty()) out += ';';
    const auto kv = [&out](const char* key, std::int64_t v) {
      out += ',';
      out += key;
      out += '=';
      out += std::to_string(v);
    };
    switch (r.action) {
      case FaultAction::kKill:
        out += "kill:rank=" + std::to_string(r.rank);
        kv("at", static_cast<std::int64_t>(r.at));
        if (r.tag != -1) kv("tag", r.tag);
        continue;
      case FaultAction::kDrop:
        out += "drop:src=" + std::to_string(r.src);
        break;
      case FaultAction::kTruncate:
        out += "trunc:src=" + std::to_string(r.src);
        break;
      case FaultAction::kBitFlip:
        out += "flip:src=" + std::to_string(r.src);
        break;
      case FaultAction::kDelay:
        out += "delay:src=" + std::to_string(r.src);
        break;
    }
    kv("dst", r.dst);
    kv("nth", static_cast<std::int64_t>(r.nth));
    if (r.tag != -1) kv("tag", r.tag);
    if (r.action == FaultAction::kTruncate && r.bytes > 0)
      kv("bytes", static_cast<std::int64_t>(r.bytes));
    if (r.action == FaultAction::kBitFlip) {
      if (r.byte >= 0) kv("byte", r.byte);
      if (r.bit >= 0) kv("bit", r.bit);
    }
    if (r.action == FaultAction::kDelay)
      kv("ms", static_cast<std::int64_t>(r.delay_ms));
  }
  if (!rules.empty() || seed != 1) {
    if (!out.empty()) out += ';';
    out += "seed=" + std::to_string(seed);
  }
  return out;
}

FaultArbiter::FaultArbiter(const FaultPlan* plan)
    : seed_(plan ? plan->seed : 1) {
  if (plan)
    for (const FaultRule& r : plan->rules) rules_.emplace_back(r);
}

bool FaultArbiter::on_comm_op(int rank, int tag) {
  if (rules_.empty()) return false;
  for (LiveRule& lr : rules_) {
    if (lr.fired.load(std::memory_order_relaxed) ||
        lr.r.action != FaultAction::kKill || lr.r.rank != rank)
      continue;
    if (lr.r.tag != -1 && lr.r.tag != tag) continue;
    if (lr.count.fetch_add(1, std::memory_order_relaxed) + 1 < lr.r.at)
      continue;
    lr.fired.store(true, std::memory_order_relaxed);
    if (obs::metrics_enabled()) obs::add(fault_metrics().ranks_killed);
    return true;
  }
  return false;
}

bool FaultArbiter::apply_message_faults(int src, int dst, int tag,
                                        std::vector<std::byte>& payload,
                                        std::uint64_t& delay_ms) {
  bool keep = true;
  for (LiveRule& lr : rules_) {
    if (lr.fired.load(std::memory_order_relaxed) ||
        lr.r.action == FaultAction::kKill)
      continue;
    if (lr.r.src != src || lr.r.dst != dst) continue;
    if (lr.r.tag != -1 && lr.r.tag != tag) continue;
    const std::uint64_t cnt =
        lr.count.fetch_add(1, std::memory_order_relaxed) + 1;
    if (cnt < lr.r.nth) continue;
    lr.fired.store(true, std::memory_order_relaxed);
    const bool metrics = obs::metrics_enabled();
    switch (lr.r.action) {
      case FaultAction::kDrop:
        if (metrics) obs::add(fault_metrics().dropped);
        keep = false;
        break;
      case FaultAction::kTruncate: {
        const std::size_t n = lr.r.bytes > 0
                                  ? static_cast<std::size_t>(lr.r.bytes)
                                  : payload.size() / 2;
        payload.resize(std::min(payload.size(), n));
        if (metrics) obs::add(fault_metrics().truncated);
        break;
      }
      case FaultAction::kBitFlip: {
        if (payload.empty()) break;
        const std::uint64_t h = mix64(
            seed_ ^ mix64((static_cast<std::uint64_t>(src) << 32) ^
                          static_cast<std::uint64_t>(dst) ^ (cnt << 16)));
        const std::size_t b =
            lr.r.byte >= 0 ? std::min(static_cast<std::size_t>(lr.r.byte),
                                      payload.size() - 1)
                           : static_cast<std::size_t>(h % payload.size());
        const int bit =
            lr.r.bit >= 0 ? lr.r.bit : static_cast<int>((h >> 32) % 8);
        payload[b] ^= static_cast<std::byte>(1u << bit);
        if (metrics) obs::add(fault_metrics().bitflipped);
        break;
      }
      case FaultAction::kDelay:
        delay_ms = lr.r.delay_ms;
        if (metrics) obs::add(fault_metrics().delayed);
        break;
      case FaultAction::kKill:
        break;  // unreachable
    }
  }
  return keep;
}

void count_rank_failed_notification() {
  if (obs::metrics_enabled()) obs::add(fault_metrics().rank_failed);
}

}  // namespace dtfe::simmpi
