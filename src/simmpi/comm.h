// A message-passing runtime with MPI semantics over thread-backed ranks.
//
// The paper's distributed framework is written against MPI (MPI_Send/Recv,
// MPI_Allgather, MPI_Bcast). No MPI implementation is available in this
// environment, so this module provides the same programming model: each
// "rank" is a thread with a private mailbox; point-to-point messages are
// blocking, FIFO per (source, destination) pair, and matched by (source,
// tag); collectives are built on point-to-point and must be entered by all
// ranks in the same program order, exactly like MPI.
//
// Framework code only touches the Comm interface, so porting to real MPI is
// a mechanical substitution (the paper's own claim about its triangulation
// library applies here too).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "util/error.h"

namespace dtfe::simmpi {

constexpr int kAnySource = -1;

class Runtime;

/// Per-rank communicator handle. Cheap to copy within the owning rank's
/// thread; NOT meant to be shared across threads.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  // --- point to point ------------------------------------------------------

  /// Blocking send (buffered: returns once the payload is enqueued, like an
  /// MPI_Send that fits the eager threshold).
  void send_bytes(int dest, int tag, std::span<const std::byte> data);

  /// Blocking receive matching (source, tag); source may be kAnySource.
  /// Returns the payload and fills `actual_source` if provided.
  std::vector<std::byte> recv_bytes(int source, int tag,
                                    int* actual_source = nullptr);

  /// Non-blocking probe: true if a matching message is waiting.
  bool iprobe(int source, int tag) const;

  // --- typed convenience (trivially copyable payloads) ---------------------

  template <typename T>
  void send_value(int dest, int tag, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag,
               {reinterpret_cast<const std::byte*>(&v), sizeof(T)});
  }

  template <typename T>
  T recv_value(int source, int tag, int* actual_source = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto bytes = recv_bytes(source, tag, actual_source);
    DTFE_CHECK(bytes.size() == sizeof(T));
    T v;
    std::memcpy(&v, bytes.data(), sizeof(T));
    return v;
  }

  template <typename T>
  void send_vector(int dest, int tag, std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag,
               {reinterpret_cast<const std::byte*>(v.data()),
                v.size() * sizeof(T)});
  }

  template <typename T>
  std::vector<T> recv_vector(int source, int tag,
                             int* actual_source = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto bytes = recv_bytes(source, tag, actual_source);
    DTFE_CHECK(bytes.size() % sizeof(T) == 0);
    std::vector<T> v(bytes.size() / sizeof(T));
    std::memcpy(v.data(), bytes.data(), bytes.size());
    return v;
  }

  // --- collectives (all ranks must call in the same order) ------------------

  void barrier();
  /// Root's payload is broadcast; non-roots' buffers are replaced.
  void bcast_bytes(std::vector<std::byte>& data, int root);
  /// Every rank contributes a value; all receive the per-rank array.
  template <typename T>
  std::vector<T> allgather(const T& mine) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto per_rank = allgather_bytes(
        {reinterpret_cast<const std::byte*>(&mine), sizeof(T)});
    std::vector<T> out(per_rank.size());
    for (std::size_t r = 0; r < per_rank.size(); ++r) {
      DTFE_CHECK(per_rank[r].size() == sizeof(T));
      std::memcpy(&out[r], per_rank[r].data(), sizeof(T));
    }
    return out;
  }
  /// Variable-size allgather (MPI_Allgatherv): returns one byte buffer per
  /// rank.
  std::vector<std::vector<std::byte>> allgather_bytes(
      std::span<const std::byte> mine);
  template <typename T>
  std::vector<std::vector<T>> allgatherv(std::span<const T> mine) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto raw = allgather_bytes(
        {reinterpret_cast<const std::byte*>(mine.data()),
         mine.size() * sizeof(T)});
    std::vector<std::vector<T>> out(raw.size());
    for (std::size_t r = 0; r < raw.size(); ++r) {
      out[r].resize(raw[r].size() / sizeof(T));
      std::memcpy(out[r].data(), raw[r].data(), raw[r].size());
    }
    return out;
  }
  double allreduce_sum(double x);
  double allreduce_max(double x);

 private:
  friend class Runtime;
  friend void run(int nranks, const std::function<void(Comm&)>& fn);
  Comm(Runtime* rt, int rank) : rt_(rt), rank_(rank) {}

  Runtime* rt_;
  int rank_;
};

/// Spawn `nranks` threads, each running fn(comm). Exceptions thrown by any
/// rank are collected and the first is rethrown after all ranks finish or
/// deadlock-free shutdown. Ranks may freely oversubscribe the hardware —
/// blocking receives sleep on condition variables.
void run(int nranks, const std::function<void(Comm&)>& fn);

}  // namespace dtfe::simmpi
