// A message-passing runtime with MPI semantics over pluggable transports.
//
// The paper's distributed framework is written against MPI (MPI_Send/Recv,
// MPI_Allgather, MPI_Bcast). No MPI implementation is available in this
// environment, so this module provides the same programming model behind a
// CommBackend abstraction with two transports:
//   * thread (this file + comm.cpp): each "rank" is a thread with a private
//     in-memory mailbox — the default, zero-setup mode;
//   * socket (socket_transport.h): each rank is an OS process connected to
//     a launcher-side router over length-prefixed, CRC-checked Unix-domain
//     frames, with heartbeat failure detection (DESIGN.md §9).
// Either way, point-to-point messages are blocking, FIFO per (source,
// destination) pair, and matched by (source, tag); collectives are built on
// point-to-point and must be entered by all ranks in the same program
// order, exactly like MPI.
//
// Fault model (see simmpi/fault.h): a FaultPlan passed through RunOptions
// can kill ranks and corrupt messages deterministically. A dead rank never
// hangs its peers: blocking receives from it throw RankFailed, bounded
// receives return RecvStatus::kRankFailed, and the collectives treat it as
// absent (its allgather slice comes back empty, barrier skips it). This is
// the ULFM-style "failure notification instead of deadlock" contract the
// framework's degradation paths are written against.
//
// Framework code only touches the Comm interface, so porting to real MPI is
// a mechanical substitution (the paper's own claim about its triangulation
// library applies here too).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "util/error.h"

namespace dtfe::simmpi {

constexpr int kAnySource = -1;

struct FaultPlan;

/// Thrown by blocking receives (and the collectives built on them) when the
/// awaited peer has died: the runtime's replacement for an MPI deadlock.
class RankFailed : public Error {
 public:
  RankFailed(int rank, const std::string& what)
      : Error(what), failed_rank_(rank) {}
  int failed_rank() const { return failed_rank_; }

 private:
  int failed_rank_;
};

enum class RecvStatus { kOk, kTimeout, kRankFailed };

/// Outcome of a bounded-wait receive.
struct RecvResult {
  RecvStatus status = RecvStatus::kOk;
  int source = -1;  ///< delivering rank (kOk) or failed rank (kRankFailed)
  std::vector<std::byte> payload;
  bool ok() const { return status == RecvStatus::kOk; }
};

/// The transport behind a Comm: point-to-point delivery plus failure
/// queries. Two implementations exist — the thread-backed Runtime in
/// comm.cpp (ranks are threads with in-memory mailboxes) and the
/// multi-process SocketEndpoint in socket_transport.h (each rank is an OS
/// process framed over a Unix-domain socket). Comm's collectives are built
/// on these five calls only, so they behave identically over both.
class CommBackend {
 public:
  virtual ~CommBackend() = default;
  virtual int size() const = 0;
  virtual bool is_dead(int rank) const = 0;
  /// Blocking send from `src` (always the owning rank). Sends to a dead
  /// rank are silently discarded.
  virtual void send(int src, int dest, int tag,
                    std::span<const std::byte> data) = 0;
  /// Shared blocking/bounded receive; empty deadline = wait until a message
  /// arrives or the awaited peer dies.
  virtual RecvResult recv(
      int me, int source, int tag,
      std::optional<std::chrono::steady_clock::time_point> deadline) = 0;
  virtual bool iprobe(int me, int source, int tag) const = 0;

  std::vector<int> failed_ranks() const {
    std::vector<int> out;
    for (int r = 0; r < size(); ++r)
      if (is_dead(r)) out.push_back(r);
    return out;
  }
  bool any_dead() const {
    for (int r = 0; r < size(); ++r)
      if (is_dead(r)) return true;
    return false;
  }
};

/// Per-rank communicator handle. Cheap to copy within the owning rank's
/// thread; NOT meant to be shared across threads.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  // --- point to point ------------------------------------------------------

  /// Blocking send (buffered: returns once the payload is enqueued, like an
  /// MPI_Send that fits the eager threshold). Sends to a dead rank are
  /// silently discarded.
  void send_bytes(int dest, int tag, std::span<const std::byte> data);

  /// Blocking receive matching (source, tag); source may be kAnySource.
  /// Returns the payload and fills `actual_source` if provided. Throws
  /// RankFailed if `source` is dead (or, for kAnySource, every other rank
  /// is dead) and no matching message is queued.
  std::vector<std::byte> recv_bytes(int source, int tag,
                                    int* actual_source = nullptr);

  /// Bounded-wait receive: like recv_bytes but returns a status instead of
  /// blocking forever — kOk with the payload, kTimeout if nothing matching
  /// arrived within `timeout_ms`, or kRankFailed if the awaited source died
  /// (reported as soon as the death is visible, not after the timeout).
  RecvResult recv_bytes_timeout(int source, int tag, int timeout_ms);

  /// Non-blocking probe: true if a matching message is waiting.
  bool iprobe(int source, int tag) const;

  // --- failure queries -----------------------------------------------------

  /// True if `rank` has been killed by the fault plan.
  bool rank_failed(int rank) const;
  /// True if any rank has died.
  bool any_rank_failed() const;
  /// All dead ranks, ascending.
  std::vector<int> failed_ranks() const;

  // --- typed convenience (trivially copyable payloads) ---------------------

  template <typename T>
  void send_value(int dest, int tag, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag,
               {reinterpret_cast<const std::byte*>(&v), sizeof(T)});
  }

  template <typename T>
  T recv_value(int source, int tag, int* actual_source = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    int src = source;
    const auto bytes = recv_bytes(source, tag, &src);
    DTFE_CHECK_MSG(bytes.size() == sizeof(T),
                   "recv_value size mismatch on rank "
                       << rank_ << ": source " << src << " tag " << tag
                       << " delivered " << bytes.size()
                       << " bytes, expected exactly " << sizeof(T));
    if (actual_source) *actual_source = src;
    T v;
    std::memcpy(&v, bytes.data(), sizeof(T));
    return v;
  }

  template <typename T>
  void send_vector(int dest, int tag, std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag,
               {reinterpret_cast<const std::byte*>(v.data()),
                v.size() * sizeof(T)});
  }

  template <typename T>
  std::vector<T> recv_vector(int source, int tag,
                             int* actual_source = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    int src = source;
    const auto bytes = recv_bytes(source, tag, &src);
    DTFE_CHECK_MSG(bytes.size() % sizeof(T) == 0,
                   "recv_vector size mismatch on rank "
                       << rank_ << ": source " << src << " tag " << tag
                       << " delivered " << bytes.size()
                       << " bytes, expected a multiple of " << sizeof(T));
    if (actual_source) *actual_source = src;
    std::vector<T> v(bytes.size() / sizeof(T));
    if (!bytes.empty())  // empty message: data() may be null
      std::memcpy(v.data(), bytes.data(), bytes.size());
    return v;
  }

  // --- collectives (all ranks must call in the same order) ------------------

  /// Dead ranks are skipped (the barrier still synchronizes the survivors).
  void barrier();
  /// Root's payload is broadcast; non-roots' buffers are replaced. Throws
  /// RankFailed on non-roots if the root is dead.
  void bcast_bytes(std::vector<std::byte>& data, int root);
  /// Every rank contributes a value; all receive the per-rank array. A dead
  /// rank's entry is value-initialized (its allgather_bytes slice is empty).
  template <typename T>
  std::vector<T> allgather(const T& mine) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto per_rank = allgather_bytes(
        {reinterpret_cast<const std::byte*>(&mine), sizeof(T)});
    std::vector<T> out(per_rank.size());
    for (std::size_t r = 0; r < per_rank.size(); ++r) {
      if (per_rank[r].empty()) {
        out[r] = T{};  // dead rank: absent contribution
        continue;
      }
      DTFE_CHECK_MSG(per_rank[r].size() == sizeof(T),
                     "allgather size mismatch on rank "
                         << rank_ << ": rank " << r << " contributed "
                         << per_rank[r].size() << " bytes, expected "
                         << sizeof(T));
      std::memcpy(&out[r], per_rank[r].data(), sizeof(T));
    }
    return out;
  }
  /// Variable-size allgather (MPI_Allgatherv): returns one byte buffer per
  /// rank. Dead ranks' buffers come back empty.
  std::vector<std::vector<std::byte>> allgather_bytes(
      std::span<const std::byte> mine);
  template <typename T>
  std::vector<std::vector<T>> allgatherv(std::span<const T> mine) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto raw = allgather_bytes(
        {reinterpret_cast<const std::byte*>(mine.data()),
         mine.size() * sizeof(T)});
    std::vector<std::vector<T>> out(raw.size());
    for (std::size_t r = 0; r < raw.size(); ++r) {
      out[r].resize(raw[r].size() / sizeof(T));
      if (!raw[r].empty())  // dead rank: empty buffer, data() may be null
        std::memcpy(out[r].data(), raw[r].data(), raw[r].size());
    }
    return out;
  }
  /// Dead ranks contribute nothing to the reductions.
  double allreduce_sum(double x);
  double allreduce_max(double x);

  /// Internal: wrap a backend as rank `rank`. Used by the runtimes (the
  /// thread run() below, the socket worker entry) — not a user-facing API.
  Comm(CommBackend* backend, int rank) : rt_(backend), rank_(rank) {}

 private:
  CommBackend* rt_;
  int rank_;
};

struct RunOptions {
  /// Borrowed; may be null (no faults). Must outlive the run.
  const FaultPlan* fault_plan = nullptr;
};

/// Spawn `nranks` threads, each running fn(comm). Exceptions thrown by any
/// rank are collected and the first is rethrown after all ranks finish or
/// deadlock-free shutdown. Ranks may freely oversubscribe the hardware —
/// blocking receives sleep on condition variables. A rank killed by the
/// fault plan simply stops (its death is injected, not an error); peers see
/// it through RankFailed / RecvStatus::kRankFailed and the failure queries.
void run(int nranks, const RunOptions& opts,
         const std::function<void(Comm&)>& fn);
void run(int nranks, const std::function<void(Comm&)>& fn);

}  // namespace dtfe::simmpi
