#include "simmpi/comm.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <optional>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "simmpi/fault.h"

namespace dtfe::simmpi {

namespace {
// Tags at and above this value are reserved for collectives.
constexpr int kInternalTagBase = 1 << 24;
constexpr int kTagBarrier = kInternalTagBase + 0;
constexpr int kTagBcast = kInternalTagBase + 1;
constexpr int kTagGather = kInternalTagBase + 2;
constexpr int kTagReduce = kInternalTagBase + 3;

// Message/byte totals across all ranks (collective traffic included: the
// collectives are built on these same point-to-point paths, exactly the
// traffic a real MPI run would put on the wire).
struct CommMetrics {
  obs::MetricId messages_sent = obs::counter("dtfe.simmpi.messages_sent");
  obs::MetricId bytes_sent = obs::counter("dtfe.simmpi.bytes_sent");
  obs::MetricId messages_received =
      obs::counter("dtfe.simmpi.messages_received");
  obs::MetricId bytes_received = obs::counter("dtfe.simmpi.bytes_received");
};

const CommMetrics& comm_metrics() {
  static const CommMetrics m;
  return m;
}

// Injected-fault tallies (README "Fault tolerance").
struct FaultMetrics {
  obs::MetricId ranks_killed = obs::counter("dtfe.fault.ranks_killed");
  obs::MetricId dropped = obs::counter("dtfe.fault.messages_dropped");
  obs::MetricId truncated = obs::counter("dtfe.fault.messages_truncated");
  obs::MetricId bitflipped = obs::counter("dtfe.fault.messages_bitflipped");
  obs::MetricId delayed = obs::counter("dtfe.fault.messages_delayed");
  obs::MetricId rank_failed =
      obs::counter("dtfe.fault.rank_failed_notifications");
};

const FaultMetrics& fault_metrics() {
  static const FaultMetrics m;
  return m;
}

/// Thrown into a rank's thread when the fault plan kills it. Deliberately
/// NOT derived from dtfe::Error: library catch(const Error&) containment
/// sites must not swallow an injected death mid-unwind.
struct RankKilledSignal {};

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}
}  // namespace

class Runtime {
 public:
  using Clock = std::chrono::steady_clock;

  Runtime(int nranks, const FaultPlan* plan)
      : boxes_(static_cast<std::size_t>(nranks)),
        dead_(static_cast<std::size_t>(nranks)),
        seed_(plan ? plan->seed : 1) {
    if (plan)
      for (const FaultRule& r : plan->rules) rules_.emplace_back(r);
  }

  int size() const { return static_cast<int>(boxes_.size()); }

  bool is_dead(int rank) const {
    return dead_[static_cast<std::size_t>(rank)].load(
        std::memory_order_acquire);
  }

  std::vector<int> failed_ranks() const {
    std::vector<int> out;
    for (int r = 0; r < size(); ++r)
      if (is_dead(r)) out.push_back(r);
    return out;
  }

  bool any_dead() const {
    for (int r = 0; r < size(); ++r)
      if (is_dead(r)) return true;
    return false;
  }

  void send(int src, int dest, int tag, std::span<const std::byte> data) {
    DTFE_CHECK_MSG(dest >= 0 && dest < size(), "send to invalid rank " << dest);
    on_comm_call(src, tag);
    std::vector<std::byte> payload(data.begin(), data.end());
    Clock::duration delay{};
    if (!apply_message_faults(src, dest, tag, payload, delay)) return;
    if (is_dead(dest)) return;  // no one left to read it
    Mailbox& box = boxes_[static_cast<std::size_t>(dest)];
    {
      std::lock_guard<std::mutex> lock(box.mutex);
      box.queue.push_back(
          Message{src, tag, std::move(payload), Clock::now() + delay});
    }
    box.cv.notify_all();
  }

  /// Shared blocking/bounded receive. `deadline` empty = wait forever (well,
  /// until a message or the source's death).
  RecvResult recv(int me, int source, int tag,
                  std::optional<Clock::time_point> deadline) {
    on_comm_call(me, tag);
    Mailbox& box = boxes_[static_cast<std::size_t>(me)];
    std::unique_lock<std::mutex> lock(box.mutex);
    for (;;) {
      const Clock::time_point now = Clock::now();
      std::optional<Clock::time_point> next_ready;
      for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
        if ((source != kAnySource && it->src != source) || it->tag != tag)
          continue;
        if (it->ready_at > now) {
          if (!next_ready || it->ready_at < *next_ready)
            next_ready = it->ready_at;
          continue;  // delayed delivery: not visible yet
        }
        RecvResult res;
        res.status = RecvStatus::kOk;
        res.source = it->src;
        res.payload = std::move(it->payload);
        box.queue.erase(it);
        return res;
      }
      // Nothing deliverable now. If nothing is even in flight (delayed) and
      // the awaited peer(s) are dead, report the failure instead of hanging.
      if (!next_ready) {
        if (source != kAnySource && is_dead(source))
          return RecvResult{RecvStatus::kRankFailed, source, {}};
        if (source == kAnySource && all_others_dead(me))
          return RecvResult{RecvStatus::kRankFailed, -1, {}};
      }
      if (deadline && now >= *deadline)
        return RecvResult{RecvStatus::kTimeout, -1, {}};
      std::optional<Clock::time_point> wake = deadline;
      if (next_ready && (!wake || *next_ready < *wake)) wake = next_ready;
      if (wake)
        box.cv.wait_until(lock, *wake);
      else
        box.cv.wait(lock);
    }
  }

  bool iprobe(int me, int source, int tag) const {
    const Mailbox& box = boxes_[static_cast<std::size_t>(me)];
    const Clock::time_point now = Clock::now();
    std::lock_guard<std::mutex> lock(box.mutex);
    for (const Message& m : box.queue)
      if ((source == kAnySource || m.src == source) && m.tag == tag &&
          m.ready_at <= now)
        return true;
    return false;
  }

 private:
  struct Message {
    int src;
    int tag;
    std::vector<std::byte> payload;
    Clock::time_point ready_at;  ///< delayed-fault delivery time
  };
  struct Mailbox {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
  };
  /// A rule plus its match counter. Only one thread ever ADVANCES a given
  /// rule (the victim for kills, the sending rank for message faults), but
  /// every rank's scan READS all rules' state, so the mutable fields are
  /// relaxed atomics — uncontended in practice, race-free formally.
  struct LiveRule {
    explicit LiveRule(const FaultRule& rule) : r(rule) {}
    FaultRule r;
    std::atomic<std::uint64_t> count{0};
    std::atomic<bool> fired{false};
  };

  bool all_others_dead(int me) const {
    for (int r = 0; r < size(); ++r)
      if (r != me && !is_dead(r)) return false;
    return size() > 1;
  }

  /// Kill check: counts this rank's send/recv ops against matching kill
  /// rules and, when one fires, marks the rank dead, wakes every blocked
  /// peer, and unwinds the rank's thread.
  void on_comm_call(int rank, int tag) {
    if (rules_.empty()) return;
    for (LiveRule& lr : rules_) {
      if (lr.fired.load(std::memory_order_relaxed) ||
          lr.r.action != FaultAction::kKill || lr.r.rank != rank)
        continue;
      if (lr.r.tag != -1 && lr.r.tag != tag) continue;
      if (lr.count.fetch_add(1, std::memory_order_relaxed) + 1 < lr.r.at)
        continue;
      lr.fired.store(true, std::memory_order_relaxed);
      dead_[static_cast<std::size_t>(rank)].store(true,
                                                  std::memory_order_release);
      if (obs::metrics_enabled()) obs::add(fault_metrics().ranks_killed);
      // Wake everyone: blocked receivers re-check the dead flags. Locking
      // each mailbox mutex around the notify closes the check-then-wait race.
      for (Mailbox& box : boxes_) {
        std::lock_guard<std::mutex> lock(box.mutex);
        box.cv.notify_all();
      }
      throw RankKilledSignal{};
    }
  }

  /// Applies drop/trunc/flip/delay rules to one outgoing message. Returns
  /// false if the message must be discarded.
  bool apply_message_faults(int src, int dst, int tag,
                            std::vector<std::byte>& payload,
                            Clock::duration& delay) {
    bool keep = true;
    for (LiveRule& lr : rules_) {
      if (lr.fired.load(std::memory_order_relaxed) ||
          lr.r.action == FaultAction::kKill)
        continue;
      if (lr.r.src != src || lr.r.dst != dst) continue;
      if (lr.r.tag != -1 && lr.r.tag != tag) continue;
      const std::uint64_t cnt =
          lr.count.fetch_add(1, std::memory_order_relaxed) + 1;
      if (cnt < lr.r.nth) continue;
      lr.fired.store(true, std::memory_order_relaxed);
      const bool metrics = obs::metrics_enabled();
      switch (lr.r.action) {
        case FaultAction::kDrop:
          if (metrics) obs::add(fault_metrics().dropped);
          keep = false;
          break;
        case FaultAction::kTruncate: {
          const std::size_t n =
              lr.r.bytes > 0 ? static_cast<std::size_t>(lr.r.bytes)
                             : payload.size() / 2;
          payload.resize(std::min(payload.size(), n));
          if (metrics) obs::add(fault_metrics().truncated);
          break;
        }
        case FaultAction::kBitFlip: {
          if (payload.empty()) break;
          const std::uint64_t h = mix64(
              seed_ ^ mix64((static_cast<std::uint64_t>(src) << 32) ^
                            static_cast<std::uint64_t>(dst) ^
                            (cnt << 16)));
          const std::size_t b =
              lr.r.byte >= 0 ? std::min(static_cast<std::size_t>(lr.r.byte),
                                        payload.size() - 1)
                             : static_cast<std::size_t>(h % payload.size());
          const int bit = lr.r.bit >= 0 ? lr.r.bit
                                        : static_cast<int>((h >> 32) % 8);
          payload[b] ^= static_cast<std::byte>(1u << bit);
          if (metrics) obs::add(fault_metrics().bitflipped);
          break;
        }
        case FaultAction::kDelay:
          delay = std::chrono::milliseconds(lr.r.delay_ms);
          if (metrics) obs::add(fault_metrics().delayed);
          break;
        case FaultAction::kKill:
          break;  // unreachable
      }
    }
    return keep;
  }

  std::vector<Mailbox> boxes_;
  std::vector<std::atomic<bool>> dead_;
  const std::uint64_t seed_;
  std::deque<LiveRule> rules_;  // deque: LiveRule holds atomics (immovable)
};

int Comm::size() const { return rt_->size(); }

bool Comm::rank_failed(int rank) const { return rt_->is_dead(rank); }
bool Comm::any_rank_failed() const { return rt_->any_dead(); }
std::vector<int> Comm::failed_ranks() const { return rt_->failed_ranks(); }

void Comm::send_bytes(int dest, int tag, std::span<const std::byte> data) {
  if (obs::metrics_enabled()) {
    const CommMetrics& m = comm_metrics();
    obs::add(m.messages_sent);
    obs::add(m.bytes_sent, static_cast<double>(data.size()));
  }
  rt_->send(rank_, dest, tag, data);
}

std::vector<std::byte> Comm::recv_bytes(int source, int tag,
                                        int* actual_source) {
  RecvResult res = rt_->recv(rank_, source, tag, std::nullopt);
  if (res.status == RecvStatus::kRankFailed) {
    if (obs::metrics_enabled()) obs::add(fault_metrics().rank_failed);
    std::ostringstream os;
    os << "rank " << res.source << " failed while rank " << rank_
       << " awaited tag " << tag;
    throw RankFailed(res.source, os.str());
  }
  if (obs::metrics_enabled()) {
    const CommMetrics& m = comm_metrics();
    obs::add(m.messages_received);
    obs::add(m.bytes_received, static_cast<double>(res.payload.size()));
  }
  if (actual_source) *actual_source = res.source;
  return std::move(res.payload);
}

RecvResult Comm::recv_bytes_timeout(int source, int tag, int timeout_ms) {
  RecvResult res = rt_->recv(
      rank_, source, tag,
      Runtime::Clock::now() + std::chrono::milliseconds(timeout_ms));
  if (obs::metrics_enabled()) {
    if (res.status == RecvStatus::kRankFailed) {
      obs::add(fault_metrics().rank_failed);
    } else if (res.status == RecvStatus::kOk) {
      const CommMetrics& m = comm_metrics();
      obs::add(m.messages_received);
      obs::add(m.bytes_received, static_cast<double>(res.payload.size()));
    }
  }
  return res;
}

bool Comm::iprobe(int source, int tag) const {
  return rt_->iprobe(rank_, source, tag);
}

void Comm::barrier() {
  // Dissemination-free simple tree-less barrier: gather-to-0 then release.
  // Dead ranks are skipped; the survivors still synchronize.
  const std::byte token{0};
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) {
      try {
        (void)recv_bytes(r, kTagBarrier);
      } catch (const RankFailed&) {
        // r died before checking in — released below like everyone else
        // (the send to it is discarded).
      }
    }
    for (int r = 1; r < size(); ++r) send_bytes(r, kTagBarrier, {&token, 1});
  } else {
    send_bytes(0, kTagBarrier, {&token, 1});
    (void)recv_bytes(0, kTagBarrier);
  }
}

void Comm::bcast_bytes(std::vector<std::byte>& data, int root) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r)
      if (r != root) send_bytes(r, kTagBcast, data);
  } else {
    data = recv_bytes(root, kTagBcast);
  }
}

std::vector<std::vector<std::byte>> Comm::allgather_bytes(
    std::span<const std::byte> mine) {
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(size()));
  out[static_cast<std::size_t>(rank_)].assign(mine.begin(), mine.end());
  for (int r = 0; r < size(); ++r)
    if (r != rank_) send_bytes(r, kTagGather, mine);
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    try {
      out[static_cast<std::size_t>(r)] = recv_bytes(r, kTagGather);
    } catch (const RankFailed&) {
      // dead rank: its slice stays empty
    }
  }
  return out;
}

double Comm::allreduce_sum(double x) {
  double total = x;
  const auto per_rank = allgather_bytes(
      {reinterpret_cast<const std::byte*>(&x), sizeof(double)});
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    if (static_cast<int>(r) == rank_ || per_rank[r].size() != sizeof(double))
      continue;
    double v;
    std::memcpy(&v, per_rank[r].data(), sizeof(double));
    total += v;
  }
  return total;
}

double Comm::allreduce_max(double x) {
  double best = x;
  const auto per_rank = allgather_bytes(
      {reinterpret_cast<const std::byte*>(&x), sizeof(double)});
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    if (static_cast<int>(r) == rank_ || per_rank[r].size() != sizeof(double))
      continue;
    double v;
    std::memcpy(&v, per_rank[r].data(), sizeof(double));
    best = v > best ? v : best;
  }
  return best;
}

void run(int nranks, const RunOptions& opts,
         const std::function<void(Comm&)>& fn) {
  DTFE_CHECK(nranks >= 1);
  Runtime rt(nranks, opts.fault_plan);
  std::vector<std::thread> threads;
  std::mutex err_mutex;
  std::exception_ptr first_error;

  std::vector<Comm> comms;
  comms.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) comms.push_back(Comm(&rt, r));

  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    Comm* comm = &comms[static_cast<std::size_t>(r)];
    threads.emplace_back([comm, r, &fn, &err_mutex, &first_error] {
      obs::TraceRecorder::set_thread_rank(r);
      try {
        fn(*comm);
      } catch (const RankKilledSignal&) {
        // Injected death: the rank just stops. Not an error of the run.
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void run(int nranks, const std::function<void(Comm&)>& fn) {
  run(nranks, RunOptions{}, fn);
}

}  // namespace dtfe::simmpi
