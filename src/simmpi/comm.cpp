// Thread-backed CommBackend: every rank is a thread, every mailbox a
// deque, and the FaultArbiter injects deaths/corruption deterministically.
// The collectives and Comm surface below are transport-agnostic — they run
// unchanged over the socket transport (socket_transport.cpp).
#include "simmpi/comm.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <sstream>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "simmpi/fault.h"
#include "simmpi/mailbox.h"

namespace dtfe::simmpi {

namespace {
// Tags at and above this value are reserved for collectives.
constexpr int kInternalTagBase = 1 << 24;
constexpr int kTagBarrier = kInternalTagBase + 0;
constexpr int kTagBcast = kInternalTagBase + 1;
constexpr int kTagGather = kInternalTagBase + 2;
constexpr int kTagReduce = kInternalTagBase + 3;

// Message/byte totals across all ranks (collective traffic included: the
// collectives are built on these same point-to-point paths, exactly the
// traffic a real MPI run would put on the wire).
struct CommMetrics {
  obs::MetricId messages_sent = obs::counter("dtfe.simmpi.messages_sent");
  obs::MetricId bytes_sent = obs::counter("dtfe.simmpi.bytes_sent");
  obs::MetricId messages_received =
      obs::counter("dtfe.simmpi.messages_received");
  obs::MetricId bytes_received = obs::counter("dtfe.simmpi.bytes_received");
};

const CommMetrics& comm_metrics() {
  static const CommMetrics m;
  return m;
}

/// The in-process transport: one Mailbox per rank, a shared FaultArbiter,
/// and per-rank dead flags. Injected kills throw RankKilledSignal into the
/// victim's thread; peers observe the death through the mailbox failure
/// probe and the is_dead() queries.
class Runtime final : public CommBackend {
 public:
  using Clock = Mailbox::Clock;

  Runtime(int nranks, const FaultPlan* plan)
      : boxes_(static_cast<std::size_t>(nranks)),
        dead_(static_cast<std::size_t>(nranks)),
        arbiter_(plan) {}

  int size() const override { return static_cast<int>(boxes_.size()); }

  bool is_dead(int rank) const override {
    return dead_[static_cast<std::size_t>(rank)].load(
        std::memory_order_acquire);
  }

  void send(int src, int dest, int tag,
            std::span<const std::byte> data) override {
    DTFE_CHECK_MSG(dest >= 0 && dest < size(), "send to invalid rank " << dest);
    kill_check(src, tag);
    std::vector<std::byte> payload(data.begin(), data.end());
    std::uint64_t delay_ms = 0;
    if (!arbiter_.apply_message_faults(src, dest, tag, payload, delay_ms))
      return;  // dropped on the (simulated) wire
    if (is_dead(dest)) return;  // no one left to read it
    boxes_[static_cast<std::size_t>(dest)].post(
        src, tag, std::move(payload), std::chrono::milliseconds(delay_ms));
  }

  RecvResult recv(int me, int source, int tag,
                  std::optional<Clock::time_point> deadline) override {
    kill_check(me, tag);
    return boxes_[static_cast<std::size_t>(me)].recv(
        source, tag, deadline, [this, me, source]() -> std::optional<RecvResult> {
          if (source != kAnySource && is_dead(source))
            return RecvResult{RecvStatus::kRankFailed, source, {}};
          if (source == kAnySource && all_others_dead(me))
            return RecvResult{RecvStatus::kRankFailed, -1, {}};
          return std::nullopt;
        });
  }

  bool iprobe(int me, int source, int tag) const override {
    return boxes_[static_cast<std::size_t>(me)].iprobe(source, tag);
  }

 private:
  bool all_others_dead(int me) const {
    for (int r = 0; r < size(); ++r)
      if (r != me && !is_dead(r)) return false;
    return size() > 1;
  }

  /// Kill check at the top of every send/recv: when the arbiter fires, mark
  /// the rank dead, wake every blocked peer, and unwind the rank's thread.
  void kill_check(int rank, int tag) {
    if (!arbiter_.on_comm_op(rank, tag)) return;
    dead_[static_cast<std::size_t>(rank)].store(true,
                                                std::memory_order_release);
    // Wake everyone: blocked receivers re-check the dead flags via their
    // failure probe.
    for (Mailbox& box : boxes_) box.notify();
    throw RankKilledSignal{};
  }

  std::vector<Mailbox> boxes_;
  std::vector<std::atomic<bool>> dead_;
  FaultArbiter arbiter_;
};

}  // namespace

int Comm::size() const { return rt_->size(); }

bool Comm::rank_failed(int rank) const { return rt_->is_dead(rank); }
bool Comm::any_rank_failed() const { return rt_->any_dead(); }
std::vector<int> Comm::failed_ranks() const { return rt_->failed_ranks(); }

void Comm::send_bytes(int dest, int tag, std::span<const std::byte> data) {
  if (obs::metrics_enabled()) {
    const CommMetrics& m = comm_metrics();
    obs::add(m.messages_sent);
    obs::add(m.bytes_sent, static_cast<double>(data.size()));
  }
  rt_->send(rank_, dest, tag, data);
}

std::vector<std::byte> Comm::recv_bytes(int source, int tag,
                                        int* actual_source) {
  RecvResult res = rt_->recv(rank_, source, tag, std::nullopt);
  if (res.status == RecvStatus::kRankFailed) {
    count_rank_failed_notification();
    std::ostringstream os;
    os << "rank " << res.source << " failed while rank " << rank_
       << " awaited tag " << tag;
    throw RankFailed(res.source, os.str());
  }
  if (obs::metrics_enabled()) {
    const CommMetrics& m = comm_metrics();
    obs::add(m.messages_received);
    obs::add(m.bytes_received, static_cast<double>(res.payload.size()));
  }
  if (actual_source) *actual_source = res.source;
  return std::move(res.payload);
}

RecvResult Comm::recv_bytes_timeout(int source, int tag, int timeout_ms) {
  RecvResult res = rt_->recv(
      rank_, source, tag,
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms));
  if (res.status == RecvStatus::kRankFailed) {
    count_rank_failed_notification();
  } else if (res.status == RecvStatus::kOk && obs::metrics_enabled()) {
    const CommMetrics& m = comm_metrics();
    obs::add(m.messages_received);
    obs::add(m.bytes_received, static_cast<double>(res.payload.size()));
  }
  return res;
}

bool Comm::iprobe(int source, int tag) const {
  return rt_->iprobe(rank_, source, tag);
}

void Comm::barrier() {
  // Dissemination-free simple tree-less barrier: gather-to-0 then release.
  // Dead ranks are skipped; the survivors still synchronize.
  const std::byte token{0};
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) {
      try {
        (void)recv_bytes(r, kTagBarrier);
      } catch (const RankFailed&) {
        // r died before checking in — released below like everyone else
        // (the send to it is discarded).
      }
    }
    for (int r = 1; r < size(); ++r) send_bytes(r, kTagBarrier, {&token, 1});
  } else {
    send_bytes(0, kTagBarrier, {&token, 1});
    (void)recv_bytes(0, kTagBarrier);
  }
}

void Comm::bcast_bytes(std::vector<std::byte>& data, int root) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r)
      if (r != root) send_bytes(r, kTagBcast, data);
  } else {
    data = recv_bytes(root, kTagBcast);
  }
}

std::vector<std::vector<std::byte>> Comm::allgather_bytes(
    std::span<const std::byte> mine) {
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(size()));
  out[static_cast<std::size_t>(rank_)].assign(mine.begin(), mine.end());
  for (int r = 0; r < size(); ++r)
    if (r != rank_) send_bytes(r, kTagGather, mine);
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    try {
      out[static_cast<std::size_t>(r)] = recv_bytes(r, kTagGather);
    } catch (const RankFailed&) {
      // dead rank: its slice stays empty
    }
  }
  return out;
}

double Comm::allreduce_sum(double x) {
  double total = x;
  const auto per_rank = allgather_bytes(
      {reinterpret_cast<const std::byte*>(&x), sizeof(double)});
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    if (static_cast<int>(r) == rank_ || per_rank[r].size() != sizeof(double))
      continue;
    double v;
    std::memcpy(&v, per_rank[r].data(), sizeof(double));
    total += v;
  }
  return total;
}

double Comm::allreduce_max(double x) {
  double best = x;
  const auto per_rank = allgather_bytes(
      {reinterpret_cast<const std::byte*>(&x), sizeof(double)});
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    if (static_cast<int>(r) == rank_ || per_rank[r].size() != sizeof(double))
      continue;
    double v;
    std::memcpy(&v, per_rank[r].data(), sizeof(double));
    best = v > best ? v : best;
  }
  return best;
}

void run(int nranks, const RunOptions& opts,
         const std::function<void(Comm&)>& fn) {
  DTFE_CHECK(nranks >= 1);
  Runtime rt(nranks, opts.fault_plan);
  std::vector<std::thread> threads;
  std::mutex err_mutex;
  std::exception_ptr first_error;

  std::vector<Comm> comms;
  comms.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) comms.push_back(Comm(&rt, r));

  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    Comm* comm = &comms[static_cast<std::size_t>(r)];
    threads.emplace_back([comm, r, &fn, &err_mutex, &first_error] {
      obs::TraceRecorder::set_thread_rank(r);
      try {
        fn(*comm);
      } catch (const RankKilledSignal&) {
        // Injected death: the rank just stops. Not an error of the run.
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void run(int nranks, const std::function<void(Comm&)>& fn) {
  run(nranks, RunOptions{}, fn);
}

}  // namespace dtfe::simmpi
