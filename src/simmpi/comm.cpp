#include "simmpi/comm.h"

#include <atomic>
#include <exception>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dtfe::simmpi {

namespace {
// Tags at and above this value are reserved for collectives.
constexpr int kInternalTagBase = 1 << 24;
constexpr int kTagBarrier = kInternalTagBase + 0;
constexpr int kTagBcast = kInternalTagBase + 1;
constexpr int kTagGather = kInternalTagBase + 2;
constexpr int kTagReduce = kInternalTagBase + 3;

// Message/byte totals across all ranks (collective traffic included: the
// collectives are built on these same point-to-point paths, exactly the
// traffic a real MPI run would put on the wire).
struct CommMetrics {
  obs::MetricId messages_sent = obs::counter("dtfe.simmpi.messages_sent");
  obs::MetricId bytes_sent = obs::counter("dtfe.simmpi.bytes_sent");
  obs::MetricId messages_received =
      obs::counter("dtfe.simmpi.messages_received");
  obs::MetricId bytes_received = obs::counter("dtfe.simmpi.bytes_received");
};

const CommMetrics& comm_metrics() {
  static const CommMetrics m;
  return m;
}
}  // namespace

class Runtime {
 public:
  explicit Runtime(int nranks) : boxes_(static_cast<std::size_t>(nranks)) {}

  int size() const { return static_cast<int>(boxes_.size()); }

  void send(int src, int dest, int tag, std::span<const std::byte> data) {
    DTFE_CHECK_MSG(dest >= 0 && dest < size(), "send to invalid rank " << dest);
    Mailbox& box = boxes_[static_cast<std::size_t>(dest)];
    {
      std::lock_guard<std::mutex> lock(box.mutex);
      box.queue.push_back(
          Message{src, tag, std::vector<std::byte>(data.begin(), data.end())});
    }
    box.cv.notify_all();
  }

  std::vector<std::byte> recv(int me, int source, int tag,
                              int* actual_source) {
    Mailbox& box = boxes_[static_cast<std::size_t>(me)];
    std::unique_lock<std::mutex> lock(box.mutex);
    for (;;) {
      for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
        if ((source == kAnySource || it->src == source) && it->tag == tag) {
          if (actual_source) *actual_source = it->src;
          std::vector<std::byte> data = std::move(it->payload);
          box.queue.erase(it);
          return data;
        }
      }
      box.cv.wait(lock);
    }
  }

  bool iprobe(int me, int source, int tag) const {
    const Mailbox& box = boxes_[static_cast<std::size_t>(me)];
    std::lock_guard<std::mutex> lock(box.mutex);
    for (const Message& m : box.queue)
      if ((source == kAnySource || m.src == source) && m.tag == tag)
        return true;
    return false;
  }

 private:
  struct Message {
    int src;
    int tag;
    std::vector<std::byte> payload;
  };
  struct Mailbox {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
  };
  std::vector<Mailbox> boxes_;
};

int Comm::size() const { return rt_->size(); }

void Comm::send_bytes(int dest, int tag, std::span<const std::byte> data) {
  if (obs::metrics_enabled()) {
    const CommMetrics& m = comm_metrics();
    obs::add(m.messages_sent);
    obs::add(m.bytes_sent, static_cast<double>(data.size()));
  }
  rt_->send(rank_, dest, tag, data);
}

std::vector<std::byte> Comm::recv_bytes(int source, int tag,
                                        int* actual_source) {
  auto data = rt_->recv(rank_, source, tag, actual_source);
  if (obs::metrics_enabled()) {
    const CommMetrics& m = comm_metrics();
    obs::add(m.messages_received);
    obs::add(m.bytes_received, static_cast<double>(data.size()));
  }
  return data;
}

bool Comm::iprobe(int source, int tag) const {
  return rt_->iprobe(rank_, source, tag);
}

void Comm::barrier() {
  // Dissemination-free simple tree-less barrier: gather-to-0 then release.
  const std::byte token{0};
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) (void)recv_bytes(r, kTagBarrier);
    for (int r = 1; r < size(); ++r) send_bytes(r, kTagBarrier, {&token, 1});
  } else {
    send_bytes(0, kTagBarrier, {&token, 1});
    (void)recv_bytes(0, kTagBarrier);
  }
}

void Comm::bcast_bytes(std::vector<std::byte>& data, int root) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r)
      if (r != root) send_bytes(r, kTagBcast, data);
  } else {
    data = recv_bytes(root, kTagBcast);
  }
}

std::vector<std::vector<std::byte>> Comm::allgather_bytes(
    std::span<const std::byte> mine) {
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(size()));
  out[static_cast<std::size_t>(rank_)].assign(mine.begin(), mine.end());
  for (int r = 0; r < size(); ++r)
    if (r != rank_) send_bytes(r, kTagGather, mine);
  for (int r = 0; r < size(); ++r)
    if (r != rank_) out[static_cast<std::size_t>(r)] = recv_bytes(r, kTagGather);
  return out;
}

double Comm::allreduce_sum(double x) {
  double total = 0.0;
  for (const double v : allgather(x)) total += v;
  return total;
}

double Comm::allreduce_max(double x) {
  double best = x;
  for (const double v : allgather(x)) best = v > best ? v : best;
  return best;
}

void run(int nranks, const std::function<void(Comm&)>& fn) {
  DTFE_CHECK(nranks >= 1);
  Runtime rt(nranks);
  std::vector<std::thread> threads;
  std::mutex err_mutex;
  std::exception_ptr first_error;

  std::vector<Comm> comms;
  comms.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) comms.push_back(Comm(&rt, r));

  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    Comm* comm = &comms[static_cast<std::size_t>(r)];
    threads.emplace_back([comm, r, &fn, &err_mutex, &first_error] {
      obs::TraceRecorder::set_thread_rank(r);
      try {
        fn(*comm);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dtfe::simmpi
