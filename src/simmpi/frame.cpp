#include "simmpi/frame.h"

#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace dtfe::simmpi {

namespace {

constexpr std::uint32_t kMagic = 0x50445446u;  // "PDTF"
// Anything bigger than this is a desynchronized stream, not a real payload
// (the largest legitimate frames are serialized result grids, well under it).
constexpr std::uint32_t kMaxPayload = 1u << 30;

/// On-wire header. Both ends are the same binary on the same host, so the
/// struct's memory layout IS the wire format; the static_asserts pin it.
struct WireHeader {
  std::uint32_t magic;
  std::uint32_t payload_size;
  std::uint64_t sent_ns;
  std::int32_t tag;
  std::uint32_t delay_ms;
  std::uint32_t crc;
  std::uint16_t type;
  std::int16_t src;
  std::int16_t dst;
  std::int16_t reserved;
};
static_assert(sizeof(WireHeader) == 40);
static_assert(std::is_trivially_copyable_v<WireHeader>);

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

/// Read exactly n bytes. Returns 1 on success, 0 on EOF before any byte
/// (clean close at a boundary only if n bytes were expected from offset 0),
/// -1 on error or short close.
int read_full(int fd, void* buf, std::size_t n) {
  std::size_t got = 0;
  char* p = static_cast<char*>(buf);
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r == 0) return got == 0 ? 0 : -1;  // mid-frame EOF is an error
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<std::size_t>(r);
  }
  return 1;
}

bool write_full(int fd, const void* buf, std::size_t n) {
  std::size_t sent = 0;
  const char* p = static_cast<const char*>(buf);
  while (sent < n) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the
    // process with SIGPIPE. Non-socket fds (tests write frames to pipes)
    // fall back to plain write.
    ssize_t w = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) w = ::write(fd, p + sent, n - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) {
  const auto& t = crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::byte b : data)
    c = t[(c ^ static_cast<std::uint8_t>(b)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool write_frame(int fd, const Frame& f) {
  WireHeader h{};
  h.magic = kMagic;
  h.payload_size = static_cast<std::uint32_t>(f.payload.size());
  h.sent_ns = f.sent_ns;
  h.tag = f.tag;
  h.delay_ms = f.delay_ms;
  h.crc = crc32(f.payload);
  h.type = static_cast<std::uint16_t>(f.type);
  h.src = static_cast<std::int16_t>(f.src);
  h.dst = static_cast<std::int16_t>(f.dst);
  h.reserved = 0;
  if (!write_full(fd, &h, sizeof(h))) return false;
  if (!f.payload.empty() &&
      !write_full(fd, f.payload.data(), f.payload.size()))
    return false;
  return true;
}

FrameReadStatus read_frame(int fd, Frame& out) {
  WireHeader h{};
  const int r = read_full(fd, &h, sizeof(h));
  if (r == 0) return FrameReadStatus::kEof;
  if (r < 0) return FrameReadStatus::kError;
  if (h.magic != kMagic || h.payload_size > kMaxPayload)
    return FrameReadStatus::kError;  // desync: unrecoverable
  out.type = static_cast<FrameType>(h.type);
  out.src = h.src;
  out.dst = h.dst;
  out.tag = h.tag;
  out.delay_ms = h.delay_ms;
  out.sent_ns = h.sent_ns;
  out.payload.resize(h.payload_size);
  if (h.payload_size > 0 &&
      read_full(fd, out.payload.data(), out.payload.size()) != 1)
    return FrameReadStatus::kError;
  if (crc32(out.payload) != h.crc) return FrameReadStatus::kBadCrc;
  return FrameReadStatus::kOk;
}

std::vector<std::byte> encode_i32(std::int32_t v) {
  std::vector<std::byte> out(sizeof(v));
  std::memcpy(out.data(), &v, sizeof(v));
  return out;
}

bool decode_i32(std::span<const std::byte> payload, std::int32_t& v) {
  if (payload.size() != sizeof(v)) return false;
  std::memcpy(&v, payload.data(), sizeof(v));
  return true;
}

}  // namespace dtfe::simmpi
