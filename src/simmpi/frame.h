// Wire framing for the multi-process socket transport.
//
// Every byte on a transport socket is a frame: a fixed header (magic, type,
// routing, fault-delay, send timestamp, payload size, payload CRC32)
// followed by the payload. The CRC covers the payload only — message
// corruption injected by the fault plan happens BEFORE framing, so an
// injected bit-flip travels with a valid CRC and is detected by the
// application layer (work-package checksums), exactly as on the thread
// transport. A frame-level CRC mismatch therefore means real wire
// corruption: the frame is counted and dropped, and the app-level
// ack/timeout/retry machinery recovers. A bad magic means the stream has
// desynchronized and the connection is unrecoverable.
//
// Timestamps are CLOCK_MONOTONIC-based (steady_clock), which is shared by
// every process on the host, so receiver-side `now - sent_ns` is a real
// one-way latency measurement — the input for DES wire-cost calibration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dtfe::simmpi {

enum class FrameType : std::uint16_t {
  kHello = 1,      ///< worker -> router: payload = int32 rank
  kConfig = 2,     ///< router -> worker: opaque engine config payload
  kData = 3,       ///< addressed rank-to-rank message (src/dst/tag used)
  kHeartbeat = 4,  ///< worker -> router liveness beacon (empty payload)
  kDead = 5,       ///< router -> workers: payload = int32 dead rank
  kResult = 6,     ///< worker -> router: serialized pipeline result
  kBye = 7,        ///< worker -> router: clean shutdown, EOF next is OK
  kError = 8,      ///< worker -> router: payload = UTF-8 what() string
};

struct Frame {
  FrameType type = FrameType::kData;
  int src = -1;
  int dst = -1;
  int tag = 0;
  std::uint32_t delay_ms = 0;  ///< fault-plan delivery delay, applied by receiver
  std::uint64_t sent_ns = 0;   ///< sender steady_clock stamp (kData only)
  std::vector<std::byte> payload;
};

enum class FrameReadStatus {
  kOk,
  kEof,     ///< clean close at a frame boundary
  kError,   ///< I/O error or stream desync (bad magic / insane size)
  kBadCrc,  ///< header+payload read fine but payload CRC mismatched
};

/// IEEE 802.3 CRC32 (poly 0xEDB88320), software table.
std::uint32_t crc32(std::span<const std::byte> data);

/// Current steady_clock time in nanoseconds, for Frame::sent_ns.
std::uint64_t steady_now_ns();

/// Write one frame, handling partial writes and EINTR. Returns false on
/// any I/O error (including EPIPE from a dead peer).
bool write_frame(int fd, const Frame& f);

/// Blocking read of one frame. On kBadCrc the stream is still aligned (the
/// payload was consumed) and the caller may keep reading.
FrameReadStatus read_frame(int fd, Frame& out);

/// Helpers for the common int32 payloads (kHello, kDead).
std::vector<std::byte> encode_i32(std::int32_t v);
bool decode_i32(std::span<const std::byte> payload, std::int32_t& v);

}  // namespace dtfe::simmpi
