#include "framework/des.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/stats.h"

namespace dtfe {

DesResult simulate_work_sharing(
    const std::vector<std::vector<double>>& actual,
    const std::vector<std::vector<double>>& predicted,
    const DesOptions& opt) {
  const std::size_t P = actual.size();
  DTFE_CHECK(predicted.size() == P);
  DesResult res;
  if (P == 0) return res;

  // Per-rank predicted totals drive the schedule; actual totals give the
  // unbalanced baseline.
  std::vector<RankWork> work(P);
  RunningStats unbalanced_stats;
  double total_actual = 0.0;
  for (std::size_t r = 0; r < P; ++r) {
    DTFE_CHECK(predicted[r].size() == actual[r].size());
    double pred = 0.0, act = 0.0;
    for (double t : predicted[r]) pred += t;
    for (double t : actual[r]) act += t;
    work[r] = {static_cast<int>(r), pred};
    res.makespan_unbalanced = std::max(res.makespan_unbalanced, act);
    unbalanced_stats.add(act);
    total_actual += act;
  }
  res.average_work = total_actual / static_cast<double>(P);
  res.busy_std_unbalanced = unbalanced_stats.stddev();

  // Every rank computes the same schedule (as in the real code, where the
  // Allgathered inputs are identical).
  std::vector<WorkShareSchedule> schedules(P);
  std::vector<SenderPlan> plans(P);
  for (std::size_t r = 0; r < P; ++r) {
    schedules[r] = create_communication_list(work, static_cast<int>(r));
    if (!schedules[r].send_list.empty())
      plans[r] = plan_sender(schedules[r].send_list, predicted[r]);
  }

  // --- sender timelines ------------------------------------------------------
  // Senders never block (buffered sends), so their timelines close first.
  // arrival[receiver] collects (sender, arrival_time, actual shipped work) —
  // matched by sender id at the receiver, like MPI_Recv(source).
  struct Incoming {
    double arrival = 0.0;
    double work = 0.0;
  };
  // arrivals[r][s] = queue of messages from sender s to receiver r.
  std::vector<std::vector<std::vector<Incoming>>> arrivals(
      P, std::vector<std::vector<Incoming>>(P));
  std::vector<double> finish(P, 0.0);
  std::vector<double> busy(P, 0.0);

  for (std::size_t r = 0; r < P; ++r) {
    if (schedules[r].send_list.empty()) continue;
    const SenderPlan& plan = plans[r];
    double now = 0.0;
    double my_busy = 0.0;
    for (std::size_t k = 0; k < plan.ordered_sends.size(); ++k) {
      for (std::size_t i = 0; i < actual[r].size(); ++i)
        if (plan.item_assignment[i] == plan.gap_slot(k)) {
          now += actual[r][i];
          my_busy += actual[r][i];
        }
      double shipped_actual = 0.0;
      for (std::size_t i = 0; i < actual[r].size(); ++i)
        if (plan.item_assignment[i] == static_cast<int>(k))
          shipped_actual += actual[r][i];
      const auto dest = static_cast<std::size_t>(plan.ordered_sends[k].receiver);
      arrivals[dest][r].push_back(
          {now + opt.message_latency +
               opt.seconds_per_unit_sent * shipped_actual,
           shipped_actual});
      res.shipped_work += shipped_actual;
    }
    for (std::size_t i = 0; i < actual[r].size(); ++i)
      if (plan.item_assignment[i] == SenderPlan::kRunAtEnd) {
        now += actual[r][i];
        my_busy += actual[r][i];
      }
    finish[r] = now;
    busy[r] = my_busy;
  }

  // --- receiver / neutral timelines -------------------------------------------
  for (std::size_t r = 0; r < P; ++r) {
    if (!schedules[r].send_list.empty()) continue;
    double now = 0.0;
    double my_busy = 0.0;
    for (double t : actual[r]) {
      now += t;
      my_busy += t;
    }
    std::vector<std::size_t> next_from(P, 0);
    for (const int sender : schedules[r].recv_list) {
      const auto s = static_cast<std::size_t>(sender);
      DTFE_CHECK_MSG(next_from[s] < arrivals[r][s].size(),
                     "schedule promised a message that was never sent");
      const Incoming& msg = arrivals[r][s][next_from[s]++];
      now = std::max(now, msg.arrival);  // blocking MPI_Recv
      now += msg.work;
      my_busy += msg.work;
    }
    finish[r] = now;
    busy[r] = my_busy;
  }

  RunningStats balanced_stats;
  for (std::size_t r = 0; r < P; ++r) {
    res.makespan_balanced = std::max(res.makespan_balanced, finish[r]);
    balanced_stats.add(busy[r]);
  }
  res.busy_std_balanced = balanced_stats.stddev();
  res.finish_times = std::move(finish);
  return res;
}

namespace {

/// Scan a report JSON for `"key":<number>` and return the number, or
/// `fallback` when absent. The report writer (obs/report.cpp) emits summary
/// entries exactly in this shape, so no general JSON parser is needed.
double json_number(const std::string& body, const std::string& key,
                   double fallback) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = body.find(needle);
  if (pos == std::string::npos) return fallback;
  return std::strtod(body.c_str() + pos + needle.size(), nullptr);
}

}  // namespace

DesOptions load_des_calibration(const std::string& report_json_path) {
  std::ifstream in(report_json_path);
  DTFE_CHECK_MSG(in.good(), "cannot read DES calibration report "
                                << report_json_path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string body = ss.str();

  const double messages = json_number(body, "transport_messages", 0.0);
  DTFE_CHECK_MSG(messages > 0.0,
                 "report " << report_json_path
                           << " has no transport_* summaries (was it a "
                              "--transport=socket run with --report?)");
  DesOptions opt;
  const double intercept =
      json_number(body, "transport_latency_intercept_s", 0.0);
  const double mean_latency =
      json_number(body, "transport_msg_latency_mean_s", 0.0);
  opt.message_latency = intercept > 0.0 ? intercept : mean_latency;
  opt.seconds_per_unit_sent =
      json_number(body, "transport_seconds_per_byte", 0.0) *
      json_number(body, "transport_bytes_per_msg", 0.0);
  return opt;
}

}  // namespace dtfe
