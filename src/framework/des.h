// Discrete-event simulation of the work-sharing execution (for the paper's
// large-scale study, Fig. 13, at rank counts far beyond what thread-backed
// ranks can exercise with real kernels).
//
// The simulator reuses the REAL scheduling code — create_communication_list
// and plan_sender operate on the model-PREDICTED item costs — and then plays
// the execution timeline with the items' ACTUAL costs. Model mispredictions
// therefore materialize exactly as the paper diagnoses for its 16k-rank run:
// "a small number of degenerate point configurations ... made the model
// predicted execution time inaccurate and delayed sending work to idle
// processes."
#pragma once

#include <string>
#include <vector>

#include "framework/schedule.h"

namespace dtfe {

struct DesOptions {
  double message_latency = 1e-4;    ///< seconds per work-sharing message
  double seconds_per_unit_sent = 0.0;  ///< transfer cost ∝ shipped work
};

/// Calibrate DesOptions from a pipeline run report (--report prefix.json of
/// a --transport=socket run): the report's transport_* summaries carry the
/// OLS fit latency = intercept + slope * bytes over every frame the workers
/// actually received. message_latency takes the fitted per-message intercept
/// (falling back to the mean latency when the fit is degenerate) and
/// seconds_per_unit_sent takes slope * mean payload size — i.e. one shipped
/// work unit is assumed to serialize to about one measured payload. Throws
/// dtfe::Error if the file is unreadable or has no transport summaries.
DesOptions load_des_calibration(const std::string& report_json_path);

struct DesResult {
  /// max over ranks of Σ actual local item costs (no sharing).
  double makespan_unbalanced = 0.0;
  /// Simulated makespan with the work-sharing schedule.
  double makespan_balanced = 0.0;
  /// Average per-rank total actual work (the ideal levelled time).
  double average_work = 0.0;
  /// Per-rank finish times of the balanced execution.
  std::vector<double> finish_times;
  /// Std-dev of per-rank busy times, unbalanced vs balanced (paper Fig. 10's
  /// metric).
  double busy_std_unbalanced = 0.0;
  double busy_std_balanced = 0.0;
  /// Total work units shipped between ranks.
  double shipped_work = 0.0;
};

/// `predicted[r][i]` is what the model forecasts for rank r's item i;
/// `actual[r][i]` is its true cost. Both arrays must be congruent.
DesResult simulate_work_sharing(
    const std::vector<std::vector<double>>& actual,
    const std::vector<std::vector<double>>& predicted,
    const DesOptions& opt = {});

}  // namespace dtfe
