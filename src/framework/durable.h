// Item-granular checkpointing for the distributed pipeline.
//
// Each rank appends every work item it completes to its own journal file
// (`journal-rank-<R>.ckpt` under the checkpoint directory): an append-only
// sequence of fixed-layout records, each carrying the item's request index,
// the rendered grid, and an FNV-1a checksum over the payload. Records are
// flushed (fflush + fsync) before the item is considered committed, so a
// crash can lose at most the in-flight record — and a torn tail is detected
// on load (bad magic, short payload, or checksum mismatch) and dropped
// rather than trusted.
//
// A resumed run (`--resume`) loads every committed record from every
// journal, regardless of how many ranks wrote them, and skips those items;
// because every kernel seed is a pure function of the item's identity (see
// marching_kernel.h), the combination of replayed grids and freshly computed
// ones is bitwise identical to an uninterrupted run.
//
// The manifest (`manifest.txt`) fingerprints the run configuration so a
// checkpoint directory cannot silently resume a different problem. It is
// written via write-to-temp + atomic rename; every rank writes identical
// bytes, so concurrent writers are idempotent (last rename wins).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dtfe/field.h"

namespace dtfe {

/// One committed work item recovered from a journal.
struct CheckpointItem {
  std::int64_t request_index = -1;
  FieldGrid grid;
};

/// FNV-1a 64-bit over a byte range (the journal record checksum; also used
/// by tests to fingerprint grids).
std::uint64_t fnv1a64(const void* data, std::size_t n);

/// Append-only, crash-consistent journal for one rank's completed items.
class CheckpointWriter {
 public:
  /// Creates `dir` if needed and opens the rank's journal for appending
  /// (an interrupted run's records are preserved). Throws Error on I/O
  /// failure.
  CheckpointWriter(const std::string& dir, int rank);
  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Durably append one committed item (write + flush + fsync). A
  /// single-plane density grid is written as a v1 record — byte-identical
  /// to the pre-multi-channel journal format — so density checkpoints stay
  /// bitwise compatible in both directions; any other field kind uses the
  /// versioned v2 record that carries the kind and plane count.
  void append(std::int64_t request_index, const FieldGrid& grid);
  void append(std::int64_t request_index, const Grid2D& grid);

  int records_written() const { return records_written_; }
  const std::string& path() const { return path_; }

 private:
  void append_record(std::uint64_t magic, const std::string& payload);

  std::string path_;
  void* file_ = nullptr;  // FILE*, opaque to keep <cstdio> out of the header
  int records_written_ = 0;
};

/// Load every committed item from every `journal-rank-*.ckpt` in `dir`
/// (any number of ranks; an empty or absent directory yields {}). Torn or
/// corrupt tail records are dropped; a corrupt record mid-file truncates
/// that journal's replay at the damage point. If the same request index was
/// committed by several ranks (e.g. a retry), the first instance wins.
std::vector<CheckpointItem> load_checkpoints(const std::string& dir);

/// Write `fingerprint` to `dir`/manifest.txt via temp + atomic rename.
void write_checkpoint_manifest(const std::string& dir,
                               const std::string& fingerprint);

/// Read the manifest ("" if absent).
std::string read_checkpoint_manifest(const std::string& dir);

}  // namespace dtfe
