// Runtime workload modeling (paper §IV-C).
//
// Every rank (1) counts the particles n_i each of its field requests needs
// (a cube of the field's padded side centered on the request), (2) times ONE
// randomly chosen local request end-to-end, split into triangulation and
// interpolation, (3) Allgathers the (n, t_tri, t_interp) samples, and (4)
// fits two global models:
//     f_tri(n)    = c · n·log2 n      (OLS, Eqs. 15–16)
//     f_interp(n) = α · n^β           (Gauss–Newton, Eq. 17)
// The sum of the fitted per-item predictions estimates each rank's remaining
// work for the scheduler.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "simmpi/comm.h"
#include "util/fit.h"

namespace dtfe {

struct WorkSample {
  double n = 0.0;         ///< particles in the work item's cube
  double t_tri = 0.0;     ///< measured triangulation seconds
  double t_interp = 0.0;  ///< measured grid-render seconds
};

struct WorkloadModel {
  double c_tri = 0.0;     ///< f_tri(n) = c·n·log2 n
  PowerLawFit interp;     ///< f_interp(n) = α·n^β
  /// True when the triangulation samples were unusable (no n ≥ 2 with
  /// t > 0) and c_tri is the fallback constant 0, not a fit.
  bool tri_degenerate = false;

  /// A degenerate model predicts ~zero cost for every item; the scheduler
  /// then sees a perfectly balanced fleet and ships nothing. Callers should
  /// surface this (report / dtfe.model.fit_degenerate) instead of trusting
  /// the predictions.
  bool degenerate() const { return tri_degenerate || interp.degenerate; }

  double predict_tri(double n) const {
    return n >= 2.0 ? c_tri * n * std::log2(n) : 0.0;
  }
  double predict_interp(double n) const {
    return n > 0.0 ? interp.alpha * std::pow(n, interp.beta) : 0.0;
  }
  double predict(double n) const { return predict_tri(n) + predict_interp(n); }
};

/// Exchange each rank's local sample(s) with Allgather and fit the two
/// models on the pooled data. All ranks compute identical fits.
WorkloadModel fit_workload_model(simmpi::Comm& comm,
                                 std::span<const WorkSample> local_samples);

/// Fit without communication (single-rank / offline use).
WorkloadModel fit_workload_model(std::span<const WorkSample> samples);

}  // namespace dtfe
