// Binary codec for the multi-process transport's control payloads.
//
// The launcher and its workers are the same binary on the same host, so the
// encoding is a straightforward length-prefixed byte stream (PODs memcpy'd,
// strings and vectors size-prefixed) with a magic + version guard. Two
// payloads exist:
//   * LaunchConfig — router -> workers before the run (kConfig frame): the
//     snapshot path, the full PipelineOptions, and the field centers, so a
//     worker needs nothing but its rank and the socket path on argv.
//   * WorkerPayload — worker -> router after the run (kResult frame): the
//     measured wire costs, the worker's metrics-registry snapshot, and its
//     complete PipelineResult (items, grids, counters), which the launcher
//     merges exactly as the thread transport merges in-process results.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "framework/pipeline.h"
#include "obs/metrics.h"
#include "simmpi/socket_transport.h"

namespace dtfe {

/// Everything the launcher ships to each worker before the run.
struct LaunchConfig {
  std::string snapshot;
  PipelineOptions pipeline;
  std::vector<Vec3> field_centers;
};

std::vector<std::byte> encode_launch_config(const LaunchConfig& cfg);
/// Throws dtfe::Error on a malformed or version-mismatched payload.
LaunchConfig decode_launch_config(std::span<const std::byte> bytes);

/// Everything one worker ships back when its pipeline finishes.
struct WorkerPayload {
  int rank = -1;
  simmpi::TransportStats wire;  ///< per-message latency/bytes measurements
  std::map<std::string, double> counters;  ///< worker metrics snapshot
  std::map<std::string, double> gauges;
  /// Per-phase (and other) histogram snapshots, folded into the launcher's
  /// registry so socket-run reports carry the same distribution fields the
  /// thread transport reports.
  std::map<std::string, obs::HistogramSnapshot> histograms;
  PipelineResult result;
};

std::vector<std::byte> encode_worker_payload(const WorkerPayload& p);
/// Throws dtfe::Error on a malformed or version-mismatched payload.
WorkerPayload decode_worker_payload(std::span<const std::byte> bytes);

}  // namespace dtfe
