#include "framework/workload_model.h"

#include <cmath>

namespace dtfe {

WorkloadModel fit_workload_model(std::span<const WorkSample> samples) {
  WorkloadModel model;
  std::vector<double> n, tri, interp;
  n.reserve(samples.size());
  for (const WorkSample& s : samples) {
    n.push_back(s.n);
    tri.push_back(s.t_tri);
    interp.push_back(s.t_interp);
  }
  model.c_tri = fit_nlogn(n, tri);
  model.interp = fit_power_law(n, interp);
  return model;
}

WorkloadModel fit_workload_model(simmpi::Comm& comm,
                                 std::span<const WorkSample> local_samples) {
  const auto pooled = comm.allgatherv<WorkSample>(local_samples);
  std::vector<WorkSample> all;
  for (const auto& per_rank : pooled)
    all.insert(all.end(), per_rank.begin(), per_rank.end());
  return fit_workload_model(all);
}

}  // namespace dtfe
