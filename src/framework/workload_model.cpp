#include "framework/workload_model.h"

#include <cmath>

#include "obs/metrics.h"

namespace dtfe {

WorkloadModel fit_workload_model(std::span<const WorkSample> samples) {
  WorkloadModel model;
  std::vector<double> n, tri, interp;
  n.reserve(samples.size());
  std::size_t tri_usable = 0;
  for (const WorkSample& s : samples) {
    n.push_back(s.n);
    tri.push_back(s.t_tri);
    interp.push_back(s.t_interp);
    if (s.n >= 2.0 && s.t_tri > 0.0) ++tri_usable;
  }
  model.c_tri = fit_nlogn(n, tri);
  model.tri_degenerate = tri_usable == 0 || !(model.c_tri > 0.0);
  model.interp = fit_power_law(n, interp);
  if (model.degenerate() && obs::metrics_enabled()) {
    static const obs::MetricId fit_degenerate =
        obs::counter("dtfe.model.fit_degenerate");
    obs::add(fit_degenerate);
  }
  return model;
}

WorkloadModel fit_workload_model(simmpi::Comm& comm,
                                 std::span<const WorkSample> local_samples) {
  const auto pooled = comm.allgatherv<WorkSample>(local_samples);
  std::vector<WorkSample> all;
  for (const auto& per_rank : pooled)
    all.insert(all.end(), per_rank.begin(), per_rank.end());
  return fit_workload_model(all);
}

}  // namespace dtfe
