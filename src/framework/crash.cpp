#include "framework/crash.h"

#include <execinfo.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstring>

#include "obs/report.h"

namespace dtfe {

namespace {

constexpr int kMaxSlots = 256;
constexpr int kMaxRegistries = 32;

struct ItemSlot {
  std::atomic<bool> used{false};
  std::atomic<int> rank{-1};
  std::atomic<std::int64_t> request_index{-1};
  std::atomic<const char*> phase{nullptr};
};

}  // namespace

/// The slot array behind one CrashItemRegistry. Lives outside the class so
/// the signal handler can scan raw pointers without touching C++ members.
struct CrashItemRegistry::Impl {
  ItemSlot slots[kMaxSlots];
};

namespace {

// Global scan list of live registries: lock-free claim/release so engine
// construction and the signal handler never contend on a mutex. The handler
// reads whatever is published; a registry mid-destruction simply vanishes
// from the scan (its items are gone anyway).
std::atomic<CrashItemRegistry::Impl*> g_registries[kMaxRegistries];

std::atomic<obs::RunReport*> g_report{nullptr};
char g_report_path[1024] = {0};
std::atomic<bool> g_installed{false};

// write(2)-only formatting helpers (no printf in a signal handler).
void put_str(const char* s) {
  const ssize_t ignored = write(STDERR_FILENO, s, std::strlen(s));
  (void)ignored;
}

void put_i64(std::int64_t v) {
  char buf[24];
  char* p = buf + sizeof buf;
  const bool neg = v < 0;
  std::uint64_t u = neg ? static_cast<std::uint64_t>(-(v + 1)) + 1
                        : static_cast<std::uint64_t>(v);
  do {
    *--p = static_cast<char>('0' + (u % 10));
    u /= 10;
  } while (u != 0);
  if (neg) *--p = '-';
  const ssize_t ignored = write(STDERR_FILENO, p, buf + sizeof buf - p);
  (void)ignored;
}

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
  }
  return "signal";
}

void crash_handler(int sig) {
  put_str("\n=== pdtfe crash: ");
  put_str(signal_name(sig));
  put_str(" ===\n");

  int in_flight = 0;
  for (const auto& reg : g_registries) {
    const CrashItemRegistry::Impl* impl = reg.load(std::memory_order_acquire);
    if (impl == nullptr) continue;
    for (const ItemSlot& s : impl->slots) {
      if (!s.used.load(std::memory_order_acquire)) continue;
      ++in_flight;
      put_str("in-flight: rank ");
      put_i64(s.rank.load(std::memory_order_relaxed));
      put_str(" item ");
      put_i64(s.request_index.load(std::memory_order_relaxed));
      put_str(" phase ");
      const char* ph = s.phase.load(std::memory_order_relaxed);
      put_str(ph != nullptr ? ph : "?");
      put_str("\n");
    }
  }
  if (in_flight == 0) put_str("in-flight: none recorded\n");

  put_str("backtrace:\n");
  void* frames[64];
  const int n = backtrace(frames, 64);
  backtrace_symbols_fd(frames, n, STDERR_FILENO);

  // Best-effort partial report. Everything below is formally outside the
  // async-signal-safe set; the process is crashing regardless, and a torn
  // report file is strictly better than none.
  obs::RunReport* report = g_report.load(std::memory_order_acquire);
  if (report != nullptr && g_report_path[0] != '\0') {
    report->add_summary("crashed_signal", static_cast<double>(sig));
    report->write_json(g_report_path);
    put_str("partial run report: ");
    put_str(g_report_path);
    put_str("\n");
  }

  signal(sig, SIG_DFL);
  raise(sig);
}

}  // namespace

void install_crash_handler(const std::string& report_path) {
  if (!report_path.empty()) {
    std::strncpy(g_report_path, report_path.c_str(), sizeof g_report_path - 1);
    g_report_path[sizeof g_report_path - 1] = '\0';
  }
  if (g_installed.exchange(true)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = crash_handler;
  sigemptyset(&sa.sa_mask);
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE})
    sigaction(sig, &sa, nullptr);
}

void set_crash_report(obs::RunReport* report) {
  g_report.store(report, std::memory_order_release);
}

CrashItemRegistry::CrashItemRegistry() : impl_(new Impl) {
  for (auto& reg : g_registries) {
    Impl* expect = nullptr;
    if (reg.compare_exchange_strong(expect, impl_,
                                    std::memory_order_acq_rel))
      return;
  }
  // More live registries than scan entries: the registry still works, its
  // items just don't appear in crash dumps.
}

CrashItemRegistry::~CrashItemRegistry() {
  for (auto& reg : g_registries) {
    Impl* expect = impl_;
    if (reg.compare_exchange_strong(expect, nullptr,
                                    std::memory_order_acq_rel))
      break;
  }
  delete impl_;
}

CrashItemRegistry& CrashItemRegistry::process_default() {
  static CrashItemRegistry reg;
  return reg;
}

int CrashItemRegistry::in_flight() const {
  int n = 0;
  for (const ItemSlot& s : impl_->slots)
    if (s.used.load(std::memory_order_acquire)) ++n;
  return n;
}

ScopedCrashItem::ScopedCrashItem(int rank, std::int64_t request_index,
                                 const char* phase,
                                 CrashItemRegistry* registry)
    : impl_((registry != nullptr ? *registry
                                 : CrashItemRegistry::process_default())
                .impl_) {
  for (int i = 0; i < kMaxSlots; ++i) {
    bool expect = false;
    if (impl_->slots[i].used.compare_exchange_strong(
            expect, true, std::memory_order_acq_rel)) {
      // Publish the fields after claiming; the handler tolerates a slot
      // observed mid-publication (it prints whatever is there).
      impl_->slots[i].rank.store(rank, std::memory_order_relaxed);
      impl_->slots[i].request_index.store(request_index,
                                          std::memory_order_relaxed);
      impl_->slots[i].phase.store(phase, std::memory_order_relaxed);
      slot_ = i;
      return;
    }
  }
  // All slots busy: run unmarked rather than fail.
}

ScopedCrashItem::~ScopedCrashItem() {
  if (slot_ >= 0)
    impl_->slots[slot_].used.store(false, std::memory_order_release);
}

int crash_items_in_flight() {
  int n = 0;
  for (const auto& reg : g_registries) {
    const CrashItemRegistry::Impl* impl = reg.load(std::memory_order_acquire);
    if (impl == nullptr) continue;
    for (const ItemSlot& s : impl->slots)
      if (s.used.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

}  // namespace dtfe
