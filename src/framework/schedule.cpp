#include "framework/schedule.h"

#include <algorithm>
#include <numeric>

#include "obs/metrics.h"
#include "util/binpack.h"
#include "util/error.h"

namespace dtfe {

namespace {
struct ScheduleMetrics {
  obs::MetricId schedules = obs::counter("dtfe.schedule.schedules_created");
  obs::MetricId planned_sends = obs::counter("dtfe.schedule.planned_sends");
  obs::MetricId items_packed = obs::counter("dtfe.schedule.items_packed");
  obs::MetricId items_leftover = obs::counter("dtfe.schedule.items_leftover");
  obs::MetricId fill_ratio = obs::gauge("dtfe.schedule.binpack_fill_ratio");
};

const ScheduleMetrics& schedule_metrics() {
  static const ScheduleMetrics m;
  return m;
}
}  // namespace

WorkShareSchedule create_communication_list(std::vector<RankWork> all,
                                            int my_id) {
  WorkShareSchedule out;
  if (all.empty()) return out;

  double avg = 0.0;
  for (const RankWork& w : all) avg += w.time;
  avg /= static_cast<double>(all.size());
  out.average_time = avg;

  // Ps ← SortByTimeDescending(P)
  std::stable_sort(all.begin(), all.end(),
                   [](const RankWork& a, const RankWork& b) {
                     return a.time > b.time;
                   });

  // lr ← index of the last sender (count of above-average ranks − 1).
  std::ptrdiff_t lr = -1;
  for (const RankWork& w : all) {
    if (w.time > avg)
      ++lr;
    else
      break;
  }
  if (lr < 0) return out;  // perfectly balanced: nothing to share

  std::ptrdiff_t cr = static_cast<std::ptrdiff_t>(all.size()) - 1;
  for (std::ptrdiff_t i = 0; i <= lr; ++i) {
    while (cr > lr && all[static_cast<std::size_t>(i)].time > avg) {
      RankWork& sender = all[static_cast<std::size_t>(i)];
      RankWork& receiver = all[static_cast<std::size_t>(cr)];
      const double excess = sender.time - avg;
      const double capacity = avg - receiver.time;
      if (capacity <= 0.0) {
        // This receiver was filled exactly to the average by a previous
        // sender; move to the next candidate (they are less loaded as cr
        // decreases toward lr in the descending sort).
        --cr;
        continue;
      }
      if (excess > capacity) {
        // Fill this receiver to the average and move to the next receiver.
        if (my_id == sender.id)
          out.send_list.push_back({receiver.id, capacity, receiver.time});
        else if (my_id == receiver.id)
          out.recv_list.push_back(sender.id);
        sender.time -= capacity;
        receiver.time = avg;
        --cr;
      } else {
        // The receiver absorbs the sender's whole excess; it remains the
        // candidate for the next sender.
        if (my_id == sender.id)
          out.send_list.push_back({receiver.id, excess, receiver.time});
        else if (my_id == receiver.id)
          out.recv_list.push_back(sender.id);
        receiver.time += excess;
        sender.time = avg;
      }
    }
  }
  if (obs::metrics_enabled()) {
    const ScheduleMetrics& m = schedule_metrics();
    obs::add(m.schedules);
    obs::add(m.planned_sends, static_cast<double>(out.send_list.size()));
  }
  return out;
}

SenderPlan plan_sender(const std::vector<PlannedSend>& sends,
                       const std::vector<double>& item_times) {
  SenderPlan plan;
  plan.ordered_sends = sends;
  std::stable_sort(plan.ordered_sends.begin(), plan.ordered_sends.end(),
                   [](const PlannedSend& a, const PlannedSend& b) {
                     return a.send_at < b.send_at;
                   });

  // Bins: one per inter-send gap (local execution time available before each
  // send) and one per send (amount of work to ship). Identified by index:
  // bins [0, n_sends) are gaps, [n_sends, 2·n_sends) are send amounts.
  const std::size_t n = plan.ordered_sends.size();
  std::vector<double> bins(2 * n, 0.0);
  double prev = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    bins[k] = std::max(0.0, plan.ordered_sends[k].send_at - prev);
    prev = plan.ordered_sends[k].send_at;
    bins[n + k] = plan.ordered_sends[k].amount;
  }

  const BinAssignment packed = pack_first_fit(item_times, bins);
  plan.item_assignment.assign(item_times.size(), SenderPlan::kRunAtEnd);
  double packed_time = 0.0;
  std::size_t packed_items = 0;
  for (std::size_t i = 0; i < item_times.size(); ++i) {
    const std::ptrdiff_t b = packed.item_to_bin[i];
    if (b < 0) continue;  // leftover: run locally at the end
    packed_time += item_times[i];
    ++packed_items;
    if (static_cast<std::size_t>(b) < n)
      plan.item_assignment[i] = plan.gap_slot(static_cast<std::size_t>(b));
    else
      plan.item_assignment[i] = static_cast<int>(static_cast<std::size_t>(b) - n);
  }
  if (obs::metrics_enabled()) {
    const ScheduleMetrics& m = schedule_metrics();
    obs::add(m.items_packed, static_cast<double>(packed_items));
    obs::add(m.items_leftover,
             static_cast<double>(item_times.size() - packed_items));
    const double capacity =
        std::accumulate(bins.begin(), bins.end(), 0.0);
    if (capacity > 0.0) obs::set(m.fill_ratio, packed_time / capacity);
  }
  return plan;
}

}  // namespace dtfe
