// A-priori work-sharing schedule (paper §IV-D, Fig. 5).
//
// Given every rank's predicted total local work time, ranks above the global
// average are senders and ranks below are receivers. CreateCommunicationList
// greedily pairs the largest-excess sender with the largest-capacity
// receiver ("the senders with the most work to share send to receivers with
// the largest ability to receive"), producing for every rank a SendList
// (whom to send how much, and when) and a RecvList (whose messages to expect,
// in order). Every rank runs the routine independently on the same
// Allgathered data, so no extra negotiation round is needed.
//
// Faithfulness note: the paper's pseudocode contains three evident typos —
// the sender-counting loop breaks after the first element (it must count all
// above-average entries of the descending sort), the sender loop runs
// `i < lr` (dropping the last sender), and line 24 writes `Ps[i] − ⟨t⟩` for
// `Ps[i].t − ⟨t⟩`. We implement the evident intent and keep everything else
// (ordering, greedy choice, update rules) exactly as printed.
#pragma once

#include <cstdint>
#include <vector>

namespace dtfe {

struct RankWork {
  int id = 0;
  double time = 0.0;  ///< predicted total local work time
};

struct PlannedSend {
  int receiver = 0;
  double amount = 0.0;   ///< work time to ship
  double send_at = 0.0;  ///< when the receiver goes idle (its filled time)
};

struct WorkShareSchedule {
  /// For the local rank: sends in creation order (receivers filled from the
  /// least-loaded upward).
  std::vector<PlannedSend> send_list;
  /// For the local rank: sender ids in the order their messages will arrive.
  std::vector<int> recv_list;
  /// Global average time ⟨t⟩ the schedule levels everyone toward.
  double average_time = 0.0;
};

/// Paper Fig. 5. `all` is the Allgathered (id, time) array; `my_id` selects
/// which rank's lists to emit.
WorkShareSchedule create_communication_list(std::vector<RankWork> all,
                                            int my_id);

/// The sender-side execution plan (paper §IV-D last paragraph): sends sorted
/// by send_at ascending; the gaps between consecutive send times are "work
/// bins" to fill with local items, and each send's amount is a bin whose
/// items are shipped. Solved jointly with greedy first-fit on the combined
/// bin list.
struct SenderPlan {
  /// Sends in ascending send_at order.
  std::vector<PlannedSend> ordered_sends;
  /// item_assignment[i]: -1 = run locally after all sends; -2-k = run
  /// locally in the gap before ordered_sends[k]; k >= 0 = ship with
  /// ordered_sends[k].
  std::vector<int> item_assignment;

  static constexpr int kRunAtEnd = -1;
  int gap_slot(std::size_t k) const { return -2 - static_cast<int>(k); }
};

SenderPlan plan_sender(const std::vector<PlannedSend>& sends,
                       const std::vector<double>& item_times);

}  // namespace dtfe
