// Crash diagnostics: turn a hard fault (SIGSEGV/SIGABRT/SIGBUS/SIGFPE) into
// an actionable post-mortem instead of a bare "Segmentation fault".
//
// install_crash_handler() registers a signal handler that, on a fatal
// signal, writes to stderr:
//   * the signal name,
//   * every in-flight work item (rank / request index / phase), recorded by
//     the pipeline through lock-free per-thread slots (ScopedCrashItem), and
//   * a backtrace (backtrace_symbols_fd — async-signal-safe),
// then best-effort flushes a partial run report (if one was registered) and
// re-raises the default disposition so the exit code still reflects the
// crash. The handler only uses write(2), backtrace_symbols_fd and atomics
// on the hot path; the report flush is a deliberate best-effort step beyond
// the async-signal-safe set, taken only when the process is already doomed.
//
// The in-flight registry is a fixed array of slots claimed per thread; the
// pipeline marks items via ScopedCrashItem around compute/render work, so a
// crash names exactly the items being processed at the time.
#pragma once

#include <cstdint>
#include <string>

namespace dtfe::obs {
class RunReport;
}

namespace dtfe {

/// Install handlers for SIGSEGV, SIGABRT, SIGBUS and SIGFPE. Idempotent;
/// `report_path` ("" = none) is where the partial run report goes.
void install_crash_handler(const std::string& report_path = "");

/// Register / replace the run report to flush from the crash handler. The
/// pointed-to report must outlive any possible crash (pass nullptr to
/// detach before destroying it).
void set_crash_report(obs::RunReport* report);

/// RAII marker: "this thread is processing item `request_index` for `rank`
/// in phase `phase`". `phase` must be a string literal (the handler prints
/// the pointer's target after the crash, so it must never dangle).
class ScopedCrashItem {
 public:
  ScopedCrashItem(int rank, std::int64_t request_index, const char* phase);
  ~ScopedCrashItem();
  ScopedCrashItem(const ScopedCrashItem&) = delete;
  ScopedCrashItem& operator=(const ScopedCrashItem&) = delete;

 private:
  int slot_ = -1;
};

/// Number of currently marked in-flight items (tests).
int crash_items_in_flight();

}  // namespace dtfe
