// Crash diagnostics: turn a hard fault (SIGSEGV/SIGABRT/SIGBUS/SIGFPE) into
// an actionable post-mortem instead of a bare "Segmentation fault".
//
// install_crash_handler() registers a signal handler that, on a fatal
// signal, writes to stderr:
//   * the signal name,
//   * every in-flight work item (rank / request index / phase), recorded by
//     the pipeline through lock-free per-thread slots (ScopedCrashItem), and
//   * a backtrace (backtrace_symbols_fd — async-signal-safe),
// then best-effort flushes a partial run report (if one was registered) and
// re-raises the default disposition so the exit code still reflects the
// crash. The handler only uses write(2), backtrace_symbols_fd and atomics
// on the hot path; the report flush is a deliberate best-effort step beyond
// the async-signal-safe set, taken only when the process is already doomed.
//
// In-flight items live in a CrashItemRegistry: a fixed array of lock-free
// slots claimed per thread via ScopedCrashItem around compute/render work.
// The process keeps a default registry for standalone pipeline runs, and
// every engine::Engine owns a private one, so two engines in one process
// never share or corrupt in-flight state; the signal handler walks ALL live
// registries, so a crash names exactly the items being processed at the
// time regardless of which engine ran them.
#pragma once

#include <cstdint>
#include <string>

namespace dtfe::obs {
class RunReport;
}

namespace dtfe {

/// Install handlers for SIGSEGV, SIGABRT, SIGBUS and SIGFPE. Idempotent;
/// `report_path` ("" = none) is where the partial run report goes.
void install_crash_handler(const std::string& report_path = "");

/// Register / replace the run report to flush from the crash handler. The
/// pointed-to report must outlive any possible crash (pass nullptr to
/// detach before destroying it).
void set_crash_report(obs::RunReport* report);

/// One registry of in-flight (rank, item, phase) markers. Instances
/// announce themselves to the crash handler's global scan list on
/// construction and withdraw on destruction; the process-default instance
/// (process_default()) backs ScopedCrashItem's no-registry overload.
class CrashItemRegistry {
 public:
  CrashItemRegistry();
  ~CrashItemRegistry();
  CrashItemRegistry(const CrashItemRegistry&) = delete;
  CrashItemRegistry& operator=(const CrashItemRegistry&) = delete;

  /// The registry standalone (non-engine) pipeline runs mark items in.
  static CrashItemRegistry& process_default();

  /// Number of currently marked in-flight items in THIS registry.
  int in_flight() const;

  /// Opaque slot storage; public so the signal handler's file-scope scan
  /// list in crash.cpp can name it (the definition stays in crash.cpp).
  struct Impl;

 private:
  friend class ScopedCrashItem;
  Impl* impl_;
};

/// RAII marker: "this thread is processing item `request_index` for `rank`
/// in phase `phase`". `phase` must be a string literal (the handler prints
/// the pointer's target after the crash, so it must never dangle).
/// `registry` = nullptr marks into CrashItemRegistry::process_default().
class ScopedCrashItem {
 public:
  ScopedCrashItem(int rank, std::int64_t request_index, const char* phase,
                  CrashItemRegistry* registry = nullptr);
  ~ScopedCrashItem();
  ScopedCrashItem(const ScopedCrashItem&) = delete;
  ScopedCrashItem& operator=(const ScopedCrashItem&) = delete;

 private:
  CrashItemRegistry::Impl* impl_;
  int slot_ = -1;
};

/// Number of currently marked in-flight items across ALL registries (tests).
int crash_items_in_flight();

}  // namespace dtfe
