// The distributed many-field reconstruction pipeline (paper §IV):
//   (1) data partitioning & redistribution (+ ghost exchange sized to the
//       padded field length),
//   (2) workload modeling (count → time one random item → Allgather → fit),
//   (3) work-sharing scheduling (Fig. 5 + variable-size bin packing),
//   (4) execution & communication (senders interleave local work with
//       MPI_Send of work packages; receivers drain local work then MPI_Recv).
//
// Every rank reports its per-phase busy time measured with per-thread CPU
// clocks, which is what the reproduction's scaling figures aggregate.
//
// This header keeps the pipeline's public TYPES and entry-point signatures;
// the implementations live in the engine layer (src/engine/stages.cpp and
// src/engine/pipeline.cpp), so callers of run_pipeline* link pdtfe_engine.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dtfe/audit.h"
#include "dtfe/field.h"
#include "framework/decomposition.h"
#include "framework/schedule.h"
#include "framework/workload_model.h"
#include "nbody/particles.h"
#include "simmpi/comm.h"
#include "util/cancel.h"
#include "util/simd.h"

namespace dtfe {

struct PipelineOptions {
  double field_length = 4.0;        ///< l_F, physical side of every field
  std::size_t field_resolution = 64;///< Ng
  /// Cube side = pad × l_F: the extra margin keeps hull artifacts out of the
  /// field; the ghost radius is pad × l_F / 2 accordingly.
  double cube_pad = 1.25;
  bool load_balance = true;         ///< run phases 3–4 (off = paper's baseline)
  bool keep_grids = false;          ///< retain rendered grids in the result
  /// Fields with fewer particles than this in their cube produce a zero grid
  /// (a Delaunay needs ≥4 non-coplanar points; emptier cubes are noise).
  std::size_t min_particles = 32;
  std::size_t count_grid_cells = 48;///< particle-count index resolution
  std::uint64_t seed = 99;
  /// Which registered field kernel renders every item (engine/field_kernel.h:
  /// "march" — the paper's kernel and the bitwise-deterministic default —
  /// "walk", or "tess"; unknown names throw when the first item runs).
  std::string kernel = "march";
  /// Which estimator set every item reconstructs (dtfe/field.h). kDensity
  /// is the paper's field and keeps the scalar-era path bitwise intact;
  /// velocity/vdiv/grad render multi-channel FieldGrids through the same
  /// stages ("tess" supports density only).
  FieldKind field = FieldKind::kDensity;
  /// Jittered realizations averaged per item (Aragon-Calvo 2020
  /// mass-conserving stochastic smoothing); 1 = exact legacy render.
  int smooth_ensemble = 1;
  /// SIMD batching inside the marching kernel's vertical fast path
  /// (dtfe/marching_kernel.h). Rendered grids are bitwise identical across
  /// on/off — this is a perf A/B switch, surfaced as --use-simd.
  SimdMode use_simd = SimdMode::kAuto;
  // --- fault tolerance (see README "Fault tolerance") ---------------------
  /// Run the acknowledged work-package protocol plus the post-execution
  /// recovery phase. Off = the paper's original fire-and-forget exchange.
  bool fault_tolerant = true;
  /// How many times a corrupt or missing work package is re-requested before
  /// the pair gives up and the sender computes the items itself.
  int max_retries = 3;
  /// Bounded wait used by the package/ack exchanges. Generous by default so
  /// slow ranks are not mistaken for dead ones (death itself is detected
  /// immediately, not by timeout).
  int comm_timeout_ms = 2000;
  /// What to do with non-finite / out-of-box input particle positions.
  BadParticlePolicy bad_particles = BadParticlePolicy::kReject;
  // --- durable execution (see README "Durable execution & audits") --------
  /// Directory for item-granular checkpoints ("" = checkpointing off). Each
  /// rank journals every committed item's grid (crash-consistent, fsynced,
  /// checksummed); see framework/durable.h.
  std::string checkpoint_dir;
  /// Replay committed items from checkpoint_dir instead of recomputing
  /// them. The resumed run's final grids are bitwise identical to an
  /// uninterrupted run (per-item kernel seeds are pure functions of the
  /// item identity and cube inputs are canonically ordered).
  bool resume = false;
  /// Per-item watchdog deadline: < 0 disables the watchdog (default),
  /// 0 derives each item's budget from the fitted cost model
  /// (watchdog_slack × predicted seconds, floored at min_item_deadline_ms),
  /// > 0 is a fixed budget in milliseconds. Expired items are cooperatively
  /// cancelled inside the triangulation/kernels and contained as
  /// failed-with-reason zero grids.
  double item_deadline_ms = -1.0;
  double watchdog_slack = 16.0;
  double min_item_deadline_ms = 2000.0;
  /// Runtime conservation audits over every committed item (dtfe/audit.h).
  AuditOptions audit;
  /// Escalate any audit violation to a thrown Error (aborting the run)
  /// instead of counting and tagging it.
  bool audit_fatal = false;
  // --- intra-rank compute pipeline (see README "Performance") -------------
  /// Bounded look-ahead window for the intra-rank item pipeline: up to this
  /// many items are gathered + triangulated on pool threads while the rank
  /// thread renders earlier items. 0 = fully serial (the legacy path).
  /// Commits stay in submission order, so grids, checkpoint journals,
  /// metrics, and report tags are bitwise identical for every setting.
  int compute_ahead = 0;
  /// Process-wide thread budget shared by all ranks in this process
  /// (0 = the OpenMP default). Each rank's kernel team plus its prepare
  /// workers are capped to budget / ranks-per-process so pool threads ×
  /// OpenMP teams never oversubscribe the machine (engine/executor.h).
  int threads = 0;
};

/// Per-rank busy seconds for each phase (thread CPU time: blocking receives
/// do not accumulate).
struct PhaseTimes {
  double partition = 0.0;
  double model = 0.0;
  double triangulate = 0.0;
  double render = 0.0;
  double work_share = 0.0;  ///< packing/unpacking/sending work packages
  double recover = 0.0;     ///< recomputing items lost to dead ranks
  double total() const {
    return partition + model + triangulate + render + work_share + recover;
  }
};

/// One computed field request.
struct ItemRecord {
  Vec3 center;
  /// Index into the global field-request list (-1 if unknown, e.g. items
  /// received from a pre-fault-tolerance sender).
  std::ptrdiff_t request_index = -1;
  double n_particles = 0.0;
  double predicted_tri = 0.0;
  double predicted_interp = 0.0;
  double actual_tri = 0.0;
  double actual_interp = 0.0;
  double grid_sum = 0.0;  ///< checksum of the rendered grid
  bool received = false;  ///< computed here on behalf of another rank
  bool failed = false;    ///< contained failure: the grid is all zeros
  bool recovered = false; ///< recomputed in the recovery phase
  bool fallback = false;  ///< shipped item computed locally after the
                          ///< receiver died, timed out, or gave up
  bool replayed = false;  ///< restored from a checkpoint, not computed
  bool cancelled = false; ///< failed because the item deadline expired
  std::string fail_reason;///< what went wrong when failed
  std::string audit;      ///< audit outcome ("" = not audited, else
                          ///< "pass" or the violated check names)
  /// Kernel health for this item (MarchingStats), surfaced as per-item run
  /// report tags: cells that exhausted perturbation retries, and how many
  /// degenerate marches were restarted.
  double kernel_failed_cells = 0.0;
  double kernel_perturb_restarts = 0.0;
};

struct PipelineResult {
  PhaseTimes phases;
  WorkloadModel model;
  WorkShareSchedule schedule;
  std::vector<ItemRecord> items;  ///< every item COMPUTED by this rank
  std::vector<FieldGrid> grids;   ///< parallel to items if keep_grids
  std::size_t owned_particles = 0;
  std::size_t ghost_particles = 0;
  std::size_t local_items = 0;     ///< requests whose center this rank owns
  std::size_t items_sent = 0;      ///< shipped to other ranks
  std::size_t items_received = 0;
  std::size_t items_failed = 0;    ///< contained failures (zero grids)
  std::size_t items_fallback = 0;  ///< shipped items computed locally instead
  std::size_t items_recovered = 0; ///< dead ranks' items recomputed here
  std::size_t items_replayed = 0;  ///< items restored from checkpoints
  std::size_t items_cancelled = 0; ///< items contained by the watchdog
  std::size_t audit_violations = 0;///< audit findings across this rank's items
  std::size_t package_retries = 0; ///< work-package re-requests served
  std::size_t packages_lost = 0;   ///< packages abandoned (fallback taken)
  SanitizeCounts bad_particles;    ///< input-hardening tallies for this rank
  std::vector<int> failed_ranks;   ///< ranks dead by the end of the run
  double predicted_local_time = 0.0;  ///< scheduler input for this rank
};

/// Run the full pipeline. `particles` must be the same full set on every
/// rank (standing in for the parallel file read: each rank takes an
/// arbitrary block of it and the real redistribution path runs). Field
/// centers are taken from rank 0 and broadcast, as in the paper.
PipelineResult run_pipeline(simmpi::Comm& comm, const ParticleSet& particles,
                            std::vector<Vec3> field_centers,
                            const PipelineOptions& opt);

/// Compute a single field request from an explicit particle cube — the
/// kernel invocation shared by the local, received, fallback, and recovery
/// execution paths. Returns the rendered grid and fills timing in `record`.
/// Never throws on bad data: a degenerate triangulation, a non-finite input
/// position, a non-finite rendered value, or a deadline cancellation yields
/// a zero grid with record.failed set and record.fail_reason explaining why.
/// (Exception: an audit violation under opt.audit_fatal throws.)
///
/// Deterministic by construction: the cube is canonically ordered before
/// triangulation and the kernel seed derives from (opt.seed, center), so
/// ANY rank computing this item from ANY data path (owner gather, shipped
/// package, recovery re-fetch, snapshot re-read) renders a bitwise
/// identical grid — the property checkpoint resume relies on.
FieldGrid compute_field_item(std::vector<Vec3> cube_particles, double mass,
                             const Vec3& center, const PipelineOptions& opt,
                             ItemRecord& record,
                             const Deadline* deadline = nullptr);

/// Re-fetches the particle cube for a field center (the recovery phase's
/// data source: in-memory extraction or a targeted snapshot re-read).
using CubeFetcher = std::function<std::vector<Vec3>(const Vec3& center,
                                                    double side)>;

/// The paper's §IV-B input path: each rank reads an arbitrary subset of the
/// snapshot's spatially contiguous blocks (round-robin, standing in for the
/// MPI-IO parallel read) and the pipeline redistributes from there. Field
/// centers are read by rank 0 only and broadcast.
PipelineResult run_pipeline_from_snapshot(simmpi::Comm& comm,
                                          const std::string& snapshot_path,
                                          std::vector<Vec3> field_centers,
                                          const PipelineOptions& opt);

}  // namespace dtfe
