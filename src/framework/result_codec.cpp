#include "framework/result_codec.h"

#include <cstring>
#include <type_traits>

#include "util/error.h"

namespace dtfe {

namespace {

constexpr std::uint32_t kConfigMagic = 0x43464750u;  // "PGFC"
constexpr std::uint32_t kResultMagic = 0x52534C50u;  // "PLSR"
// v2: PipelineOptions gained field/smooth_ensemble, grids became
// multi-channel FieldGrids, and WorkerPayload ships histogram snapshots.
// v3: PipelineOptions gained use_simd (marching kernel SIMD A/B switch).
constexpr std::uint32_t kVersion = 3;

class ByteWriter {
 public:
  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }
  void str(const std::string& s) {
    pod(static_cast<std::uint64_t>(s.size()));
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }
  template <typename T>
  void pod_vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    pod(static_cast<std::uint64_t>(v.size()));
    const auto* p = reinterpret_cast<const std::byte*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }
  void map(const std::map<std::string, double>& m) {
    pod(static_cast<std::uint64_t>(m.size()));
    for (const auto& [k, v] : m) {
      str(k);
      pod(v);
    }
  }
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    need(sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data() + off_, sizeof(T));
    off_ += sizeof(T);
    return v;
  }
  std::string str() {
    const auto n = len();
    need(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + off_), n);
    off_ += n;
    return s;
  }
  template <typename T>
  std::vector<T> pod_vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = len();
    need(n * sizeof(T));
    std::vector<T> v(n);
    std::memcpy(v.data(), bytes_.data() + off_, n * sizeof(T));
    off_ += n * sizeof(T);
    return v;
  }
  std::map<std::string, double> map() {
    const auto n = len();
    std::map<std::string, double> m;
    for (std::size_t i = 0; i < n; ++i) {
      std::string k = str();
      m[std::move(k)] = pod<double>();
    }
    return m;
  }
  std::size_t len() {
    const auto n = pod<std::uint64_t>();
    DTFE_CHECK_MSG(n <= bytes_.size(),
                   "worker payload: length " << n << " exceeds buffer");
    return static_cast<std::size_t>(n);
  }
  bool done() const { return off_ == bytes_.size(); }

 private:
  void need(std::size_t n) {
    DTFE_CHECK_MSG(off_ + n <= bytes_.size(),
                   "worker payload: truncated at offset " << off_);
  }
  std::span<const std::byte> bytes_;
  std::size_t off_ = 0;
};

void write_options(ByteWriter& w, const PipelineOptions& o) {
  w.pod(o.field_length);
  w.pod(static_cast<std::uint64_t>(o.field_resolution));
  w.pod(o.cube_pad);
  w.pod(static_cast<std::uint8_t>(o.load_balance));
  w.pod(static_cast<std::uint8_t>(o.keep_grids));
  w.pod(static_cast<std::uint64_t>(o.min_particles));
  w.pod(static_cast<std::uint64_t>(o.count_grid_cells));
  w.pod(o.seed);
  w.str(o.kernel);
  w.pod(static_cast<std::uint8_t>(o.fault_tolerant));
  w.pod(o.max_retries);
  w.pod(o.comm_timeout_ms);
  w.pod(static_cast<std::int32_t>(o.bad_particles));
  w.str(o.checkpoint_dir);
  w.pod(static_cast<std::uint8_t>(o.resume));
  w.pod(o.item_deadline_ms);
  w.pod(o.watchdog_slack);
  w.pod(o.min_item_deadline_ms);
  w.pod(o.audit);  // trivially copyable
  w.pod(static_cast<std::uint8_t>(o.audit_fatal));
  w.pod(o.compute_ahead);
  w.pod(o.threads);
  w.pod(static_cast<std::uint64_t>(o.field));
  w.pod(o.smooth_ensemble);
  w.pod(static_cast<std::int32_t>(o.use_simd));
}

PipelineOptions read_options(ByteReader& r) {
  PipelineOptions o;
  o.field_length = r.pod<double>();
  o.field_resolution = static_cast<std::size_t>(r.pod<std::uint64_t>());
  o.cube_pad = r.pod<double>();
  o.load_balance = r.pod<std::uint8_t>() != 0;
  o.keep_grids = r.pod<std::uint8_t>() != 0;
  o.min_particles = static_cast<std::size_t>(r.pod<std::uint64_t>());
  o.count_grid_cells = static_cast<std::size_t>(r.pod<std::uint64_t>());
  o.seed = r.pod<std::uint64_t>();
  o.kernel = r.str();
  o.fault_tolerant = r.pod<std::uint8_t>() != 0;
  o.max_retries = r.pod<int>();
  o.comm_timeout_ms = r.pod<int>();
  o.bad_particles = static_cast<BadParticlePolicy>(r.pod<std::int32_t>());
  o.checkpoint_dir = r.str();
  o.resume = r.pod<std::uint8_t>() != 0;
  o.item_deadline_ms = r.pod<double>();
  o.watchdog_slack = r.pod<double>();
  o.min_item_deadline_ms = r.pod<double>();
  o.audit = r.pod<AuditOptions>();
  o.audit_fatal = r.pod<std::uint8_t>() != 0;
  o.compute_ahead = r.pod<int>();
  o.threads = r.pod<int>();
  o.field = static_cast<FieldKind>(r.pod<std::uint64_t>());
  o.smooth_ensemble = r.pod<int>();
  o.use_simd = static_cast<SimdMode>(r.pod<std::int32_t>());
  return o;
}

void write_field_grid(ByteWriter& w, const FieldGrid& g) {
  w.pod(static_cast<std::uint64_t>(g.kind()));
  w.pod(static_cast<std::uint64_t>(g.channels()));
  for (std::size_t c = 0; c < g.channels(); ++c) {
    const Grid2D& plane = g.plane(c);
    w.pod(static_cast<std::uint64_t>(plane.nx()));
    w.pod(static_cast<std::uint64_t>(plane.ny()));
    std::vector<double> vals(plane.values().begin(), plane.values().end());
    w.pod_vec(vals);
  }
}

FieldGrid read_field_grid(ByteReader& r) {
  const std::uint64_t kind_raw = r.pod<std::uint64_t>();
  DTFE_CHECK_MSG(kind_raw <= static_cast<std::uint64_t>(FieldKind::kGrad),
                 "worker payload: bad field kind " << kind_raw);
  const auto kind = static_cast<FieldKind>(kind_raw);
  const std::size_t nplanes = r.len();
  DTFE_CHECK_MSG(nplanes == field_channels(kind),
                 "worker payload: plane count mismatch for field "
                     << field_kind_name(kind));
  std::vector<Grid2D> planes;
  planes.reserve(nplanes);
  for (std::size_t c = 0; c < nplanes; ++c) {
    const auto nx = static_cast<std::size_t>(r.pod<std::uint64_t>());
    const auto ny = static_cast<std::size_t>(r.pod<std::uint64_t>());
    const std::vector<double> vals = r.pod_vec<double>();
    DTFE_CHECK_MSG(vals.size() == nx * ny,
                   "worker payload: grid size mismatch");
    Grid2D g(nx, ny);
    std::memcpy(g.values().data(), vals.data(), vals.size() * sizeof(double));
    planes.push_back(std::move(g));
  }
  return FieldGrid(kind, std::move(planes));
}

void write_histograms(
    ByteWriter& w, const std::map<std::string, obs::HistogramSnapshot>& hs) {
  w.pod(static_cast<std::uint64_t>(hs.size()));
  for (const auto& [name, h] : hs) {
    w.str(name);
    w.pod_vec(h.bounds);
    w.pod_vec(h.counts);
    w.pod(h.sum);
    w.pod(h.count);
  }
}

std::map<std::string, obs::HistogramSnapshot> read_histograms(ByteReader& r) {
  const std::size_t n = r.len();
  std::map<std::string, obs::HistogramSnapshot> hs;
  for (std::size_t i = 0; i < n; ++i) {
    std::string name = r.str();
    obs::HistogramSnapshot h;
    h.bounds = r.pod_vec<double>();
    h.counts = r.pod_vec<double>();
    h.sum = r.pod<double>();
    h.count = r.pod<double>();
    hs[std::move(name)] = std::move(h);
  }
  return hs;
}

void write_item(ByteWriter& w, const ItemRecord& it) {
  w.pod(it.center);
  w.pod(static_cast<std::int64_t>(it.request_index));
  w.pod(it.n_particles);
  w.pod(it.predicted_tri);
  w.pod(it.predicted_interp);
  w.pod(it.actual_tri);
  w.pod(it.actual_interp);
  w.pod(it.grid_sum);
  w.pod(static_cast<std::uint8_t>(it.received));
  w.pod(static_cast<std::uint8_t>(it.failed));
  w.pod(static_cast<std::uint8_t>(it.recovered));
  w.pod(static_cast<std::uint8_t>(it.fallback));
  w.pod(static_cast<std::uint8_t>(it.replayed));
  w.pod(static_cast<std::uint8_t>(it.cancelled));
  w.str(it.fail_reason);
  w.str(it.audit);
  w.pod(it.kernel_failed_cells);
  w.pod(it.kernel_perturb_restarts);
}

ItemRecord read_item(ByteReader& r) {
  ItemRecord it;
  it.center = r.pod<Vec3>();
  it.request_index = static_cast<std::ptrdiff_t>(r.pod<std::int64_t>());
  it.n_particles = r.pod<double>();
  it.predicted_tri = r.pod<double>();
  it.predicted_interp = r.pod<double>();
  it.actual_tri = r.pod<double>();
  it.actual_interp = r.pod<double>();
  it.grid_sum = r.pod<double>();
  it.received = r.pod<std::uint8_t>() != 0;
  it.failed = r.pod<std::uint8_t>() != 0;
  it.recovered = r.pod<std::uint8_t>() != 0;
  it.fallback = r.pod<std::uint8_t>() != 0;
  it.replayed = r.pod<std::uint8_t>() != 0;
  it.cancelled = r.pod<std::uint8_t>() != 0;
  it.fail_reason = r.str();
  it.audit = r.str();
  it.kernel_failed_cells = r.pod<double>();
  it.kernel_perturb_restarts = r.pod<double>();
  return it;
}

}  // namespace

std::vector<std::byte> encode_launch_config(const LaunchConfig& cfg) {
  ByteWriter w;
  w.pod(kConfigMagic);
  w.pod(kVersion);
  w.str(cfg.snapshot);
  write_options(w, cfg.pipeline);
  w.pod_vec(cfg.field_centers);
  return w.take();
}

LaunchConfig decode_launch_config(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  DTFE_CHECK_MSG(r.pod<std::uint32_t>() == kConfigMagic,
                 "launch config: bad magic");
  DTFE_CHECK_MSG(r.pod<std::uint32_t>() == kVersion,
                 "launch config: version mismatch");
  LaunchConfig cfg;
  cfg.snapshot = r.str();
  cfg.pipeline = read_options(r);
  cfg.field_centers = r.pod_vec<Vec3>();
  return cfg;
}

std::vector<std::byte> encode_worker_payload(const WorkerPayload& p) {
  ByteWriter w;
  w.pod(kResultMagic);
  w.pod(kVersion);
  w.pod(p.rank);
  w.pod(p.wire);
  w.map(p.counters);
  w.map(p.gauges);
  write_histograms(w, p.histograms);
  const PipelineResult& res = p.result;
  w.pod(res.phases);
  w.pod(res.model);
  w.pod_vec(res.schedule.send_list);
  w.pod_vec(res.schedule.recv_list);
  w.pod(res.schedule.average_time);
  w.pod(static_cast<std::uint64_t>(res.items.size()));
  for (const ItemRecord& it : res.items) write_item(w, it);
  w.pod(static_cast<std::uint64_t>(res.grids.size()));
  for (const FieldGrid& g : res.grids) write_field_grid(w, g);
  w.pod(static_cast<std::uint64_t>(res.owned_particles));
  w.pod(static_cast<std::uint64_t>(res.ghost_particles));
  w.pod(static_cast<std::uint64_t>(res.local_items));
  w.pod(static_cast<std::uint64_t>(res.items_sent));
  w.pod(static_cast<std::uint64_t>(res.items_received));
  w.pod(static_cast<std::uint64_t>(res.items_failed));
  w.pod(static_cast<std::uint64_t>(res.items_fallback));
  w.pod(static_cast<std::uint64_t>(res.items_recovered));
  w.pod(static_cast<std::uint64_t>(res.items_replayed));
  w.pod(static_cast<std::uint64_t>(res.items_cancelled));
  w.pod(static_cast<std::uint64_t>(res.audit_violations));
  w.pod(static_cast<std::uint64_t>(res.package_retries));
  w.pod(static_cast<std::uint64_t>(res.packages_lost));
  w.pod(res.bad_particles);
  w.pod_vec(res.failed_ranks);
  w.pod(res.predicted_local_time);
  return w.take();
}

WorkerPayload decode_worker_payload(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  DTFE_CHECK_MSG(r.pod<std::uint32_t>() == kResultMagic,
                 "worker payload: bad magic");
  DTFE_CHECK_MSG(r.pod<std::uint32_t>() == kVersion,
                 "worker payload: version mismatch");
  WorkerPayload p;
  p.rank = r.pod<int>();
  p.wire = r.pod<simmpi::TransportStats>();
  p.counters = r.map();
  p.gauges = r.map();
  p.histograms = read_histograms(r);
  PipelineResult& res = p.result;
  res.phases = r.pod<PhaseTimes>();
  res.model = r.pod<WorkloadModel>();
  res.schedule.send_list = r.pod_vec<PlannedSend>();
  res.schedule.recv_list = r.pod_vec<int>();
  res.schedule.average_time = r.pod<double>();
  const std::size_t n_items = r.len();
  res.items.reserve(n_items);
  for (std::size_t i = 0; i < n_items; ++i) res.items.push_back(read_item(r));
  const std::size_t n_grids = r.len();
  res.grids.reserve(n_grids);
  for (std::size_t i = 0; i < n_grids; ++i)
    res.grids.push_back(read_field_grid(r));
  res.owned_particles = static_cast<std::size_t>(r.pod<std::uint64_t>());
  res.ghost_particles = static_cast<std::size_t>(r.pod<std::uint64_t>());
  res.local_items = static_cast<std::size_t>(r.pod<std::uint64_t>());
  res.items_sent = static_cast<std::size_t>(r.pod<std::uint64_t>());
  res.items_received = static_cast<std::size_t>(r.pod<std::uint64_t>());
  res.items_failed = static_cast<std::size_t>(r.pod<std::uint64_t>());
  res.items_fallback = static_cast<std::size_t>(r.pod<std::uint64_t>());
  res.items_recovered = static_cast<std::size_t>(r.pod<std::uint64_t>());
  res.items_replayed = static_cast<std::size_t>(r.pod<std::uint64_t>());
  res.items_cancelled = static_cast<std::size_t>(r.pod<std::uint64_t>());
  res.audit_violations = static_cast<std::size_t>(r.pod<std::uint64_t>());
  res.package_retries = static_cast<std::size_t>(r.pod<std::uint64_t>());
  res.packages_lost = static_cast<std::size_t>(r.pod<std::uint64_t>());
  res.bad_particles = r.pod<SanitizeCounts>();
  res.failed_ranks = r.pod_vec<int>();
  res.predicted_local_time = r.pod<double>();
  return p;
}

}  // namespace dtfe
