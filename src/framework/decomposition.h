// Uniform spatial volume decomposition with ghost zones (paper §IV-B).
//
// Each rank owns one equal-size sub-volume of the periodic box ("equal size
// and not guaranteed to have an equal number of particles"). Ghost zones
// replicate particles within a distance `ghost_radius` beyond the sub-volume
// so every field whose center lies in the active region can be computed
// without further communication (the paper sizes this l_F/2).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "geometry/vec3.h"
#include "nbody/particles.h"
#include "simmpi/comm.h"

namespace dtfe {

class Decomposition {
 public:
  /// Factor `nranks` into the most cubic (px, py, pz) grid over a periodic
  /// box of length `box_length`.
  Decomposition(int nranks, double box_length);

  int nranks() const { return px_ * py_ * pz_; }
  std::array<int, 3> dims() const { return {px_, py_, pz_}; }
  double box_length() const { return box_; }

  /// Rank owning the point (positions are wrapped into the box first).
  int owner_of(const Vec3& p) const;

  /// Sub-volume [lo, hi) of a rank.
  Vec3 sub_lo(int rank) const;
  Vec3 sub_hi(int rank) const;

  /// True if p lies within the rank's sub-volume extended by `radius` in
  /// every direction (periodic): the ghost-inclusion test.
  bool in_ghost_region(int rank, const Vec3& p, double radius) const;

  /// Distribute `mine` so every rank ends with exactly the particles it owns
  /// — the redistribution step after the arbitrary-block parallel read.
  std::vector<Vec3> redistribute(simmpi::Comm& comm,
                                 std::vector<Vec3> mine) const;

  /// Given the owned particles, return owned + ghost particles within
  /// `radius` of the sub-volume, ghost copies unwrapped into the sub-volume's
  /// frame (periodic images are shifted next to the boundary they pad).
  std::vector<Vec3> exchange_ghosts(simmpi::Comm& comm,
                                    const std::vector<Vec3>& owned,
                                    double radius) const;

 private:
  std::array<int, 3> coords_of(int rank) const;

  int px_, py_, pz_;
  double box_;
};

}  // namespace dtfe
