#include "framework/decomposition.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace dtfe {

namespace {
constexpr int kTagRedistribute = 100;
constexpr int kTagGhost = 101;
}  // namespace

Decomposition::Decomposition(int nranks, double box_length)
    : box_(box_length) {
  DTFE_CHECK(nranks >= 1);
  DTFE_CHECK(box_length > 0.0);
  // Most-cubic factorization: split the largest remaining factor each time.
  int dims[3] = {1, 1, 1};
  int n = nranks;
  for (int f = 2; f <= n;) {
    if (n % f == 0) {
      int* smallest = std::min_element(dims, dims + 3);
      *smallest *= f;
      n /= f;
    } else {
      ++f;
    }
  }
  std::sort(dims, dims + 3);
  px_ = dims[2];
  py_ = dims[1];
  pz_ = dims[0];
  DTFE_CHECK(px_ * py_ * pz_ == nranks);
}

std::array<int, 3> Decomposition::coords_of(int rank) const {
  return {rank % px_, (rank / px_) % py_, rank / (px_ * py_)};
}

int Decomposition::owner_of(const Vec3& p) const {
  const Vec3 w = wrap_periodic(p, box_);
  auto coord = [&](double v, int n) {
    auto c = static_cast<int>(v / box_ * n);
    return std::clamp(c, 0, n - 1);
  };
  return (coord(w.z, pz_) * py_ + coord(w.y, py_)) * px_ + coord(w.x, px_);
}

Vec3 Decomposition::sub_lo(int rank) const {
  const auto c = coords_of(rank);
  return {box_ * c[0] / px_, box_ * c[1] / py_, box_ * c[2] / pz_};
}

Vec3 Decomposition::sub_hi(int rank) const {
  const auto c = coords_of(rank);
  return {box_ * (c[0] + 1) / px_, box_ * (c[1] + 1) / py_,
          box_ * (c[2] + 1) / pz_};
}

bool Decomposition::in_ghost_region(int rank, const Vec3& p,
                                    double radius) const {
  const Vec3 lo = sub_lo(rank), hi = sub_hi(rank);
  auto in_dim = [&](double v, double l, double h) {
    // periodic interval test: v within [l−radius, h+radius) modulo box
    const double span = h - l + 2.0 * radius;
    if (span >= box_) return true;
    double d = v - (l - radius);
    d -= box_ * std::floor(d / box_);
    return d < span;
  };
  return in_dim(p.x, lo.x, hi.x) && in_dim(p.y, lo.y, hi.y) &&
         in_dim(p.z, lo.z, hi.z);
}

std::vector<Vec3> Decomposition::redistribute(simmpi::Comm& comm,
                                              std::vector<Vec3> mine) const {
  const int P = comm.size();
  std::vector<std::vector<Vec3>> outgoing(static_cast<std::size_t>(P));
  for (const Vec3& p : mine)
    outgoing[static_cast<std::size_t>(owner_of(p))].push_back(
        wrap_periodic(p, box_));

  std::vector<Vec3> owned =
      std::move(outgoing[static_cast<std::size_t>(comm.rank())]);
  for (int r = 0; r < P; ++r) {
    if (r == comm.rank()) continue;
    comm.send_vector<Vec3>(r, kTagRedistribute,
                           outgoing[static_cast<std::size_t>(r)]);
  }
  for (int r = 0; r < P; ++r) {
    if (r == comm.rank()) continue;
    const auto in = comm.recv_vector<Vec3>(r, kTagRedistribute);
    owned.insert(owned.end(), in.begin(), in.end());
  }
  return owned;
}

std::vector<Vec3> Decomposition::exchange_ghosts(
    simmpi::Comm& comm, const std::vector<Vec3>& owned, double radius) const {
  const int P = comm.size();
  DTFE_CHECK_MSG(radius >= 0.0 && radius <= 0.5 * box_,
                 "ghost radius must be in [0, box/2]");

  // For each destination rank, ship every periodic image of every owned
  // particle that falls inside the destination's extended sub-volume; the
  // image coordinates are sent directly so the receiver's point set is
  // spatially contiguous around its sub-volume (required by the Delaunay
  // kernels, which know nothing about periodicity).
  std::vector<std::vector<Vec3>> outgoing(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    const Vec3 lo = sub_lo(r), hi = sub_hi(r);
    // Candidate image shifts per dimension: those for which the shifted box
    // [0,L) can overlap [lo−radius, hi+radius].
    auto shifts = [&](double l, double h) {
      std::vector<double> s;
      for (const double cand : {-box_, 0.0, box_})
        if (cand < h + radius && cand + box_ > l - radius) s.push_back(cand);
      return s;
    };
    const auto sx = shifts(lo.x, hi.x);
    const auto sy = shifts(lo.y, hi.y);
    const auto sz = shifts(lo.z, hi.z);
    auto& out = outgoing[static_cast<std::size_t>(r)];
    for (const Vec3& p : owned) {
      for (const double dx : sx)
        for (const double dy : sy)
          for (const double dz : sz) {
            const Vec3 q{p.x + dx, p.y + dy, p.z + dz};
            if (q.x < lo.x - radius || q.x > hi.x + radius) continue;
            if (q.y < lo.y - radius || q.y > hi.y + radius) continue;
            if (q.z < lo.z - radius || q.z > hi.z + radius) continue;
            if (r == comm.rank() && dx == 0.0 && dy == 0.0 && dz == 0.0)
              continue;  // the owned copy itself is already present
            // Exclude points interior to the destination's own volume for
            // remote ranks (those arrive via ownership, not as ghosts).
            if (r != comm.rank() && q.x >= lo.x && q.x < hi.x &&
                q.y >= lo.y && q.y < hi.y && q.z >= lo.z && q.z < hi.z)
              continue;
            out.push_back(q);
          }
    }
  }

  std::vector<Vec3> result = owned;
  const auto& self = outgoing[static_cast<std::size_t>(comm.rank())];
  result.insert(result.end(), self.begin(), self.end());
  for (int r = 0; r < P; ++r) {
    if (r == comm.rank()) continue;
    comm.send_vector<Vec3>(r, kTagGhost, outgoing[static_cast<std::size_t>(r)]);
  }
  for (int r = 0; r < P; ++r) {
    if (r == comm.rank()) continue;
    const auto in = comm.recv_vector<Vec3>(r, kTagGhost);
    result.insert(result.end(), in.begin(), in.end());
  }
  return result;
}

}  // namespace dtfe
