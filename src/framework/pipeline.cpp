#include "framework/pipeline.h"

#include "nbody/snapshot_io.h"

#include <algorithm>
#include <cstring>
#include <cmath>
#include <optional>

#include "delaunay/hull_projection.h"
#include "delaunay/triangulation.h"
#include "dtfe/density.h"
#include "dtfe/marching_kernel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/grid_index.h"
#include "util/rng.h"
#include "util/timer.h"

namespace dtfe {

namespace {

constexpr int kTagWork = 200;

struct PipelineMetrics {
  obs::MetricId items_computed = obs::counter("dtfe.pipeline.items_computed");
  obs::MetricId items_received = obs::counter("dtfe.pipeline.items_received");
  obs::MetricId items_sent = obs::counter("dtfe.pipeline.items_sent");
  obs::MetricId work_packages =
      obs::counter("dtfe.pipeline.work_packages_sent");
  obs::MetricId runs = obs::counter("dtfe.pipeline.runs");
};

const PipelineMetrics& pipeline_metrics() {
  static const PipelineMetrics m;
  return m;
}

/// Accumulates the scope's thread-CPU seconds into a PhaseTimes field (via
/// ScopedTimer) and emits a `cat:"pipeline"` trace span whose `cpu_s`
/// argument is EXACTLY the accumulated value: tests/obs asserts that the
/// per-rank sum of `cpu_s` over pipeline spans reproduces
/// PhaseTimes::total(), so both must come from the same timer read.
class PhaseScope {
 public:
  PhaseScope(const char* name, double& accumulator)
      : name_(name),
        timer_(accumulator),
        start_us_(obs::TraceRecorder::global().now_us()) {}
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
  ~PhaseScope() {
    const double cpu = timer_.stop();
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    if (rec.enabled())
      rec.emit_complete(name_, "pipeline", start_us_, rec.now_us() - start_us_,
                        {{"cpu_s", cpu}});
  }

 private:
  const char* name_;
  ScopedTimer timer_;
  double start_us_;
};

// Work package layout (doubles): [n_items, {cx, cy, cz, count, xyz...}...].
std::vector<double> pack_items(
    const std::vector<Vec3>& centers,
    const std::vector<std::vector<Vec3>>& particle_sets) {
  std::vector<double> buf;
  buf.push_back(static_cast<double>(centers.size()));
  for (std::size_t i = 0; i < centers.size(); ++i) {
    buf.push_back(centers[i].x);
    buf.push_back(centers[i].y);
    buf.push_back(centers[i].z);
    buf.push_back(static_cast<double>(particle_sets[i].size()));
    for (const Vec3& p : particle_sets[i]) {
      buf.push_back(p.x);
      buf.push_back(p.y);
      buf.push_back(p.z);
    }
  }
  return buf;
}

void unpack_items(const std::vector<double>& buf, std::vector<Vec3>& centers,
                  std::vector<std::vector<Vec3>>& particle_sets) {
  DTFE_CHECK(!buf.empty());
  std::size_t pos = 0;
  const auto n = static_cast<std::size_t>(buf[pos++]);
  centers.resize(n);
  particle_sets.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    centers[i] = {buf[pos], buf[pos + 1], buf[pos + 2]};
    pos += 3;
    const auto count = static_cast<std::size_t>(buf[pos++]);
    particle_sets[i].resize(count);
    for (std::size_t k = 0; k < count; ++k) {
      particle_sets[i][k] = {buf[pos], buf[pos + 1], buf[pos + 2]};
      pos += 3;
    }
  }
  DTFE_CHECK(pos == buf.size());
}

}  // namespace

Grid2D compute_field_item(std::vector<Vec3> cube_particles, double mass,
                          const Vec3& center, const PipelineOptions& opt,
                          ItemRecord& record) {
  record.center = center;
  record.n_particles = static_cast<double>(cube_particles.size());
  if (cube_particles.size() < opt.min_particles) {
    return Grid2D(opt.field_resolution, opt.field_resolution);
  }
  ThreadCpuTimer t;
  Grid2D grid;
  try {
    const Triangulation tri(cube_particles);
    record.actual_tri = t.seconds();
    t.reset();
    const DensityField rho(tri, mass);
    const HullProjection hull(tri);
    const MarchingKernel kernel(rho, hull);
    const FieldSpec spec =
        FieldSpec::centered(center, opt.field_length, opt.field_resolution);
    grid = kernel.render(spec);
    record.actual_interp = t.seconds();
  } catch (const Error&) {
    // Degenerate cube (e.g. all points coplanar): an empty field, as a
    // production code must tolerate pathological requests.
    record.actual_tri = t.seconds();
    grid = Grid2D(opt.field_resolution, opt.field_resolution);
  }
  return grid;
}

namespace {
/// Shared core of the pipeline: `my_block` is whatever subset of the global
/// particles this rank obtained from its read (any block assignment works —
/// redistribution sorts ownership out).
PipelineResult run_pipeline_impl(simmpi::Comm& comm, double box,
                                 double particle_mass,
                                 std::vector<Vec3> my_block,
                                 std::vector<Vec3> field_centers,
                                 const PipelineOptions& opt) {
  PipelineResult res;
  const int P = comm.size();
  const int me = comm.rank();
  const double cube_side = opt.cube_pad * opt.field_length;
  const double ghost_radius = 0.5 * cube_side;
  Rng rng(opt.seed * 7919 + static_cast<std::uint64_t>(me));

  obs::TraceRecorder::set_thread_rank(me);
  obs::add(pipeline_metrics().runs);

  // ---- Phase 1: partitioning & redistribution -----------------------------
  std::optional<PhaseScope> phase;
  phase.emplace("pipeline.partition", res.phases.partition);
  const Decomposition decomp(P, box);
  std::vector<Vec3> local_particles;
  {
    auto owned = decomp.redistribute(comm, std::move(my_block));
    res.owned_particles = owned.size();
    local_particles = decomp.exchange_ghosts(comm, owned, ghost_radius);
    res.ghost_particles = local_particles.size() - owned.size();
  }

  // Field locations: read by one process and broadcast; each rank keeps the
  // requests whose center falls in its sub-volume.
  {
    std::vector<std::byte> blob;
    if (me == 0) {
      blob.resize(field_centers.size() * sizeof(Vec3));
      std::memcpy(blob.data(), field_centers.data(), blob.size());
    }
    comm.bcast_bytes(blob, 0);
    if (me != 0) {
      field_centers.resize(blob.size() / sizeof(Vec3));
      std::memcpy(field_centers.data(), blob.data(), blob.size());
    }
  }
  std::vector<Vec3> my_requests;
  for (const Vec3& c : field_centers) {
    const Vec3 w = wrap_periodic(c, box);
    if (decomp.owner_of(w) == me) my_requests.push_back(w);
  }
  res.local_items = my_requests.size();

  // ---- Phase 2: workload modeling -----------------------------------------
  phase.emplace("pipeline.model", res.phases.model);
  // Spatial index over the local (owned + ghost) particles. Ghosts are
  // unwrapped, so the covering box starts at sub_lo − ghost_radius.
  const Vec3 idx_origin = decomp.sub_lo(me) -
                          Vec3{ghost_radius, ghost_radius, ghost_radius};
  const Vec3 sub_ext = decomp.sub_hi(me) - decomp.sub_lo(me);
  const double idx_extent =
      std::max({sub_ext.x, sub_ext.y, sub_ext.z}) + 2.0 * ghost_radius;
  const GridIndex index(local_particles, idx_origin, idx_extent,
                        opt.count_grid_cells);

  std::vector<double> item_counts(my_requests.size(), 0.0);
  for (std::size_t i = 0; i < my_requests.size(); ++i)
    item_counts[i] = static_cast<double>(
        index.count_in_cube(my_requests[i], cube_side));

  // Time one random local work item (it is then already computed).
  std::ptrdiff_t test_item = -1;
  Grid2D test_grid;
  ItemRecord test_record;
  std::vector<WorkSample> my_samples;
  if (!my_requests.empty()) {
    test_item = static_cast<std::ptrdiff_t>(
        rng.uniform_index(my_requests.size()));
    const auto ti = static_cast<std::size_t>(test_item);
    std::vector<std::uint32_t> ids;
    index.gather_in_cube(my_requests[ti], cube_side, ids);
    std::vector<Vec3> cube;
    cube.reserve(ids.size());
    for (const auto id : ids) cube.push_back(local_particles[id]);
    test_grid = compute_field_item(std::move(cube), particle_mass,
                                   my_requests[ti], opt, test_record);
    my_samples.push_back({item_counts[ti], test_record.actual_tri,
                          test_record.actual_interp});
  }
  res.model = fit_workload_model(comm, my_samples);

  // Predicted remaining local work (the test item is already done).
  std::vector<double> predicted(my_requests.size(), 0.0);
  double total_predicted = 0.0;
  for (std::size_t i = 0; i < my_requests.size(); ++i) {
    if (static_cast<std::ptrdiff_t>(i) == test_item) continue;
    predicted[i] = res.model.predict(item_counts[i]);
    total_predicted += predicted[i];
  }
  res.predicted_local_time = total_predicted;

  // ---- Phase 3: work-sharing schedule --------------------------------------
  phase.emplace("pipeline.work_share", res.phases.work_share);
  SenderPlan plan;
  std::vector<std::size_t> remaining;  // indices into my_requests
  for (std::size_t i = 0; i < my_requests.size(); ++i)
    if (static_cast<std::ptrdiff_t>(i) != test_item) remaining.push_back(i);

  if (opt.load_balance && P > 1) {
    const auto all_times = comm.allgather(total_predicted);
    std::vector<RankWork> work(static_cast<std::size_t>(P));
    for (int r = 0; r < P; ++r)
      work[static_cast<std::size_t>(r)] = {r, all_times[static_cast<std::size_t>(r)]};
    res.schedule = create_communication_list(std::move(work), me);

    std::vector<double> remaining_times;
    remaining_times.reserve(remaining.size());
    for (const std::size_t i : remaining) remaining_times.push_back(predicted[i]);
    plan = plan_sender(res.schedule.send_list, remaining_times);
  } else {
    plan.item_assignment.assign(remaining.size(), SenderPlan::kRunAtEnd);
  }
  phase.reset();

  // ---- Phase 4: execution & communication ----------------------------------
  auto record_item = [&](ItemRecord rec, Grid2D grid, double pred_tri,
                         double pred_interp, bool received) {
    rec.predicted_tri = pred_tri;
    rec.predicted_interp = pred_interp;
    rec.received = received;
    res.phases.triangulate += rec.actual_tri;
    res.phases.render += rec.actual_interp;
    if (obs::metrics_enabled()) {
      const PipelineMetrics& m = pipeline_metrics();
      obs::add(m.items_computed);
      if (received) obs::add(m.items_received);
    }
    obs::TraceRecorder& tr = obs::TraceRecorder::global();
    if (tr.enabled()) {
      // Re-emit the item's externally measured CPU times as back-to-back
      // spans ending now (the compute itself happened just above, or in
      // phase 2 for the model's test item). cpu_s repeats the exact values
      // accumulated into PhaseTimes.
      const double now = tr.now_us();
      const double tri_us = std::max(0.0, rec.actual_tri * 1e6);
      const double render_us = std::max(0.0, rec.actual_interp * 1e6);
      tr.emit_complete("item.triangulate", "pipeline",
                       now - render_us - tri_us, tri_us,
                       {{"cpu_s", rec.actual_tri},
                        {"n_particles", rec.n_particles},
                        {"received", received ? 1.0 : 0.0}});
      tr.emit_complete("item.render", "pipeline", now - render_us, render_us,
                       {{"cpu_s", rec.actual_interp},
                        {"received", received ? 1.0 : 0.0}});
    }
    res.items.push_back(rec);
    if (opt.keep_grids) res.grids.push_back(std::move(grid));
  };

  // The already-computed random test item.
  if (test_item >= 0) {
    const auto ti = static_cast<std::size_t>(test_item);
    record_item(test_record, std::move(test_grid),
                res.model.predict_tri(item_counts[ti]),
                res.model.predict_interp(item_counts[ti]), false);
  }

  auto execute_local = [&](std::size_t idx_in_remaining) {
    const std::size_t i = remaining[idx_in_remaining];
    std::vector<std::uint32_t> ids;
    index.gather_in_cube(my_requests[i], cube_side, ids);
    std::vector<Vec3> cube;
    cube.reserve(ids.size());
    for (const auto id : ids) cube.push_back(local_particles[id]);
    ItemRecord rec;
    Grid2D grid = compute_field_item(std::move(cube), particle_mass,
                                     my_requests[i], opt, rec);
    record_item(std::move(rec), std::move(grid),
                res.model.predict_tri(item_counts[i]),
                res.model.predict_interp(item_counts[i]), false);
  };

  if (!res.schedule.send_list.empty()) {
    // SENDER: interleave gap-bin local items with sends, then leftovers.
    for (std::size_t k = 0; k < plan.ordered_sends.size(); ++k) {
      for (std::size_t j = 0; j < remaining.size(); ++j)
        if (plan.item_assignment[j] == plan.gap_slot(k)) execute_local(j);

      PhaseScope pack_scope("pipeline.pack", res.phases.work_share);
      std::vector<Vec3> centers;
      std::vector<std::vector<Vec3>> cubes;
      for (std::size_t j = 0; j < remaining.size(); ++j) {
        if (plan.item_assignment[j] != static_cast<int>(k)) continue;
        const std::size_t i = remaining[j];
        centers.push_back(my_requests[i]);
        std::vector<std::uint32_t> ids;
        index.gather_in_cube(my_requests[i], cube_side, ids);
        std::vector<Vec3> cube;
        cube.reserve(ids.size());
        for (const auto id : ids) cube.push_back(local_particles[id]);
        cubes.push_back(std::move(cube));
      }
      const auto buf = pack_items(centers, cubes);
      comm.send_vector<double>(plan.ordered_sends[k].receiver, kTagWork, buf);
      res.items_sent += centers.size();
      if (obs::metrics_enabled()) {
        const PipelineMetrics& m = pipeline_metrics();
        obs::add(m.work_packages);
        obs::add(m.items_sent, static_cast<double>(centers.size()));
      }
    }
    for (std::size_t j = 0; j < remaining.size(); ++j)
      if (plan.item_assignment[j] == SenderPlan::kRunAtEnd) execute_local(j);
  } else {
    // RECEIVER or neutral rank: drain local work...
    for (std::size_t j = 0; j < remaining.size(); ++j) execute_local(j);
    // ...then serve the expected work-sharing messages in order.
    for (const int sender : res.schedule.recv_list) {
      const auto buf = comm.recv_vector<double>(sender, kTagWork);
      std::vector<Vec3> centers;
      std::vector<std::vector<Vec3>> cubes;
      {
        PhaseScope unpack_scope("pipeline.unpack", res.phases.work_share);
        unpack_items(buf, centers, cubes);
      }
      for (std::size_t i = 0; i < centers.size(); ++i) {
        ItemRecord rec;
        const double n = static_cast<double>(cubes[i].size());
        Grid2D grid =
            compute_field_item(std::move(cubes[i]), particle_mass,
                               centers[i], opt, rec);
        record_item(std::move(rec), std::move(grid), res.model.predict_tri(n),
                    res.model.predict_interp(n), true);
        ++res.items_received;
      }
    }
  }

  comm.barrier();
  return res;
}
}  // namespace

PipelineResult run_pipeline(simmpi::Comm& comm, const ParticleSet& particles,
                            std::vector<Vec3> field_centers,
                            const PipelineOptions& opt) {
  // Arbitrary block assignment standing in for the MPI-IO read: rank r
  // takes the r-th contiguous slice of the file order.
  const int P = comm.size();
  const int me = comm.rank();
  const std::size_t n = particles.size();
  const std::size_t lo =
      n * static_cast<std::size_t>(me) / static_cast<std::size_t>(P);
  const std::size_t hi =
      n * static_cast<std::size_t>(me + 1) / static_cast<std::size_t>(P);
  std::vector<Vec3> block(
      particles.positions.begin() + static_cast<std::ptrdiff_t>(lo),
      particles.positions.begin() + static_cast<std::ptrdiff_t>(hi));
  return run_pipeline_impl(comm, particles.box_length, particles.particle_mass,
                           std::move(block), std::move(field_centers), opt);
}

PipelineResult run_pipeline_from_snapshot(simmpi::Comm& comm,
                                          const std::string& snapshot_path,
                                          std::vector<Vec3> field_centers,
                                          const PipelineOptions& opt) {
  // Parallel read with round-robin block assignment (paper: "a parallel
  // read of the data using an arbitrary block assignment").
  const SnapshotHeader header = read_snapshot_header(snapshot_path);
  std::vector<Vec3> block;
  for (std::size_t b = static_cast<std::size_t>(comm.rank());
       b < header.blocks.size(); b += static_cast<std::size_t>(comm.size())) {
    const auto part = read_snapshot_block(snapshot_path, header, b);
    block.insert(block.end(), part.begin(), part.end());
  }
  return run_pipeline_impl(comm, header.box_length, header.particle_mass,
                           std::move(block), std::move(field_centers), opt);
}

}  // namespace dtfe
