#include "framework/durable.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>

#include "util/error.h"

namespace dtfe {

namespace {

// "DTFECKP1" little-endian: the per-record magic. Bump the trailing digit on
// any layout change — mismatched journals are then ignored, not misread.
constexpr std::uint64_t kRecordMagic = 0x31504B4345465444ull;
// "DTFECKP2": multi-channel records (payload carries the field kind and the
// plane count). Single-plane density items keep writing v1 records so a
// density journal is byte-identical before and after the field engine, and
// resumes in either direction.
constexpr std::uint64_t kRecordMagicV2 = 0x32504B4345465444ull;

namespace fs = std::filesystem;

void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.append(b, 8);
}

void put_f64(std::string& out, double v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.append(b, 8);
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

double get_f64(const char* p) {
  double v;
  std::memcpy(&v, p, 8);
  return v;
}

std::string journal_name(int rank) {
  return "journal-rank-" + std::to_string(rank) + ".ckpt";
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

CheckpointWriter::CheckpointWriter(const std::string& dir, int rank) {
  std::error_code ec;
  fs::create_directories(dir, ec);  // ok if it already exists
  path_ = (fs::path(dir) / journal_name(rank)).string();
  FILE* f = std::fopen(path_.c_str(), "ab");
  DTFE_CHECK_MSG(f != nullptr, "cannot open checkpoint journal " + path_);
  file_ = f;
}

CheckpointWriter::~CheckpointWriter() {
  if (file_ != nullptr) std::fclose(static_cast<FILE*>(file_));
}

void CheckpointWriter::append(std::int64_t request_index, const Grid2D& grid) {
  // v1 record layout: magic | payload_bytes | payload | fnv1a64(payload),
  // where payload = request_index | nx | ny | values. A crash between the
  // write and the fsync can only tear the LAST record, which the loader
  // detects.
  std::string payload;
  payload.reserve(24 + 8 * grid.size());
  put_u64(payload, static_cast<std::uint64_t>(request_index));
  put_u64(payload, static_cast<std::uint64_t>(grid.nx()));
  put_u64(payload, static_cast<std::uint64_t>(grid.ny()));
  for (std::size_t i = 0; i < grid.size(); ++i) put_f64(payload, grid.flat(i));
  append_record(kRecordMagic, payload);
}

void CheckpointWriter::append(std::int64_t request_index,
                              const FieldGrid& grid) {
  if (grid.kind() == FieldKind::kDensity && grid.channels() == 1) {
    // Bitwise the pre-multi-channel journal bytes.
    append(request_index, grid.plane(0));
    return;
  }
  // v2 payload = request_index | kind | nplanes | nx | ny | plane values
  // (plane 0 first, row-major within each plane).
  std::string payload;
  payload.reserve(40 + 8 * grid.channels() * grid.nx() * grid.ny());
  put_u64(payload, static_cast<std::uint64_t>(request_index));
  put_u64(payload, static_cast<std::uint64_t>(grid.kind()));
  put_u64(payload, static_cast<std::uint64_t>(grid.channels()));
  put_u64(payload, static_cast<std::uint64_t>(grid.nx()));
  put_u64(payload, static_cast<std::uint64_t>(grid.ny()));
  for (std::size_t c = 0; c < grid.channels(); ++c) {
    const Grid2D& plane = grid.plane(c);
    for (std::size_t i = 0; i < plane.size(); ++i)
      put_f64(payload, plane.flat(i));
  }
  append_record(kRecordMagicV2, payload);
}

void CheckpointWriter::append_record(std::uint64_t magic,
                                     const std::string& payload) {
  std::string record;
  record.reserve(payload.size() + 24);
  put_u64(record, magic);
  put_u64(record, static_cast<std::uint64_t>(payload.size()));
  record += payload;
  put_u64(record, fnv1a64(payload.data(), payload.size()));

  FILE* f = static_cast<FILE*>(file_);
  const std::size_t wrote = std::fwrite(record.data(), 1, record.size(), f);
  DTFE_CHECK_MSG(wrote == record.size(),
                 "short write to checkpoint journal " + path_);
  DTFE_CHECK_MSG(std::fflush(f) == 0,
                 "cannot flush checkpoint journal " + path_);
  // Durability point: after this returns the record survives a crash.
  fsync(fileno(f));
  ++records_written_;
}

std::vector<CheckpointItem> load_checkpoints(const std::string& dir) {
  std::vector<CheckpointItem> items;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return items;

  // Deterministic replay order: sort the journal paths.
  std::vector<fs::path> journals;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("journal-rank-", 0) == 0 &&
        name.size() > 5 && name.substr(name.size() - 5) == ".ckpt")
      journals.push_back(e.path());
  }
  std::sort(journals.begin(), journals.end());

  std::set<std::int64_t> seen;
  for (const fs::path& jp : journals) {
    FILE* f = std::fopen(jp.string().c_str(), "rb");
    if (f == nullptr) continue;
    for (;;) {
      char head[16];
      if (std::fread(head, 1, 16, f) != 16) break;        // clean EOF or torn
      const std::uint64_t magic = get_u64(head);
      if (magic != kRecordMagic && magic != kRecordMagicV2)
        break;                                            // corrupt: stop here
      const std::uint64_t nbytes = get_u64(head + 8);
      const std::uint64_t min_bytes = magic == kRecordMagic ? 24 : 40;
      if (nbytes < min_bytes || nbytes > (1ull << 32)) break;
      std::string payload(nbytes, '\0');
      if (std::fread(payload.data(), 1, nbytes, f) != nbytes) break;  // torn
      char sumb[8];
      if (std::fread(sumb, 1, 8, f) != 8) break;                      // torn
      if (get_u64(sumb) != fnv1a64(payload.data(), payload.size()))
        break;  // bit damage
      const auto request_index =
          static_cast<std::int64_t>(get_u64(payload.data()));
      CheckpointItem item;
      item.request_index = request_index;
      if (magic == kRecordMagic) {
        // v1: single-plane density.
        const auto nx = static_cast<std::size_t>(get_u64(payload.data() + 8));
        const auto ny = static_cast<std::size_t>(get_u64(payload.data() + 16));
        if (nbytes != 24 + 8 * nx * ny) break;
        if (!seen.insert(request_index).second) continue;  // duplicate commit
        Grid2D plane(nx, ny);
        for (std::size_t i = 0; i < nx * ny; ++i)
          plane.flat(i) = get_f64(payload.data() + 24 + 8 * i);
        item.grid = FieldGrid(std::move(plane));
      } else {
        // v2: kind + plane count precede the grid shape.
        const std::uint64_t kind_raw = get_u64(payload.data() + 8);
        const auto nplanes =
            static_cast<std::size_t>(get_u64(payload.data() + 16));
        const auto nx = static_cast<std::size_t>(get_u64(payload.data() + 24));
        const auto ny = static_cast<std::size_t>(get_u64(payload.data() + 32));
        if (kind_raw > static_cast<std::uint64_t>(FieldKind::kGrad)) break;
        const auto kind = static_cast<FieldKind>(kind_raw);
        if (nplanes != field_channels(kind) || nplanes == 0) break;
        if (nbytes != 40 + 8 * nplanes * nx * ny) break;
        if (!seen.insert(request_index).second) continue;  // duplicate commit
        std::vector<Grid2D> planes;
        planes.reserve(nplanes);
        const char* cursor = payload.data() + 40;
        for (std::size_t c = 0; c < nplanes; ++c) {
          Grid2D plane(nx, ny);
          for (std::size_t i = 0; i < nx * ny; ++i, cursor += 8)
            plane.flat(i) = get_f64(cursor);
          planes.push_back(std::move(plane));
        }
        item.grid = FieldGrid(kind, std::move(planes));
      }
      items.push_back(std::move(item));
    }
    std::fclose(f);
  }
  return items;
}

void write_checkpoint_manifest(const std::string& dir,
                               const std::string& fingerprint) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  // Temp name unique per writer. Pid alone is NOT unique: simmpi ranks are
  // threads of one process, and every rank publishes the manifest. All
  // writers produce identical bytes, so rename order cannot matter — but
  // each needs its own temp file or a loser renames a path the winner
  // already moved.
  static std::atomic<unsigned> manifest_seq{0};
  const fs::path tmp = fs::path(dir) /
      ("manifest.tmp." + std::to_string(::getpid()) + "." +
       std::to_string(manifest_seq.fetch_add(1)));
  const fs::path dst = fs::path(dir) / "manifest.txt";
  FILE* f = std::fopen(tmp.string().c_str(), "wb");
  DTFE_CHECK_MSG(f != nullptr, "cannot write checkpoint manifest in " + dir);
  std::fwrite(fingerprint.data(), 1, fingerprint.size(), f);
  std::fflush(f);
  fsync(fileno(f));
  std::fclose(f);
  fs::rename(tmp, dst, ec);
  DTFE_CHECK_MSG(!ec, "cannot publish checkpoint manifest in " + dir);
}

std::string read_checkpoint_manifest(const std::string& dir) {
  const fs::path p = fs::path(dir) / "manifest.txt";
  FILE* f = std::fopen(p.string().c_str(), "rb");
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

}  // namespace dtfe
