#include "dtfe/marching_kernel.h"

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <cmath>

#include "geometry/ray_tetra.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/timer.h"

namespace dtfe {

namespace {

struct MarchMetrics {
  obs::MetricId rays = obs::counter("dtfe.kernel.rays_integrated");
  obs::MetricId crossings = obs::counter("dtfe.kernel.tetra_crossings");
  obs::MetricId restarts = obs::counter("dtfe.kernel.perturb_restarts");
  obs::MetricId failed = obs::counter("dtfe.kernel.failed_cells");
  obs::MetricId empty = obs::counter("dtfe.kernel.empty_cells");
  obs::MetricId batch_lanes = obs::counter("dtfe.kernel.simd_batch_lanes");
  obs::MetricId crossings_per_ray = obs::histogram(
      "dtfe.kernel.crossings_per_ray",
      {0, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096});
};

const MarchMetrics& march_metrics() {
  static const MarchMetrics m;
  return m;
}
std::uint64_t next_rand(std::uint64_t& s) {
  // xorshift64 has a fixed point at 0: an all-zero state would never leave
  // it and every perturbation below would degenerate to the same direction.
  if (s == 0) s = 0x9e3779b97f4a7c15ull;
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}
double rand_unit(std::uint64_t& s) {
  return static_cast<double>(next_rand(s) >> 11) * 0x1.0p-53;
}
/// Van der Corput radical inverse of i in the given base (Halton component).
double radical_inverse(std::uint32_t i, std::uint32_t base) {
  double f = 1.0, r = 0.0;
  while (i) {
    f /= static_cast<double>(base);
    r += f * static_cast<double>(i % base);
    i /= base;
  }
  return r;
}
/// Per-ray RNG state: splitmix of (stream seed, ray index). Independent of
/// which thread draws the ray, so renders are bitwise reproducible under any
/// OpenMP schedule — the property checkpoint resume relies on.
std::uint64_t ray_seed(std::uint64_t seed, std::uint64_t ray_index) {
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ull * (ray_index + 1));
  const std::uint64_t v = detail::splitmix64(state);
  return v ? v : 0x9e3779b97f4a7c15ull;
}
}  // namespace

MarchingKernel::MarchingKernel(const DensityField& density,
                               const HullProjection& hull, MarchingOptions opt,
                               std::shared_ptr<const TetraGeomTable> geom)
    : density_(&density), hull_(&hull), opt_(opt) {
  DTFE_CHECK(opt_.monte_carlo_samples >= 1);
  DTFE_CHECK(opt_.max_perturb_retries >= 1);
  // The coefficient tables back the vertical (Plücker-specialized) fast
  // path only; the Möller/general-Plücker ablation oracles march the AoS
  // geometry directly and need no tables.
  if (!opt_.use_moller_trumbore && !opt_.use_general_plucker) {
    geom_ = geom != nullptr ? std::move(geom)
                            : std::make_shared<const TetraGeomTable>(
                                  density.triangulation());
    field_ = std::make_shared<const FieldCoefTable>(density);
    simd_on_ = simd_enabled(opt_.use_simd);
  }
}

MarchingKernel::MarchingKernel(const MarchingKernel& base,
                               const MarchingOptions& opt)
    : density_(base.density_),
      hull_(base.hull_),
      opt_(opt),
      geom_(base.geom_),
      field_(base.field_),
      simd_on_(base.simd_on_) {}

void MarchingKernel::edge_products(const VerticalTetraCoef& t, const Vec2& xi,
                                   double s[6]) const {
  // Both routes evaluate (c + bx·x) + by·y per edge in identical order, so
  // the choice is invisible in the results — only in the throughput.
  if (simd_on_) coef_edge_products_simd(t, xi, s);
  else coef_edge_products(t, xi, s);
}

void MarchingKernel::add_interval(CellId c, const Vec2& xi, double a, double b,
                                  double zmin, double zmax, double dz,
                                  double& sigma) const {
  a = std::max(a, zmin);
  b = std::min(b, zmax);
  if (b <= a) return;
  const int nz = opt_.z_samples;
  if (nz <= 0) {
    // Exact per-tetra integral at the interval midpoint (Eq. 12).
    sigma += field_->value(c, xi.x, xi.y, 0.5 * (a + b)) * (b - a);
    return;
  }
  // Fixed z-planes within [a, b): the interpolant restricted to the column
  // is base + g_z·z, one multiply-add per sample.
  const double base = field_->column_base(c, xi.x, xi.y);
  const double gz = field_->gz(c);
  auto k = static_cast<std::ptrdiff_t>(std::ceil((a - zmin) / dz - 0.5));
  if (k < 0) k = 0;
  for (; k < nz; ++k) {
    const double z = zmin + (static_cast<double>(k) + 0.5) * dz;
    if (z >= b) break;
    sigma += (base + gz * z) * dz;
  }
}

MarchingKernel::Attempt MarchingKernel::march_once_fast(const Vec2& xi,
                                                        double zmin,
                                                        double zmax) const {
  const Triangulation& tri = density_->triangulation();
  const TetraGeomTable& geom = *geom_;
  Attempt out;

  const auto entry = hull_->first_entry(xi);
  CellId c = entry.cell;
  if (c == Triangulation::kNoCell) {
    out.empty = true;
    return out;
  }

  const int nz = opt_.z_samples;
  const double dz = nz > 0 ? (zmax - zmin) / nz : 0.0;
  // A vertical line through a convex hull crosses O(N^{1/3}) cells on
  // average; the cap is a defensive bound against adjacency cycles.
  const std::uint64_t max_steps = 16 * tri.num_cells() + 64;

  // Hot loop: each tetra costs six coefficient-table edge products plus one
  // face classification. The first cell's span test already classifies both
  // faces, so its exit needs no second pass.
  double s[6];
  edge_products(geom.coef(c), xi, s);
  const VerticalSpan first = coef_vertical_span(geom.coef(c), s);
  if (!first.intersects || first.degenerate) {
    out.degenerate = true;
    out.degen_cell = c;
    return out;
  }
  double z_prev = first.z_enter;
  int entry_face = first.enter_face;
  VerticalExit ve;
  ve.found = true;
  ve.exit_face = first.exit_face;
  ve.z_exit = first.z_exit;
  bool have_exit = true;
  for (;;) {
    if (++out.steps > max_steps) {
      out.degenerate = true;
      out.degen_cell = c;
      return out;
    }
    if (!have_exit) {
      edge_products(geom.coef(c), xi, s);
      ve = coef_vertical_exit(geom.coef(c), s, entry_face);
      if (!ve.found || ve.degenerate) {
        out.degenerate = true;
        out.degen_cell = c;
        return out;
      }
    }
    have_exit = false;
    add_interval(c, xi, z_prev, ve.z_exit, zmin, zmax, dz, out.sigma);
    if (ve.z_exit >= zmax) break;
    const CellId next = geom.next(c, ve.exit_face);
    if (next == Triangulation::kNoCell) break;
    entry_face = geom.mirror(c, ve.exit_face);
    z_prev = ve.z_exit;
    c = next;
  }
  return out;
}

MarchingKernel::Attempt MarchingKernel::march_once_slow(const Vec2& xi,
                                                        double zmin,
                                                        double zmax) const {
  const Triangulation& tri = density_->triangulation();
  Attempt out;

  const auto entry = hull_->first_entry(xi);
  const CellId start = entry.cell;
  if (start == Triangulation::kNoCell) {
    out.empty = true;
    return out;
  }

  const Vec3 origin{xi.x, xi.y, 0.0};
  const Vec3 dir{0.0, 0.0, 1.0};
  const int nz = opt_.z_samples;
  const double dz = nz > 0 ? (zmax - zmin) / nz : 0.0;
  const std::uint64_t max_steps = 16 * tri.num_cells() + 64;

  // Oracle semantics: direct AoS geometry and the (p − x0) interpolant form
  // — kept byte-for-byte as the pre-table reference the audits compare to.
  auto accumulate = [&](CellId c, double a, double b) {
    a = std::max(a, zmin);
    b = std::min(b, zmax);
    if (b <= a) return;
    if (nz <= 0) {
      const Vec3 mid{xi.x, xi.y, 0.5 * (a + b)};
      out.sigma += density_->interpolate_in_cell(c, mid) * (b - a);
      return;
    }
    const auto& t = tri.cell(c);
    const Vec3& x0 = tri.point(t.v[0]);
    const Vec3& g = density_->cell_gradient(c);
    const double base = density_->vertex_density(t.v[0]) +
                        g.x * (xi.x - x0.x) + g.y * (xi.y - x0.y) -
                        g.z * x0.z;
    auto k = static_cast<std::ptrdiff_t>(std::ceil((a - zmin) / dz - 0.5));
    if (k < 0) k = 0;
    for (; k < nz; ++k) {
      const double z = zmin + (static_cast<double>(k) + 0.5) * dz;
      if (z >= b) break;
      out.sigma += (base + g.z * z) * dz;
    }
  };

  const PluckerLine line = PluckerLine::from_point_dir(origin, dir);
  CellId c = start;
  while (c != Triangulation::kNoCell && !tri.is_infinite(c)) {
    const auto pts = tri.cell_points(c);
    const LineTetraHit hit = opt_.use_moller_trumbore
                                 ? line_tetra_moller(origin, dir, pts)
                                 : line_tetra_plucker(line, origin, dir, pts);
    if (hit.degenerate || !hit.intersects || ++out.steps > max_steps) {
      out.degenerate = true;
      out.degen_cell = c;
      return out;
    }
    accumulate(c, hit.t_enter, hit.t_exit);
    if (hit.t_enter > zmax) break;
    c = tri.cell(c).n[hit.exit_face];
  }
  return out;
}

MarchingKernel::LineResult MarchingKernel::finish_line(
    Vec2 xi, double zmin, double zmax, std::uint64_t& rng,
    const Attempt& first) const {
  const Triangulation& tri = density_->triangulation();
  const bool fast = geom_ != nullptr;

  // The perturbation scale is relative to the silhouette extent when no grid
  // context is available; render() passes grid-cell-relative epsilons by
  // pre-scaling opt_.perturb_epsilon.
  const double eps =
      opt_.perturb_epsilon *
      std::max(hull_->hi().x - hull_->lo().x, hull_->hi().y - hull_->lo().y);

  LineResult out;
  Attempt a = first;
  for (int attempt = 0;; ++attempt) {
    if (attempt > 0) {
      // A perturbation storm is the classic runaway; bail out of the retry
      // loop early once the item deadline fires (render() reports the
      // cancellation, this ray just stops burning time).
      if (opt_.deadline && opt_.deadline->expired()) {
        out.failed = true;
        return out;
      }
      a = fast ? march_once_fast(xi, zmin, zmax)
               : march_once_slow(xi, zmin, zmax);
    }
    if (a.empty) {
      out.empty = true;
      return out;
    }
    if (!a.degenerate) {
      out.sigma = a.sigma;
      out.steps += a.steps;
      return out;
    }

    // Paper Fig. 2: perturb ℓ toward a random vertex of the offending
    // tetrahedron by ε and restart the march.
    {
      const auto& t = tri.cell(a.degen_cell);
      Vec2 delta{0.0, 0.0};
      for (int tries = 0; tries < 4 && delta.norm() < 1e-300; ++tries) {
        const int s = static_cast<int>(next_rand(rng) & 3);
        if (t.v[static_cast<std::size_t>(s)] == Triangulation::kInfinite)
          continue;
        const Vec3& v = tri.point(t.v[static_cast<std::size_t>(s)]);
        delta = Vec2{v.x, v.y} - xi;
      }
      if (delta.norm() < 1e-300)
        delta = {rand_unit(rng) - 0.5, rand_unit(rng) - 0.5};
      const double n = delta.norm();
      if (n > eps) delta = delta * (eps / n);
      xi = xi + delta;
    }
    out.steps += a.steps;
    ++out.restarts;
    if (attempt + 1 >= opt_.max_perturb_retries) {
      out.sigma = 0.0;  // the perturbed retries never finished cleanly
      out.failed = true;
      return out;
    }
  }
}

MarchingKernel::LineResult MarchingKernel::march_line(
    Vec2 xi, double zmin, double zmax, std::uint64_t& rng) const {
  const Attempt a = geom_ != nullptr ? march_once_fast(xi, zmin, zmax)
                                     : march_once_slow(xi, zmin, zmax);
  return finish_line(xi, zmin, zmax, rng, a);
}

void MarchingKernel::march_tile(const Vec2* xi, int n, double zmin,
                                double zmax, std::uint64_t* rng,
                                LineResult* out,
                                std::uint64_t& batch_lanes) const {
  const Triangulation& tri = density_->triangulation();
  const TetraGeomTable& geom = *geom_;
  const int nz = opt_.z_samples;
  const double dz = nz > 0 ? (zmax - zmin) / nz : 0.0;
  const std::uint64_t max_steps = 16 * tri.num_cells() + 64;

  // Per-lane walk state, mirroring march_once_fast exactly: same product
  // formula, same classification, same accumulation — a lane's Attempt is
  // bitwise what the scalar path would have produced for its ξ.
  Attempt att[simd::kLanes];
  CellId cell[simd::kLanes] = {};
  int eface[simd::kLanes] = {};
  double zprev[simd::kLanes] = {};
  VerticalExit pending[simd::kLanes];
  bool have_exit[simd::kLanes] = {};
  bool walking[simd::kLanes] = {};

  int nwalk = 0;
  for (int l = 0; l < n; ++l) {
    const auto entry = hull_->first_entry(xi[l]);
    const CellId c = entry.cell;
    if (c == Triangulation::kNoCell) {
      att[l].empty = true;
      continue;
    }
    double s[6];
    edge_products(geom.coef(c), xi[l], s);
    const VerticalSpan first = coef_vertical_span(geom.coef(c), s);
    if (!first.intersects || first.degenerate) {
      att[l].degenerate = true;
      att[l].degen_cell = c;
      continue;
    }
    cell[l] = c;
    eface[l] = first.enter_face;
    zprev[l] = first.z_enter;
    pending[l].found = true;
    pending[l].degenerate = false;
    pending[l].exit_face = first.exit_face;
    pending[l].z_exit = first.z_exit;
    have_exit[l] = true;
    walking[l] = true;
    ++nwalk;
  }

  // Lockstep walk: every round advances each active lane one tetra. Lanes
  // whose walk fronts meet in the same cell evaluate their six edge
  // products through one ray-parallel SIMD pass against that tetra's
  // broadcast coefficients; the per-lane products are bitwise identical to
  // the scalar evaluation, so the grouping is purely a throughput
  // heuristic, never a results decision.
  double s[simd::kLanes][6];
  while (nwalk > 0) {
    bool have_s[simd::kLanes] = {};
    for (int l = 0; l < n; ++l) {
      if (!walking[l] || have_exit[l] || have_s[l]) continue;
      int group[simd::kLanes];
      int g = 0;
      for (int m = l; m < n; ++m)
        if (walking[m] && !have_exit[m] && !have_s[m] && cell[m] == cell[l])
          group[g++] = m;
      if (g >= 2) {
        double xs[simd::kLanes], ys[simd::kLanes];
        double prod[6][simd::kLanes];
        for (int k = 0; k < simd::kLanes; ++k) {
          const int src = k < g ? group[k] : group[0];  // pad spare lanes
          xs[k] = xi[src].x;
          ys[k] = xi[src].y;
        }
        coef_edge_products_batch(geom.coef(cell[l]), xs, ys, prod);
        for (int k = 0; k < g; ++k) {
          for (int e = 0; e < 6; ++e) s[group[k]][e] = prod[e][k];
          have_s[group[k]] = true;
        }
        batch_lanes += static_cast<std::uint64_t>(g);
      } else {
        edge_products(geom.coef(cell[l]), xi[l], s[l]);
        have_s[l] = true;
      }
    }
    for (int l = 0; l < n; ++l) {
      if (!walking[l]) continue;
      Attempt& a = att[l];
      const CellId c = cell[l];
      if (++a.steps > max_steps) {
        a.degenerate = true;
        a.degen_cell = c;
        walking[l] = false;
        --nwalk;
        continue;
      }
      VerticalExit ve;
      if (have_exit[l]) {
        ve = pending[l];
        have_exit[l] = false;
      } else {
        ve = coef_vertical_exit(geom.coef(c), s[l], eface[l]);
        if (!ve.found || ve.degenerate) {
          a.degenerate = true;
          a.degen_cell = c;
          walking[l] = false;
          --nwalk;
          continue;
        }
      }
      add_interval(c, xi[l], zprev[l], ve.z_exit, zmin, zmax, dz, a.sigma);
      if (ve.z_exit >= zmax) {
        walking[l] = false;
        --nwalk;
        continue;
      }
      const CellId next = geom.next(c, ve.exit_face);
      if (next == Triangulation::kNoCell) {
        walking[l] = false;
        --nwalk;
        continue;
      }
      eface[l] = geom.mirror(c, ve.exit_face);
      zprev[l] = ve.z_exit;
      cell[l] = next;
    }
  }

  // Clean lanes finish immediately; degenerate lanes carry their partial
  // step counts into the shared scalar perturb-retry loop (only attempt 0
  // is batched — retries are rare and ξ-divergent by design).
  for (int l = 0; l < n; ++l)
    out[l] = finish_line(xi[l], zmin, zmax, rng[l], att[l]);
}

double MarchingKernel::refine_cell(const Vec2& center, double size,
                                   double zmin, double zmax, int depth,
                                   double weight, std::uint64_t& rng,
                                   MarchingStats* accum) const {
  // Sample the four quadrant centers; if they agree (relative spread below
  // tolerance) or the depth budget is spent, their mean is the cell value;
  // otherwise refine each quadrant.
  const double q = size * 0.25;
  const Vec2 sub[4] = {{center.x - q, center.y - q},
                       {center.x + q, center.y - q},
                       {center.x - q, center.y + q},
                       {center.x + q, center.y + q}};
  double vals[4];
  double lo = 1e300, hi = -1e300, mean = 0.0;
  for (int i = 0; i < 4; ++i) {
    const LineResult r = march_line(sub[i], zmin, zmax, rng);
    vals[i] = r.sigma;
    if (obs::metrics_enabled())
      obs::observe(march_metrics().crossings_per_ray,
                   static_cast<double>(r.steps));
    if (accum) {
      accum->rays_marched += 1;
      accum->tetra_crossed += r.steps;
      accum->perturb_restarts += static_cast<std::uint64_t>(r.restarts);
      accum->failed_cells += r.failed ? 1 : 0;
    }
    lo = std::min(lo, r.sigma);
    hi = std::max(hi, r.sigma);
    mean += 0.25 * r.sigma;
  }
  if (depth >= opt_.adaptive_max_depth ||
      hi - lo <= opt_.adaptive_tolerance * (std::abs(mean) + 1e-300)) {
    // Terminal node: these four samples are what actually enters the grid,
    // so only they contribute to the ray_mass audit accumulator.
    if (accum)
      for (int i = 0; i < 4; ++i) accum->ray_mass += 0.25 * weight * vals[i];
    return mean;
  }
  double refined = 0.0;
  for (int i = 0; i < 4; ++i)
    refined += 0.25 * refine_cell(sub[i], size * 0.5, zmin, zmax, depth + 1,
                                  0.25 * weight, rng, accum);
  return refined;
}

double MarchingKernel::integrate_line(const Vec2& xi, double zmin,
                                      double zmax) const {
  std::uint64_t rng = ray_seed(opt_.seed, 0);
  return march_line(xi, zmin, zmax, rng).sigma;
}

Grid2D MarchingKernel::render(const FieldSpec& spec) const {
  const std::size_t nx = spec.nx(), ny = spec.ny();
  Grid2D grid(nx, ny);
  const double h = spec.cell_size();

  obs::TraceSpan span("kernel.march_render", "kernel");
  span.add_arg("cells", static_cast<double>(nx * ny));

  MarchingStats stats;
  stats.thread_seconds.assign(
      static_cast<std::size_t>(omp_get_max_threads()), 0.0);
  std::uint64_t tot_rays = 0, tot_steps = 0, tot_restarts = 0, tot_failed = 0,
                tot_empty = 0, tot_batch = 0;
  double tot_mass = 0.0;
  std::atomic<bool> cancelled{false};

  // ε is specified relative to the grid cell; march_line rescales by the
  // silhouette extent, so compose the two factors here. The worker clone
  // shares this kernel's coefficient tables — only its ε differs.
  MarchingOptions local = opt_;
  const double extent =
      std::max(hull_->hi().x - hull_->lo().x, hull_->hi().y - hull_->lo().y);
  local.perturb_epsilon = opt_.perturb_epsilon * (extent > 0.0 ? h / extent : 1.0);
  const MarchingKernel worker(*this, local);

  // ξ for Monte Carlo sample `smp` of cell (ix, iy): low-discrepancy jitter
  // (Halton (2,3) under a per-cell Cranley–Patterson rotation). Unbiased
  // like plain uniform jitter, but stratified — on halo-clustered inputs
  // (where a cell's column integral varies by orders of magnitude) the
  // mass-recovery error of 8 samples/cell drops severalfold versus
  // independent draws. Shared by the per-pixel and tiled loops so the two
  // schedules sample identical positions.
  auto sample_xi = [&](std::size_t ix, std::size_t iy, int smp, double rot_x,
                       double rot_y) {
    Vec2 xi = spec.cell_center(ix, iy);
    if (opt_.monte_carlo_samples > 1) {
      double jx = radical_inverse(static_cast<std::uint32_t>(smp), 2) + rot_x;
      double jy = radical_inverse(static_cast<std::uint32_t>(smp), 3) + rot_y;
      jx -= std::floor(jx);
      jy -= std::floor(jy);
      xi.x += (jx - 0.5) * h;
      xi.y += (jy - 0.5) * h;
    }
    return xi;
  };

  // The tiled schedule batches 4 consecutive pixels through march_tile; it
  // requires the table fast path and carries no adaptive refinement. Grid
  // values are bitwise identical to the per-pixel schedule (per-lane rng
  // streams are pure functions of the pixel index), so the choice is
  // invisible outside throughput and the simd_batch_lanes counter.
  const bool tiled =
      simd_on_ && geom_ != nullptr && opt_.adaptive_max_depth == 0;

#pragma omp parallel reduction(+ : tot_rays, tot_steps, tot_restarts, tot_failed, tot_empty, tot_batch, tot_mass)
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    ThreadCpuTimer timer;

    if (!tiled) {
#pragma omp for schedule(dynamic, 8)
      for (std::ptrdiff_t idx = 0;
           idx < static_cast<std::ptrdiff_t>(nx * ny); ++idx) {
        // Cooperative watchdog: poll the soft deadline every few rays; once
        // it fires, skip the rest of the grid and report the cancellation
        // after the parallel region (throwing out of an omp loop is UB).
        if (opt_.deadline &&
            (cancelled.load(std::memory_order_relaxed) ||
             ((idx & 15) == 0 && opt_.deadline->expired()))) {
          cancelled.store(true, std::memory_order_relaxed);
          continue;
        }
        const auto ix = static_cast<std::size_t>(idx) % nx;
        const auto iy = static_cast<std::size_t>(idx) / nx;
        // Per-ray RNG: a pure function of (stream seed, cell index) so the
        // rendered grid does not depend on the OpenMP schedule.
        std::uint64_t rng =
            ray_seed(opt_.seed, static_cast<std::uint64_t>(idx));
        if (opt_.adaptive_max_depth > 0) {
          // Dynamic grid spacing: quadtree-refine cells whose corner lines
          // disagree.
          MarchingStats cell_stats;
          grid.at(ix, iy) = worker.refine_cell(spec.cell_center(ix, iy), h,
                                               spec.zmin, spec.zmax, 0, 1.0,
                                               rng, &cell_stats);
          tot_rays += cell_stats.rays_marched;
          tot_steps += cell_stats.tetra_crossed;
          tot_restarts += cell_stats.perturb_restarts;
          tot_failed += cell_stats.failed_cells;
          tot_mass += cell_stats.ray_mass;
          continue;
        }
        double sigma = 0.0;
        const double rot_x = rand_unit(rng);
        const double rot_y = rand_unit(rng);
        for (int smp = 0; smp < opt_.monte_carlo_samples; ++smp) {
          const Vec2 xi = sample_xi(ix, iy, smp, rot_x, rot_y);
          const LineResult r = worker.march_line(xi, spec.zmin, spec.zmax, rng);
          if (obs::metrics_enabled())
            obs::observe(march_metrics().crossings_per_ray,
                         static_cast<double>(r.steps));
          sigma += r.sigma;
          tot_rays += 1;
          tot_steps += r.steps;
          tot_restarts += static_cast<std::uint64_t>(r.restarts);
          tot_failed += r.failed ? 1 : 0;
          tot_empty += r.empty ? 1 : 0;
        }
        grid.at(ix, iy) = sigma / opt_.monte_carlo_samples;
        tot_mass += sigma / opt_.monte_carlo_samples;
      }
    } else {
      const auto total = static_cast<std::ptrdiff_t>(nx * ny);
      const std::ptrdiff_t lanes = simd::kLanes;
      const std::ptrdiff_t ntiles = (total + lanes - 1) / lanes;
#pragma omp for schedule(dynamic, 2)
      for (std::ptrdiff_t tile = 0; tile < ntiles; ++tile) {
        // Same watchdog cadence as the per-pixel loop: ~every 16 rays.
        if (opt_.deadline &&
            (cancelled.load(std::memory_order_relaxed) ||
             ((tile & 3) == 0 && opt_.deadline->expired()))) {
          cancelled.store(true, std::memory_order_relaxed);
          continue;
        }
        const std::ptrdiff_t idx0 = tile * lanes;
        const int nl =
            static_cast<int>(std::min<std::ptrdiff_t>(lanes, total - idx0));
        std::uint64_t rng[simd::kLanes];
        double rot_x[simd::kLanes], rot_y[simd::kLanes];
        double sigma[simd::kLanes] = {};
        for (int l = 0; l < nl; ++l) {
          rng[l] = ray_seed(opt_.seed, static_cast<std::uint64_t>(idx0 + l));
          rot_x[l] = rand_unit(rng[l]);
          rot_y[l] = rand_unit(rng[l]);
        }
        for (int smp = 0; smp < opt_.monte_carlo_samples; ++smp) {
          Vec2 xis[simd::kLanes];
          for (int l = 0; l < nl; ++l) {
            const auto idx = static_cast<std::size_t>(idx0 + l);
            xis[l] = sample_xi(idx % nx, idx / nx, smp, rot_x[l], rot_y[l]);
          }
          LineResult r[simd::kLanes];
          worker.march_tile(xis, nl, spec.zmin, spec.zmax, rng, r, tot_batch);
          for (int l = 0; l < nl; ++l) {
            if (obs::metrics_enabled())
              obs::observe(march_metrics().crossings_per_ray,
                           static_cast<double>(r[l].steps));
            sigma[l] += r[l].sigma;
            tot_rays += 1;
            tot_steps += r[l].steps;
            tot_restarts += static_cast<std::uint64_t>(r[l].restarts);
            tot_failed += r[l].failed ? 1 : 0;
            tot_empty += r[l].empty ? 1 : 0;
          }
        }
        for (int l = 0; l < nl; ++l) {
          const auto idx = static_cast<std::size_t>(idx0 + l);
          grid.at(idx % nx, idx / nx) = sigma[l] / opt_.monte_carlo_samples;
          tot_mass += sigma[l] / opt_.monte_carlo_samples;
        }
      }
    }
    stats.thread_seconds[tid] = timer.seconds();
  }

  stats.cells_rendered = nx * ny;
  stats.rays_marched = tot_rays;
  stats.tetra_crossed = tot_steps;
  stats.perturb_restarts = tot_restarts;
  stats.failed_cells = tot_failed;
  stats.empty_cells = tot_empty;
  stats.simd_batch_lanes = tot_batch;
  stats.ray_mass = tot_mass;
  stats_ = stats;

  if (cancelled.load(std::memory_order_relaxed))
    throw Error("marching render cancelled: item deadline exceeded");

  if (obs::metrics_enabled()) {
    const MarchMetrics& m = march_metrics();
    obs::add(m.rays, static_cast<double>(tot_rays));
    obs::add(m.crossings, static_cast<double>(tot_steps));
    obs::add(m.restarts, static_cast<double>(tot_restarts));
    obs::add(m.failed, static_cast<double>(tot_failed));
    obs::add(m.empty, static_cast<double>(tot_empty));
    obs::add(m.batch_lanes, static_cast<double>(tot_batch));
  }
  span.add_arg("rays", static_cast<double>(tot_rays));
  span.add_arg("tetra_crossings", static_cast<double>(tot_steps));
  return grid;
}

}  // namespace dtfe
