#include "dtfe/marching_kernel.h"

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <cmath>

#include "geometry/ray_tetra.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/timer.h"

namespace dtfe {

namespace {

struct MarchMetrics {
  obs::MetricId rays = obs::counter("dtfe.kernel.rays_integrated");
  obs::MetricId crossings = obs::counter("dtfe.kernel.tetra_crossings");
  obs::MetricId restarts = obs::counter("dtfe.kernel.perturb_restarts");
  obs::MetricId failed = obs::counter("dtfe.kernel.failed_cells");
  obs::MetricId empty = obs::counter("dtfe.kernel.empty_cells");
  obs::MetricId crossings_per_ray = obs::histogram(
      "dtfe.kernel.crossings_per_ray",
      {0, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096});
};

const MarchMetrics& march_metrics() {
  static const MarchMetrics m;
  return m;
}
std::uint64_t next_rand(std::uint64_t& s) {
  // xorshift64 has a fixed point at 0: an all-zero state would never leave
  // it and every perturbation below would degenerate to the same direction.
  if (s == 0) s = 0x9e3779b97f4a7c15ull;
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}
double rand_unit(std::uint64_t& s) {
  return static_cast<double>(next_rand(s) >> 11) * 0x1.0p-53;
}
/// Van der Corput radical inverse of i in the given base (Halton component).
double radical_inverse(std::uint32_t i, std::uint32_t base) {
  double f = 1.0, r = 0.0;
  while (i) {
    f /= static_cast<double>(base);
    r += f * static_cast<double>(i % base);
    i /= base;
  }
  return r;
}
/// Per-ray RNG state: splitmix of (stream seed, ray index). Independent of
/// which thread draws the ray, so renders are bitwise reproducible under any
/// OpenMP schedule — the property checkpoint resume relies on.
std::uint64_t ray_seed(std::uint64_t seed, std::uint64_t ray_index) {
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ull * (ray_index + 1));
  const std::uint64_t v = detail::splitmix64(state);
  return v ? v : 0x9e3779b97f4a7c15ull;
}
}  // namespace

MarchingKernel::MarchingKernel(const DensityField& density,
                               const HullProjection& hull, MarchingOptions opt)
    : density_(&density), hull_(&hull), opt_(opt) {
  DTFE_CHECK(opt_.monte_carlo_samples >= 1);
  DTFE_CHECK(opt_.max_perturb_retries >= 1);
}

MarchingKernel::LineResult MarchingKernel::march_line(
    Vec2 xi, double zmin, double zmax, std::uint64_t& rng) const {
  const Triangulation& tri = density_->triangulation();
  LineResult out;

  // The perturbation scale is relative to the silhouette extent when no grid
  // context is available; render() passes grid-cell-relative epsilons by
  // pre-scaling opt_.perturb_epsilon.
  const double eps =
      opt_.perturb_epsilon *
      std::max(hull_->hi().x - hull_->lo().x, hull_->hi().y - hull_->lo().y);

  // Fixed-plane sampling mode (Eq. 4 semantics; see MarchingOptions).
  const int nz = opt_.z_samples;
  const double dz = nz > 0 ? (zmax - zmin) / nz : 0.0;

  // Accumulate one tetra's contribution over the clamped interval [a, b).
  auto accumulate = [&](CellId c, double a, double b, double& sigma) {
    a = std::max(a, zmin);
    b = std::min(b, zmax);
    if (b <= a) return;
    if (nz <= 0) {
      // Exact per-tetra integral at the interval midpoint (Eq. 12).
      const Vec3 mid{xi.x, xi.y, 0.5 * (a + b)};
      sigma += density_->interpolate_in_cell(c, mid) * (b - a);
      return;
    }
    // Fixed z-planes within [a, b): the interpolant restricted to the
    // column is base + g_z·z, one multiply-add per sample.
    const Triangulation& tri = density_->triangulation();
    const auto& t = tri.cell(c);
    const Vec3& x0 = tri.point(t.v[0]);
    const Vec3& g = density_->cell_gradient(c);
    const double base = density_->vertex_density(t.v[0]) +
                        g.x * (xi.x - x0.x) + g.y * (xi.y - x0.y) -
                        g.z * x0.z;
    auto k = static_cast<std::ptrdiff_t>(std::ceil((a - zmin) / dz - 0.5));
    if (k < 0) k = 0;
    for (; k < nz; ++k) {
      const double z = zmin + (static_cast<double>(k) + 0.5) * dz;
      if (z >= b) break;
      sigma += (base + g.z * z) * dz;
    }
  };

  const bool fast_path = !opt_.use_moller_trumbore && !opt_.use_general_plucker;

  for (int attempt = 0;; ++attempt) {
    // A perturbation storm is the classic runaway; bail out of the retry
    // loop early once the item deadline fires (render() reports the
    // cancellation, this ray just stops burning time).
    if (attempt > 0 && opt_.deadline && opt_.deadline->expired()) {
      out.failed = true;
      return out;
    }
    const auto entry = hull_->first_entry(xi);
    const CellId start = entry.cell;
    if (start == Triangulation::kNoCell) {
      out.empty = true;
      return out;
    }

    const Vec3 origin{xi.x, xi.y, 0.0};
    const Vec3 dir{0.0, 0.0, 1.0};

    double sigma = 0.0;
    std::uint64_t steps = 0;
    bool degenerate = false;
    CellId degen_cell = start;
    // A vertical line through a convex hull crosses O(N^{1/3}) cells on
    // average; the cap is a defensive bound against adjacency cycles.
    const std::uint64_t max_steps = 16 * tri.num_cells() + 64;

    if (fast_path) {
      // Hot loop: entry faces are known from the previous exit, so each
      // tetra costs 6 two-dimensional edge products + one face exit.
      CellId c = start;
      const LineTetraHit first = line_tetra_vertical(xi, tri.cell_points(c));
      if (!first.intersects || first.degenerate) {
        degenerate = true;
        degen_cell = c;
      } else {
        double z_prev = first.t_enter;
        int entry_face = first.enter_face;
        for (;;) {
          if (++steps > max_steps) {
            degenerate = true;
            degen_cell = c;
            break;
          }
          const VerticalExit ve =
              line_tetra_vertical_exit(xi, tri.cell_points(c), entry_face);
          if (!ve.found || ve.degenerate) {
            degenerate = true;
            degen_cell = c;
            break;
          }
          accumulate(c, z_prev, ve.z_exit, sigma);
          if (ve.z_exit >= zmax) break;
          const CellId next = tri.cell(c).n[ve.exit_face];
          if (tri.is_infinite(next)) break;
          entry_face = tri.mirror_index(c, ve.exit_face);
          z_prev = ve.z_exit;
          c = next;
        }
      }
      if (!degenerate) {
        out.sigma = sigma;
        out.steps += steps;
        return out;
      }
    } else {
      const PluckerLine line = PluckerLine::from_point_dir(origin, dir);
      CellId c = start;
      while (c != Triangulation::kNoCell && !tri.is_infinite(c)) {
        const auto pts = tri.cell_points(c);
        const LineTetraHit hit = opt_.use_moller_trumbore
                                     ? line_tetra_moller(origin, dir, pts)
                                     : line_tetra_plucker(line, origin, dir, pts);
        if (hit.degenerate || !hit.intersects || ++steps > max_steps) {
          degenerate = true;
          degen_cell = c;
          break;
        }
        accumulate(c, hit.t_enter, hit.t_exit, sigma);
        if (hit.t_enter > zmax) break;
        c = tri.cell(c).n[hit.exit_face];
      }
      if (!degenerate) {
        out.sigma = sigma;
        out.steps += steps;
        return out;
      }
    }

    // Paper Fig. 2: perturb ℓ toward a random vertex of the offending
    // tetrahedron by ε and restart the march.
    {
      const auto& t = tri.cell(degen_cell);
      Vec2 delta{0.0, 0.0};
      for (int tries = 0; tries < 4 && delta.norm() < 1e-300; ++tries) {
        const int s = static_cast<int>(next_rand(rng) & 3);
        if (t.v[s] == Triangulation::kInfinite) continue;
        const Vec3& v = tri.point(t.v[s]);
        delta = Vec2{v.x, v.y} - xi;
      }
      if (delta.norm() < 1e-300)
        delta = {rand_unit(rng) - 0.5, rand_unit(rng) - 0.5};
      const double n = delta.norm();
      if (n > eps) delta = delta * (eps / n);
      xi = xi + delta;
    }
    out.steps += steps;
    ++out.restarts;
    if (attempt + 1 >= opt_.max_perturb_retries) {
      out.sigma = 0.0;  // the perturbed retries never finished cleanly
      out.failed = true;
      return out;
    }
  }
}

double MarchingKernel::refine_cell(const Vec2& center, double size,
                                   double zmin, double zmax, int depth,
                                   double weight, std::uint64_t& rng,
                                   MarchingStats* accum) const {
  // Sample the four quadrant centers; if they agree (relative spread below
  // tolerance) or the depth budget is spent, their mean is the cell value;
  // otherwise refine each quadrant.
  const double q = size * 0.25;
  const Vec2 sub[4] = {{center.x - q, center.y - q},
                       {center.x + q, center.y - q},
                       {center.x - q, center.y + q},
                       {center.x + q, center.y + q}};
  double vals[4];
  double lo = 1e300, hi = -1e300, mean = 0.0;
  for (int i = 0; i < 4; ++i) {
    const LineResult r = march_line(sub[i], zmin, zmax, rng);
    vals[i] = r.sigma;
    if (obs::metrics_enabled())
      obs::observe(march_metrics().crossings_per_ray,
                   static_cast<double>(r.steps));
    if (accum) {
      accum->rays_marched += 1;
      accum->tetra_crossed += r.steps;
      accum->perturb_restarts += static_cast<std::uint64_t>(r.restarts);
      accum->failed_cells += r.failed ? 1 : 0;
    }
    lo = std::min(lo, r.sigma);
    hi = std::max(hi, r.sigma);
    mean += 0.25 * r.sigma;
  }
  if (depth >= opt_.adaptive_max_depth ||
      hi - lo <= opt_.adaptive_tolerance * (std::abs(mean) + 1e-300)) {
    // Terminal node: these four samples are what actually enters the grid,
    // so only they contribute to the ray_mass audit accumulator.
    if (accum)
      for (int i = 0; i < 4; ++i) accum->ray_mass += 0.25 * weight * vals[i];
    return mean;
  }
  double refined = 0.0;
  for (int i = 0; i < 4; ++i)
    refined += 0.25 * refine_cell(sub[i], size * 0.5, zmin, zmax, depth + 1,
                                  0.25 * weight, rng, accum);
  return refined;
}

double MarchingKernel::integrate_line(const Vec2& xi, double zmin,
                                      double zmax) const {
  std::uint64_t rng = ray_seed(opt_.seed, 0);
  return march_line(xi, zmin, zmax, rng).sigma;
}

Grid2D MarchingKernel::render(const FieldSpec& spec) const {
  const std::size_t nx = spec.nx(), ny = spec.ny();
  Grid2D grid(nx, ny);
  const double h = spec.cell_size();

  obs::TraceSpan span("kernel.march_render", "kernel");
  span.add_arg("cells", static_cast<double>(nx * ny));

  MarchingStats stats;
  stats.thread_seconds.assign(
      static_cast<std::size_t>(omp_get_max_threads()), 0.0);
  std::uint64_t tot_rays = 0, tot_steps = 0, tot_restarts = 0, tot_failed = 0,
                tot_empty = 0;
  double tot_mass = 0.0;
  std::atomic<bool> cancelled{false};

  // ε is specified relative to the grid cell; march_line rescales by the
  // silhouette extent, so compose the two factors here.
  MarchingOptions local = opt_;
  const double extent =
      std::max(hull_->hi().x - hull_->lo().x, hull_->hi().y - hull_->lo().y);
  local.perturb_epsilon = opt_.perturb_epsilon * (extent > 0.0 ? h / extent : 1.0);
  MarchingKernel worker(*density_, *hull_, local);

#pragma omp parallel reduction(+ : tot_rays, tot_steps, tot_restarts, tot_failed, tot_empty, tot_mass)
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    ThreadCpuTimer timer;

#pragma omp for schedule(dynamic, 8)
    for (std::ptrdiff_t idx = 0;
         idx < static_cast<std::ptrdiff_t>(nx * ny); ++idx) {
      // Cooperative watchdog: poll the soft deadline every few rays; once it
      // fires, skip the rest of the grid and report the cancellation after
      // the parallel region (throwing out of an omp loop is UB).
      if (opt_.deadline &&
          (cancelled.load(std::memory_order_relaxed) ||
           ((idx & 15) == 0 && opt_.deadline->expired()))) {
        cancelled.store(true, std::memory_order_relaxed);
        continue;
      }
      const auto ix = static_cast<std::size_t>(idx) % nx;
      const auto iy = static_cast<std::size_t>(idx) / nx;
      // Per-ray RNG: a pure function of (stream seed, cell index) so the
      // rendered grid does not depend on the OpenMP schedule.
      std::uint64_t rng = ray_seed(opt_.seed, static_cast<std::uint64_t>(idx));
      if (opt_.adaptive_max_depth > 0) {
        // Dynamic grid spacing: quadtree-refine cells whose corner lines
        // disagree.
        MarchingStats cell_stats;
        grid.at(ix, iy) = worker.refine_cell(spec.cell_center(ix, iy), h,
                                             spec.zmin, spec.zmax, 0, 1.0, rng,
                                             &cell_stats);
        tot_rays += cell_stats.rays_marched;
        tot_steps += cell_stats.tetra_crossed;
        tot_restarts += cell_stats.perturb_restarts;
        tot_failed += cell_stats.failed_cells;
        tot_mass += cell_stats.ray_mass;
        continue;
      }
      double sigma = 0.0;
      // Low-discrepancy ξ jitter: a Halton (2,3) pattern under a per-cell
      // Cranley–Patterson rotation. Unbiased like the plain uniform jitter,
      // but stratified — on halo-clustered inputs (where a cell's column
      // integral varies by orders of magnitude) the mass-recovery error of
      // 8 samples/cell drops severalfold versus independent draws.
      const double rot_x = rand_unit(rng);
      const double rot_y = rand_unit(rng);
      for (int s = 0; s < opt_.monte_carlo_samples; ++s) {
        Vec2 xi = spec.cell_center(ix, iy);
        if (opt_.monte_carlo_samples > 1) {
          double jx = radical_inverse(static_cast<std::uint32_t>(s), 2) + rot_x;
          double jy = radical_inverse(static_cast<std::uint32_t>(s), 3) + rot_y;
          jx -= std::floor(jx);
          jy -= std::floor(jy);
          xi.x += (jx - 0.5) * h;
          xi.y += (jy - 0.5) * h;
        }
        const LineResult r = worker.march_line(xi, spec.zmin, spec.zmax, rng);
        if (obs::metrics_enabled())
          obs::observe(march_metrics().crossings_per_ray,
                       static_cast<double>(r.steps));
        sigma += r.sigma;
        tot_rays += 1;
        tot_steps += r.steps;
        tot_restarts += static_cast<std::uint64_t>(r.restarts);
        tot_failed += r.failed ? 1 : 0;
        tot_empty += r.empty ? 1 : 0;
      }
      grid.at(ix, iy) = sigma / opt_.monte_carlo_samples;
      tot_mass += sigma / opt_.monte_carlo_samples;
    }
    stats.thread_seconds[tid] = timer.seconds();
  }

  stats.cells_rendered = nx * ny;
  stats.rays_marched = tot_rays;
  stats.tetra_crossed = tot_steps;
  stats.perturb_restarts = tot_restarts;
  stats.failed_cells = tot_failed;
  stats.empty_cells = tot_empty;
  stats.ray_mass = tot_mass;
  stats_ = stats;

  if (cancelled.load(std::memory_order_relaxed))
    throw Error("marching render cancelled: item deadline exceeded");

  if (obs::metrics_enabled()) {
    const MarchMetrics& m = march_metrics();
    obs::add(m.rays, static_cast<double>(tot_rays));
    obs::add(m.crossings, static_cast<double>(tot_steps));
    obs::add(m.restarts, static_cast<double>(tot_restarts));
    obs::add(m.failed, static_cast<double>(tot_failed));
    obs::add(m.empty, static_cast<double>(tot_empty));
  }
  span.add_arg("rays", static_cast<double>(tot_rays));
  span.add_arg("tetra_crossings", static_cast<double>(tot_steps));
  return grid;
}

}  // namespace dtfe
