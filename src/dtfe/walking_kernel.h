// Walking-based 3D-grid surface density (the DTFE-public-software baseline,
// paper §III-C / §V-1).
//
// This is the approach the paper's kernel is measured against: render the
// density on a full 3D grid by locating every representative point with a
// remembering walk (Sambridge-style orientation tests, Eq. 6) and
// interpolating, then collapse the z-columns with Σ̂ = Σ_k ρ̂(ξ, z_k)·Δz
// (Eq. 4), optionally Monte-Carlo averaging samples per 3D cell (Eq. 5).
#pragma once

#include <cstdint>
#include <vector>

#include "dtfe/density.h"
#include "dtfe/field.h"

namespace dtfe {

struct WalkingOptions {
  /// Number of 3D grid cells along z; 0 = match the 2D resolution (cubic
  /// cells, the common DTFE-software configuration).
  std::size_t z_resolution = 0;
  /// Monte Carlo samples per 3D cell (1 = cell centers, the deterministic
  /// Eq. 4 variant).
  int monte_carlo_samples = 1;
  /// Static per-thread volume decomposition, as the DTFE public software
  /// does ("computation on the sub-volumes is performed by individual
  /// threads... no attempt is made to balance workloads"). Off = dynamic
  /// scheduling. The paper's Fig. 6 thread imbalance comes from this knob.
  bool static_decomposition = false;
  std::uint64_t seed = 54321;
};

struct WalkingStats {
  std::uint64_t points_located = 0;
  std::uint64_t points_outside = 0;
  std::vector<double> thread_seconds;
};

class WalkingKernel {
 public:
  explicit WalkingKernel(const DensityField& density, WalkingOptions opt = {});

  /// Surface density via the 3D-grid route. `spec.zmin/zmax` must be finite
  /// (they bound the 3D grid).
  Grid2D render(const FieldSpec& spec) const;

  /// The intermediate product itself: the full 3D density grid over the box
  /// [origin, origin+length]² × [zmin, zmax].
  Grid3D render_3d(const FieldSpec& spec) const;

  const WalkingStats& stats() const { return stats_; }

 private:
  const DensityField* density_;
  WalkingOptions opt_;
  mutable WalkingStats stats_;
};

}  // namespace dtfe
