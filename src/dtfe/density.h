// DTFE on-site density estimates and per-cell gradients (paper §III-A).
//
// The density at each input point x_i is the inverse volume of its
// contiguous Voronoi cell (Eq. 2):
//     ρ̂(x_i) = (d+1)·m_i / Σ_j V(T_{j,i})
// where the sum runs over the tetrahedra incident to x_i, and (d+1)=4 is the
// 3D normalization that makes the piecewise-linear interpolant conserve the
// total mass. Within each tetrahedron the interpolant is linear with the
// constant gradient obtained from the four vertex densities (Eq. 1).
#pragma once

#include <span>
#include <vector>

#include "delaunay/triangulation.h"
#include "geometry/vec3.h"

namespace dtfe {

class DensityField {
 public:
  /// Equal-mass particles.
  DensityField(const Triangulation& tri, double particle_mass);
  /// Per-particle masses (size must match tri.num_vertices()); duplicated
  /// input points contribute their mass to the representative vertex.
  DensityField(const Triangulation& tri, std::span<const double> masses);

  /// DTFE interpolation of an arbitrary point-sampled field: use the given
  /// per-vertex values directly instead of the inverse-Voronoi-volume
  /// density estimate (Bernardeau & van de Weygaert's original use case was
  /// volume-weighted velocity fields). Volumes/hull flags are still built.
  static DensityField with_vertex_values(const Triangulation& tri,
                                         std::span<const double> values);

  const Triangulation& triangulation() const { return *tri_; }

  /// On-site DTFE density of vertex v (representative vertices only carry
  /// meaningful values; duplicates alias their representative).
  double vertex_density(VertexId v) const {
    return density_[static_cast<std::size_t>(v)];
  }
  std::span<const double> vertex_densities() const { return density_; }

  /// Volume of the contiguous Voronoi region around v: Σ incident tetra
  /// volumes (the denominator of Eq. 2, before the (d+1) normalization).
  double contiguous_volume(VertexId v) const {
    return volume_[static_cast<std::size_t>(v)];
  }

  /// True if v lies on the convex hull: its contiguous Voronoi cell is
  /// unbounded, so the density estimate there is biased (the paper handles
  /// this by ghost-zone padding around every sub-volume).
  bool on_hull(VertexId v) const { return on_hull_[static_cast<std::size_t>(v)]; }

  /// Constant density gradient within finite cell c (Eq. 1's ∇̂f|Del).
  /// Indexed by CellId; infinite cells hold zeros.
  const Vec3& cell_gradient(CellId c) const {
    return gradient_[static_cast<std::size_t>(c)];
  }

  /// Linear interpolant evaluated at p, which must lie in finite cell c.
  double interpolate_in_cell(CellId c, const Vec3& p) const {
    const auto& t = tri_->cell(c);
    const Vec3& x0 = tri_->point(t.v[0]);
    return density_[static_cast<std::size_t>(t.v[0])] +
           gradient_[static_cast<std::size_t>(c)].dot(p - x0);
  }

  /// Total mass represented by interior (non-hull) vertices — used by the
  /// mass-conservation tests.
  double interior_mass() const { return interior_mass_; }

  /// Mass carried by vertex v (duplicates' masses folded onto the
  /// representative; zero when built via with_vertex_values).
  double vertex_mass(VertexId v) const {
    return mass_[static_cast<std::size_t>(v)];
  }

 private:
  explicit DensityField(const Triangulation& tri) : tri_(&tri) {}
  void build(std::span<const double> masses);
  void build_volumes_and_hull();
  void build_gradients();

  const Triangulation* tri_;
  std::vector<double> density_;   // per vertex
  std::vector<double> mass_;      // per vertex (folded)
  std::vector<double> volume_;    // per vertex
  std::vector<char> on_hull_;     // per vertex
  std::vector<Vec3> gradient_;    // per cell id (dense over storage)
  double interior_mass_ = 0.0;
};

}  // namespace dtfe
