// The paper's surface-density kernel (§IV-A, Figs. 2–3).
//
// For each 2D grid cell the kernel marches its vertical line of sight ℓ
// through the tetrahedral mesh using Plücker ray–tetra intersections,
// accumulating the EXACT integral of the linear DTFE interpolant over each
// crossed tetrahedron: by Eq. 12, that integral equals the interpolant at
// the midpoint of the intersection interval times the interval length. No
// intermediate 3D grid is ever built, and the sample points are the
// mathematically optimal ones.
//
// The vertical hot path runs on precomputed SoA coefficient tables
// (dtfe/march_tables.h, DESIGN.md §11) built once per triangulation and
// shared across channels; with use_simd active, rays are marched in 4-wide
// pixel tiles whose edge products evaluate in SIMD — bitwise identical to
// the scalar table path by construction. The direct AoS classifiers remain
// behind use_general_plucker/use_moller_trumbore as the audit/ablation
// oracle.
//
// Degeneracies (ℓ hits a vertex/edge or is coplanar with a face) are handled
// by the paper's Perturb routine: nudge ℓ by ε toward a random vertex of the
// offending tetrahedron and retry.
#pragma once

#include <cstdint>
#include <memory>

#include "delaunay/hull_projection.h"
#include "dtfe/density.h"
#include "dtfe/field.h"
#include "dtfe/march_tables.h"
#include "util/cancel.h"
#include "util/simd.h"

namespace dtfe {

struct MarchingOptions {
  /// Perturbation magnitude for degenerate rays, as a fraction of the grid
  /// cell size (the ε of paper Fig. 2).
  double perturb_epsilon = 1e-6;
  /// Abort a cell after this many perturbation restarts (the march then
  /// reports the best effort and counts the failure).
  int max_perturb_retries = 32;
  /// Monte Carlo samples per 2D cell (>1 jitters ξ within the cell and
  /// averages, the paper's mitigation for x/y under-sampling).
  int monte_carlo_samples = 1;
  /// Use Möller–Trumbore ray–triangle instead of Plücker (ablation only;
  /// more degeneracy-prone, as the paper notes).
  bool use_moller_trumbore = false;
  /// Use the general-direction Plücker test instead of the vertical-line
  /// specialization (ablation; identical results, ~3× more arithmetic).
  bool use_general_plucker = false;
  /// SIMD batching of the vertical fast path (tile marching + vectorized
  /// edge products). kAuto enables it when the build carries a native ISA.
  /// Grids are bitwise identical across on/off — the flag is a perf A/B
  /// switch, not a results knob.
  SimdMode use_simd = SimdMode::kAuto;
  /// Dynamic grid spacing (the mode the paper disabled "for clarity" in its
  /// Fig. 6 comparison): when > 0, every 2D cell whose corner line integrals
  /// disagree by more than adaptive_tolerance (relative) is split into 4 and
  /// averaged, recursively up to this depth. Mitigates x/y under-sampling in
  /// dense regions deterministically, as an alternative to Monte Carlo.
  int adaptive_max_depth = 0;
  double adaptive_tolerance = 0.25;
  /// When > 0: instead of the exact per-tetra midpoint integral (Eq. 12),
  /// sample the interpolant at the z_samples fixed grid planes a 3D-grid
  /// renderer would use (Eq. 4 semantics) — locating each sample via the
  /// march, not a walk. This is the paper's Fig. 6 protocol, where both
  /// methods "locate and interpolate exactly the same number of grid cells";
  /// the marching kernel amortizes location over whole tetra intervals.
  int z_samples = 0;
  /// Stream seed. Per-ray RNG states are derived from (seed, ray index) by
  /// splitmix, so a render is bitwise deterministic regardless of OpenMP
  /// scheduling; the pipeline folds the work item's identity into this seed
  /// so resumed runs replay identical perturbation sequences.
  std::uint64_t seed = 12345;
  /// Cooperative cancellation (borrowed; may be null = never cancel).
  /// render() throws dtfe::Error once the deadline expires.
  const Deadline* deadline = nullptr;
};

struct MarchingStats {
  std::uint64_t cells_rendered = 0;
  std::uint64_t rays_marched = 0;        ///< lines of sight integrated
  std::uint64_t tetra_crossed = 0;       ///< total ray–tetra steps
  std::uint64_t perturb_restarts = 0;    ///< degenerate marches restarted
  std::uint64_t failed_cells = 0;        ///< cells that hit the retry cap
  std::uint64_t empty_cells = 0;         ///< ξ outside the hull silhouette
  /// Crossing tests evaluated through the ray-parallel SIMD batch (lanes
  /// that shared a walk front with a tile neighbor); 0 when use_simd
  /// resolves off. Observability for the A/B bench, not a results signal.
  std::uint64_t simd_batch_lanes = 0;
  /// Independent re-accumulation of every terminal ray's integral (weighted
  /// by its share of its 2D cell). In exact arithmetic this equals the sum
  /// of the rendered grid's values; the audit layer compares the two to
  /// catch grid-assembly corruption (see dtfe/audit.h).
  double ray_mass = 0.0;
  std::vector<double> thread_seconds;    ///< per-OpenMP-thread busy time
};

class MarchingKernel {
 public:
  /// The kernel reuses one hull projection across many fields on the same
  /// triangulation; both referenced objects must outlive the kernel.
  /// `geom` optionally shares a prebuilt TetraGeomTable (engine/FieldCube
  /// builds one per triangulation and hands it to every channel kernel);
  /// when null the kernel builds its own.
  MarchingKernel(const DensityField& density, const HullProjection& hull,
                 MarchingOptions opt = {},
                 std::shared_ptr<const TetraGeomTable> geom = nullptr);

  /// Render the surface density field (paper Fig. 3 over all grid cells,
  /// OpenMP-parallel). Returns an Ng×Ng grid of Σ̂ values.
  Grid2D render(const FieldSpec& spec) const;

  /// Integrate the DTFE interpolant along the single vertical line through
  /// ξ over [zmin, zmax]. Exposed for tests and for the walking-comparison
  /// benches.
  double integrate_line(const Vec2& xi, double zmin, double zmax) const;

  /// Statistics from the most recent render() call.
  const MarchingStats& stats() const { return stats_; }

  /// Whether the SIMD batch path is active for this kernel (opt.use_simd
  /// resolved against the compiled ISA and the fast-path preconditions).
  bool simd_active() const { return simd_on_; }

 private:
  /// Result of one un-perturbed march attempt along a fixed ξ.
  struct Attempt {
    double sigma = 0.0;
    std::uint64_t steps = 0;
    bool empty = false;
    bool degenerate = false;
    CellId degen_cell = Triangulation::kNoCell;
  };
  struct LineResult {
    double sigma = 0.0;
    std::uint64_t steps = 0;
    int restarts = 0;
    bool failed = false;
    bool empty = false;
  };

  /// Rescaled-ε worker sharing the parent's tables (render() internal).
  MarchingKernel(const MarchingKernel& base, const MarchingOptions& opt);

  LineResult march_line(Vec2 xi, double zmin, double zmax,
                        std::uint64_t& rng) const;
  /// Perturb-retry continuation: takes attempt 0's outcome (from march_line
  /// or from a tile lane) and drives the remaining scalar retries.
  LineResult finish_line(Vec2 xi, double zmin, double zmax,
                         std::uint64_t& rng, const Attempt& first) const;
  Attempt march_once_fast(const Vec2& xi, double zmin, double zmax) const;
  Attempt march_once_slow(const Vec2& xi, double zmin, double zmax) const;
  /// March up to simd::kLanes rays in lockstep; lanes whose walk fronts
  /// meet in one tetra share a ray-parallel batched crossing test.
  /// `batch_lanes` accumulates how many tests took the batch route.
  void march_tile(const Vec2* xi, int n, double zmin, double zmax,
                  std::uint64_t* rng, LineResult* out,
                  std::uint64_t& batch_lanes) const;
  /// Accumulate one tetra's contribution over [a, b) into sigma — shared by
  /// the scalar and tile walks so their arithmetic is identical.
  void add_interval(CellId c, const Vec2& xi, double a, double b, double zmin,
                    double zmax, double dz, double& sigma) const;
  void edge_products(const VerticalTetraCoef& t, const Vec2& xi,
                     double s[6]) const;
  /// Adaptive (quadtree) estimate of the mean surface density over the
  /// square cell centered at `center` with side `size`. `weight` is this
  /// node's share of the top-level 2D cell (1.0 at the root), used to
  /// accumulate MarchingStats::ray_mass from terminal samples only.
  double refine_cell(const Vec2& center, double size, double zmin, double zmax,
                     int depth, double weight, std::uint64_t& rng,
                     MarchingStats* accum) const;

  const DensityField* density_;
  const HullProjection* hull_;
  MarchingOptions opt_;
  std::shared_ptr<const TetraGeomTable> geom_;
  std::shared_ptr<const FieldCoefTable> field_;
  bool simd_on_ = false;
  mutable MarchingStats stats_;
};

}  // namespace dtfe
