#include "dtfe/audit.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "dtfe/marching_kernel.h"
#include "dtfe/vector_field.h"
#include "dtfe/velocity_model.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "util/rng.h"

namespace dtfe {

namespace {

struct AuditMetrics {
  obs::MetricId items = obs::counter("dtfe.audit.items_audited");
  obs::MetricId violations = obs::counter("dtfe.audit.violations");
  obs::MetricId non_finite = obs::counter("dtfe.audit.non_finite");
  obs::MetricId negative = obs::counter("dtfe.audit.negative");
  obs::MetricId mass = obs::counter("dtfe.audit.mass_mismatch");
  obs::MetricId spot = obs::counter("dtfe.audit.spot_mismatch");
  obs::MetricId simd_mismatch = obs::counter("dtfe.audit.simd_mismatch");
  obs::MetricId velocity_mean = obs::counter("dtfe.audit.velocity_mean");
  obs::MetricId div_theorem = obs::counter("dtfe.audit.div_theorem");
};

const AuditMetrics& audit_metrics() {
  static const AuditMetrics m;
  return m;
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Walking-route column integral at ξ: locate each fixed z plane with the
/// stochastic walk and evaluate the linear interpolant there — the 3D-grid
/// baseline's semantics (paper Eq. 4), restricted to one column.
double walking_column(const DensityField& density, const Vec2& xi, double zmin,
                      double zmax, int nz, std::uint64_t& rng) {
  const Triangulation& tri = density.triangulation();
  const double dz = (zmax - zmin) / static_cast<double>(nz);
  double sigma = 0.0;
  CellId hint = Triangulation::kNoCell;
  for (int k = 0; k < nz; ++k) {
    const Vec3 p{xi.x, xi.y, zmin + (static_cast<double>(k) + 0.5) * dz};
    const auto loc = tri.locate_from(p, hint, rng);
    if (loc.status == Triangulation::LocateStatus::kInside) {
      hint = loc.cell;
      sigma += density.interpolate_in_cell(loc.cell, p) * dz;
    } else if (loc.status == Triangulation::LocateStatus::kOnVertex) {
      sigma += density.vertex_density(loc.vertex) * dz;
    }
    // kOutsideHull contributes zero, matching the march's empty intervals.
  }
  return sigma;
}

}  // namespace

AuditLevel parse_audit_level(const std::string& s) {
  if (s == "off") return AuditLevel::kOff;
  if (s == "cheap") return AuditLevel::kCheap;
  if (s == "full") return AuditLevel::kFull;
  throw Error("unknown audit level '" + s + "' (want off|cheap|full)");
}

const char* audit_level_name(AuditLevel level) {
  switch (level) {
    case AuditLevel::kOff: return "off";
    case AuditLevel::kCheap: return "cheap";
    case AuditLevel::kFull: return "full";
  }
  return "?";
}

std::string AuditResult::summary() const {
  if (violations.empty()) return "pass";
  std::string s;
  for (const AuditFinding& f : violations) {
    if (!s.empty()) s += ';';
    s += f.check;
  }
  return s;
}

AuditResult audit_field_item(const Grid2D& grid, const FieldSpec& spec,
                             double ray_mass, const DensityField* density,
                             const HullProjection* hull,
                             const AuditOptions& opt) {
  AuditResult res;
  if (opt.level == AuditLevel::kOff) return res;

  // (a) non-finite and (b) negativity scans over the committed grid.
  ++res.checks_run;
  std::size_t bad_finite = 0, bad_negative = 0;
  std::size_t first_bad = grid.size();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double v = grid.flat(i);
    if (!std::isfinite(v)) {
      if (++bad_finite == 1) first_bad = i;
    } else if (v < 0.0) {
      if (++bad_negative == 1 && first_bad == grid.size()) first_bad = i;
    }
  }
  if (bad_finite > 0)
    res.violations.push_back(
        {"non_finite", std::to_string(bad_finite) + " non-finite cells (first flat index " +
                           std::to_string(first_bad) + ")"});
  ++res.checks_run;
  if (bad_negative > 0)
    res.violations.push_back(
        {"negative", std::to_string(bad_negative) +
                         " negative cells (interpolant of positive densities "
                         "cannot be negative)"});

  // (c) mass conservation: grid sum vs the kernel's independent terminal-ray
  // re-accumulation. Skipped when the producing kernel gave no ray mass.
  if (std::isfinite(ray_mass) && bad_finite == 0) {
    ++res.checks_run;
    const double gsum = grid.sum();
    const double scale = std::max(std::abs(ray_mass), std::abs(gsum));
    const double rel = scale > 0.0 ? std::abs(gsum - ray_mass) / scale : 0.0;
    if (rel > opt.mass_rel_tol)
      res.violations.push_back(
          {"mass", "grid sum " + fmt(gsum) + " vs ray mass " + fmt(ray_mass) +
                       " (rel " + fmt(rel) + " > tol " + fmt(opt.mass_rel_tol) +
                       ")"});
  }

  // full: equal-cells spot check — marching (z_samples mode) vs walking at
  // the SAME fixed z planes (paper Fig. 6 protocol).
  if (opt.level == AuditLevel::kFull && density != nullptr && hull != nullptr &&
      std::isfinite(spec.zmin) && std::isfinite(spec.zmax)) {
    // One geometry table shared by every audit kernel over this item.
    const auto geom =
        std::make_shared<const TetraGeomTable>(density->triangulation());
    MarchingOptions mo;
    mo.z_samples = opt.spot_z_samples;
    mo.seed = opt.seed;
    const MarchingKernel march(*density, *hull, mo, geom);
    std::uint64_t rng = opt.seed ? opt.seed : 0x5eedf00dULL;
    for (int s = 0; s < opt.spot_checks; ++s) {
      ++res.checks_run;
      const std::size_t ix =
          static_cast<std::size_t>(detail::splitmix64(rng) % spec.nx());
      const std::size_t iy =
          static_cast<std::size_t>(detail::splitmix64(rng) % spec.ny());
      const Vec2 xi = spec.cell_center(ix, iy);
      const double via_march = march.integrate_line(xi, spec.zmin, spec.zmax);
      std::uint64_t walk_rng = detail::splitmix64(rng);
      const double via_walk = walking_column(*density, xi, spec.zmin,
                                             spec.zmax, opt.spot_z_samples,
                                             walk_rng);
      const double scale =
          std::max({std::abs(via_march), std::abs(via_walk), 1e-300});
      const double rel = std::abs(via_march - via_walk) / scale;
      if (rel > opt.spot_rel_tol)
        res.violations.push_back(
            {"spot", "cell (" + std::to_string(ix) + "," + std::to_string(iy) +
                         "): march " + fmt(via_march) + " vs walk " +
                         fmt(via_walk) + " (rel " + fmt(rel) + ")"});
    }

    // full: SIMD parity — a coarse render of the same physical region with
    // the batched tile path forced on vs off must match BITWISE (the
    // MarchingOptions::use_simd contract). Runs on every build: without a
    // native ISA the scalar lanes still exercise tile scheduling against
    // the per-ray loop, which is where ordering bugs would hide.
    {
      ++res.checks_run;
      FieldSpec mini = spec;
      mini.resolution = std::min<std::size_t>(spec.resolution, 8);
      MarchingOptions so;
      so.seed = opt.seed;
      so.monte_carlo_samples = 2;  // cover the jittered-ξ path too
      so.use_simd = SimdMode::kOn;
      const MarchingKernel simd_on(*density, *hull, so, geom);
      so.use_simd = SimdMode::kOff;
      const MarchingKernel simd_off(*density, *hull, so, geom);
      const Grid2D gon = simd_on.render(mini);
      const Grid2D goff = simd_off.render(mini);
      std::size_t diff = 0, first = gon.size();
      for (std::size_t i = 0; i < gon.size(); ++i)
        if (gon.flat(i) != goff.flat(i) && ++diff == 1) first = i;
      if (diff > 0)
        res.violations.push_back(
            {"simd", std::to_string(diff) +
                         " cells differ between use_simd on/off (first flat "
                         "index " +
                         std::to_string(first) + ": " + fmt(gon.flat(first)) +
                         " vs " + fmt(goff.flat(first)) + ")"});
    }
  }

  if (obs::metrics_enabled()) {
    const AuditMetrics& m = audit_metrics();
    obs::add(m.items);
    if (!res.violations.empty())
      obs::add(m.violations, static_cast<double>(res.violations.size()));
    for (const AuditFinding& f : res.violations) {
      if (f.check == "non_finite") obs::add(m.non_finite);
      else if (f.check == "negative") obs::add(m.negative);
      else if (f.check == "mass") obs::add(m.mass);
      else if (f.check == "spot") obs::add(m.spot);
      else if (f.check == "simd") obs::add(m.simd_mismatch);
    }
  }
  return res;
}

AuditResult audit_field_item(const FieldGrid& grid, const FieldSpec& spec,
                             double ray_mass, const DensityField* density,
                             const HullProjection* hull,
                             const AuditOptions& opt,
                             std::uint64_t velocity_model_seed) {
  // Density delegates to the scalar audit above: identical findings,
  // identical metrics — the bitwise-compatibility contract for --field
  // defaults extends to the audit trail.
  if (grid.kind() == FieldKind::kDensity && grid.channels() == 1)
    return audit_field_item(grid.plane(0), spec, ray_mass, density, hull, opt);

  AuditResult res;
  if (opt.level == AuditLevel::kOff) return res;
  const std::vector<std::string> names = field_channel_names(grid.kind());

  // Non-finite scan over every channel plane.
  ++res.checks_run;
  std::size_t bad_finite = 0;
  std::string first_bad;
  for (std::size_t c = 0; c < grid.channels(); ++c) {
    const Grid2D& plane = grid.plane(c);
    for (std::size_t i = 0; i < plane.size(); ++i)
      if (!std::isfinite(plane.flat(i)) && ++bad_finite == 1)
        first_bad = names[c] + " flat index " + std::to_string(i);
  }
  if (bad_finite > 0)
    res.violations.push_back({"non_finite", std::to_string(bad_finite) +
                                                " non-finite cells (first " +
                                                first_bad + ")"});

  if (grid.kind() == FieldKind::kVelocity && density != nullptr &&
      bad_finite == 0) {
    const Triangulation& tri = density->triangulation();
    const VelocityModel model(velocity_model_seed,
                              spec.length > 0.0 ? spec.length : 1.0);
    std::vector<Vec3> vel;
    vel.reserve(tri.num_vertices());
    for (std::size_t v = 0; v < tri.num_vertices(); ++v)
      vel.push_back(model(tri.point(static_cast<VertexId>(v))));

    // Volume-weighted mean-velocity consistency: every LOS mean is a convex
    // combination of vertex-sample values, so it must lie inside their
    // per-channel [min, max] envelope. Cells whose line of sight misses the
    // hull are exactly 0 by construction and exempt.
    for (std::size_t c = 0; c < grid.channels(); ++c) {
      ++res.checks_run;
      double vmin = vel[0][static_cast<int>(c)];
      double vmax = vmin;
      for (const Vec3& v : vel) {
        vmin = std::min(vmin, v[static_cast<int>(c)]);
        vmax = std::max(vmax, v[static_cast<int>(c)]);
      }
      const double tol =
          1e-9 * std::max({std::abs(vmin), std::abs(vmax), 1e-300});
      const Grid2D& plane = grid.plane(c);
      std::size_t out = 0;
      std::size_t first = plane.size();
      for (std::size_t i = 0; i < plane.size(); ++i) {
        const double v = plane.flat(i);
        if (v == 0.0) continue;  // missed-hull cell
        if (v < vmin - tol || v > vmax + tol)
          if (++out == 1) first = i;
      }
      if (out > 0)
        res.violations.push_back(
            {"velocity_mean",
             names[c] + ": " + std::to_string(out) +
                 " cells outside the vertex-velocity envelope [" + fmt(vmin) +
                 ", " + fmt(vmax) + "] (first flat index " +
                 std::to_string(first) + ")"});
    }

    // full: divergence-theorem spot checks. For the linear interpolant the
    // face-centroid flux through a tetrahedron equals ∇·v × V exactly, so
    // the two routes must agree to roundoff — far inside spot_rel_tol.
    if (opt.level == AuditLevel::kFull) {
      const VectorField vf(tri, vel);
      const std::vector<CellId> cells = tri.finite_cells();
      if (!cells.empty()) {
        std::uint64_t rng = opt.seed ? opt.seed : 0x5eedf00dULL;
        static const int kFaces[4][4] = {
            {1, 2, 3, 0}, {0, 3, 2, 1}, {0, 1, 3, 2}, {0, 2, 1, 3}};
        for (int s = 0; s < opt.spot_checks; ++s) {
          ++res.checks_run;
          const CellId c = cells[static_cast<std::size_t>(
              detail::splitmix64(rng) % cells.size())];
          const auto p = tri.cell_points(c);
          const double vol =
              std::abs((p[1] - p[0]).dot((p[2] - p[0]).cross(p[3] - p[0]))) /
              6.0;
          double flux = 0.0, flux_scale = 0.0;
          for (const auto& f : kFaces) {
            const Vec3& a = p[static_cast<std::size_t>(f[0])];
            const Vec3& b = p[static_cast<std::size_t>(f[1])];
            const Vec3& d = p[static_cast<std::size_t>(f[2])];
            const Vec3& opp = p[static_cast<std::size_t>(f[3])];
            Vec3 n = (b - a).cross(d - a);  // |n| = 2 × face area
            if (n.dot(opp - a) > 0.0) n = -n;  // outward
            const Vec3 centroid = (a + b + d) / 3.0;
            const double df = vf.interpolate_in_cell(c, centroid).dot(n) * 0.5;
            flux += df;
            flux_scale += std::abs(df);
          }
          const double div_vol = vf.divergence(c) * vol;
          const double scale =
              std::max({std::abs(div_vol), flux_scale, 1e-300});
          const double rel = std::abs(flux - div_vol) / scale;
          if (rel > opt.spot_rel_tol)
            res.violations.push_back(
                {"div_theorem", "cell " + std::to_string(c) + ": flux " +
                                    fmt(flux) + " vs div×V " + fmt(div_vol) +
                                    " (rel " + fmt(rel) + ")"});
        }
      }
    }
  }
  (void)hull;
  (void)ray_mass;  // no mass identity for the vector channels

  if (obs::metrics_enabled()) {
    const AuditMetrics& m = audit_metrics();
    obs::add(m.items);
    if (!res.violations.empty())
      obs::add(m.violations, static_cast<double>(res.violations.size()));
    for (const AuditFinding& f : res.violations) {
      if (f.check == "non_finite") obs::add(m.non_finite);
      else if (f.check == "velocity_mean") obs::add(m.velocity_mean);
      else if (f.check == "div_theorem") obs::add(m.div_theorem);
    }
  }
  return res;
}

}  // namespace dtfe
