#include "dtfe/audit.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "dtfe/marching_kernel.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "util/rng.h"

namespace dtfe {

namespace {

struct AuditMetrics {
  obs::MetricId items = obs::counter("dtfe.audit.items_audited");
  obs::MetricId violations = obs::counter("dtfe.audit.violations");
  obs::MetricId non_finite = obs::counter("dtfe.audit.non_finite");
  obs::MetricId negative = obs::counter("dtfe.audit.negative");
  obs::MetricId mass = obs::counter("dtfe.audit.mass_mismatch");
  obs::MetricId spot = obs::counter("dtfe.audit.spot_mismatch");
};

const AuditMetrics& audit_metrics() {
  static const AuditMetrics m;
  return m;
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Walking-route column integral at ξ: locate each fixed z plane with the
/// stochastic walk and evaluate the linear interpolant there — the 3D-grid
/// baseline's semantics (paper Eq. 4), restricted to one column.
double walking_column(const DensityField& density, const Vec2& xi, double zmin,
                      double zmax, int nz, std::uint64_t& rng) {
  const Triangulation& tri = density.triangulation();
  const double dz = (zmax - zmin) / static_cast<double>(nz);
  double sigma = 0.0;
  CellId hint = Triangulation::kNoCell;
  for (int k = 0; k < nz; ++k) {
    const Vec3 p{xi.x, xi.y, zmin + (static_cast<double>(k) + 0.5) * dz};
    const auto loc = tri.locate_from(p, hint, rng);
    if (loc.status == Triangulation::LocateStatus::kInside) {
      hint = loc.cell;
      sigma += density.interpolate_in_cell(loc.cell, p) * dz;
    } else if (loc.status == Triangulation::LocateStatus::kOnVertex) {
      sigma += density.vertex_density(loc.vertex) * dz;
    }
    // kOutsideHull contributes zero, matching the march's empty intervals.
  }
  return sigma;
}

}  // namespace

AuditLevel parse_audit_level(const std::string& s) {
  if (s == "off") return AuditLevel::kOff;
  if (s == "cheap") return AuditLevel::kCheap;
  if (s == "full") return AuditLevel::kFull;
  throw Error("unknown audit level '" + s + "' (want off|cheap|full)");
}

const char* audit_level_name(AuditLevel level) {
  switch (level) {
    case AuditLevel::kOff: return "off";
    case AuditLevel::kCheap: return "cheap";
    case AuditLevel::kFull: return "full";
  }
  return "?";
}

std::string AuditResult::summary() const {
  if (violations.empty()) return "pass";
  std::string s;
  for (const AuditFinding& f : violations) {
    if (!s.empty()) s += ';';
    s += f.check;
  }
  return s;
}

AuditResult audit_field_item(const Grid2D& grid, const FieldSpec& spec,
                             double ray_mass, const DensityField* density,
                             const HullProjection* hull,
                             const AuditOptions& opt) {
  AuditResult res;
  if (opt.level == AuditLevel::kOff) return res;

  // (a) non-finite and (b) negativity scans over the committed grid.
  ++res.checks_run;
  std::size_t bad_finite = 0, bad_negative = 0;
  std::size_t first_bad = grid.size();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double v = grid.flat(i);
    if (!std::isfinite(v)) {
      if (++bad_finite == 1) first_bad = i;
    } else if (v < 0.0) {
      if (++bad_negative == 1 && first_bad == grid.size()) first_bad = i;
    }
  }
  if (bad_finite > 0)
    res.violations.push_back(
        {"non_finite", std::to_string(bad_finite) + " non-finite cells (first flat index " +
                           std::to_string(first_bad) + ")"});
  ++res.checks_run;
  if (bad_negative > 0)
    res.violations.push_back(
        {"negative", std::to_string(bad_negative) +
                         " negative cells (interpolant of positive densities "
                         "cannot be negative)"});

  // (c) mass conservation: grid sum vs the kernel's independent terminal-ray
  // re-accumulation. Skipped when the producing kernel gave no ray mass.
  if (std::isfinite(ray_mass) && bad_finite == 0) {
    ++res.checks_run;
    const double gsum = grid.sum();
    const double scale = std::max(std::abs(ray_mass), std::abs(gsum));
    const double rel = scale > 0.0 ? std::abs(gsum - ray_mass) / scale : 0.0;
    if (rel > opt.mass_rel_tol)
      res.violations.push_back(
          {"mass", "grid sum " + fmt(gsum) + " vs ray mass " + fmt(ray_mass) +
                       " (rel " + fmt(rel) + " > tol " + fmt(opt.mass_rel_tol) +
                       ")"});
  }

  // full: equal-cells spot check — marching (z_samples mode) vs walking at
  // the SAME fixed z planes (paper Fig. 6 protocol).
  if (opt.level == AuditLevel::kFull && density != nullptr && hull != nullptr &&
      std::isfinite(spec.zmin) && std::isfinite(spec.zmax)) {
    MarchingOptions mo;
    mo.z_samples = opt.spot_z_samples;
    mo.seed = opt.seed;
    const MarchingKernel march(*density, *hull, mo);
    std::uint64_t rng = opt.seed ? opt.seed : 0x5eedf00dULL;
    for (int s = 0; s < opt.spot_checks; ++s) {
      ++res.checks_run;
      const std::size_t ix =
          static_cast<std::size_t>(detail::splitmix64(rng) % spec.nx());
      const std::size_t iy =
          static_cast<std::size_t>(detail::splitmix64(rng) % spec.ny());
      const Vec2 xi = spec.cell_center(ix, iy);
      const double via_march = march.integrate_line(xi, spec.zmin, spec.zmax);
      std::uint64_t walk_rng = detail::splitmix64(rng);
      const double via_walk = walking_column(*density, xi, spec.zmin,
                                             spec.zmax, opt.spot_z_samples,
                                             walk_rng);
      const double scale =
          std::max({std::abs(via_march), std::abs(via_walk), 1e-300});
      const double rel = std::abs(via_march - via_walk) / scale;
      if (rel > opt.spot_rel_tol)
        res.violations.push_back(
            {"spot", "cell (" + std::to_string(ix) + "," + std::to_string(iy) +
                         "): march " + fmt(via_march) + " vs walk " +
                         fmt(via_walk) + " (rel " + fmt(rel) + ")"});
    }
  }

  if (obs::metrics_enabled()) {
    const AuditMetrics& m = audit_metrics();
    obs::add(m.items);
    if (!res.violations.empty())
      obs::add(m.violations, static_cast<double>(res.violations.size()));
    for (const AuditFinding& f : res.violations) {
      if (f.check == "non_finite") obs::add(m.non_finite);
      else if (f.check == "negative") obs::add(m.negative);
      else if (f.check == "mass") obs::add(m.mass);
      else if (f.check == "spot") obs::add(m.spot);
    }
  }
  return res;
}

}  // namespace dtfe
