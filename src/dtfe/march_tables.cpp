#include "dtfe/march_tables.h"

#include "dtfe/density.h"

namespace dtfe {

TetraGeomTable::TetraGeomTable(const Triangulation& tri) {
  const std::size_t n = tri.cell_storage_size();
  coef_.assign(n, VerticalTetraCoef{});
  next_.assign(n * 4, Triangulation::kNoCell);
  mirror_.assign(n * 4, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<CellId>(i);
    if (!tri.cell_alive(c) || tri.is_infinite(c)) continue;
    coef_[i] = make_vertical_coef(tri.cell_points(c));
    const auto& cell = tri.cell(c);
    for (int f = 0; f < 4; ++f) {
      const CellId nb = cell.n[static_cast<std::size_t>(f)];
      if (nb == Triangulation::kNoCell || tri.is_infinite(nb)) continue;
      next_[i * 4 + static_cast<std::size_t>(f)] = nb;
      mirror_[i * 4 + static_cast<std::size_t>(f)] =
          static_cast<std::int8_t>(tri.mirror_index(c, f));
    }
  }
}

FieldCoefTable::FieldCoefTable(const DensityField& field) {
  const Triangulation& tri = field.triangulation();
  const std::size_t n = tri.cell_storage_size();
  coef_.assign(n, Coef{});
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<CellId>(i);
    if (!tri.cell_alive(c) || tri.is_infinite(c)) continue;
    const auto& t = tri.cell(c);
    const Vec3& x0 = tri.point(t.v[0]);
    const Vec3& g = field.cell_gradient(c);
    Coef& k = coef_[i];
    k.d0 = ((field.vertex_density(t.v[0]) - g.x * x0.x) - g.y * x0.y) -
           g.z * x0.z;
    k.gx = g.x;
    k.gy = g.y;
    k.gz = g.z;
  }
}

}  // namespace dtfe
