// Thin-lens gravitational lensing maps from surface density grids.
//
// The paper's motivating application (§I): "Our work is motivated by a
// gravitational lensing simulation where accurate surface density
// estimation is a critical and costly step." The surface mass density Σ is
// exactly what the thin-lens approximation consumes (paper Eq. 3); this
// module carries it the rest of the way:
//
//   convergence      κ(ξ) = Σ(ξ) / Σ_crit
//   lensing potential  ∇²ψ = 2κ            (solved spectrally, periodic)
//   deflection       α = ∇ψ
//   shear            γ₁ = ½(ψ,xx − ψ,yy),  γ₂ = ψ,xy
//   magnification    μ = 1 / [(1−κ)² − |γ|²]
//
// All derivatives are evaluated in Fourier space on the (power-of-two)
// grid, treating the field as periodic — the standard approach in lensing
// pipelines such as the PICS code the paper feeds.
#pragma once

#include "dtfe/field.h"

namespace dtfe {

struct LensingMaps {
  Grid2D convergence;     ///< κ
  Grid2D potential;       ///< ψ (zero-mean)
  Grid2D deflection_x;    ///< α_x = ∂ψ/∂x
  Grid2D deflection_y;    ///< α_y = ∂ψ/∂y
  Grid2D shear1;          ///< γ₁
  Grid2D shear2;          ///< γ₂
  Grid2D magnification;   ///< μ (clamped near critical curves)
};

struct LensingOptions {
  /// Critical surface density Σ_crit (sets the lensing strength; units must
  /// match the input Σ).
  double sigma_critical = 1.0;
  /// Physical side length of the (square) Σ grid.
  double extent = 1.0;
  /// |μ| is clamped to this value near critical curves where the analytic
  /// magnification diverges.
  double magnification_clamp = 1e4;
};

/// Compute the full set of lensing maps from a square, power-of-two surface
/// density grid. The mean of κ is subtracted before the Poisson solve (the
/// k=0 mode of the potential is gauge; the returned κ keeps its mean).
LensingMaps compute_lensing_maps(const Grid2D& surface_density,
                                 const LensingOptions& opt);

}  // namespace dtfe
