// Deterministic analytic velocity model.
//
// Snapshots in this repo carry positions only (ParticleSet has no velocity
// block), yet the velocity/vdiv estimators need a per-particle velocity. We
// assign one with a seeded superposition of sinusoidal plane-wave modes: a
// pure function of (position, run seed), so every rank — owner-gather,
// shipped work package, or post-fault recovery — derives byte-identical
// velocities from the positions it already has, and the wire format does not
// change. Swap this for real snapshot velocities when a format carries them;
// every layer above sees only the sampled Vec3s.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/vec3.h"

namespace dtfe {

/// A frozen set of plane-wave modes: v(x) = Σ_m a_m cos(k_m·x + φ_m).
/// Modes are derived from `seed` alone (splitmix64 stream), so two models
/// with equal seeds agree to the last bit on every evaluation.
class VelocityModel {
 public:
  /// `box` scales the wavelengths (modes span ~box/1 .. box/4) and `vscale`
  /// the amplitudes; both are fixed at construction.
  explicit VelocityModel(std::uint64_t seed, double box = 1.0,
                         double vscale = 1.0);

  /// Velocity at a position (pure; thread-safe).
  Vec3 operator()(const Vec3& p) const;

  /// Sample the model at every position.
  std::vector<Vec3> sample(std::span<const Vec3> positions) const;

 private:
  struct Mode {
    Vec3 amplitude;
    Vec3 wavevector;
    double phase = 0.0;
  };
  std::vector<Mode> modes_;
};

}  // namespace dtfe
