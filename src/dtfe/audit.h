// Runtime conservation audits for rendered surface-density items.
//
// The pipeline can verify every work item it commits instead of trusting the
// kernels blindly:
//
//  * cheap — (a) non-finite scan, (b) negativity scan (the DTFE interpolant
//    is a convex combination of positive vertex densities inside each
//    tetrahedron, so a negative cell means corrupted assembly), and (c) mass
//    conservation: the rendered grid's sum must equal the kernel's
//    independent re-accumulation of terminal ray integrals
//    (MarchingStats::ray_mass) to within accumulation-order roundoff. The
//    two sums follow different code paths and different summation orders, so
//    an indexing bug, a torn write, or a checkpoint-decode error shows up as
//    a relative mismatch far above the default 1e-9 tolerance.
//  * full — cheap plus a random spot check of the paper's "equal cells"
//    protocol (Fig. 6): at a few random grid cells, the marching kernel in
//    z_samples mode and a walking-style locate+interpolate evaluate the SAME
//    interpolant at the SAME fixed z planes; the two routes must agree to
//    ~1e-6 relative, catching disagreements between the Plücker march and
//    the stochastic walk on the exact same tessellation.
//
// Violations are returned as structured findings, counted in dtfe.audit.*
// metrics, and tagged into the run report by the pipeline; --audit-fatal
// escalates them to errors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "delaunay/hull_projection.h"
#include "dtfe/density.h"
#include "dtfe/field.h"

namespace dtfe {

enum class AuditLevel { kOff, kCheap, kFull };

/// Parse "off" / "cheap" / "full" (throws Error otherwise).
AuditLevel parse_audit_level(const std::string& s);
const char* audit_level_name(AuditLevel level);

struct AuditOptions {
  AuditLevel level = AuditLevel::kOff;
  /// Relative tolerance for |grid.sum() − ray_mass|. Both are ~n·ε-accurate
  /// sums of the same terms in different orders, so honest renders sit many
  /// orders of magnitude below this.
  double mass_rel_tol = 1e-9;
  /// full mode: number of random cells cross-checked per item.
  int spot_checks = 4;
  /// full mode: fixed z planes per spot check (the equal-cells protocol).
  int spot_z_samples = 64;
  /// full mode: relative tolerance between the marching and walking routes.
  double spot_rel_tol = 1e-6;
  /// Seed for the spot-check cell picks (folded with the item seed by the
  /// pipeline so resumed runs audit the same cells).
  std::uint64_t seed = 0x5eedf00dULL;
};

struct AuditFinding {
  std::string check;   ///< "non_finite" | "negative" | "mass" | "spot"
  std::string detail;  ///< human-readable specifics
};

struct AuditResult {
  std::vector<AuditFinding> violations;
  int checks_run = 0;
  bool ok() const { return violations.empty(); }
  /// "pass" or a ';'-joined list of check names.
  std::string summary() const;
};

/// Audit one rendered item. `ray_mass` is MarchingStats::ray_mass from the
/// render that produced `grid` (ignored, along with the mass check, when NaN
/// — the tess/walking paths don't provide it). `density`/`hull` are only
/// needed for AuditLevel::kFull and may be null otherwise.
AuditResult audit_field_item(const Grid2D& grid, const FieldSpec& spec,
                             double ray_mass, const DensityField* density,
                             const HullProjection* hull,
                             const AuditOptions& opt);

/// Multi-channel variant. A density FieldGrid delegates to the scalar audit
/// above (identical findings and metrics). Velocity items add conservation
/// checks instead of the scalar mass/negativity ones:
///  * volume-weighted mean-velocity consistency (cheap): each LOS-mean cell
///    is a volume-weighted average of the linear interpolant, so it must lie
///    within the [min, max] of the model's vertex velocities (cells whose
///    line misses the hull are exactly 0 and exempt);
///  * divergence-theorem spot checks (full): at a few random tetrahedra the
///    face-centroid flux of the interpolated velocity must equal ∇·v × V —
///    an identity that is exact for the linear interpolant, so any mismatch
///    beyond spot_rel_tol means corrupted gradients or vertex values.
/// vdiv/grad items run the non-finite scan only. `velocity_model_seed` is
/// the run-level analytic-model seed (engine/field_kernel.h RenderRequest).
AuditResult audit_field_item(const FieldGrid& grid, const FieldSpec& spec,
                             double ray_mass, const DensityField* density,
                             const HullProjection* hull,
                             const AuditOptions& opt,
                             std::uint64_t velocity_model_seed = 0);

}  // namespace dtfe
