#include "dtfe/field.h"

namespace dtfe {

const char* field_kind_name(FieldKind kind) {
  switch (kind) {
    case FieldKind::kDensity: return "density";
    case FieldKind::kVelocity: return "velocity";
    case FieldKind::kVdiv: return "vdiv";
    case FieldKind::kGrad: return "grad";
  }
  return "density";
}

FieldKind parse_field_kind(const std::string& name) {
  if (name == "density") return FieldKind::kDensity;
  if (name == "velocity") return FieldKind::kVelocity;
  if (name == "vdiv") return FieldKind::kVdiv;
  if (name == "grad") return FieldKind::kGrad;
  throw Error("unknown field kind '" + name +
              "' (expected density, velocity, vdiv, or grad)");
}

std::size_t field_channels(FieldKind kind) {
  switch (kind) {
    case FieldKind::kDensity: return 1;
    case FieldKind::kVelocity: return 3;
    case FieldKind::kVdiv: return 1;
    case FieldKind::kGrad: return 3;
  }
  return 1;
}

std::vector<std::string> field_channel_names(FieldKind kind) {
  switch (kind) {
    case FieldKind::kDensity: return {"density"};
    case FieldKind::kVelocity: return {"vx", "vy", "vz"};
    case FieldKind::kVdiv: return {"vdiv"};
    case FieldKind::kGrad: return {"gx", "gy", "gz"};
  }
  return {"density"};
}

}  // namespace dtfe
