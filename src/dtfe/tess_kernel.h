// Zero-order (Voronoi-cell) surface density — the TESS/DENSE baseline
// (paper §II, Peterka et al.).
//
// TESS assigns each estimation point the density of the Voronoi cell that
// contains it, i.e. of its nearest particle: a zero-order interpolation, in
// contrast with DTFE's first-order linear interpolant. We evaluate it on the
// Delaunay (the Voronoi dual): locate the query, then greedily hill-climb
// over Delaunay vertex neighborhoods to the true nearest site — a standard
// exact nearest-neighbor search on Delaunay graphs.
//
// The per-site density is the inverse of the EXACT Voronoi cell volume
// (computed from the Delaunay dual, delaunay/voronoi.h):
// ρ₀(x_i) = m_i / V_vor(x_i), which integrates to the total mass exactly.
// Hull sites have unbounded cells and get ρ₀ = 0 (the ghost-zone padding
// keeps them away from any region of interest). When the density field was
// built from user-supplied vertex values (with_vertex_values), those values
// are used directly.
#pragma once

#include <cstdint>
#include <vector>

#include "dtfe/density.h"
#include "dtfe/field.h"
#include "util/cancel.h"

namespace dtfe {

struct TessOptions {
  std::size_t z_resolution = 0;  ///< 0 = match the 2D resolution
  std::uint64_t seed = 777;
  /// Cooperative cancellation (borrowed; may be null = never cancel).
  /// render() throws dtfe::Error once the deadline expires.
  const Deadline* deadline = nullptr;
};

struct TessStats {
  std::uint64_t points_located = 0;
  std::uint64_t hillclimb_steps = 0;
  std::vector<double> thread_seconds;
};

class TessKernel {
 public:
  explicit TessKernel(const DensityField& density, TessOptions opt = {});

  /// Zero-order surface density: 3D-grid render + column collapse, like the
  /// DENSE stage of the TESS estimator.
  Grid2D render(const FieldSpec& spec) const;

  /// Scratch buffers for nearest_site (one per thread; avoids per-query
  /// allocations in the render loop).
  struct SearchScratch {
    std::vector<VertexId> neighbors;
    std::vector<CellId> cells;
  };

  /// Exact nearest input site to q via Delaunay hill climbing, starting from
  /// the vertices of the cell that contains q.
  VertexId nearest_site(const Vec3& q, CellId location_hint,
                        std::uint64_t& rng, SearchScratch& scratch) const;
  VertexId nearest_site(const Vec3& q, CellId location_hint,
                        std::uint64_t& rng) const {
    SearchScratch scratch;
    return nearest_site(q, location_hint, rng, scratch);
  }

  const TessStats& stats() const { return stats_; }

  /// Zero-order density of site v (m/V_voronoi, or the user-supplied vertex
  /// value).
  double site_density(VertexId v) const {
    return site_density_[static_cast<std::size_t>(v)];
  }

  /// Hill climb to the nearest site starting from a known-good seed site
  /// (typically the previous z-sample's answer): the hot path of render().
  VertexId nearest_site_from(const Vec3& q, VertexId seed) const;

 private:
  void build_adjacency();

  const DensityField* density_;
  TessOptions opt_;
  std::vector<double> site_density_;
  // CSR vertex adjacency (representative vertices only), built once so the
  // per-sample hill climb does no graph traversal setup.
  std::vector<std::uint32_t> adj_start_;
  std::vector<VertexId> adj_;
  mutable TessStats stats_;
};

}  // namespace dtfe
