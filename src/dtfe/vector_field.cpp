#include "dtfe/vector_field.h"

#include <vector>

#include "util/error.h"

namespace dtfe {

VectorField::VectorField(const Triangulation& tri, std::span<const Vec3> values)
    : tri_(&tri) {
  DTFE_CHECK_MSG(values.size() == tri.num_vertices(),
                 "vector sample count must match vertex count");
  std::vector<double> comp(values.size());
  for (int i = 0; i < 3; ++i) {
    for (std::size_t v = 0; v < values.size(); ++v) comp[v] = values[v][i];
    fields_[static_cast<std::size_t>(i)] = std::make_unique<DensityField>(
        DensityField::with_vertex_values(tri, comp));
  }
  hull_ = std::make_unique<HullProjection>(tri);
}

Grid2D VectorField::los_mean_component(int i, const FieldSpec& spec) const {
  DTFE_CHECK(i >= 0 && i < 3);
  // ∫v dz via the marching kernel on the component field; path length via
  // the same kernel on a unit field.
  const MarchingKernel value_kernel(component(i), *hull_);
  std::vector<double> ones(tri_->num_vertices(), 1.0);
  const DensityField unit = DensityField::with_vertex_values(*tri_, ones);
  const MarchingKernel length_kernel(unit, *hull_);

  const Grid2D integral = value_kernel.render(spec);
  const Grid2D path = length_kernel.render(spec);
  Grid2D mean(spec.nx(), spec.ny());
  for (std::size_t k = 0; k < mean.size(); ++k)
    mean.flat(k) = path.flat(k) > 0.0 ? integral.flat(k) / path.flat(k) : 0.0;
  return mean;
}

}  // namespace dtfe
