// Field containers and field-request descriptions.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "geometry/vec3.h"
#include "util/error.h"

namespace dtfe {

/// Dense row-major 2D scalar field (the surface density grids).
class Grid2D {
 public:
  Grid2D() = default;
  Grid2D(std::size_t nx, std::size_t ny, double fill = 0.0)
      : nx_(nx), ny_(ny), data_(nx * ny, fill) {}

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t size() const { return data_.size(); }

  double& at(std::size_t ix, std::size_t iy) {
    DTFE_ASSERT(ix < nx_ && iy < ny_);
    return data_[iy * nx_ + ix];
  }
  double at(std::size_t ix, std::size_t iy) const {
    DTFE_ASSERT(ix < nx_ && iy < ny_);
    return data_[iy * nx_ + ix];
  }
  double& flat(std::size_t i) {
    DTFE_ASSERT(i < data_.size());
    return data_[i];
  }
  double flat(std::size_t i) const {
    DTFE_ASSERT(i < data_.size());
    return data_[i];
  }
  std::span<const double> values() const { return data_; }
  std::span<double> values() { return data_; }

  double sum() const {
    double s = 0.0;
    for (double v : data_) s += v;
    return s;
  }

 private:
  std::size_t nx_ = 0, ny_ = 0;
  std::vector<double> data_;
};

/// Dense 3D scalar field (intermediate representation of the walking-based
/// baseline renderers).
class Grid3D {
 public:
  Grid3D() = default;
  Grid3D(std::size_t nx, std::size_t ny, std::size_t nz, double fill = 0.0)
      : nx_(nx), ny_(ny), nz_(nz), data_(nx * ny * nz, fill) {}

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  std::size_t size() const { return data_.size(); }

  double& at(std::size_t ix, std::size_t iy, std::size_t iz) {
    DTFE_ASSERT(ix < nx_ && iy < ny_ && iz < nz_);
    return data_[(iz * ny_ + iy) * nx_ + ix];
  }
  double at(std::size_t ix, std::size_t iy, std::size_t iz) const {
    DTFE_ASSERT(ix < nx_ && iy < ny_ && iz < nz_);
    return data_[(iz * ny_ + iy) * nx_ + ix];
  }
  std::span<const double> values() const { return data_; }

 private:
  std::size_t nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<double> data_;
};

/// Which DTFE estimator set a field request reconstructs. All kinds share
/// one tessellation per item; they differ only in what is interpolated and
/// projected (DESIGN.md §10).
enum class FieldKind {
  kDensity,   ///< surface density (1 plane) — the paper's field, the default
  kVelocity,  ///< density-weighted mean LOS velocity per component (3 planes)
  kVdiv,      ///< velocity divergence, volume-weighted per vertex (1 plane)
  kGrad,      ///< density gradient components, per vertex (3 planes)
};

/// CLI/report name of a kind ("density", "velocity", "vdiv", "grad").
const char* field_kind_name(FieldKind kind);

/// Parse a kind name; throws Error listing the valid names on mismatch.
FieldKind parse_field_kind(const std::string& name);

/// Number of channel planes a kind renders.
std::size_t field_channels(FieldKind kind);

/// Per-channel plane names, e.g. {"vx","vy","vz"} for kVelocity. Density's
/// single plane is named "density" so report tags read naturally.
std::vector<std::string> field_channel_names(FieldKind kind);

/// A rendered field item: N named Grid2D planes sharing one footprint. The
/// density default is exactly one plane, and every consumer that only ever
/// handled a scalar grid treats plane(0) of a 1-channel FieldGrid as the old
/// Grid2D — sums, checksums and journal bytes stay bitwise identical.
class FieldGrid {
 public:
  FieldGrid() = default;
  /// Channel-count planes of nx×ny zeros for `kind`.
  FieldGrid(FieldKind kind, std::size_t nx, std::size_t ny)
      : kind_(kind), planes_(field_channels(kind), Grid2D(nx, ny)) {}
  /// Wrap a single rendered plane (the scalar-era constructor).
  explicit FieldGrid(Grid2D plane, FieldKind kind = FieldKind::kDensity)
      : kind_(kind), planes_{std::move(plane)} {}
  /// Adopt pre-rendered planes; their count must match the kind's channels.
  FieldGrid(FieldKind kind, std::vector<Grid2D> planes)
      : kind_(kind), planes_(std::move(planes)) {
    DTFE_CHECK(planes_.size() == field_channels(kind_));
  }

  FieldKind kind() const { return kind_; }
  std::size_t channels() const { return planes_.size(); }
  std::size_t nx() const { return planes_.empty() ? 0 : planes_[0].nx(); }
  std::size_t ny() const { return planes_.empty() ? 0 : planes_[0].ny(); }

  Grid2D& plane(std::size_t c) {
    DTFE_ASSERT(c < planes_.size());
    return planes_[c];
  }
  const Grid2D& plane(std::size_t c) const {
    DTFE_ASSERT(c < planes_.size());
    return planes_[c];
  }

  double plane_sum(std::size_t c) const { return plane(c).sum(); }
  /// Total over every plane: equals Grid2D::sum() for density, and is the
  /// per-item checksum the run reports aggregate.
  double sum() const {
    double s = 0.0;
    for (const Grid2D& p : planes_) s += p.sum();
    return s;
  }

 private:
  FieldKind kind_ = FieldKind::kDensity;
  std::vector<Grid2D> planes_;
};

/// Where and how to compute one surface density field: a square Ng×Ng grid
/// in the xy-plane integrated along z over [zmin, zmax] (defaults: the whole
/// mesh). This mirrors the paper's field requests: a center point plus a
/// physical side length and a resolution shared by all requests.
struct FieldSpec {
  Vec2 origin;                ///< lower-left corner of the grid
  double length = 1.0;        ///< physical x-extent of the field
  std::size_t resolution = 64;///< Ng (cells along x)
  /// Cells along y; 0 = square field (resolution × resolution). Cells are
  /// always square: the y-extent is resolution_y · cell_size().
  std::size_t resolution_y = 0;
  double zmin = -std::numeric_limits<double>::infinity();
  double zmax = std::numeric_limits<double>::infinity();

  std::size_t nx() const { return resolution; }
  std::size_t ny() const { return resolution_y ? resolution_y : resolution; }

  static FieldSpec centered(const Vec3& center, double length,
                            std::size_t resolution) {
    FieldSpec s;
    s.origin = {center.x - 0.5 * length, center.y - 0.5 * length};
    s.length = length;
    s.resolution = resolution;
    s.zmin = center.z - 0.5 * length;
    s.zmax = center.z + 0.5 * length;
    return s;
  }

  double cell_size() const { return length / static_cast<double>(resolution); }
  /// Representative point ξ of 2D cell (ix, iy): the cell center.
  Vec2 cell_center(std::size_t ix, std::size_t iy) const {
    const double h = cell_size();
    return {origin.x + (static_cast<double>(ix) + 0.5) * h,
            origin.y + (static_cast<double>(iy) + 0.5) * h};
  }
};

}  // namespace dtfe
