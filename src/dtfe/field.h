// Field containers and field-request descriptions.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "geometry/vec3.h"
#include "util/error.h"

namespace dtfe {

/// Dense row-major 2D scalar field (the surface density grids).
class Grid2D {
 public:
  Grid2D() = default;
  Grid2D(std::size_t nx, std::size_t ny, double fill = 0.0)
      : nx_(nx), ny_(ny), data_(nx * ny, fill) {}

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t size() const { return data_.size(); }

  double& at(std::size_t ix, std::size_t iy) { return data_[iy * nx_ + ix]; }
  double at(std::size_t ix, std::size_t iy) const { return data_[iy * nx_ + ix]; }
  double& flat(std::size_t i) { return data_[i]; }
  double flat(std::size_t i) const { return data_[i]; }
  std::span<const double> values() const { return data_; }
  std::span<double> values() { return data_; }

  double sum() const {
    double s = 0.0;
    for (double v : data_) s += v;
    return s;
  }

 private:
  std::size_t nx_ = 0, ny_ = 0;
  std::vector<double> data_;
};

/// Dense 3D scalar field (intermediate representation of the walking-based
/// baseline renderers).
class Grid3D {
 public:
  Grid3D() = default;
  Grid3D(std::size_t nx, std::size_t ny, std::size_t nz, double fill = 0.0)
      : nx_(nx), ny_(ny), nz_(nz), data_(nx * ny * nz, fill) {}

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  std::size_t size() const { return data_.size(); }

  double& at(std::size_t ix, std::size_t iy, std::size_t iz) {
    return data_[(iz * ny_ + iy) * nx_ + ix];
  }
  double at(std::size_t ix, std::size_t iy, std::size_t iz) const {
    return data_[(iz * ny_ + iy) * nx_ + ix];
  }
  std::span<const double> values() const { return data_; }

 private:
  std::size_t nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<double> data_;
};

/// Where and how to compute one surface density field: a square Ng×Ng grid
/// in the xy-plane integrated along z over [zmin, zmax] (defaults: the whole
/// mesh). This mirrors the paper's field requests: a center point plus a
/// physical side length and a resolution shared by all requests.
struct FieldSpec {
  Vec2 origin;                ///< lower-left corner of the grid
  double length = 1.0;        ///< physical x-extent of the field
  std::size_t resolution = 64;///< Ng (cells along x)
  /// Cells along y; 0 = square field (resolution × resolution). Cells are
  /// always square: the y-extent is resolution_y · cell_size().
  std::size_t resolution_y = 0;
  double zmin = -std::numeric_limits<double>::infinity();
  double zmax = std::numeric_limits<double>::infinity();

  std::size_t nx() const { return resolution; }
  std::size_t ny() const { return resolution_y ? resolution_y : resolution; }

  static FieldSpec centered(const Vec3& center, double length,
                            std::size_t resolution) {
    FieldSpec s;
    s.origin = {center.x - 0.5 * length, center.y - 0.5 * length};
    s.length = length;
    s.resolution = resolution;
    s.zmin = center.z - 0.5 * length;
    s.zmax = center.z + 0.5 * length;
    return s;
  }

  double cell_size() const { return length / static_cast<double>(resolution); }
  /// Representative point ξ of 2D cell (ix, iy): the cell center.
  Vec2 cell_center(std::size_t ix, std::size_t iy) const {
    const double h = cell_size();
    return {origin.x + (static_cast<double>(ix) + 0.5) * h,
            origin.y + (static_cast<double>(iy) + 0.5) * h};
  }
};

}  // namespace dtfe
