// DTFE interpolation of point-sampled VECTOR fields (velocities).
//
// The DTFE method was introduced by Bernardeau & van de Weygaert for
// "producing volume-weighted velocity fields" (paper §III-A): sample values
// live on the particles, the Delaunay provides the multidimensional linear
// interpolant, and — unlike mass-weighted grid assignment — averages over
// volumes are volume-weighted. This module applies the library's machinery
// to a per-particle Vec3 quantity: pointwise interpolation, the per-cell
// velocity-gradient tensor (divergence / vorticity / shear), and
// volume-weighted line-of-sight means via the marching kernel.
#pragma once

#include <array>
#include <memory>
#include <span>

#include "delaunay/hull_projection.h"
#include "dtfe/density.h"
#include "dtfe/field.h"
#include "dtfe/marching_kernel.h"

namespace dtfe {

class VectorField {
 public:
  /// `values[i]` is the vector sample carried by input point i.
  VectorField(const Triangulation& tri, std::span<const Vec3> values);

  const Triangulation& triangulation() const { return *tri_; }

  /// Linear interpolant at p inside finite cell c.
  Vec3 interpolate_in_cell(CellId c, const Vec3& p) const {
    return {component(0).interpolate_in_cell(c, p),
            component(1).interpolate_in_cell(c, p),
            component(2).interpolate_in_cell(c, p)};
  }

  /// Row i = ∇v_i within cell c (constant per cell, like the density
  /// gradient).
  std::array<Vec3, 3> gradient_tensor(CellId c) const {
    return {component(0).cell_gradient(c), component(1).cell_gradient(c),
            component(2).cell_gradient(c)};
  }

  /// ∇·v within cell c.
  double divergence(CellId c) const {
    const auto g = gradient_tensor(c);
    return g[0].x + g[1].y + g[2].z;
  }

  /// ∇×v within cell c.
  Vec3 vorticity(CellId c) const {
    const auto g = gradient_tensor(c);
    return {g[2].y - g[1].z, g[0].z - g[2].x, g[1].x - g[0].y};
  }

  /// Volume-weighted mean of one component along vertical lines of sight:
  /// ∫v_i dz / ∫dz per 2D cell, both integrals marched exactly. Cells whose
  /// line misses the hull hold 0.
  Grid2D los_mean_component(int i, const FieldSpec& spec) const;

  /// Per-component DensityField (exposes vertex values, gradients, hull
  /// flags).
  const DensityField& component(int i) const { return *fields_[static_cast<std::size_t>(i)]; }
  const HullProjection& hull() const { return *hull_; }

 private:
  const Triangulation* tri_;
  std::array<std::unique_ptr<DensityField>, 3> fields_;
  std::unique_ptr<HullProjection> hull_;
};

}  // namespace dtfe
