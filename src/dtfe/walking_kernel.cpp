#include "dtfe/walking_kernel.h"

#include <omp.h>

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/timer.h"

namespace dtfe {

namespace {

struct WalkMetrics {
  obs::MetricId located = obs::counter("dtfe.kernel.walk_points_located");
  obs::MetricId outside = obs::counter("dtfe.kernel.walk_points_outside");
};

const WalkMetrics& walk_metrics() {
  static const WalkMetrics m;
  return m;
}
std::uint64_t next_rand(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}
double rand_unit(std::uint64_t& s) {
  return static_cast<double>(next_rand(s) >> 11) * 0x1.0p-53;
}
}  // namespace

WalkingKernel::WalkingKernel(const DensityField& density, WalkingOptions opt)
    : density_(&density), opt_(opt) {
  DTFE_CHECK(opt_.monte_carlo_samples >= 1);
}

Grid2D WalkingKernel::render(const FieldSpec& spec) const {
  DTFE_CHECK_MSG(std::isfinite(spec.zmin) && std::isfinite(spec.zmax),
                 "walking kernel needs finite z bounds for its 3D grid");
  const Triangulation& tri = density_->triangulation();
  const std::size_t nx = spec.nx(), ny = spec.ny();
  const std::size_t nz = opt_.z_resolution ? opt_.z_resolution : nx;
  const double h = spec.cell_size();
  const double dz = (spec.zmax - spec.zmin) / static_cast<double>(nz);

  obs::TraceSpan span("kernel.walk_render", "kernel");
  span.add_arg("cells", static_cast<double>(nx * ny));

  Grid2D grid(nx, ny);
  WalkingStats stats;
  stats.thread_seconds.assign(
      static_cast<std::size_t>(omp_get_max_threads()), 0.0);
  std::uint64_t located = 0, outside = 0;

#pragma omp parallel reduction(+ : located, outside)
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    ThreadCpuTimer timer;
    std::uint64_t rng = (opt_.seed | 1) * (tid + 1) * 0x2545f4914f6cdd1dull;

    auto render_column = [&](std::size_t ix, std::size_t iy) {
      const Vec2 xi = spec.cell_center(ix, iy);
      // Walk up the z-column locating each 3D representative point with the
      // previous cell as the hint — the incremental scheme the paper
      // describes for grid rendering.
      CellId hint = Triangulation::kNoCell;
      double sigma = 0.0;
      for (std::size_t iz = 0; iz < nz; ++iz) {
        double rho_cell = 0.0;
        for (int s = 0; s < opt_.monte_carlo_samples; ++s) {
          Vec3 q{xi.x, xi.y,
                 spec.zmin + (static_cast<double>(iz) + 0.5) * dz};
          if (opt_.monte_carlo_samples > 1) {
            q.x += (rand_unit(rng) - 0.5) * h;
            q.y += (rand_unit(rng) - 0.5) * h;
            q.z += (rand_unit(rng) - 0.5) * dz;
          }
          const auto loc = tri.locate_from(q, hint, rng);
          hint = loc.cell;
          ++located;
          if (loc.status == Triangulation::LocateStatus::kOutsideHull) {
            ++outside;
            continue;
          }
          rho_cell += density_->interpolate_in_cell(loc.cell, q);
        }
        sigma += rho_cell / opt_.monte_carlo_samples * dz;
      }
      grid.at(ix, iy) = sigma;
    };

    if (opt_.static_decomposition) {
      // Contiguous per-thread sub-volumes, DTFE-public style: thread t owns
      // an equal share of the columns regardless of how clustered they are.
#pragma omp for schedule(static)
      for (std::ptrdiff_t idx = 0;
           idx < static_cast<std::ptrdiff_t>(nx * ny); ++idx)
        render_column(static_cast<std::size_t>(idx) % nx,
                      static_cast<std::size_t>(idx) / nx);
    } else {
#pragma omp for schedule(dynamic, 8)
      for (std::ptrdiff_t idx = 0;
           idx < static_cast<std::ptrdiff_t>(nx * ny); ++idx)
        render_column(static_cast<std::size_t>(idx) % nx,
                      static_cast<std::size_t>(idx) / nx);
    }
    stats.thread_seconds[tid] = timer.seconds();
  }

  stats.points_located = located;
  stats.points_outside = outside;
  stats_ = stats;

  if (obs::metrics_enabled()) {
    const WalkMetrics& m = walk_metrics();
    obs::add(m.located, static_cast<double>(located));
    obs::add(m.outside, static_cast<double>(outside));
  }
  span.add_arg("points_located", static_cast<double>(located));
  return grid;
}

Grid3D WalkingKernel::render_3d(const FieldSpec& spec) const {
  DTFE_CHECK_MSG(std::isfinite(spec.zmin) && std::isfinite(spec.zmax),
                 "3D rendering needs finite z bounds");
  const Triangulation& tri = density_->triangulation();
  const std::size_t nx = spec.nx(), ny = spec.ny();
  const std::size_t nz = opt_.z_resolution ? opt_.z_resolution : nx;
  const double dz = (spec.zmax - spec.zmin) / static_cast<double>(nz);

  Grid3D grid(nx, ny, nz);
#pragma omp parallel
  {
    std::uint64_t rng = (opt_.seed | 1) * 0x9e3779b97f4a7c15ull;
#pragma omp for schedule(dynamic, 4)
    for (std::ptrdiff_t idx = 0;
         idx < static_cast<std::ptrdiff_t>(nx * ny); ++idx) {
      const auto ix = static_cast<std::size_t>(idx) % nx;
      const auto iy = static_cast<std::size_t>(idx) / nx;
      const Vec2 xi = spec.cell_center(ix, iy);
      CellId hint = Triangulation::kNoCell;
      for (std::size_t iz = 0; iz < nz; ++iz) {
        const Vec3 q{xi.x, xi.y,
                     spec.zmin + (static_cast<double>(iz) + 0.5) * dz};
        const auto loc = tri.locate_from(q, hint, rng);
        hint = loc.cell;
        if (loc.status != Triangulation::LocateStatus::kOutsideHull)
          grid.at(ix, iy, iz) = density_->interpolate_in_cell(loc.cell, q);
      }
    }
  }
  return grid;
}

}  // namespace dtfe
