#include "dtfe/tess_kernel.h"

#include "delaunay/voronoi.h"

#include <omp.h>

#include <atomic>
#include <cmath>

#include "util/error.h"
#include "util/timer.h"

namespace dtfe {

TessKernel::TessKernel(const DensityField& density, TessOptions opt)
    : density_(&density), opt_(opt) {
  const Triangulation& tri = density.triangulation();
  const std::size_t nv = tri.num_vertices();
  site_density_.assign(nv, 0.0);

  double total_mass = 0.0;
  for (std::size_t v = 0; v < nv; ++v)
    total_mass += density.vertex_mass(static_cast<VertexId>(v));

  if (total_mass <= 0.0) {
    // Field built from user-supplied vertex values: zero-order uses them
    // as-is.
    for (std::size_t v = 0; v < nv; ++v)
      site_density_[v] = density.vertex_density(static_cast<VertexId>(v));
    return;
  }

  const std::vector<double> vor = voronoi_volumes(tri);
  for (std::size_t v = 0; v < nv; ++v) {
    const auto rep = static_cast<std::size_t>(
        tri.duplicate_of(static_cast<VertexId>(v)));
    const double volume = vor[rep];
    const double m = density.vertex_mass(static_cast<VertexId>(rep));
    site_density_[v] =
        (std::isfinite(volume) && volume > 0.0) ? m / volume : 0.0;
  }
}

void TessKernel::build_adjacency() {
  const Triangulation& tri = density_->triangulation();
  const std::size_t nv = tri.num_vertices();
  std::vector<std::vector<VertexId>> lists(nv);
  std::vector<VertexId> nbrs;
  std::vector<CellId> cells;
  for (std::size_t v = 0; v < nv; ++v) {
    const auto vid = static_cast<VertexId>(v);
    if (tri.is_duplicate(vid)) continue;
    tri.vertex_neighbors(vid, nbrs, cells);
    lists[v] = nbrs;
  }
  adj_start_.assign(nv + 1, 0);
  for (std::size_t v = 0; v < nv; ++v)
    adj_start_[v + 1] = adj_start_[v] +
                        static_cast<std::uint32_t>(lists[v].size());
  adj_.resize(adj_start_[nv]);
  for (std::size_t v = 0; v < nv; ++v)
    std::copy(lists[v].begin(), lists[v].end(), adj_.begin() + adj_start_[v]);
}

VertexId TessKernel::nearest_site_from(const Vec3& q, VertexId seed) const {
  if (adj_.empty()) const_cast<TessKernel*>(this)->build_adjacency();
  const Triangulation& tri = density_->triangulation();
  VertexId best = tri.duplicate_of(seed);
  double best_d2 = (tri.point(best) - q).norm2();
  bool improved = true;
  while (improved) {
    improved = false;
    const auto lo = adj_start_[static_cast<std::size_t>(best)];
    const auto hi = adj_start_[static_cast<std::size_t>(best) + 1];
    for (auto k = lo; k < hi; ++k) {
      const VertexId u = adj_[k];
      const double d2 = (tri.point(u) - q).norm2();
      if (d2 < best_d2) {
        best = u;
        best_d2 = d2;
        improved = true;
      }
    }
  }
  return best;
}

VertexId TessKernel::nearest_site(const Vec3& q, CellId location_hint,
                                  std::uint64_t& rng,
                                  SearchScratch& scratch) const {
  const Triangulation& tri = density_->triangulation();
  const auto loc = tri.locate_from(q, location_hint, rng);
  if (loc.status == Triangulation::LocateStatus::kOnVertex) return loc.vertex;

  // Start from the best vertex of the located cell (for kOutsideHull this is
  // the infinite cell: use its finite facet vertices).
  const auto& t = tri.cell(loc.cell);
  VertexId best = Triangulation::kInfinite;
  double best_d2 = 0.0;
  for (int s = 0; s < 4; ++s) {
    if (t.v[s] == Triangulation::kInfinite) continue;
    const double d2 = (tri.point(t.v[s]) - q).norm2();
    if (best == Triangulation::kInfinite || d2 < best_d2) {
      best = t.v[s];
      best_d2 = d2;
    }
  }
  DTFE_DCHECK(best != Triangulation::kInfinite);

  // Greedy descent over the Delaunay neighbor graph: from any vertex, some
  // neighbor is strictly closer to q unless the vertex is q's nearest site.
  auto& nbrs = scratch.neighbors;
  bool improved = true;
  std::uint64_t steps = 0;
  while (improved) {
    improved = false;
    tri.vertex_neighbors(best, nbrs, scratch.cells);
    for (const VertexId u : nbrs) {
      const double d2 = (tri.point(u) - q).norm2();
      if (d2 < best_d2) {
        best = u;
        best_d2 = d2;
        improved = true;
      }
    }
    ++steps;
  }
  stats_.hillclimb_steps += steps;  // benign race under OpenMP; stats only
  return best;
}

Grid2D TessKernel::render(const FieldSpec& spec) const {
  DTFE_CHECK_MSG(std::isfinite(spec.zmin) && std::isfinite(spec.zmax),
                 "tess kernel needs finite z bounds for its 3D grid");
  if (adj_.empty())
    const_cast<TessKernel*>(this)->build_adjacency();
  const Triangulation& tri = density_->triangulation();
  const std::size_t nx = spec.nx(), ny = spec.ny();
  const std::size_t nz = opt_.z_resolution ? opt_.z_resolution : nx;
  const double dz = (spec.zmax - spec.zmin) / static_cast<double>(nz);

  Grid2D grid(nx, ny);
  TessStats stats;
  stats.thread_seconds.assign(
      static_cast<std::size_t>(omp_get_max_threads()), 0.0);
  std::uint64_t located = 0;
  std::atomic<bool> cancelled{false};

#pragma omp parallel reduction(+ : located)
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    ThreadCpuTimer timer;
    std::uint64_t rng = (opt_.seed | 1) * (tid + 1) * 0x9e3779b97f4a7c15ull;
    SearchScratch scratch;

#pragma omp for schedule(dynamic, 8)
    for (std::ptrdiff_t idx = 0;
         idx < static_cast<std::ptrdiff_t>(nx * ny); ++idx) {
      // Cooperative watchdog (see marching_kernel.cpp for the pattern).
      if (opt_.deadline &&
          (cancelled.load(std::memory_order_relaxed) ||
           ((idx & 15) == 0 && opt_.deadline->expired()))) {
        cancelled.store(true, std::memory_order_relaxed);
        continue;
      }
      const auto ix = static_cast<std::size_t>(idx) % nx;
      const auto iy = static_cast<std::size_t>(idx) / nx;
      const Vec2 xi = spec.cell_center(ix, iy);
      double sigma = 0.0;
      VertexId site = Triangulation::kInfinite;
      for (std::size_t iz = 0; iz < nz; ++iz) {
        const Vec3 q{xi.x, xi.y,
                     spec.zmin + (static_cast<double>(iz) + 0.5) * dz};
        // First sample: full search (locate + climb). Later samples warm-
        // start the climb from the previous nearest site — the DENSE stage's
        // per-point cost is then a handful of distance comparisons.
        site = site == Triangulation::kInfinite
                   ? nearest_site(q, Triangulation::kNoCell, rng, scratch)
                   : nearest_site_from(q, site);
        ++located;
        // Zero-order: the density of the Voronoi cell containing q.
        sigma += site_density_[static_cast<std::size_t>(site)] * dz;
      }
      grid.at(ix, iy) = sigma;
    }
    stats.thread_seconds[tid] = timer.seconds();
  }

  stats.points_located = located;
  stats_.thread_seconds = stats.thread_seconds;
  stats_.points_located = located;
  if (cancelled.load(std::memory_order_relaxed))
    throw Error("tess render cancelled: item deadline exceeded");
  return grid;
}

}  // namespace dtfe
