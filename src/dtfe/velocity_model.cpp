#include "dtfe/velocity_model.h"

#include <cmath>

#include "util/rng.h"

namespace dtfe {

namespace {

constexpr int kModes = 6;

double unit_interval(std::uint64_t& state) {
  return static_cast<double>(detail::splitmix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

VelocityModel::VelocityModel(std::uint64_t seed, double box, double vscale) {
  // Derive every mode from one splitmix stream: the draw order below is part
  // of the determinism contract (resume/transport parity both replay it).
  std::uint64_t state = seed ^ 0x76656c6f63697479ull;  // "velocity"
  modes_.reserve(kModes);
  const double two_pi = 2.0 * M_PI;
  for (int m = 0; m < kModes; ++m) {
    Mode mode;
    // Wavelength between box and box/4: long modes dominate so the field is
    // smooth on the cube scale, which keeps divergence spot checks stable.
    const double wavelength = box / (1.0 + 3.0 * unit_interval(state));
    const double k = two_pi / wavelength;
    // Isotropic direction via (cos θ uniform, φ uniform).
    const double cos_t = 2.0 * unit_interval(state) - 1.0;
    const double sin_t = std::sqrt(std::max(0.0, 1.0 - cos_t * cos_t));
    const double phi = two_pi * unit_interval(state);
    mode.wavevector = {k * sin_t * std::cos(phi), k * sin_t * std::sin(phi),
                       k * cos_t};
    const double a = vscale * (0.5 + unit_interval(state)) /
                     static_cast<double>(kModes);
    const double cos_ta = 2.0 * unit_interval(state) - 1.0;
    const double sin_ta = std::sqrt(std::max(0.0, 1.0 - cos_ta * cos_ta));
    const double phi_a = two_pi * unit_interval(state);
    mode.amplitude = {a * sin_ta * std::cos(phi_a), a * sin_ta * std::sin(phi_a),
                      a * cos_ta};
    mode.phase = two_pi * unit_interval(state);
    modes_.push_back(mode);
  }
}

Vec3 VelocityModel::operator()(const Vec3& p) const {
  Vec3 v;
  for (const Mode& m : modes_)
    v += m.amplitude * std::cos(m.wavevector.dot(p) + m.phase);
  return v;
}

std::vector<Vec3> VelocityModel::sample(std::span<const Vec3> positions) const {
  std::vector<Vec3> out;
  out.reserve(positions.size());
  for (const Vec3& p : positions) out.push_back((*this)(p));
  return out;
}

}  // namespace dtfe
