#include "dtfe/lensing.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <vector>

#include "util/error.h"
#include "util/fft.h"

namespace dtfe {

namespace {

/// In-place 2D FFT of an n×n complex field (row-major).
void fft_2d(std::vector<std::complex<double>>& f, std::size_t n,
            bool inverse) {
  for (std::size_t iy = 0; iy < n; ++iy)
    fft_1d(std::span(&f[iy * n], n), inverse);
  std::vector<std::complex<double>> col(n);
  for (std::size_t ix = 0; ix < n; ++ix) {
    for (std::size_t iy = 0; iy < n; ++iy) col[iy] = f[iy * n + ix];
    fft_1d(col, inverse);
    for (std::size_t iy = 0; iy < n; ++iy) f[iy * n + ix] = col[iy];
  }
}

double kmode(std::size_t i, std::size_t n, double dk) {
  auto ii = static_cast<std::ptrdiff_t>(i);
  if (ii >= static_cast<std::ptrdiff_t>(n / 2))
    ii -= static_cast<std::ptrdiff_t>(n);
  return dk * static_cast<double>(ii);
}

Grid2D real_part(const std::vector<std::complex<double>>& f, std::size_t n) {
  Grid2D g(n, n);
  for (std::size_t iy = 0; iy < n; ++iy)
    for (std::size_t ix = 0; ix < n; ++ix)
      g.at(ix, iy) = f[iy * n + ix].real();
  return g;
}

}  // namespace

LensingMaps compute_lensing_maps(const Grid2D& surface_density,
                                 const LensingOptions& opt) {
  const std::size_t n = surface_density.nx();
  DTFE_CHECK_MSG(surface_density.ny() == n, "Σ grid must be square");
  DTFE_CHECK_MSG(n >= 2 && (n & (n - 1)) == 0,
                 "Σ grid resolution must be a power of 2");
  DTFE_CHECK(opt.sigma_critical > 0.0);
  DTFE_CHECK(opt.extent > 0.0);

  LensingMaps maps;
  maps.convergence = Grid2D(n, n);
  for (std::size_t iy = 0; iy < n; ++iy)
    for (std::size_t ix = 0; ix < n; ++ix)
      maps.convergence.at(ix, iy) =
          surface_density.at(ix, iy) / opt.sigma_critical;

  // κ̂(k), mean removed (the DC mode of ψ is pure gauge).
  std::vector<std::complex<double>> kappa_k(n * n);
  double mean = 0.0;
  for (std::size_t i = 0; i < n * n; ++i) mean += maps.convergence.flat(i);
  mean /= static_cast<double>(n * n);
  for (std::size_t iy = 0; iy < n; ++iy)
    for (std::size_t ix = 0; ix < n; ++ix)
      kappa_k[iy * n + ix] = maps.convergence.at(ix, iy) - mean;
  fft_2d(kappa_k, n, /*inverse=*/false);

  // Spectral solves: ψ̂ = −2κ̂/k², α̂ = i k ψ̂, γ̂ from second derivatives.
  const double dk = 2.0 * M_PI / opt.extent;
  std::vector<std::complex<double>> psi_k(n * n), ax_k(n * n), ay_k(n * n),
      g1_k(n * n), g2_k(n * n);
  for (std::size_t iy = 0; iy < n; ++iy)
    for (std::size_t ix = 0; ix < n; ++ix) {
      const std::size_t idx = iy * n + ix;
      const double kx = kmode(ix, n, dk);
      const double ky = kmode(iy, n, dk);
      const double k2 = kx * kx + ky * ky;
      if (k2 == 0.0) continue;
      const std::complex<double> psi = -2.0 * kappa_k[idx] / k2;
      psi_k[idx] = psi;
      ax_k[idx] = std::complex<double>(0, kx) * psi;
      ay_k[idx] = std::complex<double>(0, ky) * psi;
      g1_k[idx] = 0.5 * (ky * ky - kx * kx) * psi;  // ½(ψ,xx − ψ,yy)
      g2_k[idx] = -kx * ky * psi;                   // ψ,xy
    }
  fft_2d(psi_k, n, true);
  fft_2d(ax_k, n, true);
  fft_2d(ay_k, n, true);
  fft_2d(g1_k, n, true);
  fft_2d(g2_k, n, true);

  maps.potential = real_part(psi_k, n);
  maps.deflection_x = real_part(ax_k, n);
  maps.deflection_y = real_part(ay_k, n);
  maps.shear1 = real_part(g1_k, n);
  maps.shear2 = real_part(g2_k, n);

  maps.magnification = Grid2D(n, n);
  for (std::size_t i = 0; i < n * n; ++i) {
    const double k = maps.convergence.flat(i);
    const double g1 = maps.shear1.flat(i);
    const double g2 = maps.shear2.flat(i);
    const double det = (1.0 - k) * (1.0 - k) - g1 * g1 - g2 * g2;
    double mu = std::abs(det) < 1.0 / opt.magnification_clamp
                    ? opt.magnification_clamp
                    : 1.0 / det;
    mu = std::clamp(mu, -opt.magnification_clamp, opt.magnification_clamp);
    maps.magnification.flat(i) = mu;
  }
  return maps;
}

}  // namespace dtfe
