// Precomputed SoA tables for the marching kernel's vertical hot path
// (DESIGN.md §11).
//
// The per-call AoS march gathers four Vec3 per step (cell_points), rebuilds
// six edge vectors, and chases mirror_index through the neighbor's cell
// record — per ray, per channel, per crossing. These tables hoist all of it
// into two contiguous per-cell-id arrays built once per triangulation:
//
//   * TetraGeomTable — the coefficient form of the six vertical edge
//     products (geometry/tetra_coef.h), the four vertex heights, and the
//     resolved walk topology (neighbor id with infinite neighbors collapsed
//     to kNoCell, plus the precomputed mirror slot). Geometry-only, so ALL
//     kernels over one triangulation share a single instance — the unit-path
//     and per-channel kernels of a vector render, every cached request once
//     the field service lands.
//   * FieldCoefTable — the per-cell interpolant rebased to absolute
//     coordinates: value(x,y,z) = ((d0 + gx·x) + gy·y) + gz·z. One per
//     DensityField (cheap: 4 doubles/cell).
//
// Tables are indexed by raw cell id over cell_storage_size(); dead and
// infinite slots hold zeros and are never dereferenced by a march (the walk
// starts from a hull entry and stops at kNoCell).
//
// This header also carries the SIMD evaluation routes for the coefficient
// polynomial — they pair geometry/tetra_coef.h with util/simd.h, which the
// geometry layer (below util/) cannot include itself.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "delaunay/triangulation.h"
#include "geometry/tetra_coef.h"
#include "util/simd.h"

namespace dtfe {

class DensityField;

/// Edge-parallel SIMD evaluation of the six edge products: edges 0–3 in one
/// 4-lane vector, edges 4–5 scalar. Same (c + bx·x) + by·y order per edge
/// as coef_edge_products, hence bitwise-equal results.
inline void coef_edge_products_simd(const VerticalTetraCoef& t, const Vec2& xi,
                                    double s[6]) {
  const simd::Pack4d px = simd::set1(xi.x);
  const simd::Pack4d py = simd::set1(xi.y);
  const simd::Pack4d r =
      simd::add(simd::add(simd::load(t.c), simd::mul(simd::load(t.bx), px)),
                simd::mul(simd::load(t.by), py));
  simd::store(s, r);
  s[4] = (t.c[4] + t.bx[4] * xi.x) + t.by[4] * xi.y;
  s[5] = (t.c[5] + t.bx[5] * xi.x) + t.by[5] * xi.y;
}

/// Ray-parallel SIMD evaluation: simd::kLanes rays against one broadcast
/// tetra. out[e][l] is edge e's product for ray l, bitwise equal to
/// coef_edge_products at (xs[l], ys[l]).
inline void coef_edge_products_batch(const VerticalTetraCoef& t,
                                     const double* xs, const double* ys,
                                     double out[6][simd::kLanes]) {
  const simd::Pack4d px = simd::load(xs);
  const simd::Pack4d py = simd::load(ys);
  for (int e = 0; e < 6; ++e) {
    const simd::Pack4d s = simd::add(
        simd::add(simd::set1(t.c[e]), simd::mul(simd::set1(t.bx[e]), px)),
        simd::mul(simd::set1(t.by[e]), py));
    simd::store(out[e], s);
  }
}

/// Geometry-only march tables: crossing-test coefficients plus resolved walk
/// topology, one entry per raw cell id. Immutable after construction, safe
/// to share across threads and kernels.
class TetraGeomTable {
 public:
  explicit TetraGeomTable(const Triangulation& tri);

  const VerticalTetraCoef& coef(CellId c) const {
    return coef_[static_cast<std::size_t>(c)];
  }
  /// Neighbor across `face`; infinite neighbors collapse to kNoCell so the
  /// march's hull-exit test is one compare, no cell-record probe.
  CellId next(CellId c, int face) const {
    return next_[static_cast<std::size_t>(c) * 4 + static_cast<std::size_t>(face)];
  }
  /// Entry face in next(c, face) — the precomputed mirror_index.
  int mirror(CellId c, int face) const {
    return mirror_[static_cast<std::size_t>(c) * 4 +
                   static_cast<std::size_t>(face)];
  }
  std::size_t size() const { return coef_.size(); }

 private:
  std::vector<VerticalTetraCoef> coef_;
  std::vector<CellId> next_;
  std::vector<std::int8_t> mirror_;
};

/// Per-cell linear interpolant rebased to absolute coordinates:
/// value = ((d0 + gx·x) + gy·y) + gz·z — the midpoint-integral evaluation
/// without the per-call v[0]/gradient gather of interpolate_in_cell.
/// NOTE: rounds differently from interpolate_in_cell's (p − x0) form; the
/// table form is the production fast path, the AoS form stays the oracle.
class FieldCoefTable {
 public:
  explicit FieldCoefTable(const DensityField& field);

  double value(CellId c, double x, double y, double z) const {
    const Coef& k = coef_[static_cast<std::size_t>(c)];
    return ((k.d0 + k.gx * x) + k.gy * y) + k.gz * z;
  }
  /// Interpolant restricted to the column through (x, y): base + gz·z.
  double column_base(CellId c, double x, double y) const {
    const Coef& k = coef_[static_cast<std::size_t>(c)];
    return (k.d0 + k.gx * x) + k.gy * y;
  }
  double gz(CellId c) const { return coef_[static_cast<std::size_t>(c)].gz; }

 private:
  struct Coef {
    double d0 = 0.0, gx = 0.0, gy = 0.0, gz = 0.0;
  };
  std::vector<Coef> coef_;
};

}  // namespace dtfe
