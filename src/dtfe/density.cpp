#include "dtfe/density.h"

#include <algorithm>

#include "geometry/tetra_math.h"
#include "util/error.h"

namespace dtfe {

DensityField::DensityField(const Triangulation& tri, double particle_mass)
    : tri_(&tri) {
  std::vector<double> masses(tri.num_vertices(), particle_mass);
  build(masses);
}

DensityField::DensityField(const Triangulation& tri,
                           std::span<const double> masses)
    : tri_(&tri) {
  DTFE_CHECK_MSG(masses.size() == tri.num_vertices(),
                 "mass array size must match vertex count");
  build(masses);
}

DensityField DensityField::with_vertex_values(const Triangulation& tri,
                                              std::span<const double> values) {
  DTFE_CHECK_MSG(values.size() == tri.num_vertices(),
                 "value array size must match vertex count");
  DensityField f(tri);
  f.build_volumes_and_hull();
  f.mass_.assign(values.size(), 0.0);
  f.density_.assign(values.begin(), values.end());
  // Duplicates alias their representative's value.
  for (std::size_t v = 0; v < values.size(); ++v)
    f.density_[v] = values[static_cast<std::size_t>(
        tri.duplicate_of(static_cast<VertexId>(v)))];
  f.build_gradients();
  return f;
}

void DensityField::build_volumes_and_hull() {
  const std::size_t nv = tri_->num_vertices();
  volume_.assign(nv, 0.0);
  on_hull_.assign(nv, 0);

  // Accumulate incident tetra volumes per vertex (one sweep over cells).
  for (std::size_t i = 0; i < tri_->cell_storage_size(); ++i) {
    const auto c = static_cast<CellId>(i);
    if (!tri_->cell_alive(c)) continue;
    const auto& t = tri_->cell(c);
    if (tri_->is_infinite(c)) {
      // Hull vertices have unbounded Voronoi cells; flag them.
      for (int s = 0; s < 4; ++s)
        if (t.v[s] != Triangulation::kInfinite)
          on_hull_[static_cast<std::size_t>(t.v[s])] = 1;
      continue;
    }
    const auto p = tri_->cell_points(c);
    const double vol = tetra_volume(p[0], p[1], p[2], p[3]);
    for (int s = 0; s < 4; ++s)
      volume_[static_cast<std::size_t>(t.v[s])] += vol;
  }
  for (std::size_t v = 0; v < nv; ++v) {
    const auto rep =
        static_cast<std::size_t>(tri_->duplicate_of(static_cast<VertexId>(v)));
    volume_[v] = volume_[rep];
    on_hull_[v] = on_hull_[rep];
  }
}

void DensityField::build(std::span<const double> masses) {
  const std::size_t nv = tri_->num_vertices();
  density_.assign(nv, 0.0);
  build_volumes_and_hull();

  // Fold duplicated points' masses onto their representatives.
  mass_.assign(nv, 0.0);
  auto& mass = mass_;
  for (std::size_t v = 0; v < nv; ++v)
    mass[static_cast<std::size_t>(tri_->duplicate_of(static_cast<VertexId>(v)))] +=
        masses[v];

  // Eq. 2: ρ̂ = (d+1)m / ΣV with d = 3.
  interior_mass_ = 0.0;
  for (std::size_t v = 0; v < nv; ++v) {
    if (tri_->is_duplicate(static_cast<VertexId>(v))) continue;
    if (volume_[v] > 0.0) density_[v] = 4.0 * mass[v] / volume_[v];
    if (!on_hull_[v]) interior_mass_ += mass[v];
  }
  // Duplicates alias their representative's density for convenient lookup.
  for (std::size_t v = 0; v < nv; ++v) {
    const auto rep = tri_->duplicate_of(static_cast<VertexId>(v));
    density_[v] = density_[static_cast<std::size_t>(rep)];
  }

  build_gradients();
}

void DensityField::build_gradients() {
  gradient_.assign(tri_->cell_storage_size(), Vec3{});
  // Per-cell constant gradients: solve the 3×3 system
  //   [x1−x0; x2−x0; x3−x0] · ∇ρ = [ρ1−ρ0; ρ2−ρ0; ρ3−ρ0]
  for (std::size_t i = 0; i < tri_->cell_storage_size(); ++i) {
    const auto c = static_cast<CellId>(i);
    if (!tri_->cell_alive(c) || tri_->is_infinite(c)) continue;
    const auto& t = tri_->cell(c);
    const auto p = tri_->cell_points(c);
    const Vec3 e1 = p[1] - p[0], e2 = p[2] - p[0], e3 = p[3] - p[0];
    const double d1 = density_[static_cast<std::size_t>(t.v[1])] -
                      density_[static_cast<std::size_t>(t.v[0])];
    const double d2 = density_[static_cast<std::size_t>(t.v[2])] -
                      density_[static_cast<std::size_t>(t.v[0])];
    const double d3 = density_[static_cast<std::size_t>(t.v[3])] -
                      density_[static_cast<std::size_t>(t.v[0])];
    const double det = e1.dot(e2.cross(e3));
    if (det == 0.0) continue;  // cannot happen for valid finite cells
    // Cramer via the reciprocal basis: ∇ρ = (d1·(e2×e3) + d2·(e3×e1)
    //                                        + d3·(e1×e2)) / det.
    gradient_[i] =
        (e2.cross(e3) * d1 + e3.cross(e1) * d2 + e1.cross(e2) * d3) / det;
  }
}

}  // namespace dtfe
