// pdtfe — command-line driver for the library.
//
//   pdtfe generate --out snap.bin [--kind halo|web|uniform] [--n 100000]
//                  [--box 64] [--blocks 4] [--seed 1]
//   pdtfe info     --in snap.bin
//   pdtfe render   --in snap.bin --out map.pgm [--grid 512]
//                  [--method march|walk|tess|cic] [--mc 1] [--adaptive 0]
//                  [--field density|velocity|vdiv|grad] [--smooth-ensemble N]
//                  [--metrics-out m.json] [--trace-out t.json]
//   pdtfe pipeline --in snap.bin [--ranks 8] [--fields 64] [--length 5]
//                  [--grid 64] [--kernel march|walk|tess]
//                  [--field density|velocity|vdiv|grad] [--smooth-ensemble N]
//                  [--balance 1] [--metrics-out m.json]
//                  [--trace-out t.json] [--report prefix]
//                  [--fault-plan spec] [--max-retries 3]
//                  [--comm-timeout-ms 2000] [--bad-particles reject|drop|clamp]
//                  [--threads N] [--compute-ahead N]
//   pdtfe launch   --in snap.bin [--ranks 3] [--transport socket] ...
//                  (pipeline with --transport defaulting to socket: spawns
//                  one worker process per rank; see README "Multi-process
//                  execution")
//   pdtfe lensing  --in snap.bin --out-prefix lens [--grid 256]
//                  [--length 8] [--sigma-crit-frac 4]
//   pdtfe spectrum --in snap.bin [--grid 64] [--bins 16]
//
// Observability (see README "Observability"): --metrics-out writes the merged
// counter/gauge/histogram snapshot as JSON; --trace-out writes a Chrome
// trace_event file loadable in chrome://tracing or Perfetto; --report writes
// <prefix>.json and <prefix>.csv with per-rank phase times plus the metrics
// snapshot. All default to off, leaving the hot paths unperturbed.
//
// Fault tolerance (see README "Fault tolerance"): --fault-plan injects
// deterministic rank kills and message corruption into the simulated MPI
// runtime (grammar in simmpi/fault.h); the pipeline's containment, retry,
// fallback, and recovery paths keep the run completing with every field.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/dtfe.h"
#include "dtfe/audit.h"
#include "dtfe/lensing.h"
#include "engine/multiproc.h"
#include "engine/phases.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/cli.h"
#include "util/image.h"
#include "util/stats.h"
#include "util/timer.h"

namespace {

using namespace dtfe;

/// Shared --metrics-out/--trace-out/--report handling: arms the global
/// registries before the work runs, exports the files afterwards.
struct ObsSession {
  std::string metrics_out, trace_out, report_prefix;

  explicit ObsSession(const CliArgs& args)
      : metrics_out(args.get("metrics-out", std::string{})),
        trace_out(args.get("trace-out", std::string{})),
        report_prefix(args.get("report", std::string{})) {
    if (metrics_enabled()) {
      obs::MetricsRegistry::global().reset();
      obs::MetricsRegistry::global().set_enabled(true);
    }
    if (!trace_out.empty()) {
      obs::TraceRecorder::global().clear();
      obs::TraceRecorder::global().set_enabled(true);
    }
  }

  bool metrics_enabled() const {
    return !metrics_out.empty() || !report_prefix.empty();
  }

  /// Write --metrics-out and --trace-out (the report is the caller's job:
  /// it needs the per-rank phase rows). Returns the merged snapshot.
  obs::MetricsSnapshot finish() {
    obs::MetricsSnapshot snap;
    if (metrics_enabled()) snap = obs::MetricsRegistry::global().snapshot();
    if (!metrics_out.empty()) {
      if (obs::write_metrics_json(metrics_out, snap))
        std::printf("wrote %s\n", metrics_out.c_str());
      else
        std::fprintf(stderr, "pdtfe: cannot write %s\n", metrics_out.c_str());
    }
    if (!trace_out.empty()) {
      if (obs::TraceRecorder::global().write_json(trace_out))
        std::printf("wrote %s (%zu events)\n", trace_out.c_str(),
                    obs::TraceRecorder::global().size());
      else
        std::fprintf(stderr, "pdtfe: cannot write %s\n", trace_out.c_str());
    }
    return snap;
  }
};

int usage() {
  std::fprintf(stderr,
               "usage: pdtfe "
               "<generate|info|render|pipeline|launch|lensing|spectrum> "
               "[--flags]\n       see the header of apps/pdtfe_main.cpp\n");
  return 2;
}

int cmd_generate(const CliArgs& args) {
  args.check_known({"out", "kind", "n", "box", "blocks", "seed"});
  const std::string out = args.get("out", std::string{});
  DTFE_CHECK_MSG(!out.empty(), "--out is required");
  const std::string kind = args.get("kind", std::string{"halo"});
  const auto n = static_cast<std::size_t>(args.get("n", 100000L));
  const double box = args.get("box", 64.0);
  const auto blocks = static_cast<std::size_t>(args.get("blocks", 4L));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", 1L));

  ParticleSet set;
  if (kind == "halo") {
    HaloModelOptions gen;
    gen.n_particles = n;
    gen.box_length = box;
    gen.n_halos = std::max<std::size_t>(8, n / 2500);
    gen.seed = seed;
    set = generate_halo_model(gen);
  } else if (kind == "web") {
    ZeldovichOptions gen;
    gen.grid = 64;
    gen.box_length = box;
    gen.seed = seed;
    set = generate_zeldovich(gen);
  } else if (kind == "uniform") {
    set = generate_uniform(n, box, seed);
  } else {
    std::fprintf(stderr, "unknown --kind %s\n", kind.c_str());
    return 2;
  }
  write_snapshot(out, set, blocks);
  std::printf("wrote %s: %zu particles, box %.1f, %zu^3 blocks\n", out.c_str(),
              set.size(), box, blocks);
  return 0;
}

int cmd_info(const CliArgs& args) {
  args.check_known({"in"});
  const auto header = read_snapshot_header(args.get("in", std::string{}));
  std::printf("particles: %llu\nbox:       %.3f\nmass:      %.3g\nblocks:    %zu\n",
              static_cast<unsigned long long>(header.n_particles),
              header.box_length, header.particle_mass, header.blocks.size());
  std::size_t lo = static_cast<std::size_t>(-1), hi = 0;
  for (const auto& b : header.blocks) {
    lo = std::min(lo, static_cast<std::size_t>(b.count));
    hi = std::max(hi, static_cast<std::size_t>(b.count));
  }
  std::printf("block particle counts: min %zu max %zu\n", lo, hi);
  return 0;
}

/// "map.pgm" + channel "vx" -> "map-vx.pgm" (suffix before the extension).
std::string channel_out_path(const std::string& out,
                             const std::string& channel) {
  const std::size_t dot = out.find_last_of('.');
  if (dot == std::string::npos) return out + "-" + channel;
  return out.substr(0, dot) + "-" + channel + out.substr(dot);
}

int cmd_render(const CliArgs& args) {
  args.check_known(
      {"in", "out", "grid", "method", "mc", "adaptive", "field",
       "smooth-ensemble", "use-simd", "metrics-out", "trace-out"});
  ObsSession obs_session(args);
  const CommonFieldFlags common = parse_common_field_flags(args, 512L);
  const ParticleSet set = read_snapshot(common.in);
  const std::size_t ng = common.grid;
  const std::string& method = common.method;
  const std::string out = args.get("out", std::string{"map.pgm"});
  FieldKind field = FieldKind::kDensity;
  int ensemble = 1;
  try {
    field = parse_field_kind(args.get("field", std::string{"density"}));
    ensemble = static_cast<int>(args.get("smooth-ensemble", 1L));
    if (ensemble < 1) throw Error("--smooth-ensemble must be >= 1");
    if (method == "cic" && field != FieldKind::kDensity)
      throw Error("--method cic renders density only");
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  FieldSpec spec;
  spec.origin = {0.0, 0.0};
  spec.length = set.box_length;
  spec.resolution = ng;
  spec.zmin = 0.0;
  spec.zmax = set.box_length;

  WallTimer timer;
  FieldGrid map;
  if (method == "cic") {
    map = FieldGrid(assign_surface_density(set, ng, AssignmentScheme::kCic));
  } else {
    // Any registered field kernel works here; --mc/--adaptive shape the
    // marching estimator and are ignored by the others.
    if (!engine::KernelRegistry::builtin().contains(method)) {
      std::fprintf(stderr, "unknown --method %s\n", method.c_str());
      return 2;
    }
    const engine::FieldCube cube(set.positions, set.particle_mass);
    std::printf("triangulated %zu particles in %.2f s\n", set.size(),
                timer.seconds());
    timer.reset();
    engine::KernelOptions kopt;
    kopt.marching.monte_carlo_samples = static_cast<int>(args.get("mc", 1L));
    kopt.marching.adaptive_max_depth =
        static_cast<int>(args.get("adaptive", 0L));
    kopt.marching.use_simd =
        parse_simd_mode(args.get("use-simd", std::string{"auto"}));
    engine::RenderRequest request{spec};
    request.field = field;
    request.smooth_ensemble = ensemble;
    engine::KernelStats stats;
    try {
      map = engine::KernelRegistry::builtin().create(method, kopt)->render(
          cube, request, nullptr, stats);
    } catch (const Error& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  std::printf("rendered %zux%zu (%s, %s) in %.2f s; grid mass %.0f of %.0f\n",
              ng, ng, method.c_str(), field_kind_name(field), timer.seconds(),
              map.sum() * spec.cell_size() * spec.cell_size(),
              set.total_mass());
  if (field == FieldKind::kDensity) {
    write_log_pgm(out, map.plane(0).values(), ng, ng);
    std::printf("wrote %s\n", out.c_str());
  } else {
    // Signed channels (velocity components, divergence, gradients): one
    // diverging map per channel, suffixed with the channel name.
    const std::vector<std::string> names = field_channel_names(field);
    for (std::size_t c = 0; c < map.channels(); ++c) {
      const Grid2D& plane = map.plane(c);
      double range = 0.0;
      for (const double v : plane.values())
        range = std::max(range, std::abs(v));
      const std::string path = channel_out_path(out, names[c]);
      write_diverging_ppm(path, plane.values(), ng, ng,
                          range > 0.0 ? range : 1.0);
      std::printf("wrote %s (sum %.6e)\n", path.c_str(), plane.sum());
    }
  }
  obs_session.finish();
  return 0;
}

int cmd_pipeline(const CliArgs& args, bool default_transport_socket = false) {
  args.check_known({"in", "ranks", "fields", "length", "grid", "kernel",
                    "field", "smooth-ensemble", "use-simd",
                    "balance", "metrics-out", "trace-out", "report",
                    "fault-plan", "max-retries", "comm-timeout-ms",
                    "bad-particles", "checkpoint-dir", "resume",
                    "item-deadline-ms", "audit", "audit-fatal", "threads",
                    "compute-ahead", "transport", "heartbeat-interval-ms",
                    "heartbeat-miss-limit", "worker-binary", "worker-rank",
                    "socket-path", "worker-metrics"});
  // Worker re-entry (engine/multiproc.h): a launcher spawned this process
  // as one rank of a socket-transport run. Everything beyond the bootstrap
  // flags arrives over the wire, so dispatch before any CLI-driven setup.
  if (args.has("worker-rank")) return engine::run_worker_from_cli(args);
  ObsSession obs_session(args);
  // Crash diagnostics are on from the first byte read: a hard fault anywhere
  // in the run prints the in-flight items and a backtrace. Re-invoked below
  // once the report prefix is known, to arm the partial-report flush.
  install_crash_handler();

  engine::EngineConfig cfg;
  try {
    cfg = engine::EngineConfig::from_cli(args);
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (default_transport_socket && !args.has("transport"))
    cfg.transport.kind = engine::TransportKind::kSocket;
  const bool socket = cfg.transport.kind == engine::TransportKind::kSocket;
  const PipelineOptions& opt = cfg.pipeline;

  const ParticleSet set = read_snapshot(cfg.snapshot);
  const auto groups = find_fof_groups(set);
  std::vector<engine::FieldRequest> requests;
  for (std::size_t i = 0; i < groups.size() && requests.size() < cfg.n_fields;
       ++i)
    requests.push_back({groups[i].center});
  std::printf("%zu field requests on FOF objects, %d ranks\n", requests.size(),
              cfg.ranks);
  if (opt.field != FieldKind::kDensity || opt.smooth_ensemble > 1)
    std::printf("field: %s (%zu channel(s), ensemble %d)\n",
                field_kind_name(opt.field), field_channels(opt.field),
                opt.smooth_ensemble);
  if (socket)
    std::printf("transport: socket (%d worker processes, heartbeat %d ms)\n",
                cfg.ranks, cfg.transport.heartbeat_interval_ms);

  install_crash_handler(obs_session.report_prefix.empty()
                            ? std::string{}
                            : obs_session.report_prefix + ".crash.json");
  if (!cfg.fault_plan.empty())
    std::printf("fault plan armed: %zu rule(s)\n", cfg.fault_plan.rules.size());

  obs::RunReport report;
  set_crash_report(&report);  // flushed (partially filled) on a hard fault
  WallTimer wall;
  engine::Engine eng(cfg);
  const std::vector<engine::FieldResult> fields = eng.run_batch(requests);

  // Aggregated across surviving ranks: which global field requests were
  // completed (and their grid checksums), plus the fault tallies.
  RunningStats busy;
  std::map<std::ptrdiff_t, double> field_sums;
  for (const engine::FieldResult& f : fields)
    if (f.completed) field_sums[f.request] = f.checksum;
  std::size_t tot_failed = 0, tot_fallback = 0, tot_recovered = 0;
  std::size_t tot_retries = 0, tot_lost = 0;
  std::size_t tot_replayed = 0, tot_cancelled = 0, tot_audit_violations = 0;
  std::size_t tot_audited = 0;
  SanitizeCounts bad_counts;
  std::set<int> dead_ranks;
  bool model_degenerate = false;
  for (const engine::RankRun& run : eng.last_rank_runs()) {
    const PipelineResult& res = run.result;
    busy.add(res.phases.total());
    tot_failed += res.items_failed;
    tot_fallback += res.items_fallback;
    tot_recovered += res.items_recovered;
    tot_retries += res.package_retries;
    tot_lost += res.packages_lost;
    tot_replayed += res.items_replayed;
    tot_cancelled += res.items_cancelled;
    tot_audit_violations += res.audit_violations;
    bad_counts.non_finite += res.bad_particles.non_finite;
    bad_counts.out_of_box += res.bad_particles.out_of_box;
    bad_counts.dropped += res.bad_particles.dropped;
    bad_counts.clamped += res.bad_particles.clamped;
    dead_ranks.insert(res.failed_ranks.begin(), res.failed_ranks.end());
    model_degenerate = model_degenerate || res.model.degenerate();
    std::vector<std::pair<std::string, std::string>> tags;
    for (const ItemRecord& it : res.items) {
      const std::string id = std::to_string(it.request_index);
      if (it.failed)
        tags.emplace_back("item_fail_" + id, it.fail_reason);
      if (it.cancelled) tags.emplace_back("item_cancelled_" + id, "deadline");
      if (it.replayed) tags.emplace_back("item_replayed_" + id, "checkpoint");
      // Per-item kernel health (dtfe.kernel.* counters broken out by item).
      if (!it.replayed && !it.failed)
        tags.emplace_back("item_kernel_" + id,
                          "failed_cells=" +
                              std::to_string(static_cast<long long>(
                                  it.kernel_failed_cells)) +
                              ";perturb_restarts=" +
                              std::to_string(static_cast<long long>(
                                  it.kernel_perturb_restarts)));
      if (!it.audit.empty()) {
        ++tot_audited;
        tags.emplace_back("item_audit_" + id, it.audit);
      }
    }
    if (!tags.empty()) report.add_rank_tags(run.rank, std::move(tags));
    report.add_rank_values(
        run.rank,
        {{engine::phases::kReportPartition, res.phases.partition},
         {engine::phases::kReportModel, res.phases.model},
         {engine::phases::kReportWorkShare, res.phases.work_share},
         {engine::phases::kReportTriangulate, res.phases.triangulate},
         {engine::phases::kReportRender, res.phases.render},
         {engine::phases::kReportRecover, res.phases.recover},
         {engine::phases::kReportTotal, res.phases.total()},
         {"local_items", static_cast<double>(res.local_items)},
         {"items_received", static_cast<double>(res.items_received)},
         {"items_failed", static_cast<double>(res.items_failed)},
         {"items_fallback", static_cast<double>(res.items_fallback)},
         {"items_recovered", static_cast<double>(res.items_recovered)}});
    std::printf("rank %2d: %3zu local, %3zu received, %zu failed, "
                "%zu fallback, %zu recovered, busy %.2fs\n",
                run.rank, res.local_items, res.items_received,
                res.items_failed, res.items_fallback, res.items_recovered,
                res.phases.total());
  }
  std::printf("busy: mean %.2fs max %.2fs (imbalance %.2f)\n", busy.mean(),
              busy.max(), busy.max() / std::max(busy.mean(), 1e-12));
  double checksum_total = 0.0;
  for (const auto& [id, sum] : field_sums) checksum_total += sum;
  std::printf("fields completed: %zu/%zu (failed %zu, recovered %zu, "
              "fallback %zu, retries %zu)\n",
              field_sums.size(), requests.size(), tot_failed, tot_recovered,
              tot_fallback, tot_retries);
  if (!opt.checkpoint_dir.empty())
    std::printf("checkpoint: %zu item(s) replayed from %s\n", tot_replayed,
                opt.checkpoint_dir.c_str());
  if (opt.item_deadline_ms >= 0.0)
    std::printf("watchdog: %zu item(s) cancelled\n", tot_cancelled);
  if (opt.audit.level != AuditLevel::kOff)
    std::printf("audit (%s): %zu item(s) audited, %zu violation(s)\n",
                audit_level_name(opt.audit.level), tot_audited,
                tot_audit_violations);
  std::printf("grid checksum total: %.9e\n", checksum_total);
  // Per-channel checksums (non-density fields only, so density output stays
  // byte-identical to the scalar pipeline's).
  std::vector<double> channel_sums;
  std::vector<std::string> channel_names;
  if (opt.field != FieldKind::kDensity) {
    channel_names = field_channel_names(opt.field);
    channel_sums.assign(channel_names.size(), 0.0);
    for (const engine::FieldResult& f : fields) {
      if (!f.completed) continue;
      for (std::size_t c = 0;
           c < f.grid.channels() && c < channel_sums.size(); ++c)
        channel_sums[c] += f.grid.plane_sum(c);
    }
    for (std::size_t c = 0; c < channel_names.size(); ++c)
      std::printf("field checksum %s: %.9e\n", channel_names[c].c_str(),
                  channel_sums[c]);
  }
  const simmpi::TransportStats wire = eng.last_wire_stats();
  if (socket && wire.messages > 0)
    std::printf("wire: %llu messages, mean latency %.1f us, "
                "mean payload %.0f bytes\n",
                static_cast<unsigned long long>(wire.messages),
                1e6 * wire.mean_latency_s(), wire.mean_bytes());
  if (!dead_ranks.empty()) {
    std::printf("ranks failed:");
    for (const int r : dead_ranks) std::printf(" %d", r);
    std::printf("\n");
  }
  const obs::MetricsSnapshot snap = obs_session.finish();
  if (!obs_session.report_prefix.empty()) {
    report.add_summary("ranks", cfg.ranks);
    report.add_summary("fields", static_cast<double>(requests.size()));
    report.add_summary("fields_completed",
                       static_cast<double>(field_sums.size()));
    report.add_summary("wall_s", wall.seconds());
    report.add_summary("busy_mean_s", busy.mean());
    report.add_summary("busy_max_s", busy.max());
    report.add_summary("items_failed", static_cast<double>(tot_failed));
    report.add_summary("items_fallback", static_cast<double>(tot_fallback));
    report.add_summary("items_recovered", static_cast<double>(tot_recovered));
    report.add_summary("package_retries", static_cast<double>(tot_retries));
    report.add_summary("packages_lost", static_cast<double>(tot_lost));
    report.add_summary("bad_particles_dropped",
                       static_cast<double>(bad_counts.dropped));
    report.add_summary("bad_particles_clamped",
                       static_cast<double>(bad_counts.clamped));
    report.add_summary("ranks_failed", static_cast<double>(dead_ranks.size()));
    report.add_summary("model_degenerate", model_degenerate ? 1.0 : 0.0);
    report.add_summary("items_replayed", static_cast<double>(tot_replayed));
    report.add_summary("items_cancelled", static_cast<double>(tot_cancelled));
    report.add_summary("items_audited", static_cast<double>(tot_audited));
    report.add_summary("audit_violations",
                       static_cast<double>(tot_audit_violations));
    report.add_summary("grid_checksum_total", checksum_total);
    for (std::size_t c = 0; c < channel_names.size(); ++c)
      report.add_summary("field_checksum_" + channel_names[c],
                         channel_sums[c]);
    report.add_summary("transport_socket", socket ? 1.0 : 0.0);
    if (socket && wire.messages > 0) {
      // Measured wire costs: the inputs framework/des reads back via
      // load_des_calibration to ground the simulator in real latencies.
      double intercept_s = 0.0, seconds_per_byte = 0.0;
      wire.fit(intercept_s, seconds_per_byte);
      report.add_summary("transport_messages",
                         static_cast<double>(wire.messages));
      report.add_summary("transport_msg_latency_mean_s",
                         wire.mean_latency_s());
      report.add_summary("transport_bytes_per_msg", wire.mean_bytes());
      report.add_summary("transport_latency_intercept_s", intercept_s);
      report.add_summary("transport_seconds_per_byte", seconds_per_byte);
    }
    report.set_metrics(snap);
    const std::string jpath = obs_session.report_prefix + ".json";
    const std::string cpath = obs_session.report_prefix + ".csv";
    if (report.write_json(jpath) && report.write_csv(cpath))
      std::printf("wrote %s %s\n", jpath.c_str(), cpath.c_str());
    else
      std::fprintf(stderr, "pdtfe: cannot write report %s/.csv\n",
                   jpath.c_str());
  }
  set_crash_report(nullptr);  // report goes out of scope below
  return 0;
}

int cmd_lensing(const CliArgs& args) {
  args.check_known({"in", "out-prefix", "grid", "length", "sigma-crit-frac"});
  const CommonFieldFlags common = parse_common_field_flags(args, 256L, 8.0);
  const ParticleSet set = read_snapshot(common.in);
  const std::size_t ng = common.grid;
  const double length = common.length;
  const std::string prefix = args.get("out-prefix", std::string{"lens"});

  const auto groups = find_fof_groups(set);
  DTFE_CHECK_MSG(!groups.empty(), "no FOF objects found");
  const Vec3 target = groups[0].center;
  const engine::FieldCube cube(extract_cube(set, target, 1.3 * length),
                               set.particle_mass);
  const FieldSpec spec = FieldSpec::centered(target, length, ng);
  engine::KernelStats stats;
  // Lensing maps are a density-only product: the default RenderRequest
  // renders the single density plane.
  const Grid2D sigma = engine::KernelRegistry::builtin().create("march")
                           ->render(cube, engine::RenderRequest{spec},
                                    nullptr, stats)
                           .plane(0);

  RunningStats st;
  for (const double v : sigma.values()) st.add(v);
  LensingOptions lopt;
  lopt.sigma_critical = st.max() / args.get("sigma-crit-frac", 4.0);
  lopt.extent = length;
  const LensingMaps maps = compute_lensing_maps(sigma, lopt);
  write_log_pgm(prefix + "_kappa.pgm", maps.convergence.values(), ng, ng);
  write_diverging_ppm(prefix + "_shear1.ppm", maps.shear1.values(), ng, ng, 0.5);
  std::printf("wrote %s_kappa.pgm %s_shear1.ppm (kappa_max %.2f)\n",
              prefix.c_str(), prefix.c_str(), st.max() / lopt.sigma_critical);
  return 0;
}

int cmd_spectrum(const CliArgs& args) {
  args.check_known({"in", "grid", "bins"});
  const ParticleSet set = read_snapshot(args.get("in", std::string{}));
  const auto ng = static_cast<std::size_t>(args.get("grid", 64L));
  const auto bins = static_cast<std::size_t>(args.get("bins", 16L));
  const Grid3D g = assign_density_3d(set, ng, AssignmentScheme::kCic);
  const auto ps = measure_power_spectrum(g, set.box_length, bins);
  const double shot =
      std::pow(set.box_length, 3) / static_cast<double>(set.size());
  std::printf("%12s %14s %10s   (shot noise %.4g)\n", "k", "P(k)", "modes",
              shot);
  for (const auto& b : ps)
    if (b.modes)
      std::printf("%12.4f %14.6g %10zu\n", b.k, b.power, b.modes);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const dtfe::CliArgs args(argc, argv);
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "render") return cmd_render(args);
    if (cmd == "pipeline") return cmd_pipeline(args);
    if (cmd == "launch")
      return cmd_pipeline(args, /*default_transport_socket=*/true);
    if (cmd == "lensing") return cmd_lensing(args);
    if (cmd == "spectrum") return cmd_spectrum(args);
    return usage();
  } catch (const dtfe::Error& e) {
    std::fprintf(stderr, "pdtfe: %s\n", e.what());
    return 1;
  }
}
