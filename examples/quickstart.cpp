// Quickstart: generate a small clustered particle set, reconstruct a
// surface-density map with the DTFE marching kernel, and write it as an
// image.
//
//   $ ./quickstart [n_particles] [grid_resolution]
//
// Produces quickstart_map.pgm (log10 surface density) in the working
// directory and prints reconstruction statistics.
#include <cstdio>
#include <cstdlib>

#include "core/dtfe.h"
#include "util/image.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60000;
  const std::size_t ng = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 256;

  // A clustered box: a handful of NFW halos over a smooth background.
  dtfe::HaloModelOptions gen;
  gen.n_particles = n;
  gen.box_length = 50.0;
  gen.n_halos = 24;
  gen.background_fraction = 0.25;
  gen.seed = 7;
  const dtfe::ParticleSet set = dtfe::generate_halo_model(gen);
  std::printf("generated %zu particles in a (%.0f)^3 box\n", set.size(),
              set.box_length);

  // Build the DTFE stack (Delaunay triangulation + inverse-Voronoi-volume
  // densities + hull projection) ...
  dtfe::WallTimer timer;
  const dtfe::Reconstructor recon(set.positions, set.particle_mass);
  std::printf("triangulated in %.2f s (%zu cells)\n", timer.seconds(),
              recon.triangulation().num_cells());

  // ... and render the whole box's projected density on an Ng×Ng grid.
  dtfe::FieldSpec spec;
  spec.origin = {0.0, 0.0};
  spec.length = set.box_length;
  spec.resolution = ng;
  spec.zmin = 0.0;
  spec.zmax = set.box_length;

  timer.reset();
  dtfe::MarchingOptions opt;
  const dtfe::Grid2D map = recon.surface_density(spec, opt);
  std::printf("rendered %zux%zu surface density in %.2f s\n", ng, ng,
              timer.seconds());

  // Sanity: the integral of the map recovers (most of) the total mass.
  const double cell_area = spec.cell_size() * spec.cell_size();
  std::printf("mass recovered on grid: %.1f of %.1f\n", map.sum() * cell_area,
              set.total_mass());

  dtfe::write_log_pgm("quickstart_map.pgm", map.values(), ng, ng);
  std::printf("wrote quickstart_map.pgm\n");

  // Point queries work too:
  const dtfe::Vec3 center{25.0, 25.0, 25.0};
  std::printf("density at box center: %.3g, LOS integral there: %.3g\n",
              recon.density_at(center),
              recon.integrate_los(25.0, 25.0, 0.0, 50.0));
  return 0;
}
