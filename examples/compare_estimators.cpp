// Estimator comparison (paper Fig. 8): render the same volume with the
// first-order DTFE marching kernel and the zero-order Voronoi (TESS/DENSE)
// estimator, write both maps, their log10 ratio map, and the ratio
// histogram.
//
//   $ ./compare_estimators [n_particles] [grid]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/dtfe.h"
#include "util/image.h"
#include "util/rng.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80000;
  const std::size_t ng = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 192;

  dtfe::ZeldovichOptions gen;
  gen.grid = 64;
  gen.box_length = 32.0;
  gen.rms_displacement = 1.5;
  gen.seed = 9;
  dtfe::ParticleSet set = dtfe::generate_zeldovich(gen);
  if (set.size() > n) {
    // Random subsample (the generator emits lattice order; truncating would
    // keep a thin slab instead of a sparser box).
    dtfe::Rng rng(99);
    for (std::size_t i = set.positions.size(); i > 1; --i)
      std::swap(set.positions[i - 1], set.positions[rng.uniform_index(i)]);
    set.positions.resize(n);
  }
  std::printf("using %zu particles\n", set.size());

  const dtfe::Reconstructor recon(set.positions, set.particle_mass);

  dtfe::FieldSpec spec;
  spec.origin = {2.0, 2.0};
  spec.length = set.box_length - 4.0;
  spec.resolution = ng;
  spec.zmin = 2.0;
  spec.zmax = set.box_length - 2.0;

  std::printf("rendering DTFE (first order, marching)...\n");
  const dtfe::Grid2D dtfe_map = recon.surface_density(spec);
  std::printf("rendering TESS/DENSE (zero order, Voronoi)...\n");
  dtfe::TessOptions topt;
  topt.z_resolution = ng;
  const dtfe::Grid2D tess_map = recon.surface_density_zero_order(spec, topt);

  dtfe::write_log_pgm("estimator_dtfe.pgm", dtfe_map.values(), ng, ng);
  dtfe::write_log_pgm("estimator_tess.pgm", tess_map.values(), ng, ng);

  // Ratio map + histogram, exactly the paper's diagnostics.
  std::vector<double> ratio(dtfe_map.size(), 0.0);
  dtfe::Histogram hist(-2.0, 2.0, 41);
  for (std::size_t i = 0; i < ratio.size(); ++i) {
    const double a = dtfe_map.flat(i), b = tess_map.flat(i);
    if (a > 0.0 && b > 0.0) {
      ratio[i] = std::log10(a / b);
      hist.add(ratio[i]);
    }
  }
  dtfe::write_diverging_ppm("estimator_ratio.ppm", ratio, ng, ng, 2.0);
  std::printf("wrote estimator_dtfe.pgm estimator_tess.pgm estimator_ratio.ppm\n");
  std::printf("\nlog10(DTFE/DENSE) histogram:\n%s", hist.render().c_str());
  std::printf("mode bin center: %+0.3f (0 = estimators agree)\n",
              hist.bin_center(hist.mode_bin()));
  return 0;
}
