// Arbitrary projection directions (paper §IV-A-2: "any arbitrary direction
// can be chosen by a simple rotation of the triangulation"): render the same
// clustered box along z, x, and an oblique diagonal, plus an adaptively
// refined version of the oblique view.
//
//   $ ./projected_views [n_particles]
#include <cstdio>
#include <cstdlib>

#include "core/dtfe.h"
#include "util/image.h"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40000;

  dtfe::HaloModelOptions gen;
  gen.n_particles = n;
  gen.box_length = 40.0;
  gen.n_halos = 16;
  gen.seed = 21;
  const dtfe::ParticleSet set = dtfe::generate_halo_model(gen);
  const dtfe::Reconstructor recon(set.positions, set.particle_mass);
  std::printf("reconstructed %zu particles\n", set.size());

  const std::size_t ng = 256;
  auto render_along = [&](const dtfe::Vec3& dir, const char* file) {
    // Rotate the triangulation so `dir` becomes the line of sight, then
    // frame the whole rotated cloud.
    const dtfe::Reconstructor view = recon.rotated_for_direction(dir);
    dtfe::FieldSpec spec;
    spec.origin = {view.hull().lo().x, view.hull().lo().y};
    spec.length = std::max(view.hull().hi().x - view.hull().lo().x,
                           view.hull().hi().y - view.hull().lo().y);
    spec.resolution = ng;
    const dtfe::Grid2D map = view.surface_density(spec);
    dtfe::write_log_pgm(file, map.values(), ng, ng);
    std::printf("wrote %-28s (direction %+0.2f %+0.2f %+0.2f, total mass on "
                "grid %.0f)\n",
                file, dir.x, dir.y, dir.z,
                map.sum() * spec.cell_size() * spec.cell_size());
    return spec;
  };

  render_along({0, 0, 1}, "view_along_z.pgm");
  render_along({1, 0, 0}, "view_along_x.pgm");
  const auto spec = render_along({1, 1, 1}, "view_oblique.pgm");

  // Dynamic grid spacing on the oblique view: refine cells whose corner
  // integrals disagree (resolves halo cores a fixed grid misses).
  const dtfe::Reconstructor view = recon.rotated_for_direction({1, 1, 1});
  dtfe::MarchingOptions adaptive;
  adaptive.adaptive_max_depth = 3;
  const dtfe::Grid2D refined = view.surface_density(spec, adaptive);
  dtfe::write_log_pgm("view_oblique_adaptive.pgm", refined.values(), ng, ng);
  std::printf("wrote view_oblique_adaptive.pgm (adaptive refinement depth 3)\n");
  return 0;
}
