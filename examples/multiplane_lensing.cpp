// Multiplane lensing workload (paper §V-3): surface-density fields stacked
// along observer lines of sight through the full volume — a mixture of high
// and low density sub-volumes, the configuration where the paper observes
// the best work-sharing efficiency.
//
//   $ ./multiplane_lensing [n_ranks] [n_los] [planes_per_los]
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "core/dtfe.h"
#include "util/rng.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::size_t n_los = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 12;
  const std::size_t planes = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 6;

  dtfe::ZeldovichOptions gen;
  gen.grid = 64;  // 64^3 = 262k particles of cosmic web (FFT needs a power of 2)
  gen.box_length = 64.0;
  gen.rms_displacement = 1.6;
  gen.seed = 5;
  const dtfe::ParticleSet set = dtfe::generate_zeldovich(gen);
  std::printf("generated %zu Zel'dovich particles\n", set.size());

  // Lines of sight: random (x, y) columns, fields stacked in z — every LOS
  // pierces dense knots and empty voids alike.
  dtfe::Rng rng(3);
  std::vector<dtfe::Vec3> centers;
  for (std::size_t l = 0; l < n_los; ++l) {
    const double x = rng.uniform(0.0, set.box_length);
    const double y = rng.uniform(0.0, set.box_length);
    for (std::size_t p = 0; p < planes; ++p)
      centers.push_back(
          {x, y,
           (static_cast<double>(p) + 0.5) * set.box_length /
               static_cast<double>(planes)});
  }
  std::printf("%zu lines of sight × %zu planes = %zu fields\n", n_los, planes,
              centers.size());

  dtfe::PipelineOptions opt;
  opt.field_length = 6.0;
  opt.field_resolution = 48;
  opt.load_balance = true;

  std::mutex mtx;
  dtfe::RunningStats busy;
  std::size_t total_shared = 0;
  dtfe::simmpi::run(ranks, [&](dtfe::simmpi::Comm& comm) {
    const dtfe::PipelineResult res =
        dtfe::run_pipeline(comm, set, centers, opt);
    std::lock_guard<std::mutex> lock(mtx);
    busy.add(res.phases.total());
    total_shared += res.items_sent;
    std::printf("rank %2d: %3zu local + %3zu received items, busy %.2fs\n",
                comm.rank(), res.local_items, res.items_received,
                res.phases.total());
  });

  std::printf("\n%zu of %zu items were shared between ranks\n", total_shared,
              centers.size());
  std::printf("busy time: mean %.2fs max %.2fs std %.2fs (max/mean %.2f)\n",
              busy.mean(), busy.max(), busy.stddev(),
              busy.max() / std::max(busy.mean(), 1e-9));
  return 0;
}
