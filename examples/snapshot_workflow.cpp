// End-to-end snapshot workflow (paper §IV-B): write a blocked snapshot the
// way a volume-decomposed N-body code would, then run the distributed
// pipeline off the file — each rank reads an arbitrary subset of blocks
// (round-robin), redistributes to owners, exchanges ghosts, and computes its
// fields with load balancing.
//
//   $ ./snapshot_workflow [n_ranks]
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "core/dtfe.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 6;
  const char* path = "snapshot_demo.bin";

  // "Simulation output": a clustered box written as 4³ spatially contiguous
  // blocks, one per writing rank of the pretend simulation.
  dtfe::HaloModelOptions gen;
  gen.n_particles = 60000;
  gen.box_length = 48.0;
  gen.n_halos = 24;
  gen.seed = 5;
  const dtfe::ParticleSet set = dtfe::generate_halo_model(gen);
  dtfe::write_snapshot(path, set, 4);
  const auto header = dtfe::read_snapshot_header(path);
  std::printf("wrote %s: %llu particles in %zu blocks\n", path,
              static_cast<unsigned long long>(header.n_particles),
              header.blocks.size());

  // Field requests at the most massive objects.
  const auto groups = dtfe::find_fof_groups(set);
  std::vector<dtfe::Vec3> centers;
  for (std::size_t i = 0; i < groups.size() && centers.size() < 20; ++i)
    centers.push_back(groups[i].center);

  dtfe::PipelineOptions opt;
  opt.field_length = 4.0;
  opt.field_resolution = 48;
  opt.keep_grids = true;

  std::mutex mtx;
  dtfe::RunningStats busy;
  double total_mass = 0.0;
  dtfe::simmpi::run(ranks, [&](dtfe::simmpi::Comm& comm) {
    const auto res = dtfe::run_pipeline_from_snapshot(comm, path, centers, opt);
    std::lock_guard<std::mutex> lock(mtx);
    busy.add(res.phases.total());
    const double area = opt.field_length / opt.field_resolution *
                        opt.field_length / opt.field_resolution;
    for (const auto& g : res.grids) total_mass += g.sum() * area;
    std::printf("rank %d: read+owned %zu particles (+%zu ghosts), computed "
                "%zu fields\n",
                comm.rank(), res.owned_particles, res.ghost_particles,
                res.items.size());
  });

  std::printf("\n%zu fields hold %.0f particle masses in total; busy "
              "mean/max = %.2f/%.2f s\n",
              centers.size(), total_mass, busy.mean(), busy.max());
  std::remove(path);
  return 0;
}
