// The paper's motivating end-to-end use: from N-body particles to strong-
// lensing observables. Reconstruct the surface density of the most massive
// cluster with the DTFE marching kernel, then derive the thin-lens maps
// (convergence, deflection, shear, magnification) and report the
// strong-lensing cross-section.
//
//   $ ./lensing_pipeline [n_particles]
#include <cstdio>
#include <cstdlib>

#include "core/dtfe.h"
#include "dtfe/lensing.h"
#include "util/image.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80000;

  dtfe::HaloModelOptions gen;
  gen.n_particles = n;
  gen.box_length = 64.0;
  gen.n_halos = 32;
  gen.seed = 17;
  const dtfe::ParticleSet set = dtfe::generate_halo_model(gen);

  const auto groups = dtfe::find_fof_groups(set);
  const dtfe::Vec3 target = groups.at(0).center;
  std::printf("lensing the most massive object (%zu member particles)\n",
              groups[0].size());

  // Sub-volume reconstruction, exactly as the distributed pipeline does it.
  const double field_length = 8.0;
  const auto cube = dtfe::extract_cube(set, target, 1.3 * field_length);
  const dtfe::Reconstructor recon(cube, set.particle_mass);
  const std::size_t ng = 256;
  const dtfe::FieldSpec spec =
      dtfe::FieldSpec::centered(target, field_length, ng);
  const dtfe::Grid2D sigma = recon.surface_density(spec);
  dtfe::write_log_pgm("lens_sigma.pgm", sigma.values(), ng, ng);

  // Thin lens: pick Σ_crit so the cluster is supercritical in its core
  // (κ_max ~ a few), as in a strong-lensing configuration.
  dtfe::RunningStats st;
  for (const double v : sigma.values()) st.add(v);
  dtfe::LensingOptions lopt;
  lopt.sigma_critical = st.max() / 4.0;
  lopt.extent = field_length;
  const dtfe::LensingMaps maps = dtfe::compute_lensing_maps(sigma, lopt);

  dtfe::write_log_pgm("lens_kappa.pgm", maps.convergence.values(), ng, ng);
  dtfe::write_diverging_ppm("lens_shear1.ppm", maps.shear1.values(), ng, ng,
                            0.5);
  // log |μ| shows the critical curves as bright ridges
  std::vector<double> logmu(maps.magnification.size());
  for (std::size_t i = 0; i < logmu.size(); ++i)
    logmu[i] = std::log10(std::abs(maps.magnification.flat(i)));
  dtfe::write_pgm("lens_magnification.pgm", logmu, ng, ng, -1.0, 3.0);
  std::printf("wrote lens_sigma.pgm lens_kappa.pgm lens_shear1.ppm "
              "lens_magnification.pgm\n");

  // Strong-lensing diagnostics.
  std::size_t supercritical = 0, high_mu = 0;
  for (std::size_t i = 0; i < maps.convergence.size(); ++i) {
    if (maps.convergence.flat(i) > 1.0) ++supercritical;
    if (std::abs(maps.magnification.flat(i)) > 10.0) ++high_mu;
  }
  const double cell_area = spec.cell_size() * spec.cell_size();
  std::printf("κ_max = %.2f; supercritical area %.2f (Mpc/h)², |μ|>10 area "
              "%.2f (Mpc/h)²\n",
              st.max() / lopt.sigma_critical,
              static_cast<double>(supercritical) * cell_area,
              static_cast<double>(high_mu) * cell_area);
  return 0;
}
