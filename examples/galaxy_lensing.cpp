// Galaxy-galaxy lensing workload (paper §V-3): compute many surface-density
// fields centered on the most massive objects of a clustered simulation,
// distributed over message-passing ranks with a-priori load balancing.
//
//   $ ./galaxy_lensing [n_ranks] [n_fields]
//
// Prints the per-phase busy times and the balance achieved, and writes the
// densest field as galaxy_field.pgm.
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "core/dtfe.h"
#include "util/image.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::size_t n_fields =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 48;

  // Clustered box (the regime where load imbalance bites).
  dtfe::HaloModelOptions gen;
  gen.n_particles = 120000;
  gen.box_length = 64.0;
  gen.n_halos = 48;
  gen.seed = 11;
  const dtfe::ParticleSet set = dtfe::generate_halo_model(gen);

  // "Galaxy positions": the centers of the most massive FOF groups.
  dtfe::FofOptions fof;
  fof.linking_parameter = 0.2;
  fof.min_group_size = 32;
  const auto groups = dtfe::find_fof_groups(set, fof);
  std::printf("FOF found %zu groups; centering %zu fields on the largest\n",
              groups.size(), n_fields);
  std::vector<dtfe::Vec3> centers;
  for (std::size_t i = 0; i < groups.size() && centers.size() < n_fields; ++i)
    centers.push_back(groups[i].center);

  dtfe::PipelineOptions opt;
  opt.field_length = 5.0;
  opt.field_resolution = 64;
  opt.load_balance = true;
  opt.keep_grids = true;

  std::mutex mtx;
  dtfe::RunningStats busy;
  dtfe::Grid2D densest;
  double densest_sum = -1.0;
  dtfe::simmpi::run(ranks, [&](dtfe::simmpi::Comm& comm) {
    const dtfe::PipelineResult res =
        dtfe::run_pipeline(comm, set, centers, opt);
    std::lock_guard<std::mutex> lock(mtx);
    busy.add(res.phases.total());
    std::printf(
        "rank %2d: items local=%zu sent=%zu recv=%zu | partition %.2fs "
        "model %.2fs tri %.2fs render %.2fs share %.2fs\n",
        comm.rank(), res.local_items, res.items_sent, res.items_received,
        res.phases.partition, res.phases.model, res.phases.triangulate,
        res.phases.render, res.phases.work_share);
    for (std::size_t i = 0; i < res.grids.size(); ++i)
      if (res.grids[i].sum() > densest_sum) {
        densest_sum = res.grids[i].sum();
        densest = res.grids[i].plane(0);
      }
  });

  std::printf("\nper-rank busy time: mean %.2fs  max %.2fs  std %.2fs\n",
              busy.mean(), busy.max(), busy.stddev());
  if (densest.size() > 0) {
    dtfe::write_log_pgm("galaxy_field.pgm", densest.values(), densest.nx(),
                        densest.ny());
    std::printf("wrote galaxy_field.pgm (densest field)\n");
  }
  return 0;
}
