// Kernel ablations: marching vs walking vs zero-order per rendered cell,
// Monte Carlo sampling counts, walking z-resolution sweep (the cost knob the
// marching kernel eliminates), the Plücker-vs-Möller march, and the
// vertical-crossing-test A/B (AoS vs SoA coefficient tables vs SIMD).
#include <benchmark/benchmark.h>

#include <array>
#include <cstdint>
#include <vector>

#include "core/reconstructor.h"
#include "dtfe/march_tables.h"
#include "geometry/ray_tetra.h"
#include "geometry/tetra_coef.h"
#include "nbody/generators.h"
#include "util/simd.h"

namespace dtfe {
namespace {

const Reconstructor& shared_recon() {
  static const Reconstructor* recon = [] {
    HaloModelOptions gen;
    gen.n_particles = 30000;
    gen.box_length = 10.0;
    gen.n_halos = 12;
    gen.seed = 4;
    const auto set = generate_halo_model(gen);
    return new Reconstructor(set.positions, set.particle_mass);
  }();
  return *recon;
}

FieldSpec bench_spec(std::size_t ng) {
  FieldSpec spec;
  spec.origin = {1.0, 1.0};
  spec.length = 8.0;
  spec.resolution = ng;
  spec.zmin = 1.0;
  spec.zmax = 9.0;
  return spec;
}

void BM_MarchingRender(benchmark::State& state) {
  const auto& recon = shared_recon();
  const auto spec = bench_spec(static_cast<std::size_t>(state.range(0)));
  MarchingOptions opt;
  opt.monte_carlo_samples = static_cast<int>(state.range(1));
  for (auto _ : state)
    benchmark::DoNotOptimize(recon.surface_density(spec, opt).sum());
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_MarchingRender)
    ->Args({32, 1})
    ->Args({64, 1})
    ->Args({64, 4})
    ->Unit(benchmark::kMillisecond);

// --use-simd=off twin of BM_MarchingRender/64/1: the render-level A/B the
// bench report derives its simd speedup context from.
void BM_MarchingRenderNoSimd(benchmark::State& state) {
  const auto& recon = shared_recon();
  const auto spec = bench_spec(64);
  MarchingOptions opt;
  opt.use_simd = SimdMode::kOff;
  for (auto _ : state)
    benchmark::DoNotOptimize(recon.surface_density(spec, opt).sum());
  state.SetItemsProcessed(state.iterations() * 64 * 64);
}
BENCHMARK(BM_MarchingRenderNoSimd)->Unit(benchmark::kMillisecond);

void BM_MarchingRenderMoller(benchmark::State& state) {
  const auto& recon = shared_recon();
  const auto spec = bench_spec(64);
  MarchingOptions opt;
  opt.use_moller_trumbore = true;
  for (auto _ : state)
    benchmark::DoNotOptimize(recon.surface_density(spec, opt).sum());
  state.SetItemsProcessed(state.iterations() * 64 * 64);
}
BENCHMARK(BM_MarchingRenderMoller)->Unit(benchmark::kMillisecond);

void BM_WalkingRender(benchmark::State& state) {
  const auto& recon = shared_recon();
  const auto spec = bench_spec(64);
  WalkingOptions opt;
  opt.z_resolution = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(recon.surface_density_walking(spec, opt).sum());
  state.SetItemsProcessed(state.iterations() * 64 * 64);
}
BENCHMARK(BM_WalkingRender)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_ZeroOrderRender(benchmark::State& state) {
  const auto& recon = shared_recon();
  const auto spec = bench_spec(64);
  TessOptions opt;
  opt.z_resolution = 64;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        recon.surface_density_zero_order(spec, opt).sum());
}
BENCHMARK(BM_ZeroOrderRender)->Unit(benchmark::kMillisecond);

// ---- vertical crossing test A/B ------------------------------------------
// The marching hot loop is one crossing test per tetra step. These benches
// classify the SAME crossings four ways: the pre-table AoS geometry test
// (the old production path, kept as oracle), the scalar SoA coefficient
// form, the edge-parallel SIMD form, and the ray-parallel batch (4 rays ×
// one tetra, as march_tile issues it). items == crossing tests, so
// items_per_second ratios are the speedups run_bench records.
struct CrossingFixture {
  std::vector<std::array<Vec3, 4>> tets;
  std::vector<VerticalTetraCoef> coef;
  std::vector<Vec2> xi;
  std::vector<int> entry;
  // Per tetra: 4 rays inside its silhouette + their entry faces, the batch
  // route's natural unit of work.
  std::vector<std::array<double, 4>> xs, ys;
  std::vector<std::array<int, 4>> entry4;
};

const CrossingFixture& crossing_fixture() {
  static const CrossingFixture* fx = [] {
    auto* f = new CrossingFixture;
    std::uint64_t s = 0x5eedULL;
    auto unit = [&s] {
      s ^= s << 13;
      s ^= s >> 7;
      s ^= s << 17;
      return static_cast<double>(s >> 11) * 0x1.0p-53;
    };
    while (f->tets.size() < 4096) {
      std::array<Vec3, 4> v;
      for (auto& p : v)
        p = {unit() * 10.0, unit() * 10.0, unit() * 10.0};
      const Vec2 cen{(v[0].x + v[1].x + v[2].x + v[3].x) * 0.25,
                     (v[0].y + v[1].y + v[2].y + v[3].y) * 0.25};
      const VerticalTetraCoef c = make_vertical_coef(v);
      double sp[6];
      coef_edge_products(c, cen, sp);
      const VerticalSpan span = coef_vertical_span(c, sp);
      if (!span.intersects || span.degenerate) continue;  // sliver: skip
      std::array<double, 4> lx, ly;
      std::array<int, 4> le;
      bool ok = true;
      for (int l = 0; l < 4 && ok; ++l) {
        // Midpoint of centroid and vertex l's projection: strictly inside
        // the silhouette (convex), distinct per lane.
        lx[static_cast<std::size_t>(l)] = 0.5 * (cen.x + v[static_cast<std::size_t>(l)].x);
        ly[static_cast<std::size_t>(l)] = 0.5 * (cen.y + v[static_cast<std::size_t>(l)].y);
        double ls[6];
        coef_edge_products(c, {lx[static_cast<std::size_t>(l)], ly[static_cast<std::size_t>(l)]}, ls);
        const VerticalSpan lsp = coef_vertical_span(c, ls);
        if (!lsp.intersects || lsp.degenerate) ok = false;
        else le[static_cast<std::size_t>(l)] = lsp.enter_face;
      }
      if (!ok) continue;
      f->tets.push_back(v);
      f->coef.push_back(c);
      f->xi.push_back(cen);
      f->entry.push_back(span.enter_face);
      f->xs.push_back(lx);
      f->ys.push_back(ly);
      f->entry4.push_back(le);
    }
    return f;
  }();
  return *fx;
}

void BM_VerticalCrossingAos(benchmark::State& state) {
  const auto& fx = crossing_fixture();
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i < fx.tets.size(); ++i) {
      const VerticalExit ve =
          line_tetra_vertical_exit(fx.xi[i], fx.tets[i], fx.entry[i]);
      acc += ve.z_exit;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.tets.size()));
}
BENCHMARK(BM_VerticalCrossingAos);

void BM_VerticalCrossingCoef(benchmark::State& state) {
  const auto& fx = crossing_fixture();
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i < fx.coef.size(); ++i) {
      double s[6];
      coef_edge_products(fx.coef[i], fx.xi[i], s);
      const VerticalExit ve = coef_vertical_exit(fx.coef[i], s, fx.entry[i]);
      acc += ve.z_exit;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.coef.size()));
}
BENCHMARK(BM_VerticalCrossingCoef);

void BM_VerticalCrossingSimd(benchmark::State& state) {
  const auto& fx = crossing_fixture();
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i < fx.coef.size(); ++i) {
      double s[6];
      coef_edge_products_simd(fx.coef[i], fx.xi[i], s);
      const VerticalExit ve = coef_vertical_exit(fx.coef[i], s, fx.entry[i]);
      acc += ve.z_exit;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.coef.size()));
}
BENCHMARK(BM_VerticalCrossingSimd);

void BM_VerticalCrossingBatch(benchmark::State& state) {
  const auto& fx = crossing_fixture();
  static_assert(simd::kLanes == 4);
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i < fx.coef.size(); ++i) {
      double prod[6][simd::kLanes];
      coef_edge_products_batch(fx.coef[i], fx.xs[i].data(), fx.ys[i].data(),
                               prod);
      for (int l = 0; l < 4; ++l) {
        double s[6];
        for (int e = 0; e < 6; ++e) s[e] = prod[e][l];
        const VerticalExit ve = coef_vertical_exit(
            fx.coef[i], s, fx.entry4[i][static_cast<std::size_t>(l)]);
        acc += ve.z_exit;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.coef.size()) * 4);
}
BENCHMARK(BM_VerticalCrossingBatch);

void BM_IntegrateSingleLine(benchmark::State& state) {
  const auto& recon = shared_recon();
  double x = 1.0;
  for (auto _ : state) {
    x += 0.013;
    if (x > 9.0) x = 1.0;
    benchmark::DoNotOptimize(recon.integrate_los(x, 5.0, 1.0, 9.0));
  }
}
BENCHMARK(BM_IntegrateSingleLine);

}  // namespace
}  // namespace dtfe

// Custom main so the JSON "context" records which SIMD ISA the build
// carries — run_bench copies it into the host stanza of BENCH_kernel.json.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("simd_isa", dtfe::simd::isa_name());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
