// Kernel ablations: marching vs walking vs zero-order per rendered cell,
// Monte Carlo sampling counts, walking z-resolution sweep (the cost knob the
// marching kernel eliminates), and the Plücker-vs-Möller march.
#include <benchmark/benchmark.h>

#include "core/reconstructor.h"
#include "nbody/generators.h"

namespace dtfe {
namespace {

const Reconstructor& shared_recon() {
  static const Reconstructor* recon = [] {
    HaloModelOptions gen;
    gen.n_particles = 30000;
    gen.box_length = 10.0;
    gen.n_halos = 12;
    gen.seed = 4;
    const auto set = generate_halo_model(gen);
    return new Reconstructor(set.positions, set.particle_mass);
  }();
  return *recon;
}

FieldSpec bench_spec(std::size_t ng) {
  FieldSpec spec;
  spec.origin = {1.0, 1.0};
  spec.length = 8.0;
  spec.resolution = ng;
  spec.zmin = 1.0;
  spec.zmax = 9.0;
  return spec;
}

void BM_MarchingRender(benchmark::State& state) {
  const auto& recon = shared_recon();
  const auto spec = bench_spec(static_cast<std::size_t>(state.range(0)));
  MarchingOptions opt;
  opt.monte_carlo_samples = static_cast<int>(state.range(1));
  for (auto _ : state)
    benchmark::DoNotOptimize(recon.surface_density(spec, opt).sum());
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_MarchingRender)
    ->Args({32, 1})
    ->Args({64, 1})
    ->Args({64, 4})
    ->Unit(benchmark::kMillisecond);

void BM_MarchingRenderMoller(benchmark::State& state) {
  const auto& recon = shared_recon();
  const auto spec = bench_spec(64);
  MarchingOptions opt;
  opt.use_moller_trumbore = true;
  for (auto _ : state)
    benchmark::DoNotOptimize(recon.surface_density(spec, opt).sum());
}
BENCHMARK(BM_MarchingRenderMoller)->Unit(benchmark::kMillisecond);

void BM_WalkingRender(benchmark::State& state) {
  const auto& recon = shared_recon();
  const auto spec = bench_spec(64);
  WalkingOptions opt;
  opt.z_resolution = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(recon.surface_density_walking(spec, opt).sum());
}
BENCHMARK(BM_WalkingRender)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_ZeroOrderRender(benchmark::State& state) {
  const auto& recon = shared_recon();
  const auto spec = bench_spec(64);
  TessOptions opt;
  opt.z_resolution = 64;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        recon.surface_density_zero_order(spec, opt).sum());
}
BENCHMARK(BM_ZeroOrderRender)->Unit(benchmark::kMillisecond);

void BM_IntegrateSingleLine(benchmark::State& state) {
  const auto& recon = shared_recon();
  double x = 1.0;
  for (auto _ : state) {
    x += 0.013;
    if (x > 9.0) x = 1.0;
    benchmark::DoNotOptimize(recon.integrate_los(x, 5.0, 1.0, 9.0));
  }
}
BENCHMARK(BM_IntegrateSingleLine);

}  // namespace
}  // namespace dtfe

BENCHMARK_MAIN();
