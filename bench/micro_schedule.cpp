// Scheduler component costs: CreateCommunicationList and the first-fit bin
// packer at paper-scale rank/item counts (the a-priori schedule must stay
// negligible next to the compute it balances).
#include <benchmark/benchmark.h>

#include "framework/des.h"
#include "framework/schedule.h"
#include "util/binpack.h"
#include "util/rng.h"

namespace dtfe {
namespace {

std::vector<RankWork> random_work(int P, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<RankWork> w(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r)
    w[static_cast<std::size_t>(r)] = {r, std::pow(rng.uniform(), 3.0) * 100.0};
  return w;
}

void BM_CreateCommunicationList(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  const auto work = random_work(P, 3);
  for (auto _ : state)
    benchmark::DoNotOptimize(create_communication_list(work, P / 2));
  state.SetItemsProcessed(state.iterations() * P);
}
BENCHMARK(BM_CreateCommunicationList)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMicrosecond);

void BM_FirstFitPacking(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  std::vector<double> items(n), bins(n / 4 + 1);
  for (auto& x : items) x = rng.uniform(0.1, 2.0);
  for (auto& b : bins) b = rng.uniform(1.0, 8.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(pack_first_fit(items, bins).overflow);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FirstFitPacking)->Arg(64)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_DesSimulation(benchmark::State& state) {
  const auto P = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<std::vector<double>> items(P);
  for (auto& v : items) {
    const std::size_t n = 1 + rng.uniform_index(12);
    for (std::size_t i = 0; i < n; ++i) v.push_back(rng.uniform(0.1, 3.0));
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(
        simulate_work_sharing(items, items, {}).makespan_balanced);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(P));
}
BENCHMARK(BM_DesSimulation)->Arg(1024)->Arg(8192)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dtfe

BENCHMARK_MAIN();
