// Paper Fig. 11: histograms of the error made by the two work-prediction
// models (triangulation c·n·log2 n, interpolation α·n^β) against actual
// wall timings over all work items of the galaxy-galaxy experiment.
// Paper: "error distributions are symmetric with mean centered near zero."
#include <mutex>

#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace dtfe;
  bench::banner("Fig. 11 — workload model prediction error histograms");

  const std::size_t n_fields =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;
  const ParticleSet set = bench::planck_like_box(150000, 64.0, 11);
  const auto centers = bench::fof_centers(set, n_fields);
  std::printf("%zu work items over 8 ranks\n", centers.size());

  PipelineOptions opt;
  opt.field_length = 4.0;
  opt.field_resolution = 32;
  opt.load_balance = true;

  std::mutex mtx;
  std::vector<ItemRecord> all_items;
  WorkloadModel model;
  simmpi::run(8, [&](simmpi::Comm& comm) {
    const PipelineResult res = run_pipeline(comm, set, centers, opt);
    std::lock_guard<std::mutex> lock(mtx);
    all_items.insert(all_items.end(), res.items.begin(), res.items.end());
    model = res.model;
  });

  std::printf("fitted models: f_tri(n) = %.3g·n·log2(n), f_interp(n) = "
              "%.3g·n^%.3f\n\n",
              model.c_tri, model.interp.alpha, model.interp.beta);

  // Error normalized by the per-item mean actual time, so the histogram is
  // dimensionless (the paper plots raw seconds; the shape is the claim).
  RunningStats tri_mean, interp_mean;
  for (const auto& it : all_items) {
    tri_mean.add(it.actual_tri);
    interp_mean.add(it.actual_interp);
  }
  Histogram tri_err(-1.5, 1.5, 31), interp_err(-1.5, 1.5, 31);
  RunningStats tri_stats, interp_stats;
  for (const auto& it : all_items) {
    if (it.actual_tri <= 0.0 && it.actual_interp <= 0.0) continue;
    const double te =
        (it.predicted_tri - it.actual_tri) / std::max(tri_mean.mean(), 1e-12);
    const double ie = (it.predicted_interp - it.actual_interp) /
                      std::max(interp_mean.mean(), 1e-12);
    tri_err.add(te);
    interp_err.add(ie);
    tri_stats.add(te);
    interp_stats.add(ie);
  }

  std::printf("Triangulation model error (per mean item time):\n%s",
              tri_err.render().c_str());
  std::printf("mean %+0.3f std %.3f\n\n", tri_stats.mean(),
              tri_stats.stddev());
  std::printf("Interpolation model error (per mean item time):\n%s",
              interp_err.render().c_str());
  std::printf("mean %+0.3f std %.3f\n", interp_stats.mean(),
              interp_stats.stddev());
  std::printf("[paper: symmetric error distributions, mean near zero]\n");
  return 0;
}
