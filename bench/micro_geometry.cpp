// Micro-benchmarks for the geometric primitives: filtered vs fast vs exact
// predicates, and the two ray–tetra algorithms (the Plücker-vs-Möller
// ablation the paper motivates in §III-C-2).
#include <benchmark/benchmark.h>

#include "geometry/predicates.h"
#include "geometry/ray_tetra.h"
#include "util/rng.h"

namespace dtfe {
namespace {

std::vector<Vec3> random_vecs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> v(n);
  for (auto& p : v) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  return v;
}

void BM_Orient3dFiltered(benchmark::State& state) {
  const auto pts = random_vecs(4096, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(orient3d(pts[i & 4095], pts[(i + 1) & 4095],
                                      pts[(i + 2) & 4095],
                                      pts[(i + 3) & 4095]));
    ++i;
  }
}
BENCHMARK(BM_Orient3dFiltered);

void BM_Orient3dFast(benchmark::State& state) {
  const auto pts = random_vecs(4096, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(orient3d_fast(pts[i & 4095], pts[(i + 1) & 4095],
                                           pts[(i + 2) & 4095],
                                           pts[(i + 3) & 4095]));
    ++i;
  }
}
BENCHMARK(BM_Orient3dFast);

void BM_Orient3dExactFallback(benchmark::State& state) {
  // Coplanar input forces the expansion-arithmetic path every call.
  const Vec3 a{0, 0, 0}, b{1, 0, 1}, c{0, 1, 1};
  Rng rng(2);
  for (auto _ : state) {
    const double x = static_cast<double>(rng.uniform_index(1 << 20)) * 0x1p-20;
    const double y = static_cast<double>(rng.uniform_index(1 << 20)) * 0x1p-20;
    benchmark::DoNotOptimize(orient3d(a, b, c, {x, y, x + y}));
  }
}
BENCHMARK(BM_Orient3dExactFallback);

void BM_InsphereFiltered(benchmark::State& state) {
  const auto pts = random_vecs(4096, 3);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(insphere(pts[i & 4095], pts[(i + 1) & 4095],
                                      pts[(i + 2) & 4095], pts[(i + 3) & 4095],
                                      pts[(i + 4) & 4095]));
    ++i;
  }
}
BENCHMARK(BM_InsphereFiltered);

void BM_InsphereExactFallback(benchmark::State& state) {
  // Cospherical configuration: exact expansion path every call.
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0}, d{0, 0, 1};
  const Vec3 on{1, 1, 0};
  for (auto _ : state) benchmark::DoNotOptimize(insphere(a, b, c, d, on));
}
BENCHMARK(BM_InsphereExactFallback);

const std::array<Vec3, 4> kTet = {Vec3{0, 0, 0}, Vec3{1, 0, 0}, Vec3{0, 1, 0},
                                  Vec3{0, 0, 1}};

void BM_RayTetraPlucker(benchmark::State& state) {
  Rng rng(4);
  std::vector<Vec2> xis(1024);
  for (auto& x : xis) x = {rng.uniform(0.05, 0.4), rng.uniform(0.05, 0.4)};
  std::size_t i = 0;
  const Vec3 dir{0, 0, 1};
  for (auto _ : state) {
    const Vec3 origin{xis[i & 1023].x, xis[i & 1023].y, 0.0};
    benchmark::DoNotOptimize(line_tetra_plucker(
        PluckerLine::from_point_dir(origin, dir), origin, dir, kTet));
    ++i;
  }
}
BENCHMARK(BM_RayTetraPlucker);

void BM_RayTetraMoller(benchmark::State& state) {
  Rng rng(4);
  std::vector<Vec2> xis(1024);
  for (auto& x : xis) x = {rng.uniform(0.05, 0.4), rng.uniform(0.05, 0.4)};
  std::size_t i = 0;
  const Vec3 dir{0, 0, 1};
  for (auto _ : state) {
    const Vec3 origin{xis[i & 1023].x, xis[i & 1023].y, 0.0};
    benchmark::DoNotOptimize(line_tetra_moller(origin, dir, kTet));
    ++i;
  }
}
BENCHMARK(BM_RayTetraMoller);

}  // namespace
}  // namespace dtfe

BENCHMARK_MAIN();
