// Paper Fig. 1: "An example of a typical surface density field computed
// during a strong lensing study from an N-body particle simulation. The
// DTFE method was used to generate this 2048×2048 grid representing ~1.5
// million particles within a sub-volume."
//
// Scaled reproduction: the largest FOF object of a clustered box, rendered
// by the marching kernel onto a 512×512 grid. Writes fig01_field.pgm.
#include "fig_common.h"
#include "util/image.h"
#include "util/timer.h"

int main() {
  using namespace dtfe;
  bench::banner("Fig. 1 — example surface density field of the largest object");

  const ParticleSet set = bench::planck_like_box(200000, 64.0, 42);
  const auto centers = bench::fof_centers(set, 1);
  const Vec3 target = centers.at(0);
  std::printf("largest object at (%.1f, %.1f, %.1f)\n", target.x, target.y,
              target.z);

  // Sub-volume extraction with a ghost pad, as the pipeline does.
  const double field_length = 10.0;
  const auto cube = extract_cube(set, target, 1.3 * field_length);
  std::printf("sub-volume holds %zu particles\n", cube.size());

  WallTimer timer;
  const Reconstructor recon(cube, set.particle_mass);
  std::printf("triangulation: %.2f s (%zu cells)\n", timer.seconds(),
              recon.triangulation().num_cells());

  const FieldSpec spec = FieldSpec::centered(target, field_length, 512);
  timer.reset();
  const Grid2D field = recon.surface_density(spec);
  std::printf("marching render 512x512: %.2f s\n", timer.seconds());

  RunningStats st;
  for (const double v : field.values()) st.add(v);
  std::printf("surface density: min %.3g max %.3g mean %.3g (dynamic range "
              "%.1f dex)\n",
              st.min(), st.max(), st.mean(),
              std::log10(std::max(st.max(), 1e-300) /
                         std::max(st.min(), 1e-12)));
  write_log_pgm("fig01_field.pgm", field.values(), 512, 512);
  std::printf("wrote fig01_field.pgm\n");
  return 0;
}
