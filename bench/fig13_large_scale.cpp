// Paper Fig. 13: the large-scale experiment — 233,230 fields centered on
// the most massive objects of a 3200³-particle box, 4k–16k MPI ranks.
// Paper observes near-linear speedup until 16,384 ranks, where "a small
// number of degenerate point configurations on a few MPI processes made the
// model predicted execution time inaccurate and delayed sending work to
// idle processes" — the work-sharing speedup drops.
//
// Reproduction: the REAL scheduler (CreateCommunicationList + variable-size
// bin packing) drives a discrete-event simulation of the execution. Work
// items are field requests placed on the FOF objects of a generated
// clustered box; per-item costs come from the fitted workload model applied
// to the real per-item particle counts. At the largest scale a few items
// are given 25× under-predicted actual costs (the degenerate
// configurations), reproducing the diagnosed drop.
#include <algorithm>
#include <cstring>
#include <string>

#include "fig_common.h"
#include "framework/des.h"
#include "util/grid_index.h"

int main(int argc, char** argv) {
  using namespace dtfe;
  bench::banner("Fig. 13 — large-scale work sharing (discrete-event, 4k-16k ranks)");

  // --des-calibration=<report.json>: replace the hard-coded wire costs with
  // the measured ones a socket-transport pipeline run recorded (see
  // framework/des.h load_des_calibration). Remaining positional arg is the
  // field count.
  std::size_t n_fields = 120000;
  std::string calibration_path;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--des-calibration=", 18) == 0)
      calibration_path = a + 18;
    else
      n_fields = std::strtoull(a, nullptr, 10);
  }
  // A large box with MANY moderate halos: MiraU's 233k "most massive
  // objects" span a (1491 Mpc/h)³ volume, so their hosts are spread through
  // the box with a flat-ish mass spectrum rather than one monster cluster.
  HaloModelOptions gen;
  gen.n_particles = 400000;
  gen.box_length = 256.0;
  gen.n_halos = 2048;
  gen.mass_min_fraction = 0.05;
  gen.radius_fraction = 0.02;
  gen.background_fraction = 0.2;
  gen.seed = 99;
  const ParticleSet set = generate_halo_model(gen);
  std::printf("dataset: %zu particles; %zu field requests on massive "
              "objects\n", set.size(), n_fields);

  // Field centers: FOF objects plus satellite requests around them (the
  // paper's 233k most massive objects cluster strongly in space).
  auto centers = bench::fof_centers(set, std::min<std::size_t>(n_fields, 4096));
  Rng rng(17);
  const std::size_t n_seeds = centers.size();
  while (centers.size() < n_fields) {
    // Satellite requests scatter around the massive objects at the scale of
    // their host superstructures (MiraU's 233k objects fill the box's
    // overdense regions, not just the halo cores).
    const Vec3 base = centers[rng.uniform_index(n_seeds)];
    centers.push_back(wrap_periodic(
        base + Vec3{rng.normal(), rng.normal(), rng.normal()} * 16.0, 256.0));
  }

  // Per-item particle counts from the real spatial index; costs from a
  // workload model with realistic exponents (fit constants match the scaled
  // kernels measured by fig09; only relative shape matters here).
  const double cube_side = 6.0;
  const GridIndex index(set.positions, {0, 0, 0}, 256.0, 128, /*periodic=*/true);
  WorkloadModel model;
  model.c_tri = 2.5e-7;
  model.interp.alpha = 1.0e-6;
  model.interp.beta = 1.15;

  std::vector<double> item_cost(centers.size());
  for (std::size_t i = 0; i < centers.size(); ++i) {
    const auto n = static_cast<double>(
        index.count_in_cube(centers[i], cube_side));
    item_cost[i] = model.predict(std::clamp(n, 2000.0, 25000.0));
  }

  std::printf("\n%7s %12s %12s %10s %12s %10s\n", "ranks", "unbal(s)",
              "balanced(s)", "ideal(s)", "share-gain", "speedup");
  double t_first = 0.0;
  int p_first = 0;
  for (const std::size_t P : {4096u, 6144u, 8192u, 12288u, 16384u}) {
    // Spatial decomposition assigns items to ranks (imbalance appears
    // naturally as sub-volumes shrink below the clustering scale).
    const Decomposition decomp(static_cast<int>(P), 256.0);
    std::vector<std::vector<double>> actual(P), predicted(P);
    for (std::size_t i = 0; i < centers.size(); ++i) {
      const auto r = static_cast<std::size_t>(decomp.owner_of(centers[i]));
      actual[r].push_back(item_cost[i]);
      predicted[r].push_back(item_cost[i]);
    }

    // At the largest scale, inject the paper's degenerate configurations: on
    // a few of the HEAVIEST ranks (the senders), some items' true cost is
    // far beyond the model's prediction — their sends then go out late and
    // idle receivers wait, exactly the failure the paper diagnoses.
    if (P == 16384u) {
      std::vector<std::pair<double, std::size_t>> by_load;
      for (std::size_t r = 0; r < P; ++r) {
        double t = 0.0;
        for (double x : predicted[r]) t += x;
        by_load.push_back({t, r});
      }
      std::sort(by_load.rbegin(), by_load.rend());
      Rng deg(5);
      for (int k = 0; k < 8; ++k) {
        const std::size_t r = by_load[static_cast<std::size_t>(k)].second;
        for (int j = 0; j < 2 && !actual[r].empty(); ++j)
          actual[r][deg.uniform_index(actual[r].size())] *= 60.0;
      }
    }

    DesOptions des;
    des.message_latency = 2e-4;
    if (!calibration_path.empty()) {
      des = load_des_calibration(calibration_path);
      if (P == 4096u)
        std::printf("[calibrated from %s: message latency %.3g s, "
                    "%.3g s per unit sent]\n",
                    calibration_path.c_str(), des.message_latency,
                    des.seconds_per_unit_sent);
    }
    const DesResult res = simulate_work_sharing(actual, predicted, des);
    if (p_first == 0) {
      p_first = static_cast<int>(P);
      t_first = res.makespan_balanced;
    }
    // Speedup normalized to the smallest rank count, as the paper plots.
    std::printf("%7zu %12.2f %12.2f %10.2f %12.2f %10.0f\n", P,
                res.makespan_unbalanced, res.makespan_balanced,
                res.average_work,
                res.makespan_unbalanced / res.makespan_balanced,
                t_first / res.makespan_balanced * p_first);
  }
  std::printf("\n[paper: near-linear to 16,384 ranks, then the work-sharing "
              "speedup drops from degenerate-configuration mispredictions; "
              "overall load-balancing gain ~3.6x]\n");
  return 0;
}
