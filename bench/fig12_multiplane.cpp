// Paper Fig. 12: the multiplane lensing experiment — fields stacked along
// observer lines of sight through the complete volume (a mixture of high
// and low density sub-volumes). Paper observes near-linear scaling with
// only small deviation and MORE effective work sharing than the
// galaxy-galaxy case ("more small work items to complete and the variable
// bin size optimizer can be more efficient").
#include <mutex>

#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace dtfe;
  bench::banner("Fig. 12 — multiplane lensing with load balancing");

  const std::size_t n_los = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 32;
  const std::size_t planes = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;
  // Lines of sight traverse the COMPLETE volume, so the particle field must
  // fill space the way an N-body snapshot does: use the cosmic-web
  // (Zel'dovich) generator rather than isolated halos.
  const ParticleSet set = bench::gadget_like_box(64, 64.0, 11);
  const auto centers = bench::multiplane_centers(set, n_los, planes, 5);
  std::printf("dataset: %zu particles; %zu LOS x %zu planes = %zu fields\n",
              set.size(), n_los, planes, centers.size());

  PipelineOptions opt;
  opt.field_length = 6.0;
  opt.field_resolution = 48;
  opt.load_balance = true;

  std::vector<bench::PhaseRow> rows;
  for (const int P : {1, 2, 4, 8, 16, 32}) {
    bench::PhaseRow row;
    row.ranks = P;
    std::mutex mtx;
    RunningStats balanced_busy, unbalanced_pred;
    std::size_t shared = 0;
    simmpi::run(P, [&](simmpi::Comm& comm) {
      const PipelineResult res = run_pipeline(comm, set, centers, opt);
      std::lock_guard<std::mutex> lock(mtx);
      row.partition = std::max(row.partition, res.phases.partition);
      row.model = std::max(row.model, res.phases.model);
      row.triangulate = std::max(row.triangulate, res.phases.triangulate);
      row.render = std::max(row.render, res.phases.render);
      row.share = std::max(row.share, res.phases.work_share);
      row.total_max = std::max(row.total_max, res.phases.total());
      balanced_busy.add(res.phases.triangulate + res.phases.render);
      unbalanced_pred.add(res.predicted_local_time);
      shared += res.items_sent;
    });
    row.busy_std_balanced =
        balanced_busy.stddev() / std::max(balanced_busy.mean(), 1e-12);
    row.busy_std_unbalanced =
        unbalanced_pred.stddev() / std::max(unbalanced_pred.mean(), 1e-12);
    rows.push_back(row);
    std::printf("P=%2d done (critical path %.2fs, %zu items shared)\n", P,
                row.total_max, shared);
  }

  bench::print_phase_table(rows, "Fig. 12 — multiplane lensing");
  std::printf("\n[paper: near-linear scaling with small deviation; work "
              "sharing more efficient than the galaxy-galaxy case]\n");
  return 0;
}
