// Paper Fig. 7: distributed-memory comparison with the TESS/DENSE estimator
// — execution time and speedup of the corresponding stages (TESS ↔
// Triangulation, DENSE ↔ Interpolation) when one large surface-density grid
// is decomposed into per-rank sub-grids (multiple-process-single-thread
// mode). Paper observes ~8× improvement in execution time and near-linear
// speedup of both pipelines.
//
// Substitution note (DESIGN.md): both pipelines here share our Delaunay
// builder, so the tessellation stages coincide by construction; the
// reproducible content is the DENSE-vs-Interpolation gap and the scaling of
// every stage. Critical-path time = max per-rank thread-CPU busy time.
#include <mutex>

#include "fig_common.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace dtfe;
  bench::banner(
      "Fig. 7 — TESS/DENSE vs Triangulation/Interpolation, sub-grid scaling");

  const std::size_t ng = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;
  // Clustered sub-volume akin to the paper's 32 Mpc/h cut with 1.7M
  // particles, scaled down.
  const ParticleSet set = bench::planck_like_box(120000, 32.0, 7);
  std::printf("dataset: %zu particles, single %zux%zu grid decomposed into "
              "per-rank x-slabs\n\n",
              set.size(), ng, ng);

  struct Row {
    int ranks;
    double tri, interp, tess, dense;
  };
  std::vector<Row> rows;

  for (const int P : {1, 2, 4, 8, 16}) {
    std::vector<double> tri_t(P, 0), interp_t(P, 0), tess_t(P, 0),
        dense_t(P, 0);
    std::mutex mtx;
    simmpi::run(P, [&](simmpi::Comm& comm) {
      const int r = comm.rank();
      // x-slab of the grid plus a particle slab with ghost pad.
      const double slab_lo = set.box_length * r / P;
      const double slab_hi = set.box_length * (r + 1) / P;
      const double pad = 2.0;
      std::vector<Vec3> slab;
      for (const Vec3& p : set.positions)
        for (const double s : {-set.box_length, 0.0, set.box_length}) {
          const double x = p.x + s;  // periodic image unwrapped into the slab
          if (x >= slab_lo - pad && x <= slab_hi + pad) {
            slab.push_back({x, p.y, p.z});
            break;
          }
        }

      ThreadCpuTimer t;
      const Triangulation tri(slab);
      const double tri_time = t.seconds();
      t.reset();
      const DensityField rho(tri, set.particle_mass);
      const HullProjection hull(tri);
      const double setup = t.seconds();

      // This rank's share of the single large grid: an x-slab of ng/P
      // columns by ng rows (square cells).
      FieldSpec sub;
      sub.origin = {slab_lo, 0.0};
      sub.length = slab_hi - slab_lo;
      sub.resolution = ng / static_cast<std::size_t>(P);
      sub.resolution_y = ng;
      sub.zmin = 0.0;
      sub.zmax = set.box_length;

      t.reset();
      const MarchingKernel marching(rho, hull);
      (void)marching.render(sub);
      const double interp_time = t.seconds();

      t.reset();
      TessOptions topt;
      topt.z_resolution = ng;  // cubic 3D cells over the whole z column
      const TessKernel tess(rho, topt);
      const double tess_setup = t.seconds();  // Voronoi volume construction
      t.reset();
      (void)tess.render(sub);
      const double dense_time = t.seconds();

      std::lock_guard<std::mutex> lock(mtx);
      tri_t[static_cast<std::size_t>(r)] = tri_time + setup;
      interp_t[static_cast<std::size_t>(r)] = interp_time;
      tess_t[static_cast<std::size_t>(r)] = tri_time + setup + tess_setup;
      dense_t[static_cast<std::size_t>(r)] = dense_time;
    });

    auto maxof = [](const std::vector<double>& v) {
      double m = 0;
      for (double x : v) m = std::max(m, x);
      return m;
    };
    rows.push_back({P, maxof(tri_t), maxof(interp_t), maxof(tess_t),
                    maxof(dense_t)});
    std::printf("P=%2d done\n", P);
  }

  std::printf("\n%6s %14s %14s %10s %10s\n", "ranks", "Triangulation",
              "Interpolation", "TESS", "DENSE");
  for (const auto& r : rows)
    std::printf("%6d %14.3f %14.3f %10.3f %10.3f\n", r.ranks, r.tri, r.interp,
                r.tess, r.dense);

  std::printf("\nspeedups (vs 1 rank)\n%6s %14s %14s %10s %10s %8s\n", "ranks",
              "Triangulation", "Interpolation", "TESS", "DENSE", "linear");
  for (const auto& r : rows)
    std::printf("%6d %14.2f %14.2f %10.2f %10.2f %8d\n", r.ranks,
                rows[0].tri / r.tri, rows[0].interp / r.interp,
                rows[0].tess / r.tess, rows[0].dense / r.dense, r.ranks);

  const double gap = rows[0].dense / rows[0].interp;
  std::printf("\nDENSE / Interpolation execution gap at 1 rank: %.1fx "
              "[paper: ~8x overall improvement]\n", gap);
  return 0;
}
