// Micro-benchmarks for the observability layer (src/obs).
//
// The contract being measured: with metrics disabled (the default), an
// instrumented call site costs one relaxed atomic load plus a predictable
// branch — under 1% on any workload that does real arithmetic per item.
// scripts/check_obs_overhead.sh runs BM_WorkloadPlain against
// BM_WorkloadInstrumentedDisabled and fails if the ratio drifts past that.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dtfe {
namespace {

struct BenchMetrics {
  obs::MetricId counter = obs::counter("bench.obs.counter");
  obs::MetricId histogram = obs::histogram(
      "bench.obs.histogram", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
};

const BenchMetrics& bench_metrics() {
  static const BenchMetrics m;
  return m;
}

// Raw cost of one counter add with the registry disabled: the no-op path.
void BM_CounterAddDisabled(benchmark::State& state) {
  obs::MetricsRegistry::global().set_enabled(false);
  const obs::MetricId id = bench_metrics().counter;
  for (auto _ : state) obs::add(id, 1.0);
}
BENCHMARK(BM_CounterAddDisabled);

// Raw cost of one counter add with the registry enabled (shard mutex is
// uncontended here; contention is what the per-thread shards avoid).
void BM_CounterAddEnabled(benchmark::State& state) {
  obs::MetricsRegistry::global().set_enabled(true);
  const obs::MetricId id = bench_metrics().counter;
  for (auto _ : state) obs::add(id, 1.0);
  obs::MetricsRegistry::global().set_enabled(false);
  obs::MetricsRegistry::global().reset();
}
BENCHMARK(BM_CounterAddEnabled);

void BM_HistogramObserveEnabled(benchmark::State& state) {
  obs::MetricsRegistry::global().set_enabled(true);
  const obs::MetricId id = bench_metrics().histogram;
  double v = 0.0;
  for (auto _ : state) {
    obs::observe(id, v);
    v = v < 100.0 ? v + 1.0 : 0.0;
  }
  obs::MetricsRegistry::global().set_enabled(false);
  obs::MetricsRegistry::global().reset();
}
BENCHMARK(BM_HistogramObserveEnabled);

// A stand-in for a kernel inner loop: enough arithmetic per "item" that the
// guarded metric call should disappear into the noise when disabled.
inline double workload_item(std::uint64_t& x) {
  double acc = 0.0;
  for (int i = 0; i < 16; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    acc += static_cast<double>(x >> 40) * 5.421010862427522e-20;
  }
  return acc;
}

void BM_WorkloadPlain(benchmark::State& state) {
  std::uint64_t x = 1;
  for (auto _ : state) benchmark::DoNotOptimize(workload_item(x));
}
BENCHMARK(BM_WorkloadPlain);

void BM_WorkloadInstrumentedDisabled(benchmark::State& state) {
  obs::MetricsRegistry::global().set_enabled(false);
  const obs::MetricId id = bench_metrics().counter;
  std::uint64_t x = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload_item(x));
    obs::add(id, 1.0);
  }
}
BENCHMARK(BM_WorkloadInstrumentedDisabled);

void BM_WorkloadInstrumentedEnabled(benchmark::State& state) {
  obs::MetricsRegistry::global().set_enabled(true);
  const obs::MetricId id = bench_metrics().counter;
  std::uint64_t x = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload_item(x));
    obs::add(id, 1.0);
  }
  obs::MetricsRegistry::global().set_enabled(false);
  obs::MetricsRegistry::global().reset();
}
BENCHMARK(BM_WorkloadInstrumentedEnabled);

// Trace span construction when tracing is off: should be a load + branch.
void BM_TraceSpanDisabled(benchmark::State& state) {
  obs::TraceRecorder::global().set_enabled(false);
  for (auto _ : state) {
    obs::TraceSpan span("bench.span", "bench");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_TraceSpanDisabled);

}  // namespace
}  // namespace dtfe

BENCHMARK_MAIN();
