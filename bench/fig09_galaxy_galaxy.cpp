// Paper Figs. 9 & 10: the galaxy-galaxy lensing experiment — thousands of
// fields centered on galaxy positions in the densest regions, run through
// the full four-phase pipeline at increasing rank counts.
//   Fig. 9a: per-phase times; Fig. 9b: speedup (near-linear until the
//   partition/model overheads flatten it).
//   Fig. 10: normalized std of per-rank workload, balanced (executed) vs
//   unbalanced (model-predicted, no sharing) — imbalance grows as
//   sub-volumes shrink.
#include <mutex>

#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace dtfe;
  bench::banner("Figs. 9 & 10 — galaxy-galaxy lensing with load balancing");

  const std::size_t n_fields =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;
  const ParticleSet set = bench::planck_like_box(150000, 64.0, 11);
  const auto centers = bench::fof_centers(set, n_fields);
  std::printf("dataset: %zu particles; %zu fields on the most massive "
              "objects\n",
              set.size(), centers.size());

  PipelineOptions opt;
  opt.field_length = 4.0;
  opt.field_resolution = 32;
  opt.load_balance = true;

  std::vector<bench::PhaseRow> rows;
  for (const int P : {1, 2, 4, 8, 16, 32}) {
    bench::PhaseRow row;
    row.ranks = P;
    std::mutex mtx;
    RunningStats balanced_busy;
    RunningStats unbalanced_pred;
    simmpi::run(P, [&](simmpi::Comm& comm) {
      const PipelineResult res = run_pipeline(comm, set, centers, opt);
      std::lock_guard<std::mutex> lock(mtx);
      row.partition = std::max(row.partition, res.phases.partition);
      row.model = std::max(row.model, res.phases.model);
      row.triangulate = std::max(row.triangulate, res.phases.triangulate);
      row.render = std::max(row.render, res.phases.render);
      row.share = std::max(row.share, res.phases.work_share);
      row.total_max = std::max(row.total_max, res.phases.total());
      balanced_busy.add(res.phases.triangulate + res.phases.render);
      unbalanced_pred.add(res.predicted_local_time);
    });
    const double bm = std::max(balanced_busy.mean(), 1e-12);
    const double um = std::max(unbalanced_pred.mean(), 1e-12);
    row.busy_std_balanced = balanced_busy.stddev() / bm;
    row.busy_std_unbalanced = unbalanced_pred.stddev() / um;
    rows.push_back(row);
    std::printf("P=%2d done (critical path %.2fs)\n", P, row.total_max);
  }

  bench::print_phase_table(rows, "Fig. 9 — galaxy-galaxy lensing");

  std::printf("\nFig. 10 — workload std (normalized by mean)\n");
  std::printf("%6s %12s %12s\n", "ranks", "balanced", "unbalanced");
  for (const auto& r : rows)
    std::printf("%6d %12.3f %12.3f\n", r.ranks, r.busy_std_balanced,
                r.busy_std_unbalanced);
  std::printf("[paper: unbalanced std grows as sub-volumes shrink; balancing "
              "recovers most of it — speedup ~2.8x at 240 ranks]\n");
  return 0;
}
