// Delaunay construction and point-location ablations: spatial sort on/off,
// uniform vs clustered input, walk hint strategies.
#include <benchmark/benchmark.h>

#include "delaunay/hull_projection.h"
#include "delaunay/triangulation.h"
#include "nbody/generators.h"
#include "util/rng.h"

namespace dtfe {
namespace {

void BM_DelaunayBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool sorted = state.range(1) != 0;
  Rng rng(1);
  std::vector<Vec3> pts(n);
  for (auto& p : pts) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  TriangulationOptions opt;
  opt.spatial_sort = sorted;
  for (auto _ : state) {
    Triangulation tri(pts, opt);
    benchmark::DoNotOptimize(tri.num_cells());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DelaunayBuild)
    ->Args({2000, 1})
    ->Args({2000, 0})
    ->Args({20000, 1})
    ->Args({20000, 0})
    ->Unit(benchmark::kMillisecond);

void BM_DelaunayBuildClustered(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  HaloModelOptions gen;
  gen.n_particles = n;
  gen.box_length = 1.0;
  gen.n_halos = 8;
  gen.seed = 3;
  const auto set = generate_halo_model(gen);
  for (auto _ : state) {
    Triangulation tri(set.positions);
    benchmark::DoNotOptimize(tri.num_cells());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DelaunayBuildClustered)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_DelaunayInsertScratch(benchmark::State& state) {
  // A/B for the insertion fast path: reusing the conflict-BFS scratch and
  // cavity boundary buffers across insertions vs per-insert allocation.
  // Reports inserts/sec and allocations-per-insert (container regrowth
  // events counted by the triangulation itself).
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool reuse = state.range(1) != 0;
  Rng rng(1);
  std::vector<Vec3> pts(n);
  for (auto& p : pts) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  TriangulationOptions opt;
  opt.reuse_insert_scratch = reuse;
  std::size_t alloc_events = 0;
  for (auto _ : state) {
    Triangulation tri(pts, opt);
    benchmark::DoNotOptimize(tri.num_cells());
    alloc_events = tri.alloc_events();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.counters["allocs_per_insert"] =
      static_cast<double>(alloc_events) / static_cast<double>(n);
}
BENCHMARK(BM_DelaunayInsertScratch)
    ->Args({20000, 1})
    ->Args({20000, 0})
    ->Unit(benchmark::kMillisecond);

void BM_LocateWithHints(benchmark::State& state) {
  // Coherent queries (a z-column walk) with remembering hints.
  Rng rng(5);
  std::vector<Vec3> pts(20000);
  for (auto& p : pts) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  Triangulation tri(pts);
  std::uint64_t wrng = 1;
  double z = 0.0;
  CellId hint = Triangulation::kNoCell;
  for (auto _ : state) {
    z += 1.0 / 4096.0;
    if (z >= 1.0) z = 0.0;
    const auto loc = tri.locate_from({0.5, 0.5, z}, hint, wrng);
    hint = loc.cell;
    benchmark::DoNotOptimize(loc.cell);
  }
}
BENCHMARK(BM_LocateWithHints);

void BM_LocateCold(benchmark::State& state) {
  // Random queries without hints: full walks from an arbitrary cell.
  Rng rng(5);
  std::vector<Vec3> pts(20000);
  for (auto& p : pts) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  Triangulation tri(pts);
  std::uint64_t wrng = 1;
  Rng qrng(9);
  for (auto _ : state) {
    const Vec3 q{qrng.uniform(), qrng.uniform(), qrng.uniform()};
    benchmark::DoNotOptimize(
        tri.locate_from(q, Triangulation::kNoCell, wrng).cell);
  }
}
BENCHMARK(BM_LocateCold);

void BM_HullLocatorBuckets(benchmark::State& state) {
  Rng rng(7);
  std::vector<Vec3> pts(20000);
  for (auto& p : pts) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  static const Triangulation tri(pts);
  static const HullProjection hull(tri);
  Rng qrng(3);
  for (auto _ : state) {
    const Vec2 xi{qrng.uniform(), qrng.uniform()};
    benchmark::DoNotOptimize(hull.first_entry(xi).cell);
  }
}
BENCHMARK(BM_HullLocatorBuckets);

void BM_HullLocatorWalk(benchmark::State& state) {
  // The paper's described locator: walk the projected hull triangulation.
  Rng rng(7);
  std::vector<Vec3> pts(20000);
  for (auto& p : pts) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  static const Triangulation tri(pts);
  static const HullProjection hull(tri);
  Rng qrng(3);
  std::ptrdiff_t hint = -1;
  std::uint64_t wrng = 1;
  for (auto _ : state) {
    const Vec2 xi{qrng.uniform(), qrng.uniform()};
    benchmark::DoNotOptimize(hull.first_entry_walk(xi, hint, wrng).cell);
  }
}
BENCHMARK(BM_HullLocatorWalk);

}  // namespace
}  // namespace dtfe

BENCHMARK_MAIN();
