// Paper Fig. 6: per-thread interpolation time of the walking-based DTFE
// public software vs the marching kernel, one shared triangulation, same
// number of rendered cells ("both approaches are locating and interpolating
// exactly the same number of grid cells"). Paper observes ~10× overall and
// much better thread balance for the marching kernel.
//
// Scaled reproduction: a Zel'dovich box (the Gadget-demo stand-in), one
// grid, both kernels under 8 OpenMP threads (oversubscribed here; per-thread
// CPU time is the balance metric).
#include <omp.h>

#include "fig_common.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace dtfe;
  bench::banner("Fig. 6 — walking (DTFE 1.1.1 style) vs marching kernel");

  // The paper's configuration has the grid much finer than the mesh: a
  // 1024³ grid over 650k particles (Ng/N^⅓ ≈ 12). The walking renderer then
  // locates ~12 redundant 3D samples inside every tetrahedron a line of
  // sight crosses, where the marching kernel performs a single exact
  // intersection — this ratio IS the ~10×. Reproduce the regime scaled:
  // ~8k web particles (N^⅓ = 20) under a 256³-equivalent grid.
  const std::size_t n_keep =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8192;
  const std::size_t ng = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 256;
  omp_set_num_threads(8);

  // The Gadget demo snapshot is a strongly evolved (clustered) z=0 box;
  // the halo-model generator reproduces that clustering, which is what
  // makes static per-thread decompositions imbalanced.
  HaloModelOptions gen;
  gen.n_particles = n_keep;
  gen.box_length = 100.0;
  gen.n_halos = 12;
  gen.background_fraction = 0.3;
  gen.seed = 3;
  ParticleSet set = generate_halo_model(gen);
  std::printf("dataset: %zu particles in a (100)^3 box, %zux%zu grid "
              "(z-resolution %zu) — Ng/N^1/3 = %.1f as in the paper\n",
              set.size(), ng, ng, ng,
              static_cast<double>(ng) /
                  std::cbrt(static_cast<double>(set.size())));

  WallTimer timer;
  const Reconstructor recon(set.positions, set.particle_mass);
  std::printf("shared triangulation: %.2f s\n\n", timer.seconds());

  FieldSpec spec;
  spec.origin = {0.0, 0.0};
  spec.length = set.box_length;
  spec.resolution = ng;
  spec.zmin = 0.0;
  spec.zmax = set.box_length;

  // Walking baseline: every 3D grid point located by an incremental walk and
  // interpolated (paper Eq. 4), with DTFE 1.1.1's static per-thread volume
  // decomposition ("no attempt is made to balance workloads").
  WalkingKernel walking(recon.density(),
                        {.z_resolution = ng, .static_decomposition = true});
  timer.reset();
  const Grid2D walk_map = walking.render(spec);
  const double walk_wall = timer.seconds();

  // Marching kernel, SAME grid cells: the march locates whole tetra
  // intervals and evaluates the identical fixed z-planes within them.
  MarchingOptions mopt;
  mopt.z_samples = static_cast<int>(ng);
  MarchingKernel marching(recon.density(), recon.hull(), mopt);
  timer.reset();
  const Grid2D march_map = marching.render(spec);
  const double march_wall = timer.seconds();

  // Bonus: the exact-integration mode (no 3D sampling at all), the mode the
  // rest of this library uses.
  MarchingKernel exact(recon.density(), recon.hull());
  timer.reset();
  (void)exact.render(spec);
  const double exact_wall = timer.seconds();

  const auto& wt = walking.stats().thread_seconds;
  const auto& mt = marching.stats().thread_seconds;
  std::printf("%8s %18s %18s\n", "thread", "DTFE-walk (s)", "marching (s)");
  for (std::size_t t = 0; t < wt.size(); ++t)
    std::printf("%8zu %18.3f %18.3f\n", t, wt[t],
                t < mt.size() ? mt[t] : 0.0);
  const double wmean = mean_of(wt), mmean = mean_of(mt);
  double wmax = 0, mmax = 0;
  for (double t : wt) wmax = std::max(wmax, t);
  for (double t : mt) mmax = std::max(mmax, t);
  std::printf("%8s %18.3f %18.3f\n", "mean", wmean, mmean);
  std::printf("%8s %18.3f %18.3f\n", "std", stddev_of(wt), stddev_of(mt));
  std::printf("%8s %18.3f %18.3f\n", "max", wmax, mmax);
  std::printf("\nwall: walking %.2f s, marching %.2f s, exact-integration "
              "marching %.2f s\n",
              walk_wall, march_wall, exact_wall);
  std::printf("kernel speedup (mean thread time): %.1fx\n",
              wmean / std::max(mmean, 1e-9));
  std::printf("execution speedup (slowest thread, the paper's metric): %.1fx "
              "[paper: ~10x]\n",
              wmax / std::max(mmax, 1e-9));
  std::printf("thread imbalance (std/mean): walking %.2f, marching %.2f\n",
              stddev_of(wt) / std::max(wmean, 1e-9),
              stddev_of(mt) / std::max(mmean, 1e-9));

  // Both kernels render the same field (different discretizations).
  double rel = 0.0;
  for (std::size_t i = 0; i < walk_map.size(); ++i)
    rel += std::abs(walk_map.flat(i) - march_map.flat(i)) /
           (std::abs(march_map.flat(i)) + 1e-9);
  std::printf("mean |walking-marching|/marching: %.3f (discretization of the "
              "z-column)\n", rel / static_cast<double>(walk_map.size()));
  return 0;
}
