// Estimator ablations: DTFE vs fixed-kernel grid assignments (NGP/CIC/TSC)
// for surface density, the adaptive-refinement knob, and power-spectrum
// measurement throughput.
#include <benchmark/benchmark.h>

#include "core/dtfe.h"

namespace dtfe {
namespace {

const ParticleSet& shared_set() {
  static const ParticleSet* set = [] {
    HaloModelOptions gen;
    gen.n_particles = 40000;
    gen.box_length = 20.0;
    gen.n_halos = 16;
    gen.seed = 8;
    return new ParticleSet(generate_halo_model(gen));
  }();
  return *set;
}

const Reconstructor& shared_recon() {
  static const Reconstructor* r =
      new Reconstructor(shared_set().positions, shared_set().particle_mass);
  return *r;
}

void BM_AssignSurfaceDensity(benchmark::State& state) {
  const auto scheme = static_cast<AssignmentScheme>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        assign_surface_density(shared_set(), 128, scheme).sum());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(shared_set().size()));
}
BENCHMARK(BM_AssignSurfaceDensity)
    ->Arg(0)  // NGP
    ->Arg(1)  // CIC
    ->Arg(2)  // TSC
    ->Unit(benchmark::kMillisecond);

void BM_DtfeSurfaceDensity(benchmark::State& state) {
  // Same task as the assignments above (whole-box 128² map) — the price of
  // the adaptive low-noise estimator, excluding triangulation.
  const auto& recon = shared_recon();
  FieldSpec spec;
  spec.origin = {0, 0};
  spec.length = 20.0;
  spec.resolution = 128;
  spec.zmin = 0;
  spec.zmax = 20.0;
  for (auto _ : state)
    benchmark::DoNotOptimize(recon.surface_density(spec).sum());
}
BENCHMARK(BM_DtfeSurfaceDensity)->Unit(benchmark::kMillisecond);

void BM_DtfeAdaptiveDepth(benchmark::State& state) {
  const auto& recon = shared_recon();
  FieldSpec spec;
  spec.origin = {0, 0};
  spec.length = 20.0;
  spec.resolution = 64;
  spec.zmin = 0;
  spec.zmax = 20.0;
  MarchingOptions opt;
  opt.adaptive_max_depth = static_cast<int>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(recon.surface_density(spec, opt).sum());
}
BENCHMARK(BM_DtfeAdaptiveDepth)->Arg(0)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_PowerSpectrum3d(benchmark::State& state) {
  const Grid3D g =
      assign_density_3d(shared_set(), 64, AssignmentScheme::kCic);
  for (auto _ : state)
    benchmark::DoNotOptimize(measure_power_spectrum(g, 20.0).size());
}
BENCHMARK(BM_PowerSpectrum3d)->Unit(benchmark::kMillisecond);

void BM_VoronoiVolumes(benchmark::State& state) {
  const auto& recon = shared_recon();
  for (auto _ : state)
    benchmark::DoNotOptimize(voronoi_volumes(recon.triangulation()).size());
}
BENCHMARK(BM_VoronoiVolumes)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dtfe

BENCHMARK_MAIN();
