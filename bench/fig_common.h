// Shared helpers for the figure-reproduction benchmarks.
//
// Every fig*_ binary regenerates one figure of the paper's evaluation
// section on scaled-down (but statistically equivalent) generated data and
// prints the same series the paper plots. EXPERIMENTS.md records the
// paper-vs-measured comparison for each.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/dtfe.h"
#include "util/rng.h"
#include "util/stats.h"

namespace dtfe::bench {

inline void banner(const char* title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================\n");
}

/// The clustered "Planck-like" box used by the load-balancing experiments:
/// NFW halos + background, the regime where galaxy-galaxy lensing requests
/// concentrate in the densest sub-volumes.
inline ParticleSet planck_like_box(std::size_t n_particles, double box,
                                   std::uint64_t seed) {
  HaloModelOptions gen;
  gen.n_particles = n_particles;
  gen.box_length = box;
  gen.n_halos = std::max<std::size_t>(8, n_particles / 2500);
  gen.background_fraction = 0.25;
  gen.seed = seed;
  return generate_halo_model(gen);
}

/// Cosmic-web box (Zel'dovich) used by the kernel-comparison experiments —
/// the analog of the Gadget demo snapshot.
inline ParticleSet gadget_like_box(std::size_t grid, double box,
                                   std::uint64_t seed) {
  ZeldovichOptions gen;
  gen.grid = grid;
  gen.box_length = box;
  gen.rms_displacement = 1.5;
  gen.seed = seed;
  return generate_zeldovich(gen);
}

/// Field centers on the most massive FOF objects (the paper's galaxy /
/// cluster positions).
inline std::vector<Vec3> fof_centers(const ParticleSet& set,
                                     std::size_t count) {
  FofOptions fof;
  fof.linking_parameter = 0.2;
  fof.min_group_size = 16;
  auto groups = find_fof_groups(set, fof);
  std::vector<Vec3> centers;
  for (std::size_t i = 0; i < groups.size() && centers.size() < count; ++i)
    centers.push_back(groups[i].center);
  // Pad with positions of random particles in the largest groups if FOF
  // found fewer objects than requested.
  Rng rng(1234);
  while (centers.size() < count && !groups.empty()) {
    const auto& g = groups[rng.uniform_index(std::min<std::size_t>(8, groups.size()))];
    centers.push_back(set.positions[g.members[rng.uniform_index(g.size())]]);
  }
  return centers;
}

/// Multiplane configuration: `planes` field centers stacked in z along each
/// of `n_los` random lines of sight (paper §V-3 "Multiplane Lensing").
inline std::vector<Vec3> multiplane_centers(const ParticleSet& set,
                                            std::size_t n_los,
                                            std::size_t planes,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> centers;
  for (std::size_t l = 0; l < n_los; ++l) {
    const double x = rng.uniform(0.0, set.box_length);
    const double y = rng.uniform(0.0, set.box_length);
    for (std::size_t p = 0; p < planes; ++p)
      centers.push_back({x, y,
                         (static_cast<double>(p) + 0.5) * set.box_length /
                             static_cast<double>(planes)});
  }
  return centers;
}

struct PhaseRow {
  int ranks = 0;
  double partition = 0, model = 0, triangulate = 0, render = 0, share = 0;
  double total_max = 0;      ///< critical path (max per-rank busy)
  double busy_std_balanced = 0;
  double busy_std_unbalanced = 0;  ///< model-predicted no-sharing imbalance
};

inline void print_phase_table(const std::vector<PhaseRow>& rows,
                              const char* label) {
  std::printf("\n%s — per-phase critical-path busy time (s)\n", label);
  std::printf("%6s %10s %8s %12s %10s %10s %10s\n", "ranks", "partition",
              "model", "triangulate", "render", "share", "total");
  for (const auto& r : rows)
    std::printf("%6d %10.3f %8.3f %12.3f %10.3f %10.3f %10.3f\n", r.ranks,
                r.partition, r.model, r.triangulate, r.render, r.share,
                r.total_max);
  if (!rows.empty() && rows.front().total_max > 0.0) {
    std::printf("\n%6s %8s %8s\n", "ranks", "speedup", "ideal");
    for (const auto& r : rows)
      std::printf("%6d %8.2f %8d\n", r.ranks,
                  rows.front().total_max / r.total_max * rows.front().ranks,
                  r.ranks);
  }
}

}  // namespace dtfe::bench
