// Durable-execution test suite (ctest -L durable): checkpoint journal
// crash-consistency (round trip, torn tails, bit damage, first-commit-wins),
// manifest atomicity under concurrent thread-rank writers, the conservation
// audits' negative cases, watchdog cancellation latency, the crash-handler
// item registry, and the end-to-end acceptance scenario — a checkpointed run
// interrupted by a rank kill and damaged journals must resume to final grids
// BITWISE identical to an uninterrupted run.
#include <gtest/gtest.h>

#include <signal.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "dtfe/audit.h"
#include "dtfe/field.h"
#include "framework/crash.h"
#include "framework/durable.h"
#include "framework/pipeline.h"
#include "nbody/particles.h"
#include "simmpi/comm.h"
#include "simmpi/fault.h"
#include "util/cancel.h"
#include "util/error.h"
#include "util/rng.h"

namespace dtfe {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory under the system temp dir, removed on scope exit.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Grid2D make_grid(std::size_t n, double scale) {
  Grid2D g(n, n);
  for (std::size_t i = 0; i < g.size(); ++i)
    g.flat(i) = scale * (static_cast<double>(i) + 0.25);
  return g;
}

bool bitwise_equal(const Grid2D& a, const Grid2D& b) {
  if (a.nx() != b.nx() || a.ny() != b.ny()) return false;
  return std::memcmp(a.values().data(), b.values().data(),
                     a.size() * sizeof(double)) == 0;
}

bool bitwise_equal(const FieldGrid& a, const FieldGrid& b) {
  if (a.kind() != b.kind() || a.channels() != b.channels()) return false;
  for (std::size_t c = 0; c < a.channels(); ++c)
    if (!bitwise_equal(a.plane(c), b.plane(c))) return false;
  return true;
}

bool bitwise_equal(const FieldGrid& a, const Grid2D& b) {
  return a.channels() == 1 && bitwise_equal(a.plane(0), b);
}

// ---- checkpoint journal -----------------------------------------------------

TEST(CheckpointJournal, RoundTripIsBitwise) {
  const ScratchDir dir("pdtfe_ckpt_roundtrip");
  {
    CheckpointWriter w(dir.path(), 0);
    w.append(3, make_grid(8, 1.0));
    w.append(7, make_grid(8, -0.5));
    w.append(11, make_grid(4, 1e-300));
    EXPECT_EQ(w.records_written(), 3);
  }
  const std::vector<CheckpointItem> items = load_checkpoints(dir.path());
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].request_index, 3);
  EXPECT_EQ(items[1].request_index, 7);
  EXPECT_EQ(items[2].request_index, 11);
  EXPECT_TRUE(bitwise_equal(items[0].grid, make_grid(8, 1.0)));
  EXPECT_TRUE(bitwise_equal(items[1].grid, make_grid(8, -0.5)));
  EXPECT_TRUE(bitwise_equal(items[2].grid, make_grid(4, 1e-300)));
}

TEST(CheckpointJournal, TornTailIsDroppedEarlierRecordsSurvive) {
  const ScratchDir dir("pdtfe_ckpt_torn");
  std::string journal;
  {
    CheckpointWriter w(dir.path(), 2);
    w.append(1, make_grid(8, 1.0));
    w.append(2, make_grid(8, 2.0));
    journal = w.path();
  }
  // A crash mid-write can only tear the LAST record: chop off part of it.
  const auto full = fs::file_size(journal);
  fs::resize_file(journal, full - 37);
  const std::vector<CheckpointItem> items = load_checkpoints(dir.path());
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].request_index, 1);
  EXPECT_TRUE(bitwise_equal(items[0].grid, make_grid(8, 1.0)));
}

TEST(CheckpointJournal, BitDamageStopsReplayAtTheDamagePoint) {
  const ScratchDir dir("pdtfe_ckpt_flip");
  std::string journal;
  {
    CheckpointWriter w(dir.path(), 0);
    w.append(1, make_grid(8, 1.0));
    w.append(2, make_grid(8, 2.0));
    journal = w.path();
  }
  // Flip one payload byte of the FIRST record: its checksum no longer
  // matches, so that journal contributes nothing from the damage onward.
  FILE* f = std::fopen(journal.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 16 + 24 + 5, SEEK_SET);  // header | index/nx/ny | mid-values
  const int c = std::fgetc(f);
  std::fseek(f, -1, SEEK_CUR);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
  EXPECT_TRUE(load_checkpoints(dir.path()).empty());
}

TEST(CheckpointJournal, FirstCommitWinsAcrossJournals) {
  const ScratchDir dir("pdtfe_ckpt_dup");
  {
    CheckpointWriter w0(dir.path(), 0);
    w0.append(5, make_grid(8, 1.0));
    CheckpointWriter w1(dir.path(), 1);
    w1.append(5, make_grid(8, 99.0));  // a retry that also committed
    w1.append(6, make_grid(8, 2.0));
  }
  const std::vector<CheckpointItem> items = load_checkpoints(dir.path());
  ASSERT_EQ(items.size(), 2u);
  // Journals replay in sorted order, so rank 0's commit of item 5 wins.
  EXPECT_EQ(items[0].request_index, 5);
  EXPECT_TRUE(bitwise_equal(items[0].grid, make_grid(8, 1.0)));
  EXPECT_EQ(items[1].request_index, 6);
}

TEST(CheckpointJournal, MultiChannelV2RecordsRoundTripBitwise) {
  const ScratchDir dir("pdtfe_ckpt_v2");
  const FieldGrid velocity(
      FieldKind::kVelocity,
      {make_grid(8, 1.0), make_grid(8, -2.5), make_grid(8, 1e-300)});
  const FieldGrid vdiv(FieldKind::kVdiv, {make_grid(4, -0.25)});
  {
    CheckpointWriter w(dir.path(), 0);
    w.append(3, velocity);
    w.append(9, vdiv);
    // A single-plane density record rides along in the same journal (it is
    // written as legacy v1 bytes; the loader dispatches on the magic).
    w.append(12, FieldGrid(make_grid(8, 2.0)));
    EXPECT_EQ(w.records_written(), 3);
  }
  const std::vector<CheckpointItem> items = load_checkpoints(dir.path());
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].request_index, 3);
  EXPECT_EQ(items[0].grid.kind(), FieldKind::kVelocity);
  EXPECT_TRUE(bitwise_equal(items[0].grid, velocity));
  EXPECT_EQ(items[1].request_index, 9);
  EXPECT_EQ(items[1].grid.kind(), FieldKind::kVdiv);
  EXPECT_TRUE(bitwise_equal(items[1].grid, vdiv));
  EXPECT_EQ(items[2].request_index, 12);
  EXPECT_EQ(items[2].grid.kind(), FieldKind::kDensity);
  EXPECT_TRUE(bitwise_equal(items[2].grid, make_grid(8, 2.0)));
}

TEST(CheckpointJournal, DensityJournalsKeepTheLegacyV1Format) {
  // A journal of single-plane density FieldGrids must be byte-for-byte what
  // the pre-field-engine Grid2D writer produced: old density-only journals
  // resume under the new loader, and new density journals stay readable by
  // old builds.
  const ScratchDir dir_old("pdtfe_ckpt_v1_old");
  const ScratchDir dir_new("pdtfe_ckpt_v1_new");
  std::string old_path, new_path;
  {
    CheckpointWriter wo(dir_old.path(), 0);
    wo.append(3, make_grid(8, 1.0));  // legacy scalar overload: v1 bytes
    wo.append(7, make_grid(8, -0.5));
    old_path = wo.path();
    CheckpointWriter wn(dir_new.path(), 0);
    wn.append(3, FieldGrid(make_grid(8, 1.0)));  // field-engine overload
    wn.append(7, FieldGrid(make_grid(8, -0.5)));
    new_path = wn.path();
  }
  const auto slurp = [](const std::string& path) {
    FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::string bytes;
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
      bytes.append(buf, got);
    std::fclose(f);
    return bytes;
  };
  EXPECT_EQ(slurp(old_path), slurp(new_path));

  const std::vector<CheckpointItem> items = load_checkpoints(dir_old.path());
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].grid.kind(), FieldKind::kDensity);
  EXPECT_EQ(items[0].grid.channels(), 1u);
  EXPECT_TRUE(bitwise_equal(items[0].grid, make_grid(8, 1.0)));
}

TEST(CheckpointJournal, MissingDirectoryIsEmptyNotAnError) {
  EXPECT_TRUE(load_checkpoints("/nonexistent/pdtfe/nowhere").empty());
}

// ---- manifest ---------------------------------------------------------------

TEST(CheckpointManifest, RoundTripAndOverwrite) {
  const ScratchDir dir("pdtfe_manifest");
  EXPECT_EQ(read_checkpoint_manifest(dir.path()), "");
  write_checkpoint_manifest(dir.path(), "fp-one\n");
  EXPECT_EQ(read_checkpoint_manifest(dir.path()), "fp-one\n");
  write_checkpoint_manifest(dir.path(), "fp-two\n");
  EXPECT_EQ(read_checkpoint_manifest(dir.path()), "fp-two\n");
}

TEST(CheckpointManifest, ConcurrentThreadRankWritersDoNotCollide) {
  // Regression: simmpi ranks are threads of one process, so a pid-based temp
  // name made every rank write the SAME temp file and a loser's rename threw
  // (hanging the other ranks in the next collective).
  const ScratchDir dir("pdtfe_manifest_race");
  const std::string fp = "fp-race\n";
  std::vector<std::thread> writers;
  for (int t = 0; t < 8; ++t)
    writers.emplace_back([&] {
      for (int i = 0; i < 25; ++i)
        EXPECT_NO_THROW(write_checkpoint_manifest(dir.path(), fp));
    });
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(read_checkpoint_manifest(dir.path()), fp);
  // No orphaned temp files left behind.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

// ---- conservation audits ----------------------------------------------------

AuditOptions cheap_audit() {
  AuditOptions a;
  a.level = AuditLevel::kCheap;
  return a;
}

TEST(Audit, HonestGridPasses) {
  const Grid2D grid = make_grid(8, 1.0);
  const FieldSpec spec = FieldSpec::centered({0, 0, 0}, 1.0, 8);
  const AuditResult r =
      audit_field_item(grid, spec, grid.sum(), nullptr, nullptr, cheap_audit());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.summary(), "pass");
  EXPECT_GT(r.checks_run, 0);
}

TEST(Audit, CatchesNonFiniteCell) {
  Grid2D grid = make_grid(8, 1.0);
  grid.at(3, 4) = std::numeric_limits<double>::quiet_NaN();
  const FieldSpec spec = FieldSpec::centered({0, 0, 0}, 1.0, 8);
  const AuditResult r =
      audit_field_item(grid, spec, grid.sum(), nullptr, nullptr, cheap_audit());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.summary().find("non_finite"), std::string::npos);
}

TEST(Audit, CatchesNegativeCell) {
  Grid2D grid = make_grid(8, 1.0);
  grid.at(0, 0) = -1e-3;
  const FieldSpec spec = FieldSpec::centered({0, 0, 0}, 1.0, 8);
  const AuditResult r =
      audit_field_item(grid, spec, grid.sum(), nullptr, nullptr, cheap_audit());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.summary().find("negative"), std::string::npos);
}

TEST(Audit, CatchesMassMismatch) {
  // A corrupted field (here: one silently doubled cell, the kind of damage a
  // bad checkpoint decode or torn write would produce) breaks conservation
  // against the kernel's independent ray-mass accumulation.
  Grid2D grid = make_grid(8, 1.0);
  const double honest_mass = grid.sum();
  grid.at(5, 5) *= 2.0;
  const FieldSpec spec = FieldSpec::centered({0, 0, 0}, 1.0, 8);
  const AuditResult r =
      audit_field_item(grid, spec, honest_mass, nullptr, nullptr, cheap_audit());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.summary().find("mass"), std::string::npos);
}

TEST(Audit, NaNRayMassSkipsTheMassCheck) {
  // Kernels without an independent accumulation (tess, walking) report NaN;
  // the scans still run but conservation is not judged.
  Grid2D grid = make_grid(8, 1.0);
  const FieldSpec spec = FieldSpec::centered({0, 0, 0}, 1.0, 8);
  const AuditResult r = audit_field_item(
      grid, spec, std::numeric_limits<double>::quiet_NaN(), nullptr, nullptr,
      cheap_audit());
  EXPECT_TRUE(r.ok());
}

// ---- watchdog ---------------------------------------------------------------

TEST(Watchdog, CancelsSlowItemWithinTwiceTheDeadline) {
  // A deliberately slow item: a dense 100k-point cube whose triangulation
  // takes far longer than the budget. Cooperative cancellation must land
  // within 2x the deadline and contain the item as a failed zero grid.
  Rng rng(7);
  std::vector<Vec3> cube;
  cube.reserve(100000);
  for (int i = 0; i < 100000; ++i)
    cube.push_back({rng.uniform(1.0, 5.0), rng.uniform(1.0, 5.0),
                    rng.uniform(1.0, 5.0)});
  PipelineOptions opt;
  opt.field_length = 4.0;
  opt.field_resolution = 32;
  const double budget_ms = 400.0;
  const Deadline deadline = Deadline::after_ms(budget_ms);
  ItemRecord rec;
  const auto t0 = std::chrono::steady_clock::now();
  const FieldGrid grid =
      compute_field_item(std::move(cube), 1.0, {3, 3, 3}, opt, rec, &deadline);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_TRUE(rec.failed);
  EXPECT_TRUE(rec.cancelled);
  EXPECT_NE(rec.fail_reason.find("deadline"), std::string::npos)
      << rec.fail_reason;
  EXPECT_EQ(grid.sum(), 0.0);
  EXPECT_LT(elapsed_ms, 2.0 * budget_ms)
      << "cancellation latency exceeded the acceptance bound";
}

TEST(Watchdog, UnarmedDeadlineNeverCancels) {
  Rng rng(8);
  std::vector<Vec3> cube;
  for (int i = 0; i < 500; ++i)
    cube.push_back({rng.uniform(1.0, 5.0), rng.uniform(1.0, 5.0),
                    rng.uniform(1.0, 5.0)});
  PipelineOptions opt;
  opt.field_length = 4.0;
  opt.field_resolution = 16;
  const Deadline unarmed;
  ItemRecord rec;
  const FieldGrid grid =
      compute_field_item(std::move(cube), 1.0, {3, 3, 3}, opt, rec, &unarmed);
  EXPECT_FALSE(rec.failed);
  EXPECT_FALSE(rec.cancelled);
  EXPECT_GT(grid.sum(), 0.0);
}

// ---- crash-handler item registry -------------------------------------------

TEST(CrashRegistry, TracksInFlightItems) {
  const int before = crash_items_in_flight();
  {
    const ScopedCrashItem a(0, 42, "execute_local");
    const ScopedCrashItem b(1, 7, "received");
    EXPECT_EQ(crash_items_in_flight(), before + 2);
  }
  EXPECT_EQ(crash_items_in_flight(), before);
}

TEST(CrashHandlerDeathTest, ReportsSignalAndInFlightItem) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  install_crash_handler();
  EXPECT_DEATH(
      {
        const ScopedCrashItem item(3, 123, "execute_local");
        raise(SIGSEGV);
      },
      "rank 3 item 123 phase execute_local");
}

// ---- pipeline-level: audits, watchdog, resume -------------------------------

/// One octant of the 32^3 box gets a dense cluster (a guaranteed sender
/// under the workload model); the others get distinct light loads so the
/// schedule is deterministic. Same shape the fault suite's acceptance
/// scenario uses, sized down for four runs in one test.
ParticleSet clustered_set() {
  ParticleSet set;
  set.box_length = 32.0;
  set.particle_mass = 1.0;
  Rng rng(1234);
  for (int i = 0; i < 20000; ++i)
    set.positions.push_back({rng.uniform(5.0, 11.0), rng.uniform(5.0, 11.0),
                             rng.uniform(5.0, 11.0)});
  for (int o = 1; o < 8; ++o) {
    const double ox = (o & 1) ? 16.0 : 0.0;
    const double oy = (o & 2) ? 16.0 : 0.0;
    const double oz = (o & 4) ? 16.0 : 0.0;
    const int n = 4000 + 400 * o;
    for (int i = 0; i < n; ++i)
      set.positions.push_back({ox + rng.uniform(0.5, 15.5),
                               oy + rng.uniform(0.5, 15.5),
                               oz + rng.uniform(0.5, 15.5)});
  }
  return set;
}

std::vector<Vec3> clustered_centers() {
  std::vector<Vec3> centers;
  for (int ix = 0; ix < 3; ++ix)
    for (int iy = 0; iy < 2; ++iy)
      for (int iz = 0; iz < 2; ++iz)
        centers.push_back({6.0 + 2.0 * ix, 7.0 + 2.0 * iy, 7.0 + 2.0 * iz});
  for (int o = 1; o < 8; ++o) {
    const double ox = (o & 1) ? 16.0 : 0.0;
    const double oy = (o & 2) ? 16.0 : 0.0;
    const double oz = (o & 4) ? 16.0 : 0.0;
    centers.push_back({ox + 5.0, oy + 8.0, oz + 8.0});
    centers.push_back({ox + 11.0, oy + 8.0, oz + 8.0});
  }
  return centers;
}

PipelineOptions durable_options() {
  PipelineOptions opt;
  opt.field_length = 3.0;
  opt.field_resolution = 16;
  opt.comm_timeout_ms = 500;
  opt.keep_grids = true;
  return opt;
}

TEST(PipelineAudit, FullModeAuditsEveryItemWithZeroViolations) {
  const ParticleSet set = clustered_set();
  const std::vector<Vec3> centers = clustered_centers();
  PipelineOptions opt = durable_options();
  opt.audit.level = AuditLevel::kFull;

  std::mutex mtx;
  std::size_t audited = 0, violations = 0, computed = 0;
  simmpi::run(4, [&](simmpi::Comm& c) {
    const PipelineResult res = run_pipeline(c, set, centers, opt);
    const std::lock_guard<std::mutex> lock(mtx);
    violations += res.audit_violations;
    for (const ItemRecord& it : res.items) {
      ++computed;
      if (!it.audit.empty()) {
        ++audited;
        EXPECT_EQ(it.audit, "pass") << "item " << it.request_index;
      }
    }
  });
  EXPECT_EQ(violations, 0u);
  EXPECT_EQ(audited, computed);
  EXPECT_GE(audited, centers.size());
}

TEST(PipelineWatchdog, TinyDeadlineContainsItemsWithoutKillingRanks) {
  const ParticleSet set = clustered_set();
  const std::vector<Vec3> centers = clustered_centers();
  PipelineOptions opt = durable_options();
  opt.item_deadline_ms = 0.01;  // everything with any real work expires

  std::mutex mtx;
  std::size_t cancelled = 0;
  std::set<std::ptrdiff_t> completed;
  std::set<int> dead;
  simmpi::run(4, [&](simmpi::Comm& c) {
    const PipelineResult res = run_pipeline(c, set, centers, opt);
    const std::lock_guard<std::mutex> lock(mtx);
    cancelled += res.items_cancelled;
    for (const ItemRecord& it : res.items)
      if (it.request_index >= 0) completed.insert(it.request_index);
    for (const int r : res.failed_ranks) dead.insert(r);
  });
  EXPECT_GT(cancelled, 0u);
  EXPECT_TRUE(dead.empty()) << "the watchdog must contain, not kill";
  EXPECT_EQ(completed.size(), centers.size());
}

TEST(PipelineWatchdog, AutoBudgetFromTheCostModelCancelsNothingHealthy) {
  const ParticleSet set = clustered_set();
  const std::vector<Vec3> centers = clustered_centers();
  PipelineOptions opt = durable_options();
  opt.item_deadline_ms = 0.0;  // derive from the fitted model x slack

  std::mutex mtx;
  std::size_t cancelled = 0, failed = 0;
  simmpi::run(4, [&](simmpi::Comm& c) {
    const PipelineResult res = run_pipeline(c, set, centers, opt);
    const std::lock_guard<std::mutex> lock(mtx);
    cancelled += res.items_cancelled;
    failed += res.items_failed;
  });
  EXPECT_EQ(cancelled, 0u);
  EXPECT_EQ(failed, 0u);
}

// ---- end-to-end acceptance: kill + damaged journals + resume ----------------

TEST(PipelineResume, KillAndDamagedJournalsResumeBitwiseIdentical) {
  const ScratchDir ckpt("pdtfe_resume_ckpt");
  const ParticleSet set = clustered_set();
  const std::vector<Vec3> centers = clustered_centers();
  const PipelineOptions base_opt = durable_options();

  // (1) Uninterrupted baseline, no checkpointing: the reference grids.
  //     Also discover a work-sharing receiver to kill later.
  std::mutex mtx;
  std::map<std::ptrdiff_t, FieldGrid> base_grids;
  std::map<int, int> receiver_to_sender;
  simmpi::run(4, [&](simmpi::Comm& c) {
    const PipelineResult res = run_pipeline(c, set, centers, base_opt);
    const std::lock_guard<std::mutex> lock(mtx);
    for (std::size_t i = 0; i < res.items.size(); ++i)
      if (res.items[i].request_index >= 0)
        base_grids.emplace(res.items[i].request_index, res.grids[i]);
    if (!res.schedule.recv_list.empty())
      receiver_to_sender[c.rank()] = res.schedule.recv_list[0];
  });
  ASSERT_EQ(base_grids.size(), centers.size());
  ASSERT_FALSE(receiver_to_sender.empty())
      << "the clustered workload produced no work-sharing receiver";

  // (2) Interrupted run: checkpointing on, and a receiver dies at its first
  //     work-package operation. The run completes via recovery; every
  //     surviving commit is in some journal.
  PipelineOptions ckpt_opt = base_opt;
  ckpt_opt.checkpoint_dir = ckpt.path();
  const int receiver = receiver_to_sender.begin()->first;
  const simmpi::FaultPlan plan = simmpi::FaultPlan::parse(
      "kill:rank=" + std::to_string(receiver) + ",tag=200,at=1");
  simmpi::RunOptions run_opts;
  run_opts.fault_plan = &plan;
  simmpi::run(4, run_opts, [&](simmpi::Comm& c) {
    (void)run_pipeline(c, set, centers, ckpt_opt);
  });

  // (3) Crash damage on top: tear the tail of one journal and delete another
  //     outright, so the resume must both replay and recompute.
  std::vector<fs::path> journals;
  for (const auto& e : fs::directory_iterator(ckpt.path()))
    if (e.path().filename().string().rfind("journal-rank-", 0) == 0)
      journals.push_back(e.path());
  std::sort(journals.begin(), journals.end());
  ASSERT_GE(journals.size(), 2u);
  fs::resize_file(journals.front(), fs::file_size(journals.front()) - 29);
  fs::remove(journals.back());

  // (4) Resume: replayed + recomputed grids must be BITWISE identical to the
  //     uninterrupted baseline.
  PipelineOptions resume_opt = ckpt_opt;
  resume_opt.resume = true;
  std::map<std::ptrdiff_t, FieldGrid> resumed_grids;
  std::size_t replayed = 0, recomputed = 0;
  simmpi::run(4, [&](simmpi::Comm& c) {
    const PipelineResult res = run_pipeline(c, set, centers, resume_opt);
    const std::lock_guard<std::mutex> lock(mtx);
    replayed += res.items_replayed;
    for (std::size_t i = 0; i < res.items.size(); ++i) {
      if (res.items[i].request_index < 0) continue;
      resumed_grids.emplace(res.items[i].request_index, res.grids[i]);
      if (!res.items[i].replayed) ++recomputed;
    }
  });
  EXPECT_GT(replayed, 0u) << "no committed items were replayed";
  EXPECT_GT(recomputed, 0u) << "journal damage should force recomputation";
  ASSERT_EQ(resumed_grids.size(), centers.size());
  for (const auto& [id, base] : base_grids) {
    ASSERT_TRUE(resumed_grids.count(id)) << "field " << id << " missing";
    EXPECT_TRUE(bitwise_equal(resumed_grids.at(id), base))
        << "field " << id << " not bitwise identical after resume";
  }
}

// The same acceptance bar for the multi-channel engine: an interrupted
// --field=velocity --smooth-ensemble=4 run, resumed from (undamaged)
// journals, must reproduce the uninterrupted run's three-plane grids
// BITWISE — v2 records replay exactly and recomputed items re-derive the
// same jitter streams and velocity model from the run seed.
TEST(PipelineResume, VelocityEnsembleKillAndResumeBitwiseIdentical) {
  const ScratchDir ckpt("pdtfe_resume_vel_ckpt");
  const ParticleSet set = clustered_set();
  const std::vector<Vec3> centers = clustered_centers();
  PipelineOptions base_opt = durable_options();
  base_opt.field = FieldKind::kVelocity;
  base_opt.smooth_ensemble = 4;

  // (1) Uninterrupted baseline; also discover a work-sharing receiver.
  std::mutex mtx;
  std::map<std::ptrdiff_t, FieldGrid> base_grids;
  std::map<int, int> receiver_to_sender;
  simmpi::run(4, [&](simmpi::Comm& c) {
    const PipelineResult res = run_pipeline(c, set, centers, base_opt);
    const std::lock_guard<std::mutex> lock(mtx);
    for (std::size_t i = 0; i < res.items.size(); ++i)
      if (res.items[i].request_index >= 0)
        base_grids.emplace(res.items[i].request_index, res.grids[i]);
    if (!res.schedule.recv_list.empty())
      receiver_to_sender[c.rank()] = res.schedule.recv_list[0];
  });
  ASSERT_EQ(base_grids.size(), centers.size());
  for (const auto& [id, grid] : base_grids) {
    EXPECT_EQ(grid.kind(), FieldKind::kVelocity) << "field " << id;
    ASSERT_EQ(grid.channels(), 3u) << "field " << id;
  }
  ASSERT_FALSE(receiver_to_sender.empty())
      << "the clustered workload produced no work-sharing receiver";

  // (2) Interrupted run with checkpointing: a receiver dies at its first
  //     work-package operation, the run completes via recovery.
  PipelineOptions ckpt_opt = base_opt;
  ckpt_opt.checkpoint_dir = ckpt.path();
  const int receiver = receiver_to_sender.begin()->first;
  const simmpi::FaultPlan plan = simmpi::FaultPlan::parse(
      "kill:rank=" + std::to_string(receiver) + ",tag=200,at=1");
  simmpi::RunOptions run_opts;
  run_opts.fault_plan = &plan;
  simmpi::run(4, run_opts, [&](simmpi::Comm& c) {
    (void)run_pipeline(c, set, centers, ckpt_opt);
  });

  // (3) Resume: replayed v2 records + any recomputed items must be BITWISE
  //     identical to the uninterrupted baseline, channel by channel.
  PipelineOptions resume_opt = ckpt_opt;
  resume_opt.resume = true;
  std::map<std::ptrdiff_t, FieldGrid> resumed_grids;
  std::size_t replayed = 0;
  simmpi::run(4, [&](simmpi::Comm& c) {
    const PipelineResult res = run_pipeline(c, set, centers, resume_opt);
    const std::lock_guard<std::mutex> lock(mtx);
    replayed += res.items_replayed;
    for (std::size_t i = 0; i < res.items.size(); ++i)
      if (res.items[i].request_index >= 0)
        resumed_grids.emplace(res.items[i].request_index, res.grids[i]);
  });
  EXPECT_GT(replayed, 0u) << "no committed items were replayed";
  ASSERT_EQ(resumed_grids.size(), centers.size());
  for (const auto& [id, base] : base_grids) {
    ASSERT_TRUE(resumed_grids.count(id)) << "field " << id << " missing";
    EXPECT_TRUE(bitwise_equal(resumed_grids.at(id), base))
        << "field " << id << " not bitwise identical after resume";
  }
}

TEST(PipelineResume, ManifestMismatchRefusesToResume) {
  const ScratchDir ckpt("pdtfe_resume_mismatch");
  write_checkpoint_manifest(ckpt.path(), "some-other-problem\n");
  ParticleSet set;
  set.box_length = 16.0;
  set.particle_mass = 1.0;
  Rng rng(5);
  for (int i = 0; i < 2000; ++i)
    set.positions.push_back(
        {rng.uniform(1.0, 15.0), rng.uniform(1.0, 15.0), rng.uniform(1.0, 15.0)});
  PipelineOptions opt;
  opt.field_length = 3.0;
  opt.field_resolution = 16;
  opt.checkpoint_dir = ckpt.path();
  opt.resume = true;
  const std::vector<Vec3> centers = {{8.0, 8.0, 8.0}};
  EXPECT_THROW(
      simmpi::run(1, [&](simmpi::Comm& c) { (void)run_pipeline(c, set, centers, opt); }),
      Error);
}

}  // namespace
}  // namespace dtfe
