// Tests for the extension features: rotated projections, snapshot-driven
// pipeline, grid mass assignment and power-spectrum measurement.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/dtfe.h"
#include "util/rng.h"

namespace dtfe {
namespace {

// ---------------- rotation --------------------------------------------------

TEST(Rotation, OrthonormalAndInverse) {
  Rng rng(3);
  for (int iter = 0; iter < 100; ++iter) {
    const Vec3 axis{rng.normal(), rng.normal(), rng.normal()};
    const Rotation r = Rotation::about_axis(axis, rng.uniform(-3.0, 3.0));
    // Rows orthonormal.
    for (int i = 0; i < 3; ++i) {
      EXPECT_NEAR(r.rows[i].norm(), 1.0, 1e-12);
      for (int j = i + 1; j < 3; ++j)
        EXPECT_NEAR(r.rows[i].dot(r.rows[j]), 0.0, 1e-12);
    }
    // apply_inverse undoes apply.
    const Vec3 p{rng.normal(), rng.normal(), rng.normal()};
    const Vec3 back = r.apply_inverse(r.apply(p));
    EXPECT_NEAR(back.x, p.x, 1e-12);
    EXPECT_NEAR(back.y, p.y, 1e-12);
    EXPECT_NEAR(back.z, p.z, 1e-12);
  }
}

TEST(Rotation, AxisIsFixedPoint) {
  const Vec3 axis{1, 2, -1};
  const Rotation r = Rotation::about_axis(axis, 1.234);
  const Vec3 a = axis.normalized();
  const Vec3 ra = r.apply(a);
  EXPECT_NEAR(ra.x, a.x, 1e-12);
  EXPECT_NEAR(ra.y, a.y, 1e-12);
  EXPECT_NEAR(ra.z, a.z, 1e-12);
}

TEST(Rotation, FrameMapsDirectionToZ) {
  Rng rng(5);
  for (int iter = 0; iter < 50; ++iter) {
    Vec3 d{rng.normal(), rng.normal(), rng.normal()};
    if (d.norm() < 1e-6) continue;
    const Rotation f = Rotation::frame_for_direction(d);
    const Vec3 z = f.apply(d.normalized());
    EXPECT_NEAR(z.x, 0.0, 1e-12);
    EXPECT_NEAR(z.y, 0.0, 1e-12);
    EXPECT_NEAR(z.z, 1.0, 1e-12);
  }
}

TEST(Rotation, ComposeMatchesSequentialApplication) {
  const Rotation a = Rotation::about_axis({0, 0, 1}, 0.7);
  const Rotation b = Rotation::about_axis({1, 0, 0}, -1.1);
  const Rotation ab = a.compose(b);
  const Vec3 p{0.3, -0.8, 0.5};
  const Vec3 seq = a.apply(b.apply(p));
  const Vec3 cmp = ab.apply(p);
  EXPECT_NEAR(cmp.x, seq.x, 1e-12);
  EXPECT_NEAR(cmp.y, seq.y, 1e-12);
  EXPECT_NEAR(cmp.z, seq.z, 1e-12);
}

TEST(RotatedReconstruction, XProjectionMatchesRotatedZProjection) {
  // Integrating along +x via rotated_for_direction must equal brute-force
  // marching along x (which we obtain by manually swapping coordinates).
  const auto set = generate_uniform(1500, 1.0, 21);
  const Reconstructor recon(set.positions, 1.0);
  const Reconstructor along_x = recon.rotated_for_direction({1, 0, 0});

  // Manual frame: frame_for_direction({1,0,0}) maps x→z; the in-plane axes
  // are u = y×? — just compare integrals of matching lines by inverse-
  // transforming sample line anchors.
  const Rotation f = Rotation::frame_for_direction({1, 0, 0});
  Rng rng(31);
  int tested = 0;
  for (int iter = 0; iter < 40; ++iter) {
    // A point in the box interior; its rotated image anchors the line.
    const Vec3 p{0.0, rng.uniform(0.3, 0.7), rng.uniform(0.3, 0.7)};
    const Vec3 q = f.apply(p);
    const double got = along_x.integrate_los(q.x, q.y, -10.0, 10.0);
    // Reference: swap coordinates so x becomes z and integrate vertically.
    std::vector<Vec3> swapped;
    swapped.reserve(set.positions.size());
    for (const Vec3& s : set.positions) swapped.push_back({s.y, s.z, s.x});
    static const Reconstructor ref(swapped, 1.0);  // cache across iterations
    const double expect = ref.integrate_los(p.y, p.z, -10.0, 10.0);
    if (expect <= 0.0) continue;
    ++tested;
    EXPECT_NEAR(got, expect, 1e-6 * expect) << iter;
  }
  EXPECT_GT(tested, 20);
}

// ---------------- snapshot pipeline -----------------------------------------

TEST(SnapshotPipeline, MatchesInMemoryPipeline) {
  HaloModelOptions gen;
  gen.n_particles = 12000;
  gen.box_length = 24.0;
  gen.n_halos = 6;
  gen.seed = 77;
  ParticleSet set = generate_halo_model(gen);
  set.particle_mass = 1.0;
  const std::string path = "/tmp/pdtfe_pipeline_snapshot.bin";
  write_snapshot(path, set, 3);  // 27 blocks round-robined over ranks

  Rng rng(13);
  std::vector<Vec3> centers;
  for (int i = 0; i < 10; ++i)
    centers.push_back(set.positions[rng.uniform_index(set.positions.size())]);

  PipelineOptions opt;
  opt.field_length = 3.0;
  opt.field_resolution = 16;
  opt.keep_grids = true;

  auto collect = [&](bool from_snapshot) {
    std::vector<std::pair<double, double>> sums;
    std::mutex mtx;
    simmpi::run(4, [&](simmpi::Comm& comm) {
      const PipelineResult res =
          from_snapshot
              ? run_pipeline_from_snapshot(comm, path, centers, opt)
              : run_pipeline(comm, set, centers, opt);
      std::lock_guard<std::mutex> lock(mtx);
      for (std::size_t i = 0; i < res.items.size(); ++i)
        sums.push_back({res.items[i].center.x * 1e6 +
                            res.items[i].center.y * 1e3 +
                            res.items[i].center.z,
                        res.grids[i].sum()});
    });
    std::sort(sums.begin(), sums.end());
    return sums;
  };

  const auto a = collect(true);
  const auto b = collect(false);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), centers.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].first, b[i].first, 1e-9);
    EXPECT_NEAR(a[i].second, b[i].second, 1e-9 * (std::abs(b[i].second) + 1));
  }
  std::remove(path.c_str());
}

// ---------------- grid assignment --------------------------------------------

class AssignmentSchemes
    : public ::testing::TestWithParam<AssignmentScheme> {};

TEST_P(AssignmentSchemes, ConservesMass3d) {
  const auto set = generate_uniform(5000, 10.0, 3);
  const Grid3D g = assign_density_3d(set, 16, GetParam());
  double total = 0.0;
  const double cell = 10.0 / 16.0;
  for (std::size_t iz = 0; iz < 16; ++iz)
    for (std::size_t iy = 0; iy < 16; ++iy)
      for (std::size_t ix = 0; ix < 16; ++ix)
        total += g.at(ix, iy, iz) * cell * cell * cell;
  EXPECT_NEAR(total, 5000.0, 1e-6 * 5000.0);
}

TEST_P(AssignmentSchemes, ConservesMass2d) {
  const auto set = generate_uniform(5000, 10.0, 4);
  const Grid2D g = assign_surface_density(set, 32, GetParam());
  const double cell = 10.0 / 32.0;
  EXPECT_NEAR(g.sum() * cell * cell, 5000.0, 1e-6 * 5000.0);
}

TEST_P(AssignmentSchemes, PeriodicWrapAtEdges) {
  ParticleSet set;
  set.box_length = 8.0;
  set.positions = {{0.01, 4.0, 4.0}, {7.99, 4.0, 4.0}};
  const Grid2D g = assign_surface_density(set, 8, GetParam());
  const double cell = 1.0;
  EXPECT_NEAR(g.sum() * cell * cell, 2.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, AssignmentSchemes,
                         ::testing::Values(AssignmentScheme::kNgp,
                                           AssignmentScheme::kCic,
                                           AssignmentScheme::kTsc),
                         [](const auto& info) {
                           switch (info.param) {
                             case AssignmentScheme::kNgp: return "NGP";
                             case AssignmentScheme::kCic: return "CIC";
                             default: return "TSC";
                           }
                         });

TEST(GridAssign, CicSplitsAcrossCells) {
  // A particle exactly between two cell centers splits 50/50 with CIC but
  // lands in one cell with NGP.
  ParticleSet set;
  set.box_length = 4.0;
  set.positions = {{1.0, 0.5, 0.5}};  // boundary between cells 0 and 1 (cell=1)
  const Grid3D cic = assign_density_3d(set, 4, AssignmentScheme::kCic);
  EXPECT_NEAR(cic.at(0, 0, 0), cic.at(1, 0, 0), 1e-12);
  const Grid3D ngp = assign_density_3d(set, 4, AssignmentScheme::kNgp);
  EXPECT_GT(ngp.at(1, 0, 0), 0.0);
  EXPECT_EQ(ngp.at(0, 0, 0), 0.0);
}

// ---------------- power spectra -----------------------------------------------

TEST(FieldStatistics, WhiteNoiseIsFlatShotNoise) {
  // Poisson particles: P(k) = 1/n̄ (shot noise), flat in k.
  const std::size_t n = 20000;
  const double box = 50.0;
  const auto set = generate_uniform(n, box, 5);
  const Grid3D g = assign_density_3d(set, 32, AssignmentScheme::kNgp);
  const auto ps = measure_power_spectrum(g, box, 8);
  const double shot = box * box * box / static_cast<double>(n);
  int checked = 0;
  for (const auto& bin : ps) {
    if (bin.modes < 50 || bin.k > 1.5) continue;  // avoid NGP window damping
    ++checked;
    EXPECT_NEAR(bin.power, shot, 0.35 * shot) << "k=" << bin.k;
  }
  EXPECT_GE(checked, 3);
}

TEST(FieldStatistics, ZeldovichSpectrumAboveShotNoise) {
  // The generator's clustered field must show large-scale power well above
  // the shot-noise floor, decreasing toward small scales (CDM-like shape).
  ZeldovichOptions opt;
  opt.grid = 32;
  opt.box_length = 100.0;
  opt.rms_displacement = 1.5;
  opt.seed = 5;
  const auto set = generate_zeldovich(opt);
  const Grid3D g = assign_density_3d(set, 32, AssignmentScheme::kCic);
  const auto ps = measure_power_spectrum(g, 100.0, 8);
  const double shot =
      100.0 * 100.0 * 100.0 / static_cast<double>(set.size());
  ASSERT_GE(ps.size(), 4u);
  EXPECT_GT(ps[1].power, 5.0 * shot);
}

TEST(FieldStatistics, SurfaceDensity2dSpectrumRuns) {
  const auto set = generate_uniform(10000, 10.0, 7);
  const Grid2D g = assign_surface_density(set, 64, AssignmentScheme::kCic);
  const auto ps = measure_power_spectrum_2d(g, 10.0, 8);
  std::size_t total_modes = 0;
  for (const auto& bin : ps) total_modes += bin.modes;
  EXPECT_GT(total_modes, 500u);
  for (const auto& bin : ps)
    if (bin.modes) EXPECT_GE(bin.power, 0.0);
}

TEST(AdaptiveRefinement, ImprovesMassRecoveryOnClusteredData) {
  // Dynamic grid spacing: the quadtree mode must recover the (sub-grid-
  // scale) halo masses better than single-center sampling.
  HaloModelOptions gen;
  gen.n_particles = 8000;
  gen.box_length = 1.0;
  gen.n_halos = 5;
  gen.radius_fraction = 0.02;  // halos well below the grid scale
  gen.seed = 3;
  const auto set = generate_halo_model(gen);
  const Reconstructor recon(set.positions, 1.0);

  FieldSpec spec;
  spec.origin = {-0.05, -0.05};
  spec.length = 1.1;
  spec.resolution = 24;  // coarse: cells ≫ halo cores

  MarchingOptions plain;
  MarchingOptions adaptive;
  adaptive.adaptive_max_depth = 4;
  adaptive.adaptive_tolerance = 0.2;
  const double area = spec.cell_size() * spec.cell_size();
  const double m_plain = recon.surface_density(spec, plain).sum() * area;
  const double m_adapt = recon.surface_density(spec, adaptive).sum() * area;
  const double expect = static_cast<double>(set.size());
  EXPECT_LT(std::abs(m_adapt - expect), std::abs(m_plain - expect));
  EXPECT_NEAR(m_adapt, expect, 0.05 * expect);
}

TEST(AdaptiveRefinement, NoRefinementOnSmoothFields) {
  // On a near-uniform field the corner samples agree, so adaptive mode must
  // cost barely more than 4 plain lines per cell.
  const auto set = generate_uniform(3000, 1.0, 9);
  const Reconstructor recon(set.positions, 1.0);
  FieldSpec spec;
  spec.origin = {0.2, 0.2};
  spec.length = 0.6;
  spec.resolution = 8;
  MarchingOptions adaptive;
  adaptive.adaptive_max_depth = 5;
  adaptive.adaptive_tolerance = 0.5;
  const MarchingKernel k(recon.density(), recon.hull(), adaptive);
  (void)k.render(spec);
  // ≤ ~2 levels of refinement on average.
  EXPECT_LT(k.stats().tetra_crossed, 64u * 4u * 5u * 60u);
}

}  // namespace
}  // namespace dtfe
