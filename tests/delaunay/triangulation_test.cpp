#include "delaunay/triangulation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "geometry/predicates.h"
#include "geometry/tetra_math.h"
#include "util/error.h"
#include "util/rng.h"

namespace dtfe {
namespace {

std::vector<Vec3> random_points(std::size_t n, std::uint64_t seed,
                                double lo = 0.0, double hi = 1.0) {
  Rng rng(seed);
  std::vector<Vec3> pts(n);
  for (auto& p : pts)
    p = {rng.uniform(lo, hi), rng.uniform(lo, hi), rng.uniform(lo, hi)};
  return pts;
}

TEST(Triangulation, SingleTetra) {
  const std::vector<Vec3> pts = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  Triangulation tri(pts);
  tri.validate(true);
  EXPECT_EQ(tri.finite_cells().size(), 1u);
  EXPECT_EQ(tri.infinite_cells().size(), 4u);
  EXPECT_EQ(tri.num_unique_vertices(), 4u);
}

TEST(Triangulation, FivePointsInteriorPoint) {
  // 4 corners + strictly interior point → 4 finite tets.
  const std::vector<Vec3> pts = {
      {0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {0.2, 0.2, 0.2}};
  Triangulation tri(pts);
  tri.validate(true);
  EXPECT_EQ(tri.finite_cells().size(), 4u);
}

TEST(Triangulation, FivePointsOutsideHull) {
  const std::vector<Vec3> pts = {
      {0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {2.0, 2.0, 2.0}};
  Triangulation tri(pts);
  tri.validate(true);
  EXPECT_GE(tri.finite_cells().size(), 2u);
}

TEST(Triangulation, RandomPointsAreDelaunay) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto pts = random_points(120, seed);
    Triangulation tri(pts);
    tri.validate(/*check_delaunay=*/true);
  }
}

TEST(Triangulation, RandomWithoutSpatialSort) {
  auto pts = random_points(120, 9);
  Triangulation::Options opt;
  opt.spatial_sort = false;
  Triangulation tri(pts, opt);
  tri.validate(true);
}

TEST(Triangulation, GridPointsHighlyDegenerate) {
  // Integer grid: massively cospherical/coplanar configurations exercise the
  // exact predicate fallbacks and the coplanar hull-conflict rule.
  std::vector<Vec3> pts;
  for (int x = 0; x < 5; ++x)
    for (int y = 0; y < 5; ++y)
      for (int z = 0; z < 5; ++z) pts.push_back({double(x), double(y), double(z)});
  Triangulation tri(pts);
  tri.validate(/*check_delaunay=*/true);
  EXPECT_EQ(tri.num_unique_vertices(), 125u);
  // The convex hull of the 5³ grid is the cube; total volume of all finite
  // tetras must be 4³.
  double vol = 0.0;
  for (const CellId c : tri.finite_cells()) {
    const auto p = tri.cell_points(c);
    vol += tetra_volume(p[0], p[1], p[2], p[3]);
  }
  EXPECT_NEAR(vol, 64.0, 1e-9);
}

TEST(Triangulation, DuplicatePointsAreMapped) {
  auto pts = random_points(50, 4);
  pts.push_back(pts[10]);
  pts.push_back(pts[20]);
  pts.push_back(pts[10]);
  Triangulation tri(pts);
  tri.validate(true);
  EXPECT_EQ(tri.num_unique_vertices(), 50u);
  EXPECT_TRUE(tri.is_duplicate(50));
  EXPECT_EQ(tri.duplicate_of(50), 10);
  EXPECT_EQ(tri.duplicate_of(51), 20);
  EXPECT_EQ(tri.duplicate_of(52), 10);
  EXPECT_EQ(tri.duplicate_of(5), 5);
}

TEST(Triangulation, CollinearStartThenFull) {
  // The first points are collinear/coplanar: initial simplex search must
  // skip past them.
  std::vector<Vec3> pts = {{0, 0, 0}, {1, 0, 0}, {2, 0, 0}, {3, 0, 0},
                           {0, 1, 0}, {1, 2, 0}, {0.3, 0.3, 2.0}};
  Triangulation::Options opt;
  opt.spatial_sort = false;
  Triangulation tri(pts, opt);
  tri.validate(true);
  EXPECT_EQ(tri.num_unique_vertices(), 7u);
}

TEST(Triangulation, ThrowsOnDegenerateInputs) {
  EXPECT_THROW(Triangulation(std::vector<Vec3>{{0, 0, 0}, {1, 1, 1}}), Error);
  // all coplanar
  std::vector<Vec3> plane;
  for (int i = 0; i < 10; ++i)
    plane.push_back({double(i), double(i * i % 7), 0.0});
  EXPECT_THROW(Triangulation{plane}, Error);
  // all collinear
  std::vector<Vec3> line;
  for (int i = 0; i < 8; ++i) line.push_back({double(i), double(2 * i), double(-i)});
  EXPECT_THROW(Triangulation{line}, Error);
  // all identical
  std::vector<Vec3> same(6, Vec3{1, 2, 3});
  EXPECT_THROW(Triangulation{same}, Error);
}

TEST(Triangulation, LocateInsideEveryCell) {
  auto pts = random_points(80, 12);
  Triangulation tri(pts);
  Rng rng(55);
  for (const CellId c : tri.finite_cells()) {
    const auto p = tri.cell_points(c);
    // Random strictly interior point via barycentric mix.
    double w[4] = {rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0),
                   rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)};
    const double ws = w[0] + w[1] + w[2] + w[3];
    Vec3 q{0, 0, 0};
    for (int i = 0; i < 4; ++i) q += p[static_cast<std::size_t>(i)] * (w[i] / ws);
    const auto loc = tri.locate(q);
    ASSERT_EQ(loc.status, Triangulation::LocateStatus::kInside);
    // q must be inside (or on boundary of) the reported cell.
    const auto lp = tri.cell_points(loc.cell);
    for (int f = 0; f < 4; ++f) {
      EXPECT_LE(orient3d(lp[kTetraFace[f][0]], lp[kTetraFace[f][1]],
                         lp[kTetraFace[f][2]], q),
                0.0);
    }
  }
}

TEST(Triangulation, LocateOutsideHull) {
  auto pts = random_points(60, 13);
  Triangulation tri(pts);
  const auto loc = tri.locate({5.0, 5.0, 5.0});
  EXPECT_EQ(loc.status, Triangulation::LocateStatus::kOutsideHull);
  EXPECT_TRUE(tri.is_infinite(loc.cell));
}

TEST(Triangulation, LocateOnVertex) {
  auto pts = random_points(60, 14);
  Triangulation tri(pts);
  for (VertexId v : {0, 17, 59}) {
    const auto loc = tri.locate(pts[static_cast<std::size_t>(v)]);
    ASSERT_EQ(loc.status, Triangulation::LocateStatus::kOnVertex);
    EXPECT_EQ(loc.vertex, v);
  }
}

TEST(Triangulation, IncidentCellIsIncident) {
  auto pts = random_points(100, 15);
  Triangulation tri(pts);
  for (std::size_t v = 0; v < pts.size(); ++v) {
    const CellId c = tri.incident_cell(static_cast<VertexId>(v));
    ASSERT_NE(c, Triangulation::kNoCell);
    EXPECT_TRUE(tri.cell_alive(c));
    EXPECT_GE(tri.index_of(c, static_cast<VertexId>(v)), 0);
  }
}

TEST(Triangulation, EulerCharacteristicOnRandomInput) {
  // For a 3D triangulation of a convex region including the infinite vertex,
  // the one-point compactification is a triangulated 3-sphere:
  // V − E + F − T = 0, with V counting the infinite vertex.
  auto pts = random_points(150, 21);
  Triangulation tri(pts);

  std::set<std::pair<VertexId, VertexId>> edges;
  std::set<std::array<VertexId, 3>> faces;
  std::size_t ncells = 0;
  for (std::size_t i = 0; i < tri.cell_storage_size(); ++i) {
    const CellId c = static_cast<CellId>(i);
    if (!tri.cell_alive(c)) continue;
    ++ncells;
    const auto& t = tri.cell(c);
    for (int a = 0; a < 4; ++a)
      for (int b = a + 1; b < 4; ++b)
        edges.insert({std::min(t.v[a], t.v[b]), std::max(t.v[a], t.v[b])});
    for (int f = 0; f < 4; ++f) {
      std::array<VertexId, 3> fv = {t.v[kTetraFace[f][0]],
                                    t.v[kTetraFace[f][1]],
                                    t.v[kTetraFace[f][2]]};
      std::sort(fv.begin(), fv.end());
      faces.insert(fv);
    }
  }
  const std::ptrdiff_t V = static_cast<std::ptrdiff_t>(tri.num_unique_vertices()) + 1;
  const auto E = static_cast<std::ptrdiff_t>(edges.size());
  const auto F = static_cast<std::ptrdiff_t>(faces.size());
  const auto T = static_cast<std::ptrdiff_t>(ncells);
  EXPECT_EQ(V - E + F - T, 0);
  // Each facet is shared by exactly two cells.
  EXPECT_EQ(2 * F, 4 * T);
}

TEST(Triangulation, ClusteredPointsStressTest) {
  // Dense Gaussian blob plus sparse background — the N-body-like regime.
  Rng rng(31);
  std::vector<Vec3> pts;
  for (int i = 0; i < 300; ++i)
    pts.push_back({0.5 + 0.02 * rng.normal(), 0.5 + 0.02 * rng.normal(),
                   0.5 + 0.02 * rng.normal()});
  for (int i = 0; i < 100; ++i)
    pts.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
  Triangulation tri(pts);
  tri.validate(/*check_delaunay=*/true);
}

TEST(Triangulation, CosphericalShellPoints) {
  // Many points on (near) a common sphere: worst case for insphere ties.
  Rng rng(77);
  std::vector<Vec3> pts;
  for (int i = 0; i < 200; ++i) {
    Vec3 v{rng.normal(), rng.normal(), rng.normal()};
    v = v.normalized();
    // snap to a coarse lattice to force exact cosphericality often
    auto snap = [](double x) { return std::round(x * 64.0) / 64.0; };
    pts.push_back({snap(v.x), snap(v.y), snap(v.z)});
  }
  pts.push_back({0, 0, 0});
  Triangulation tri(pts);
  tri.validate(/*check_delaunay=*/true);
}

}  // namespace
}  // namespace dtfe
