#include "delaunay/voronoi.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "dtfe/density.h"
#include "util/rng.h"

namespace dtfe {
namespace {

std::vector<Vec3> random_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> pts(n);
  for (auto& p : pts) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  return pts;
}

TEST(EdgeCellRing, RingCellsShareTheEdgeAndChain) {
  const auto pts = random_points(120, 3);
  Triangulation tri(pts);
  std::vector<VertexId> nbrs;
  std::vector<CellId> scratch, ring;
  for (VertexId v : {5, 40, 99}) {
    tri.vertex_neighbors(v, nbrs, scratch);
    for (const VertexId u : nbrs) {
      const bool closed = edge_cell_ring(tri, v, u, ring);
      ASSERT_GE(ring.size(), closed ? 3u : 1u);
      for (const CellId c : ring) {
        EXPECT_GE(tri.index_of(c, v), 0);
        EXPECT_GE(tri.index_of(c, u), 0);
      }
      if (closed) {
        // consecutive ring cells are adjacent
        for (std::size_t k = 0; k < ring.size(); ++k) {
          const CellId a = ring[k];
          const CellId b = ring[(k + 1) % ring.size()];
          bool adjacent = false;
          for (int f = 0; f < 4; ++f)
            if (tri.cell(a).n[f] == b) adjacent = true;
          EXPECT_TRUE(adjacent);
        }
      }
    }
  }
}

TEST(VoronoiVolumes, JitteredLatticeInteriorCellsAreCorrect) {
  // A jittered lattice (jitter avoids degenerate cospherical ties whose
  // tie-broken duals have ambiguous per-cell volumes): each interior Voronoi
  // volume must be close to s³ and their sum exact within the jitter scale.
  Rng rng(7);
  std::vector<Vec3> pts;
  const double s = 0.2;
  const int n = 8;
  for (int x = 0; x < n; ++x)
    for (int y = 0; y < n; ++y)
      for (int z = 0; z < n; ++z)
        pts.push_back({(x + 0.5) * s + 0.01 * s * rng.normal(),
                       (y + 0.5) * s + 0.01 * s * rng.normal(),
                       (z + 0.5) * s + 0.01 * s * rng.normal()});
  Triangulation tri(pts);
  const auto vol = voronoi_volumes(tri);
  DensityField rho(tri, 1.0);
  int deep = 0;
  for (std::size_t v = 0; v < pts.size(); ++v) {
    if (rho.on_hull(static_cast<VertexId>(v))) {
      EXPECT_TRUE(std::isinf(vol[v]));
      continue;
    }
    // Only DEEP interior sites have lattice-regular cells: cells one layer
    // under the hull legitimately balloon (the unclipped Voronoi diagram has
    // huge near-boundary cells bounded by distant sliver circumcenters).
    const Vec3& p = pts[v];
    const double margin = 2.0 * s;
    if (p.x < margin || p.x > n * s - margin || p.y < margin ||
        p.y > n * s - margin || p.z < margin || p.z > n * s - margin)
      continue;
    ++deep;
    EXPECT_NEAR(vol[v], s * s * s, 0.15 * s * s * s);
  }
  EXPECT_GT(deep, 50);
}

TEST(VoronoiVolumes, BoundedCellsArePositiveAndFiniteOffHull) {
  const auto pts = random_points(300, 9);
  Triangulation tri(pts);
  const auto vol = voronoi_volumes(tri);
  DensityField rho(tri, 1.0);
  for (std::size_t v = 0; v < pts.size(); ++v) {
    const auto vid = static_cast<VertexId>(v);
    if (rho.on_hull(vid)) {
      EXPECT_TRUE(std::isinf(vol[v]));
    } else {
      EXPECT_TRUE(std::isfinite(vol[v]));
      EXPECT_GT(vol[v], 0.0);
    }
  }
}

TEST(VoronoiVolumes, InteriorVolumesPartitionInteriorSpace) {
  // Monte Carlo: sample points in a central sub-box; the fraction whose
  // nearest site is v estimates V_vor(v) ∩ box. Check the aggregate: the sum
  // of interior Voronoi volumes over sites well inside equals the measure of
  // space they claim.
  const auto pts = random_points(400, 11);
  Triangulation tri(pts);
  const auto vol = voronoi_volumes(tri);

  Rng rng(21);
  const int samples = 20000;
  std::vector<int> hits(pts.size(), 0);
  for (int i = 0; i < samples; ++i) {
    const Vec3 q{rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8),
                 rng.uniform(0.2, 0.8)};
    std::size_t best = 0;
    double bd = 1e300;
    for (std::size_t v = 0; v < pts.size(); ++v) {
      const double d = (pts[v] - q).norm2();
      if (d < bd) {
        bd = d;
        best = v;
      }
    }
    ++hits[best];
  }
  const double sample_vol = 0.6 * 0.6 * 0.6;
  // Compare MC volume with exact for well-sampled interior sites.
  int tested = 0;
  for (std::size_t v = 0; v < pts.size(); ++v) {
    if (hits[v] < 100 || std::isinf(vol[v])) continue;
    const double mc = sample_vol * hits[v] / samples;
    // Only trust sites whose cell is fully inside the sampling box: cell
    // diameter heuristic via mc≈vol agreement demanded loosely.
    if (pts[v].x < 0.3 || pts[v].x > 0.7 || pts[v].y < 0.3 ||
        pts[v].y > 0.7 || pts[v].z < 0.3 || pts[v].z > 0.7)
      continue;
    ++tested;
    EXPECT_NEAR(mc, vol[v], 0.35 * vol[v]) << "site " << v;
  }
  EXPECT_GT(tested, 3);
}

TEST(VoronoiVolumes, ZeroOrderDensityConservesMass) {
  // The whole point of the exact volumes: ρ₀ = m/V_vor summed over the deep
  // interior recovers ~1 particle per cell worth of mass when integrated
  // against the cell volumes — i.e. Σ ρ₀·V_vor = Σ m trivially, and the MC
  // column render built on it agrees with the DTFE mass scale (checked end
  // to end in kernels_test); here verify the per-site identity holds with
  // folded duplicate masses.
  auto pts = random_points(200, 13);
  pts.push_back(pts[3]);  // duplicate
  Triangulation tri(pts);
  const auto vol = voronoi_volumes(tri);
  DensityField rho(tri, 1.0);
  for (std::size_t v = 0; v < pts.size(); ++v) {
    const auto vid = static_cast<VertexId>(v);
    if (std::isinf(vol[v]) || tri.is_duplicate(vid)) continue;
    const double density = rho.vertex_mass(vid) / vol[v];
    EXPECT_NEAR(density * vol[v], rho.vertex_mass(vid), 1e-12);
    if (v == 3) EXPECT_DOUBLE_EQ(rho.vertex_mass(vid), 2.0);
  }
}

}  // namespace
}  // namespace dtfe
