// Engine-layer tests: the kernel registry contract, cross-kernel grid
// parity on one fixture cube, stage-by-stage equivalence with the one-call
// pipeline, and Engine::run_batch re-entrancy/determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <iterator>
#include <map>
#include <mutex>
#include <vector>

#include "engine/engine.h"
#include "engine/field_kernel.h"
#include "engine/stages.h"
#include "framework/pipeline.h"
#include "nbody/generators.h"
#include "util/error.h"

namespace dtfe::engine {
namespace {

/// One shared fixture cube: uniform particles, dense enough that every
/// kernel interpolates real tetrahedra rather than hull edge cases.
const ParticleSet& fixture_set() {
  static const ParticleSet set = generate_uniform(4000, 10.0, 7);
  return set;
}

FieldSpec fixture_spec(std::size_t ng = 32) {
  return FieldSpec::centered({5.0, 5.0, 5.0}, 4.0, ng);
}

TEST(KernelRegistry, BuiltinNamesRoundTrip) {
  const KernelRegistry& reg = KernelRegistry::builtin();
  const auto names = reg.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "march");
  EXPECT_EQ(names[1], "tess");
  EXPECT_EQ(names[2], "walk");
  for (const auto& name : names) {
    EXPECT_TRUE(reg.contains(name));
    const auto kernel = reg.create(name);
    ASSERT_NE(kernel, nullptr);
    EXPECT_EQ(kernel->name(), name);
  }
  EXPECT_FALSE(reg.contains("cic"));
  EXPECT_THROW(reg.create("cic"), Error);
}

TEST(KernelRegistry, CustomRegistryIsIndependent) {
  KernelRegistry reg;
  EXPECT_TRUE(reg.names().empty());
  reg.add("march2", [](const KernelOptions& o) {
    return std::make_unique<MarchingFieldKernel>(o.marching);
  });
  EXPECT_TRUE(reg.contains("march2"));
  EXPECT_FALSE(reg.contains("march"));  // builtin() is untouched
  EXPECT_TRUE(KernelRegistry::builtin().contains("march"));
  const auto kernel = reg.create("march2");
  EXPECT_STREQ(kernel->name(), "march");
}

TEST(FieldKernel, AllRegisteredKernelsRenderFiniteGrids) {
  const ParticleSet& set = fixture_set();
  const FieldCube cube(set.positions, set.particle_mass);
  EXPECT_EQ(cube.n_particles(), set.size());
  EXPECT_GT(cube.triangulate_seconds(), 0.0);
  const FieldSpec spec = fixture_spec();
  for (const auto& name : KernelRegistry::builtin().names()) {
    KernelStats stats;
    const FieldGrid grid = KernelRegistry::builtin().create(name)->render(
        cube, RenderRequest{spec}, nullptr, stats);
    EXPECT_EQ(grid.kind(), FieldKind::kDensity) << name;
    ASSERT_EQ(grid.channels(), 1u) << name;
    ASSERT_EQ(grid.nx(), spec.nx()) << name;
    double sum = 0.0;
    for (const double v : grid.plane(0).values()) {
      ASSERT_TRUE(std::isfinite(v)) << name;
      sum += v;
    }
    EXPECT_GT(sum, 0.0) << name;
  }
}

// The paper's Fig. 6 protocol as a whole-grid assertion: the marching kernel
// in fixed-z-plane mode and the walking 3D-grid baseline sample the SAME
// z planes (zmin + (k+0.5)·dz), so cell-by-cell they must agree to float
// tolerance — they evaluate the same interpolant at the same points.
TEST(FieldKernel, MarchingAndWalkingAgreeOnEqualCells) {
  const ParticleSet& set = fixture_set();
  const FieldCube cube(set.positions, set.particle_mass);
  const std::size_t ng = 24;
  const FieldSpec spec = fixture_spec(ng);

  KernelOptions kopt;
  kopt.marching.z_samples = static_cast<int>(ng);
  kopt.walking.z_resolution = ng;
  kopt.walking.monte_carlo_samples = 1;  // deterministic cell centers

  KernelStats ms, ws;
  const Grid2D march =
      KernelRegistry::builtin()
          .create("march", kopt)
          ->render(cube, RenderRequest{spec}, nullptr, ms)
          .plane(0);
  const Grid2D walk = KernelRegistry::builtin()
                          .create("walk", kopt)
                          ->render(cube, RenderRequest{spec}, nullptr, ws)
                          .plane(0);

  ASSERT_EQ(march.size(), walk.size());
  for (std::size_t i = 0; i < march.size(); ++i) {
    const double a = march.flat(i), b = walk.flat(i);
    const double scale = std::max({std::abs(a), std::abs(b), 1e-12});
    EXPECT_LE(std::abs(a - b) / scale, 1e-6) << "cell " << i;
  }
}

bool planes_bitwise_equal(const FieldGrid& a, const FieldGrid& b) {
  if (a.kind() != b.kind() || a.channels() != b.channels()) return false;
  for (std::size_t c = 0; c < a.channels(); ++c) {
    const auto& av = a.plane(c).values();
    const auto& bv = b.plane(c).values();
    if (av.size() != bv.size()) return false;
    for (std::size_t i = 0; i < av.size(); ++i)
      if (av[i] != bv[i]) return false;
  }
  return true;
}

// Every vector channel renders the declared number of planes, all finite,
// on both line-integrating kernels. The velocity planes must stay inside
// the analytic model's vertex-velocity envelope (each LOS-mean cell is a
// volume-weighted average of the linear interpolant).
TEST(FieldKernel, VectorChannelsRenderFiniteMultiChannelGrids) {
  const ParticleSet& set = fixture_set();
  const FieldCube cube(set.positions, set.particle_mass);
  const FieldSpec spec = fixture_spec(16);
  for (const char* kernel : {"march", "walk"}) {
    for (const FieldKind kind :
         {FieldKind::kVelocity, FieldKind::kVdiv, FieldKind::kGrad}) {
      RenderRequest request{spec};
      request.field = kind;
      request.model_seed = 42;
      KernelStats stats;
      const FieldGrid grid =
          KernelRegistry::builtin().create(kernel)->render(cube, request,
                                                           nullptr, stats);
      EXPECT_EQ(grid.kind(), kind) << kernel;
      ASSERT_EQ(grid.channels(), field_channels(kind)) << kernel;
      for (std::size_t c = 0; c < grid.channels(); ++c)
        for (const double v : grid.plane(c).values())
          ASSERT_TRUE(std::isfinite(v))
              << kernel << " " << field_kind_name(kind) << " channel " << c;
    }
  }
}

TEST(FieldKernel, TessRendersDensityOnly) {
  const ParticleSet& set = fixture_set();
  const FieldCube cube(set.positions, set.particle_mass);
  RenderRequest request{fixture_spec(16)};
  request.field = FieldKind::kVelocity;
  KernelStats stats;
  EXPECT_THROW(KernelRegistry::builtin().create("tess")->render(
                   cube, request, nullptr, stats),
               Error);
}

// Ensemble smoothing is a pure function of (item seed, N): repeated renders
// are bitwise identical, N=1 short-circuits to the exact single render, and
// N>1 genuinely changes the grid (the jitter is real).
TEST(FieldKernel, EnsembleSmoothingIsDeterministic) {
  const ParticleSet& set = fixture_set();
  const FieldCube cube(set.positions, set.particle_mass);
  RenderRequest request{fixture_spec(16)};
  request.seed = 99;

  const auto kernel = KernelRegistry::builtin().create("march");
  KernelStats s1, s2;
  const FieldGrid single = kernel->render(cube, request, nullptr, s1);
  const FieldGrid single_again = kernel->render(cube, request, nullptr, s2);
  EXPECT_TRUE(planes_bitwise_equal(single, single_again));

  request.smooth_ensemble = 3;
  KernelStats e1, e2;
  const FieldGrid smoothed = kernel->render(cube, request, nullptr, e1);
  const FieldGrid smoothed_again = kernel->render(cube, request, nullptr, e2);
  EXPECT_TRUE(planes_bitwise_equal(smoothed, smoothed_again));
  EXPECT_FALSE(planes_bitwise_equal(smoothed, single));
  // The averaged ray mass stays consistent with the averaged grid — the
  // audit identity the pipeline checks for every committed item.
  EXPECT_NEAR(e1.ray_mass, smoothed.sum(), 1e-9 * std::abs(e1.ray_mass));
}

std::vector<Vec3> fixture_centers() {
  return {{5.0, 5.0, 5.0}, {2.5, 3.5, 6.5}, {7.5, 2.0, 4.0}, {3.0, 8.0, 8.0}};
}

PipelineOptions fixture_pipeline_options() {
  PipelineOptions opt;
  opt.field_length = 3.0;
  opt.field_resolution = 24;
  opt.keep_grids = true;
  return opt;
}

// Driving the five stages one at a time must reproduce the one-call
// pipeline exactly — and the intermediate context must make sense at each
// boundary (that is what "individually testable stages" buys).
TEST(Stages, StageByStageMatchesRunPipeline) {
  const ParticleSet& set = fixture_set();
  const auto centers = fixture_centers();
  const PipelineOptions opt = fixture_pipeline_options();

  std::map<std::ptrdiff_t, std::vector<double>> staged;
  simmpi::run(1, [&](simmpi::Comm& comm) {
    const CubeFetcher fetch = [&](const Vec3& center, double side) {
      return extract_cube(set, center, side);
    };
    StageContext ctx(comm, opt, EngineState::process_default(),
                     set.box_length, set.particle_mass, set.positions,
                     centers, fetch);
    ExchangeStage{}.run(ctx);
    EXPECT_TRUE(ctx.decomp.has_value());
    EXPECT_EQ(ctx.my_requests.size(), centers.size());  // single rank owns all
    EXPECT_EQ(ctx.res.local_items, centers.size());

    ScheduleStage{}.run(ctx);
    EXPECT_TRUE(ctx.index.has_value());
    EXPECT_GE(ctx.test_item, 0);
    EXPECT_EQ(ctx.remaining.size(), centers.size() - 1);

    ComputeStage{}.run(ctx);
    EXPECT_EQ(ctx.res.items.size(), centers.size());

    RecoverStage{}.run(ctx);
    ReduceStage{}.run(ctx);
    for (std::size_t k = 0; k < ctx.res.items.size(); ++k) {
      const auto v = ctx.res.grids[k].plane(0).values();
      staged[ctx.res.items[k].request_index].assign(v.begin(), v.end());
    }
  });

  std::map<std::ptrdiff_t, std::vector<double>> direct;
  simmpi::run(1, [&](simmpi::Comm& comm) {
    const PipelineResult res = run_pipeline(comm, set, centers, opt);
    for (std::size_t k = 0; k < res.items.size(); ++k) {
      const auto v = res.grids[k].plane(0).values();
      direct[res.items[k].request_index].assign(v.begin(), v.end());
    }
  });

  ASSERT_EQ(staged.size(), direct.size());
  for (const auto& [id, grid] : staged) {
    ASSERT_TRUE(direct.count(id)) << "request " << id;
    ASSERT_EQ(grid.size(), direct[id].size());
    for (std::size_t i = 0; i < grid.size(); ++i)
      EXPECT_EQ(grid[i], direct[id][i]) << "request " << id << " cell " << i;
  }
}

TEST(Engine, RunBatchCompletesEveryRequest) {
  EngineConfig cfg;
  cfg.ranks = 4;
  cfg.pipeline = fixture_pipeline_options();
  Engine engine(cfg, fixture_set());

  std::vector<FieldRequest> requests;
  for (const Vec3& c : fixture_centers()) requests.push_back({c});
  const auto results = engine.run_batch(requests);

  ASSERT_EQ(results.size(), requests.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].request, static_cast<std::ptrdiff_t>(i));
    EXPECT_TRUE(results[i].completed);
    EXPECT_FALSE(results[i].failed);
    EXPECT_GT(results[i].checksum, 0.0);
    double sum = 0.0;
    for (std::size_t c = 0; c < results[i].grid.channels(); ++c)
      for (const double v : results[i].grid.plane(c).values()) sum += v;
    EXPECT_EQ(sum, results[i].checksum);
  }
  EXPECT_EQ(engine.last_rank_runs().size(), 4u);
  for (std::size_t r = 0; r < engine.last_rank_runs().size(); ++r)
    EXPECT_EQ(engine.last_rank_runs()[r].rank, static_cast<int>(r));
}

// The tentpole's re-entrancy contract: several batches per process — and
// several engines — with bitwise-identical grids every time, equal to what
// the legacy one-shot entry point produces.
TEST(Engine, RunBatchIsReentrantAndBitwiseDeterministic) {
  EngineConfig cfg;
  cfg.ranks = 4;
  cfg.pipeline = fixture_pipeline_options();
  Engine engine(cfg, fixture_set());

  std::vector<FieldRequest> requests;
  for (const Vec3& c : fixture_centers()) requests.push_back({c});

  const auto first = engine.run_batch(requests);
  const auto second = engine.run_batch(requests);  // same engine, re-run
  Engine other(cfg, fixture_set());
  const auto third = other.run_batch(requests);    // separate engine instance

  ASSERT_EQ(first.size(), requests.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_TRUE(first[i].completed);
    ASSERT_TRUE(second[i].completed);
    ASSERT_TRUE(third[i].completed);
    const auto& a = first[i].grid.plane(0).values();
    const auto& b = second[i].grid.plane(0).values();
    const auto& c = third[i].grid.plane(0).values();
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), c.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k], b[k]) << "request " << i << " cell " << k;
      EXPECT_EQ(a[k], c[k]) << "request " << i << " cell " << k;
    }
  }

  // The legacy entry point renders the same grids (same seeds, same
  // canonical cube ordering), rank count and data path notwithstanding.
  std::map<std::ptrdiff_t, double> legacy_sums;
  std::mutex mtx;
  simmpi::run(2, [&](simmpi::Comm& comm) {
    const PipelineResult res =
        run_pipeline(comm, fixture_set(), fixture_centers(), cfg.pipeline);
    std::lock_guard<std::mutex> lock(mtx);
    for (const ItemRecord& it : res.items)
      legacy_sums[it.request_index] = it.grid_sum;
  });
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_TRUE(legacy_sums.count(static_cast<std::ptrdiff_t>(i)));
    EXPECT_EQ(first[i].checksum, legacy_sums[static_cast<std::ptrdiff_t>(i)]);
  }
}

TEST(Engine, CustomKernelRegistrySelectsTheKernel) {
  KernelRegistry reg;
  reg.add("walk", [](const KernelOptions& o) {
    return std::make_unique<WalkingFieldKernel>(o.walking);
  });
  EngineConfig cfg;
  cfg.ranks = 2;
  cfg.pipeline = fixture_pipeline_options();
  cfg.pipeline.kernel = "walk";
  Engine engine(cfg, fixture_set());
  engine.set_kernels(&reg);

  std::vector<FieldRequest> requests = {{{5.0, 5.0, 5.0}}};
  const auto results = engine.run_batch(requests);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].completed);
  EXPECT_FALSE(results[0].failed);
  EXPECT_GT(results[0].checksum, 0.0);

  // An unknown kernel name is a contained per-item failure, not a crash.
  cfg.pipeline.kernel = "no-such-kernel";
  Engine broken(cfg, fixture_set());
  const auto failed = broken.run_batch(requests);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_TRUE(failed[0].failed);
}

TEST(EngineConfig, FromCliParsesAndValidates) {
  {
    const char* argv[] = {"pdtfe", "pipeline", "--in", "snap.bin", "--ranks",
                          "3",     "--grid",   "48",   "--length", "6",
                          "--kernel", "walk"};
    const CliArgs args(static_cast<int>(std::size(argv)),
                       const_cast<char**>(argv));
    const EngineConfig cfg = EngineConfig::from_cli(args);
    EXPECT_EQ(cfg.snapshot, "snap.bin");
    EXPECT_EQ(cfg.ranks, 3);
    EXPECT_EQ(cfg.pipeline.field_resolution, 48u);
    EXPECT_DOUBLE_EQ(cfg.pipeline.field_length, 6.0);
    EXPECT_EQ(cfg.pipeline.kernel, "walk");
  }
  {
    const char* argv[] = {"pdtfe", "pipeline", "--kernel", "bogus"};
    const CliArgs args(static_cast<int>(std::size(argv)),
                       const_cast<char**>(argv));
    EXPECT_THROW(EngineConfig::from_cli(args), Error);
  }
  {
    const char* argv[] = {"pdtfe", "pipeline", "--resume", "1"};
    const CliArgs args(static_cast<int>(std::size(argv)),
                       const_cast<char**>(argv));
    EXPECT_THROW(EngineConfig::from_cli(args), Error);
  }
  {
    const char* argv[] = {"pdtfe", "pipeline", "--bad-particles", "explode"};
    const CliArgs args(static_cast<int>(std::size(argv)),
                       const_cast<char**>(argv));
    EXPECT_THROW(EngineConfig::from_cli(args), Error);
  }
  {
    const char* argv[] = {"pdtfe", "pipeline", "--field", "velocity",
                          "--smooth-ensemble", "4"};
    const CliArgs args(static_cast<int>(std::size(argv)),
                       const_cast<char**>(argv));
    const EngineConfig cfg = EngineConfig::from_cli(args);
    EXPECT_EQ(cfg.pipeline.field, FieldKind::kVelocity);
    EXPECT_EQ(cfg.pipeline.smooth_ensemble, 4);
  }
  {
    const char* argv[] = {"pdtfe", "pipeline", "--field", "bogus"};
    const CliArgs args(static_cast<int>(std::size(argv)),
                       const_cast<char**>(argv));
    EXPECT_THROW(EngineConfig::from_cli(args), Error);
  }
  {
    const char* argv[] = {"pdtfe", "pipeline", "--smooth-ensemble", "0"};
    const CliArgs args(static_cast<int>(std::size(argv)),
                       const_cast<char**>(argv));
    EXPECT_THROW(EngineConfig::from_cli(args), Error);
  }
  {
    // tess is density-only: reject the combination up front rather than
    // failing every item of the run.
    const char* argv[] = {"pdtfe", "pipeline", "--kernel", "tess",
                          "--field", "velocity"};
    const CliArgs args(static_cast<int>(std::size(argv)),
                       const_cast<char**>(argv));
    EXPECT_THROW(EngineConfig::from_cli(args), Error);
  }
}

// A non-density batch flows the multi-channel grids through the full staged
// pipeline: every result carries field_channels(kind) planes and the item
// checksum equals the sum over all of them.
TEST(Engine, RunBatchCarriesVelocityChannels) {
  EngineConfig cfg;
  cfg.ranks = 2;
  cfg.pipeline = fixture_pipeline_options();
  cfg.pipeline.field = FieldKind::kVelocity;
  Engine engine(cfg, fixture_set());

  std::vector<FieldRequest> requests;
  for (const Vec3& c : fixture_centers()) requests.push_back({c});
  const auto results = engine.run_batch(requests);

  ASSERT_EQ(results.size(), requests.size());
  for (const FieldResult& res : results) {
    ASSERT_TRUE(res.completed);
    EXPECT_FALSE(res.failed);
    EXPECT_EQ(res.grid.kind(), FieldKind::kVelocity);
    ASSERT_EQ(res.grid.channels(), 3u);
    for (std::size_t c = 0; c < res.grid.channels(); ++c)
      for (const double v : res.grid.plane(c).values())
        ASSERT_TRUE(std::isfinite(v));
    // The item checksum is the plane-sum total, the same reduction the
    // thread-vs-socket parity check compares per channel.
    EXPECT_EQ(res.checksum, res.grid.sum());
  }
}

}  // namespace
}  // namespace dtfe::engine
