// Overlapped intra-rank pipeline test suite (ctest -L engine): the thread
// budget planner, and the ItemExecutor determinism contract — grids,
// checkpoint journals, watchdog containment, and fault recovery must be
// bitwise identical between the serial path (--compute-ahead=0) and the
// overlapped path, for every tested window size and thread budget.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "framework/pipeline.h"
#include "nbody/generators.h"
#include "nbody/particles.h"
#include "simmpi/comm.h"
#include "simmpi/fault.h"
#include "util/rng.h"

namespace dtfe {
namespace {

namespace fs = std::filesystem;

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

bool bitwise_equal(const Grid2D& a, const Grid2D& b) {
  if (a.nx() != b.nx() || a.ny() != b.ny()) return false;
  return std::memcmp(a.values().data(), b.values().data(),
                     a.size() * sizeof(double)) == 0;
}

bool bitwise_equal(const FieldGrid& a, const FieldGrid& b) {
  if (a.kind() != b.kind() || a.channels() != b.channels()) return false;
  for (std::size_t c = 0; c < a.channels(); ++c)
    if (!bitwise_equal(a.plane(c), b.plane(c))) return false;
  return true;
}

// ---- thread-budget planning -------------------------------------------------

TEST(ThreadBudget, SerialWindowKeepsTheWholeBudgetForTheKernelTeam) {
  PipelineOptions opt;
  opt.compute_ahead = 0;
  opt.threads = 8;
  const engine::ThreadBudget b = engine::plan_thread_budget(opt, 2);
  EXPECT_EQ(b.budget, 4);
  EXPECT_EQ(b.workers, 0);
  EXPECT_EQ(b.team, 4);
}

TEST(ThreadBudget, OverlapSplitsTheBudgetWithoutOversubscribing) {
  PipelineOptions opt;
  opt.compute_ahead = 2;
  opt.threads = 8;
  const engine::ThreadBudget b = engine::plan_thread_budget(opt, 2);
  EXPECT_EQ(b.budget, 4);
  EXPECT_EQ(b.workers, 2);
  EXPECT_EQ(b.team, 2);
  EXPECT_LE(b.workers + b.team, b.budget);  // pool x team never multiply
}

TEST(ThreadBudget, WindowLargerThanBudgetIsClampedToBudgetMinusOne) {
  PipelineOptions opt;
  opt.compute_ahead = 64;
  opt.threads = 4;
  const engine::ThreadBudget b = engine::plan_thread_budget(opt, 1);
  EXPECT_EQ(b.budget, 4);
  EXPECT_EQ(b.workers, 3);
  EXPECT_EQ(b.team, 1);
}

TEST(ThreadBudget, OneThreadBudgetStillGetsOneCooperativeWorker) {
  PipelineOptions opt;
  opt.compute_ahead = 4;
  opt.threads = 1;
  const engine::ThreadBudget b = engine::plan_thread_budget(opt, 4);
  EXPECT_EQ(b.budget, 1);
  EXPECT_EQ(b.workers, 1);  // rides the render's idle bubbles
  EXPECT_EQ(b.team, 1);
}

// ---- fixtures ---------------------------------------------------------------

const ParticleSet& fixture_set() {
  static const ParticleSet set = generate_uniform(4000, 10.0, 7);
  return set;
}

std::vector<Vec3> fixture_centers() {
  return {{5.0, 5.0, 5.0}, {2.5, 3.5, 6.5}, {7.5, 2.0, 4.0},
          {3.0, 8.0, 8.0}, {6.0, 6.5, 3.0}, {4.5, 2.5, 7.0}};
}

PipelineOptions fixture_options() {
  PipelineOptions opt;
  opt.field_length = 3.0;
  opt.field_resolution = 24;
  opt.keep_grids = true;
  return opt;
}

/// Run the pipeline on `ranks` simulated ranks and collect every completed
/// grid by global request index.
std::map<std::ptrdiff_t, FieldGrid> run_grids(const ParticleSet& set,
                                           const std::vector<Vec3>& centers,
                                           const PipelineOptions& opt,
                                           int ranks) {
  std::mutex mtx;
  std::map<std::ptrdiff_t, FieldGrid> grids;
  simmpi::run(ranks, [&](simmpi::Comm& c) {
    const PipelineResult res = run_pipeline(c, set, centers, opt);
    const std::lock_guard<std::mutex> lock(mtx);
    for (std::size_t i = 0; i < res.items.size(); ++i)
      if (res.items[i].request_index >= 0)
        grids.emplace(res.items[i].request_index, res.grids[i]);
  });
  return grids;
}

// ---- bitwise identity: serial vs overlapped ---------------------------------

// The acceptance criterion: for every tested (compute_ahead, threads) cell,
// every grid is bitwise identical to the fully serial run. Commits happen
// only on the rank thread in submission order, so nothing may differ.
TEST(OverlapDeterminism, GridsBitwiseIdenticalAcrossWindowAndThreadMatrix) {
  const ParticleSet& set = fixture_set();
  const std::vector<Vec3> centers = fixture_centers();

  PipelineOptions base = fixture_options();
  base.compute_ahead = 0;
  const auto reference = run_grids(set, centers, base, 2);
  ASSERT_EQ(reference.size(), centers.size());

  for (const int ahead : {0, 1, 4}) {
    for (const int threads : {1, 2, 4}) {
      PipelineOptions opt = base;
      opt.compute_ahead = ahead;
      opt.threads = threads;
      const auto grids = run_grids(set, centers, opt, 2);
      ASSERT_EQ(grids.size(), reference.size())
          << "ahead=" << ahead << " threads=" << threads;
      for (const auto& [id, ref] : reference) {
        ASSERT_TRUE(grids.count(id))
            << "ahead=" << ahead << " threads=" << threads << " field " << id;
        EXPECT_TRUE(bitwise_equal(grids.at(id), ref))
            << "ahead=" << ahead << " threads=" << threads << " field " << id;
      }
    }
  }
}

// ---- checkpoint journals under overlap --------------------------------------

std::map<std::string, std::string> journal_bytes(const std::string& dir) {
  std::map<std::string, std::string> out;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("journal-rank-", 0) != 0) continue;
    std::ifstream in(e.path(), std::ios::binary);
    out[name] = std::string(std::istreambuf_iterator<char>(in), {});
  }
  return out;
}

// Commit order IS journal append order; the overlapped run must write the
// exact same journal bytes as the serial run, rank by rank. Work sharing is
// off here: the load-balance schedule comes from a MEASURED timing fit, so
// under CPU contention two runs can legitimately assign items to different
// ranks — which redistributes records across journals without changing
// their content. A fixed block partition makes byte identity a true
// invariant of the overlap commit path, which is what this test pins.
TEST(OverlapDeterminism, CheckpointJournalsByteIdenticalUnderOverlap) {
  const ParticleSet& set = fixture_set();
  const std::vector<Vec3> centers = fixture_centers();

  const ScratchDir serial_dir("pdtfe_exec_ckpt_serial");
  const ScratchDir overlap_dir("pdtfe_exec_ckpt_overlap");

  PipelineOptions opt = fixture_options();
  opt.load_balance = false;
  opt.checkpoint_dir = serial_dir.path();
  opt.compute_ahead = 0;
  (void)run_grids(set, centers, opt, 2);

  opt.checkpoint_dir = overlap_dir.path();
  opt.compute_ahead = 4;
  opt.threads = 4;
  (void)run_grids(set, centers, opt, 2);

  const auto serial = journal_bytes(serial_dir.path());
  const auto overlap = journal_bytes(overlap_dir.path());
  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(serial.size(), overlap.size());
  for (const auto& [name, bytes] : serial) {
    ASSERT_TRUE(overlap.count(name)) << name;
    EXPECT_EQ(bytes, overlap.at(name)) << name << " journal bytes differ";
  }
}

// ---- watchdog under overlap -------------------------------------------------

// A prepare running ahead on a pool thread still honors its per-item
// deadline: cancellations are contained (zero grid, no rank death) exactly
// like the serial watchdog, and every request still completes.
TEST(OverlapWatchdog, TinyDeadlineCancelsInFlightItemsWithoutKillingRanks) {
  const ParticleSet& set = fixture_set();
  const std::vector<Vec3> centers = fixture_centers();
  PipelineOptions opt = fixture_options();
  opt.item_deadline_ms = 0.01;  // everything with real work expires
  opt.compute_ahead = 4;
  opt.threads = 4;

  std::mutex mtx;
  std::size_t cancelled = 0;
  std::set<std::ptrdiff_t> completed;
  std::set<int> dead;
  simmpi::run(2, [&](simmpi::Comm& c) {
    const PipelineResult res = run_pipeline(c, set, centers, opt);
    const std::lock_guard<std::mutex> lock(mtx);
    cancelled += res.items_cancelled;
    for (const ItemRecord& it : res.items)
      if (it.request_index >= 0) completed.insert(it.request_index);
    for (const int r : res.failed_ranks) dead.insert(r);
  });
  EXPECT_GT(cancelled, 0u);
  EXPECT_TRUE(dead.empty()) << "the watchdog must contain, not kill";
  EXPECT_EQ(completed.size(), centers.size());
}

// ---- fault recovery under overlap -------------------------------------------

/// Clustered workload (imbalanced on purpose) so work sharing produces a
/// receiver this test can kill.
ParticleSet clustered_set() {
  ParticleSet set;
  set.box_length = 32.0;
  set.particle_mass = 1.0;
  Rng rng(1234);
  for (int i = 0; i < 20000; ++i)
    set.positions.push_back({rng.uniform(5.0, 11.0), rng.uniform(5.0, 11.0),
                             rng.uniform(5.0, 11.0)});
  for (int o = 1; o < 8; ++o) {
    const double ox = (o & 1) ? 16.0 : 0.0;
    const double oy = (o & 2) ? 16.0 : 0.0;
    const double oz = (o & 4) ? 16.0 : 0.0;
    const int n = 4000 + 400 * o;
    for (int i = 0; i < n; ++i)
      set.positions.push_back({ox + rng.uniform(0.5, 15.5),
                               oy + rng.uniform(0.5, 15.5),
                               oz + rng.uniform(0.5, 15.5)});
  }
  return set;
}

std::vector<Vec3> clustered_centers() {
  std::vector<Vec3> centers;
  for (int ix = 0; ix < 3; ++ix)
    for (int iy = 0; iy < 2; ++iy)
      for (int iz = 0; iz < 2; ++iz)
        centers.push_back({6.0 + 2.0 * ix, 7.0 + 2.0 * iy, 7.0 + 2.0 * iz});
  for (int o = 1; o < 8; ++o) {
    const double ox = (o & 1) ? 16.0 : 0.0;
    const double oy = (o & 2) ? 16.0 : 0.0;
    const double oz = (o & 4) ? 16.0 : 0.0;
    centers.push_back({ox + 5.0, oy + 8.0, oz + 8.0});
    centers.push_back({ox + 11.0, oy + 8.0, oz + 8.0});
  }
  return centers;
}

// Kill a work-sharing receiver mid-run with the overlapped pipeline on:
// recovery (RecoverStage, also overlapped) must recompute the lost items to
// grids bitwise identical to an undisturbed serial run.
TEST(OverlapFaults, ReceiverKillRecoversBitwiseIdenticalToSerial) {
  const ParticleSet set = clustered_set();
  const std::vector<Vec3> centers = clustered_centers();
  PipelineOptions serial_opt;
  serial_opt.field_length = 3.0;
  serial_opt.field_resolution = 16;
  serial_opt.comm_timeout_ms = 500;
  serial_opt.keep_grids = true;

  // Undisturbed serial baseline; also discover a receiver to kill.
  std::mutex mtx;
  std::map<std::ptrdiff_t, FieldGrid> baseline;
  std::map<int, int> receiver_to_sender;
  simmpi::run(4, [&](simmpi::Comm& c) {
    const PipelineResult res = run_pipeline(c, set, centers, serial_opt);
    const std::lock_guard<std::mutex> lock(mtx);
    for (std::size_t i = 0; i < res.items.size(); ++i)
      if (res.items[i].request_index >= 0)
        baseline.emplace(res.items[i].request_index, res.grids[i]);
    if (!res.schedule.recv_list.empty())
      receiver_to_sender[c.rank()] = res.schedule.recv_list[0];
  });
  ASSERT_EQ(baseline.size(), centers.size());
  ASSERT_FALSE(receiver_to_sender.empty())
      << "the clustered workload produced no work-sharing receiver";

  // Faulted overlapped run: the receiver dies at its first work-package
  // operation; live ranks recover its items through the executor.
  PipelineOptions overlap_opt = serial_opt;
  overlap_opt.compute_ahead = 4;
  overlap_opt.threads = 4;
  const int receiver = receiver_to_sender.begin()->first;
  const simmpi::FaultPlan plan = simmpi::FaultPlan::parse(
      "kill:rank=" + std::to_string(receiver) + ",tag=200,at=1");
  simmpi::RunOptions run_opts;
  run_opts.fault_plan = &plan;
  std::map<std::ptrdiff_t, FieldGrid> recovered;
  std::size_t items_recovered = 0;
  std::set<int> dead;
  simmpi::run(4, run_opts, [&](simmpi::Comm& c) {
    const PipelineResult res = run_pipeline(c, set, centers, overlap_opt);
    const std::lock_guard<std::mutex> lock(mtx);
    items_recovered += res.items_recovered;
    for (const int r : res.failed_ranks) dead.insert(r);
    for (std::size_t i = 0; i < res.items.size(); ++i)
      if (res.items[i].request_index >= 0)
        recovered.emplace(res.items[i].request_index, res.grids[i]);
  });
  EXPECT_TRUE(dead.count(receiver)) << "the fault plan did not fire";
  EXPECT_GT(items_recovered, 0u) << "nothing was recovered";
  ASSERT_EQ(recovered.size(), centers.size());
  for (const auto& [id, ref] : baseline) {
    ASSERT_TRUE(recovered.count(id)) << "field " << id << " missing";
    EXPECT_TRUE(bitwise_equal(recovered.at(id), ref))
        << "field " << id << " not bitwise identical after overlap recovery";
  }
}

}  // namespace
}  // namespace dtfe
